(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index) and runs Bechamel
   timing micro-benchmarks for the core components.

   Usage:
     dune exec bench/main.exe                 -- all experiments, default scale
     dune exec bench/main.exe -- --only fig8  -- one experiment
     dune exec bench/main.exe -- --scale 2.0 --seeds 3
     dune exec bench/main.exe -- --quick      -- small scale, 1 seed *)

open Genie_thingtalk
module Config = Genie_core.Config
module Experiments = Genie_core.Experiments
module Pipeline = Genie_core.Pipeline
module Case_studies = Genie_core.Case_studies

let scale = ref 1.0
let seeds = ref 3
let only = ref ""
let quick = ref false
let skip_timing = ref false
let spill_phase = ref ""
let spill_out = ref ""

let () =
  let args =
    [ ("--scale", Arg.Set_float scale, "scale factor for dataset sizes (default 1.0)");
      ("--seeds", Arg.Set_int seeds, "number of training runs per config (default 3)");
      ("--only", Arg.Set_string only, "run only experiments whose id contains this string");
      ("--quick", Arg.Set quick, "quick mode: scale 0.4, one seed");
      ("--skip-timing", Arg.Set skip_timing, "skip the Bechamel timing benchmarks");
      ("--spill-phase", Arg.Set_string spill_phase,
       "(internal) run one streaming spill phase (MODE:SCALE) and exit");
      ("--spill-out", Arg.Set_string spill_out,
       "(internal) result file for --spill-phase") ]
  in
  Arg.parse args (fun _ -> ()) "Genie benchmark harness"

let cfg () =
  let s = if !quick then 0.4 else !scale in
  Config.scaled s Config.default

let seed_list () = List.init (if !quick then 1 else !seeds) (fun i -> i + 1)

let enabled id = !only = "" || Genie_util.Tok.contains_substring ~sub:!only id

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  --  %s\n" id title;
  Printf.printf "================================================================\n%!"

let pct_cell (c : Experiments.cell) =
  Printf.sprintf "%5.1f ± %4.1f" (100. *. c.Experiments.mean) (100. *. c.Experiments.half_range)

(* a shared Genie-full pipeline used by several experiments *)
let shared : Pipeline.artifacts option ref = ref None

let core_setup () =
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  (lib, prims, rules)

let shared_artifacts () =
  match !shared with
  | Some a -> a
  | None ->
      let lib, prims, rules = core_setup () in
      let a = Pipeline.run ~cfg:(cfg ()) ~lib ~prims ~rules () in
      shared := Some a;
      a

(* --- Fig. 1 ---------------------------------------------------------------------- *)

let fig1 () =
  header "fig1_end_to_end" "Fig. 1: translate and execute a compound command";
  let a = shared_artifacts () in
  let sentence, program, effects = Experiments.fig1_end_to_end a in
  Printf.printf "input    : %s\n" sentence;
  (match program with
  | Some p -> Printf.printf "ThingTalk: %s\n" (Printer.program_to_string p)
  | None -> Printf.printf "ThingTalk: <no parse>\n");
  List.iter
    (fun (fn, args) ->
      Printf.printf "executed : %s(%s)\n" (Ast.Fn.to_string fn)
        (String.concat ", "
           (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) args)))
    effects;
  Printf.printf "(paper: now => @com.thecatapi.get() => @com.facebook.post_picture(...))\n%!"

(* --- Fig. 7 ---------------------------------------------------------------------- *)

let fig7 () =
  header "fig7_dataset_characteristics"
    "Fig. 7: characteristics of the ThingTalk training set";
  let a = shared_artifacts () in
  let c = Experiments.fig7 a in
  Format.printf "%a@." Genie_dataset.Stats.pp_characteristics c;
  Printf.printf
    "(paper: 48%% primitive / 20%% primitive+filters / 15%% compound / 5%% +param passing / 13%% +filters)\n%!"

(* --- section 5.2 synthesis statistics ---------------------------------------------- *)

let synthesis_stats () =
  header "tab_synthesis_stats" "Section 5.2: training data acquisition statistics";
  let a = shared_artifacts () in
  let s = Experiments.synthesis_stats a in
  Printf.printf "synthesized sentences          %8d   (paper: 1,724,553 at full scale)\n"
    s.Experiments.synthesized_sentences;
  Printf.printf "  distinct programs            %8d   (paper: 77,716)\n"
    s.Experiments.synthesized_distinct_programs;
  Printf.printf "paraphrases accepted/collected %5d / %d (paper: 24,451 selected)\n"
    s.Experiments.paraphrases_accepted s.Experiments.paraphrases_collected;
  Printf.printf "training sentences (final)     %8d   (paper: 3,649,222)\n"
    s.Experiments.train_sentences;
  Printf.printf "  distinct programs            %8d   (paper: 680,408)\n"
    s.Experiments.train_distinct_programs;
  Printf.printf "  function combinations        %8d   (paper: 4,710)\n"
    s.Experiments.train_function_combos;
  Printf.printf "distinct words: synthesized    %8d   (paper: 770)\n"
    s.Experiments.words_synthesized;
  Printf.printf "  after paraphrasing           %8d   (paper: 2,104)\n"
    s.Experiments.words_after_paraphrase;
  Printf.printf "  after augmentation           %8d   (paper: 208,429)\n"
    s.Experiments.words_after_augmentation;
  Printf.printf "new words per paraphrase       %7.0f%%   (paper: 38%%)\n"
    (100. *. s.Experiments.new_words_per_paraphrase);
  Printf.printf "new bigrams per paraphrase     %7.0f%%   (paper: 65%%)\n%!"
    (100. *. s.Experiments.new_bigrams_per_paraphrase)

(* --- Fig. 8 ------------------------------------------------------------------------- *)

let fig8 () =
  header "fig8_training_strategies"
    "Fig. 8: program accuracy by training strategy (mean ± half-range)";
  let lib, prims, rules = core_setup () in
  let rows = Experiments.fig8 ~cfg:(cfg ()) ~seeds:(seed_list ()) ~lib ~prims ~rules () in
  Printf.printf "%-18s %14s %14s %14s %14s\n" "training" "Paraphrase" "Validation"
    "Cheatsheet" "IFTTT";
  List.iter
    (fun (r : Experiments.fig8_row) ->
      Printf.printf "%-18s %14s %14s %14s %14s\n"
        (Config.regime_to_string r.Experiments.regime)
        (pct_cell r.Experiments.on_paraphrase)
        (pct_cell r.Experiments.on_validation)
        (pct_cell r.Experiments.on_cheatsheet)
        (pct_cell r.Experiments.on_ifttt))
    rows;
  Printf.printf
    "(paper:   synthesized-only  48 / 56 / 53 / 51;  paraphrase-only  82 / 55 / 46 / 49;\n";
  Printf.printf "          genie             87 / 68 / 62 / 63)\n%!"

(* --- Table 3 -------------------------------------------------------------------------- *)

let tab3 () =
  header "tab3_ablation" "Table 3: ablation study (mean ± half-range)";
  let lib, prims, rules = core_setup () in
  let rows = Experiments.tab3 ~cfg:(cfg ()) ~seeds:(seed_list ()) ~lib ~prims ~rules () in
  Printf.printf "%-22s %14s %14s %14s\n" "model" "Paraphrase" "Validation" "New Program";
  List.iter
    (fun (r : Experiments.tab3_row) ->
      Printf.printf "%-22s %14s %14s %14s\n" r.Experiments.label
        (pct_cell r.Experiments.on_paraphrase)
        (pct_cell r.Experiments.on_validation)
        (pct_cell r.Experiments.on_new_program))
    rows;
  Printf.printf
    "(paper: Genie 87.1/67.9/29.9; -canon 80.0/63.2/21.9; -keyword 84.0/66.6/25.0;\n";
  Printf.printf
    "        -types 86.9/67.5/31.0; -param-exp 78.3/66.3/30.5; -decoderLM 88.7/66.8/27.3)\n%!"

(* --- section 5.5 error analysis --------------------------------------------------------- *)

let error_analysis () =
  header "tab_error_analysis" "Section 5.5: error analysis on the validation set";
  let lib, prims, rules = core_setup () in
  let m = Experiments.error_analysis ~cfg:(cfg ()) ~lib ~prims ~rules () in
  let pct x = 100. *. x in
  Printf.printf "syntactically + type correct     %5.1f%%  (paper: 96%%)\n"
    (pct m.Genie_parser_model.Eval.syntax_ok);
  Printf.printf "primitive-vs-compound identified %5.1f%%  (paper: 91%%)\n"
    (pct m.Genie_parser_model.Eval.prim_compound_accuracy);
  Printf.printf "correct skills (devices)         %5.1f%%  (paper: 87%%)\n"
    (pct m.Genie_parser_model.Eval.device_accuracy);
  Printf.printf "correct functions                %5.1f%%  (paper: 82%%)\n"
    (pct m.Genie_parser_model.Eval.function_accuracy);
  Printf.printf "wrong parameter value only       %5.1f%%  (paper: <1%% of inputs)\n"
    (pct m.Genie_parser_model.Eval.wrong_param_value);
  Printf.printf "full program accuracy            %5.1f%%  (paper: 68%%)\n%!"
    (pct m.Genie_parser_model.Eval.program_accuracy)

(* --- section 5.2: limitation of paraphrase-only methodology ------------------------------- *)

let paraphrase_limitation () =
  header "tab_paraphrase_limitation"
    "Section 5.2: paraphrase-set methodology of prior work (1 template/function)";
  let lib, prims, _ = core_setup () in
  let r = Experiments.paraphrase_limitation ~cfg:(cfg ()) ~lib ~prims () in
  Printf.printf "paraphrases of trained programs    %5.1f%%  (paper: 95%%)\n"
    (100. *. r.Experiments.in_distribution_paraphrase);
  Printf.printf "paraphrases of unseen combinations %5.1f%%  (paper: 48%%)\n"
    (100. *. r.Experiments.unseen_combination_paraphrase);
  Printf.printf "realistic validation data          %5.1f%%  (paper: ~40%%)\n%!"
    (100. *. r.Experiments.realistic_validation)

(* --- Fig. 9 case studies ------------------------------------------------------------------- *)

let fig9_case name (run : unit -> Case_studies.result) paper =
  header ("fig9_" ^ name) (Printf.sprintf "Fig. 9: %s case study (cheatsheet data)" name);
  let r = run () in
  Printf.printf "%-10s baseline %s    genie %s\n" r.Case_studies.name
    (pct_cell r.Case_studies.baseline)
    (pct_cell r.Case_studies.genie);
  Printf.printf "(paper: %s)\n%!" paper

let fig9_spotify () =
  fig9_case "spotify"
    (fun () -> Case_studies.spotify ~cfg:(cfg ()) ~seeds:(seed_list ()) ())
    "baseline ~51, genie 82 (+31)"

let fig9_tacl () =
  fig9_case "tacl"
    (fun () -> Case_studies.tacl ~cfg:(cfg ()) ~seeds:(seed_list ()) ())
    "baseline ~57, genie 82 (+25)"

let fig9_aggregation () =
  fig9_case "aggregation"
    (fun () -> Case_studies.aggregation ~cfg:(cfg ()) ~seeds:(seed_list ()) ())
    "baseline ~48, genie 67 (+19)"

(* --- MQAN-lite small-scale run -------------------------------------------------------------- *)

let mqan_small () =
  header "bench_mqan_small"
    "Section 4: MQAN-lite (LSTM + attention + pointer-generator) on a small split";
  let lib, prims, rules = core_setup () in
  let rng = Genie_util.Rng.create 5 in
  let g = Genie_templates.Grammar.create lib ~prims ~rules ~rng () in
  let data =
    Genie_synthesis.Engine.synthesize g
      { Genie_synthesis.Engine.default_config with target_per_rule = 12; max_depth = 2 }
  in
  let pairs =
    List.filteri (fun i _ -> i < 120)
      (List.map
         (fun (toks, p) ->
           let toks = List.filter (fun t -> t <> "\"") toks in
           (toks, Nn_syntax.to_tokens lib (Canonical.normalize lib p)))
         data)
  in
  let n_train = List.length pairs * 9 / 10 in
  let train = List.filteri (fun i _ -> i < n_train) pairs in
  let test = List.filteri (fun i _ -> i >= n_train) pairs in
  let src_vocab = Genie_nn.Vocab.of_tokens (List.concat_map fst pairs) in
  let tgt_vocab = Genie_nn.Vocab.of_tokens (List.concat_map snd pairs) in
  (* pretrain the decoder LM on programs, as in section 4.2 *)
  let lm = Genie_nn.Lm.create ~vocab:tgt_vocab () in
  Genie_nn.Lm.train ~epochs:2 lm (List.map snd train);
  Printf.printf "program-LM perplexity on held-out programs: %.1f\n%!"
    (Genie_nn.Lm.perplexity lm (List.map snd test));
  let model = Genie_nn.Seq2seq.create ~src_vocab ~tgt_vocab () in
  Genie_nn.Seq2seq.load_decoder_embedding model (Genie_nn.Lm.embedding_table lm);
  Genie_nn.Seq2seq.train ~epochs:12 ~lr:5e-3
    ~progress:(fun r ->
      if r.Genie_nn.Seq2seq.epoch mod 4 = 0 then
        Printf.printf "  epoch %2d  mean loss %.3f\n%!" r.Genie_nn.Seq2seq.epoch
          r.Genie_nn.Seq2seq.mean_loss)
    model train;
  let exact =
    List.length
      (List.filter (fun (src, tgt) -> Genie_nn.Seq2seq.decode model src = tgt) test)
  in
  Printf.printf "exact-match on held-out synthesized sentences: %d / %d\n%!" exact
    (List.length test)

(* --- batched training: throughput, determinism and batch-vs-loop identity -------------------- *)

(* Three claims to defend with numbers: mini-batching speeds up training
   even on one core (fewer tape nodes and blocked matmuls, not parallelism);
   the trained weight digest is byte-identical at any worker count; and a
   batched forward pass produces bitwise the same per-example losses as the
   per-example loop on the same weights. The baseline config
   (batch=1, micro=1, seq) replays the historical per-example loop.

   The model uses hidden_dim = 128 -- representative of the paper's MQAN
   (~200-dim states); batching amortizes fixed per-token overhead against
   O(hidden^2) matmul work, so toy-sized hidden layers understate the
   speedup a real model sees. Timing interleaves every config within each
   repetition and keeps the per-config best, so CPU frequency drift and
   background noise hit all arms equally. *)
let train_bench () =
  header "bench_train"
    "Batched training: examples/sec by batch size and worker count, weight-digest determinism";
  let lib, prims, rules = core_setup () in
  let seed = 5 in
  let rng = Genie_util.Rng.create seed in
  let g = Genie_templates.Grammar.create lib ~prims ~rules ~rng () in
  let data =
    Genie_synthesis.Engine.synthesize g
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = 12;
        max_depth = 2 }
  in
  let n_pairs = if !quick then 60 else 120 in
  let pairs =
    List.filteri (fun i _ -> i < n_pairs)
      (List.map
         (fun (toks, p) ->
           let toks = List.filter (fun t -> t <> "\"") toks in
           (toks, Nn_syntax.to_tokens lib (Canonical.normalize lib p)))
         data)
  in
  let src_vocab = Genie_nn.Vocab.of_tokens (List.concat_map fst pairs) in
  let tgt_vocab = Genie_nn.Vocab.of_tokens (List.concat_map snd pairs) in
  let fresh () =
    Genie_nn.Seq2seq.create
      ~cfg:
        { Genie_nn.Seq2seq.default_config with
          Genie_nn.Seq2seq.seed;
          hidden_dim = 128 }
      ~src_vocab ~tgt_vocab ()
  in
  let n = List.length pairs in
  let epochs = 2 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "%d pairs, %d epochs per config, %d core(s) available\n" n epochs cores;
  Printf.printf
    "(on one core any speedup comes from batching itself -- fewer tape nodes \
     and blocked matmuls -- not from worker parallelism)\n\n";
  (* batched forward vs the per-example loop, on identical fresh weights:
     per-row losses must agree bit for bit *)
  let ident_model = fresh () in
  let k = min 16 n in
  let exs = Array.of_list (List.filteri (fun i _ -> i < k) pairs) in
  let tape = Genie_nn.Autodiff.new_tape () in
  let _, per_row =
    Genie_nn.Seq2seq.batch_loss tape ident_model ~training:true ~epoch:0
      ~example_ids:(Array.init k (fun i -> i))
      exs
  in
  let bits x = Int64.bits_of_float x in
  let batched =
    Array.init k (fun r -> bits (Genie_nn.Tensor.get per_row.Genie_nn.Autodiff.value r 0))
  in
  let looped =
    Array.init k (fun i ->
        let tape = Genie_nn.Autodiff.new_tape () in
        let l =
          Genie_nn.Seq2seq.example_loss ~epoch:0 ~example_id:i tape ident_model
            ~training:true (fst exs.(i)) (snd exs.(i))
        in
        bits (Genie_nn.Tensor.get l.Genie_nn.Autodiff.value 0 0))
  in
  let loss_identical = batched = looped in
  Printf.printf "batched vs per-example losses on %d examples: %s\n\n" k
    (if loss_identical then "bitwise identical" else "MISMATCH");
  (* throughput grid: batch size sweep on the calling domain, then worker
     sweep at the largest batch (micro fixed so the reduction tree -- and
     hence the weights -- are identical across the worker sweep). Configs
     are interleaved within each repetition; each keeps its best time. *)
  let configs =
    [ (1, 1, 0); (4, 4, 0); (16, 8, 0); (64, 16, 0); (64, 16, 2); (64, 16, 4) ]
  in
  let reps = if !quick then 1 else 5 in
  let run_config (batch, micro, workers) =
    let model = fresh () in
    let t0 = Unix.gettimeofday () in
    Genie_nn.Seq2seq.train ~epochs ~lr:5e-3 ~batch ~micro ~workers model pairs;
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Genie_nn.Seq2seq.weight_digest model)
  in
  let best = Array.make (List.length configs) infinity in
  let digests = Array.make (List.length configs) "" in
  for _ = 1 to reps do
    List.iteri
      (fun i cfg ->
        let dt, d = run_config cfg in
        if dt < best.(i) then best.(i) <- dt;
        digests.(i) <- d)
      configs
  done;
  Printf.printf "%-22s %10s %12s  %s   (best of %d)\n" "config" "time s" "ex/s"
    "digest" reps;
  let rows =
    List.mapi
      (fun i (batch, micro, workers) ->
        let dt = best.(i) in
        let eps = float_of_int (n * epochs) /. Float.max 1e-9 dt in
        Printf.printf "batch=%-2d micro=%-2d %-6s %10.2f %12.1f  %s\n%!" batch
          micro
          (if workers <= 1 then "seq" else Printf.sprintf "w=%d" workers)
          dt eps digests.(i);
        (batch, micro, workers, dt, eps, digests.(i)))
      configs
  in
  let find b m w =
    List.find_opt (fun (b', m', w', _, _, _) -> b' = b && m' = m && w' = w) rows
  in
  let digest_of r = match r with Some (_, _, _, _, _, d) -> Some d | None -> None in
  let eps_of r = match r with Some (_, _, _, _, e, _) -> e | None -> 0.0 in
  let digest_deterministic =
    match
      (digest_of (find 64 16 0), digest_of (find 64 16 2), digest_of (find 64 16 4))
    with
    | Some d0, Some d2, Some d4 -> d0 = d2 && d0 = d4
    | _ -> false
  in
  let baseline_eps = eps_of (find 1 1 0) in
  let speedup_4w =
    if baseline_eps > 0.0 then eps_of (find 64 16 4) /. baseline_eps else 0.0
  in
  Printf.printf
    "\nweight digest identical across worker counts (batch=64, micro=16): %b\n"
    digest_deterministic;
  Printf.printf
    "4-worker batched speedup over the per-example sequential baseline: %.2fx\n%!"
    speedup_4w;
  (* checkpoint cost: capture + atomic write, then load + restore, of a
     trained model; the round-trip must reproduce the weight digest *)
  let ck_model = fresh () in
  Genie_nn.Seq2seq.train ~epochs:1 ~lr:5e-3 ~batch:64 ~micro:16 ck_model pairs;
  let snapshot =
    { Genie_nn.Seq2seq.snap_epoch = 2; snap_pos = 0; snap_rng = 0L; snap_step = 0 }
  in
  let ck_path = Filename.temp_file "genie-bench" ".ckpt" in
  let ck_reps = if !quick then 3 else 10 in
  let time_best f =
    let best = ref infinity in
    let out = ref None in
    for _ = 1 to ck_reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some r
    done;
    (!best, Option.get !out)
  in
  let write_s, () =
    time_best (fun () ->
        Genie_checkpoint.Checkpoint.save_model ~snapshot ~path:ck_path ck_model)
  in
  let load_s, loaded =
    time_best (fun () ->
        match Genie_checkpoint.Checkpoint.load_model ck_path with
        | Ok (m, _) -> m
        | Error e -> failwith e)
  in
  let ck_bytes = (Unix.stat ck_path).Unix.st_size in
  Sys.remove ck_path;
  let ck_roundtrip_ok =
    Genie_nn.Seq2seq.weight_digest loaded = Genie_nn.Seq2seq.weight_digest ck_model
  in
  Printf.printf
    "checkpoint: %d bytes, write %.2f ms, load+restore %.2f ms, round-trip \
     digest %s (best of %d)\n%!"
    ck_bytes (write_s *. 1e3) (load_s *. 1e3)
    (if ck_roundtrip_ok then "ok" else "MISMATCH")
    ck_reps;
  let open Genie_util.Json_lite in
  let row (batch, micro, workers, dt, eps, digest) =
    Obj
      [ ("batch", Int batch);
        ("micro", Int micro);
        ("workers", Int workers);
        ("seconds", Float dt);
        ("examples_per_sec", Float eps);
        ("speedup_vs_baseline",
         Float (if baseline_eps > 0.0 then eps /. baseline_eps else 0.0));
        ("digest", String digest) ]
  in
  write_file "BENCH_train.json"
    (Obj
       [ ("experiment", String "bench_train");
         ("pairs", Int n);
         ("epochs", Int epochs);
         ("seed", Int seed);
         ("cores", Int cores);
         ("batch_loss_identical_to_loop", Bool loss_identical);
         ("digest_identical_across_workers", Bool digest_deterministic);
         ("baseline_examples_per_sec", Float baseline_eps);
         ("speedup_4w_vs_sequential_baseline", Float speedup_4w);
         ("checkpoint",
          Obj
            [ ("bytes", Int ck_bytes);
              ("write_ms", Float (write_s *. 1e3));
              ("load_ms", Float (load_s *. 1e3));
              ("roundtrip_digest_ok", Bool ck_roundtrip_ok) ]);
         ("configs", List (List.map row rows)) ]);
  Printf.printf "wrote BENCH_train.json\n%!"

(* --- serving layer: throughput / cache / latency --------------------------------------------- *)

(* Actual online core count, as distinct from what the OCaml runtime
   recommends: on a cgroup-limited CI runner the two can disagree, and the
   benchmark artifacts must record the truth so "pool beats sequential" is
   only asserted where it is physically possible. *)
let cores_online () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> Domain.recommended_domain_count ()
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor" then
             incr n
         done
       with End_of_file -> ());
      close_in ic;
      if !n > 0 then !n else Domain.recommended_domain_count ()

let serve_bench () =
  header "bench_serve"
    "Serving layer: req/s, cache hit rate and latency percentiles by worker count";
  let a = shared_artifacts () in
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Pipeline.synthesized @ a.Pipeline.paraphrases)
  in
  let n_requests = if !quick then 400 else 1500 in
  let requests =
    Genie_serve.Traffic.generate
      ~rng:(Genie_util.Rng.create 23)
      ~utterances:corpus n_requests
  in
  let distinct =
    List.length
      (List.sort_uniq compare
         (List.map (fun (r : Genie_serve.Request.t) -> r.Genie_serve.Request.utterance) requests))
  in
  let cores = Domain.recommended_domain_count () in
  let online = cores_online () in
  Printf.printf
    "%d requests over %d distinct utterances (zipf s=1.1), %d core(s) \
     recommended, %d online\n\n"
    n_requests distinct cores online;
  Printf.printf "%-14s %10s %10s %10s %10s %10s %10s %10s\n" "workers" "req/s"
    "cumul r/s" "hit rate" "p50 ms" "p95 ms" "p99 ms" "mean ms";
  let open Genie_serve.Server in
  let run_config (workers, batched) =
    let server = of_artifacts ~workers ~cache_capacity:4096 a in
    ignore (run_batch ~batched server requests);
    let s = stats server in
    shutdown server;
    let label =
      (if workers <= 1 then "seq" else string_of_int workers)
      ^ if batched then "+batched" else ""
    in
    Printf.printf "%-14s %10.0f %10.0f %9.1f%% %10.2f %10.2f %10.2f %10.2f\n%!"
      label s.throughput_rps s.cumulative_rps (100. *. s.hit_rate) s.p50_ms
      s.p95_ms s.p99_ms s.mean_ms;
    (label, workers, batched, s)
  in
  let rows =
    List.map run_config
      [ (0, false); (0, true); (2, false); (2, true); (4, false); (4, true);
        (8, false); (8, true) ]
  in
  let find w b =
    List.find_opt (fun (_, w', b', _) -> w' = w && b' = b) rows
    |> Option.map (fun (_, _, _, s) -> s)
  in
  (match (find 0 false, find 4 false) with
  | Some seq, Some four when seq.throughput_rps > 0.0 ->
      Printf.printf "\n4-worker speedup over sequential: %.2fx\n%!"
        (four.throughput_rps /. seq.throughput_rps);
      if online < 4 then
        Printf.printf
          "(only %d core(s) online: worker domains time-share and cannot \
           speed up CPU-bound decoding; run on >= 4 cores to see the \
           parallel speedup)\n%!"
          online
  | _ -> ());
  let open Genie_util.Json_lite in
  let row (label, workers, batched, (s : stats)) =
    Obj
      [ ("label", String label);
        ("workers", Int workers);
        ("batched", Bool batched);
        ("throughput_rps", Float s.throughput_rps);
        ("cumulative_rps", Float s.cumulative_rps);
        ("total_seconds", Float s.total_seconds);
        ("batches", Int s.batches);
        ("hit_rate", Float s.hit_rate);
        ("cache_hits", Int s.cache_hits);
        ("cache_misses", Int s.cache_misses);
        ("cache_evictions", Int s.cache_evictions);
        ("p50_ms", Float s.p50_ms);
        ("p95_ms", Float s.p95_ms);
        ("p99_ms", Float s.p99_ms);
        ("mean_ms", Float s.mean_ms);
        ("errors", Int s.errors);
        ("no_parse", Int s.no_parse) ]
  in
  (* backend comparison: the same traffic through the Model interface,
     aligner vs a (briefly trained) seq2seq — measures the per-request cost
     of batched neural decode relative to the statistical decoder, not
     parse accuracy *)
  Printf.printf "\n%-14s %10s %10s %10s %10s %10s\n" "backend" "req/s"
    "hit rate" "p50 ms" "p95 ms" "ok";
  let lib = a.Pipeline.lib in
  let nn_pairs =
    List.filteri
      (fun i _ -> i < if !quick then 120 else 400)
      (List.map
         (fun (toks, p) ->
           (toks, Nn_syntax.to_tokens lib (Canonical.normalize lib p)))
         (a.Pipeline.synthesized @ a.Pipeline.paraphrases))
  in
  let seq2seq =
    let src_vocab = Genie_nn.Vocab.of_tokens (List.concat_map fst nn_pairs) in
    let tgt_vocab = Genie_nn.Vocab.of_tokens (List.concat_map snd nn_pairs) in
    let m =
      Genie_nn.Seq2seq.create
        ~cfg:
          { Genie_nn.Seq2seq.default_config with
            Genie_nn.Seq2seq.seed = 17;
            dropout = 0.0 }
        ~src_vocab ~tgt_vocab ()
    in
    Genie_nn.Seq2seq.train ~epochs:(if !quick then 1 else 2) ~lr:5e-3 ~batch:32
      ~micro:8 m nn_pairs;
    m
  in
  let backend_requests =
    List.filteri (fun i _ -> i < if !quick then 200 else 600) requests
  in
  let run_backend (label, model, workers) =
    let server = create ~lib ~model ~workers ~cache_capacity:4096 () in
    ignore (run_batch ~batched:true server backend_requests);
    let s = stats server in
    shutdown server;
    Printf.printf "%-14s %10.0f %9.1f%% %10.2f %10.2f %10d\n%!" label
      s.throughput_rps (100. *. s.hit_rate) s.p50_ms s.p95_ms s.ok;
    (label, workers, s)
  in
  let module Model = Genie_parser_model.Model in
  let backend_rows =
    List.map run_backend
      [ ("aligner/seq", Model.of_aligner a.Pipeline.model, 0);
        ("aligner/4w", Model.of_aligner a.Pipeline.model, 4);
        ("seq2seq/seq", Model.of_seq2seq ~max_len:48 ~lib seq2seq, 0);
        ("seq2seq/4w", Model.of_seq2seq ~max_len:48 ~lib seq2seq, 4) ]
  in
  let backend_row (label, workers, (s : stats)) =
    Obj
      [ ("label", String label);
        ("model_kind", String s.model_kind);
        ("workers", Int workers);
        ("throughput_rps", Float s.throughput_rps);
        ("hit_rate", Float s.hit_rate);
        ("p50_ms", Float s.p50_ms);
        ("p95_ms", Float s.p95_ms);
        ("p99_ms", Float s.p99_ms);
        ("mean_ms", Float s.mean_ms);
        ("ok", Int s.ok);
        ("no_parse", Int s.no_parse);
        ("errors", Int s.errors) ]
  in
  write_file "BENCH_serve.json"
    (Obj
       [ ("experiment", String "bench_serve");
         ("requests", Int n_requests);
         ("distinct_utterances", Int distinct);
         ("zipf_s", Float 1.1);
         ("cores_recommended", Int cores);
         ("cores_online", Int online);
         ("configs", List (List.map row rows));
         ("backend_requests", Int (List.length backend_requests));
         ("backends", List (List.map backend_row backend_rows)) ]);
  Printf.printf "wrote BENCH_serve.json\n%!"

(* --- network serving: daemon + loadgen over loopback ------------------------------ *)

(* The tentpole experiment: the TCP front end's micro-batched admission
   versus per-request pool crossings, measured end to end over loopback
   with the open-loop Zipfian load generator. Every configuration's
   response digest must equal the in-process replay — the benchmark doubles
   as a correctness check of the whole wire path. *)
let net_bench () =
  header "bench_net"
    "Network serving: loopback daemon + loadgen, micro-batched vs per-request admission";
  let a = shared_artifacts () in
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Pipeline.synthesized @ a.Pipeline.paraphrases)
  in
  let n_requests = if !quick then 250 else 800 in
  let users = 8 in
  let lg_cfg port =
    { Genie_net.Loadgen.default_config with
      Genie_net.Loadgen.port;
      users;
      requests = n_requests;
      seed = 23 }
  in
  (* the ground truth every network run must reproduce *)
  let expected_digest =
    let reqs =
      Genie_net.Loadgen.expected_requests ~utterances:corpus (lg_cfg 0)
    in
    let server = Genie_serve.Server.of_artifacts ~workers:0 a in
    let resps = Genie_serve.Server.run_batch ~batched:true server reqs in
    Genie_serve.Server.shutdown server;
    Genie_net.Codec.digest_of_responses resps
  in
  let cores = Domain.recommended_domain_count () in
  let online = cores_online () in
  Printf.printf
    "%d requests, %d users, loopback; %d core(s) recommended, %d online\n"
    n_requests users cores online;
  Printf.printf "expected digest %s\n\n" expected_digest;
  Printf.printf "%-22s %8s %9s %9s %9s %9s %9s %8s\n" "config" "req/s"
    "p50 ms" "p95 ms" "p99 ms" "qwait p95" "batches" "digest";
  let run_config (workers, window_ms, batch_max, label) =
    let server = Genie_serve.Server.of_artifacts ~workers a in
    let d =
      Genie_net.Daemon.create ~server
        { Genie_net.Daemon.default_config with
          Genie_net.Daemon.batch_window_ms = window_ms;
          batch_max;
          queue_capacity = max 1024 n_requests }
    in
    let port = Genie_net.Daemon.port d in
    let dom = Domain.spawn (fun () -> Genie_net.Daemon.run d) in
    let r = Genie_net.Loadgen.run ~utterances:corpus (lg_cfg port) in
    Genie_net.Daemon.request_drain d;
    Domain.join dom;
    Genie_serve.Server.shutdown server;
    let ds = Genie_net.Daemon.stats d in
    let ok = r.Genie_net.Loadgen.digest = expected_digest in
    Printf.printf "%-22s %8.0f %9.2f %9.2f %9.2f %9.2f %9d %8s\n%!" label
      r.Genie_net.Loadgen.rps r.Genie_net.Loadgen.latency_p50_ms
      r.Genie_net.Loadgen.latency_p95_ms r.Genie_net.Loadgen.latency_p99_ms
      r.Genie_net.Loadgen.queue_wait_p95_ms ds.Genie_net.Daemon.batches
      (if ok then "match" else "MISMATCH");
    if not ok then begin
      Printf.eprintf "bench_net: digest mismatch on %s\n" label;
      exit 3
    end;
    (label, workers, window_ms, batch_max, r, ds)
  in
  let configs =
    List.concat_map
      (fun w ->
        let name = if w <= 1 then "seq" else Printf.sprintf "%dw" w in
        (w, 0.0, 1, name ^ "/per-request")
        :: List.map
             (fun win ->
               (w, win, 64, Printf.sprintf "%s/batched w=%.0fms" name win))
             [ 0.0; 2.0; 8.0 ])
      [ 0; 2; 4 ]
  in
  let rows = List.map run_config configs in
  let pick p =
    List.find_opt (fun (_, w, win, bm, _, _) -> p (w, win, bm)) rows
    |> Option.map (fun (_, _, _, _, r, _) -> r.Genie_net.Loadgen.rps)
  in
  (match
     ( pick (fun (w, _, bm) -> w = 4 && bm = 1),
       pick (fun (w, win, bm) -> w = 4 && bm > 1 && win = 2.0) )
   with
  | Some per_req, Some batched when per_req > 0.0 ->
      Printf.printf
        "\n4-worker micro-batched vs per-request pool crossings: %.2fx\n%!"
        (batched /. per_req)
  | _ -> ());
  let open Genie_util.Json_lite in
  let row (label, workers, window_ms, batch_max, (r : Genie_net.Loadgen.report),
           (ds : Genie_net.Daemon.stats)) =
    Obj
      [ ("label", String label);
        ("workers", Int workers);
        ("batch_window_ms", Float window_ms);
        ("batch_max", Int batch_max);
        ("rps", Float r.Genie_net.Loadgen.rps);
        ("received", Int r.Genie_net.Loadgen.received);
        ("ok", Int r.Genie_net.Loadgen.ok);
        ("overloaded", Int r.Genie_net.Loadgen.overloaded);
        ("latency_mean_ms", Float r.Genie_net.Loadgen.latency_mean_ms);
        ("latency_p50_ms", Float r.Genie_net.Loadgen.latency_p50_ms);
        ("latency_p95_ms", Float r.Genie_net.Loadgen.latency_p95_ms);
        ("latency_p99_ms", Float r.Genie_net.Loadgen.latency_p99_ms);
        ("queue_wait_p50_ms", Float r.Genie_net.Loadgen.queue_wait_p50_ms);
        ("queue_wait_p95_ms", Float r.Genie_net.Loadgen.queue_wait_p95_ms);
        ("queue_wait_p99_ms", Float r.Genie_net.Loadgen.queue_wait_p99_ms);
        ("digest", String r.Genie_net.Loadgen.digest);
        ("digest_match", Bool (r.Genie_net.Loadgen.digest = expected_digest));
        ("batches", Int ds.Genie_net.Daemon.batches);
        ("max_batch", Int ds.Genie_net.Daemon.max_batch);
        ( "batch_histogram",
          List
            (List.map
               (fun (size, count) -> List [ Int size; Int count ])
               ds.Genie_net.Daemon.batch_histogram) );
        ("shed", Int ds.Genie_net.Daemon.shed);
        ("refused_draining", Int ds.Genie_net.Daemon.refused_draining);
        ("dropped_responses", Int ds.Genie_net.Daemon.dropped_responses);
        ("drained", Bool ds.Genie_net.Daemon.drained) ]
  in
  write_file "BENCH_net.json"
    (Obj
       [ ("experiment", String "bench_net");
         ("requests", Int n_requests);
         ("users", Int users);
         ("zipf_s", Float 1.1);
         ("cores_recommended", Int cores);
         ("cores_online", Int online);
         ("expected_digest", String expected_digest);
         ("configs", List (List.map row rows)) ]);
  Printf.printf "wrote BENCH_net.json\n%!"

(* --- serving layer under injected faults ----------------------------------------------------- *)

(* Throughput and tail latency per fault class against a clean baseline, all
   driven by seeded schedules so every run (and every machine) sees the same
   failure decisions. Latency-class schedules use [sleep=true]: the injected
   delay is real wall-clock time, so the throughput cost is visible. *)
let faults_bench () =
  header "bench_faults"
    "Serving layer under seeded fault injection: throughput / tail latency per fault class";
  let a = shared_artifacts () in
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Pipeline.synthesized @ a.Pipeline.paraphrases)
  in
  let n_requests = if !quick then 300 else 1000 in
  let n_workers = 2 in
  let gen ?deadline_ms () =
    Genie_serve.Traffic.generate ?deadline_ms
      ~rng:(Genie_util.Rng.create 23)
      ~utterances:corpus n_requests
  in
  let fault spec = Genie_serve.Fault.create spec in
  let base = Genie_serve.Fault.default in
  let configs =
    [ ("clean", Genie_serve.Fault.none, None, None);
      ( "crash",
        fault { base with Genie_serve.Fault.seed = 42; crash_rate = 0.1 },
        None,
        None );
      ( "latency",
        fault
          { base with
            Genie_serve.Fault.seed = 42;
            latency_rate = 0.3;
            latency_ns = 2e6;
            sleep = true },
        None,
        None );
      ( "drop",
        fault { base with Genie_serve.Fault.seed = 42; drop_rate = 0.05 },
        None,
        None );
      ( "deadline",
        fault
          { base with
            Genie_serve.Fault.seed = 42;
            latency_rate = 1.0;
            latency_ns = 3e6;
            sleep = true },
        None,
        Some 2.0 );
      ("overload", Genie_serve.Fault.none, Some (n_requests / 16), None) ]
  in
  (* The overload class replays its batch twice: the first pass warms the
     degraded-answer cache, so the second pass shows cache-only degradation
     (not just shedding) for the popular utterances. *)
  let batches label = if label = "overload" then 2 else 1 in
  Printf.printf "%d requests, %d workers per config\n\n" n_requests n_workers;
  Printf.printf "%-10s %10s %10s %10s | %6s %6s %6s %6s %6s %6s\n" "class"
    "req/s" "p50 ms" "p99 ms" "ok" "t/o" "shed" "retry" "degr" "err";
  let open Genie_serve.Server in
  let run_config (label, fault, admission_capacity, deadline_ms) =
    let server =
      of_artifacts ~workers:n_workers ~cache_capacity:4096 ~fault
        ?admission_capacity ~max_retries:2 ~retry_backoff_ms:0.5 a
    in
    for _ = 1 to batches label do
      ignore (run_batch server (gen ?deadline_ms ()))
    done;
    let s = stats server in
    shutdown server;
    Printf.printf "%-10s %10.0f %10.2f %10.2f | %6d %6d %6d %6d %6d %6d\n%!"
      label s.throughput_rps s.p50_ms s.p99_ms s.ok s.timeouts s.shed s.retries
      s.degraded s.errors;
    (label, fault, admission_capacity, deadline_ms, s)
  in
  let rows = List.map run_config configs in
  (match rows with
  | ("clean", _, _, _, clean) :: rest when clean.throughput_rps > 0.0 ->
      print_newline ();
      List.iter
        (fun (label, _, _, _, (s : stats)) ->
          Printf.printf "%-10s throughput vs clean: %5.1f%%\n%!" label
            (100.0 *. s.throughput_rps /. clean.throughput_rps))
        rest
  | _ -> ());
  let open Genie_util.Json_lite in
  let row (label, fault, admission, deadline_ms, (s : stats)) =
    Obj
      [ ("class", String label);
        ("fault_spec", String (Genie_serve.Fault.to_string fault));
        ( "admission_capacity",
          match admission with Some c -> Int c | None -> Null );
        ("deadline_ms", match deadline_ms with Some d -> Float d | None -> Null);
        ("batches", Int (batches label));
        ("throughput_rps", Float s.throughput_rps);
        ("p50_ms", Float s.p50_ms);
        ("p95_ms", Float s.p95_ms);
        ("p99_ms", Float s.p99_ms);
        ("mean_ms", Float s.mean_ms);
        ("requests", Int s.requests);
        ("ok", Int s.ok);
        ("no_parse", Int s.no_parse);
        ("errors", Int s.errors);
        ("timeouts", Int s.timeouts);
        ("shed", Int s.shed);
        ("retries", Int s.retries);
        ("degraded", Int s.degraded);
        ("hit_rate", Float s.hit_rate) ]
  in
  write_file "BENCH_faults.json"
    (Obj
       [ ("experiment", String "bench_faults");
         ("requests", Int n_requests);
         ("workers", Int n_workers);
         ("traffic_seed", Int 23);
         ("cores", Int (Domain.recommended_domain_count ()));
         ("configs", List (List.map row rows)) ]);
  Printf.printf "\nwrote BENCH_faults.json\n%!"

(* --- observability: tracing overhead and trace determinism ----------------------------------- *)

(* Two claims to defend with numbers: attaching a tracer costs < 5% of
   serving throughput, and the structural trace digest is identical across
   worker counts. The off/on arms alternate within each repetition so CPU
   frequency drift hits both equally; each arm keeps its best of [reps]. *)
let observe_bench () =
  header "bench_observe"
    "Observability: tracing overhead (on vs off) and cross-worker trace determinism";
  let a = shared_artifacts () in
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Pipeline.synthesized @ a.Pipeline.paraphrases)
  in
  let n_requests = if !quick then 300 else 1000 in
  let requests =
    Genie_serve.Traffic.generate
      ~rng:(Genie_util.Rng.create 23)
      ~utterances:corpus n_requests
  in
  let open Genie_serve.Server in
  let run_once ~workers ~traced =
    let tracer =
      if traced then
        Genie_observe.Tracer.create ~seed:7 ~capacity:(n_requests * 10)
          ~slots:(max 1 workers + 1) ()
      else Genie_observe.Tracer.disabled
    in
    let server = of_artifacts ~workers ~cache_capacity:4096 ~tracer a in
    ignore (run_batch server requests);
    let s = stats server in
    shutdown server;
    (s.throughput_rps, if traced then Genie_observe.Tracer.spans tracer else [])
  in
  let reps = 3 in
  let per_config workers =
    let best_off = ref 0.0 and best_on = ref 0.0 and spans = ref [] in
    for _ = 1 to reps do
      let off, _ = run_once ~workers ~traced:false in
      if off > !best_off then best_off := off;
      let on, sp = run_once ~workers ~traced:true in
      if on > !best_on then best_on := on;
      spans := sp
    done;
    let overhead_pct =
      if !best_off > 0.0 then
        Float.max 0.0 (100.0 *. (!best_off -. !best_on) /. !best_off)
      else 0.0
    in
    let digest = Genie_observe.Export.digest ~strict:true !spans in
    (workers, !best_off, !best_on, overhead_pct, List.length !spans, digest)
  in
  Printf.printf "%d requests, best of %d runs per arm\n\n" n_requests reps;
  Printf.printf "%-10s %12s %12s %10s %8s  %s\n" "workers" "off req/s"
    "on req/s" "overhead" "spans" "digest";
  let rows = List.map per_config [ 0; 2; 4 ] in
  List.iter
    (fun (w, off, on, ov, n, d) ->
      Printf.printf "%-10s %12.0f %12.0f %9.1f%% %8d  %s\n%!"
        (if w <= 1 then "seq" else string_of_int w)
        off on ov n d)
    rows;
  let digests = List.map (fun (_, _, _, _, _, d) -> d) rows in
  let deterministic =
    match digests with
    | [] -> true
    | d0 :: rest -> List.for_all (String.equal d0) rest
  in
  let target_pct = 5.0 in
  let worst =
    List.fold_left (fun acc (_, _, _, ov, _, _) -> Float.max acc ov) 0.0 rows
  in
  let within_target = worst <= target_pct in
  Printf.printf "\nworst-case tracing overhead: %.1f%% (target < %.0f%%) -> %s\n"
    worst target_pct
    (if within_target then "within target" else "EXCEEDS TARGET");
  Printf.printf "trace digest identical across worker counts: %b\n%!"
    deterministic;
  let open Genie_util.Json_lite in
  let row (w, off, on, ov, n, d) =
    Obj
      [ ("workers", Int w);
        ("throughput_rps_off", Float off);
        ("throughput_rps_on", Float on);
        ("overhead_pct", Float ov);
        ("spans", Int n);
        ("digest", String d) ]
  in
  write_file "BENCH_observe.json"
    (Obj
       [ ("experiment", String "bench_observe");
         ("requests", Int n_requests);
         ("reps", Int reps);
         ("traffic_seed", Int 23);
         ("tracer_seed", Int 7);
         ("cores", Int (Domain.recommended_domain_count ()));
         ("overhead_target_pct", Float target_pct);
         ("worst_overhead_pct", Float worst);
         ("within_target", Bool within_target);
         ("digest_deterministic", Bool deterministic);
         ("configs", List (List.map row rows)) ]);
  Printf.printf "wrote BENCH_observe.json\n%!"

(* --- sharded synthesis pipeline -------------------------------------------------------------- *)

(* Constants and setup shared by [synth_bench] and the [--spill-phase] child
   processes: a child must rebuild the exact same seed corpus
   deterministically, so everything that shapes it lives here. *)
let synth_bench_seed = 51
let synth_bench_depth = 3
let synth_bench_target () = if !quick then 60 else 200
let spill_threshold = 4096
let spill_dir_path () =
  Filename.concat (Filename.get_temp_dir_name ()) "genie-bench-spill"

let synth_bench_setup () =
  let lib, prims, rules = core_setup () in
  let g =
    Genie_templates.Grammar.create lib ~prims ~rules
      ~rng:(Genie_util.Rng.create synth_bench_seed) ()
  in
  let cfg =
    { Genie_synthesis.Engine.default_config with
      seed = synth_bench_seed;
      target_per_rule = synth_bench_target ();
      max_depth = synth_bench_depth }
  in
  (lib, g, cfg)

let examples_of_derivations ds =
  List.filter_map
    (fun (d : Genie_templates.Derivation.t) ->
      match d.Genie_templates.Derivation.value with
      | Genie_templates.Derivation.V_frag (Ast.F_program p) ->
          Some (d.Genie_templates.Derivation.tokens, p)
      | _ -> None)
    ds
  |> List.mapi (fun i (tokens, program) ->
         Genie_dataset.Example.make ~id:i ~tokens ~program
           ~source:Genie_dataset.Example.Synthesized ())

(* Child-process entry for [--spill-phase MODE:SCALE]: runs exactly one
   streaming phase in a fresh process, so VmHWM is that phase's true
   lifetime peak, uncontaminated by the other experiments' heap. Writes
   "key value" lines to [--spill-out]. *)
let spill_phase_child spec out_path =
  let mode, sc =
    match String.index_opt spec ':' with
    | Some i ->
        ( String.sub spec 0 i,
          float_of_string
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> failwith ("bad --spill-phase " ^ spec)
  in
  let lib, g, cfg = synth_bench_setup () in
  let ds, _ =
    Genie_synthesis.Engine.synthesize_derivations_stats ~workers:0 ~cache:true
      g cfg
  in
  let examples = examples_of_derivations ds in
  let gz = Genie_augment.Gazettes.create ~size:500 ~profile:`Extended () in
  (* a tight GC keeps the heap close to the live set, which is flat during
     the phase — heap slack from allocation churn would otherwise dominate
     the watermark *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 40 };
  let result =
    match mode with
    | "spill" -> (
        (* coarse shards (128 seeds) keep the merge fan-in small: the
           merge's memory is (runs x <=64K channel buffer), so the fan-in —
           not the corpus — must be what bounds it *)
        match
          Genie_synthesis.Stream.corpus_to_spill ~workers:0 ~expand_scale:sc
            ~chunk:256
            ~spill:
              { Genie_synthesis.Stream.dir = spill_dir_path ();
                threshold = spill_threshold }
            lib gz ~seed:(synth_bench_seed + 80) examples
        with
        | Error e -> Error e
        | Ok st ->
            Ok
              [ ("records", string_of_int st.Genie_synthesis.Stream.st_records);
                ("runs", string_of_int st.Genie_synthesis.Stream.st_runs);
                ("run_bytes",
                 string_of_int st.Genie_synthesis.Stream.st_run_bytes);
                ("digest", st.Genie_synthesis.Stream.st_digest) ])
    | "memory" ->
        let records =
          Genie_synthesis.Stream.corpus_records ~workers:0 ~expand_scale:sc
            lib gz ~seed:(synth_bench_seed + 80) examples
        in
        let n, digest = Genie_synthesis.Stream.corpus_digest records in
        (* keep the materialized corpus live so the peak includes it *)
        ignore (Sys.opaque_identity (List.length records));
        Ok
          [ ("records", string_of_int n); ("runs", "0"); ("run_bytes", "0");
            ("digest", digest) ]
    | m -> Error ("unknown --spill-phase mode " ^ m)
  in
  match result with
  | Error e ->
      prerr_endline ("spill phase failed: " ^ e);
      exit 1
  | Ok fields ->
      let fields =
        match Genie_util.Resource.peak_rss_kb () with
        | Some kb -> fields @ [ ("peak_rss_kb", string_of_int kb) ]
        | None -> fields
      in
      let oc = open_out out_path in
      List.iter (fun (k, v) -> Printf.fprintf oc "%s %s\n" k v) fields;
      close_out oc

(* Speedup, memo-cache hit rate and merge overhead of the domain-parallel
   synthesis pipeline against its own sequential fallback (the same shard
   algorithm on the calling domain, so the corpora are byte-identical and
   the comparison is pure scheduling). Augmentation rides the same Pool
   fan-out, so its sharded path is measured too. *)
let synth_bench () =
  header "bench_synth"
    "Sharded synthesis: speedup, cache hit rate and merge overhead by worker count";
  let lib, g, cfg = synth_bench_setup () in
  let seed = synth_bench_seed in
  let target = synth_bench_target () in
  let depth = synth_bench_depth in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "depth-%d corpus, target %d per rule, seed %d, %d core(s) available\n\n"
    depth target seed cores;
  let corpus_key ds =
    String.concat "\n" (List.map Genie_templates.Derivation.sort_key ds)
  in
  let run_config ?(cache = true) workers =
    let ds, stats =
      Genie_synthesis.Engine.synthesize_derivations_stats ~workers ~cache g cfg
    in
    (workers, ds, stats)
  in
  let open Genie_synthesis.Engine in
  Printf.printf "%-10s %10s %10s %12s %12s %10s\n" "workers" "pairs" "time s"
    "cache hit%" "merge ovh%" "speedup";
  let _, seq_ds, seq_stats = run_config 0 in
  let seq_key = corpus_key seq_ds in
  let seq_s = seq_stats.total_ns /. 1e9 in
  let row (workers, ds, (stats : stats)) =
    let t = stats.total_ns /. 1e9 in
    let hit_rate =
      float_of_int stats.cache_hits
      /. Float.max 1.0 (float_of_int (stats.cache_hits + stats.cache_misses))
    in
    let merge_pct = 100. *. stats.merge_ns /. Float.max 1.0 stats.total_ns in
    let speedup = seq_s /. Float.max 1e-9 t in
    let deterministic = corpus_key ds = seq_key in
    Printf.printf "%-10s %10d %10.2f %11.1f%% %11.1f%% %9.2fx%s\n%!"
      (if workers = 0 then "seq" else string_of_int workers)
      (List.length ds) t (100. *. hit_rate) merge_pct speedup
      (if deterministic then "" else "  CORPUS MISMATCH");
    (workers, t, hit_rate, merge_pct, speedup, deterministic)
  in
  let rows =
    List.fold_left
      (fun acc w ->
        let r = if w = 0 then row (0, seq_ds, seq_stats) else row (run_config w) in
        r :: acc)
      [] [ 0; 1; 2; 4 ]
    |> List.rev
  in
  (* cache contribution: same sequential run with the memo cache disabled *)
  let _, nocache_ds, nocache_stats = run_config ~cache:false 0 in
  let nocache_s = nocache_stats.total_ns /. 1e9 in
  let cache_transparent = corpus_key nocache_ds = seq_key in
  Printf.printf
    "\ncache off (seq): %.2fs -> memo cache saves %.1f%% (corpus %s)\n"
    nocache_s
    (100. *. (1. -. (seq_s /. Float.max 1e-9 nocache_s)))
    (if cache_transparent then "identical" else "MISMATCH");
  (* sharded augmentation over the same Pool fan-out *)
  let gz = Genie_augment.Gazettes.create ~size:500 () in
  let examples = examples_of_derivations seq_ds in
  let time f =
    let t0 = Genie_observe.Tracer.now_ns () in
    let r = f () in
    (r, (Genie_observe.Tracer.now_ns () -. t0) /. 1e9)
  in
  let aug w =
    time (fun () ->
        Genie_augment.Expand.expand_dataset_sharded ~scale:0.5 ~workers:w lib gz
          ~seed:(seed + 70) examples)
  in
  let aug_seq, aug_seq_s = aug 0 in
  let aug_par, aug_par_s = aug 4 in
  let aug_deterministic = aug_seq = aug_par in
  Printf.printf
    "augment (sharded): %d -> %d examples, seq %.2fs, 4 workers %.2fs (%s)\n"
    (List.length examples) (List.length aug_seq) aug_seq_s aug_par_s
    (if aug_deterministic then "identical" else "MISMATCH");
  (* streaming spill pipeline: the corpus grows >= 10x via expand_scale
     while peak RSS stays flat, because expansion shards spill sorted runs
     to disk and the coordinator k-way-merges them
     (Stream.corpus_to_spill). Each phase runs in a fresh child process
     (this same binary with --spill-phase), so its VmHWM from
     /proc/self/status is that phase's true lifetime peak, not heap slack
     inherited from the other experiments (Linux only; fields are null
     elsewhere). The in-memory child at the large scale holds the whole
     corpus live — it both checks digest byte-identity and provides the
     RSS contrast. *)
  let scale_small = 0.25 and scale_large = 16.0 in
  let run_child mode sc =
    let out = Filename.temp_file "genie-spill-phase" ".txt" in
    let cmd =
      Printf.sprintf "%s --spill-phase %s:%g --spill-out %s%s"
        (Filename.quote Sys.executable_name)
        mode sc (Filename.quote out)
        (if !quick then " --quick" else "")
    in
    let (), secs =
      time (fun () ->
          if Sys.command cmd <> 0 then
            failwith ("spill phase child failed: " ^ cmd))
    in
    let ic = open_in out in
    let fields = ref [] in
    (try
       while true do
         let line = input_line ic in
         match String.index_opt line ' ' with
         | Some i ->
             fields :=
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) )
               :: !fields
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Sys.remove out;
    (!fields, secs)
  in
  let geti fs k = int_of_string (List.assoc k fs) in
  let rss_of fs = Option.map int_of_string (List.assoc_opt "peak_rss_kb" fs) in
  let small, spill_small_s = run_child "spill" scale_small in
  let large, spill_large_s = run_child "spill" scale_large in
  let mem, mem_large_s = run_child "memory" scale_large in
  let records_small = geti small "records" in
  let records_large = geti large "records" in
  let runs_large = geti large "runs" in
  let digest_large = List.assoc "digest" large in
  let rss_small = rss_of small
  and rss_large = rss_of large
  and rss_mem = rss_of mem in
  let digest_identical_memory =
    List.assoc "digest" mem = digest_large
    && geti mem "records" = records_large
  in
  (* in-process 4-worker spill: digest identity across the domain fan-out *)
  let gz_ext = Genie_augment.Gazettes.create ~size:500 ~profile:`Extended () in
  let st_4w =
    match
      Genie_synthesis.Stream.corpus_to_spill ~workers:4
        ~expand_scale:scale_large
        ~spill:
          { Genie_synthesis.Stream.dir = spill_dir_path ();
            threshold = spill_threshold }
        lib gz_ext ~seed:(seed + 80) examples
    with
    | Error e -> failwith ("bench_synth spill phase: " ^ e)
    | Ok st -> st
  in
  let digest_identical_4w =
    st_4w.Genie_synthesis.Stream.st_digest = digest_large
  in
  (match st_4w.Genie_synthesis.Stream.st_corpus_path with
  | Some p when Sys.file_exists p -> Sys.remove p
  | _ -> ());
  (try Sys.rmdir (spill_dir_path ()) with Sys_error _ -> ());
  let growth =
    float_of_int records_large /. Float.max 1.0 (float_of_int records_small)
  in
  let rss_flat =
    match (rss_small, rss_large) with
    | Some s, Some l -> Some (float_of_int l <= 1.1 *. float_of_int s)
    | _ -> None
  in
  let pp_kb = function Some k -> string_of_int k ^ " kB" | None -> "n/a" in
  Printf.printf
    "streaming spill: %d -> %d records (%.1fx), %d runs, peak RSS %s -> %s \
     (in-memory %s), digests %s\n"
    records_small records_large growth runs_large (pp_kb rss_small)
    (pp_kb rss_large) (pp_kb rss_mem)
    (if digest_identical_memory && digest_identical_4w then "identical"
     else "MISMATCH");
  (match rss_flat with
  | Some true -> ()
  | Some false ->
      Printf.printf
        "  WARNING: peak RSS grew more than 10%% between spill phases\n"
  | None -> Printf.printf "  (VmHWM unavailable on this platform)\n");
  let speedup_4w =
    match List.find_opt (fun (w, _, _, _, _, _) -> w = 4) rows with
    | Some (_, _, _, _, s, _) -> s
    | None -> 0.0
  in
  if cores < 4 then
    Printf.printf
      "(only %d core(s) visible to the runtime: worker domains time-share and \
       cannot speed up CPU-bound synthesis; run on >= 4 cores to see the \
       parallel speedup)\n%!"
      cores;
  let open Genie_util.Json_lite in
  let row_json (workers, t, hit_rate, merge_pct, speedup, deterministic) =
    Obj
      [ ("workers", Int workers);
        ("seconds", Float t);
        ("cache_hit_rate", Float hit_rate);
        ("merge_overhead_pct", Float merge_pct);
        ("speedup_vs_seq", Float speedup);
        ("corpus_identical_to_seq", Bool deterministic) ]
  in
  write_file "BENCH_synth.json"
    (Obj
       [ ("experiment", String "bench_synth");
         ("depth", Int depth);
         ("target_per_rule", Int target);
         ("seed", Int seed);
         ("cores", Int cores);
         ("pairs", Int (List.length seq_ds));
         ("shards", Int seq_stats.shards);
         ("sequential_seconds", Float seq_s);
         ("speedup_4w", Float speedup_4w);
         ("cache_off_seconds", Float nocache_s);
         ("cache_transparent", Bool cache_transparent);
         ("configs", List (List.map row_json rows));
         ("augment",
          Obj
            [ ("examples", Int (List.length examples));
              ("expanded", Int (List.length aug_seq));
              ("sequential_seconds", Float aug_seq_s);
              ("four_worker_seconds", Float aug_par_s);
              ("identical", Bool aug_deterministic) ]);
         ("streaming",
          let kb = function Some k -> Int k | None -> Null in
          Obj
            [ ("seeds", Int (List.length examples));
              ("spill_threshold", Int spill_threshold);
              ("expand_scale_small", Float scale_small);
              ("expand_scale_large", Float scale_large);
              ("records_small", Int records_small);
              ("records_large", Int records_large);
              ("growth", Float growth);
              ("growth_at_least_10x", Bool (growth >= 10.0));
              ("runs_large", Int runs_large);
              ("run_bytes_large", Int (geti large "run_bytes"));
              ("digest", String digest_large);
              ("spill_child_seconds_small", Float spill_small_s);
              ("spill_child_seconds_large", Float spill_large_s);
              ("memory_child_seconds_large", Float mem_large_s);
              ("peak_rss_spill_small_kb", kb rss_small);
              ("peak_rss_spill_large_kb", kb rss_large);
              ("peak_rss_memory_large_kb", kb rss_mem);
              ("rss_flat",
               match rss_flat with Some b -> Bool b | None -> Null);
              ("digest_identical_memory", Bool digest_identical_memory);
              ("digest_identical_4w", Bool digest_identical_4w) ]) ]);
  Printf.printf "wrote BENCH_synth.json\n%!"

(* --- Bechamel timing micro-benchmarks -------------------------------------------------------- *)

let timing () =
  header "timing" "Bechamel timing micro-benchmarks (one per experiment component)";
  let lib, prims, rules = core_setup () in
  let program =
    Parser.parse_program
      "monitor ((@com.gmail.inbox()) filter is_important == true) => @com.facebook.post(status = snippet);"
  in
  let a = shared_artifacts () in
  let model = a.Pipeline.model in
  let sentence = Genie_util.Tok.tokenize "post my important emails on facebook" in
  let rng = Genie_util.Rng.create 3 in
  let g = Genie_templates.Grammar.create lib ~prims ~rules ~rng () in
  let nn_model =
    let src_vocab = Genie_nn.Vocab.of_tokens sentence in
    let tgt_vocab = Genie_nn.Vocab.of_tokens (Nn_syntax.to_tokens lib program) in
    Genie_nn.Seq2seq.create ~src_vocab ~tgt_vocab ()
  in
  let open Bechamel in
  let tests =
    [ Test.make ~name:"fig1_end_to_end/execute_program"
        (Staged.stage (fun () ->
             let env = Genie_runtime.Exec.create lib in
             ignore (Genie_runtime.Exec.run ~ticks:5 env program)));
      Test.make ~name:"fig7_dataset/classify_program"
        (Staged.stage (fun () -> ignore (Genie_dataset.Stats.classify program)));
      Test.make ~name:"tab_synthesis/synthesize_depth2"
        (Staged.stage (fun () ->
             ignore
               (Genie_synthesis.Engine.synthesize g
                  { Genie_synthesis.Engine.default_config with
                    target_per_rule = 5;
                    max_depth = 2 })));
      Test.make ~name:"fig8_tab3/aligner_predict"
        (Staged.stage (fun () -> ignore (Genie_parser_model.Aligner.predict model sentence)));
      Test.make ~name:"canonicalize"
        (Staged.stage (fun () -> ignore (Canonical.normalize lib program)));
      Test.make ~name:"parse_surface_syntax"
        (Staged.stage (fun () ->
             ignore
               (Parser.parse_program
                  "now => (@com.gmail.inbox()) filter sender_name == \"alice\" => notify;")));
      Test.make ~name:"nn_syntax_roundtrip"
        (Staged.stage (fun () ->
             ignore (Nn_syntax.of_tokens lib (Nn_syntax.to_tokens lib program))));
      Test.make ~name:"bench_mqan/forward_backward"
        (Staged.stage (fun () ->
             let tape = Genie_nn.Autodiff.new_tape () in
             let loss =
               Genie_nn.Seq2seq.example_loss tape nn_model ~training:true sentence
                 [ "now"; "=>"; "notify" ]
             in
             Genie_nn.Autodiff.backward tape loss)) ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ t ] ->
              collected := (name, t) :: !collected;
              Printf.printf "%-40s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests;
  let open Genie_util.Json_lite in
  write_file "BENCH_timing.json"
    (Obj
       [ ("experiment", String "timing");
         ("results",
          List
            (List.map
               (fun (name, ns) ->
                 Obj [ ("name", String name); ("ns_per_run", Float ns) ])
               (List.rev !collected))) ]);
  Printf.printf "wrote BENCH_timing.json\n%!"

(* --- compilation: bytecode vs tree-walking interpreter ---------------------------- *)

(* The compiled path's value proposition, measured: pay lowering once per
   distinct program, then execute pre-resolved plans. Three disciplines over
   the same distinct synthesized programs — interpret (typecheck + tree-walk
   every run), compile-once-run-many, and compiled-cache-hit (the serve hot
   path: LRU lookup + run) — plus the serve-path end-to-end delta. Byte
   identity between the paths is enforced everywhere (exit 3 on divergence):
   the benchmark doubles as a differential check at realistic scale. *)
let compile_bench () =
  header "bench_compile"
    "Compilation: interpret vs compile-once vs cache-hit, and the serve-path delta";
  let a = shared_artifacts () in
  let lib = a.Pipeline.lib in
  let programs =
    let seen = Hashtbl.create 64 in
    let keep = if !quick then 12 else 30 in
    List.filteri (fun i _ -> i < keep)
      (List.filter_map
         (fun (_, p) ->
           let key = Printer.program_to_string p in
           if Hashtbl.mem seen key then None
           else begin
             Hashtbl.replace seen key ();
             Some (key, p)
           end)
         a.Pipeline.synthesized)
  in
  let runs = if !quick then 50 else 200 in
  let ticks = 3 in
  let render (notifications, effects) =
    String.concat "\n"
      (List.map
         (fun r ->
           String.concat ";" (List.map (fun (n, v) -> n ^ "=" ^ Value.to_string v) r))
         notifications
      @ List.map
          (fun (fn, args) ->
            Ast.Fn.to_string fn ^ ":"
            ^ String.concat ";" (List.map (fun (n, v) -> n ^ "=" ^ Value.to_string v) args))
          effects)
  in
  (* differential guard: every program, both paths, fresh envs, same seed *)
  List.iter
    (fun (key, p) ->
      let interp =
        render (Genie_runtime.Exec.run ~ticks (Genie_runtime.Exec.create ~seed:7 lib) p)
      in
      let compiled =
        render
          (Genie_runtime.Compile.run ~ticks (Genie_runtime.Exec.create ~seed:7 lib)
             (Genie_runtime.Compile.compile lib p))
      in
      if interp <> compiled then begin
        Printf.eprintf "bench_compile: divergence on %s\n" key;
        exit 3
      end)
    programs;
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let interp_s =
    time (fun () ->
        List.iter
          (fun (_, p) ->
            for r = 1 to runs do
              ignore
                (Genie_runtime.Exec.run ~ticks (Genie_runtime.Exec.create ~seed:r lib) p)
            done)
          programs)
  in
  let compiled_of = List.map (fun (k, p) -> (k, Genie_runtime.Compile.compile lib p)) programs in
  let compile_s =
    time (fun () ->
        List.iter (fun (_, p) -> ignore (Genie_runtime.Compile.compile lib p)) programs)
  in
  let once_s =
    time (fun () ->
        List.iter
          (fun (_, c) ->
            for r = 1 to runs do
              ignore
                (Genie_runtime.Compile.run ~ticks (Genie_runtime.Exec.create ~seed:r lib) c)
            done)
          compiled_of)
  in
  let cache = Genie_runtime.Compile_cache.create ~capacity:1024 in
  let cache_s =
    time (fun () ->
        List.iter
          (fun (key, p) ->
            for r = 1 to runs do
              let c =
                match Genie_runtime.Compile_cache.find_or_compile cache lib ~key p with
                | `Hit c | `Miss c -> c
              in
              ignore (Genie_runtime.Compile.run ~ticks (Genie_runtime.Exec.create ~seed:r lib) c)
            done)
          programs)
  in
  let n_execs = List.length programs * runs in
  let per_run s = 1e6 *. s /. float_of_int n_execs in
  let cstats = Genie_runtime.Compile_cache.stats cache in
  Printf.printf "%d distinct programs x %d runs (ticks=%d)\n\n"
    (List.length programs) runs ticks;
  Printf.printf "%-26s %12s %14s\n" "discipline" "total s" "us/execution";
  Printf.printf "%-26s %12.3f %14.2f\n" "interpret" interp_s (per_run interp_s);
  Printf.printf "%-26s %12.3f %14.2f  (+ %.2f us compile each, once)\n"
    "compile-once-run-many" once_s (per_run once_s)
    (1e6 *. compile_s /. float_of_int (List.length programs));
  Printf.printf "%-26s %12.3f %14.2f  (%d hits / %d lookups)\n" "compiled-cache-hit"
    cache_s (per_run cache_s) cstats.Genie_runtime.Compile_cache.hits
    (cstats.Genie_runtime.Compile_cache.hits + cstats.Genie_runtime.Compile_cache.misses);
  Printf.printf "\nspeedup, cache-hit over interpret: %.2fx\n%!"
    (interp_s /. Float.max 1e-9 cache_s);
  (* serve-path end to end: identical traffic, compiled on vs off *)
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Pipeline.synthesized @ a.Pipeline.paraphrases)
  in
  let n_requests = if !quick then 300 else 800 in
  let requests =
    Genie_serve.Traffic.generate ~execute:true
      ~rng:(Genie_util.Rng.create 29)
      ~utterances:corpus n_requests
  in
  let response_digest (r : Genie_serve.Response.t) =
    Printf.sprintf "#%d %s %s notif=%d fx=%d err=%s" r.Genie_serve.Response.id
      (Genie_serve.Response.status_to_string r.Genie_serve.Response.status)
      (Option.value ~default:"-" r.Genie_serve.Response.program_text)
      r.Genie_serve.Response.notifications r.Genie_serve.Response.side_effects
      (Option.value ~default:"-" r.Genie_serve.Response.error)
  in
  let open Genie_serve.Server in
  Printf.printf "\nserve path (%d execute-requests):\n" n_requests;
  Printf.printf "%-16s %10s %10s %10s %16s\n" "config" "req/s" "p50 ms" "mean ms"
    "compile hit/miss";
  let serve_rows =
    List.map
      (fun (workers, compiled) ->
        let server = of_artifacts ~workers ~cache_capacity:4096 ~compiled a in
        let rs = run_batch server requests in
        let s = stats server in
        shutdown server;
        let label =
          (if workers <= 1 then "seq" else string_of_int workers ^ "w")
          ^ if compiled then "+compiled" else "+interp"
        in
        Printf.printf "%-16s %10.0f %10.2f %10.2f %10d/%d\n%!" label s.throughput_rps
          s.p50_ms s.mean_ms s.compile_hits s.compile_misses;
        (label, workers, compiled, s, List.map response_digest rs))
      [ (0, false); (0, true); (2, false); (2, true); (4, false); (4, true) ]
  in
  (* responses must be digest-identical compiled vs interpreted at every
     worker count *)
  List.iter
    (fun w ->
      let at c =
        List.find_map
          (fun (_, w', c', _, d) -> if w' = w && c' = c then Some d else None)
          serve_rows
      in
      match (at false, at true) with
      | Some interp, Some comp when interp <> comp ->
          Printf.eprintf
            "bench_compile: serve responses diverge compiled vs interpreted at %d workers\n"
            w;
          exit 3
      | _ -> ())
    [ 0; 2; 4 ];
  Printf.printf "serve responses digest-identical compiled vs interpreted (0/2/4 workers)\n%!";
  let open Genie_util.Json_lite in
  write_file "BENCH_compile.json"
    (Obj
       [ ("experiment", String "bench_compile");
         ("programs", Int (List.length programs));
         ("runs_per_program", Int runs);
         ("ticks", Int ticks);
         ("interpret_us_per_exec", Float (per_run interp_s));
         ("compile_once_us_per_exec", Float (per_run once_s));
         ("cache_hit_us_per_exec", Float (per_run cache_s));
         ("compile_us_per_program",
          Float (1e6 *. compile_s /. float_of_int (List.length programs)));
         ("cache_hit_speedup_over_interpret",
          Float (interp_s /. Float.max 1e-9 cache_s));
         ("serve",
          List
            (List.map
               (fun (label, workers, compiled, (s : stats), _) ->
                 Obj
                   [ ("label", String label);
                     ("workers", Int workers);
                     ("compiled", Bool compiled);
                     ("throughput_rps", Float s.throughput_rps);
                     ("p50_ms", Float s.p50_ms);
                     ("mean_ms", Float s.mean_ms);
                     ("compile_hits", Int s.compile_hits);
                     ("compile_misses", Int s.compile_misses);
                     ("compile_evictions", Int s.compile_evictions) ])
               serve_rows)) ]);
  Printf.printf "wrote BENCH_compile.json\n%!"

let () =
  if !spill_phase <> "" then begin
    spill_phase_child !spill_phase !spill_out;
    exit 0
  end;
  let experiments =
    [ ("fig1_end_to_end", fig1);
      ("fig7_dataset_characteristics", fig7);
      ("tab_synthesis_stats", synthesis_stats);
      ("fig8_training_strategies", fig8);
      ("tab3_ablation", tab3);
      ("tab_error_analysis", error_analysis);
      ("tab_paraphrase_limitation", paraphrase_limitation);
      ("fig9_spotify", fig9_spotify);
      ("fig9_tacl", fig9_tacl);
      ("fig9_aggregation", fig9_aggregation);
      ("bench_mqan_small", mqan_small);
      ("bench_train", train_bench);
      ("bench_serve", serve_bench);
      ("bench_net", net_bench);
      ("bench_faults", faults_bench);
      ("bench_observe", observe_bench);
      ("bench_synth", synth_bench);
      ("bench_compile", compile_bench) ]
  in
  List.iter (fun (id, run) -> if enabled id then run ()) experiments;
  if enabled "timing" && not !skip_timing then timing ();
  Printf.printf "\nAll requested experiments completed.\n"
