(* The three case studies of section 6 (Fig. 9): the comprehensive Spotify
   skill, the TACL access-control language, and the TT+A aggregation
   extension. Each compares Genie against a Baseline modeled after the Wang et
   al. methodology: training only with paraphrase data, no data augmentation,
   no parameter expansion. *)

open Genie_thingtalk

type result = {
  name : string;
  baseline : Experiments.cell;
  genie : Experiments.cell;
}

let cell = Experiments.cell

(* --- Spotify (section 6.1) ------------------------------------------------------ *)

(* Inject realistic gazette values into test sentences: the Spotify evaluation
   uses multiple instances of the same sentence with different parameters,
   because the parameter value identifies the function (play_song vs
   play_artist). *)
let realistic_values lib gz rng (examples : Genie_dataset.Example.t list) =
  List.map
    (fun e ->
      match Genie_augment.Expand.expand_once lib gz rng e with
      | Some e' -> e'
      | None -> e)
    examples

let spotify_eval_set lib ~prims ~rules ~seed ~n =
  let gz = Genie_augment.Gazettes.create ~size:1500 () in
  let rng = Genie_util.Rng.create (seed + 77) in
  Genie_evaldata.Generators.cheatsheet lib ~prims ~rules ~seed ~n ()
  |> realistic_values lib gz rng
  |> List.map Genie_dataset.Example.strip_quotes

let run_case ~cfg ~lib ~prims ~rules ?(extra_terminals = []) ~test regime seed =
  let cfg = { cfg with Config.regime; seed } in
  let a = Pipeline.run ~cfg ~lib ~prims ~rules ~extra_terminals () in
  (Pipeline.evaluate a test).Genie_parser_model.Eval.program_accuracy

let spotify ?(cfg = Config.default) ?(seeds = [ 1; 2; 3 ]) () : result =
  let lib = Genie_thingpedia.Thingpedia.full_library () in
  let prims = Genie_thingpedia.Thingpedia.spotify_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  let test = spotify_eval_set lib ~prims ~rules ~seed:901 ~n:cfg.Config.eval_cheatsheet in
  let accs regime = List.map (run_case ~cfg ~lib ~prims ~rules ~test regime) seeds in
  { name = "Spotify";
    baseline = cell (accs Config.Wang_baseline);
    genie = cell (accs Config.Genie_full) }

(* --- TACL (section 6.2) ----------------------------------------------------------- *)

(* Policies are trained and evaluated through their bijective program encoding
   (see Rules_tacl), so the same parser machinery applies. *)
let tacl_library () =
  Schema.Library.of_classes
    (Genie_thingpedia.Thingpedia.core_classes @ [ Genie_templates.Rules_tacl.policy_class ])

let tacl_pipeline ~cfg ~lib ~prims seed =
  let rules =
    Genie_templates.Rules_tacl.rules lib
    @ List.filter
        (fun (r : Genie_templates.Grammar.rule) ->
          r.Genie_templates.Grammar.name = "np_filter")
        (Genie_templates.Rules_thingtalk.rules lib)
  in
  let extra_terminals =
    [ ("person", Genie_templates.Rules_tacl.person_terminals (Genie_util.Rng.create seed) ~samples:1) ]
  in
  let grammar =
    Genie_templates.Grammar.create lib ~prims ~rules
      ~rng:(Genie_util.Rng.create (seed + 10))
      ~start:"policy" ~extra_terminals ()
  in
  let synth_cfg =
    { Genie_synthesis.Engine.default_config with
      seed = seed + 20;
      target_per_rule = cfg.Config.synth_target;
      max_depth = 4 }
  in
  let policies = Genie_synthesis.Engine.synthesize_policies grammar synth_cfg in
  let encoded =
    List.map (fun (toks, pol) -> (toks, Genie_templates.Rules_tacl.encode pol)) policies
  in
  (grammar, encoded)

(* A miniature pipeline over encoded policies (synthesize, paraphrase, expand,
   train). *)
let train_policy_model ~cfg ~lib ~(encoded : (string list * Ast.program) list) regime seed =
  let selection =
    { Genie_crowd.Pipeline.default_selection with
      Genie_crowd.Pipeline.seed = seed + 40;
      compound_budget = cfg.Config.compound_paraphrase_budget }
  in
  let selected = Genie_crowd.Pipeline.select selection encoded in
  let crowd =
    Genie_crowd.Pipeline.collect ~seed:(seed + 50) ~num_workers:cfg.Config.num_workers
      selected
  in
  let mk source start pairs =
    List.mapi
      (fun i (tokens, program) ->
        Genie_dataset.Example.make ~id:(start + i) ~tokens ~program ~source ())
      pairs
  in
  let synth_ex = mk Genie_dataset.Example.Synthesized 0 encoded in
  let para_ex =
    mk Genie_dataset.Example.Paraphrase 500_000 crowd.Genie_crowd.Pipeline.accepted
  in
  let base =
    match regime with
    | Config.Genie_full -> synth_ex @ para_ex
    | Config.Wang_baseline -> para_ex
    | Config.Synthesized_only -> synth_ex
    | Config.Paraphrase_only -> para_ex
  in
  let expanded =
    if regime = Config.Wang_baseline then base
    else
      let gz = Genie_augment.Gazettes.create ~size:cfg.Config.gazette_size () in
      Genie_augment.Expand.expand_dataset ~scale:cfg.Config.expansion_scale lib gz
        (Genie_util.Rng.create (seed + 70))
        base
  in
  let train = List.map Genie_dataset.Example.strip_quotes expanded in
  let aligner_cfg =
    { (Config.aligner_config { cfg with Config.regime; seed }) with
      Genie_parser_model.Aligner.lm_programs =
        (if regime = Config.Wang_baseline then [] else List.map snd encoded) }
  in
  Genie_parser_model.Aligner.train ~cfg:aligner_cfg lib train

let tacl ?(cfg = Config.default) ?(seeds = [ 1; 2; 3 ]) () : result =
  let lib = tacl_library () in
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  (* cheatsheet policies: recall-style rewrites of held-out synthesized
     policies *)
  let _, test_pool = tacl_pipeline ~cfg ~lib ~prims 701 in
  let rng = Genie_util.Rng.create 702 in
  let test =
    List.map
      (fun (toks, program) ->
        Genie_dataset.Example.make ~id:0
          ~tokens:(Genie_evaldata.Generators.recall_rewrite rng toks program)
          ~program ~source:(Genie_dataset.Example.Evaluation "cheatsheet") ())
      (Genie_util.Rng.sample rng cfg.Config.eval_cheatsheet test_pool)
    |> List.map Genie_dataset.Example.strip_quotes
  in
  let acc regime seed =
    let _, encoded = tacl_pipeline ~cfg ~lib ~prims seed in
    let model = train_policy_model ~cfg ~lib ~encoded regime seed in
    let predict toks =
      (Genie_parser_model.Aligner.predict model toks).Genie_parser_model.Aligner.program
    in
    (Genie_parser_model.Eval.evaluate lib predict test).Genie_parser_model.Eval
    .program_accuracy
  in
  { name = "TACL";
    baseline = cell (List.map (acc Config.Wang_baseline) seeds);
    genie = cell (List.map (acc Config.Genie_full) seeds) }

(* --- TT+A aggregation (section 6.3) -------------------------------------------------- *)

let has_aggregation (p : Ast.program) =
  let rec q = function
    | Ast.Q_aggregate _ -> true
    | Ast.Q_invoke _ -> false
    | Ast.Q_filter (inner, _) -> q inner
    | Ast.Q_join (a, b, _) -> q a || q b
  in
  match p.Ast.query with Some qq -> q qq | None -> false

let aggregation ?(cfg = Config.default) ?(seeds = [ 1; 2; 3 ]) () : result =
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules =
    Genie_templates.Rules_thingtalk.rules lib @ Genie_templates.Rules_agg.rules lib
  in
  let extra_terminals = Genie_templates.Rules_agg.terminals lib in
  (* cheatsheet restricted to queries where aggregation is possible *)
  let test =
    Genie_evaldata.Generators.cheatsheet lib ~prims ~rules ~seed:801
      ~n:(3 * cfg.Config.eval_cheatsheet) ()
    |> List.filter (fun (e : Genie_dataset.Example.t) ->
           has_aggregation e.Genie_dataset.Example.program)
    |> List.map Genie_dataset.Example.strip_quotes
  in
  let accs regime =
    List.map (run_case ~cfg ~lib ~prims ~rules ~extra_terminals ~test regime) seeds
  in
  { name = "TT+A";
    baseline = cell (accs Config.Wang_baseline);
    genie = cell (accs Config.Genie_full) }
