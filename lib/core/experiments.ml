(* Experiment drivers: one per table and figure of the paper's evaluation
   (sections 5 and 6). Each driver returns structured rows; the bench harness
   prints them and EXPERIMENTS.md records paper-vs-measured values. *)

open Genie_thingtalk

type cell = { mean : float; half_range : float }

let cell xs =
  let mean, half_range = Genie_parser_model.Eval.mean_half_range xs in
  { mean; half_range }

let pct c = Printf.sprintf "%.1f ± %.1f" (100. *. c.mean) (100. *. c.half_range)

(* --- shared evaluation sets --------------------------------------------------- *)

type eval_sets = {
  validation : Genie_dataset.Example.t list;
  cheatsheet_test : Genie_dataset.Example.t list;
  ifttt_test : Genie_dataset.Example.t list;
}

(* Build the realistic sets; [avoid] marks programs present in the synthesized
   pool so the cheatsheet generator can enforce a share of unseen programs. *)
let build_eval_sets ?(cfg = Config.default) lib ~prims ~rules
    ~(synth_pool : (string list * Ast.program) list) : eval_sets =
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun (_, p) -> Hashtbl.replace seen (Canonical.canonical_string lib p) ())
    synth_pool;
  let avoid key = Hashtbl.mem seen key in
  let developer =
    Genie_evaldata.Generators.developer lib ~prims ~rules ~seed:cfg.Config.seed
      ~n:cfg.Config.eval_developer
  in
  let cheatsheet =
    Genie_evaldata.Generators.cheatsheet lib ~prims ~rules ~seed:cfg.Config.seed
      ~n:cfg.Config.eval_cheatsheet ~avoid ()
  in
  let ifttt =
    Genie_evaldata.Generators.ifttt lib ~prims ~seed:cfg.Config.seed ~n:cfg.Config.eval_ifttt
  in
  (* paper split: all developer data plus part of cheatsheet/IFTTT go to
     validation; the rest is the test set *)
  let split frac xs =
    let n = int_of_float (float_of_int (List.length xs) *. frac) in
    (List.filteri (fun i _ -> i < n) xs, List.filteri (fun i _ -> i >= n) xs)
  in
  let cs_val, cs_test = split 0.4 cheatsheet in
  let if_val, if_test = split 0.4 ifttt in
  { validation = developer @ cs_val @ if_val;
    cheatsheet_test = cs_test;
    ifttt_test = if_test }

let strip = List.map Genie_dataset.Example.strip_quotes

(* --- Fig. 1: end-to-end ------------------------------------------------------- *)

(* Parses the motivating sentence with a trained parser and executes the
   resulting program on the mock services. *)
let fig1_end_to_end (a : Pipeline.artifacts) =
  let sentence = "get a cat picture and post it on facebook with caption funny cat" in
  let tokens = Genie_util.Tok.tokenize sentence in
  let program = Pipeline.predictor a tokens in
  match program with
  | None -> (sentence, None, [])
  | Some p ->
      let env = Genie_runtime.Exec.create a.Pipeline.lib in
      let _, effects = Genie_runtime.Exec.run env p in
      (sentence, Some p, effects)

(* --- Fig. 7: dataset characteristics ------------------------------------------- *)

let fig7 (a : Pipeline.artifacts) : Genie_dataset.Stats.characteristics =
  Genie_dataset.Stats.characteristics
    (List.map (fun (e : Genie_dataset.Example.t) -> e.Genie_dataset.Example.program) a.Pipeline.train)

(* --- section 5.2 synthesis statistics ------------------------------------------- *)

type synthesis_stats = {
  synthesized_sentences : int;
  synthesized_distinct_programs : int;
  paraphrases_accepted : int;
  paraphrases_collected : int;
  train_sentences : int;
  train_distinct_programs : int;
  train_function_combos : int;
  words_synthesized : int;
  words_after_paraphrase : int;
  words_after_augmentation : int;
  new_words_per_paraphrase : float;
  new_bigrams_per_paraphrase : float;
}

let synthesis_stats (a : Pipeline.artifacts) : synthesis_stats =
  let lib = a.Pipeline.lib in
  let synth_sentences = List.map fst a.Pipeline.synthesized in
  let synth_programs = List.map snd a.Pipeline.synthesized in
  let train_programs =
    List.map (fun (e : Genie_dataset.Example.t) -> e.Genie_dataset.Example.program) a.Pipeline.train
  in
  let train_sentences =
    List.map (fun (e : Genie_dataset.Example.t) -> e.Genie_dataset.Example.tokens) a.Pipeline.train
  in
  let para_pairs =
    (* paraphrase novelty is measured against the selected synthesized
       sentence with the same program *)
    List.filter_map
      (fun (ptoks, pprog) ->
        let key = Canonical.canonical_string lib pprog in
        List.find_map
          (fun (stoks, sprog) ->
            if Canonical.canonical_string lib sprog = key then Some (stoks, ptoks) else None)
          a.Pipeline.synthesized)
      a.Pipeline.paraphrases
  in
  let new_w, new_b = Genie_dataset.Stats.paraphrase_novelty para_pairs in
  { synthesized_sentences = List.length a.Pipeline.synthesized;
    synthesized_distinct_programs = Genie_dataset.Stats.distinct_programs lib synth_programs;
    paraphrases_accepted = List.length a.Pipeline.paraphrases;
    paraphrases_collected = a.Pipeline.paraphrase_collected;
    train_sentences = List.length a.Pipeline.train;
    train_distinct_programs = Genie_dataset.Stats.distinct_programs lib train_programs;
    train_function_combos = Genie_dataset.Stats.distinct_function_combos train_programs;
    words_synthesized = Genie_dataset.Stats.distinct_words synth_sentences;
    words_after_paraphrase =
      Genie_dataset.Stats.distinct_words
        (synth_sentences @ List.map fst a.Pipeline.paraphrases);
    words_after_augmentation = Genie_dataset.Stats.distinct_words train_sentences;
    new_words_per_paraphrase = new_w;
    new_bigrams_per_paraphrase = new_b }

(* --- Fig. 8: training strategies ------------------------------------------------ *)

type fig8_row = {
  regime : Config.regime;
  on_paraphrase : cell;
  on_validation : cell;
  on_cheatsheet : cell;
  on_ifttt : cell;
}

(* evaluation cost is linear in test-set size; the held-out paraphrase set
   can be large, so it is capped (deterministically) for the accuracy runs *)
let cap n xs = List.filteri (fun i _ -> i < n) xs

let run_regime ~cfg ~lib ~prims ~rules ~sets regime seed =
  let cfg = { cfg with Config.regime; seed } in
  let a = Pipeline.run ~cfg ~lib ~prims ~rules () in
  let m set = (Pipeline.evaluate a set).Genie_parser_model.Eval.program_accuracy in
  ( m (cap 250 a.Pipeline.paraphrase_test),
    m (strip sets.validation),
    m (strip sets.cheatsheet_test),
    m (strip sets.ifttt_test) )

let fig8 ?(cfg = Config.default) ?(seeds = [ 1; 2; 3 ]) ~lib ~prims ~rules () :
    fig8_row list =
  (* eval sets are shared across regimes and seeds *)
  let base = Pipeline.run ~cfg:{ cfg with Config.regime = Config.Synthesized_only } ~lib ~prims ~rules () in
  let sets = build_eval_sets ~cfg lib ~prims ~rules ~synth_pool:base.Pipeline.synthesized in
  List.map
    (fun regime ->
      let results = List.map (run_regime ~cfg ~lib ~prims ~rules ~sets regime) seeds in
      let col f = cell (List.map f results) in
      { regime;
        on_paraphrase = col (fun (a, _, _, _) -> a);
        on_validation = col (fun (_, b, _, _) -> b);
        on_cheatsheet = col (fun (_, _, c, _) -> c);
        on_ifttt = col (fun (_, _, _, d) -> d) })
    [ Config.Synthesized_only; Config.Paraphrase_only; Config.Genie_full ]

(* --- Table 3: ablation study ------------------------------------------------------ *)

type tab3_row = {
  label : string;
  on_paraphrase : cell;
  on_validation : cell;
  on_new_program : cell;
}

let run_ablation ~cfg ~lib ~prims ~rules ~sets ablations seed =
  let cfg = { cfg with Config.ablations; seed; regime = Config.Genie_full } in
  let a = Pipeline.run ~cfg ~lib ~prims ~rules () in
  let validation = strip sets.validation in
  let new_prog, _ = Pipeline.split_new_programs a validation in
  let m set = (Pipeline.evaluate a set).Genie_parser_model.Eval.program_accuracy in
  (m (cap 250 a.Pipeline.paraphrase_test), m validation, m new_prog)

let tab3 ?(cfg = Config.default) ?(seeds = [ 1; 2; 3 ]) ~lib ~prims ~rules () :
    tab3_row list =
  let base = Pipeline.run ~cfg ~lib ~prims ~rules () in
  let sets = build_eval_sets ~cfg lib ~prims ~rules ~synth_pool:base.Pipeline.synthesized in
  let configs =
    [ ("Genie", []);
      (Config.ablation_to_string Config.No_canonicalization, [ Config.No_canonicalization ]);
      (Config.ablation_to_string Config.No_keyword_params, [ Config.No_keyword_params ]);
      (Config.ablation_to_string Config.No_type_annotations, [ Config.No_type_annotations ]);
      (Config.ablation_to_string Config.No_param_expansion, [ Config.No_param_expansion ]);
      (Config.ablation_to_string Config.No_decoder_lm, [ Config.No_decoder_lm ]) ]
  in
  List.map
    (fun (label, ablations) ->
      let results = List.map (run_ablation ~cfg ~lib ~prims ~rules ~sets ablations) seeds in
      let col f = cell (List.map f results) in
      { label;
        on_paraphrase = col (fun (a, _, _) -> a);
        on_validation = col (fun (_, b, _) -> b);
        on_new_program = col (fun (_, _, c) -> c) })
    configs

(* --- section 5.5 error analysis ---------------------------------------------------- *)

let error_analysis ?(cfg = Config.default) ~lib ~prims ~rules () :
    Genie_parser_model.Eval.metrics =
  let a = Pipeline.run ~cfg ~lib ~prims ~rules () in
  let sets = build_eval_sets ~cfg lib ~prims ~rules ~synth_pool:a.Pipeline.synthesized in
  Pipeline.evaluate a (strip sets.validation)

(* --- section 5.2: limitation of the paraphrase-only methodology -------------------- *)

(* The original methodology: one construct template per pattern, one primitive
   template per function, training on paraphrases only. *)
type limitation_result = {
  in_distribution_paraphrase : float;
  unseen_combination_paraphrase : float;
  realistic_validation : float;
}

let minimal_rules lib =
  List.filter
    (fun (r : Genie_templates.Grammar.rule) ->
      List.mem r.Genie_templates.Grammar.name
        [ "cmd_get_np"; "cmd_vp"; "cmd_wp_vp"; "cmd_notify_wp"; "np_filter" ])
    (Genie_templates.Rules_thingtalk.rules lib)

let first_prim_per_function prims =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (p : Genie_thingpedia.Prim.t) ->
      let key = Ast.Fn.to_string p.Genie_thingpedia.Prim.fn in
      if Hashtbl.mem seen key then false else (Hashtbl.replace seen key (); true))
    prims

let paraphrase_limitation ?(cfg = Config.default) ~lib ~prims () : limitation_result =
  let rules = minimal_rules lib in
  let prims = first_prim_per_function prims in
  let cfg = { cfg with Config.regime = Config.Paraphrase_only } in
  let a = Pipeline.run ~cfg ~lib ~prims ~rules () in
  (* in-distribution paraphrases: fresh paraphrases of *training* programs *)
  let rng = Genie_util.Rng.create 4242 in
  let in_dist =
    List.filter_map
      (fun (e : Genie_dataset.Example.t) ->
        if e.Genie_dataset.Example.source = Genie_dataset.Example.Paraphrase
           && Genie_util.Rng.flip rng 0.1
        then
          Some
            (Genie_dataset.Example.strip_quotes
               { e with
                 Genie_dataset.Example.tokens =
                   Genie_crowd.Worker.paraphrase
                     ~style:{ Genie_crowd.Worker.default_style with error_p = 0.0 }
                     (Genie_util.Rng.split rng) e.Genie_dataset.Example.tokens
                     e.Genie_dataset.Example.program })
        else None)
      a.Pipeline.train_before_expansion
  in
  let sets = build_eval_sets ~cfg lib ~prims ~rules ~synth_pool:a.Pipeline.synthesized in
  let m set = (Pipeline.evaluate a set).Genie_parser_model.Eval.program_accuracy in
  { in_distribution_paraphrase = m in_dist;
    unseen_combination_paraphrase = m a.Pipeline.paraphrase_test;
    realistic_validation = m (strip sets.validation) }
