(** The three case studies of paper section 6 (Fig. 9): the comprehensive
    Spotify skill, the TACL access-control language, and the TT+A aggregation
    extension. Each compares Genie against a Baseline modeled after the prior
    methodology (paraphrase-only training, no augmentation, no parameter
    expansion). *)

open Genie_thingtalk

type result = {
  name : string;
  baseline : Experiments.cell;
  genie : Experiments.cell;
}

val spotify_eval_set :
  Genie_thingtalk.Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  seed:int ->
  n:int ->
  Genie_dataset.Example.t list
(** The Spotify cheatsheet test set, with realistic gazette values injected
    (the test carries multiple instances of the same sentence with different
    parameters, because the value identifies the function). *)

val spotify : ?cfg:Config.t -> ?seeds:int list -> unit -> result
(** Section 6.1: 15 queries / 17 actions; quote-free parameters whose value
    identity selects the function (play_song vs play_artist), evaluated on
    cheatsheet data with realistic gazette values. *)

val tacl_library : unit -> Schema.Library.t

val tacl_pipeline :
  cfg:Config.t ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  int ->
  Genie_templates.Grammar.t * (string list * Ast.program) list
(** Synthesizes TACL policies from the 6 construct templates and returns them
    in their bijective program encoding (see {!Genie_templates.Rules_tacl}). *)

val tacl : ?cfg:Config.t -> ?seeds:int list -> unit -> result
(** Section 6.2: access-control policies, cheatsheet evaluation. *)

val has_aggregation : Ast.program -> bool

val aggregation : ?cfg:Config.t -> ?seeds:int list -> unit -> result
(** Section 6.3: TT+A aggregation commands over primitive queries. *)
