(** Pipeline configuration: training regimes (Fig. 8), ablations (Table 3)
    and scale knobs.

    The paper's full pipeline synthesizes 1.7M sentences and trains 10 GPU
    hours; the knobs here scale the same pipeline down to CPU minutes while
    preserving the comparisons. *)

type regime =
  | Genie_full  (** synthesized + paraphrases, augmentation, decoder LM *)
  | Synthesized_only
  | Paraphrase_only  (** paraphrases with Genie's augmentation *)
  | Wang_baseline
      (** the prior methodology (Wang et al.): paraphrases only, no PPDB, no
          parameter expansion, no LM -- the Baseline of Fig. 9 *)

val regime_to_string : regime -> string

type ablation =
  | No_canonicalization
  | No_keyword_params
  | No_type_annotations
  | No_param_expansion
  | No_decoder_lm

val ablation_to_string : ablation -> string

type t = {
  seed : int;
  regime : regime;
  ablations : ablation list;
  synth_target : int;
  synth_depth : int;
  lm_target : int;
  compound_paraphrase_budget : int;
  primitive_per_function : int;
  num_workers : int;
  expansion_scale : float;
  gazette_size : int;
  holdout_fraction : float;
  eval_developer : int;
  eval_cheatsheet : int;
  eval_ifttt : int;
}

val default : t

val scaled : float -> t -> t
(** Scales the work-proportional knobs (0.4 for quick runs, 2.0+ for large
    ones). *)

val has : t -> ablation -> bool

val aligner_config : t -> Genie_parser_model.Aligner.config
(** Maps regime and ablations onto the parser configuration. *)
