(* Pipeline configuration: training regimes (Fig. 8), ablations (Table 3) and
   scale knobs.

   The paper's full pipeline synthesizes 1.7M sentences and trains for 10 GPU
   hours; every knob below scales the same pipeline down so the experiments
   run on CPU in minutes while preserving the comparisons. *)

type regime =
  | Genie_full (* synthesized + paraphrases, augmentation, LM *)
  | Synthesized_only
  | Paraphrase_only (* paraphrases with Genie's augmentation *)
  | Wang_baseline (* paraphrases only: no synthesis in training, no PPDB, no
                     parameter expansion -- the methodology of Wang et al. *)

let regime_to_string = function
  | Genie_full -> "genie"
  | Synthesized_only -> "synthesized-only"
  | Paraphrase_only -> "paraphrase-only"
  | Wang_baseline -> "baseline"

type ablation =
  | No_canonicalization
  | No_keyword_params
  | No_type_annotations
  | No_param_expansion
  | No_decoder_lm

let ablation_to_string = function
  | No_canonicalization -> "- canonicalization"
  | No_keyword_params -> "- keyword param."
  | No_type_annotations -> "- type annotations"
  | No_param_expansion -> "- param. expansion"
  | No_decoder_lm -> "- decoder LM"

type t = {
  seed : int;
  regime : regime;
  ablations : ablation list;
  (* synthesis *)
  synth_target : int; (* target derivations per rule *)
  synth_depth : int;
  lm_target : int; (* synthesis target for the decoder-LM program corpus *)
  (* paraphrasing *)
  compound_paraphrase_budget : int;
  primitive_per_function : int;
  num_workers : int;
  (* augmentation *)
  expansion_scale : float;
  gazette_size : int;
  (* held-out fraction of function combinations for the paraphrase test *)
  holdout_fraction : float;
  (* evaluation set sizes *)
  eval_developer : int;
  eval_cheatsheet : int;
  eval_ifttt : int;
}

let default =
  { seed = 1;
    regime = Genie_full;
    ablations = [];
    synth_target = 450;
    synth_depth = 5;
    lm_target = 1200;
    compound_paraphrase_budget = 700;
    primitive_per_function = 4;
    num_workers = 25;
    expansion_scale = 0.2;
    gazette_size = 1500;
    holdout_fraction = 0.2;
    eval_developer = 220;
    eval_cheatsheet = 150;
    eval_ifttt = 90 }

(* Scales the work-proportional knobs by [f] (e.g. 0.3 for quick tests,
   4.0 for a full benchmark run). *)
let scaled f c =
  let s x = max 1 (int_of_float (float_of_int x *. f)) in
  { c with
    synth_target = s c.synth_target;
    lm_target = s c.lm_target;
    compound_paraphrase_budget = s c.compound_paraphrase_budget;
    eval_developer = s c.eval_developer;
    eval_cheatsheet = s c.eval_cheatsheet;
    eval_ifttt = s c.eval_ifttt }

let has c a = List.mem a c.ablations

let aligner_config c : Genie_parser_model.Aligner.config =
  { Genie_parser_model.Aligner.default_config with
    Genie_parser_model.Aligner.options =
      { Genie_thingtalk.Nn_syntax.type_annotations = not (has c No_type_annotations);
        keyword_params = not (has c No_keyword_params) };
    canonicalize = not (has c No_canonicalization);
    use_decoder_lm =
      (not (has c No_decoder_lm)) && c.regime <> Wang_baseline;
    gazette_size = c.gazette_size;
    seed = c.seed }
