(** The Genie pipeline (paper Fig. 2): formal language definition + templates
    -> synthetic sentence generation -> (simulated) crowdsourced paraphrasing
    -> parameter replacement and data augmentation -> parser training. *)

open Genie_thingtalk

type artifacts = {
  cfg : Config.t;
  lib : Schema.Library.t;
  synthesized : (string list * Ast.program) list;
  paraphrases : (string list * Ast.program) list;
      (** validated paraphrases from the worker simulator *)
  paraphrase_rejected : int;
  paraphrase_collected : int;
  lm_programs : Ast.program list;
      (** the decoder-LM pretraining corpus (a larger synthesis run) *)
  train : Genie_dataset.Example.t list;  (** the final training set *)
  train_before_expansion : Genie_dataset.Example.t list;
  paraphrase_test : Genie_dataset.Example.t list;
      (** paraphrases of function combinations held out of training: the
          compositionality test of section 5.2 *)
  held_out_combos : (string, unit) Hashtbl.t;
  model : Genie_parser_model.Aligner.t;
}

val combo_key : Ast.program -> string
(** The sorted function-set signature used for hold-out bookkeeping. *)

val run :
  ?cfg:Config.t ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  ?extra_terminals:(string * Genie_templates.Derivation.t list) list ->
  unit ->
  artifacts
(** Runs the pipeline for the configured training regime and ablations. For a
    fixed seed, the synthesis / paraphrase / hold-out stages are identical
    across regimes, so Fig. 8 compares regimes on the same test data. *)

val predictor : artifacts -> string list -> Ast.program option

val evaluate :
  artifacts -> Genie_dataset.Example.t list -> Genie_parser_model.Eval.metrics

val training_programs : artifacts -> (string, unit) Hashtbl.t
(** Canonical strings of every training program. *)

val split_new_programs :
  artifacts ->
  Genie_dataset.Example.t list ->
  Genie_dataset.Example.t list * Genie_dataset.Example.t list
(** Partitions a test set into (programs unseen in training, seen): the "New
    Program" column of Table 3. *)
