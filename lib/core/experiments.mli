(** Experiment drivers: one per table and figure of the paper's evaluation
    (sections 5 and 6). The bench harness prints the rows these return;
    EXPERIMENTS.md records paper-vs-measured values. *)

open Genie_thingtalk

type cell = { mean : float; half_range : float }
(** Accuracy over several training runs, reported as the paper does. *)

val cell : float list -> cell
val pct : cell -> string

type eval_sets = {
  validation : Genie_dataset.Example.t list;
  cheatsheet_test : Genie_dataset.Example.t list;
  ifttt_test : Genie_dataset.Example.t list;
}

val build_eval_sets :
  ?cfg:Config.t ->
  Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  synth_pool:(string list * Ast.program) list ->
  eval_sets
(** Developer + cheatsheet + IFTTT data, split between validation and test in
    the paper's proportions. The [synth_pool] tells the cheatsheet generator
    which programs count as seen. *)

val fig1_end_to_end :
  Pipeline.artifacts ->
  string * Ast.program option * (Ast.Fn.t * (string * Value.t) list) list
(** Parses the motivating sentence of Fig. 1 and executes the result on the
    mock runtime; returns (sentence, parse, side effects). *)

val fig7 : Pipeline.artifacts -> Genie_dataset.Stats.characteristics
(** The training-set composition of Fig. 7. *)

type synthesis_stats = {
  synthesized_sentences : int;
  synthesized_distinct_programs : int;
  paraphrases_accepted : int;
  paraphrases_collected : int;
  train_sentences : int;
  train_distinct_programs : int;
  train_function_combos : int;
  words_synthesized : int;
  words_after_paraphrase : int;
  words_after_augmentation : int;
  new_words_per_paraphrase : float;
  new_bigrams_per_paraphrase : float;
}

val synthesis_stats : Pipeline.artifacts -> synthesis_stats
(** The data-acquisition statistics of section 5.2. *)

type fig8_row = {
  regime : Config.regime;
  on_paraphrase : cell;
  on_validation : cell;
  on_cheatsheet : cell;
  on_ifttt : cell;
}

val fig8 :
  ?cfg:Config.t ->
  ?seeds:int list ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  unit ->
  fig8_row list
(** Fig. 8: synthesized-only vs paraphrase-only vs Genie, on shared test
    sets. *)

type tab3_row = {
  label : string;
  on_paraphrase : cell;
  on_validation : cell;
  on_new_program : cell;
}

val tab3 :
  ?cfg:Config.t ->
  ?seeds:int list ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  unit ->
  tab3_row list
(** Table 3: each VAPL / model feature removed independently. *)

val error_analysis :
  ?cfg:Config.t ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  unit ->
  Genie_parser_model.Eval.metrics
(** The section 5.5 breakdown on the validation set. *)

type limitation_result = {
  in_distribution_paraphrase : float;
  unseen_combination_paraphrase : float;
  realistic_validation : float;
}

val paraphrase_limitation :
  ?cfg:Config.t ->
  lib:Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  unit ->
  limitation_result
(** Section 5.2's critique of the prior methodology: one construct template,
    one primitive template per function, paraphrase-only training. *)
