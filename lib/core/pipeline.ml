(* The Genie pipeline (paper Fig. 2): formal language definition + templates
   -> synthetic sentence generation -> crowdsourced paraphrasing -> parameter
   replacement and data augmentation -> neural model -> semantic parser. *)

open Genie_thingtalk

type artifacts = {
  cfg : Config.t;
  lib : Schema.Library.t;
  synthesized : (string list * Ast.program) list;
  paraphrases : (string list * Ast.program) list;
  paraphrase_rejected : int;
  paraphrase_collected : int;
  lm_programs : Ast.program list;
  train : Genie_dataset.Example.t list; (* final training set *)
  train_before_expansion : Genie_dataset.Example.t list;
  paraphrase_test : Genie_dataset.Example.t list; (* unseen function combos *)
  held_out_combos : (string, unit) Hashtbl.t;
  model : Genie_parser_model.Aligner.t;
}

let combo_key (p : Ast.program) =
  String.concat "+"
    (List.sort_uniq compare (List.map Ast.Fn.to_string (Ast.program_functions p)))

let mk_examples ~source start pairs =
  List.mapi
    (fun i (tokens, program) ->
      Genie_dataset.Example.make ~id:(start + i) ~tokens ~program ~source ())
    pairs

(* --- the pipeline --------------------------------------------------------------- *)

let run ?(cfg = Config.default) ~lib ~prims ~rules ?(extra_terminals = []) () : artifacts =
  let seed = cfg.Config.seed in
  (* 1. synthesize *)
  let grammar =
    Genie_templates.Grammar.create lib ~prims ~rules
      ~rng:(Genie_util.Rng.create (seed + 10))
      ~extra_terminals ()
  in
  let synth_cfg =
    { Genie_synthesis.Engine.default_config with
      seed = seed + 20;
      target_per_rule = cfg.Config.synth_target;
      max_depth = cfg.Config.synth_depth }
  in
  let synthesized = Genie_synthesis.Engine.synthesize grammar synth_cfg in
  (* 2. decoder-LM pretraining corpus: a larger, independent synthesis run *)
  let lm_programs =
    if cfg.Config.regime = Config.Wang_baseline then []
    else
      Genie_synthesis.Engine.synthesize_programs grammar
        { synth_cfg with
          Genie_synthesis.Engine.seed = seed + 30;
          target_per_rule = cfg.Config.lm_target }
  in
  (* 3. paraphrase collection *)
  let selection =
    { Genie_crowd.Pipeline.seed = seed + 40;
      compound_budget = cfg.Config.compound_paraphrase_budget;
      primitive_per_function = cfg.Config.primitive_per_function;
      easy_functions = Genie_thingpedia.Thingpedia.easy_functions;
      hard_functions = Genie_thingpedia.Thingpedia.hard_functions }
  in
  let selected = Genie_crowd.Pipeline.select selection synthesized in
  let crowd =
    Genie_crowd.Pipeline.collect ~seed:(seed + 50) ~num_workers:cfg.Config.num_workers
      selected
  in
  let paraphrases = crowd.Genie_crowd.Pipeline.accepted in
  (* 4. hold out a fraction of compound function combinations: the paraphrase
     test of section 5.2 measures compositionality on combinations never seen
     in training *)
  let rng = Genie_util.Rng.create (seed + 60) in
  let compound_combos =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, p) -> if Ast.is_primitive p then None else Some (combo_key p))
         paraphrases)
  in
  let held_out_combos : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_hold =
    int_of_float (float_of_int (List.length compound_combos) *. cfg.Config.holdout_fraction)
  in
  List.iter
    (fun c -> Hashtbl.replace held_out_combos c ())
    (Genie_util.Rng.sample rng n_hold compound_combos);
  let is_held_out (p : Ast.program) = Hashtbl.mem held_out_combos (combo_key p) in
  let paraphrase_test_pairs, paraphrase_train =
    List.partition (fun (_, p) -> is_held_out p) paraphrases
  in
  let synth_train = List.filter (fun (_, p) -> not (is_held_out p)) synthesized in
  (* 5. assemble examples per regime *)
  let synth_examples =
    mk_examples ~source:Genie_dataset.Example.Synthesized 0 synth_train
  in
  let para_examples =
    mk_examples ~source:Genie_dataset.Example.Paraphrase 500_000 paraphrase_train
  in
  let regime = cfg.Config.regime in
  let base_examples =
    match regime with
    | Config.Genie_full -> synth_examples @ para_examples
    | Config.Synthesized_only -> synth_examples
    | Config.Paraphrase_only | Config.Wang_baseline -> para_examples
  in
  (* 6. augmentation: PPDB on paraphrases, then parameter expansion *)
  let gz = Genie_augment.Gazettes.create ~size:cfg.Config.gazette_size () in
  let aug_rng = Genie_util.Rng.create (seed + 70) in
  let with_ppdb =
    if regime = Config.Wang_baseline then base_examples
    else
      List.map
        (fun (e : Genie_dataset.Example.t) ->
          match e.Genie_dataset.Example.source with
          | Genie_dataset.Example.Paraphrase ->
              let protected =
                Genie_crowd.Worker.protected_tokens e.Genie_dataset.Example.program
              in
              { e with
                Genie_dataset.Example.tokens =
                  Genie_augment.Ppdb.augment aug_rng ~protected e.Genie_dataset.Example.tokens }
          | _ -> e)
        base_examples
  in
  let expanded =
    if regime = Config.Wang_baseline || Config.has cfg Config.No_param_expansion then
      with_ppdb
    else
      Genie_augment.Expand.expand_dataset ~scale:cfg.Config.expansion_scale lib gz aug_rng
        with_ppdb
  in
  let train = List.map Genie_dataset.Example.strip_quotes expanded in
  (* 7. train the parser *)
  let aligner_cfg =
    { (Config.aligner_config cfg) with Genie_parser_model.Aligner.lm_programs }
  in
  let model = Genie_parser_model.Aligner.train ~cfg:aligner_cfg lib train in
  let paraphrase_test =
    List.map Genie_dataset.Example.strip_quotes
      (mk_examples ~source:Genie_dataset.Example.Paraphrase 900_000 paraphrase_test_pairs)
  in
  { cfg;
    lib;
    synthesized;
    paraphrases;
    paraphrase_rejected = crowd.Genie_crowd.Pipeline.rejected;
    paraphrase_collected = crowd.Genie_crowd.Pipeline.collected;
    lm_programs;
    train;
    train_before_expansion = with_ppdb;
    paraphrase_test;
    held_out_combos;
    model }

(* --- evaluation helpers ------------------------------------------------------------ *)

let predictor (a : artifacts) : string list -> Ast.program option =
 fun tokens ->
  (Genie_parser_model.Aligner.predict a.model tokens).Genie_parser_model.Aligner.program

let evaluate (a : artifacts) (examples : Genie_dataset.Example.t list) :
    Genie_parser_model.Eval.metrics =
  Genie_parser_model.Eval.evaluate a.lib (predictor a) examples

(* canonical strings of all training programs, for new-program analyses *)
let training_programs (a : artifacts) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Hashtbl.replace tbl (Canonical.canonical_string a.lib e.Genie_dataset.Example.program) ())
    a.train;
  tbl

let split_new_programs (a : artifacts) (examples : Genie_dataset.Example.t list) =
  let seen = training_programs a in
  List.partition
    (fun (e : Genie_dataset.Example.t) ->
      not (Hashtbl.mem seen (Canonical.canonical_string a.lib e.Genie_dataset.Example.program)))
    examples
