(* PPDB-style paraphrase-database augmentation (paper section 3.3).

   The paper applies standard data augmentation based on PPDB to the
   paraphrases: lexical and short phrasal substitutions that preserve meaning.
   This is the built-in substitute for the external database: a curated
   phrase table applied with the same sampling policy. *)

type entry = { from_ : string list; to_ : string list }

let e a b = { from_ = Genie_util.Tok.tokenize a; to_ = Genie_util.Tok.tokenize b }

let table : entry list =
  [ e "picture" "photo"; e "picture" "image"; e "photo" "pic";
    e "show me" "display"; e "show me" "give me"; e "get" "fetch"; e "get" "retrieve";
    e "tell me" "inform me of"; e "notify me" "send me a notification";
    e "notify me" "ping me"; e "let me know" "inform me";
    e "when" "whenever"; e "when" "every time"; e "when" "as soon as";
    e "email" "mail"; e "emails" "mails"; e "message" "msg"; e "messages" "msgs";
    e "send" "dispatch"; e "post" "publish"; e "new" "fresh"; e "latest" "most recent";
    e "changes" "is updated"; e "changes" "gets modified";
    e "files" "documents"; e "file" "document"; e "folder" "directory";
    e "delete" "remove"; e "create" "make"; e "search" "look up";
    e "weather" "forecast"; e "temperature" "temp";
    e "bigger than" "larger than"; e "smaller than" "tinier than";
    e "above" "over"; e "below" "under"; e "containing" "that contain";
    e "titled" "with the title"; e "from" "sent from";
    e "play" "start playing"; e "song" "track"; e "songs" "tracks";
    e "turn on" "switch on"; e "turn off" "switch off"; e "set" "change";
    e "my" "all my"; e "a" "some"; e "call" "phone"; e "house" "home" ]

(* The phrase table indexed by the first token of each [from_] phrase, so a
   sentence only probes the entries whose phrases could actually start at one
   of its tokens. The index is a hash table — and deliberately a randomized
   one ([~random:true]), so any code path that iterated it without sorting
   would be non-deterministic within a single process, not just under
   OCAMLRUNPARAM=R. Every listing derived from it goes through a sorted
   fold. *)
type t = { by_token : (string, entry list) Hashtbl.t }

let compare_entry a b = compare (a.from_, a.to_) (b.from_, b.to_)

let index (entries : entry list) : t =
  let by_token = Hashtbl.create ~random:true 64 in
  List.iter
    (fun entry ->
      match entry.from_ with
      | [] -> ()
      | tok :: _ ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_token tok) in
          Hashtbl.replace by_token tok (entry :: prev))
    entries;
  { by_token }

let default = index table

(* Canonical listing: hash-table iteration order depends on the (randomized)
   hash seed, so fold into a list and sort by phrase. *)
let entries t =
  List.sort compare_entry
    (Hashtbl.fold (fun _ es acc -> List.rev_append es acc) t.by_token [])

(* Applies up to [max_subs] random substitutions, avoiding token spans that
   belong to parameter values (so the program label stays valid). *)
let augment rng ?(max_subs = 2) ?(table = default) ~protected
    (tokens : string list) : string list =
  let is_protected t = List.mem t protected in
  (* candidate entries via the index, in canonical phrase order — never in
     hash-table order, which would leak the hash seed into the RNG draws *)
  let candidates =
    List.sort_uniq compare_entry
      (List.concat_map
         (fun tok ->
           Option.value ~default:[] (Hashtbl.find_opt table.by_token tok))
         tokens)
  in
  let applicable =
    List.filter
      (fun { from_; _ } ->
        not (List.exists is_protected from_)
        && Genie_util.Tok.contains_substring
             ~sub:(" " ^ String.concat " " from_ ^ " ")
             (" " ^ String.concat " " tokens ^ " "))
      candidates
  in
  let substitute toks { from_; to_ } =
    match Genie_util.Tok.match_sub toks from_ with
    | None -> toks
    | Some (before, after) -> before @ to_ @ after
  in
  let rec go toks n entries =
    if n = 0 then toks
    else
      match entries with
      | [] -> toks
      | _ ->
          let entry = Genie_util.Rng.pick rng entries in
          let toks = substitute toks entry in
          go toks (n - 1) (List.filter (fun x -> x != entry) entries)
  in
  if applicable = [] then tokens
  else go tokens (1 + Genie_util.Rng.int rng max_subs) applicable
