(** Parameter replacement (paper sections 3.3-3.4).

    Every example is instantiated several times with different parameter
    values from the gazettes so the copy mechanism does not overfit specific
    strings. The paper's multipliers: paraphrases with string parameters x30,
    other paraphrases x10, synthesized primitive commands x4, other
    synthesized sentences x1. *)

open Genie_thingtalk

val replaceable : Schema.Library.t -> Ast.program -> (string * Value.t) list
(** The string/entity constants a gazette can substitute. *)

val expand_once :
  Schema.Library.t ->
  Gazettes.t ->
  Genie_util.Rng.t ->
  Genie_dataset.Example.t ->
  Genie_dataset.Example.t option
(** One fresh-valued copy: rewrites both program and sentence, or [None] when
    nothing is replaceable or the old rendering cannot be located (the label
    must stay consistent). *)

val multiplier : ?scale:float -> Genie_dataset.Example.t -> int
(** The paper's expansion policy, scaled by [scale] ([scale > 1] grows the
    corpus toward paper scale; see [Synthesis.Stream]). *)

val shard_seed : seed:int -> index:int -> int
(** The per-example RNG seed used by the sharded expanders: a pure function
    of (seed, dataset index), never of worker id or retry attempt. Exposed
    so the streaming pipeline ([Synthesis.Stream]) derives byte-identical
    copies from the same contract. *)

val expand_dataset :
  ?scale:float ->
  Schema.Library.t ->
  Gazettes.t ->
  Genie_util.Rng.t ->
  Genie_dataset.Example.t list ->
  Genie_dataset.Example.t list
(** Each example plus its expanded copies, with fresh ids. Sequential: one
    RNG threads through the whole dataset. *)

val expand_dataset_sharded :
  ?scale:float ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?max_attempts:int ->
  Schema.Library.t ->
  Gazettes.t ->
  seed:int ->
  Genie_dataset.Example.t list ->
  Genie_dataset.Example.t list
(** {!expand_dataset} with one shard per example, fanned over [workers]
    domains ([0]/[1]: same algorithm on the calling domain). Each shard's
    RNG derives from [(seed, dataset index)] only, and ids are renumbered in
    dataset order at merge, so the output is byte-identical at every worker
    count and under injected shard crashes ([fault]; a crashed shard is
    retried up to [max_attempts] times with an identical result). *)
