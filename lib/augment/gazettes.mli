(** Parameter-value gazettes (paper section 3.3).

    The paper ships 49 parameter lists and named-entity gazettes (7.8M values
    scraped from the web: song titles, hashtags, people names, free-form
    text, ...). This module is the synthetic equivalent: deterministic
    compositional generators producing large pools of distinct,
    type-appropriate values. The augmentation mechanism only needs many
    distinct values per slot type; provenance is irrelevant. *)

type t = {
  pools : (string * string array) list;
      (** gazette name -> values, in canonical (sorted-by-name) order —
          derived from [by_name] by a sorted fold, never by raw hash-table
          iteration, so it is stable under randomized hashing *)
  locations : string array;
  by_name : (string, string array) Hashtbl.t;  (** O(1) pool lookup *)
}

val create : ?size:int -> ?profile:[ `Core | `Extended ] -> unit -> t
(** [size] values per generated pool (curated lists keep their natural
    size). Deterministic: equal sizes and profiles yield equal pools.
    [`Core] (the default) is the historical 21-pool registry, byte-identical
    across versions so aligner membership features and serve goldens are
    stable; [`Extended] adds ten more domains (podcasts, recipes, movies,
    tv shows, books, teams, landmarks, beverages, workouts, products) for
    paper-scale corpus expansion via the streaming pipeline. *)

val total_values : t -> int

val sample_from : t -> Genie_util.Rng.t -> string -> string option
(** A uniform draw from the named pool. *)

val gazette_for : param_name:string -> ty:Genie_thingtalk.Ttype.t -> string option
(** Which gazette supplies values for a parameter, by entity type or by
    conventional parameter name (the paper's association of parameter lists
    to parameters). [None] for non-replaceable types. *)

val membership : t -> string -> string list
(** The pools containing a value; a feature of the parser's copy scoring. *)
