(* Parameter-value gazettes (paper section 3.3).

   The paper ships 49 parameter lists and named-entity gazettes (7.8M values)
   scraped from the web: YouTube titles, hashtags, song titles, people names,
   country names, currencies, plus free-form English text. This module builds
   the synthetic equivalent: compositional generators seeded deterministically
   that produce large pools of distinct, type-appropriate values. What the
   augmentation mechanism needs is *many distinct values per slot type* so the
   copy mechanism does not overfit specific strings; provenance is irrelevant. *)

open Genie_thingtalk

let first_names =
  [ "james"; "mary"; "john"; "patricia"; "robert"; "jennifer"; "michael"; "linda";
    "william"; "elizabeth"; "david"; "barbara"; "richard"; "susan"; "joseph"; "jessica";
    "thomas"; "sarah"; "charles"; "karen"; "wei"; "yuki"; "ahmed"; "fatima"; "carlos";
    "sofia"; "ivan"; "olga"; "raj"; "priya" ]

let last_names =
  [ "smith"; "johnson"; "williams"; "brown"; "jones"; "garcia"; "miller"; "davis";
    "rodriguez"; "martinez"; "hernandez"; "lopez"; "gonzalez"; "wilson"; "anderson";
    "thomas"; "taylor"; "moore"; "jackson"; "martin"; "lee"; "chen"; "wang"; "kumar";
    "singh"; "nakamura"; "kim"; "novak"; "rossi"; "muller" ]

let adjectives =
  [ "happy"; "blue"; "silent"; "golden"; "broken"; "wild"; "electric"; "midnight";
    "lonely"; "crazy"; "sweet"; "dark"; "bright"; "lost"; "endless"; "tiny"; "brave";
    "frozen"; "burning"; "hidden" ]

let nouns =
  [ "heart"; "river"; "dream"; "road"; "night"; "fire"; "star"; "summer"; "storm";
    "dance"; "light"; "shadow"; "ocean"; "city"; "sky"; "garden"; "train"; "mirror";
    "echo"; "mountain" ]

let verbs_ing =
  [ "running"; "falling"; "dancing"; "dreaming"; "waiting"; "flying"; "singing";
    "burning"; "drifting"; "shining" ]

let topics =
  [ "cats"; "dogs"; "cooking"; "travel"; "music"; "science"; "politics"; "soccer";
    "basketball"; "movies"; "books"; "coffee"; "gardening"; "photography"; "space";
    "history"; "art"; "fitness"; "fashion"; "cars" ]

let cities =
  [ "new york"; "london"; "paris"; "tokyo"; "beijing"; "seattle"; "austin"; "chicago";
    "boston"; "berlin"; "madrid"; "rome"; "sydney"; "toronto"; "mumbai"; "seoul";
    "mexico city"; "san jose"; "portland"; "denver"; "miami"; "atlanta"; "dallas";
    "houston"; "phoenix"; "stanford"; "palo alto"; "mountain view" ]

let countries =
  [ "france"; "japan"; "brazil"; "canada"; "italy"; "germany"; "spain"; "india";
    "china"; "mexico"; "kenya"; "egypt"; "norway"; "chile"; "australia" ]

let currencies = [ "usd"; "eur"; "gbp"; "jpy"; "cny"; "cad"; "aud"; "chf" ]

let message_templates =
  [ "i will be there in NUM minutes"; "do not forget the meeting"; "see you soon";
    "happy birthday to you"; "what a beautiful day"; "running late today";
    "dinner is ready"; "call me when you can"; "congrats on the new job";
    "thank you so much"; "let us grab coffee ADJ NOUN"; "the ADJ NOUN is here";
    "remember to buy milk"; "good luck with the exam"; "just landed at the airport" ]

let news_templates =
  [ "ADJ NOUN shakes markets"; "scientists discover ADJ NOUN"; "election results in CITY";
    "new study links NOUN to NOUN"; "CITY announces ADJ plan"; "breaking news from CITY";
    "the rise of the ADJ NOUN"; "NOUN prices hit record high" ]

(* A deterministic pool of [n] values built by a compositional pattern. *)
let pool ~seed ~n (gen : Genie_util.Rng.t -> string) : string array =
  let rng = Genie_util.Rng.create seed in
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  let produced = ref 0 in
  let attempts = ref 0 in
  while !produced < n && !attempts < n * 20 do
    incr attempts;
    let v = gen rng in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      out := v :: !out;
      incr produced
    end
  done;
  Array.of_list !out

let compose rng parts = String.concat " " (List.map (fun f -> f rng) parts)

let pick = Genie_util.Rng.pick

let person_names ~seed ~n =
  pool ~seed ~n (fun rng -> compose rng [ (fun r -> pick r first_names); (fun r -> pick r last_names) ])

let usernames ~seed ~n =
  pool ~seed ~n (fun rng ->
      pick rng first_names ^ pick rng [ ""; "_"; "." ] ^ pick rng last_names
      ^ pick rng [ ""; "1"; "42"; "2019"; "xo" ])

let hashtags ~seed ~n =
  pool ~seed ~n (fun rng ->
      pick rng [ ""; "my"; "best"; "daily" ] ^ pick rng topics
      ^ pick rng [ ""; "life"; "love"; "gram"; "time" ])

let song_titles ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 4 with
      | 0 -> compose rng [ (fun r -> pick r adjectives); (fun r -> pick r nouns) ]
      | 1 -> compose rng [ (fun r -> pick r verbs_ing); (fun _ -> "in the"); (fun r -> pick r nouns) ]
      | 2 -> compose rng [ (fun _ -> "the"); (fun r -> pick r adjectives); (fun r -> pick r nouns) ]
      | _ -> compose rng [ (fun r -> pick r nouns); (fun _ -> "of"); (fun r -> pick r nouns) ])

let artist_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 3 with
      | 0 -> compose rng [ (fun _ -> "the"); (fun r -> pick r adjectives); (fun r -> pick r nouns ^ "s") ]
      | 1 -> compose rng [ (fun r -> pick r first_names); (fun r -> pick r last_names) ]
      | _ -> compose rng [ (fun r -> pick r first_names); (fun _ -> "and the"); (fun r -> pick r nouns ^ "s") ])

let video_titles ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 3 with
      | 0 -> compose rng [ (fun _ -> "how to"); (fun r -> pick r [ "make"; "fix"; "cook"; "build" ]); (fun r -> pick r nouns) ]
      | 1 -> compose rng [ (fun _ -> "top 10"); (fun r -> pick r adjectives); (fun r -> pick r nouns ^ "s") ]
      | _ -> compose rng [ (fun r -> pick r topics); (fun _ -> "for beginners") ])

let channel_names ~seed ~n =
  pool ~seed ~n (fun rng -> compose rng [ (fun r -> pick r topics); (fun r -> pick r [ "daily"; "tv"; "hub"; "world"; "nation" ]) ])

let playlist_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng [ (fun r -> pick r adjectives); (fun r -> pick r [ "vibes"; "mix"; "jams"; "beats"; "hits" ]) ])

let fill_template rng t =
  String.concat " "
    (List.map
       (fun w ->
         match w with
         | "ADJ" -> pick rng adjectives
         | "NOUN" -> pick rng nouns
         | "CITY" -> pick rng cities
         | "NUM" -> string_of_int (5 * (1 + Genie_util.Rng.int rng 12))
         | w -> w)
       (String.split_on_char ' ' t))

let free_text ~seed ~n =
  pool ~seed ~n (fun rng -> fill_template rng (pick rng message_templates))

let news_titles ~seed ~n =
  pool ~seed ~n (fun rng -> fill_template rng (pick rng news_templates))

let file_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      Printf.sprintf "/%s/%s%s" (pick rng topics)
        (pick rng nouns)
        (pick rng [ ".txt"; ".pdf"; ".jpg"; ".doc"; ".mp3"; "" ]))

let urls ~seed ~n =
  pool ~seed ~n (fun rng ->
      Printf.sprintf "https://%s.%s/%s" (pick rng topics)
        (pick rng [ "com"; "org"; "net"; "io" ])
        (pick rng nouns))

let emails ~seed ~n =
  pool ~seed ~n (fun rng ->
      Printf.sprintf "%s.%s@%s.com" (pick rng first_names) (pick rng last_names)
        (pick rng [ "gmail"; "yahoo"; "work"; "example" ]))

let phone_numbers ~seed ~n =
  pool ~seed ~n (fun rng ->
      Printf.sprintf "%d55-%04d" (2 + Genie_util.Rng.int rng 7) (Genie_util.Rng.int rng 10000))

let subreddits ~seed ~n =
  pool ~seed ~n (fun rng -> pick rng topics ^ pick rng [ ""; "pics"; "memes"; "gifs"; "news" ])

let repos ~seed ~n =
  pool ~seed ~n (fun rng ->
      Printf.sprintf "%s/%s-%s" (pick rng first_names) (pick rng topics) (pick rng [ "tools"; "lib"; "app"; "kit" ]))

(* --- extended domains (paper-scale corpora) --------------------------------

   The paper ships 49 gazettes; the core profile above covers 21. These
   extra domains push coverage toward that scale for the streaming pipeline
   (`genie synthesize --spill-dir`). They live behind the [`Extended]
   profile: the default [`Core] registry is byte-identical to the historical
   one, so aligner membership features and every serve/trace golden are
   unaffected unless a caller opts in. *)

let podcast_titles ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 3 with
      | 0 -> compose rng [ (fun _ -> "the"); (fun r -> pick r topics); (fun _ -> "show") ]
      | 1 -> compose rng [ (fun r -> pick r adjectives); (fun _ -> "talks about"); (fun r -> pick r topics) ]
      | _ -> compose rng [ (fun r -> pick r topics); (fun r -> pick r [ "weekly"; "daily"; "hour"; "radio" ]) ])

let recipe_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r [ "roasted"; "grilled"; "spicy"; "creamy"; "baked"; "fresh" ]);
          (fun r -> pick r [ "chicken"; "tofu"; "salmon"; "pasta"; "rice"; "salad"; "soup"; "tacos" ]);
          (fun r -> pick r [ "with herbs"; "with lemon"; "bowl"; "skillet"; "for two"; "" ]) ])

let movie_titles ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 3 with
      | 0 -> compose rng [ (fun _ -> "the"); (fun r -> pick r nouns); (fun _ -> "returns") ]
      | 1 -> compose rng [ (fun r -> pick r adjectives); (fun r -> pick r nouns) ]
      | _ -> compose rng [ (fun r -> pick r nouns); (fun _ -> "of the"); (fun r -> pick r adjectives); (fun r -> pick r nouns) ])

let tv_shows ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r [ "true"; "breaking"; "stranger"; "mad"; "modern"; "better" ]);
          (fun r -> pick r nouns ^ pick r [ ""; "s" ]) ])

let book_titles ~seed ~n =
  pool ~seed ~n (fun rng ->
      match Genie_util.Rng.int rng 2 with
      | 0 -> compose rng [ (fun _ -> "a"); (fun r -> pick r nouns); (fun _ -> "of"); (fun r -> pick r nouns ^ "s") ]
      | _ -> compose rng [ (fun _ -> "the"); (fun r -> pick r adjectives); (fun r -> pick r nouns) ])

let team_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng [ (fun r -> pick r cities); (fun r -> pick r nouns ^ "s") ])

let landmarks ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r cities);
          (fun r -> pick r [ "museum"; "park"; "tower"; "bridge"; "square"; "market"; "stadium" ]) ])

let coffee_drinks ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r [ "iced"; "hot"; "double"; "oat milk"; "decaf"; "vanilla" ]);
          (fun r -> pick r [ "latte"; "americano"; "cappuccino"; "mocha"; "espresso"; "cold brew" ]) ])

let workout_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r [ "morning"; "hiit"; "full body"; "upper body"; "core"; "leg day" ]);
          (fun r -> pick r [ "workout"; "session"; "circuit"; "stretch"; "run" ]) ])

let product_names ~seed ~n =
  pool ~seed ~n (fun rng ->
      compose rng
        [ (fun r -> pick r [ "wireless"; "portable"; "smart"; "compact"; "ergonomic" ]);
          (fun r -> pick r [ "speaker"; "lamp"; "keyboard"; "charger"; "bottle"; "backpack" ]) ])

(* The registry: gazette name -> value pool. Pool sizes are configurable so
   tests stay fast while benchmarks can scale up. *)
type t = {
  pools : (string * string array) list;
  locations : string array;
  by_name : (string, string array) Hashtbl.t;
}

(* Canonical listing of an index: hash-table iteration order depends on the
   (randomized) hash seed, so any list derived from the table folds and then
   sorts by pool name. [by_name] is built [~random:true] on purpose — an
   unsorted iteration anywhere downstream would show up as in-process
   non-determinism immediately, not only under OCAMLRUNPARAM=R. *)
let sorted_pools by_name =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name arr acc -> (name, arr) :: acc) by_name [])

let create ?(size = 2000) ?(profile = `Core) () =
  let n = size in
  let extended_pools =
    match profile with
    | `Core -> []
    | `Extended ->
        [ ("podcast", podcast_titles ~seed:121 ~n);
          ("recipe", recipe_names ~seed:122 ~n);
          ("movie", movie_titles ~seed:123 ~n);
          ("tv_show", tv_shows ~seed:124 ~n);
          ("book", book_titles ~seed:125 ~n);
          ("team", team_names ~seed:126 ~n);
          ("landmark", landmarks ~seed:127 ~n);
          ("coffee_drink", coffee_drinks ~seed:128 ~n);
          ("workout", workout_names ~seed:129 ~n);
          ("product", product_names ~seed:130 ~n) ]
  in
  let raw_pools =
    extended_pools
    @
      [ ("person_name", person_names ~seed:101 ~n);
        ("username", usernames ~seed:102 ~n);
        ("hashtag", hashtags ~seed:103 ~n);
        ("song", song_titles ~seed:104 ~n);
        ("artist", artist_names ~seed:105 ~n);
        ("album", song_titles ~seed:106 ~n);
        ("playlist", playlist_names ~seed:107 ~n);
        ("video_title", video_titles ~seed:108 ~n);
        ("channel", channel_names ~seed:109 ~n);
        ("free_text", free_text ~seed:110 ~n);
        ("news_title", news_titles ~seed:111 ~n);
        ("file_name", file_names ~seed:112 ~n);
        ("url", urls ~seed:113 ~n);
        ("email", emails ~seed:114 ~n);
        ("phone", phone_numbers ~seed:115 ~n);
        ("subreddit", subreddits ~seed:116 ~n);
        ("repo", repos ~seed:117 ~n);
        ("city", Array.of_list cities);
        ("country", Array.of_list countries);
        ("currency", Array.of_list currencies);
        ("topic", Array.of_list topics) ]
  in
  let by_name = Hashtbl.create ~random:true 32 in
  List.iter (fun (name, arr) -> Hashtbl.replace by_name name arr) raw_pools;
  { pools = sorted_pools by_name; locations = Array.of_list cities; by_name }

let total_values t =
  List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 t.pools

let sample_from t rng name =
  match Hashtbl.find_opt t.by_name name with
  | Some arr when Array.length arr > 0 -> Some (Genie_util.Rng.pick_array rng arr)
  | _ -> None

(* Which gazette provides values for a given parameter name and type. This is
   the analogue of the paper's association of parameter lists to parameters. *)
let gazette_for ~param_name ~(ty : Ttype.t) =
  match ty with
  | Ttype.Entity "tt:username" -> Some "username"
  | Ttype.Entity "tt:hashtag" -> Some "hashtag"
  | Ttype.Entity "tt:song" -> Some "song"
  | Ttype.Entity "tt:artist" -> Some "artist"
  | Ttype.Entity "tt:album" -> Some "album"
  | Ttype.Entity "tt:playlist" -> Some "playlist"
  | Ttype.Entity "tt:channel" -> Some "channel"
  | Ttype.Entity "tt:subreddit" -> Some "subreddit"
  | Ttype.Entity "tt:repo" -> Some "repo"
  | Ttype.Entity "tt:slack_channel" -> Some "topic"
  | Ttype.Entity "tt:sports_team" -> Some "topic"
  (* extended-profile domains: the pools only exist under [`Extended], and
     no core skill declares these kinds, so the core pipeline is unchanged *)
  | Ttype.Entity "tt:podcast" -> Some "podcast"
  | Ttype.Entity "tt:recipe" -> Some "recipe"
  | Ttype.Entity "tt:movie" -> Some "movie"
  | Ttype.Entity "tt:tv_show" -> Some "tv_show"
  | Ttype.Entity "tt:book" -> Some "book"
  | Ttype.Entity "tt:team" -> Some "team"
  | Ttype.Entity "tt:landmark" -> Some "landmark"
  | Ttype.Entity "tt:beverage" -> Some "coffee_drink"
  | Ttype.Entity "tt:workout" -> Some "workout"
  | Ttype.Entity "tt:product" -> Some "product"
  | Ttype.Email_address -> Some "email"
  | Ttype.Phone_number -> Some "phone"
  | Ttype.Url -> Some "url"
  | Ttype.Path_name -> Some "file_name"
  | Ttype.Location -> Some "city"
  | Ttype.String -> (
      match param_name with
      | "query" | "q" -> Some "topic"
      | "title" -> Some "news_title"
      | "sender" | "sender_name" | "organizer" | "name" -> Some "person_name"
      | "cuisine" -> Some "topic"
      | "channel" -> Some "channel"
      | "file_name" | "old_name" | "new_name" | "folder_name" -> Some "file_name"
      | _ -> Some "free_text")
  | _ -> None

(* Membership test used by the semantic parser's slot-filling features. *)
let membership t (s : string) : string list =
  List.filter_map
    (fun (name, arr) -> if Array.exists (fun v -> v = s) arr then Some name else None)
    t.pools
