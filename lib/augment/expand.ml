(* Parameter replacement (paper sections 3.3-3.4).

   Every example is instantiated several times with different parameter values
   drawn from the gazettes, so the model sees many value combinations and the
   copy mechanism does not overfit specific strings. The paper's multipliers:
   paraphrases with string parameters are expanded 30 times, other paraphrases
   10 times, synthesized primitive commands 4 times, and other synthesized
   sentences once. *)

open Genie_thingtalk

(* parameter name -> declared type, for every parameter reachable from the
   program's functions *)
let param_types lib (p : Ast.program) : (string * Ttype.t) list =
  List.concat_map
    (fun fn ->
      match Schema.Library.find_fn lib fn with
      | None -> []
      | Some f -> List.map (fun pr -> (pr.Schema.p_name, pr.Schema.p_type)) f.Schema.f_params)
    (Ast.program_functions p)

let replaceable lib (p : Ast.program) : (string * Value.t) list =
  let types = param_types lib p in
  List.filter
    (fun (name, v) ->
      match v with
      | Value.String _ | Value.Entity _ -> (
          match List.assoc_opt name types with
          | Some ty -> Gazettes.gazette_for ~param_name:name ~ty <> None
          | None -> false)
      | _ -> false)
    (Ast.program_constants p)

let render_tokens v =
  Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v)

(* Replace one value occurrence in the sentence tokens; returns None if the
   old rendering cannot be located (in which case the substitution is
   skipped to keep the label consistent). *)
let replace_in_tokens tokens old_v new_v =
  match Genie_util.Tok.match_sub tokens (render_tokens old_v) with
  | Some (before, after) -> Some (before @ render_tokens new_v @ after)
  | None -> None

let fresh_value gz rng ~param_name ~(ty : Ttype.t) (old_v : Value.t) : Value.t option =
  match Gazettes.gazette_for ~param_name ~ty with
  | None -> None
  | Some pool -> (
      match Gazettes.sample_from gz rng pool with
      | None -> None
      | Some s -> (
          match old_v with
          | Value.String _ -> Some (Value.String s)
          | Value.Entity e -> Some (Value.Entity { e with value = s })
          | _ -> None))

(* One expansion of an example with fresh parameter values. *)
let expand_once lib gz rng (e : Genie_dataset.Example.t) : Genie_dataset.Example.t option
    =
  let types = param_types lib e.Genie_dataset.Example.program in
  let slots = replaceable lib e.Genie_dataset.Example.program in
  if slots = [] then None
  else begin
    let substitutions =
      List.filter_map
        (fun (name, old_v) ->
          match List.assoc_opt name types with
          | None -> None
          | Some ty ->
              Option.map (fun nv -> (name, old_v, nv)) (fresh_value gz rng ~param_name:name ~ty old_v))
        slots
    in
    if substitutions = [] then None
    else begin
      (* rewrite the sentence; all substitutions must land for the label to
         stay consistent *)
      let tokens =
        List.fold_left
          (fun acc (_, old_v, new_v) ->
            Option.bind acc (fun toks -> replace_in_tokens toks old_v new_v))
          (Some e.Genie_dataset.Example.tokens) substitutions
      in
      match tokens with
      | None -> None
      | Some tokens ->
          let program =
            Ast.map_constants
              (fun name v ->
                match
                  List.find_opt (fun (n, ov, _) -> n = name && Value.equal ov v) substitutions
                with
                | Some (_, _, nv) -> nv
                | None -> v)
              e.Genie_dataset.Example.program
          in
          Some { e with Genie_dataset.Example.tokens; program }
    end
  end

(* The paper's expansion policy. [scale] shrinks the multipliers uniformly so
   tests and small benchmarks stay fast. *)
let multiplier ?(scale = 1.0) (e : Genie_dataset.Example.t) =
  let has_string_param =
    List.exists
      (fun (_, v) -> match v with Value.String _ -> true | _ -> false)
      (Ast.program_constants e.Genie_dataset.Example.program)
  in
  let base =
    match (e.Genie_dataset.Example.source, has_string_param) with
    | Genie_dataset.Example.Paraphrase, true -> 30
    | Genie_dataset.Example.Paraphrase, false -> 10
    | Genie_dataset.Example.Synthesized, _ ->
        if Genie_dataset.Example.is_primitive e then 4 else 1
    | Genie_dataset.Example.Evaluation _, _ -> 1
  in
  max 1 (int_of_float (ceil (float_of_int base *. scale)))

(* Expands a dataset: each example yields itself plus [multiplier - 1]
   parameter-replaced copies (when its parameters are replaceable). *)
let expand_dataset ?scale lib gz rng (examples : Genie_dataset.Example.t list) :
    Genie_dataset.Example.t list =
  let next_id = ref (List.fold_left (fun m e -> max m e.Genie_dataset.Example.id) 0 examples + 1) in
  List.concat_map
    (fun e ->
      let copies = multiplier ?scale e - 1 in
      let extras =
        List.filter_map
          (fun _ ->
            match expand_once lib gz rng e with
            | Some e' ->
                let id = !next_id in
                incr next_id;
                Some { e' with Genie_dataset.Example.id = id }
            | None -> None)
          (List.init copies (fun i -> i))
      in
      e :: extras)
    examples

(* Sharded expansion: one shard per example, same determinism contract as
   the synthesis engine. Each shard derives its RNG from (seed, dataset
   index) — never from the worker id or the retry attempt — so its copies
   are a pure function of the example, and the merge (dataset order, ids
   renumbered sequentially) is byte-identical at every worker count and
   under injected shard crashes. Unlike [expand_dataset], which threads one
   RNG through the whole dataset, the output here does not depend on which
   other examples are in the batch. *)
let shard_seed ~seed ~index =
  Int64.to_int
    (Int64.shift_right_logical
       (Genie_util.Hash64.int (Genie_util.Hash64.int 0L seed) index)
       2)

let expand_dataset_sharded ?scale ?(workers = 0)
    ?(fault = Genie_conc.Fault.none) ?(max_attempts = 3) lib gz ~seed
    (examples : Genie_dataset.Example.t list) : Genie_dataset.Example.t list =
  let module Fault = Genie_conc.Fault in
  let fault_hook =
    if Fault.active fault then
      Some
        (fun ~index ~attempt ->
          if Fault.crashes fault ~id:index ~attempt then Some Fault.Injected_crash
          else if Fault.drops fault ~id:index ~attempt then Some Fault.Injected_drop
          else None)
    else None
  in
  let groups =
    Genie_conc.Pool.map_list ~workers ~max_attempts ?fault_hook
      ~handler:(fun _slot (index, e) ->
        let rng = Genie_util.Rng.create (shard_seed ~seed ~index) in
        let copies = multiplier ?scale e - 1 in
        let extras =
          List.filter_map
            (fun _ -> expand_once lib gz rng e)
            (List.init copies (fun i -> i))
        in
        e :: extras)
      (List.mapi (fun i e -> (i, e)) examples)
  in
  let next_id =
    ref (List.fold_left (fun m e -> max m e.Genie_dataset.Example.id) 0 examples + 1)
  in
  List.concat_map
    (function
      | [] -> []
      | orig :: extras ->
          orig
          :: List.map
               (fun e' ->
                 let id = !next_id in
                 incr next_id;
                 { e' with Genie_dataset.Example.id = id })
               extras)
    groups
