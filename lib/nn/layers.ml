(* Neural layers built on the autodiff tape: parameters, linear maps,
   embeddings, and an LSTM cell. Every layer is row-batched: feed it
   [batch x dim] nodes and it produces [batch x dim'] nodes; a one-row batch
   is bitwise identical to the historical per-example path. *)

type param = { uid : int; name : string; tensor : Tensor.t; grad : Tensor.t;
               (* Adam state *)
               m : Tensor.t; v : Tensor.t }

(* Parameters are created on the main domain before workers start; the uid
   keys tape-private gradient buffers during parallel training. *)
let next_uid = ref 0

let fresh_uid () =
  let u = !next_uid in
  incr next_uid;
  u

let mk_param rng name rows cols =
  let tensor = Tensor.init_uniform rng rows cols in
  { uid = fresh_uid ();
    name;
    tensor;
    grad = Tensor.create rows cols;
    m = Tensor.create rows cols;
    v = Tensor.create rows cols }

let mk_param_zero name rows cols =
  let tensor = Tensor.create rows cols in
  { uid = fresh_uid ();
    name;
    tensor;
    grad = Tensor.create rows cols;
    m = Tensor.create rows cols;
    v = Tensor.create rows cols }

(* Bind a parameter onto the tape for this forward pass: a leaf node whose
   gradient buffer is the parameter's shared one -- or, on a private-leaves
   tape (parallel workers), a tape-private buffer keyed by the uid so no two
   domains ever write the same gradient storage. *)
let use tape (p : param) : Autodiff.node =
  let grad =
    match
      Autodiff.private_grad tape ~key:p.uid ~rows:p.tensor.Tensor.rows
        ~cols:p.tensor.Tensor.cols
    with
    | Some g -> g
    | None -> p.grad
  in
  Autodiff.leaf_with_grad tape p.tensor ~grad

(* --- linear --------------------------------------------------------------- *)

type linear = { w : param; b : param }

let mk_linear rng name ~input ~output =
  { w = mk_param rng (name ^ ".w") input output; b = mk_param_zero (name ^ ".b") 1 output }

let linear_params l = [ l.w; l.b ]

let apply_linear tape (l : linear) x =
  Autodiff.add tape (Autodiff.vec_mat tape x (use tape l.w)) (use tape l.b)

(* --- embedding -------------------------------------------------------------- *)

type embedding = { table : param; dim : int }

let mk_embedding rng name ~vocab ~dim = { table = mk_param rng name vocab dim; dim }

let embedding_params e = [ e.table ]

let lookup tape (e : embedding) i = Autodiff.row tape (use tape e.table) i

let lookup_rows tape (e : embedding) ids = Autodiff.rows tape (use tape e.table) ids

(* --- LSTM cell --------------------------------------------------------------- *)

type lstm = {
  wi : linear; (* input gate *)
  wf : linear; (* forget gate *)
  wo : linear; (* output gate *)
  wg : linear; (* candidate *)
  hidden : int;
}

let mk_lstm rng name ~input ~hidden =
  let io = input + hidden in
  { wi = mk_linear rng (name ^ ".i") ~input:io ~output:hidden;
    wf = mk_linear rng (name ^ ".f") ~input:io ~output:hidden;
    wo = mk_linear rng (name ^ ".o") ~input:io ~output:hidden;
    wg = mk_linear rng (name ^ ".g") ~input:io ~output:hidden;
    hidden }

let lstm_params l =
  linear_params l.wi @ linear_params l.wf @ linear_params l.wo @ linear_params l.wg

type lstm_state = { h : Autodiff.node; c : Autodiff.node }

let lstm_init ?(rows = 1) tape (l : lstm) =
  { h = Autodiff.const tape (Tensor.create rows l.hidden);
    c = Autodiff.const tape (Tensor.create rows l.hidden) }

let lstm_step tape (l : lstm) (st : lstm_state) x : lstm_state =
  let xh = Autodiff.concat tape x st.h in
  let i = Autodiff.sigmoid tape (apply_linear tape l.wi xh) in
  let f = Autodiff.sigmoid tape (apply_linear tape l.wf xh) in
  let o = Autodiff.sigmoid tape (apply_linear tape l.wo xh) in
  let g = Autodiff.tanh_ tape (apply_linear tape l.wg xh) in
  let c = Autodiff.add tape (Autodiff.mul tape f st.c) (Autodiff.mul tape i g) in
  let h = Autodiff.mul tape o (Autodiff.tanh_ tape c) in
  { h; c }

(* --- dot-product attention ------------------------------------------------------ *)

(* Attention of a batch of decoder states over per-step batches of encoder
   states: returns (weights node [rows x T], context node [rows x hidden]).
   [lengths.(r)] masks encoder positions at or beyond row r's source length
   ([neg_infinity] score, zero weight, no gradient). Scoring and the
   context sum are fused single ops (three tape nodes per call instead of
   ~4T) that replay the historical per-step node chain's arithmetic element
   for element. *)
let attention ?lengths tape (states : Autodiff.node list) (query : Autodiff.node) =
  let rws = query.Autodiff.value.Tensor.rows in
  let sts = Array.of_list states in
  let scores = Autodiff.attention_scores tape ?lengths sts query in
  let weights = Autodiff.softmax tape scores in
  let context =
    if Array.length sts = 0 then Autodiff.const tape (Tensor.create rws 1)
    else Autodiff.attention_context tape weights sts
  in
  (weights, context)
