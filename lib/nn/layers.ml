(* Neural layers built on the autodiff tape: parameters, linear maps,
   embeddings, and an LSTM cell. *)

type param = { name : string; tensor : Tensor.t; grad : Tensor.t; (* Adam state *)
               m : Tensor.t; v : Tensor.t }

let mk_param rng name rows cols =
  let tensor = Tensor.init_uniform rng rows cols in
  { name;
    tensor;
    grad = Tensor.create rows cols;
    m = Tensor.create rows cols;
    v = Tensor.create rows cols }

let mk_param_zero name rows cols =
  let tensor = Tensor.create rows cols in
  { name;
    tensor;
    grad = Tensor.create rows cols;
    m = Tensor.create rows cols;
    v = Tensor.create rows cols }

(* Bind a parameter onto the tape for this forward pass: a leaf node sharing
   the parameter's gradient buffer. *)
let use tape (p : param) : Autodiff.node =
  let n = Autodiff.leaf tape p.tensor in
  (* share gradient storage by copying after backward; simpler: return a node
     whose grad buffer IS the param's grad *)
  ignore n;
  { n with Autodiff.grad = p.grad }

(* --- linear --------------------------------------------------------------- *)

type linear = { w : param; b : param }

let mk_linear rng name ~input ~output =
  { w = mk_param rng (name ^ ".w") input output; b = mk_param_zero (name ^ ".b") 1 output }

let linear_params l = [ l.w; l.b ]

let apply_linear tape (l : linear) x =
  Autodiff.add tape (Autodiff.vec_mat tape x (use tape l.w)) (use tape l.b)

(* --- embedding -------------------------------------------------------------- *)

type embedding = { table : param; dim : int }

let mk_embedding rng name ~vocab ~dim = { table = mk_param rng name vocab dim; dim }

let embedding_params e = [ e.table ]

let lookup tape (e : embedding) i = Autodiff.row tape (use tape e.table) i

(* --- LSTM cell --------------------------------------------------------------- *)

type lstm = {
  wi : linear; (* input gate *)
  wf : linear; (* forget gate *)
  wo : linear; (* output gate *)
  wg : linear; (* candidate *)
  hidden : int;
}

let mk_lstm rng name ~input ~hidden =
  let io = input + hidden in
  { wi = mk_linear rng (name ^ ".i") ~input:io ~output:hidden;
    wf = mk_linear rng (name ^ ".f") ~input:io ~output:hidden;
    wo = mk_linear rng (name ^ ".o") ~input:io ~output:hidden;
    wg = mk_linear rng (name ^ ".g") ~input:io ~output:hidden;
    hidden }

let lstm_params l =
  linear_params l.wi @ linear_params l.wf @ linear_params l.wo @ linear_params l.wg

type lstm_state = { h : Autodiff.node; c : Autodiff.node }

let lstm_init tape (l : lstm) =
  { h = Autodiff.const tape (Tensor.create 1 l.hidden);
    c = Autodiff.const tape (Tensor.create 1 l.hidden) }

let lstm_step tape (l : lstm) (st : lstm_state) x : lstm_state =
  let xh = Autodiff.concat tape x st.h in
  let i = Autodiff.sigmoid tape (apply_linear tape l.wi xh) in
  let f = Autodiff.sigmoid tape (apply_linear tape l.wf xh) in
  let o = Autodiff.sigmoid tape (apply_linear tape l.wo xh) in
  let g = Autodiff.tanh_ tape (apply_linear tape l.wg xh) in
  let c = Autodiff.add tape (Autodiff.mul tape f st.c) (Autodiff.mul tape i g) in
  let h = Autodiff.mul tape o (Autodiff.tanh_ tape c) in
  { h; c }

(* --- dot-product attention ------------------------------------------------------ *)

(* Attention of a decoder state over encoder states: returns (weights node,
   context node). *)
let attention tape (states : Autodiff.node list) (query : Autodiff.node) =
  let scores =
    List.map (fun st -> Autodiff.dot tape st query) states
  in
  (* pack scores into one vector node *)
  let packed =
    let values = Array.of_list (List.map (fun s -> s.Autodiff.value.Tensor.data.(0)) scores) in
    let v = Tensor.vector values in
    let rec n =
      lazy
        (Autodiff.record tape v (fun () ->
             let g = (Lazy.force n).Autodiff.grad.Tensor.data in
             List.iteri
               (fun i s -> s.Autodiff.grad.Tensor.data.(0) <- s.Autodiff.grad.Tensor.data.(0) +. g.(i))
               scores))
    in
    Lazy.force n
  in
  let weights = Autodiff.softmax tape packed in
  (* context = sum_i w_i * state_i *)
  let context =
    List.fold_left
      (fun acc (i, st) ->
        let wi =
          let v = Tensor.vector [| weights.Autodiff.value.Tensor.data.(i) |] in
          let rec n =
            lazy
              (Autodiff.record tape v (fun () ->
                   weights.Autodiff.grad.Tensor.data.(i) <-
                     weights.Autodiff.grad.Tensor.data.(i)
                     +. (Lazy.force n).Autodiff.grad.Tensor.data.(0)))
          in
          Lazy.force n
        in
        let scaled =
          let value = Tensor.scale wi.Autodiff.value.Tensor.data.(0) st.Autodiff.value in
          let rec n =
            lazy
              (Autodiff.record tape value (fun () ->
                   let g = (Lazy.force n).Autodiff.grad in
                   Tensor.accumulate st.Autodiff.grad
                     (Tensor.scale wi.Autodiff.value.Tensor.data.(0) g);
                   wi.Autodiff.grad.Tensor.data.(0) <-
                     wi.Autodiff.grad.Tensor.data.(0) +. Tensor.dot g st.Autodiff.value))
          in
          Lazy.force n
        in
        match acc with
        | None -> Some scaled
        | Some a -> Some (Autodiff.add tape a scaled))
      None
      (List.mapi (fun i st -> (i, st)) states)
  in
  let context =
    match context with
    | Some c -> c
    | None -> Autodiff.const tape (Tensor.create 1 1)
  in
  (weights, context)
