(* MQAN-lite: a sequence-to-sequence semantic parser with attention and a
   pointer-generator decoder (paper section 4, Fig. 6), at laptop scale.

   The encoder is an LSTM over source-token embeddings; the decoder is an
   LSTM whose input concatenates the previous target embedding with the
   attention context; at each step two learnable gates mix a vocabulary
   distribution with a copy distribution over source positions -- exactly the
   mixed pointer-generator architecture the paper describes. The decoder
   embedding can be initialized from a pretrained language model over
   synthesized programs (section 4.2).

   Training is mini-batched and deterministically data-parallel: examples are
   padded into [batch x *] tensors with masking (length-bucketed per epoch
   when [batch > 1], so padding waste stays low), every optimizer step splits
   its batch into fixed micro-shards whose gradients are computed on
   tape-private buffers (one scratch arena per worker) and reduced in a
   balanced tree whose shape depends only on the shard count -- so
   [train ~workers:n] produces bitwise-identical weights for every [n], and
   [~batch:1 ~micro:1 ~workers:0] with dropout 0 replays the historical
   per-example loop bit for bit.

   RNG streams are named and decoupled:
   - the root stream ([cfg.seed]) initializes parameters and then shuffles
     each epoch -- exactly the historical stream, so init and data order are
     unchanged;
   - dropout draws from per-example streams keyed
     [hash64("seq2seq.dropout", seed, epoch, example_id)] -- never the worker
     or shard id, so masks are identical at any batch size or worker count;
   - greedy [decode] draws from no stream at all, so interleaving
     predictions with training cannot perturb subsequent weights. *)

type config = {
  embed_dim : int;
  hidden_dim : int;
  dropout : float;
  seed : int;
}

let default_config = { embed_dim = 32; hidden_dim = 64; dropout = 0.1; seed = 7 }

type t = {
  cfg : config;
  src_vocab : Vocab.t;
  tgt_vocab : Vocab.t;
  src_embed : Layers.embedding;
  tgt_embed : Layers.embedding;
  encoder : Layers.lstm;
  decoder : Layers.lstm;
  out_proj : Layers.linear; (* [h; context] -> vocab logits *)
  gate_proj : Layers.linear; (* [h; context] -> copy/generate gate *)
  rng : Genie_util.Rng.t; (* root stream: init, then epoch shuffling *)
}

let params t =
  Layers.embedding_params t.src_embed
  @ Layers.embedding_params t.tgt_embed
  @ Layers.lstm_params t.encoder
  @ Layers.lstm_params t.decoder
  @ Layers.linear_params t.out_proj
  @ Layers.linear_params t.gate_proj

let create ?(cfg = default_config) ~src_vocab ~tgt_vocab () =
  let rng = Genie_util.Rng.create cfg.seed in
  let d = cfg.embed_dim and h = cfg.hidden_dim in
  { cfg;
    src_vocab;
    tgt_vocab;
    src_embed = Layers.mk_embedding rng "src_embed" ~vocab:(Vocab.size src_vocab) ~dim:d;
    tgt_embed = Layers.mk_embedding rng "tgt_embed" ~vocab:(Vocab.size tgt_vocab) ~dim:d;
    encoder = Layers.mk_lstm rng "encoder" ~input:d ~hidden:h;
    decoder = Layers.mk_lstm rng "decoder" ~input:(d + h) ~hidden:h;
    out_proj = Layers.mk_linear rng "out" ~input:(2 * h) ~output:(Vocab.size tgt_vocab);
    gate_proj = Layers.mk_linear rng "gate" ~input:(2 * h) ~output:1;
    rng }

(* Initialize the decoder embedding from a pretrained program language model
   (shared vocabulary assumed). *)
let load_decoder_embedding t (table : Tensor.t) =
  let dst = t.tgt_embed.Layers.table.Layers.tensor in
  let n = min (Tensor.size dst) (Tensor.size table) in
  Array.blit table.Tensor.data table.Tensor.off dst.Tensor.data dst.Tensor.off n

(* Per-example dropout stream: a pure function of (seed, epoch, example_id)
   -- never the worker, shard or batch position. [example_id] is the
   example's position in the epoch's shuffled order. *)
let dropout_rng t ~epoch ~example_id =
  let h = Genie_util.Hash64.string 0L "seq2seq.dropout" in
  let h = Genie_util.Hash64.int h t.cfg.seed in
  let h = Genie_util.Hash64.int h epoch in
  let h = Genie_util.Hash64.int h example_id in
  Genie_util.Rng.create (Int64.to_int h)

(* --- batched teacher-forced loss --------------------------------------------- *)

(* How dropout masks are drawn for a forward pass. [Drop_legacy] is the
   historical shared-stream behaviour (kept for single-example callers that
   predate keyed streams); it is refused for real batches because its draws
   would depend on batch composition. *)
type drop_streams =
  | Drop_none
  | Drop_legacy of Genie_util.Rng.t
  | Drop_keyed of Genie_util.Rng.t array

(* Teacher-forced pointer-generator loss over a padded mini-batch; returns
   the [b x 1] node of per-example losses. Row r of every intermediate
   tensor belongs to example r alone (all ops are row-parallel), so each
   row's forward arithmetic -- and at b = 1 the whole tape -- is bitwise
   identical to the historical per-example code. *)
let batched_loss_impl tape t ~training ~drop (exs : (string list * string list) array) =
  let b = Array.length exs in
  if b = 0 then invalid_arg "Seq2seq.batch_loss: empty batch";
  (match drop with
  | Drop_legacy _ when b > 1 ->
      invalid_arg "Seq2seq: the legacy dropout stream requires batch size 1"
  | Drop_keyed rngs when Array.length rngs <> b ->
      invalid_arg "Seq2seq: dropout streams/batch mismatch"
  | _ -> ());
  let dropout ~active x =
    match drop with
    | Drop_none -> x
    | Drop_legacy rng -> Autodiff.dropout tape rng ~p:t.cfg.dropout ~training x
    | Drop_keyed rngs ->
        (* prefix-trimmed steps pass fewer rows; each row's stream is
           independent, so slicing the array never changes another row's
           draws *)
        let rows = x.Autodiff.value.Tensor.rows in
        let rngs = if Array.length rngs = rows then rngs else Array.sub rngs 0 rows in
        Autodiff.dropout_rows tape rngs ~active ~p:t.cfg.dropout ~training x
  in
  (* source side *)
  let srcs = Array.map (fun (s, _) -> Array.of_list s) exs in
  let src_ids = Array.map (Array.map (Vocab.id t.src_vocab)) srcs in
  let src_lens = Array.map Array.length src_ids in
  let t_src = Array.fold_left max 0 src_lens in
  let pad_src = Vocab.id t.src_vocab Vocab.pad in
  let all_of active = Array.for_all Fun.id active in
  let carry active (st : Layers.lstm_state) (st' : Layers.lstm_state) =
    (* padded rows keep their previous state so each row's final state is
       the state at its own length *)
    if all_of active then st'
    else
      { Layers.h = Autodiff.masked_select tape active st'.Layers.h st.Layers.h;
        c = Autodiff.masked_select tape active st'.Layers.c st.Layers.c }
  in
  (* Prefix trimming: each timestep runs on rows [0, k) where k - 1 is the
     last row still active -- rows beyond it are pure padding, so their LSTM
     arithmetic is skipped entirely. The training loop orders each shard's
     rows by descending length, making the active set an exact prefix; any
     other order stays correct (interior inactive rows are carried by the
     masks as before) but trims less. At k = b every op below returns the
     untrimmed node, so full batches -- in particular b = 1 -- replay the
     historical tape exactly. *)
  let prefix_len lens step =
    let last = ref (-1) in
    for r = 0 to Array.length lens - 1 do
      if step < lens.(r) then last := r
    done;
    !last + 1
  in
  let st = ref (Layers.lstm_init ~rows:b tape t.encoder) in
  let enc_states = ref [] in
  for step = 0 to t_src - 1 do
    let k = prefix_len src_lens step in
    let active = Array.init k (fun r -> step < src_lens.(r)) in
    let ids =
      Array.init k (fun r -> if step < src_lens.(r) then src_ids.(r).(step) else pad_src)
    in
    let x = Layers.lookup_rows tape t.src_embed ids in
    let x = dropout ~active x in
    let st_k =
      { Layers.h = Autodiff.rows_prefix tape (!st).Layers.h k;
        c = Autodiff.rows_prefix tape (!st).Layers.c k }
    in
    let stepped = carry active st_k (Layers.lstm_step tape t.encoder st_k x) in
    (* scatter the trimmed rows back over the full state: suffix rows keep
       their (final) carried state *)
    let st' =
      { Layers.h = Autodiff.overlay_rows tape ~top:stepped.Layers.h ~base:(!st).Layers.h;
        c = Autodiff.overlay_rows tape ~top:stepped.Layers.c ~base:(!st).Layers.c }
    in
    st := st';
    enc_states := st'.Layers.h :: !enc_states
  done;
  let enc_states = List.rev !enc_states in
  let enc_final = !st in
  (* target side: a target token outside the vocabulary can only be produced
     by copying -- mark it -1 so the vocabulary path contributes nothing
     (otherwise the model learns to emit <unk> instead of copying) *)
  let tgt_ids =
    Array.map
      (fun (_, tgt) ->
        Array.of_list
          (List.map
             (fun tok ->
               let i = Vocab.id t.tgt_vocab tok in
               if i = Vocab.unk_id t.tgt_vocab && tok <> Vocab.unk then -1 else i)
             tgt
          @ [ Vocab.eos_id t.tgt_vocab ]))
      exs
  in
  let tgt_strs = Array.map (fun (_, tgt) -> Array.of_list (tgt @ [ Vocab.eos ])) exs in
  let tgt_lens = Array.map Array.length tgt_ids in
  let t_tgt = Array.fold_left max 0 tgt_lens in
  (* The decoder state only ever shrinks (the trimmed prefix is monotone in
     [step]), so it stays at k rows with no scatter back; the per-row loss
     column is re-expanded to b rows by [add_rows_prefix]. *)
  let st = ref { Layers.h = enc_final.Layers.h; c = enc_final.Layers.c } in
  let prev = Array.make b (Vocab.bos_id t.tgt_vocab) in
  let per_row = ref None in
  for step = 0 to t_tgt - 1 do
    let k = prefix_len tgt_lens step in
    let active = Array.init k (fun r -> step < tgt_lens.(r)) in
    let x = Layers.lookup_rows tape t.tgt_embed (Array.sub prev 0 k) in
    let x = dropout ~active x in
    let st_k =
      { Layers.h = Autodiff.rows_prefix tape (!st).Layers.h k;
        c = Autodiff.rows_prefix tape (!st).Layers.c k }
    in
    let keys =
      if k = b then enc_states
      else List.map (fun s -> Autodiff.rows_prefix tape s k) enc_states
    in
    let lens_k = if k = b then src_lens else Array.sub src_lens 0 k in
    let att, context = Layers.attention ~lengths:lens_k tape keys st_k.Layers.h in
    let inp = Autodiff.concat tape x context in
    let st' = Layers.lstm_step tape t.decoder st_k inp in
    let feat = Autodiff.concat tape st'.Layers.h context in
    let logits = Layers.apply_linear tape t.out_proj feat in
    let vocab_probs = Autodiff.softmax tape logits in
    let gate = Autodiff.sigmoid tape (Layers.apply_linear tape t.gate_proj feat) in
    st := carry active st_k st';
    let targets =
      Array.init k (fun r -> if active.(r) then tgt_ids.(r).(step) else -1)
    in
    let copy_positions =
      Array.init k (fun r ->
          if not active.(r) then []
          else begin
            let s = tgt_strs.(r).(step) in
            let acc = ref [] in
            for i = Array.length srcs.(r) - 1 downto 0 do
              if srcs.(r).(i) = s then acc := i :: !acc
            done;
            !acc
          end)
    in
    for r = 0 to k - 1 do
      if active.(r) then
        prev.(r) <-
          (let tg = tgt_ids.(r).(step) in
           if tg < 0 then Vocab.unk_id t.tgt_vocab else tg)
    done;
    let loss =
      Autodiff.pointer_nll_rows tape ~gate ~vocab_probs ~attention:att ~targets
        ~copy_positions ~active
    in
    per_row :=
      (match !per_row with
      | None -> Some loss
      | Some acc -> Some (Autodiff.add_rows_prefix tape acc loss))
  done;
  match !per_row with Some n -> n | None -> assert false (* t_tgt >= 1 *)

let batch_loss tape t ~training ~epoch ~example_ids exs =
  let b = Array.length exs in
  if Array.length example_ids <> b then
    invalid_arg "Seq2seq.batch_loss: example_ids/batch mismatch";
  let drop =
    if training && t.cfg.dropout > 0.0 then
      Drop_keyed
        (Array.init b (fun r -> dropout_rng t ~epoch ~example_id:example_ids.(r)))
    else Drop_none
  in
  let per_row = batched_loss_impl tape t ~training ~drop exs in
  let total = Autodiff.sum_all tape per_row in
  (total, per_row)

(* Teacher-forced loss on one (source, target) pair. With [epoch] and
   [example_id] the dropout mask comes from the keyed per-example stream
   (identical to this example's row in any {!batch_loss}); without them it
   draws from the historical shared stream. *)
let example_loss ?epoch ?example_id tape t ~training (src_tokens : string list)
    (tgt_tokens : string list) =
  let drop =
    if training && t.cfg.dropout > 0.0 then
      match (epoch, example_id) with
      | Some epoch, Some example_id -> Drop_keyed [| dropout_rng t ~epoch ~example_id |]
      | _ -> Drop_legacy t.rng
    else Drop_none
  in
  batched_loss_impl tape t ~training ~drop [| (src_tokens, tgt_tokens) |]

(* Batched greedy decode with copy: at each step every unfinished row picks
   the argmax of its mixed distribution over (vocab tokens + source copies).
   Draws from no RNG stream, so predicting mid-training cannot perturb
   subsequent weights.

   Determinism contract (the serving side of the PR 5 batched-tensor
   discipline): row r of every intermediate tensor belongs to source r alone
   -- the encoder is the batched loss's source side minus dropout (identity
   at inference), the decoder's attention is masked to each row's own length
   -- so a row's forward arithmetic is bitwise identical at any batch
   composition, and a batch of one replays the per-example tape exactly.
   The argmax is deterministic outright: candidates are scanned in vocabulary
   id order and then in ascending source position, with a strict [>], so ties
   resolve identically everywhere (the historical single-example decode
   resolved them by hash-table iteration order). Rows are ordered internally
   by descending source length (encoder prefix trimming); results come back
   in submission order. *)
let decode_batch ?(max_len = 60) ?scratch t (srcs : string list list) =
  let b = List.length srcs in
  if b = 0 then []
  else begin
    (match scratch with Some a -> Tensor.Scratch.reset a | None -> ());
    let tape = Autodiff.new_tape ?scratch () in
    (* descending source length, ties by submission position: each encoder
       timestep's active rows form a leading prefix (see batched_loss_impl) *)
    let order = Array.of_list (List.mapi (fun i s -> (Array.of_list s, i)) srcs) in
    Array.sort
      (fun (sa, ia) (sb, ib) ->
        let c = compare (Array.length sb) (Array.length sa) in
        if c <> 0 then c else compare ia ib)
      order;
    let srcs_arr = Array.map fst order in
    let src_ids = Array.map (Array.map (Vocab.id t.src_vocab)) srcs_arr in
    let src_lens = Array.map Array.length src_ids in
    let t_src = Array.fold_left max 0 src_lens in
    let pad_src = Vocab.id t.src_vocab Vocab.pad in
    let all_of active = Array.for_all Fun.id active in
    let carry active (st : Layers.lstm_state) (st' : Layers.lstm_state) =
      if all_of active then st'
      else
        { Layers.h = Autodiff.masked_select tape active st'.Layers.h st.Layers.h;
          c = Autodiff.masked_select tape active st'.Layers.c st.Layers.c }
    in
    let prefix_len lens step =
      let last = ref (-1) in
      for r = 0 to Array.length lens - 1 do
        if step < lens.(r) then last := r
      done;
      !last + 1
    in
    (* encoder: the batched loss's source side, dropout elided (identity when
       not training) *)
    let st = ref (Layers.lstm_init ~rows:b tape t.encoder) in
    let enc_states = ref [] in
    for step = 0 to t_src - 1 do
      let k = prefix_len src_lens step in
      let active = Array.init k (fun r -> step < src_lens.(r)) in
      let ids =
        Array.init k (fun r -> if step < src_lens.(r) then src_ids.(r).(step) else pad_src)
      in
      let x = Layers.lookup_rows tape t.src_embed ids in
      let st_k =
        { Layers.h = Autodiff.rows_prefix tape (!st).Layers.h k;
          c = Autodiff.rows_prefix tape (!st).Layers.c k }
      in
      let stepped = carry active st_k (Layers.lstm_step tape t.encoder st_k x) in
      let st' =
        { Layers.h = Autodiff.overlay_rows tape ~top:stepped.Layers.h ~base:(!st).Layers.h;
          c = Autodiff.overlay_rows tape ~top:stepped.Layers.c ~base:(!st).Layers.c }
      in
      st := st';
      enc_states := st'.Layers.h :: !enc_states
    done;
    let enc_states = List.rev !enc_states in
    (* decoder: all rows step together (a finished row keeps stepping but its
       output is discarded, and row-parallel ops mean its arithmetic cannot
       leak into a neighbour); each row's attention is masked to its own
       source length, so padded positions contribute exactly nothing *)
    let st = ref { Layers.h = (!st).Layers.h; c = (!st).Layers.c } in
    let prev = Array.make b (Vocab.bos_id t.tgt_vocab) in
    let finished = Array.make b false in
    let outs = Array.make b [] in
    let logps = Array.make b 0.0 in
    let steps = ref 0 in
    let vocab_n = Vocab.size t.tgt_vocab in
    while (not (Array.for_all Fun.id finished)) && !steps < max_len do
      incr steps;
      let x = Layers.lookup_rows tape t.tgt_embed prev in
      let att, context =
        Layers.attention ~lengths:src_lens tape enc_states (!st).Layers.h
      in
      let inp = Autodiff.concat tape x context in
      let st' = Layers.lstm_step tape t.decoder !st inp in
      let feat = Autodiff.concat tape st'.Layers.h context in
      let logits = Layers.apply_linear tape t.out_proj feat in
      let vocab_probs = Autodiff.softmax tape logits in
      let gate = Autodiff.sigmoid tape (Layers.apply_linear tape t.gate_proj feat) in
      st := st';
      for r = 0 to b - 1 do
        if not finished.(r) then begin
          let g = Tensor.get gate.Autodiff.value r 0 in
          (* mixture probability per candidate token, accumulated exactly as
             the historical per-example decode did: vocabulary mass first,
             then copy mass in ascending source position *)
          let scores = Hashtbl.create 64 in
          for i = 0 to vocab_n - 1 do
            let tok = Vocab.token t.tgt_vocab i in
            if tok <> Vocab.unk then
              Hashtbl.replace scores tok (g *. Tensor.get vocab_probs.Autodiff.value r i)
          done;
          for i = 0 to src_lens.(r) - 1 do
            let p = Tensor.get att.Autodiff.value r i in
            let tok = srcs_arr.(r).(i) in
            let cur = try Hashtbl.find scores tok with Not_found -> 0.0 in
            Hashtbl.replace scores tok (cur +. ((1.0 -. g) *. p))
          done;
          (* deterministic argmax: vocabulary ids ascending, then source
             positions ascending (out-of-vocabulary copies only -- in-vocab
             source tokens were already scanned), strict [>] throughout *)
          let best_tok = ref Vocab.eos and best_p = ref neg_infinity in
          for i = 0 to vocab_n - 1 do
            let tok = Vocab.token t.tgt_vocab i in
            if tok <> Vocab.unk then begin
              let p = Hashtbl.find scores tok in
              if p > !best_p then begin
                best_tok := tok;
                best_p := p
              end
            end
          done;
          for i = 0 to src_lens.(r) - 1 do
            let tok = srcs_arr.(r).(i) in
            if Vocab.id t.tgt_vocab tok = Vocab.unk_id t.tgt_vocab && tok <> Vocab.unk
            then begin
              let p = Hashtbl.find scores tok in
              if p > !best_p then begin
                best_tok := tok;
                best_p := p
              end
            end
          done;
          logps.(r) <- logps.(r) +. log (Float.max !best_p Float.min_float);
          if !best_tok = Vocab.eos || !best_tok = Vocab.pad || !best_tok = Vocab.bos
          then begin
            finished.(r) <- true;
            prev.(r) <- Vocab.eos_id t.tgt_vocab
          end
          else begin
            outs.(r) <- !best_tok :: outs.(r);
            prev.(r) <- Vocab.id t.tgt_vocab !best_tok
          end
        end
      done
    done;
    (* back to submission order *)
    let results = Array.make b ([], 0.0) in
    Array.iteri
      (fun r (_, orig) -> results.(orig) <- (List.rev outs.(r), logps.(r)))
      order;
    Array.to_list results
  end

(* Greedy decode of one source: the one-row batch (bitwise-identical tape by
   the row-parallel contract above). *)
let decode ?max_len t (src_tokens : string list) : string list =
  match decode_batch ?max_len t [ src_tokens ] with
  | [ (toks, _) ] -> toks
  | _ -> assert false

(* --- training loop ----------------------------------------------------------- *)

type train_report = { epoch : int; mean_loss : float }

(* A resume point between two optimizer steps. [snap_rng] is the root-stream
   cursor at [snap_epoch]'s start (before that epoch's shuffle), so a
   resumed run re-derives the identical shuffle, bucketing and dropout keys;
   [snap_pos] is the position reached within the epoch's bucketed order and
   [snap_step] the Adam step count (bias correction depends on it). Together
   with the parameters and Adam moments this is everything the training
   loop's future depends on: a run resumed from a snapshot is bitwise
   identical to one that never stopped, at any worker count. *)
type snapshot = {
  snap_epoch : int;  (* 1-based; epochs + 1 marks a finished run *)
  snap_pos : int;
  snap_rng : int64;
  snap_step : int;
}

let weight_digest t = Optimizer.digest (params t)

(* One micro-shard's work: forward + backward on a private tape, gradients
   copied out of the scratch arena. A pure function of
   (model, epoch, shard contents, shard example ids) -- the worker that runs
   it cannot influence the result. *)
let shard_grads t ~arena ~epoch ~ps (exs, example_ids) =
  Tensor.Scratch.reset arena;
  let tape = Autodiff.new_tape ~scratch:arena ~private_leaves:true () in
  let total, per_row = batch_loss tape t ~training:true ~epoch ~example_ids exs in
  Autodiff.backward tape total;
  let losses =
    Array.init (Array.length exs) (fun r -> Tensor.get per_row.Autodiff.value r 0)
  in
  let grads =
    List.map
      (fun (p : Layers.param) ->
        match Autodiff.find_private_grad tape ~key:p.Layers.uid with
        | Some g -> Tensor.copy g
        | None -> Tensor.zeros_like p.Layers.grad)
      ps
  in
  (losses, grads)

let train ?(epochs = 5) ?(lr = 5e-3) ?(batch = 1) ?(micro = 1) ?(workers = 0)
    ?(progress = fun (_ : train_report) -> ()) ?resume ?(checkpoint_every = 0)
    ?checkpoint ?stop_after t (data : (string list * string list) list) =
  if batch < 1 then invalid_arg "Seq2seq.train: batch must be >= 1";
  if micro < 1 then invalid_arg "Seq2seq.train: micro must be >= 1";
  let opt = Optimizer.adam ~lr () in
  (* Resuming restores the two pieces of loop state the parameters and
     moments don't carry: the root stream's cursor (epoch shuffles) and the
     Adam step count (bias correction). The snapshot's epoch/pos say where
     to pick the schedule back up. *)
  let start_epoch, start_pos =
    match resume with
    | None -> (1, 0)
    | Some s ->
        Genie_util.Rng.set_cursor t.rng s.snap_rng;
        opt.Optimizer.step <- s.snap_step;
        (s.snap_epoch, s.snap_pos)
  in
  let ps = params t in
  (* The weight digest is invariant under worker count (fixed shard order and
     reduction tree), so the number of spawned domains is purely a
     performance knob -- clamp it to the hardware so oversubscribed boxes
     (workers > cores) don't pay domain-timeslicing GC stalls. *)
  let workers =
    if workers <= 1 then workers
    else min workers (Domain.recommended_domain_count ())
  in
  let n_arenas = max 1 workers in
  let arenas = Array.init n_arenas (fun _ -> Tensor.Scratch.create ()) in
  let stopped = ref false in
  let cur_epoch = ref start_epoch in
  while (not !stopped) && !cur_epoch <= epochs do
    let epoch = !cur_epoch in
    (* the cursor before this epoch's shuffle: a mid-epoch snapshot replays
       the shuffle from here, an end-of-epoch snapshot records the cursor
       after it *)
    let epoch_cursor = Genie_util.Rng.cursor t.rng in
    let total = ref 0.0 in
    let shuffled = Array.of_list (Genie_util.Rng.shuffle t.rng data) in
    let n = Array.length shuffled in
    (* Length bucketing: when actually batching, order the epoch's examples
       by length before chunking so each padded [batch x max_len] tensor
       wastes as little work as possible. Example ids (the dropout-stream
       keys) are attached before the sort -- they stay the example's
       position in the shuffled order, so masks are unchanged by bucketing.
       The sort key is deterministic and ties break on shuffled position;
       bucketing precedes sharding, so it is invariant under [workers]. At
       [batch = 1] there is no padding and the historical epoch order is
       replayed untouched. *)
    let order = Array.mapi (fun i ex -> (ex, i)) shuffled in
    if batch > 1 then begin
      let len ((src, tgt), _) = List.length src + List.length tgt in
      Array.sort
        (fun a b ->
          let c = compare (len a) (len b) in
          if c <> 0 then c else compare (snd a) (snd b))
        order
    end;
    (* on the resumed epoch, skip the steps the interrupted run completed;
       their only trace in loop state -- the bucketed order and the dropout
       keys -- was just re-derived above *)
    let pos = ref (if epoch = start_epoch then min start_pos n else 0) in
    while (not !stopped) && !pos < n do
      let bsz = min batch (n - !pos) in
      let step_start = !pos in
      (* fixed micro-shards of at most [micro] examples each; shard order and
         contents depend only on (batch, micro), never on workers *)
      let shards = ref [] in
      let off = ref 0 in
      while !off < bsz do
        let len = min micro (bsz - !off) in
        let slice = Array.sub order (step_start + !off) len in
        (* within a shard, order rows by descending source (then target)
           length, ties by shuffled position: each timestep's active rows
           then form a leading prefix, so the batched loss prefix-trims the
           padding instead of computing masked rows. Deterministic, applied
           before worker dispatch, and a no-op at micro = 1. *)
        if len > 1 then
          Array.sort
            (fun ((sa, ta), ia) ((sb, tb), ib) ->
              let c = compare (List.length sb) (List.length sa) in
              if c <> 0 then c
              else
                let c = compare (List.length tb) (List.length ta) in
                if c <> 0 then c else compare ia ib)
            slice;
        let exs = Array.map fst slice in
        let ids = Array.map snd slice in
        shards := (exs, ids) :: !shards;
        off := !off + len
      done;
      let shards = List.rev !shards in
      let results =
        Genie_conc.Pool.map_list ~workers
          ~handler:(fun index shard ->
            shard_grads t ~arena:arenas.(index mod n_arenas) ~epoch ~ps shard)
          shards
      in
      (* fixed shard-order reduction tree, then one Adam step *)
      let reduced =
        match
          Genie_conc.Pool.tree_fold
            ~combine:(fun a bgs ->
              List.iter2 Tensor.accumulate a bgs;
              a)
            (List.map snd results)
        with
        | Some g -> g
        | None -> assert false
      in
      Optimizer.apply_reduced opt ps reduced;
      List.iter
        (fun (losses, _) -> Array.iter (fun l -> total := !total +. l) losses)
        results;
      pos := !pos + bsz;
      (* Checkpoints fire between optimizer steps, where the snapshot above
         captures the loop completely. An exhausted epoch snapshots the
         *next* epoch's start (cursor already past this epoch's shuffle). *)
      let snap () =
        if !pos < n then
          { snap_epoch = epoch; snap_pos = !pos; snap_rng = epoch_cursor;
            snap_step = opt.Optimizer.step }
        else
          { snap_epoch = epoch + 1; snap_pos = 0;
            snap_rng = Genie_util.Rng.cursor t.rng;
            snap_step = opt.Optimizer.step }
      in
      let stopping =
        match stop_after with
        | Some k -> opt.Optimizer.step >= k
        | None -> false
      in
      let due =
        checkpoint_every > 0 && opt.Optimizer.step mod checkpoint_every = 0
      in
      (match checkpoint with
      | Some f when due || stopping -> f (snap ())
      | _ -> ());
      if stopping then stopped := true
    done;
    if !pos >= n then
      progress { epoch; mean_loss = !total /. float_of_int (max 1 n) };
    cur_epoch := epoch + 1
  done;
  (* a completed run always leaves a terminal checkpoint (snap_epoch past
     [epochs]): the artifact callers persist as the final model *)
  if not !stopped then
    match checkpoint with
    | Some f ->
        f
          { snap_epoch = epochs + 1; snap_pos = 0;
            snap_rng = Genie_util.Rng.cursor t.rng;
            snap_step = opt.Optimizer.step }
    | None -> ()
