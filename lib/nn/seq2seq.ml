(* MQAN-lite: a sequence-to-sequence semantic parser with attention and a
   pointer-generator decoder (paper section 4, Fig. 6), at laptop scale.

   The encoder is an LSTM over source-token embeddings; the decoder is an
   LSTM whose input concatenates the previous target embedding with the
   attention context; at each step two learnable gates mix a vocabulary
   distribution with a copy distribution over source positions -- exactly the
   mixed pointer-generator architecture the paper describes. The decoder
   embedding can be initialized from a pretrained language model over
   synthesized programs (section 4.2). *)

type config = {
  embed_dim : int;
  hidden_dim : int;
  dropout : float;
  seed : int;
}

let default_config = { embed_dim = 32; hidden_dim = 64; dropout = 0.1; seed = 7 }

type t = {
  cfg : config;
  src_vocab : Vocab.t;
  tgt_vocab : Vocab.t;
  src_embed : Layers.embedding;
  tgt_embed : Layers.embedding;
  encoder : Layers.lstm;
  decoder : Layers.lstm;
  out_proj : Layers.linear; (* [h; context] -> vocab logits *)
  gate_proj : Layers.linear; (* [h; context] -> copy/generate gate *)
  rng : Genie_util.Rng.t;
}

let params t =
  Layers.embedding_params t.src_embed
  @ Layers.embedding_params t.tgt_embed
  @ Layers.lstm_params t.encoder
  @ Layers.lstm_params t.decoder
  @ Layers.linear_params t.out_proj
  @ Layers.linear_params t.gate_proj

let create ?(cfg = default_config) ~src_vocab ~tgt_vocab () =
  let rng = Genie_util.Rng.create cfg.seed in
  let d = cfg.embed_dim and h = cfg.hidden_dim in
  { cfg;
    src_vocab;
    tgt_vocab;
    src_embed = Layers.mk_embedding rng "src_embed" ~vocab:(Vocab.size src_vocab) ~dim:d;
    tgt_embed = Layers.mk_embedding rng "tgt_embed" ~vocab:(Vocab.size tgt_vocab) ~dim:d;
    encoder = Layers.mk_lstm rng "encoder" ~input:d ~hidden:h;
    decoder = Layers.mk_lstm rng "decoder" ~input:(d + h) ~hidden:h;
    out_proj = Layers.mk_linear rng "out" ~input:(2 * h) ~output:(Vocab.size tgt_vocab);
    gate_proj = Layers.mk_linear rng "gate" ~input:(2 * h) ~output:1;
    rng }

(* Initialize the decoder embedding from a pretrained program language model
   (shared vocabulary assumed). *)
let load_decoder_embedding t (table : Tensor.t) =
  let dst = t.tgt_embed.Layers.table.Layers.tensor in
  let n = min (Tensor.size dst) (Tensor.size table) in
  Array.blit table.Tensor.data 0 dst.Tensor.data 0 n

let encode tape t ~training (src_ids : int list) =
  let st = ref (Layers.lstm_init tape t.encoder) in
  let states =
    List.map
      (fun i ->
        let x = Layers.lookup tape t.src_embed i in
        let x = Autodiff.dropout tape t.rng ~p:t.cfg.dropout ~training x in
        st := Layers.lstm_step tape t.encoder !st x;
        (!st).Layers.h)
      src_ids
  in
  (states, !st)

(* One decoder step; returns (new state, attention node, vocab-probs node,
   gate node). *)
let decode_step tape t ~training ~enc_states st prev_id =
  let prev = Layers.lookup tape t.tgt_embed prev_id in
  let prev = Autodiff.dropout tape t.rng ~p:t.cfg.dropout ~training prev in
  let att_weights, context = Layers.attention tape enc_states st.Layers.h in
  let inp = Autodiff.concat tape prev context in
  let st' = Layers.lstm_step tape t.decoder st inp in
  let feat = Autodiff.concat tape st'.Layers.h context in
  let logits = Layers.apply_linear tape t.out_proj feat in
  let vocab_probs = Autodiff.softmax tape logits in
  let gate = Autodiff.sigmoid tape (Layers.apply_linear tape t.gate_proj feat) in
  (st', att_weights, vocab_probs, gate)

(* Teacher-forced loss on one (source, target) pair. Copyable positions: a
   target token may be copied from any source position holding it. *)
let example_loss tape t ~training (src_tokens : string list) (tgt_tokens : string list) =
  let src_ids = List.map (Vocab.id t.src_vocab) src_tokens in
  let src_arr = Array.of_list src_tokens in
  let enc_states, enc_final = encode tape t ~training src_ids in
  (* a target token outside the vocabulary can only be produced by copying:
     mark it -1 so the vocabulary path contributes nothing (otherwise the
     model learns to emit <unk> instead of copying) *)
  let tgt_ids =
    List.map
      (fun tok ->
        let i = Vocab.id t.tgt_vocab tok in
        if i = Vocab.unk_id t.tgt_vocab && tok <> Vocab.unk then -1 else i)
      tgt_tokens
    @ [ Vocab.eos_id t.tgt_vocab ]
  in
  let tgt_strs = tgt_tokens @ [ Vocab.eos ] in
  let st = ref { Layers.h = enc_final.Layers.h; c = enc_final.Layers.c } in
  let prev = ref (Vocab.bos_id t.tgt_vocab) in
  let losses =
    List.map2
      (fun target target_str ->
        let st', att, vocab_probs, gate =
          decode_step tape t ~training ~enc_states !st !prev
        in
        st := st';
        prev := (if target < 0 then Vocab.unk_id t.tgt_vocab else target);
        let copy_positions =
          List.filteri (fun _ _ -> true) (Array.to_list src_arr)
          |> List.mapi (fun i tok -> (i, tok))
          |> List.filter_map (fun (i, tok) -> if tok = target_str then Some i else None)
        in
        Autodiff.pointer_nll tape ~gate ~vocab_probs ~attention:att ~target
          ~copy_positions)
      tgt_ids tgt_strs
  in
  Autodiff.sum_scalars tape losses

(* Greedy decode with copy: at each step pick the argmax of the mixed
   distribution over (vocab tokens + source copies). *)
let decode ?(max_len = 60) t (src_tokens : string list) : string list =
  let tape = Autodiff.new_tape () in
  let src_ids = List.map (Vocab.id t.src_vocab) src_tokens in
  let src_arr = Array.of_list src_tokens in
  let enc_states, enc_final = encode tape t ~training:false src_ids in
  let st = ref { Layers.h = enc_final.Layers.h; c = enc_final.Layers.c } in
  let prev = ref (Vocab.bos_id t.tgt_vocab) in
  let out = ref [] in
  let finished = ref false in
  let steps = ref 0 in
  while (not !finished) && !steps < max_len do
    incr steps;
    let st', att, vocab_probs, gate = decode_step tape t ~training:false ~enc_states !st !prev in
    st := st';
    let g = gate.Autodiff.value.Tensor.data.(0) in
    let pv = vocab_probs.Autodiff.value.Tensor.data in
    let pa = att.Autodiff.value.Tensor.data in
    (* mixture probability per candidate token *)
    let scores = Hashtbl.create 64 in
    Array.iteri
      (fun i p ->
        let tok = Vocab.token t.tgt_vocab i in
        if tok <> Vocab.unk then Hashtbl.replace scores tok (g *. p))
      pv;
    Array.iteri
      (fun i p ->
        let tok = src_arr.(i) in
        let cur = try Hashtbl.find scores tok with Not_found -> 0.0 in
        Hashtbl.replace scores tok (cur +. ((1.0 -. g) *. p)))
      pa;
    let best_tok, _ =
      Hashtbl.fold
        (fun tok p ((_, bp) as best) -> if p > bp then (tok, p) else best)
        scores (Vocab.eos, neg_infinity)
    in
    if best_tok = Vocab.eos || best_tok = Vocab.pad || best_tok = Vocab.bos then
      finished := true
    else begin
      out := best_tok :: !out;
      prev := Vocab.id t.tgt_vocab best_tok
    end
  done;
  List.rev !out

(* --- training loop ----------------------------------------------------------- *)

type train_report = { epoch : int; mean_loss : float }

let train ?(epochs = 5) ?(lr = 5e-3) ?(progress = fun (_ : train_report) -> ()) t
    (data : (string list * string list) list) =
  let opt = Optimizer.adam ~lr () in
  let ps = params t in
  for epoch = 1 to epochs do
    let total = ref 0.0 in
    let shuffled = Genie_util.Rng.shuffle t.rng data in
    List.iter
      (fun (src, tgt) ->
        let tape = Autodiff.new_tape () in
        Optimizer.zero_grads ps;
        let loss = example_loss tape t ~training:true src tgt in
        Autodiff.backward tape loss;
        Optimizer.update opt ps;
        total := !total +. loss.Autodiff.value.Tensor.data.(0))
      shuffled;
    progress { epoch; mean_loss = !total /. float_of_int (max 1 (List.length data)) }
  done
