(* Dense float tensors (vectors, matrices and row-batches) for the neural
   substrate.

   A tensor is a rows x cols window into a flat float array starting at
   [off]. Freshly created tensors own their storage with [off = 0]; [row]
   and [slice_vector] return zero-copy views into the parent's array. Views
   are always contiguous (whole rows, or a slice of a single row), so every
   kernel below addresses elements as [data.(off + i*cols + j)].

   The batched matmul kernels are the compute core of mini-batch training.
   Their per-element accumulation order is part of the determinism contract:
   each output element receives its partial products in ascending inner
   index, exactly the order the historical [vec_mat]/[mat_vec]/[outer]
   row-vector kernels used, so a batch of one is bitwise identical to the
   original per-example path. Blocking (tiling the j loop) only reorders
   work across *different* output elements, never within one, so it cannot
   perturb results. *)

type t = { data : float array; off : int; rows : int; cols : int }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative shape";
  { data = Array.make (rows * cols) 0.0; off = 0; rows; cols }

let zeros_like t = create t.rows t.cols

let of_array rows cols data =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.of_array: negative shape";
  if Array.length data <> rows * cols then invalid_arg "Tensor.of_array: size mismatch";
  { data; off = 0; rows; cols }

let vector data = { data; off = 0; rows = 1; cols = Array.length data }

let size t = t.rows * t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Tensor.get: out of bounds";
  t.data.(t.off + (i * t.cols) + j)

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Tensor.set: out of bounds";
  t.data.(t.off + (i * t.cols) + j) <- v

let copy t =
  { data = Array.sub t.data t.off (size t); off = 0; rows = t.rows; cols = t.cols }

let to_array t = Array.sub t.data t.off (size t)

let fill t v = Array.fill t.data t.off (size t) v

let iteri f t =
  for k = 0 to size t - 1 do
    f k t.data.(t.off + k)
  done

let map f t =
  { data = Array.init (size t) (fun k -> f t.data.(t.off + k));
    off = 0;
    rows = t.rows;
    cols = t.cols }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Tensor.map2: shape mismatch";
  { data = Array.init (size a) (fun k -> f a.data.(a.off + k) b.data.(b.off + k));
    off = 0;
    rows = a.rows;
    cols = a.cols }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale k t = map (fun x -> k *. x) t

(* --- in-place kernels (no allocation) ------------------------------------- *)

let map_into f src ~out =
  if src.rows <> out.rows || src.cols <> out.cols then
    invalid_arg "Tensor.map_into: shape mismatch";
  for k = 0 to size src - 1 do
    Array.unsafe_set out.data (out.off + k) (f (Array.unsafe_get src.data (src.off + k)))
  done

let map2_into f a b ~out =
  if a.rows <> b.rows || a.cols <> b.cols || out.rows <> a.rows || out.cols <> a.cols
  then invalid_arg "Tensor.map2_into: shape mismatch";
  for k = 0 to size a - 1 do
    Array.unsafe_set out.data (out.off + k)
      (f (Array.unsafe_get a.data (a.off + k)) (Array.unsafe_get b.data (b.off + k)))
  done

(* Dedicated activation kernels: the closure-taking map_into costs an
   indirect call per element, which shows on the 16 x 256 gate tensors of
   every LSTM step. Formulas match the map_into versions exactly. *)
let sigmoid_into src ~out =
  if src.rows <> out.rows || src.cols <> out.cols then
    invalid_arg "Tensor.sigmoid_into: shape mismatch";
  for k = 0 to size src - 1 do
    let x = Array.unsafe_get src.data (src.off + k) in
    Array.unsafe_set out.data (out.off + k) (1.0 /. (1.0 +. exp (-.x)))
  done

let tanh_into src ~out =
  if src.rows <> out.rows || src.cols <> out.cols then
    invalid_arg "Tensor.tanh_into: shape mismatch";
  for k = 0 to size src - 1 do
    Array.unsafe_set out.data (out.off + k) (tanh (Array.unsafe_get src.data (src.off + k)))
  done

(* acc += g * v * (1 - v): the sigmoid gradient, v the forward value *)
let sigmoid_grad_acc ~acc ~value ~grad =
  if acc.rows <> value.rows || acc.cols <> value.cols
     || grad.rows <> value.rows || grad.cols <> value.cols
  then invalid_arg "Tensor.sigmoid_grad_acc: shape mismatch";
  for k = 0 to size acc - 1 do
    let v = Array.unsafe_get value.data (value.off + k) in
    let g = Array.unsafe_get grad.data (grad.off + k) in
    Array.unsafe_set acc.data (acc.off + k)
      (Array.unsafe_get acc.data (acc.off + k) +. (g *. v *. (1.0 -. v)))
  done

(* acc += g * (1 - v^2): the tanh gradient, v the forward value *)
let tanh_grad_acc ~acc ~value ~grad =
  if acc.rows <> value.rows || acc.cols <> value.cols
     || grad.rows <> value.rows || grad.cols <> value.cols
  then invalid_arg "Tensor.tanh_grad_acc: shape mismatch";
  for k = 0 to size acc - 1 do
    let v = Array.unsafe_get value.data (value.off + k) in
    let g = Array.unsafe_get grad.data (grad.off + k) in
    Array.unsafe_set acc.data (acc.off + k)
      (Array.unsafe_get acc.data (acc.off + k) +. (g *. (1.0 -. (v *. v))))
  done

(* in-place accumulate: a += b *)
let accumulate a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Tensor.accumulate: shape mismatch";
  for k = 0 to size a - 1 do
    Array.unsafe_set a.data (a.off + k)
      (Array.unsafe_get a.data (a.off + k) +. Array.unsafe_get b.data (b.off + k))
  done

(* a += k * b, without materializing the scaled temporary *)
let accumulate_scaled a k b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Tensor.accumulate_scaled: shape mismatch";
  for i = 0 to size a - 1 do
    Array.unsafe_set a.data (a.off + i)
      (Array.unsafe_get a.data (a.off + i) +. (k *. Array.unsafe_get b.data (b.off + i)))
  done

(* a += f b c, elementwise, without the intermediate map2 tensor *)
let accumulate2 a f b c =
  if a.rows <> b.rows || a.cols <> b.cols || b.rows <> c.rows || b.cols <> c.cols
  then invalid_arg "Tensor.accumulate2: shape mismatch";
  for i = 0 to size a - 1 do
    Array.unsafe_set a.data (a.off + i)
      (Array.unsafe_get a.data (a.off + i)
      +. f (Array.unsafe_get b.data (b.off + i)) (Array.unsafe_get c.data (c.off + i)))
  done

(* Closure-free forms of the hot elementwise kernels. The closure-taking
   map2_into/accumulate2 pay an unknown call -- with float boxing -- per
   element; these direct loops compute the same formula in the same order,
   so results are bitwise identical to their closure counterparts. *)
let add_into a b ~out =
  if a.rows <> b.rows || a.cols <> b.cols || out.rows <> a.rows || out.cols <> a.cols
  then invalid_arg "Tensor.add_into: shape mismatch";
  let ad = a.data and bd = b.data and od = out.data in
  for k = 0 to size a - 1 do
    Array.unsafe_set od (out.off + k)
      (Array.unsafe_get ad (a.off + k) +. Array.unsafe_get bd (b.off + k))
  done

let sub_into a b ~out =
  if a.rows <> b.rows || a.cols <> b.cols || out.rows <> a.rows || out.cols <> a.cols
  then invalid_arg "Tensor.sub_into: shape mismatch";
  let ad = a.data and bd = b.data and od = out.data in
  for k = 0 to size a - 1 do
    Array.unsafe_set od (out.off + k)
      (Array.unsafe_get ad (a.off + k) -. Array.unsafe_get bd (b.off + k))
  done

let mul_into a b ~out =
  if a.rows <> b.rows || a.cols <> b.cols || out.rows <> a.rows || out.cols <> a.cols
  then invalid_arg "Tensor.mul_into: shape mismatch";
  let ad = a.data and bd = b.data and od = out.data in
  for k = 0 to size a - 1 do
    Array.unsafe_set od (out.off + k)
      (Array.unsafe_get ad (a.off + k) *. Array.unsafe_get bd (b.off + k))
  done

(* a += b * c, elementwise: the product-rule gradient accumulation *)
let mul_acc a b c =
  if a.rows <> b.rows || a.cols <> b.cols || b.rows <> c.rows || b.cols <> c.cols
  then invalid_arg "Tensor.mul_acc: shape mismatch";
  let ad = a.data and bd = b.data and cd = c.data in
  for k = 0 to size a - 1 do
    Array.unsafe_set ad (a.off + k)
      (Array.unsafe_get ad (a.off + k)
      +. (Array.unsafe_get bd (b.off + k) *. Array.unsafe_get cd (c.off + k)))
  done

(* --- matmul family ---------------------------------------------------------- *)

(* j-tile width: large enough that a row of the tile still streams, small
   enough that the b-panel stays in cache across the k loop *)
let jblk = 128

(* out = a . b  for a : p x n, b : n x m. i-k-j loop order with a j tile and
   8-row (then 4-row) register blocks: one pass over the b panel feeds
   eight output rows, so the panel streams from memory an eighth as often —
   this is where a 16-row batch beats sixteen 1-row calls. Each out element
   still accumulates its products in ascending k, so row r of a batched
   product is bitwise the product of row r alone. Indexing is unchecked:
   the shape checks above plus the struct invariant
   (off + rows*cols <= length data) bound every access. *)
let matmul_into ~out a b =
  if a.cols <> b.rows then invalid_arg "Tensor.matmul_into: inner dim mismatch";
  if out.rows <> a.rows || out.cols <> b.cols then
    invalid_arg "Tensor.matmul_into: output shape mismatch";
  fill out 0.0;
  let n = a.cols and m = b.cols in
  let ad = a.data and bd = b.data and od = out.data in
  let j0 = ref 0 in
  while !j0 < m do
    let jlo = !j0 in
    let jhi = min m (jlo + jblk) - 1 in
    let i = ref 0 in
    while !i + 7 < a.rows do
      let i0 = !i in
      let a0 = a.off + (i0 * n) in
      let o0 = out.off + (i0 * m) in
      for k = 0 to n - 1 do
        let x0 = Array.unsafe_get ad (a0 + k)
        and x1 = Array.unsafe_get ad (a0 + n + k)
        and x2 = Array.unsafe_get ad (a0 + (2 * n) + k)
        and x3 = Array.unsafe_get ad (a0 + (3 * n) + k)
        and x4 = Array.unsafe_get ad (a0 + (4 * n) + k)
        and x5 = Array.unsafe_get ad (a0 + (5 * n) + k)
        and x6 = Array.unsafe_get ad (a0 + (6 * n) + k)
        and x7 = Array.unsafe_get ad (a0 + (7 * n) + k) in
        let bbase = b.off + (k * m) in
        for j = jlo to jhi do
          let bv = Array.unsafe_get bd (bbase + j) in
          let c = o0 + j in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x0 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x1 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x2 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x3 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x4 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x5 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x6 *. bv));
          let c = c + m in
          Array.unsafe_set od c (Array.unsafe_get od c +. (x7 *. bv))
        done
      done;
      i := i0 + 8
    done;
    while !i + 3 < a.rows do
      let i0 = !i in
      let a0 = a.off + (i0 * n)
      and a1 = a.off + ((i0 + 1) * n)
      and a2 = a.off + ((i0 + 2) * n)
      and a3 = a.off + ((i0 + 3) * n) in
      let o0 = out.off + (i0 * m)
      and o1 = out.off + ((i0 + 1) * m)
      and o2 = out.off + ((i0 + 2) * m)
      and o3 = out.off + ((i0 + 3) * m) in
      for k = 0 to n - 1 do
        let x0 = Array.unsafe_get ad (a0 + k)
        and x1 = Array.unsafe_get ad (a1 + k)
        and x2 = Array.unsafe_get ad (a2 + k)
        and x3 = Array.unsafe_get ad (a3 + k) in
        let bbase = b.off + (k * m) in
        for j = jlo to jhi do
          let bv = Array.unsafe_get bd (bbase + j) in
          Array.unsafe_set od (o0 + j) (Array.unsafe_get od (o0 + j) +. (x0 *. bv));
          Array.unsafe_set od (o1 + j) (Array.unsafe_get od (o1 + j) +. (x1 *. bv));
          Array.unsafe_set od (o2 + j) (Array.unsafe_get od (o2 + j) +. (x2 *. bv));
          Array.unsafe_set od (o3 + j) (Array.unsafe_get od (o3 + j) +. (x3 *. bv))
        done
      done;
      i := i0 + 4
    done;
    while !i < a.rows do
      let abase = a.off + (!i * n) in
      let obase = out.off + (!i * m) in
      for k = 0 to n - 1 do
        let aik = Array.unsafe_get ad (abase + k) in
        let bbase = b.off + (k * m) in
        for j = jlo to jhi do
          Array.unsafe_set od (obase + j)
            (Array.unsafe_get od (obase + j) +. (aik *. Array.unsafe_get bd (bbase + j)))
        done
      done;
      incr i
    done;
    j0 := jlo + jblk
  done

let matmul a b =
  let out = create a.rows b.cols in
  matmul_into ~out a b;
  out

(* out = a . b^T  for a : p x n, b : q x n: ascending-k accumulation.
   j-quads (then pairs) share each a load; the dot products stay
   independent, so every element's sum order is the plain sequential one. *)
let matmul_nt_into ~out a b =
  if a.cols <> b.cols then invalid_arg "Tensor.matmul_nt_into: inner dim mismatch";
  if out.rows <> a.rows || out.cols <> b.rows then
    invalid_arg "Tensor.matmul_nt_into: output shape mismatch";
  let n = a.cols in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to a.rows - 1 do
    let abase = a.off + (i * n) in
    let obase = out.off + (i * out.cols) in
    let j = ref 0 in
    while !j + 3 < b.rows do
      let b0 = b.off + (!j * n) in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for k = 0 to n - 1 do
        let av = Array.unsafe_get ad (abase + k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b0 + n + k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b0 + (2 * n) + k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b0 + (3 * n) + k))
      done;
      Array.unsafe_set od (obase + !j) !s0;
      Array.unsafe_set od (obase + !j + 1) !s1;
      Array.unsafe_set od (obase + !j + 2) !s2;
      Array.unsafe_set od (obase + !j + 3) !s3;
      j := !j + 4
    done;
    while !j + 1 < b.rows do
      let b0 = b.off + (!j * n) and b1 = b.off + ((!j + 1) * n) in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for k = 0 to n - 1 do
        let av = Array.unsafe_get ad (abase + k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + k))
      done;
      Array.unsafe_set od (obase + !j) !s0;
      Array.unsafe_set od (obase + !j + 1) !s1;
      j := !j + 2
    done;
    while !j < b.rows do
      let bbase = b.off + (!j * n) in
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (Array.unsafe_get ad (abase + k) *. Array.unsafe_get bd (bbase + k))
      done;
      Array.unsafe_set od (obase + !j) !acc;
      incr j
    done
  done

(* acc += a^T . b  for a : r x p, b : r x q: each acc element receives its
   products in ascending r -- the gradient-side kernel (X^T G). 4x4 register
   tiles seed each accumulator from acc, fold the r terms in registers, and
   store once; the per-element sequence (acc + t0) + t1 + ... is exactly the
   through-memory order of the scalar tail below. *)
let matmul_tn_acc ~acc a b =
  if a.rows <> b.rows then invalid_arg "Tensor.matmul_tn_acc: row mismatch";
  if acc.rows <> a.cols || acc.cols <> b.cols then
    invalid_arg "Tensor.matmul_tn_acc: output shape mismatch";
  let p = a.cols and q = b.cols in
  let rows = a.rows in
  let ad = a.data and bd = b.data and cd = acc.data in
  let i = ref 0 in
  while !i + 3 < p do
    let j = ref 0 in
    while !j + 3 < q do
      let c0 = acc.off + (!i * q) + !j in
      let c1 = c0 + q and c2 = c0 + (2 * q) and c3 = c0 + (3 * q) in
      let s00 = ref (Array.unsafe_get cd c0)
      and s01 = ref (Array.unsafe_get cd (c0 + 1))
      and s02 = ref (Array.unsafe_get cd (c0 + 2))
      and s03 = ref (Array.unsafe_get cd (c0 + 3)) in
      let s10 = ref (Array.unsafe_get cd c1)
      and s11 = ref (Array.unsafe_get cd (c1 + 1))
      and s12 = ref (Array.unsafe_get cd (c1 + 2))
      and s13 = ref (Array.unsafe_get cd (c1 + 3)) in
      let s20 = ref (Array.unsafe_get cd c2)
      and s21 = ref (Array.unsafe_get cd (c2 + 1))
      and s22 = ref (Array.unsafe_get cd (c2 + 2))
      and s23 = ref (Array.unsafe_get cd (c2 + 3)) in
      let s30 = ref (Array.unsafe_get cd c3)
      and s31 = ref (Array.unsafe_get cd (c3 + 1))
      and s32 = ref (Array.unsafe_get cd (c3 + 2))
      and s33 = ref (Array.unsafe_get cd (c3 + 3)) in
      for r = 0 to rows - 1 do
        let xb = a.off + (r * p) + !i in
        let gb = b.off + (r * q) + !j in
        let g0 = Array.unsafe_get bd gb
        and g1 = Array.unsafe_get bd (gb + 1)
        and g2 = Array.unsafe_get bd (gb + 2)
        and g3 = Array.unsafe_get bd (gb + 3) in
        let x0 = Array.unsafe_get ad xb in
        s00 := !s00 +. (x0 *. g0);
        s01 := !s01 +. (x0 *. g1);
        s02 := !s02 +. (x0 *. g2);
        s03 := !s03 +. (x0 *. g3);
        let x1 = Array.unsafe_get ad (xb + 1) in
        s10 := !s10 +. (x1 *. g0);
        s11 := !s11 +. (x1 *. g1);
        s12 := !s12 +. (x1 *. g2);
        s13 := !s13 +. (x1 *. g3);
        let x2 = Array.unsafe_get ad (xb + 2) in
        s20 := !s20 +. (x2 *. g0);
        s21 := !s21 +. (x2 *. g1);
        s22 := !s22 +. (x2 *. g2);
        s23 := !s23 +. (x2 *. g3);
        let x3 = Array.unsafe_get ad (xb + 3) in
        s30 := !s30 +. (x3 *. g0);
        s31 := !s31 +. (x3 *. g1);
        s32 := !s32 +. (x3 *. g2);
        s33 := !s33 +. (x3 *. g3)
      done;
      Array.unsafe_set cd c0 !s00;
      Array.unsafe_set cd (c0 + 1) !s01;
      Array.unsafe_set cd (c0 + 2) !s02;
      Array.unsafe_set cd (c0 + 3) !s03;
      Array.unsafe_set cd c1 !s10;
      Array.unsafe_set cd (c1 + 1) !s11;
      Array.unsafe_set cd (c1 + 2) !s12;
      Array.unsafe_set cd (c1 + 3) !s13;
      Array.unsafe_set cd c2 !s20;
      Array.unsafe_set cd (c2 + 1) !s21;
      Array.unsafe_set cd (c2 + 2) !s22;
      Array.unsafe_set cd (c2 + 3) !s23;
      Array.unsafe_set cd c3 !s30;
      Array.unsafe_set cd (c3 + 1) !s31;
      Array.unsafe_set cd (c3 + 2) !s32;
      Array.unsafe_set cd (c3 + 3) !s33;
      j := !j + 4
    done;
    while !j < q do
      let c0 = acc.off + (!i * q) + !j in
      let s0 = ref (Array.unsafe_get cd c0)
      and s1 = ref (Array.unsafe_get cd (c0 + q))
      and s2 = ref (Array.unsafe_get cd (c0 + (2 * q)))
      and s3 = ref (Array.unsafe_get cd (c0 + (3 * q))) in
      for r = 0 to rows - 1 do
        let xb = a.off + (r * p) + !i in
        let gv = Array.unsafe_get bd (b.off + (r * q) + !j) in
        s0 := !s0 +. (Array.unsafe_get ad xb *. gv);
        s1 := !s1 +. (Array.unsafe_get ad (xb + 1) *. gv);
        s2 := !s2 +. (Array.unsafe_get ad (xb + 2) *. gv);
        s3 := !s3 +. (Array.unsafe_get ad (xb + 3) *. gv)
      done;
      Array.unsafe_set cd c0 !s0;
      Array.unsafe_set cd (c0 + q) !s1;
      Array.unsafe_set cd (c0 + (2 * q)) !s2;
      Array.unsafe_set cd (c0 + (3 * q)) !s3;
      incr j
    done;
    i := !i + 4
  done;
  while !i < p do
    for j = 0 to q - 1 do
      let c = acc.off + (!i * q) + j in
      let s = ref (Array.unsafe_get cd c) in
      for r = 0 to rows - 1 do
        s :=
          !s
          +. (Array.unsafe_get ad (a.off + (r * p) + !i)
             *. Array.unsafe_get bd (b.off + (r * q) + j))
      done;
      Array.unsafe_set cd c !s
    done;
    incr i
  done

(* out = a . b^T accumulated into acc: acc += a . b^T, each element's sum in
   ascending k then one add (the input-gradient kernel G W^T). j-quads
   (then pairs) share each a load. *)
let matmul_nt_acc ~acc a b =
  if a.cols <> b.cols then invalid_arg "Tensor.matmul_nt_acc: inner dim mismatch";
  if acc.rows <> a.rows || acc.cols <> b.rows then
    invalid_arg "Tensor.matmul_nt_acc: output shape mismatch";
  let n = a.cols in
  let m = acc.cols in
  let ad = a.data and bd = b.data and cd = acc.data in
  (* 4x4 register tiles over (a row, b row) blocks: sixteen dot products
     accumulate in registers over one pass of the shared a/b rows, each in
     ascending k, then land with one add apiece -- the same per-element
     order as the single-row path below. *)
  let ii = ref 0 in
  while !ii + 3 < a.rows do
    let a0 = a.off + (!ii * n) in
    let c0 = acc.off + (!ii * m) in
    let j = ref 0 in
    while !j + 3 < b.rows do
      let b0 = b.off + (!j * n) in
      let s00 = ref 0.0 and s01 = ref 0.0 and s02 = ref 0.0 and s03 = ref 0.0 in
      let s10 = ref 0.0 and s11 = ref 0.0 and s12 = ref 0.0 and s13 = ref 0.0 in
      let s20 = ref 0.0 and s21 = ref 0.0 and s22 = ref 0.0 and s23 = ref 0.0 in
      let s30 = ref 0.0 and s31 = ref 0.0 and s32 = ref 0.0 and s33 = ref 0.0 in
      for k = 0 to n - 1 do
        let b0v = Array.unsafe_get bd (b0 + k)
        and b1v = Array.unsafe_get bd (b0 + n + k)
        and b2v = Array.unsafe_get bd (b0 + (2 * n) + k)
        and b3v = Array.unsafe_get bd (b0 + (3 * n) + k) in
        let x0 = Array.unsafe_get ad (a0 + k) in
        s00 := !s00 +. (x0 *. b0v);
        s01 := !s01 +. (x0 *. b1v);
        s02 := !s02 +. (x0 *. b2v);
        s03 := !s03 +. (x0 *. b3v);
        let x1 = Array.unsafe_get ad (a0 + n + k) in
        s10 := !s10 +. (x1 *. b0v);
        s11 := !s11 +. (x1 *. b1v);
        s12 := !s12 +. (x1 *. b2v);
        s13 := !s13 +. (x1 *. b3v);
        let x2 = Array.unsafe_get ad (a0 + (2 * n) + k) in
        s20 := !s20 +. (x2 *. b0v);
        s21 := !s21 +. (x2 *. b1v);
        s22 := !s22 +. (x2 *. b2v);
        s23 := !s23 +. (x2 *. b3v);
        let x3 = Array.unsafe_get ad (a0 + (3 * n) + k) in
        s30 := !s30 +. (x3 *. b0v);
        s31 := !s31 +. (x3 *. b1v);
        s32 := !s32 +. (x3 *. b2v);
        s33 := !s33 +. (x3 *. b3v)
      done;
      let c = c0 + !j in
      Array.unsafe_set cd c (Array.unsafe_get cd c +. !s00);
      Array.unsafe_set cd (c + 1) (Array.unsafe_get cd (c + 1) +. !s01);
      Array.unsafe_set cd (c + 2) (Array.unsafe_get cd (c + 2) +. !s02);
      Array.unsafe_set cd (c + 3) (Array.unsafe_get cd (c + 3) +. !s03);
      let c = c + m in
      Array.unsafe_set cd c (Array.unsafe_get cd c +. !s10);
      Array.unsafe_set cd (c + 1) (Array.unsafe_get cd (c + 1) +. !s11);
      Array.unsafe_set cd (c + 2) (Array.unsafe_get cd (c + 2) +. !s12);
      Array.unsafe_set cd (c + 3) (Array.unsafe_get cd (c + 3) +. !s13);
      let c = c + m in
      Array.unsafe_set cd c (Array.unsafe_get cd c +. !s20);
      Array.unsafe_set cd (c + 1) (Array.unsafe_get cd (c + 1) +. !s21);
      Array.unsafe_set cd (c + 2) (Array.unsafe_get cd (c + 2) +. !s22);
      Array.unsafe_set cd (c + 3) (Array.unsafe_get cd (c + 3) +. !s23);
      let c = c + m in
      Array.unsafe_set cd c (Array.unsafe_get cd c +. !s30);
      Array.unsafe_set cd (c + 1) (Array.unsafe_get cd (c + 1) +. !s31);
      Array.unsafe_set cd (c + 2) (Array.unsafe_get cd (c + 2) +. !s32);
      Array.unsafe_set cd (c + 3) (Array.unsafe_get cd (c + 3) +. !s33);
      j := !j + 4
    done;
    while !j < b.rows do
      let b0 = b.off + (!j * n) in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for k = 0 to n - 1 do
        let bv = Array.unsafe_get bd (b0 + k) in
        s0 := !s0 +. (Array.unsafe_get ad (a0 + k) *. bv);
        s1 := !s1 +. (Array.unsafe_get ad (a0 + n + k) *. bv);
        s2 := !s2 +. (Array.unsafe_get ad (a0 + (2 * n) + k) *. bv);
        s3 := !s3 +. (Array.unsafe_get ad (a0 + (3 * n) + k) *. bv)
      done;
      Array.unsafe_set cd (c0 + !j) (Array.unsafe_get cd (c0 + !j) +. !s0);
      Array.unsafe_set cd (c0 + m + !j) (Array.unsafe_get cd (c0 + m + !j) +. !s1);
      Array.unsafe_set cd
        (c0 + (2 * m) + !j)
        (Array.unsafe_get cd (c0 + (2 * m) + !j) +. !s2);
      Array.unsafe_set cd
        (c0 + (3 * m) + !j)
        (Array.unsafe_get cd (c0 + (3 * m) + !j) +. !s3);
      incr j
    done;
    ii := !ii + 4
  done;
  for i = !ii to a.rows - 1 do
    let abase = a.off + (i * n) in
    let cbase = acc.off + (i * acc.cols) in
    let j = ref 0 in
    while !j + 3 < b.rows do
      let b0 = b.off + (!j * n) in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for k = 0 to n - 1 do
        let av = Array.unsafe_get ad (abase + k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b0 + n + k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b0 + (2 * n) + k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b0 + (3 * n) + k))
      done;
      Array.unsafe_set cd (cbase + !j) (Array.unsafe_get cd (cbase + !j) +. !s0);
      Array.unsafe_set cd (cbase + !j + 1)
        (Array.unsafe_get cd (cbase + !j + 1) +. !s1);
      Array.unsafe_set cd (cbase + !j + 2)
        (Array.unsafe_get cd (cbase + !j + 2) +. !s2);
      Array.unsafe_set cd (cbase + !j + 3)
        (Array.unsafe_get cd (cbase + !j + 3) +. !s3);
      j := !j + 4
    done;
    while !j + 1 < b.rows do
      let b0 = b.off + (!j * n) and b1 = b.off + ((!j + 1) * n) in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for k = 0 to n - 1 do
        let av = Array.unsafe_get ad (abase + k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + k))
      done;
      Array.unsafe_set cd (cbase + !j) (Array.unsafe_get cd (cbase + !j) +. !s0);
      Array.unsafe_set cd (cbase + !j + 1)
        (Array.unsafe_get cd (cbase + !j + 1) +. !s1);
      j := !j + 2
    done;
    while !j < b.rows do
      let bbase = b.off + (!j * n) in
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (Array.unsafe_get ad (abase + k) *. Array.unsafe_get bd (bbase + k))
      done;
      Array.unsafe_set cd (cbase + !j) (Array.unsafe_get cd (cbase + !j) +. !s);
      incr j
    done
  done

(* out.(r) = x.(r) + b.(0): bias broadcast over the batch axis. *)
let add_bias_into ~out x b =
  if b.rows <> 1 || b.cols <> x.cols then invalid_arg "Tensor.add_bias_into: bias shape";
  if out.rows <> x.rows || out.cols <> x.cols then
    invalid_arg "Tensor.add_bias_into: output shape mismatch";
  let xd = x.data and bd = b.data and od = out.data in
  for r = 0 to x.rows - 1 do
    let xbase = x.off + (r * x.cols) in
    let obase = out.off + (r * x.cols) in
    for j = 0 to x.cols - 1 do
      Array.unsafe_set od (obase + j)
        (Array.unsafe_get xd (xbase + j) +. Array.unsafe_get bd (b.off + j))
    done
  done

(* dst (r x c) += the [start, start+c) column window of g (r x >=c):
   the backward of a row-wise concatenation. *)
let accumulate_cols ~dst g ~start =
  if dst.rows <> g.rows || start < 0 || start + dst.cols > g.cols then
    invalid_arg "Tensor.accumulate_cols: window out of bounds";
  let dd = dst.data and gd = g.data in
  for r = 0 to dst.rows - 1 do
    let dbase = dst.off + (r * dst.cols) in
    let gbase = g.off + (r * g.cols) + start in
    for j = 0 to dst.cols - 1 do
      Array.unsafe_set dd (dbase + j)
        (Array.unsafe_get dd (dbase + j) +. Array.unsafe_get gd (gbase + j))
    done
  done

(* acc (1 x cols) += column sums of x, rows accumulated in ascending order
   (the bias gradient under broadcasting). *)
let sum_rows_acc ~acc x =
  if acc.rows <> 1 || acc.cols <> x.cols then
    invalid_arg "Tensor.sum_rows_acc: shape mismatch";
  let ad = acc.data and xd = x.data in
  for r = 0 to x.rows - 1 do
    let base = x.off + (r * x.cols) in
    for j = 0 to x.cols - 1 do
      Array.unsafe_set ad (acc.off + j)
        (Array.unsafe_get ad (acc.off + j) +. Array.unsafe_get xd (base + j))
    done
  done

(* row vector (1 x n) times matrix (n x m) -> (1 x m) *)
let vec_mat v m =
  if v.rows <> 1 then invalid_arg "Tensor.vec_mat: row vector expected";
  if v.cols <> m.rows then invalid_arg "Tensor.vec_mat: shape mismatch";
  matmul v m

(* matrix (n x m) times a length-m vector -> (1 x n) *)
let mat_vec m v =
  if v.rows <> 1 then invalid_arg "Tensor.mat_vec: row vector expected";
  if v.cols <> m.cols then invalid_arg "Tensor.mat_vec: shape mismatch";
  let out = create 1 m.rows in
  matmul_nt_into ~out v m;
  out

(* outer product of two row vectors: (1 x n) x (1 x m) -> (n x m) *)
let outer a b =
  if a.rows <> 1 || b.rows <> 1 then invalid_arg "Tensor.outer: row vectors expected";
  let out = create a.cols b.cols in
  matmul_tn_acc ~acc:out a b;
  out

let dot a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0.0 in
  for i = 0 to size a - 1 do
    acc := !acc +. (a.data.(a.off + i) *. b.data.(b.off + i))
  done;
  !acc

let concat_vectors a b =
  if a.rows <> 1 || b.rows <> 1 then invalid_arg "Tensor.concat_vectors: vectors only";
  let out = create 1 (a.cols + b.cols) in
  Array.blit a.data a.off out.data 0 a.cols;
  Array.blit b.data b.off out.data a.cols b.cols;
  out

(* row-wise concatenation of two batches: out.(r) = a.(r) ++ b.(r) *)
let concat_cols_into ~out a b =
  if a.rows <> b.rows then invalid_arg "Tensor.concat_cols_into: row mismatch";
  if out.rows <> a.rows || out.cols <> a.cols + b.cols then
    invalid_arg "Tensor.concat_cols_into: output shape mismatch";
  for r = 0 to a.rows - 1 do
    let obase = out.off + (r * out.cols) in
    Array.blit a.data (a.off + (r * a.cols)) out.data obase a.cols;
    Array.blit b.data (b.off + (r * b.cols)) out.data (obase + a.cols) b.cols
  done

let slice_vector t ~start ~len =
  if t.rows <> 1 then invalid_arg "Tensor.slice_vector: vectors only";
  if start < 0 || len < 0 || start + len > t.cols then
    invalid_arg "Tensor.slice_vector: out of bounds";
  { data = t.data; off = t.off + start; rows = 1; cols = len }

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Tensor.row: index out of bounds";
  { data = t.data; off = t.off + (i * t.cols); rows = 1; cols = t.cols }

(* Glorot-style random initialization. *)
let init_uniform rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  { data =
      Array.init (rows * cols) (fun _ ->
          (Genie_util.Rng.float rng 2.0 -. 1.0) *. bound);
    off = 0;
    rows;
    cols }

let l2_norm t =
  let acc = ref 0.0 in
  for i = 0 to size t - 1 do
    let x = t.data.(t.off + i) in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

(* --- scratch arenas ---------------------------------------------------------- *)

(* Size-bucketed free lists of float arrays, so a training step reuses the
   previous step's buffers instead of allocating a fresh tape's worth of
   tensors per step. [take] hands out a zeroed tensor; [reset] (between
   optimizer steps, after gradients have been copied out) returns every
   outstanding buffer to its bucket. An arena is single-domain by
   construction: each training worker owns one. *)
module Scratch = struct
  type bucket = { mutable avail : float array list; mutable used : float array list }

  type arena = {
    buckets : (int, bucket) Hashtbl.t;
    mutable live : int; (* tensors handed out since the last reset *)
    mutable reused : int; (* takes served from a free list *)
  }

  let create () = { buckets = Hashtbl.create 64; live = 0; reused = 0 }

  let take arena rows cols =
    if rows < 0 || cols < 0 then invalid_arg "Scratch.take: negative shape";
    let n = rows * cols in
    let b =
      match Hashtbl.find_opt arena.buckets n with
      | Some b -> b
      | None ->
          let b = { avail = []; used = [] } in
          Hashtbl.replace arena.buckets n b;
          b
    in
    let data =
      match b.avail with
      | d :: rest ->
          b.avail <- rest;
          Array.fill d 0 n 0.0;
          arena.reused <- arena.reused + 1;
          d
      | [] -> Array.make n 0.0
    in
    b.used <- data :: b.used;
    arena.live <- arena.live + 1;
    { data; off = 0; rows; cols }

  let reset arena =
    Hashtbl.iter
      (fun _ b ->
        b.avail <- List.rev_append b.used b.avail;
        b.used <- [])
      arena.buckets;
    arena.live <- 0

  let live arena = arena.live
  let reused arena = arena.reused
end
