(* Dense float tensors (vectors and matrices) for the neural substrate. *)

type t = { data : float array; rows : int; cols : int }

let create rows cols = { data = Array.make (rows * cols) 0.0; rows; cols }

let zeros_like t = create t.rows t.cols

let of_array rows cols data =
  if Array.length data <> rows * cols then invalid_arg "Tensor.of_array: size mismatch";
  { data; rows; cols }

let vector data = { data; rows = 1; cols = Array.length data }

let get t i j = t.data.((i * t.cols) + j)
let set t i j v = t.data.((i * t.cols) + j) <- v

let copy t = { t with data = Array.copy t.data }

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let size t = t.rows * t.cols

let iteri f t = Array.iteri f t.data

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.init (size a) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale k t = map (fun x -> k *. x) t

(* in-place accumulate: a += b *)
let accumulate a b =
  if size a <> size b then invalid_arg "Tensor.accumulate: shape mismatch";
  for i = 0 to size a - 1 do
    a.data.(i) <- a.data.(i) +. b.data.(i)
  done

(* row vector (1 x n) times matrix (n x m) -> (1 x m) *)
let vec_mat v m =
  if v.cols <> m.rows then invalid_arg "Tensor.vec_mat: shape mismatch";
  let out = create 1 m.cols in
  for j = 0 to m.cols - 1 do
    let acc = ref 0.0 in
    for i = 0 to m.rows - 1 do
      acc := !acc +. (v.data.(i) *. m.data.((i * m.cols) + j))
    done;
    out.data.(j) <- !acc
  done;
  out

(* matrix (n x m) times column vector (1 x m interpreted as m) -> (1 x n) *)
let mat_vec m v =
  if v.cols <> m.cols then invalid_arg "Tensor.mat_vec: shape mismatch";
  let out = create 1 m.rows in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.((i * m.cols) + j) *. v.data.(j))
    done;
    out.data.(i) <- !acc
  done;
  out

(* outer product of two row vectors: (1 x n) x (1 x m) -> (n x m) *)
let outer a b =
  let out = create a.cols b.cols in
  for i = 0 to a.cols - 1 do
    for j = 0 to b.cols - 1 do
      out.data.((i * b.cols) + j) <- a.data.(i) *. b.data.(j)
    done
  done;
  out

let dot a b =
  if size a <> size b then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0.0 in
  for i = 0 to size a - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

let concat_vectors a b =
  if a.rows <> 1 || b.rows <> 1 then invalid_arg "Tensor.concat_vectors: vectors only";
  { data = Array.append a.data b.data; rows = 1; cols = a.cols + b.cols }

let slice_vector t ~start ~len =
  if t.rows <> 1 then invalid_arg "Tensor.slice_vector: vectors only";
  { data = Array.sub t.data start len; rows = 1; cols = len }

let row t i = { data = Array.sub t.data (i * t.cols) t.cols; rows = 1; cols = t.cols }

(* Glorot-style random initialization. *)
let init_uniform rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  { data =
      Array.init (rows * cols) (fun _ ->
          (Genie_util.Rng.float rng 2.0 -. 1.0) *. bound);
    rows;
    cols }

let l2_norm t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)
