(** Reverse-mode automatic differentiation on a tape.

    Nodes record in creation order; {!backward} walks the tape in reverse and
    each node's closure scatters its gradient into its parents. Gradients are
    verified against finite differences in the test suite. *)

type node = {
  id : int;
  value : Tensor.t;
  grad : Tensor.t;  (** accumulated in place during {!backward} *)
  back : unit -> unit;
}

type tape

val new_tape : unit -> tape

val record : tape -> Tensor.t -> (unit -> unit) -> node
(** Low-level: append a node with a custom backward closure. *)

val leaf : tape -> Tensor.t -> node
(** A parameter or constant; gradients accumulate but do not propagate. *)

val const : tape -> Tensor.t -> node

(** {2 Differentiable operations} *)

val add : tape -> node -> node -> node

val sub : tape -> node -> node -> node

val mul : tape -> node -> node -> node
(** Elementwise product. *)

val scale : tape -> float -> node -> node

val vec_mat : tape -> node -> node -> node
(** Row vector times matrix. *)

val sigmoid : tape -> node -> node

val tanh_ : tape -> node -> node

val concat : tape -> node -> node -> node
(** Vector concatenation. *)

val row : tape -> node -> int -> node
(** Embedding-row lookup. *)

val dot : tape -> node -> node -> node
(** Inner product; a 1x1 result node. *)

val dropout : tape -> Genie_util.Rng.t -> p:float -> training:bool -> node -> node
(** Inverted dropout; identity when not training or [p <= 0]. *)

val softmax : tape -> node -> node
(** Differentiable softmax (attention weights). *)

val softmax_nll : tape -> node -> target:int -> node * float array
(** Fused softmax + negative log-likelihood of [target]; also returns the
    probabilities. *)

val pointer_nll :
  tape ->
  gate:node ->
  vocab_probs:node ->
  attention:node ->
  target:int ->
  copy_positions:int list ->
  node
(** Mixture NLL of the pointer-generator:
    [-log (gate * p_vocab(target) + (1 - gate) * sum of attention on
    copy_positions)]. A [target] of [-1] disables the vocabulary path (the
    token can only be produced by copying). *)

val sum_scalars : tape -> node list -> node

val backward : tape -> node -> unit
(** Backpropagates from a scalar loss node through the whole tape. *)
