(** Reverse-mode automatic differentiation on a tape.

    Nodes record in creation order; {!backward} walks the tape in reverse and
    each node's closure scatters its gradient into its parents. Gradients are
    verified against finite differences in the test suite.

    Every operation is row-batched: a node's value is a [rows x cols] tensor
    and every op except the matmul family is row-parallel. All kernels
    accumulate in ascending inner index, so a one-row batch replays exactly
    the scalar operation sequence of the historical per-example ops --
    forward values and gradients at [rows = 1] are bitwise identical to the
    pre-batching tape. *)

type node = {
  id : int;
  value : Tensor.t;
  grad : Tensor.t;  (** accumulated in place during {!backward} *)
  back : unit -> unit;
}

type tape

val new_tape : ?scratch:Tensor.Scratch.arena -> ?private_leaves:bool -> unit -> tape
(** [~scratch] recycles node value/grad buffers from an arena instead of
    allocating per node (reset the arena between optimizer steps, after
    copying gradients out). [~private_leaves:true] gives every distinct
    {!leaf_with_grad} key its own tape-private gradient buffer (see
    {!private_grad}) so concurrent workers sharing read-only parameters never
    write a shared buffer. *)

val tape_length : tape -> int
(** Number of nodes recorded so far (batching collapses per-example tapes). *)

val alloc : tape -> int -> int -> Tensor.t
(** A zeroed [rows x cols] buffer from the tape's arena (or a fresh tensor). *)

val record : tape -> Tensor.t -> (unit -> unit) -> node
(** Low-level: append a node with a custom backward closure. *)

val record_with_grad : tape -> Tensor.t -> grad:Tensor.t -> (unit -> unit) -> node
(** {!record} with an explicit (already zeroed) gradient buffer. *)

val leaf : tape -> Tensor.t -> node
(** A parameter or constant; gradients accumulate but do not propagate. *)

val leaf_with_grad : tape -> Tensor.t -> grad:Tensor.t -> node
(** A leaf whose gradient buffer is supplied by the caller (parameter
    binding). *)

val const : tape -> Tensor.t -> node

val private_leaves : tape -> bool

val private_grad : tape -> key:int -> rows:int -> cols:int -> Tensor.t option
(** On a [private_leaves] tape: the tape-private gradient buffer for leaf
    [key], created zeroed on first use and memoized. [None] on ordinary
    tapes. *)

val find_private_grad : tape -> key:int -> Tensor.t option
(** Lookup without creating (gradient extraction after {!backward}). *)

(** {2 Differentiable operations} *)

val add : tape -> node -> node -> node
(** Elementwise addition; a one-row operand broadcasts over the other
    operand's rows (bias add), its gradient reduced over rows in ascending
    order. *)

val sub : tape -> node -> node -> node

val mul : tape -> node -> node -> node
(** Elementwise product. *)

val scale : tape -> float -> node -> node

val matmul : tape -> node -> node -> node
(** Batched matrix product: [rows x n] times [n x m]. *)

val vec_mat : tape -> node -> node -> node
(** Historical name for {!matmul} (row vector times matrix). *)

val sigmoid : tape -> node -> node

val tanh_ : tape -> node -> node

val concat : tape -> node -> node -> node
(** Row-wise concatenation. *)

val row : tape -> node -> int -> node
(** Embedding-row lookup (zero-copy view of the parent's value). *)

val rows : tape -> node -> int array -> node
(** Batched embedding gather: row [r] of the result is row [ids.(r)] of the
    parent. *)

val dot : tape -> node -> node -> node
(** Inner product; a 1x1 result node. *)

val row_dot : tape -> node -> node -> node
(** Per-row inner product of two [rows x n] nodes; a [rows x 1] node. *)

val pack_cols : tape -> rows:int -> ?lengths:int array -> node list -> node
(** Pack T per-step [rows x 1] score nodes into one [rows x T] node.
    Positions at or beyond [lengths.(r)] hold [neg_infinity] (zero attention
    weight downstream, no gradient). *)

val attention_scores : tape -> ?lengths:int array -> node array -> node -> node
(** Fused attention scoring: one [rows x T] packed score node over T
    per-step state nodes (dot of each state row with the query row,
    ascending j; positions at or beyond [lengths.(r)] hold [neg_infinity]
    and are skipped outright). Bitwise-compatible with the per-step
    {!row_dot}-plus-{!pack_cols} chain it replaces. *)

val attention_context : tape -> node -> node array -> node
(** Fused attention context: row [r] is the sum over t of
    [weights.(r).(t) * states_t.(r)], accumulated in ascending t -- the
    historical {!col}/{!row_scale}/{!add} chain's per-element order. *)

val col : tape -> node -> int -> node
(** Column selection as a [rows x 1] node. *)

val row_scale : tape -> node -> node -> node
(** [row_scale s x]: row [r] of [x] scaled by [s.(r)] ([s] is [rows x 1]). *)

val rows_prefix : tape -> node -> int -> node
(** Zero-copy view of the first [k] rows: the value and gradient alias the
    parent's storage, so consumers accumulate straight into the parent's
    gradient rows. Returns the parent itself at [k = rows]. Used to run a
    padded batch's timestep on only the rows still active (prefix
    trimming). *)

val overlay_rows : tape -> top:node -> base:node -> node
(** [base] with its first [top.rows] rows replaced by [top]; suffix rows pass
    through, and backward routes each row's gradient to the parent that
    supplied it. Scatters a prefix-trimmed step result back into the
    full-batch state. Returns [top] at equal row counts. *)

val add_rows_prefix : tape -> node -> node -> node
(** [add_rows_prefix acc top]: [acc] plus [top] over [top]'s leading rows,
    [acc] passed through beyond them. Exactly {!add} at equal row counts. *)

val masked_select : tape -> bool array -> node -> node -> node
(** [masked_select mask a b]: row [r] is [a]'s where [mask.(r)], else [b]'s;
    gradient flows only to the selected parent (padded-timestep carry). *)

val dropout : tape -> Genie_util.Rng.t -> p:float -> training:bool -> node -> node
(** Inverted dropout; identity when not training or [p <= 0]. *)

val dropout_rows :
  tape ->
  Genie_util.Rng.t array ->
  ?active:bool array ->
  p:float ->
  training:bool ->
  node ->
  node
(** Row-batched inverted dropout: row [r] draws from [rngs.(r)] only, so each
    example's mask is independent of batch composition; inactive rows draw
    nothing and pass through unscaled. *)

val softmax : tape -> node -> node
(** Row-wise softmax (attention weights). A fully-masked row (maximum
    [neg_infinity]) yields zeros and receives no gradient. *)

val softmax_nll : tape -> node -> target:int -> node * float array
(** Fused softmax + negative log-likelihood of [target] over a single row;
    also returns the probabilities. *)

val pointer_nll :
  tape ->
  gate:node ->
  vocab_probs:node ->
  attention:node ->
  target:int ->
  copy_positions:int list ->
  node
(** Mixture NLL of the pointer-generator:
    [-log (gate * p_vocab(target) + (1 - gate) * sum of attention on
    copy_positions)]. A [target] of [-1] disables the vocabulary path (the
    token can only be produced by copying). *)

val pointer_nll_rows :
  tape ->
  gate:node ->
  vocab_probs:node ->
  attention:node ->
  targets:int array ->
  copy_positions:int list array ->
  active:bool array ->
  node
(** One pointer-generator decode step for a whole mini-batch: a [rows x 1]
    node of per-row NLLs. Inactive (padded) rows contribute exactly 0 and
    receive no gradient. *)

val sum_scalars : tape -> node list -> node

val sum_all : tape -> node -> node
(** Sum of every element as a 1x1 node (row-major accumulation); backward
    seeds each element with the incoming gradient. *)

val backward : tape -> node -> unit
(** Backpropagates from a scalar loss node through the whole tape. *)
