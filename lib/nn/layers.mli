(** Neural layers on the autodiff tape: parameters, linear maps, embeddings,
    an LSTM cell and dot-product attention. Every layer is row-batched: feed
    [batch x dim] nodes, get [batch x dim'] nodes; a one-row batch is bitwise
    identical to the historical per-example path. *)

type param = {
  uid : int;  (** keys tape-private gradient buffers in parallel training *)
  name : string;
  tensor : Tensor.t;
  grad : Tensor.t;
  m : Tensor.t;  (** Adam first moment *)
  v : Tensor.t;  (** Adam second moment *)
}

val mk_param : Genie_util.Rng.t -> string -> int -> int -> param
val mk_param_zero : string -> int -> int -> param

val use : Autodiff.tape -> param -> Autodiff.node
(** Binds a parameter for this forward pass: a leaf node whose gradient
    buffer is the parameter's -- or a tape-private buffer keyed by [uid] on a
    private-leaves tape (parallel workers never share gradient storage). *)

type linear = { w : param; b : param }

val mk_linear : Genie_util.Rng.t -> string -> input:int -> output:int -> linear
val linear_params : linear -> param list
val apply_linear : Autodiff.tape -> linear -> Autodiff.node -> Autodiff.node

type embedding = { table : param; dim : int }

val mk_embedding : Genie_util.Rng.t -> string -> vocab:int -> dim:int -> embedding
val embedding_params : embedding -> param list
val lookup : Autodiff.tape -> embedding -> int -> Autodiff.node

val lookup_rows : Autodiff.tape -> embedding -> int array -> Autodiff.node
(** Batched lookup: row [r] of the result embeds [ids.(r)]. *)

type lstm = { wi : linear; wf : linear; wo : linear; wg : linear; hidden : int }

val mk_lstm : Genie_util.Rng.t -> string -> input:int -> hidden:int -> lstm
val lstm_params : lstm -> param list

type lstm_state = { h : Autodiff.node; c : Autodiff.node }

val lstm_init : ?rows:int -> Autodiff.tape -> lstm -> lstm_state
(** Zero state for a batch of [rows] (default 1). *)

val lstm_step : Autodiff.tape -> lstm -> lstm_state -> Autodiff.node -> lstm_state

val attention :
  ?lengths:int array ->
  Autodiff.tape ->
  Autodiff.node list ->
  Autodiff.node ->
  Autodiff.node * Autodiff.node
(** Dot-product attention of a batch of queries over per-step batches of
    encoder states: (weights [rows x T], context [rows x hidden]), both
    differentiable. [lengths.(r)] masks positions at or beyond row r's source
    length. *)
