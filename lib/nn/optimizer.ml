(* Adam optimizer (the paper trains with Adam, section 4.3). *)

type t = {
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  clip : float; (* global gradient-norm clip; 0 disables *)
  mutable step : int;
}

let adam ?(lr = 1e-2) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(clip = 5.0) () =
  { lr; beta1; beta2; eps; clip; step = 0 }

let zero_grads (params : Layers.param list) =
  List.iter (fun p -> Tensor.fill p.Layers.grad 0.0) params

let global_norm params =
  sqrt
    (List.fold_left
       (fun acc p ->
         acc
         +. Array.fold_left (fun a x -> a +. (x *. x)) 0.0 p.Layers.grad.Tensor.data)
       0.0 params)

let update t (params : Layers.param list) =
  t.step <- t.step + 1;
  let scale =
    if t.clip > 0.0 then
      let n = global_norm params in
      if n > t.clip then t.clip /. n else 1.0
    else 1.0
  in
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step) in
  List.iter
    (fun p ->
      let g = p.Layers.grad.Tensor.data in
      let m = p.Layers.m.Tensor.data in
      let v = p.Layers.v.Tensor.data in
      let w = p.Layers.tensor.Tensor.data in
      for i = 0 to Array.length w - 1 do
        let gi = g.(i) *. scale in
        m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. gi);
        v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. gi *. gi);
        let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
        w.(i) <- w.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps))
      done)
    params

(* 16-hex digest over parameter names and exact float bit patterns, in
   [params] order -- byte-identical weights iff byte-identical digest. *)
let digest (params : Layers.param list) =
  let h =
    List.fold_left
      (fun h (p : Layers.param) ->
        let h = Genie_util.Hash64.string h p.Layers.name in
        let t = p.Layers.tensor in
        let acc = ref h in
        for i = 0 to Tensor.size t - 1 do
          acc :=
            Genie_util.Hash64.combine !acc
              (Int64.bits_of_float t.Tensor.data.(t.Tensor.off + i))
        done;
        !acc)
      (Genie_util.Hash64.string 0L "genie.weights")
      params
  in
  Genie_util.Hash64.to_hex h

(* Load externally-reduced gradients (fixed shard-order tree, see
   Seq2seq.train) into the parameters' gradient buffers and take one step. *)
let apply_reduced t (params : Layers.param list) (grads : Tensor.t list) =
  List.iter2
    (fun (p : Layers.param) (g : Tensor.t) ->
      let dst = p.Layers.grad in
      if Tensor.size g <> Tensor.size dst then
        invalid_arg "Optimizer.apply_reduced: gradient shape mismatch";
      Array.blit g.Tensor.data g.Tensor.off dst.Tensor.data dst.Tensor.off
        (Tensor.size dst))
    params grads;
  update t params
