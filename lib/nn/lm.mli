(** LSTM language model over ThingTalk program token sequences.

    The paper pretrains a 1-layer LSTM LM on a large synthesized program set
    and uses it as the decoder embedding of the semantic parser
    (section 4.2). *)

type t = {
  vocab : Vocab.t;
  embed : Layers.embedding;
  lstm : Layers.lstm;
  proj : Layers.linear;
  rng : Genie_util.Rng.t;
}

val create : ?embed_dim:int -> ?hidden_dim:int -> ?seed:int -> vocab:Vocab.t -> unit -> t
val params : t -> Layers.param list
val sequence_loss : Autodiff.tape -> t -> string list -> Autodiff.node

val perplexity : t -> string list list -> float
(** Per-token perplexity on a held-out set. *)

val train :
  ?epochs:int -> ?lr:float -> ?progress:(int -> float -> unit) -> t ->
  string list list -> unit

val embedding_table : t -> Tensor.t
(** The learned embedding, for initializing a decoder
    ({!Seq2seq.load_decoder_embedding}). *)
