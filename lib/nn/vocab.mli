(** Token vocabularies with the usual special symbols. *)

type t

val pad : string
val bos : string
val eos : string
val unk : string
val specials : string list

val of_tokens : string list -> t
(** Builds a vocabulary from a token stream (duplicates ignored); the
    specials come first. *)

val size : t -> int

val tokens : t -> string list
(** Every token in id order (specials first). [of_tokens (tokens v)]
    reconstructs a vocabulary with identical token <-> id assignments — the
    checkpoint serialization round-trip. *)

val id : t -> string -> int
(** The token's id, or the id of {!unk} when unseen. *)

val token : t -> int -> string
val bos_id : t -> int
val eos_id : t -> int
val unk_id : t -> int
