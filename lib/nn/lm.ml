(* LSTM language model over ThingTalk program token sequences: the paper
   pretrains a 1-layer LSTM LM on a large synthesized program set and uses it
   as the decoder embedding of the semantic parser (section 4.2). *)

type t = {
  vocab : Vocab.t;
  embed : Layers.embedding;
  lstm : Layers.lstm;
  proj : Layers.linear;
  rng : Genie_util.Rng.t;
}

let create ?(embed_dim = 32) ?(hidden_dim = 64) ?(seed = 11) ~vocab () =
  let rng = Genie_util.Rng.create seed in
  { vocab;
    embed = Layers.mk_embedding rng "lm_embed" ~vocab:(Vocab.size vocab) ~dim:embed_dim;
    lstm = Layers.mk_lstm rng "lm_lstm" ~input:embed_dim ~hidden:hidden_dim;
    proj = Layers.mk_linear rng "lm_proj" ~input:hidden_dim ~output:(Vocab.size vocab);
    rng }

let params t =
  Layers.embedding_params t.embed @ Layers.lstm_params t.lstm @ Layers.linear_params t.proj

let sequence_loss tape t (tokens : string list) =
  let ids =
    (Vocab.bos_id t.vocab :: List.map (Vocab.id t.vocab) tokens) @ [ Vocab.eos_id t.vocab ]
  in
  let rec go st = function
    | [] | [ _ ] -> []
    | cur :: (next :: _ as rest) ->
        let x = Layers.lookup tape t.embed cur in
        let st' = Layers.lstm_step tape t.lstm st x in
        let logits = Layers.apply_linear tape t.proj st'.Layers.h in
        let loss, _ = Autodiff.softmax_nll tape logits ~target:next in
        loss :: go st' rest
  in
  Autodiff.sum_scalars tape (go (Layers.lstm_init tape t.lstm) ids)

(* Perplexity per token of a held-out set. *)
let perplexity t (sequences : string list list) =
  let total_loss = ref 0.0 and total_tokens = ref 0 in
  List.iter
    (fun tokens ->
      let tape = Autodiff.new_tape () in
      let loss = sequence_loss tape t tokens in
      total_loss := !total_loss +. Tensor.get loss.Autodiff.value 0 0;
      total_tokens := !total_tokens + List.length tokens + 1)
    sequences;
  exp (!total_loss /. float_of_int (max 1 !total_tokens))

let train ?(epochs = 3) ?(lr = 5e-3) ?(progress = fun (_ : int) (_ : float) -> ()) t
    (sequences : string list list) =
  let opt = Optimizer.adam ~lr () in
  let ps = params t in
  for epoch = 1 to epochs do
    let total = ref 0.0 in
    List.iter
      (fun tokens ->
        let tape = Autodiff.new_tape () in
        Optimizer.zero_grads ps;
        let loss = sequence_loss tape t tokens in
        Autodiff.backward tape loss;
        Optimizer.update opt ps;
        total := !total +. Tensor.get loss.Autodiff.value 0 0)
      (Genie_util.Rng.shuffle t.rng sequences);
    progress epoch (!total /. float_of_int (max 1 (List.length sequences)))
  done

(* The embedding table, to initialize a decoder (section 4.2). *)
let embedding_table t = t.embed.Layers.table.Layers.tensor
