(** MQAN-lite: a sequence-to-sequence semantic parser with attention and a
    pointer-generator decoder (paper section 4, Fig. 6), at laptop scale.

    An LSTM encoder reads the sentence; the decoder LSTM consumes the
    previous target embedding concatenated with the attention context; two
    learnable gates mix a vocabulary distribution with a copy distribution
    over source positions. The decoder embedding can be initialized from a
    language model pretrained on synthesized programs (section 4.2). *)

type config = { embed_dim : int; hidden_dim : int; dropout : float; seed : int }

val default_config : config

type t = {
  cfg : config;
  src_vocab : Vocab.t;
  tgt_vocab : Vocab.t;
  src_embed : Layers.embedding;
  tgt_embed : Layers.embedding;
  encoder : Layers.lstm;
  decoder : Layers.lstm;
  out_proj : Layers.linear;
  gate_proj : Layers.linear;
  rng : Genie_util.Rng.t;
}

val create : ?cfg:config -> src_vocab:Vocab.t -> tgt_vocab:Vocab.t -> unit -> t
val params : t -> Layers.param list

val load_decoder_embedding : t -> Tensor.t -> unit
(** Initializes the target embedding from a pretrained LM table. *)

val example_loss :
  Autodiff.tape -> t -> training:bool -> string list -> string list -> Autodiff.node
(** Teacher-forced pointer-generator loss on one (source, target) pair.
    Target tokens absent from the vocabulary can only be produced by
    copying. *)

val decode : ?max_len:int -> t -> string list -> string list
(** Greedy decoding over the mixed generate/copy distribution. *)

type train_report = { epoch : int; mean_loss : float }

val train :
  ?epochs:int ->
  ?lr:float ->
  ?progress:(train_report -> unit) ->
  t ->
  (string list * string list) list ->
  unit
(** Adam with gradient clipping, one example per step (section 4.3). *)
