(** MQAN-lite: a sequence-to-sequence semantic parser with attention and a
    pointer-generator decoder (paper section 4, Fig. 6), at laptop scale.

    An LSTM encoder reads the sentence; the decoder LSTM consumes the
    previous target embedding concatenated with the attention context; two
    learnable gates mix a vocabulary distribution with a copy distribution
    over source positions. The decoder embedding can be initialized from a
    language model pretrained on synthesized programs (section 4.2).

    Training is mini-batched and deterministically data-parallel (see
    {!train}): gradients are computed per micro-shard on tape-private
    buffers and reduced in a fixed shard-order tree, so the trained weights
    are bitwise identical at any worker count.

    RNG streams are named and decoupled: the root stream ([cfg.seed]) covers
    initialization and epoch shuffling; dropout draws from per-example
    streams keyed [hash64("seq2seq.dropout", seed, epoch, example_id)];
    {!decode} draws from no stream, so interleaving predictions with
    training cannot perturb subsequent weights. *)

type config = { embed_dim : int; hidden_dim : int; dropout : float; seed : int }

val default_config : config

type t = {
  cfg : config;
  src_vocab : Vocab.t;
  tgt_vocab : Vocab.t;
  src_embed : Layers.embedding;
  tgt_embed : Layers.embedding;
  encoder : Layers.lstm;
  decoder : Layers.lstm;
  out_proj : Layers.linear;
  gate_proj : Layers.linear;
  rng : Genie_util.Rng.t;
}

val create : ?cfg:config -> src_vocab:Vocab.t -> tgt_vocab:Vocab.t -> unit -> t
val params : t -> Layers.param list

val load_decoder_embedding : t -> Tensor.t -> unit
(** Initializes the target embedding from a pretrained LM table. *)

val weight_digest : t -> string
(** 16-hex digest of all parameters' exact float bit patterns
    ({!Optimizer.digest} over {!params}). *)

val batch_loss :
  Autodiff.tape ->
  t ->
  training:bool ->
  epoch:int ->
  example_ids:int array ->
  (string list * string list) array ->
  Autodiff.node * Autodiff.node
(** Teacher-forced pointer-generator loss over a padded mini-batch:
    [(total, per_row)] where [total] is the 1x1 sum and [per_row] the
    [b x 1] per-example losses. Row [r] of every intermediate tensor belongs
    to example [r] alone, so each row's forward arithmetic is bitwise
    identical to a batch of one ([example_ids] key the dropout streams, so
    masks are too). *)

val example_loss :
  ?epoch:int ->
  ?example_id:int ->
  Autodiff.tape ->
  t ->
  training:bool ->
  string list ->
  string list ->
  Autodiff.node
(** Teacher-forced loss on one (source, target) pair. Target tokens absent
    from the vocabulary can only be produced by copying. With [epoch] and
    [example_id], dropout uses the keyed per-example stream (identical to
    this example's row in any {!batch_loss}); without them it draws from the
    historical shared stream. *)

val decode_batch :
  ?max_len:int ->
  ?scratch:Tensor.Scratch.arena ->
  t ->
  string list list ->
  (string list * float) list
(** Batched greedy decoding over the mixed generate/copy distribution:
    one [(tokens, score)] per source, in submission order, where [score] is
    the summed natural log of each chosen step's mixture probability.

    Row-parallel like {!batch_loss}: row [r]'s forward arithmetic (encoder
    prefix-trimmed by descending source length, decoder attention masked to
    the row's own length) is bitwise identical at any batch composition, so
    [decode_batch [x]] replays the per-example tape exactly and predictions
    are invariant under batching, sharding and worker count. The argmax
    scans candidates in vocabulary id order then ascending source position
    with a strict [>], so ties are deterministic too. Draws from no RNG
    stream. [scratch] (reset on entry) recycles the tape's tensor storage —
    pass a per-worker arena on the serving path. *)

val decode : ?max_len:int -> t -> string list -> string list
(** Greedy decoding of one source: [decode_batch] of a one-row batch. *)

type train_report = { epoch : int; mean_loss : float }

type snapshot = {
  snap_epoch : int;  (** 1-based; [epochs + 1] marks a finished run *)
  snap_pos : int;  (** position reached within the epoch's bucketed order *)
  snap_rng : int64;  (** root-stream cursor at the epoch's start *)
  snap_step : int;  (** Adam step count (bias correction depends on it) *)
}
(** A resume point between two optimizer steps. Together with the
    parameters and Adam moments (which live in the model) this is the
    training loop's complete state: {!train}[ ~resume] from a snapshot of a
    killed run produces weights bitwise identical to the run that never
    stopped, at any worker count — the epoch shuffle is re-derived from the
    stored cursor and dropout streams are keyed by
    [(seed, epoch, example_id)], never by wall clock, worker or shard. *)

val train :
  ?epochs:int ->
  ?lr:float ->
  ?batch:int ->
  ?micro:int ->
  ?workers:int ->
  ?progress:(train_report -> unit) ->
  ?resume:snapshot ->
  ?checkpoint_every:int ->
  ?checkpoint:(snapshot -> unit) ->
  ?stop_after:int ->
  t ->
  (string list * string list) list ->
  unit
(** Adam with gradient clipping (section 4.3). Each optimizer step processes
    [batch] examples (default 1) split into micro-shards of at most [micro]
    examples; shard gradients are computed on tape-private buffers (fanned
    over [workers] domains via [Conc.Pool.map_list]; [<= 1] runs on the
    calling domain) and reduced in a balanced tree whose shape depends only
    on the shard count. When [batch > 1] each epoch's shuffled examples are
    length-bucketed (stable deterministic sort by [|src| + |tgt|], applied
    before sharding) so padded batches waste little work; dropout streams
    are keyed by pre-sort shuffled position, so bucketing never changes an
    example's mask. Weights are bitwise identical at any [workers], and
    [~batch:1 ~micro:1] with dropout 0 (where bucketing is off and there is
    no padding) replays the historical per-example loop bit for bit.

    Checkpoint/resume: [checkpoint] fires between optimizer steps — every
    [checkpoint_every] steps (0, the default, disables the periodic firing),
    once more when [stop_after] halts the run, and once at normal completion
    with a terminal snapshot ([snap_epoch = epochs + 1]). [stop_after]
    stops after the given {e global} Adam step count (counting a resumed
    prefix), simulating a kill at a step boundary. [resume] restores the
    root-stream cursor and Adam step from a snapshot and skips to its
    epoch/position; the caller is responsible for restoring parameters and
    moments first (see [Genie_checkpoint]) and for passing the same
    [epochs]/[lr]/[batch]/[micro] and data. [progress] reports only epochs
    completed in this run, and a resumed epoch's [mean_loss] covers only its
    post-resume examples — the weights, not the reports, carry the
    determinism contract. *)
