(** Dense float tensors (row vectors, matrices and row-batches) for the
    neural substrate.

    A tensor is a [rows x cols] window into a flat array starting at [off];
    freshly created tensors own their storage ([off = 0]) while {!row} and
    {!slice_vector} are zero-copy views. The batched matmul kernels
    accumulate each output element in ascending inner index -- the same
    per-element order as the historical row-vector kernels -- so mini-batch
    arithmetic at batch size 1 is bitwise identical to the per-example
    path. *)

type t = { data : float array; off : int; rows : int; cols : int }

val create : int -> int -> t
val zeros_like : t -> t
val of_array : int -> int -> float array -> t
val vector : float array -> t

val get : t -> int -> int -> float
(** Bounds-checked element read (raises [Invalid_argument]). *)

val set : t -> int -> int -> float -> unit
val copy : t -> t

val to_array : t -> float array
(** The elements in row-major order, as a fresh array. *)

val fill : t -> float -> unit
val size : t -> int
val iteri : (int -> float -> unit) -> t -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val map_into : (float -> float) -> t -> out:t -> unit
val map2_into : (float -> float -> float) -> t -> t -> out:t -> unit

val add_into : t -> t -> out:t -> unit
(** [out <- a + b] elementwise — closure-free form of
    [map2_into ( +. )], bitwise identical to it. *)

val sub_into : t -> t -> out:t -> unit
(** [out <- a - b] elementwise. *)

val mul_into : t -> t -> out:t -> unit
(** [out <- a * b] elementwise. *)

val mul_acc : t -> t -> t -> unit
(** [a += b * c] elementwise — closure-free form of
    [accumulate2 a ( *. ) b c], bitwise identical to it. *)

val sigmoid_into : t -> out:t -> unit
(** [out <- 1 / (1 + exp (-src))], elementwise — a direct-call kernel for
    the per-step gate activations (no per-element closure call). *)

val tanh_into : t -> out:t -> unit

val sigmoid_grad_acc : acc:t -> value:t -> grad:t -> unit
(** [acc += grad * value * (1 - value)] where [value] is the forward
    sigmoid output. *)

val tanh_grad_acc : acc:t -> value:t -> grad:t -> unit
(** [acc += grad * (1 - value^2)] where [value] is the forward tanh
    output. *)

val accumulate : t -> t -> unit
(** In-place [a += b]. *)

val accumulate_scaled : t -> float -> t -> unit
(** In-place [a += k * b], no temporary. *)

val accumulate2 : t -> (float -> float -> float) -> t -> t -> unit
(** In-place [a += f b c] elementwise, no temporary. *)

(** {2 Matmul family}

    All kernels accumulate each output element in ascending inner index;
    blocking only reorders work across distinct elements. *)

val matmul_into : out:t -> t -> t -> unit
(** [matmul_into ~out a b]: [out = a . b] for [a : p x n], [b : n x m]. *)

val matmul : t -> t -> t

val matmul_nt_into : out:t -> t -> t -> unit
(** [out = a . b^T] for [a : p x n], [b : q x n]. *)

val matmul_nt_acc : acc:t -> t -> t -> unit
(** [acc += a . b^T] -- the input-gradient kernel [G . W^T]. *)

val matmul_tn_acc : acc:t -> t -> t -> unit
(** [acc += a^T . b] for [a : r x p], [b : r x q], ascending [r] -- the
    weight-gradient kernel [X^T . G]. *)

val add_bias_into : out:t -> t -> t -> unit
(** [out.(r) = x.(r) + b.(0)]: bias broadcast over the batch axis. *)

val sum_rows_acc : acc:t -> t -> unit
(** [acc (1 x cols) += column sums], rows in ascending order (bias
    gradient). *)

val concat_cols_into : out:t -> t -> t -> unit
(** Row-wise concatenation: [out.(r) = a.(r) ++ b.(r)]. *)

val accumulate_cols : dst:t -> t -> start:int -> unit
(** [dst += g.(r).(start..start+dst.cols-1)] -- backward of a row-wise
    concatenation. *)

val vec_mat : t -> t -> t
(** Row vector (1 x n) times matrix (n x m). *)

val mat_vec : t -> t -> t
(** Matrix (n x m) times a length-m vector, as a length-n row vector. *)

val outer : t -> t -> t
(** Outer product of two row vectors. *)

val dot : t -> t -> float
val concat_vectors : t -> t -> t

val slice_vector : t -> start:int -> len:int -> t
(** A zero-copy view of [len] columns of a row vector starting at [start]. *)

val row : t -> int -> t
(** A zero-copy view of row [i]. *)

val init_uniform : Genie_util.Rng.t -> int -> int -> t
(** Glorot-style uniform initialization. *)

val l2_norm : t -> float

(** {2 Scratch arenas}

    Size-bucketed buffer reuse for training steps: {!Scratch.take} hands out
    a zeroed tensor, {!Scratch.reset} (called between optimizer steps, after
    gradients are copied out) reclaims every outstanding buffer. One arena
    per worker domain; an arena is not thread-safe. *)
module Scratch : sig
  type arena

  val create : unit -> arena
  val take : arena -> int -> int -> t
  val reset : arena -> unit

  val live : arena -> int
  (** Tensors handed out since the last reset. *)

  val reused : arena -> int
  (** Lifetime count of takes served from a free list rather than a fresh
      allocation. *)
end
