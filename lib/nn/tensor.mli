(** Dense float tensors (row vectors and matrices) for the neural substrate. *)

type t = { data : float array; rows : int; cols : int }

val create : int -> int -> t
val zeros_like : t -> t
val of_array : int -> int -> float array -> t
val vector : float array -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val fill : t -> float -> unit
val size : t -> int
val iteri : (int -> float -> unit) -> t -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val accumulate : t -> t -> unit
(** In-place [a += b]. *)

val vec_mat : t -> t -> t
(** Row vector (1 x n) times matrix (n x m). *)

val mat_vec : t -> t -> t
(** Matrix (n x m) times a length-m vector, as a length-n row vector. *)

val outer : t -> t -> t
(** Outer product of two row vectors. *)

val dot : t -> t -> float
val concat_vectors : t -> t -> t
val slice_vector : t -> start:int -> len:int -> t
val row : t -> int -> t

val init_uniform : Genie_util.Rng.t -> int -> int -> t
(** Glorot-style uniform initialization. *)

val l2_norm : t -> float
