(** Adam with global gradient-norm clipping (the paper trains with Adam,
    section 4.3). *)

type t = {
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  clip : float;
  mutable step : int;
}

val adam :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> ?clip:float -> unit -> t

val zero_grads : Layers.param list -> unit
val global_norm : Layers.param list -> float

val update : t -> Layers.param list -> unit
(** One Adam step with bias correction; gradients are clipped to [clip] in
    global norm first. *)

val digest : Layers.param list -> string
(** 16-hex digest over parameter names and exact float bit patterns in list
    order: byte-identical weights iff equal digests. *)

val apply_reduced : t -> Layers.param list -> Tensor.t list -> unit
(** Loads externally-reduced gradients (one per parameter, in list order)
    into the parameters' gradient buffers, then {!update}. *)
