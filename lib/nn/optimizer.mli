(** Adam with global gradient-norm clipping (the paper trains with Adam,
    section 4.3). *)

type t = {
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  clip : float;
  mutable step : int;
}

val adam :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> ?clip:float -> unit -> t

val zero_grads : Layers.param list -> unit
val global_norm : Layers.param list -> float

val update : t -> Layers.param list -> unit
(** One Adam step with bias correction; gradients are clipped to [clip] in
    global norm first. *)
