(* Reverse-mode automatic differentiation on a tape.

   Nodes are recorded in creation order; [backward] walks the tape in reverse
   and each node's closure scatters its gradient into its parents. Gradients
   are verified against finite differences in the test suite. *)

type node = {
  id : int;
  value : Tensor.t;
  grad : Tensor.t; (* accumulated in place *)
  back : unit -> unit; (* reads [grad], accumulates into parents' grads *)
}

type tape = { mutable nodes : node list; mutable next_id : int }

let new_tape () = { nodes = []; next_id = 0 }

let record tape value back =
  let n = { id = tape.next_id; value; grad = Tensor.zeros_like value; back } in
  tape.next_id <- tape.next_id + 1;
  tape.nodes <- n :: tape.nodes;
  n

(* a leaf (parameter or constant); gradients accumulate but nothing propagates *)
let leaf tape value = record tape value (fun () -> ())

let const tape value = record tape value (fun () -> ())

(* --- operations ----------------------------------------------------------- *)

let add tape a b =
  let value = Tensor.add a.value b.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad g;
           Tensor.accumulate b.grad g))
  in
  Lazy.force n

let sub tape a b =
  let value = Tensor.sub a.value b.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad g;
           Tensor.accumulate b.grad (Tensor.scale (-1.0) g)))
  in
  Lazy.force n

let mul tape a b =
  let value = Tensor.mul a.value b.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad (Tensor.mul g b.value);
           Tensor.accumulate b.grad (Tensor.mul g a.value)))
  in
  Lazy.force n

let scale tape k a =
  let value = Tensor.scale k a.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           Tensor.accumulate a.grad (Tensor.scale k (Lazy.force n).grad)))
  in
  Lazy.force n

(* row vector times matrix *)
let vec_mat tape v m =
  let value = Tensor.vec_mat v.value m.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           (* dL/dv = g * m^T; dL/dm = v^T * g *)
           Tensor.accumulate v.grad (Tensor.mat_vec m.value g);
           Tensor.accumulate m.grad (Tensor.outer v.value g)))
  in
  Lazy.force n

let sigmoid tape a =
  let value = Tensor.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) a.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad
             (Tensor.map2 (fun gi yi -> gi *. yi *. (1.0 -. yi)) g value)))
  in
  Lazy.force n

let tanh_ tape a =
  let value = Tensor.map tanh a.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad
             (Tensor.map2 (fun gi yi -> gi *. (1.0 -. (yi *. yi))) g value)))
  in
  Lazy.force n

let concat tape a b =
  let value = Tensor.concat_vectors a.value b.value in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad (Tensor.slice_vector g ~start:0 ~len:a.value.Tensor.cols);
           Tensor.accumulate b.grad
             (Tensor.slice_vector g ~start:a.value.Tensor.cols ~len:b.value.Tensor.cols)))
  in
  Lazy.force n

(* select a row of a parameter matrix (embedding lookup) *)
let row tape m i =
  let value = Tensor.row m.value i in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           for j = 0 to value.Tensor.cols - 1 do
             let idx = (i * m.value.Tensor.cols) + j in
             m.grad.Tensor.data.(idx) <- m.grad.Tensor.data.(idx) +. g.Tensor.data.(j)
           done))
  in
  Lazy.force n

let dot tape a b =
  let value = Tensor.vector [| Tensor.dot a.value b.value |] in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad.Tensor.data.(0) in
           Tensor.accumulate a.grad (Tensor.scale g b.value);
           Tensor.accumulate b.grad (Tensor.scale g a.value)))
  in
  Lazy.force n

(* dropout with inverted scaling; identity when [p] is 0 or training is off *)
let dropout tape rng ~p ~training a =
  if (not training) || p <= 0.0 then a
  else begin
    let mask =
      Tensor.map
        (fun _ -> if Genie_util.Rng.flip rng p then 0.0 else 1.0 /. (1.0 -. p))
        a.value
    in
    let value = Tensor.mul a.value mask in
    let rec n =
      lazy
        (record tape value (fun () ->
             Tensor.accumulate a.grad (Tensor.mul (Lazy.force n).grad mask)))
    in
    Lazy.force n
  end

(* Softmax over a vector fused with negative log-likelihood of [target].
   Returns (loss scalar node, probability array). *)
let softmax_nll tape a ~target =
  let x = a.value.Tensor.data in
  let m = Array.fold_left Float.max neg_infinity x in
  let exps = Array.map (fun v -> exp (v -. m)) x in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let probs = Array.map (fun e -> e /. z) exps in
  let loss = -.log (Float.max 1e-12 probs.(target)) in
  let value = Tensor.vector [| loss |] in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad.Tensor.data.(0) in
           Array.iteri
             (fun i p ->
               let delta = if i = target then p -. 1.0 else p in
               a.grad.Tensor.data.(i) <- a.grad.Tensor.data.(i) +. (g *. delta))
             probs))
  in
  (Lazy.force n, probs)

(* Softmax probabilities as a differentiable node (for attention weights). *)
let softmax tape a =
  let x = a.value.Tensor.data in
  let m = Array.fold_left Float.max neg_infinity x in
  let exps = Array.map (fun v -> exp (v -. m)) x in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let probs = Array.map (fun e -> e /. z) exps in
  let value = Tensor.vector probs in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad.Tensor.data in
           (* dL/dx_i = p_i * (g_i - sum_j g_j p_j) *)
           let dotgp = ref 0.0 in
           Array.iteri (fun j pj -> dotgp := !dotgp +. (g.(j) *. pj)) probs;
           Array.iteri
             (fun i pi ->
               a.grad.Tensor.data.(i) <- a.grad.Tensor.data.(i) +. (pi *. (g.(i) -. !dotgp)))
             probs))
  in
  Lazy.force n

(* Mixture negative log-likelihood for the pointer-generator: the probability
   of the target token is  gate * p_vocab(target) + (1 - gate) * p_copy  where
   [p_copy] is the attention mass on source positions equal to the target.
   [gate], [vocab_logits] and [attention] are nodes; [copy_positions] are the
   source indices whose token equals the target. *)
let pointer_nll tape ~gate ~vocab_probs ~attention ~target ~copy_positions =
  let pv = vocab_probs.value.Tensor.data in
  let att = attention.value.Tensor.data in
  let g = gate.value.Tensor.data.(0) in
  let p_vocab = if target >= 0 && target < Array.length pv then pv.(target) else 0.0 in
  let p_copy = List.fold_left (fun acc i -> acc +. att.(i)) 0.0 copy_positions in
  let p = Float.max 1e-12 ((g *. p_vocab) +. ((1.0 -. g) *. p_copy)) in
  let loss = -.log p in
  let value = Tensor.vector [| loss |] in
  let rec n =
    lazy
      (record tape value (fun () ->
           let go = (Lazy.force n).grad.Tensor.data.(0) in
           let dp = -.go /. p in
           (* gate *)
           gate.grad.Tensor.data.(0) <-
             gate.grad.Tensor.data.(0) +. (dp *. (p_vocab -. p_copy));
           (* vocab probs *)
           if target >= 0 && target < Array.length pv then
             vocab_probs.grad.Tensor.data.(target) <-
               vocab_probs.grad.Tensor.data.(target) +. (dp *. g);
           (* attention *)
           List.iter
             (fun i ->
               attention.grad.Tensor.data.(i) <-
                 attention.grad.Tensor.data.(i) +. (dp *. (1.0 -. g)))
             copy_positions))
  in
  Lazy.force n

let sum_scalars tape (xs : node list) =
  match xs with
  | [] -> leaf tape (Tensor.vector [| 0.0 |])
  | [ x ] -> x
  | x :: rest -> List.fold_left (fun acc y -> add tape acc y) x rest

(* Runs backpropagation from [loss] (a scalar node). *)
let backward tape (loss : node) =
  loss.grad.Tensor.data.(0) <- 1.0;
  List.iter (fun n -> n.back ()) tape.nodes
(* nodes are stored most-recent first, which is reverse topological order *)
