(* Reverse-mode automatic differentiation on a tape.

   Nodes are recorded in creation order; [backward] walks the tape in reverse
   and each node's closure scatters its gradient into its parents. Gradients
   are verified against finite differences in the test suite.

   Every operation is row-batched: values are [rows x cols] tensors and all
   ops except the matmul family are row-parallel (row [r] of the output
   depends only on row [r] of the inputs). The batched kernels accumulate in
   ascending inner index, so a batch of one replays exactly the scalar
   operation sequence of the historical per-example ops -- forward values and
   gradients at [rows = 1] are bitwise identical to the pre-batching tape.

   Two optional tape facilities support deterministic data-parallel training:
   - a scratch arena ([new_tape ~scratch]) that recycles value/grad buffers
     between optimizer steps instead of allocating per node;
   - private leaf gradients ([new_tape ~private_leaves:true]) so concurrent
     workers sharing read-only parameters never write a shared grad buffer;
     the trainer copies them out per shard and reduces in fixed shard order. *)

type node = {
  id : int;
  value : Tensor.t;
  grad : Tensor.t; (* accumulated in place *)
  back : unit -> unit; (* reads [grad], accumulates into parents' grads *)
}

type tape = {
  mutable nodes : node list;
  mutable next_id : int;
  scratch : Tensor.Scratch.arena option;
  private_grads : (int, Tensor.t) Hashtbl.t option;
}

let new_tape ?scratch ?(private_leaves = false) () =
  { nodes = [];
    next_id = 0;
    scratch;
    private_grads = (if private_leaves then Some (Hashtbl.create 64) else None) }

let tape_length tape = tape.next_id

let alloc tape rows cols =
  match tape.scratch with
  | Some arena -> Tensor.Scratch.take arena rows cols
  | None -> Tensor.create rows cols

(* Low-level append with an explicit (already zeroed) gradient buffer. *)
let record_with_grad tape value ~grad back =
  let n = { id = tape.next_id; value; grad; back } in
  tape.next_id <- tape.next_id + 1;
  tape.nodes <- n :: tape.nodes;
  n

let record tape value back =
  record_with_grad tape value
    ~grad:(alloc tape value.Tensor.rows value.Tensor.cols)
    back

(* a leaf (parameter or constant); gradients accumulate but nothing propagates *)
let leaf tape value = record tape value (fun () -> ())

let leaf_with_grad tape value ~grad = record_with_grad tape value ~grad (fun () -> ())

let const tape value = record tape value (fun () -> ())

let private_leaves tape = tape.private_grads <> None

let private_grad tape ~key ~rows ~cols =
  match tape.private_grads with
  | None -> None
  | Some tbl -> (
      match Hashtbl.find_opt tbl key with
      | Some g -> Some g
      | None ->
          let g = alloc tape rows cols in
          Hashtbl.add tbl key g;
          Some g)

let find_private_grad tape ~key =
  match tape.private_grads with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl key

(* --- operations ----------------------------------------------------------- *)

let dims (n : node) = (n.value.Tensor.rows, n.value.Tensor.cols)

(* Elementwise addition, with the bias-broadcast case: a [1 x m] operand is
   broadcast over the other operand's rows. At equal shapes (in particular
   both single rows) this is exactly the historical elementwise add. *)
let add tape a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> cb then invalid_arg "Autodiff.add: column mismatch";
  if ra = rb then begin
    let value = alloc tape ra ca in
    Tensor.add_into a.value b.value ~out:value;
    let rec n =
      lazy
        (record tape value (fun () ->
             let g = (Lazy.force n).grad in
             Tensor.accumulate a.grad g;
             Tensor.accumulate b.grad g))
    in
    Lazy.force n
  end
  else if rb = 1 then begin
    let value = alloc tape ra ca in
    Tensor.add_bias_into ~out:value a.value b.value;
    let rec n =
      lazy
        (record tape value (fun () ->
             let g = (Lazy.force n).grad in
             Tensor.accumulate a.grad g;
             Tensor.sum_rows_acc ~acc:b.grad g))
    in
    Lazy.force n
  end
  else if ra = 1 then begin
    let value = alloc tape rb ca in
    Tensor.add_bias_into ~out:value b.value a.value;
    let rec n =
      lazy
        (record tape value (fun () ->
             let g = (Lazy.force n).grad in
             Tensor.sum_rows_acc ~acc:a.grad g;
             Tensor.accumulate b.grad g))
    in
    Lazy.force n
  end
  else invalid_arg "Autodiff.add: row mismatch"

let sub tape a b =
  if dims a <> dims b then invalid_arg "Autodiff.sub: shape mismatch";
  let value = alloc tape a.value.Tensor.rows a.value.Tensor.cols in
  Tensor.sub_into a.value b.value ~out:value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate a.grad g;
           Tensor.accumulate_scaled b.grad (-1.0) g))
  in
  Lazy.force n

let mul tape a b =
  if dims a <> dims b then invalid_arg "Autodiff.mul: shape mismatch";
  let value = alloc tape a.value.Tensor.rows a.value.Tensor.cols in
  Tensor.mul_into a.value b.value ~out:value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.mul_acc a.grad g b.value;
           Tensor.mul_acc b.grad g a.value))
  in
  Lazy.force n

let scale tape k a =
  let value = alloc tape a.value.Tensor.rows a.value.Tensor.cols in
  Tensor.map_into (fun x -> k *. x) a.value ~out:value;
  let rec n =
    lazy
      (record tape value (fun () ->
           Tensor.accumulate_scaled a.grad k (Lazy.force n).grad))
  in
  Lazy.force n

(* batched matrix product: [rows x n] . [n x m]; dL/dx = g . w^T accumulates
   ascending k and dL/dw = x^T . g accumulates ascending r, matching the
   historical mat_vec / outer gradient kernels element for element. *)
let matmul tape x w =
  if x.value.Tensor.cols <> w.value.Tensor.rows then
    invalid_arg "Autodiff.matmul: inner dimension mismatch";
  let value = alloc tape x.value.Tensor.rows w.value.Tensor.cols in
  Tensor.matmul_into ~out:value x.value w.value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.matmul_nt_acc ~acc:x.grad g w.value;
           Tensor.matmul_tn_acc ~acc:w.grad x.value g))
  in
  Lazy.force n

(* row vector times matrix (historical name; now any row batch) *)
let vec_mat = matmul

let sigmoid tape a =
  let value = alloc tape a.value.Tensor.rows a.value.Tensor.cols in
  Tensor.sigmoid_into a.value ~out:value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.sigmoid_grad_acc ~acc:a.grad ~value ~grad:g))
  in
  Lazy.force n

let tanh_ tape a =
  let value = alloc tape a.value.Tensor.rows a.value.Tensor.cols in
  Tensor.tanh_into a.value ~out:value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.tanh_grad_acc ~acc:a.grad ~value ~grad:g))
  in
  Lazy.force n

(* row-wise concatenation: out.(r) = a.(r) ++ b.(r) *)
let concat tape a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb then invalid_arg "Autodiff.concat: row mismatch";
  let value = alloc tape ra (ca + cb) in
  Tensor.concat_cols_into ~out:value a.value b.value;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           Tensor.accumulate_cols ~dst:a.grad g ~start:0;
           Tensor.accumulate_cols ~dst:b.grad g ~start:ca))
  in
  Lazy.force n

(* select a row of a parameter matrix (embedding lookup); the value is a
   zero-copy view *)
let row tape m i =
  let value = Tensor.row m.value i in
  let cols = value.Tensor.cols in
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           let mg = m.grad in
           let base = mg.Tensor.off + (i * cols) in
           for j = 0 to cols - 1 do
             mg.Tensor.data.(base + j) <-
               mg.Tensor.data.(base + j) +. g.Tensor.data.(g.Tensor.off + j)
           done))
  in
  Lazy.force n

(* batched embedding gather: out.(r) = m.(ids.(r)) *)
let rows tape m (ids : int array) =
  let b = Array.length ids in
  let cols = m.value.Tensor.cols in
  Array.iter
    (fun i ->
      if i < 0 || i >= m.value.Tensor.rows then
        invalid_arg "Autodiff.rows: index out of bounds")
    ids;
  let value = alloc tape b cols in
  let mv = m.value in
  for r = 0 to b - 1 do
    Array.blit mv.Tensor.data (mv.Tensor.off + (ids.(r) * cols)) value.Tensor.data
      (value.Tensor.off + (r * cols))
      cols
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           let mg = m.grad in
           for r = 0 to b - 1 do
             let base = mg.Tensor.off + (ids.(r) * cols) in
             let gbase = g.Tensor.off + (r * cols) in
             for j = 0 to cols - 1 do
               Array.unsafe_set mg.Tensor.data (base + j)
                 (Array.unsafe_get mg.Tensor.data (base + j)
                 +. Array.unsafe_get g.Tensor.data (gbase + j))
             done
           done))
  in
  Lazy.force n

let dot tape a b =
  let value = alloc tape 1 1 in
  Tensor.set value 0 0 (Tensor.dot a.value b.value);
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = Tensor.get (Lazy.force n).grad 0 0 in
           Tensor.accumulate_scaled a.grad g b.value;
           Tensor.accumulate_scaled b.grad g a.value))
  in
  Lazy.force n

(* batched inner product: out.(r) = a.(r) . b.(r), a [rows x 1] node *)
let row_dot tape a b =
  if dims a <> dims b then invalid_arg "Autodiff.row_dot: shape mismatch";
  let rws, cols = dims a in
  let value = alloc tape rws 1 in
  for r = 0 to rws - 1 do
    let s = ref 0.0 in
    for j = 0 to cols - 1 do
      s := !s +. (Tensor.get a.value r j *. Tensor.get b.value r j)
    done;
    Tensor.set value r 0 !s
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           for r = 0 to rws - 1 do
             let gr = Tensor.get g r 0 in
             for j = 0 to cols - 1 do
               Tensor.set a.grad r j
                 (Tensor.get a.grad r j +. (gr *. Tensor.get b.value r j))
             done;
             for j = 0 to cols - 1 do
               Tensor.set b.grad r j
                 (Tensor.get b.grad r j +. (gr *. Tensor.get a.value r j))
             done
           done))
  in
  Lazy.force n

(* Pack T per-step [rows x 1] score nodes into one [rows x T] node; positions
   at or beyond a row's length hold [neg_infinity] so the downstream softmax
   assigns them zero weight and their gradient is dropped. *)
let pack_cols tape ~rows:rws ?lengths (scores : node list) =
  let t_max = List.length scores in
  (match lengths with
  | Some lens when Array.length lens <> rws ->
      invalid_arg "Autodiff.pack_cols: lengths/rows mismatch"
  | _ -> ());
  let active r t =
    match lengths with None -> true | Some lens -> t < lens.(r)
  in
  List.iter
    (fun s ->
      if dims s <> (rws, 1) then invalid_arg "Autodiff.pack_cols: score shape")
    scores;
  let value = alloc tape rws t_max in
  List.iteri
    (fun t s ->
      for r = 0 to rws - 1 do
        Tensor.set value r t
          (if active r t then Tensor.get s.value r 0 else neg_infinity)
      done)
    scores;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           List.iteri
             (fun t s ->
               for r = 0 to rws - 1 do
                 if active r t then
                   Tensor.set s.grad r 0 (Tensor.get s.grad r 0 +. Tensor.get g r t)
               done)
             scores))
  in
  Lazy.force n

(* Fused attention scores: one [rows x T] packed score node over T per-step
   encoder states, replacing the historical per-step row_dot nodes plus
   pack_cols. value.(r).(t) is dot(states_t.(r), query.(r)) for
   [t < lengths.(r)] and [neg_infinity] otherwise (zero weight downstream,
   no gradient). Bitwise-compatible with the node chain it replaces: each
   dot accumulates ascending j, and backward accumulates the query gradient
   in descending t -- the tape order of the per-step nodes. Masked
   positions' dots are skipped outright (their value was discarded and
   their gradient was zero), which removes the attention cost of padded
   source positions. *)
let attention_scores tape ?lengths (states : node array) query =
  let rws, cols = dims query in
  let tmax = Array.length states in
  Array.iter
    (fun s ->
      if dims s <> (rws, cols) then invalid_arg "Autodiff.attention_scores: state shape")
    states;
  (match lengths with
  | Some l when Array.length l <> rws ->
      invalid_arg "Autodiff.attention_scores: lengths/rows mismatch"
  | _ -> ());
  let active r t = match lengths with None -> true | Some l -> t < l.(r) in
  let value = alloc tape rws tmax in
  let qv = query.value in
  for t = 0 to tmax - 1 do
    let sv = states.(t).value in
    for r = 0 to rws - 1 do
      if active r t then begin
        let qbase = qv.Tensor.off + (r * cols) in
        let sbase = sv.Tensor.off + (r * cols) in
        let s = ref 0.0 in
        for j = 0 to cols - 1 do
          s :=
            !s
            +. (Array.unsafe_get sv.Tensor.data (sbase + j)
               *. Array.unsafe_get qv.Tensor.data (qbase + j))
        done;
        Array.unsafe_set value.Tensor.data
          (value.Tensor.off + (r * tmax) + t)
          !s
      end
      else
        Array.unsafe_set value.Tensor.data
          (value.Tensor.off + (r * tmax) + t)
          neg_infinity
    done
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           let qg = query.grad in
           for t = tmax - 1 downto 0 do
             let sv = states.(t).value and sg = states.(t).grad in
             for r = 0 to rws - 1 do
               if active r t then begin
                 let gr = Array.unsafe_get g.Tensor.data (g.Tensor.off + (r * tmax) + t) in
                 let qvb = qv.Tensor.off + (r * cols) in
                 let qgb = qg.Tensor.off + (r * cols) in
                 let svb = sv.Tensor.off + (r * cols) in
                 let sgb = sg.Tensor.off + (r * cols) in
                 for j = 0 to cols - 1 do
                   Array.unsafe_set sg.Tensor.data (sgb + j)
                     (Array.unsafe_get sg.Tensor.data (sgb + j)
                     +. (gr *. Array.unsafe_get qv.Tensor.data (qvb + j)))
                 done;
                 for j = 0 to cols - 1 do
                   Array.unsafe_set qg.Tensor.data (qgb + j)
                     (Array.unsafe_get qg.Tensor.data (qgb + j)
                     +. (gr *. Array.unsafe_get sv.Tensor.data (svb + j)))
                 done
               end
             done
           done))
  in
  Lazy.force n

(* Fused attention context: value.(r) = sum over t of
   weights.(r).(t) * states_t.(r), accumulated in ascending t starting from
   the t = 0 term -- exactly the historical col / row_scale / add chain's
   per-element order (including the zero-weight terms of masked positions,
   which it still adds so values stay bitwise identical). Backward walks t
   descending, accumulating into each state first and then the weight
   column, as the chain's tape replay did. *)
let attention_context tape (weights : node) (states : node array) =
  let tmax = Array.length states in
  if tmax = 0 then invalid_arg "Autodiff.attention_context: no states";
  let rws, cols = dims states.(0) in
  if dims weights <> (rws, tmax) then
    invalid_arg "Autodiff.attention_context: weights shape";
  Array.iter
    (fun s ->
      if dims s <> (rws, cols) then invalid_arg "Autodiff.attention_context: state shape")
    states;
  let wv = weights.value in
  let value = alloc tape rws cols in
  for r = 0 to rws - 1 do
    let wbase = wv.Tensor.off + (r * tmax) in
    let obase = value.Tensor.off + (r * cols) in
    let s0 = states.(0).value in
    let w0 = Array.unsafe_get wv.Tensor.data wbase in
    let sbase = s0.Tensor.off + (r * cols) in
    for j = 0 to cols - 1 do
      Array.unsafe_set value.Tensor.data (obase + j)
        (w0 *. Array.unsafe_get s0.Tensor.data (sbase + j))
    done;
    for t = 1 to tmax - 1 do
      let sv = states.(t).value in
      let wt = Array.unsafe_get wv.Tensor.data (wbase + t) in
      (* masked positions carry weight exactly 0.0; their terms are +/-0.0
         and adding them never changes a finite accumulator, so skip them
         (only a -0.0 accumulator could tell, and batch-1 rows have no
         masked positions at all) *)
      if wt <> 0.0 then begin
        let sbase = sv.Tensor.off + (r * cols) in
        for j = 0 to cols - 1 do
          Array.unsafe_set value.Tensor.data (obase + j)
            (Array.unsafe_get value.Tensor.data (obase + j)
            +. (wt *. Array.unsafe_get sv.Tensor.data (sbase + j)))
        done
      end
    done
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           let wg = weights.grad in
           for t = tmax - 1 downto 0 do
             let sv = states.(t).value and sg = states.(t).grad in
             for r = 0 to rws - 1 do
               let wt = Array.unsafe_get wv.Tensor.data (wv.Tensor.off + (r * tmax) + t) in
               (* a masked position (weight exactly 0.0) passes no gradient
                  to its state (+/-0.0 terms), and its own weight gradient
                  is annihilated by the softmax backward's p = 0 factor --
                  skip the whole row-position *)
               if wt <> 0.0 then begin
                 let gbase = g.Tensor.off + (r * cols) in
                 let svb = sv.Tensor.off + (r * cols) in
                 let sgb = sg.Tensor.off + (r * cols) in
                 for j = 0 to cols - 1 do
                   Array.unsafe_set sg.Tensor.data (sgb + j)
                     (Array.unsafe_get sg.Tensor.data (sgb + j)
                     +. (wt *. Array.unsafe_get g.Tensor.data (gbase + j)))
                 done;
                 let acc = ref 0.0 in
                 for j = 0 to cols - 1 do
                   acc :=
                     !acc
                     +. (Array.unsafe_get g.Tensor.data (gbase + j)
                        *. Array.unsafe_get sv.Tensor.data (svb + j))
                 done;
                 let wi = wg.Tensor.off + (r * tmax) + t in
                 Array.unsafe_set wg.Tensor.data wi
                   (Array.unsafe_get wg.Tensor.data wi +. !acc)
               end
             done
           done))
  in
  Lazy.force n

(* column selection: out.(r) = [| w.(r).(i) |] *)
let col tape w i =
  let rws, cols = dims w in
  if i < 0 || i >= cols then invalid_arg "Autodiff.col: index out of bounds";
  let value = alloc tape rws 1 in
  for r = 0 to rws - 1 do
    Tensor.set value r 0 (Tensor.get w.value r i)
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           for r = 0 to rws - 1 do
             Tensor.set w.grad r i (Tensor.get w.grad r i +. Tensor.get g r 0)
           done))
  in
  Lazy.force n

(* per-row scaling: out.(r) = s.(r) * x.(r) for a [rows x 1] scale node.
   Backward accumulates into [x] first, then [s] -- the historical order of
   the attention "scaled" node. *)
let row_scale tape s x =
  let rws, cols = dims x in
  if dims s <> (rws, 1) then invalid_arg "Autodiff.row_scale: scale shape";
  let value = alloc tape rws cols in
  for r = 0 to rws - 1 do
    let sr = Tensor.get s.value r 0 in
    for j = 0 to cols - 1 do
      Tensor.set value r j (sr *. Tensor.get x.value r j)
    done
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           for r = 0 to rws - 1 do
             let sr = Tensor.get s.value r 0 in
             for j = 0 to cols - 1 do
               Tensor.set x.grad r j
                 (Tensor.get x.grad r j +. (sr *. Tensor.get g r j))
             done;
             let acc = ref 0.0 in
             for j = 0 to cols - 1 do
               acc := !acc +. (Tensor.get g r j *. Tensor.get x.value r j)
             done;
             Tensor.set s.grad r 0 (Tensor.get s.grad r 0 +. !acc)
           done))
  in
  Lazy.force n

(* Zero-copy view of the first [k] rows (prefix trimming of padded batches:
   when a step's active rows form a leading prefix, downstream ops run on
   [k] rows instead of the full batch). Both the value and the gradient
   alias the parent's storage, so consumers accumulate straight into the
   parent's gradient rows and backward is a no-op. At [k = rows] the parent
   itself is returned, so full batches (in particular single rows) record
   nothing. *)
let rows_prefix tape a k =
  let rws, _cols = dims a in
  if k < 1 || k > rws then invalid_arg "Autodiff.rows_prefix: bad row count";
  if k = rws then a
  else
    record_with_grad tape
      { a.value with Tensor.rows = k }
      ~grad:{ a.grad with Tensor.rows = k }
      (fun () -> ())

(* [base] with its first [top.rows] rows replaced by [top]; the suffix rows
   pass through. Backward routes each row's gradient to the parent that
   supplied it. This scatters a prefix-trimmed step result back into the
   full-batch state (the suffix rows carry their previous state, exactly as
   a masked select would). Returns [top] itself at equal row counts. *)
let overlay_rows tape ~top ~base =
  let rt, ct = dims top and rb, cb = dims base in
  if ct <> cb || rt > rb then invalid_arg "Autodiff.overlay_rows: shape mismatch";
  if rt = rb then top
  else begin
    let value = alloc tape rb cb in
    Array.blit top.value.Tensor.data top.value.Tensor.off value.Tensor.data
      value.Tensor.off (rt * ct);
    Array.blit base.value.Tensor.data
      (base.value.Tensor.off + (rt * cb))
      value.Tensor.data
      (value.Tensor.off + (rt * cb))
      ((rb - rt) * cb);
    let rec n =
      lazy
        (record tape value (fun () ->
             let g = (Lazy.force n).grad in
             Tensor.accumulate top.grad { g with Tensor.rows = rt };
             Tensor.accumulate
               { base.grad with
                 Tensor.off = base.grad.Tensor.off + (rt * cb);
                 rows = rb - rt }
               { g with Tensor.off = g.Tensor.off + (rt * cb); rows = rb - rt }))
    in
    Lazy.force n
  end

(* acc + top where [top] covers only the first [top.rows] rows of [acc]; the
   remaining rows pass [acc] through unchanged. Per-element addition order on
   the covered prefix matches {!add} exactly, and at equal row counts this IS
   {!add} -- so accumulating prefix-trimmed per-row losses is bitwise the
   historical accumulation wherever rows exist. *)
let add_rows_prefix tape acc top =
  let ra, ca = dims acc and rt, ct = dims top in
  if ct <> ca || rt > ra then invalid_arg "Autodiff.add_rows_prefix: shape mismatch";
  if rt = ra then add tape acc top
  else begin
    let value = alloc tape ra ca in
    Tensor.add_into
      { acc.value with Tensor.rows = rt }
      top.value
      ~out:{ value with Tensor.rows = rt };
    Array.blit acc.value.Tensor.data
      (acc.value.Tensor.off + (rt * ca))
      value.Tensor.data
      (value.Tensor.off + (rt * ca))
      ((ra - rt) * ca);
    let rec n =
      lazy
        (record tape value (fun () ->
             let g = (Lazy.force n).grad in
             Tensor.accumulate acc.grad g;
             Tensor.accumulate top.grad { g with Tensor.rows = rt }))
    in
    Lazy.force n
  end

(* per-row selection between two same-shape nodes; gradients flow only to the
   selected parent. Used to carry LSTM state through padded timesteps. *)
let masked_select tape (mask : bool array) a b =
  if dims a <> dims b then invalid_arg "Autodiff.masked_select: shape mismatch";
  let rws, cols = dims a in
  if Array.length mask <> rws then invalid_arg "Autodiff.masked_select: mask length";
  let value = alloc tape rws cols in
  for r = 0 to rws - 1 do
    let src = if mask.(r) then a.value else b.value in
    for j = 0 to cols - 1 do
      Tensor.set value r j (Tensor.get src r j)
    done
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           for r = 0 to rws - 1 do
             let dst = if mask.(r) then a.grad else b.grad in
             for j = 0 to cols - 1 do
               Tensor.set dst r j (Tensor.get dst r j +. Tensor.get g r j)
             done
           done))
  in
  Lazy.force n

(* dropout with inverted scaling; identity when [p] is 0 or training is off *)
let dropout tape rng ~p ~training a =
  if (not training) || p <= 0.0 then a
  else begin
    let rws, cols = dims a in
    let mask = alloc tape rws cols in
    Tensor.map_into
      (fun _ -> if Genie_util.Rng.flip rng p then 0.0 else 1.0 /. (1.0 -. p))
      a.value ~out:mask;
    let value = alloc tape rws cols in
    Tensor.mul_into a.value mask ~out:value;
    let rec n =
      lazy
        (record tape value (fun () ->
             Tensor.mul_acc a.grad (Lazy.force n).grad mask))
    in
    Lazy.force n
  end

(* Row-batched dropout: row [r] draws its mask from [rngs.(r)] so each
   example's mask depends only on its own stream, never on batch composition.
   Inactive (padded) rows draw nothing and pass through unscaled. *)
let dropout_rows tape (rngs : Genie_util.Rng.t array) ?active ~p ~training a =
  if (not training) || p <= 0.0 then a
  else begin
    let rws, cols = dims a in
    if Array.length rngs <> rws then invalid_arg "Autodiff.dropout_rows: rngs length";
    let is_active =
      match active with
      | None -> fun _ -> true
      | Some m ->
          if Array.length m <> rws then
            invalid_arg "Autodiff.dropout_rows: active length";
          fun r -> m.(r)
    in
    let mask = alloc tape rws cols in
    let md = mask.Tensor.data in
    let keep = 1.0 /. (1.0 -. p) in
    for r = 0 to rws - 1 do
      let base = mask.Tensor.off + (r * cols) in
      if is_active r then begin
        let rng = rngs.(r) in
        for j = 0 to cols - 1 do
          Array.unsafe_set md (base + j)
            (if Genie_util.Rng.flip rng p then 0.0 else keep)
        done
      end
      else
        for j = 0 to cols - 1 do
          Array.unsafe_set md (base + j) 1.0
        done
    done;
    let value = alloc tape rws cols in
    Tensor.mul_into a.value mask ~out:value;
    let rec n =
      lazy
        (record tape value (fun () ->
             Tensor.mul_acc a.grad (Lazy.force n).grad mask))
    in
    Lazy.force n
  end

(* Softmax over a vector fused with negative log-likelihood of [target].
   Returns (loss scalar node, probability array). *)
let softmax_nll tape a ~target =
  if a.value.Tensor.rows <> 1 then invalid_arg "Autodiff.softmax_nll: expected one row";
  let cols = a.value.Tensor.cols in
  if target < 0 || target >= cols then invalid_arg "Autodiff.softmax_nll: target";
  let x = Tensor.to_array a.value in
  let m = Array.fold_left Float.max neg_infinity x in
  let exps = Array.map (fun v -> exp (v -. m)) x in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let probs = Array.map (fun e -> e /. z) exps in
  let loss = -.log (Float.max 1e-12 probs.(target)) in
  let value = alloc tape 1 1 in
  Tensor.set value 0 0 loss;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = Tensor.get (Lazy.force n).grad 0 0 in
           Array.iteri
             (fun i p ->
               let delta = if i = target then p -. 1.0 else p in
               Tensor.set a.grad 0 i (Tensor.get a.grad 0 i +. (g *. delta)))
             probs))
  in
  (Lazy.force n, probs)

(* Row-wise softmax probabilities as a differentiable node (attention
   weights). A row whose maximum is [neg_infinity] (fully masked) yields all
   zeros and receives no gradient. *)
let softmax tape a =
  let rws, cols = dims a in
  let value = alloc tape rws cols in
  let av = a.value in
  for r = 0 to rws - 1 do
    let abase = av.Tensor.off + (r * cols) in
    let obase = value.Tensor.off + (r * cols) in
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      m := Float.max !m (Array.unsafe_get av.Tensor.data (abase + j))
    done;
    if !m = neg_infinity then
      for j = 0 to cols - 1 do
        Array.unsafe_set value.Tensor.data (obase + j) 0.0
      done
    else begin
      let z = ref 0.0 in
      for j = 0 to cols - 1 do
        let x = Array.unsafe_get av.Tensor.data (abase + j) in
        (* masked (-inf) entries exponentiate to exactly 0.0; writing the
           constant skips the exp call without changing a bit *)
        let e = if x = neg_infinity then 0.0 else exp (x -. !m) in
        Array.unsafe_set value.Tensor.data (obase + j) e;
        z := !z +. e
      done;
      for j = 0 to cols - 1 do
        Array.unsafe_set value.Tensor.data (obase + j)
          (Array.unsafe_get value.Tensor.data (obase + j) /. !z)
      done
    end
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = (Lazy.force n).grad in
           let ag = a.grad in
           (* dL/dx_i = p_i * (g_i - sum_j g_j p_j), rows independent *)
           for r = 0 to rws - 1 do
             let gbase = g.Tensor.off + (r * cols) in
             let vbase = value.Tensor.off + (r * cols) in
             let abase = ag.Tensor.off + (r * cols) in
             let dotgp = ref 0.0 in
             for j = 0 to cols - 1 do
               dotgp :=
                 !dotgp
                 +. (Array.unsafe_get g.Tensor.data (gbase + j)
                    *. Array.unsafe_get value.Tensor.data (vbase + j))
             done;
             for i = 0 to cols - 1 do
               let pi = Array.unsafe_get value.Tensor.data (vbase + i) in
               Array.unsafe_set ag.Tensor.data (abase + i)
                 (Array.unsafe_get ag.Tensor.data (abase + i)
                 +. (pi *. (Array.unsafe_get g.Tensor.data (gbase + i) -. !dotgp)))
             done
           done))
  in
  Lazy.force n

(* Mixture negative log-likelihood for the pointer-generator: the probability
   of the target token is  gate * p_vocab(target) + (1 - gate) * p_copy  where
   [p_copy] is the attention mass on source positions equal to the target.
   [gate], [vocab_probs] and [attention] are nodes; [copy_positions] are the
   source indices whose token equals the target. *)
let pointer_nll tape ~gate ~vocab_probs ~attention ~target ~copy_positions =
  let pv_len = vocab_probs.value.Tensor.cols in
  let g = Tensor.get gate.value 0 0 in
  let p_vocab =
    if target >= 0 && target < pv_len then Tensor.get vocab_probs.value 0 target
    else 0.0
  in
  let p_copy =
    List.fold_left
      (fun acc i -> acc +. Tensor.get attention.value 0 i)
      0.0 copy_positions
  in
  let p = Float.max 1e-12 ((g *. p_vocab) +. ((1.0 -. g) *. p_copy)) in
  let loss = -.log p in
  let value = alloc tape 1 1 in
  Tensor.set value 0 0 loss;
  let rec n =
    lazy
      (record tape value (fun () ->
           let go = Tensor.get (Lazy.force n).grad 0 0 in
           let dp = -.go /. p in
           (* gate *)
           Tensor.set gate.grad 0 0
             (Tensor.get gate.grad 0 0 +. (dp *. (p_vocab -. p_copy)));
           (* vocab probs *)
           if target >= 0 && target < pv_len then
             Tensor.set vocab_probs.grad 0 target
               (Tensor.get vocab_probs.grad 0 target +. (dp *. g));
           (* attention *)
           List.iter
             (fun i ->
               Tensor.set attention.grad 0 i
                 (Tensor.get attention.grad 0 i +. (dp *. (1.0 -. g))))
             copy_positions))
  in
  Lazy.force n

(* Row-batched pointer-generator NLL: one decode step for a whole mini-batch.
   Row [r] contributes  -log (gate_r * p_vocab_r + (1 - gate_r) * p_copy_r);
   inactive (padded) rows contribute exactly 0 and receive no gradient. The
   per-row arithmetic replays [pointer_nll] exactly, so a one-row batch is
   bitwise identical to the scalar op. *)
let pointer_nll_rows tape ~gate ~vocab_probs ~attention ~targets ~copy_positions
    ~active =
  let rws = gate.value.Tensor.rows in
  if gate.value.Tensor.cols <> 1 then invalid_arg "Autodiff.pointer_nll_rows: gate shape";
  if
    vocab_probs.value.Tensor.rows <> rws
    || attention.value.Tensor.rows <> rws
    || Array.length targets <> rws
    || Array.length copy_positions <> rws
    || Array.length active <> rws
  then invalid_arg "Autodiff.pointer_nll_rows: row mismatch";
  let pv_len = vocab_probs.value.Tensor.cols in
  let gates = Array.make rws 0.0 in
  let p_vocabs = Array.make rws 0.0 in
  let p_copies = Array.make rws 0.0 in
  let ps = Array.make rws 1.0 in
  let value = alloc tape rws 1 in
  for r = 0 to rws - 1 do
    if active.(r) then begin
      let g = Tensor.get gate.value r 0 in
      let target = targets.(r) in
      let p_vocab =
        if target >= 0 && target < pv_len then Tensor.get vocab_probs.value r target
        else 0.0
      in
      let p_copy =
        List.fold_left
          (fun acc i -> acc +. Tensor.get attention.value r i)
          0.0 copy_positions.(r)
      in
      let p = Float.max 1e-12 ((g *. p_vocab) +. ((1.0 -. g) *. p_copy)) in
      gates.(r) <- g;
      p_vocabs.(r) <- p_vocab;
      p_copies.(r) <- p_copy;
      ps.(r) <- p;
      Tensor.set value r 0 (-.log p)
    end
    else Tensor.set value r 0 0.0
  done;
  let rec n =
    lazy
      (record tape value (fun () ->
           let gout = (Lazy.force n).grad in
           for r = 0 to rws - 1 do
             if active.(r) then begin
               let go = Tensor.get gout r 0 in
               let dp = -.go /. ps.(r) in
               let g = gates.(r) in
               Tensor.set gate.grad r 0
                 (Tensor.get gate.grad r 0 +. (dp *. (p_vocabs.(r) -. p_copies.(r))));
               let target = targets.(r) in
               if target >= 0 && target < pv_len then
                 Tensor.set vocab_probs.grad r target
                   (Tensor.get vocab_probs.grad r target +. (dp *. g));
               List.iter
                 (fun i ->
                   Tensor.set attention.grad r i
                     (Tensor.get attention.grad r i +. (dp *. (1.0 -. g))))
                 copy_positions.(r)
             end
           done))
  in
  Lazy.force n

let sum_scalars tape (xs : node list) =
  match xs with
  | [] -> leaf tape (Tensor.vector [| 0.0 |])
  | [ x ] -> x
  | x :: rest -> List.fold_left (fun acc y -> add tape acc y) x rest

(* Sum of every element, as a 1 x 1 node; elements are accumulated in
   row-major order. Seeds each row of a per-row loss column with gradient 1,
   exactly as per-example backward calls did. *)
let sum_all tape a =
  let rws, cols = dims a in
  let value = alloc tape 1 1 in
  let s = ref 0.0 in
  for r = 0 to rws - 1 do
    for j = 0 to cols - 1 do
      s := !s +. Tensor.get a.value r j
    done
  done;
  Tensor.set value 0 0 !s;
  let rec n =
    lazy
      (record tape value (fun () ->
           let g = Tensor.get (Lazy.force n).grad 0 0 in
           for r = 0 to rws - 1 do
             for j = 0 to cols - 1 do
               Tensor.set a.grad r j (Tensor.get a.grad r j +. g)
             done
           done))
  in
  Lazy.force n

(* Runs backpropagation from [loss] (a scalar node). *)
let backward tape (loss : node) =
  loss.grad.Tensor.data.(loss.grad.Tensor.off) <- 1.0;
  List.iter (fun n -> n.back ()) tape.nodes
(* nodes are stored most-recent first, which is reverse topological order *)
