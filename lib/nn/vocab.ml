(* Token vocabularies with special symbols. *)

type t = {
  by_token : (string, int) Hashtbl.t;
  by_id : string array;
}

let pad = "<pad>"
let bos = "<s>"
let eos = "</s>"
let unk = "<unk>"

let specials = [ pad; bos; eos; unk ]

let of_tokens (tokens : string list) : t =
  let by_token = Hashtbl.create 256 in
  let order = ref [] in
  let add tok =
    if not (Hashtbl.mem by_token tok) then begin
      Hashtbl.replace by_token tok (Hashtbl.length by_token);
      order := tok :: !order
    end
  in
  List.iter add specials;
  List.iter add tokens;
  { by_token; by_id = Array.of_list (List.rev !order) }

let size v = Array.length v.by_id

(* Every token in id order (specials first). [of_tokens (tokens v)] rebuilds
   a vocabulary with identical token <-> id assignments, which is what the
   checkpoint codec round-trips. *)
let tokens v = Array.to_list v.by_id

let id v tok =
  match Hashtbl.find_opt v.by_token tok with
  | Some i -> i
  | None -> Hashtbl.find v.by_token unk

let token v i = if i >= 0 && i < size v then v.by_id.(i) else unk

let bos_id v = id v bos
let eos_id v = id v eos
let unk_id v = id v unk
