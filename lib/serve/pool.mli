(** A worker pool on OCaml 5 [Domain]s with one bounded inbox per worker.

    The caller shards work explicitly ({!submit} names the target worker), so
    state that is not thread-safe — a worker's parse cache, its runtime
    environment, its private aligner scratch tables — can stay lock-free: all
    requests for a given cache key are routed to the same worker.

    Protocol (single coordinating domain): [create], then any interleaving of
    [submit], then [drain] for the outstanding count, repeated as desired,
    then [shutdown]. *)

type ('req, 'resp) t

val create :
  workers:int ->
  queue_capacity:int ->
  handler:(int -> 'req -> 'resp) ->
  ('req, 'resp) t
(** Spawns [workers] (>= 1) domains. [handler w req] runs on worker [w]'s
    domain; an exception it raises is captured and re-raised by the next
    {!drain}. *)

val workers : _ t -> int

val submit : ('req, 'resp) t -> worker:int -> 'req -> unit
(** Enqueues on worker [worker mod workers]'s inbox; blocks while that inbox
    is full (backpressure). *)

val drain : ('req, 'resp) t -> int -> 'resp list
(** [drain t n] blocks until [n] responses have accumulated since the last
    drain and returns them (completion order, not submission order). *)

val shutdown : _ t -> unit
(** Closes every inbox and joins every domain. Idempotent. *)
