(* Re-export: deterministic fault schedules moved to [Genie_conc] so the
   synthesis pipeline can inject the same seeded crashes/drops the serving
   layer uses. [include] preserves exception identity: catching
   [Genie_serve.Fault.Injected_crash] still matches crashes raised through
   [Genie_conc.Fault]. *)
include Genie_conc.Fault
