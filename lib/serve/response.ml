(* Serving responses. *)

open Genie_thingtalk

type timing = {
  tokenize_ns : float;
  parse_ns : float;
  exec_ns : float;
  total_ns : float;
}

type t = {
  id : int;
  utterance : string;
  program : Ast.program option;
  program_text : string option;
  nn_tokens : string list;
  score : float;
  from_cache : bool;
  worker : int;
  notifications : int;
  side_effects : int;
  error : string option;
  timing : timing;
}

let summary r =
  Printf.sprintf "#%d [%s w%d %.2fms] %s -> %s" r.id
    (if r.from_cache then "hit " else "miss")
    r.worker
    (r.timing.total_ns /. 1e6)
    r.utterance
    (match r.program_text with Some p -> p | None -> "<no parse>")
