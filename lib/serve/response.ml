(* Serving responses. *)

open Genie_thingtalk

type status = Ok | No_parse | Timeout | Overloaded | Error

let status_to_string = function
  | Ok -> "ok"
  | No_parse -> "no-parse"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Error -> "error"

type timing = {
  tokenize_ns : float;
  parse_ns : float;
  exec_ns : float;
  total_ns : float;
}

let no_timing = { tokenize_ns = 0.0; parse_ns = 0.0; exec_ns = 0.0; total_ns = 0.0 }

type t = {
  id : int;
  utterance : string;
  status : status;
  program : Ast.program option;
  program_text : string option;
  nn_tokens : string list;
  score : float;
  from_cache : bool;
  degraded : bool;
  attempts : int;
  worker : int;
  notifications : int;
  side_effects : int;
  error : string option;
  timing : timing;
}

let summary r =
  Printf.sprintf "#%d [%s %s%s w%d %.2fms] %s -> %s" r.id
    (status_to_string r.status)
    (if r.from_cache then "hit " else "miss")
    (if r.degraded then "degraded " else "")
    r.worker
    (r.timing.total_ns /. 1e6)
    r.utterance
    (match r.program_text with
    | Some p -> p
    | None -> (
        match r.status with
        | Timeout -> "<timeout>"
        | Overloaded -> "<overloaded>"
        | _ -> "<no parse>"))
