(* Re-export: the bounded channel moved to [Genie_conc] so lower layers
   (synthesis, augmentation) can use it without depending on the serving
   stack. Kept here so existing [Genie_serve.Chan] callers are unchanged. *)
include Genie_conc.Chan
