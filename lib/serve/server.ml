(* The serving facade: engines + optional pool + stats aggregation, wrapped
   in the robustness policy — admission control, retry with backoff, and
   cache-only graceful degradation.

   Admission control is per batch: each worker accepts at most
   [admission_capacity] requests of a [run_batch] call (the whole batch
   "arrives at once", so anything beyond a worker's inbox budget is excess
   load). An excess request is answered from the coordinator's degraded
   cache when its utterance has been parsed before, and shed with an
   explicit [Overloaded] response otherwise — never blocked. Because the
   decision depends only on the batch order and the key -> worker shard map,
   shedding is deterministic.

   Transient failures (injected crashes, injected message drops, any
   exception a worker raises) are retried with exponential backoff and
   deterministic jitter up to [max_retries] times; a request that exhausts
   its retries gets an [Error] response. Either way every submitted request
   resolves to exactly one response and exactly one metrics outcome. *)

open Genie_thingtalk
module Tracer = Genie_observe.Tracer
module Span = Genie_observe.Span
module Probe = Genie_observe.Probe

(* what the degraded path can answer with: a previous successful parse,
   coordinator-owned so no domain sharing *)
type cached_parse = {
  c_program : Ast.program option;
  c_text : string option;
  c_nn : string list;
  c_score : float;
}

(* Pool jobs carry either one request (the per-request path, with its retry
   ordinal) or a whole admitted group (the micro-batched path): both ride the
   same persistent domains, so a batched dispatch pays one submit/drain
   crossing per worker per batch instead of spawning a fresh pool. *)
type job = One of Request.t * int | Many of Request.t list
type job_result = R_one of Response.t | R_many of Response.t list

type t = {
  engines : Engine.t array;  (* one per worker; exactly one when sequential *)
  pool : (job, job_result) Pool.t option;
  metrics : Metrics.t;
  workers : int;  (* as configured: 0/1 = sequential *)
  fault : Fault.t;
  admission : int option;  (* per-worker per-batch request budget *)
  degrade : bool;
  max_retries : int;
  retry_backoff_ns : float;
  degraded_cache : cached_parse Parse_cache.t;  (* coordinator-only *)
  tracer : Tracer.t;  (* coordinator records into slot [Array.length engines] *)
  mutable model_digest : string;  (* [Model.digest] of the active model *)
  mutable model_kind : string;  (* [Model.kind] of the active model *)
  mutable swaps : int;  (* hot-swaps committed *)
  mutable last_batch : int * float;  (* requests, wall seconds *)
  mutable total_requests : int;  (* across every run_batch call *)
  mutable total_seconds : float;
  mutable total_batches : int;
}

type stats = {
  workers : int;
  requests : int;
  ok : int;
  errors : int;
  no_parse : int;
  timeouts : int;
  shed : int;
  retries : int;
  degraded : int;
  exec_runs : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  hit_rate : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  last_batch_requests : int;
  last_batch_seconds : float;
  throughput_rps : float;
  batches : int;
  total_seconds : float;
  cumulative_rps : float;
  compile_hits : int;
  compile_misses : int;
  compile_evictions : int;
  compile_entries : int;
  model_digest : string;
  model_kind : string;
  swaps : int;
}

(* A dropped message is a root-level event like a crash: same span shape in
   the sequential simulation and in the pool's transit hook, so traces
   compare across serving paths. *)
let record_drop ~metrics ~tracer ~slot ~id ~attempt =
  Probe.incr (Metrics.probe metrics) Probe.Drop;
  if Tracer.enabled tracer then
    Tracer.record tracer ~slot
      (Span.v ~seed:(Tracer.seed tracer) ~request:id ~attempt ~seq:0
         ~start_ns:(Tracer.now_ns ()) ~dur_ns:0.0 "drop")

let create ~lib ~model ?(cache_capacity = 4096) ?(workers = 0)
    ?(queue_capacity = 64) ?(seed = 0) ?(fault = Fault.none)
    ?admission_capacity ?(degrade = true) ?(max_retries = 2)
    ?(retry_backoff_ms = 1.0) ?(tracer = Tracer.disabled) ?(compiled = true)
    ?compile_cache_capacity () =
  let n_engines = max 1 workers in
  let metrics = Metrics.create () in
  let engines =
    Array.init n_engines (fun w ->
        Engine.create ~lib ~model ~cache_capacity ~metrics ~worker:w
          ~seed:(seed + w) ~fault ~tracer ~compiled ?compile_cache_capacity ())
  in
  let pool =
    if workers >= 2 then
      Some
        (Pool.create ~workers ~queue_capacity
           ~fault_hook:(fun w job ->
             match job with
             | Many _ -> None  (* batched jobs only exist fault-free *)
             | One ((req : Request.t), attempt) ->
                 if Fault.drops fault ~id:req.Request.id ~attempt then begin
                   record_drop ~metrics ~tracer ~slot:w ~id:req.Request.id
                     ~attempt;
                   Some Fault.Injected_drop
                 end
                 else None)
           ~handler:(fun w job ->
             match job with
             | One (req, attempt) ->
                 R_one (Engine.process ~attempt engines.(w) req)
             | Many reqs -> R_many (Engine.process_batch engines.(w) reqs))
           ())
    else None
  in
  { engines;
    pool;
    metrics;
    workers;
    fault;
    admission = admission_capacity;
    degrade;
    max_retries;
    retry_backoff_ns = retry_backoff_ms *. 1e6;
    degraded_cache = Parse_cache.create ~capacity:cache_capacity;
    tracer;
    model_digest = model.Genie_parser_model.Model.digest;
    model_kind =
      Genie_parser_model.Model.kind_to_string
        model.Genie_parser_model.Model.kind;
    swaps = 0;
    last_batch = (0, 0.0);
    total_requests = 0;
    total_seconds = 0.0;
    total_batches = 0 }

let of_artifacts ?cache_capacity ?workers ?queue_capacity ?seed ?fault
    ?admission_capacity ?degrade ?max_retries ?retry_backoff_ms ?tracer
    ?compiled ?compile_cache_capacity (a : Genie_core.Pipeline.artifacts) =
  create ~lib:a.Genie_core.Pipeline.lib
    ~model:(Genie_parser_model.Model.of_aligner a.Genie_core.Pipeline.model)
    ?cache_capacity ?workers ?queue_capacity ?seed ?fault ?admission_capacity
    ?degrade ?max_retries ?retry_backoff_ms ?tracer ?compiled
    ?compile_cache_capacity ()

(* Requests shard by cache key, not round-robin: every repetition of an
   utterance lands on the same worker, so per-worker caches need no locks
   and the pooled run does the same total number of aligner decodes as the
   sequential run. *)
let shard t (req : Request.t) =
  let n = Array.length t.engines in
  if n = 1 then 0
  else Hashtbl.hash (Request.cache_key req.Request.utterance) mod n

(* --- degraded / shed / failed responses (coordinator-made) ------------------- *)

(* Coordinator events (shed, degraded, retry, backoff) go to the slot after
   the last worker's; like all spans their identity is structural, so where
   they are buffered never affects the merged trace. *)
let record_coord t ~id ~attempt ~seq ?attrs ?(dur_ns = 0.0) name =
  if Tracer.enabled t.tracer then
    Tracer.record t.tracer ~slot:(Array.length t.engines)
      (Span.v ~seed:(Tracer.seed t.tracer) ~request:id ~attempt ~seq ?attrs
         ~start_ns:(Tracer.now_ns ()) ~dur_ns name)

let overloaded_response t ~worker (req : Request.t) =
  Metrics.incr_shed t.metrics;
  Probe.incr (Metrics.probe t.metrics) Probe.Shed;
  record_coord t ~id:req.Request.id ~attempt:0 ~seq:0 "shed";
  { Response.id = req.Request.id;
    utterance = req.Request.utterance;
    status = Response.Overloaded;
    program = None;
    program_text = None;
    nn_tokens = [];
    score = 0.0;
    from_cache = false;
    degraded = false;
    attempts = 0;
    worker;
    notifications = 0;
    side_effects = 0;
    error = None;
    timing = Response.no_timing }

let degraded_response t ~worker (req : Request.t) c =
  (* a cache-only answer is effectively free: file it as a fastest-bucket
     sample so degraded traffic shows up in the latency profile *)
  Metrics.record t.metrics ~outcome:`Ok ~latency_ns:0.0 ();
  Metrics.incr_degraded t.metrics;
  Probe.incr (Metrics.probe t.metrics) Probe.Degraded;
  record_coord t ~id:req.Request.id ~attempt:0 ~seq:0 "degraded";
  { Response.id = req.Request.id;
    utterance = req.Request.utterance;
    status = Response.Ok;
    program = c.c_program;
    program_text = c.c_text;
    nn_tokens = c.c_nn;
    score = c.c_score;
    from_cache = true;
    degraded = true;
    attempts = 0;
    worker;
    notifications = 0;
    side_effects = 0;
    error = None;
    timing = Response.no_timing }

let failed_response t ~worker (req : Request.t) ~attempts e =
  Metrics.record t.metrics ~outcome:`Error ~latency_ns:0.0 ();
  { Response.id = req.Request.id;
    utterance = req.Request.utterance;
    status = Response.Error;
    program = None;
    program_text = None;
    nn_tokens = [];
    score = 0.0;
    from_cache = false;
    degraded = false;
    attempts;
    worker;
    notifications = 0;
    side_effects = 0;
    error = Some (Printexc.to_string e);
    timing = Response.no_timing }

let degrade_or_shed t ~worker (req : Request.t) =
  let key = Request.cache_key req.Request.utterance in
  match
    if t.degrade then Parse_cache.find t.degraded_cache key else None
  with
  | Some c -> degraded_response t ~worker req c
  | None -> overloaded_response t ~worker req

(* feed the degraded cache with every fresh successful parse *)
let remember t (r : Response.t) =
  if r.Response.status = Response.Ok && not r.Response.degraded then
    Parse_cache.add t.degraded_cache
      (Request.cache_key r.Response.utterance)
      { c_program = r.Response.program;
        c_text = r.Response.program_text;
        c_nn = r.Response.nn_tokens;
        c_score = r.Response.score }

(* --- serving with retries ----------------------------------------------------- *)

(* Counts, traces and (virtually or actually) waits out one retry's backoff.
   The backoff span's duration is the request's own computed backoff, in
   both serving paths — even though the pooled coordinator only sleeps once
   per round, at the round's maximum. *)
let record_retry t ~id ~attempt =
  Metrics.incr_retries t.metrics;
  Probe.incr (Metrics.probe t.metrics) Probe.Retry;
  record_coord t ~id ~attempt ~seq:8 "retry";
  let ns =
    Fault.backoff_ns t.fault ~base_ns:t.retry_backoff_ns ~id ~attempt
  in
  Probe.incr (Metrics.probe t.metrics) Probe.Backoff;
  record_coord t ~id ~attempt ~seq:9 ~dur_ns:ns "backoff";
  ns

(* one request on the calling domain, with the full retry policy *)
let process_direct t (req : Request.t) =
  let w = shard t req in
  let engine = t.engines.(w) in
  let rec go attempt =
    let result =
      if Fault.drops t.fault ~id:req.Request.id ~attempt then begin
        record_drop ~metrics:t.metrics ~tracer:t.tracer ~slot:w
          ~id:req.Request.id ~attempt;
        Stdlib.Error Fault.Injected_drop
      end
      else
        match Engine.process ~attempt engine req with
        | r -> Stdlib.Ok r
        | exception e -> Stdlib.Error e
    in
    match result with
    | Stdlib.Ok r -> r
    | Stdlib.Error e ->
        if attempt >= t.max_retries then
          failed_response t ~worker:w req ~attempts:(attempt + 1) e
        else begin
          let ns = record_retry t ~id:req.Request.id ~attempt in
          if ns > 0.0 then Unix.sleepf (ns /. 1e9);
          go (attempt + 1)
        end
  in
  let r = go 0 in
  remember t r;
  r

let handle t req = process_direct t req

let fresh_credits t n =
  Array.make n (match t.admission with Some c -> c | None -> max_int)

let run_batch_seq t reqs =
  let credits = fresh_credits t 1 in
  List.map
    (fun req ->
      if credits.(0) > 0 then begin
        credits.(0) <- credits.(0) - 1;
        process_direct t req
      end
      else degrade_or_shed t ~worker:0 req)
    reqs

let run_batch_pooled t pool reqs =
  let credits = fresh_credits t (Array.length t.engines) in
  let collected = ref [] in
  let outstanding = ref 0 in
  List.iter
    (fun req ->
      let w = shard t req in
      if credits.(w) > 0 then begin
        credits.(w) <- credits.(w) - 1;
        Pool.submit pool ~worker:w (One (req, 0));
        incr outstanding
      end
      else collected := degrade_or_shed t ~worker:w req :: !collected)
    reqs;
  while !outstanding > 0 do
    let results = Pool.drain_results pool !outstanding in
    outstanding := 0;
    let failures = ref [] in
    List.iter
      (function
        | Stdlib.Ok (R_one r) -> collected := r :: !collected
        | Stdlib.Ok (R_many rs) ->
            collected := List.rev_append rs !collected
        | Stdlib.Error (One (req, attempt), e) ->
            failures := (req, attempt, e) :: !failures
        | Stdlib.Error (Many reqs, e) ->
            (* unreachable on this path (only [One] jobs are submitted), but
               never lose a request: every member fails definitively *)
            List.iter
              (fun (req : Request.t) ->
                collected :=
                  failed_response t ~worker:(shard t req) req ~attempts:1 e
                  :: !collected)
              reqs)
      results;
    (* resubmit in id order so each worker sees a deterministic retry
       sequence regardless of cross-worker completion interleaving *)
    let failures =
      List.sort
        (fun ((a : Request.t), _, _) ((b : Request.t), _, _) ->
          compare a.Request.id b.Request.id)
        !failures
    in
    let give_up, retry =
      List.partition (fun (_, attempt, _) -> attempt >= t.max_retries) failures
    in
    List.iter
      (fun ((req : Request.t), attempt, e) ->
        collected :=
          failed_response t ~worker:(shard t req) req ~attempts:(attempt + 1) e
          :: !collected)
      give_up;
    (* one pause per retry round, at the round's largest backoff *)
    let max_backoff =
      List.fold_left
        (fun acc ((req : Request.t), attempt, _) ->
          Float.max acc (record_retry t ~id:req.Request.id ~attempt))
        0.0 retry
    in
    if max_backoff > 0.0 && retry <> [] then Unix.sleepf (max_backoff /. 1e9);
    List.iter
      (fun ((req : Request.t), attempt, _) ->
        Pool.submit pool ~worker:(shard t req) (One (req, attempt + 1));
        incr outstanding)
      retry
  done;
  List.iter (remember t) !collected;
  !collected

(* --- batched serving --------------------------------------------------------- *)

(* The batched variants push each worker's admitted requests through
   [Engine.process_batch], which parses all distinct uncached utterances of
   the group in one aligner pass. Responses and end-of-batch server state
   are identical to the per-request paths above:

   - sequential: admission credits run out monotonically, so the admitted
     requests are exactly a prefix of the batch; processing that prefix
     first and then degrading/shedding the suffix preserves the interleaved
     path's degraded-cache visibility (every shed request still sees all
     parses remembered before it).
   - pooled: [run_batch_pooled] sheds at submission time, before any worker
     response is remembered, so the batched variant also degrades/sheds
     during the admission walk and remembers afterwards.

   Only fault-free servers take these paths — drop injection and the retry
   policy are specified per sequential attempt — and [Engine.process_batch]
   itself falls back to its sequential path for traced or deadline-carrying
   batches. *)

let run_batch_seq_batched t reqs =
  let cap = match t.admission with Some c -> c | None -> max_int in
  let rec split n acc = function
    | rest when n <= 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | r :: rest -> split (n - 1) (r :: acc) rest
  in
  let admitted, excess = split cap [] reqs in
  let rs = Engine.process_batch t.engines.(0) admitted in
  List.iter (remember t) rs;
  rs @ List.map (degrade_or_shed t ~worker:0) excess

let run_batch_pooled_batched t pool reqs =
  let n = Array.length t.engines in
  let credits = fresh_credits t n in
  let groups = Array.make n [] in
  let shed_responses = ref [] in
  List.iter
    (fun req ->
      let w = shard t req in
      if credits.(w) > 0 then begin
        credits.(w) <- credits.(w) - 1;
        groups.(w) <- req :: groups.(w)
      end
      else shed_responses := degrade_or_shed t ~worker:w req :: !shed_responses)
    reqs;
  (* One [Many] job per engine on the persistent pool: each engine is still
     driven from exactly one domain, and the whole micro-batch pays a single
     submit/drain crossing per worker — no per-batch domain spawns. *)
  let outstanding = ref 0 in
  Array.iteri
    (fun w g ->
      if g <> [] then begin
        Pool.submit pool ~worker:w (Many (List.rev g));
        incr outstanding
      end)
    groups;
  let responses = ref [] in
  if !outstanding > 0 then
    List.iter
      (function
        | Stdlib.Ok (R_many rs) -> responses := List.rev_append rs !responses
        | Stdlib.Ok (R_one r) -> responses := r :: !responses
        | Stdlib.Error (Many reqs, e) ->
            (* batched jobs run fault-free, so a worker exception here is a
               real bug; still answer every request exactly once *)
            List.iter
              (fun (req : Request.t) ->
                responses :=
                  failed_response t ~worker:(shard t req) req ~attempts:1 e
                  :: !responses)
              reqs
        | Stdlib.Error (One (req, _), e) ->
            responses :=
              failed_response t ~worker:(shard t req) req ~attempts:1 e
              :: !responses)
      (Pool.drain_results pool !outstanding);
  List.iter (remember t) !responses;
  !responses @ !shed_responses

let run_batch ?(batched = false) t reqs =
  let t0 = Unix.gettimeofday () in
  let batched = batched && Fault.spec t.fault = Fault.spec Fault.none in
  let responses =
    match t.pool with
    | None -> if batched then run_batch_seq_batched t reqs else run_batch_seq t reqs
    | Some pool ->
        if batched then run_batch_pooled_batched t pool reqs
        else run_batch_pooled t pool reqs
  in
  let dt = Unix.gettimeofday () -. t0 in
  let n_reqs = List.length reqs in
  t.last_batch <- (n_reqs, dt);
  t.total_requests <- t.total_requests + n_reqs;
  t.total_seconds <- t.total_seconds +. dt;
  t.total_batches <- t.total_batches + 1;
  List.sort
    (fun (a : Response.t) (b : Response.t) ->
      compare a.Response.id b.Response.id)
    responses

let stats (t : t) =
  let m = Metrics.snapshot t.metrics in
  let hits, misses, evictions, entries =
    Array.fold_left
      (fun (h, mi, e, n) engine ->
        let s = Engine.cache_stats engine in
        ( h + s.Parse_cache.hits,
          mi + s.Parse_cache.misses,
          e + s.Parse_cache.evictions,
          n + s.Parse_cache.entries ))
      (0, 0, 0, 0) t.engines
  in
  let chits, cmisses, cevictions, centries =
    Array.fold_left
      (fun (h, mi, e, n) engine ->
        let s = Engine.compile_cache_stats engine in
        ( h + s.Genie_runtime.Compile_cache.hits,
          mi + s.Genie_runtime.Compile_cache.misses,
          e + s.Genie_runtime.Compile_cache.evictions,
          n + s.Genie_runtime.Compile_cache.entries ))
      (0, 0, 0, 0) t.engines
  in
  let lookups = hits + misses in
  let n_batch, secs = t.last_batch in
  { workers = t.workers;
    requests = m.Metrics.requests;
    ok = m.Metrics.ok;
    errors = m.Metrics.errors;
    no_parse = m.Metrics.no_parse;
    timeouts = m.Metrics.timeouts;
    shed = m.Metrics.shed;
    retries = m.Metrics.retries;
    degraded = m.Metrics.degraded;
    exec_runs = m.Metrics.exec_runs;
    cache_hits = hits;
    cache_misses = misses;
    cache_evictions = evictions;
    cache_entries = entries;
    hit_rate = (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
    mean_ms = m.Metrics.mean_ms;
    p50_ms = m.Metrics.p50_ms;
    p95_ms = m.Metrics.p95_ms;
    p99_ms = m.Metrics.p99_ms;
    last_batch_requests = n_batch;
    last_batch_seconds = secs;
    throughput_rps =
      (if secs <= 0.0 then 0.0 else float_of_int n_batch /. secs);
    batches = t.total_batches;
    total_seconds = t.total_seconds;
    cumulative_rps =
      (if t.total_seconds <= 0.0 then 0.0
       else float_of_int t.total_requests /. t.total_seconds);
    compile_hits = chits;
    compile_misses = cmisses;
    compile_evictions = cevictions;
    compile_entries = centries;
    model_digest = t.model_digest;
    model_kind = t.model_kind;
    swaps = t.swaps }

(* --- live model hot-swap ------------------------------------------------------ *)

(* Swap in a new model between run_batch calls. run_batch is synchronous and
   the engines are only driven from inside it, so at any call site of
   swap_model there are zero requests in flight: in-flight requests have, by
   construction, finished on the old weights. The swap touches every layer
   that memoizes model output — each engine's model handle and parse cache,
   and the coordinator's degraded cache (its entries are old-model parses
   that the degraded path would otherwise keep serving, mixing models) — and
   nothing that doesn't (compiled-program caches are model-independent).
   Caches invalidate by model digest: a reload that resolves to the
   already-active digest keeps every cache warm and only bumps the
   [swap.noop] probe. *)
let swap_model t (model : Genie_parser_model.Model.t) =
  let d = model.Genie_parser_model.Model.digest in
  let probe = Metrics.probe t.metrics in
  if d = t.model_digest then begin
    Probe.incr probe Probe.Swap_noop;
    `Unchanged d
  end
  else begin
    let old = t.model_digest in
    let t0 = Tracer.now_ns () in
    Array.iter (fun e -> Engine.swap_model e model) t.engines;
    Parse_cache.clear t.degraded_cache;
    Probe.incr probe Probe.Swap_cache_clear;
    t.model_digest <- d;
    t.model_kind <-
      Genie_parser_model.Model.kind_to_string
        model.Genie_parser_model.Model.kind;
    t.swaps <- t.swaps + 1;
    Probe.incr probe Probe.Swap;
    if Tracer.enabled t.tracer then
      Tracer.record t.tracer ~slot:(Array.length t.engines)
        (Span.v ~seed:(Tracer.seed t.tracer) ~request:t.swaps ~attempt:0
           ~seq:10
           ~attrs:[ ("old", old); ("new", d) ]
           ~start_ns:t0
           ~dur_ns:(Tracer.now_ns () -. t0)
           "swap.model");
    `Swapped d
  end

let model_digest (t : t) = t.model_digest
let model_kind (t : t) = t.model_kind

let metrics_snapshot (t : t) = Metrics.snapshot t.metrics
let probe (t : t) = Metrics.probe t.metrics

let workers (t : t) = t.workers

let shutdown (t : t) = match t.pool with Some p -> Pool.shutdown p | None -> ()

let pp_stats fmt s =
  Format.fprintf fmt
    "workers %d  %d req  %.0f req/s  hit-rate %.1f%%  p50 %.2fms  p95 %.2fms  \
     p99 %.2fms  mean %.2fms  timeouts %d  shed %d  retries %d  degraded %d"
    s.workers s.requests s.throughput_rps (100.0 *. s.hit_rate) s.p50_ms
    s.p95_ms s.p99_ms s.mean_ms s.timeouts s.shed s.retries s.degraded;
  if s.compile_misses + s.compile_hits > 0 then
    Format.fprintf fmt "  compile %d/%d hit" s.compile_hits
      (s.compile_hits + s.compile_misses)
