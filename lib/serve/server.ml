(* The serving facade: engines + optional pool + stats aggregation. *)

type t = {
  engines : Engine.t array;  (* one per worker; exactly one when sequential *)
  pool : (Request.t, Response.t) Pool.t option;
  metrics : Metrics.t;
  workers : int;  (* as configured: 0/1 = sequential *)
  mutable last_batch : int * float;  (* requests, wall seconds *)
}

type stats = {
  workers : int;
  requests : int;
  errors : int;
  no_parse : int;
  exec_runs : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  hit_rate : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  last_batch_requests : int;
  last_batch_seconds : float;
  throughput_rps : float;
}

let create ~lib ~model ?(cache_capacity = 4096) ?(workers = 0)
    ?(queue_capacity = 64) ?(seed = 0) () =
  let n_engines = max 1 workers in
  let metrics = Metrics.create () in
  let engines =
    Array.init n_engines (fun w ->
        Engine.create ~lib ~model ~cache_capacity ~metrics ~worker:w
          ~seed:(seed + w) ())
  in
  let pool =
    if workers >= 2 then
      Some
        (Pool.create ~workers ~queue_capacity ~handler:(fun w req ->
             Engine.process engines.(w) req))
    else None
  in
  { engines; pool; metrics; workers; last_batch = (0, 0.0) }

let of_artifacts ?cache_capacity ?workers ?queue_capacity ?seed
    (a : Genie_core.Pipeline.artifacts) =
  create ~lib:a.Genie_core.Pipeline.lib ~model:a.Genie_core.Pipeline.model
    ?cache_capacity ?workers ?queue_capacity ?seed ()

(* Requests shard by cache key, not round-robin: every repetition of an
   utterance lands on the same worker, so per-worker caches need no locks
   and the pooled run does the same total number of aligner decodes as the
   sequential run. *)
let shard t (req : Request.t) =
  let n = Array.length t.engines in
  if n = 1 then 0
  else Hashtbl.hash (Request.cache_key req.Request.utterance) mod n

let handle t req = Engine.process t.engines.(shard t req) req

let run_batch t reqs =
  let t0 = Unix.gettimeofday () in
  let responses =
    match t.pool with
    | None -> List.map (handle t) reqs
    | Some pool ->
        List.iter (fun r -> Pool.submit pool ~worker:(shard t r) r) reqs;
        Pool.drain pool (List.length reqs)
  in
  let dt = Unix.gettimeofday () -. t0 in
  t.last_batch <- (List.length reqs, dt);
  List.sort
    (fun (a : Response.t) (b : Response.t) ->
      compare a.Response.id b.Response.id)
    responses

let stats (t : t) =
  let m = Metrics.snapshot t.metrics in
  let hits, misses, evictions, entries =
    Array.fold_left
      (fun (h, mi, e, n) engine ->
        let s = Engine.cache_stats engine in
        ( h + s.Parse_cache.hits,
          mi + s.Parse_cache.misses,
          e + s.Parse_cache.evictions,
          n + s.Parse_cache.entries ))
      (0, 0, 0, 0) t.engines
  in
  let lookups = hits + misses in
  let n_batch, secs = t.last_batch in
  { workers = t.workers;
    requests = m.Metrics.requests;
    errors = m.Metrics.errors;
    no_parse = m.Metrics.no_parse;
    exec_runs = m.Metrics.exec_runs;
    cache_hits = hits;
    cache_misses = misses;
    cache_evictions = evictions;
    cache_entries = entries;
    hit_rate = (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
    mean_ms = m.Metrics.mean_ms;
    p50_ms = m.Metrics.p50_ms;
    p95_ms = m.Metrics.p95_ms;
    p99_ms = m.Metrics.p99_ms;
    last_batch_requests = n_batch;
    last_batch_seconds = secs;
    throughput_rps =
      (if secs <= 0.0 then 0.0 else float_of_int n_batch /. secs) }

let workers (t : t) = t.workers

let shutdown (t : t) = match t.pool with Some p -> Pool.shutdown p | None -> ()

let pp_stats fmt s =
  Format.fprintf fmt
    "workers %d  %d req  %.0f req/s  hit-rate %.1f%%  p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms"
    s.workers s.requests s.throughput_rps (100.0 *. s.hit_rate) s.p50_ms
    s.p95_ms s.p99_ms s.mean_ms
