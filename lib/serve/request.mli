(** A single serving request: one user utterance to translate into ThingTalk,
    optionally followed by execution on the mock runtime. *)

type t = {
  id : int;  (** caller-assigned; responses are matched back by id *)
  utterance : string;  (** raw text; the engine tokenizes *)
  execute : bool;  (** also run the parsed program on the worker's runtime *)
  ticks : int;  (** virtual days to simulate when [execute] *)
  deadline_ns : float option;
      (** per-request latency budget, measured by the engine from the start
          of processing (and inclusive of injected fault latency). A request
          whose uncached work exceeds it gets a [Timeout] response; cache
          hits always answer. [None]: no deadline. *)
}

val make : ?execute:bool -> ?ticks:int -> ?deadline_ms:float -> id:int -> string -> t
(** [make ~id utterance] with [execute] defaulting to false, [ticks] to 3 and
    no deadline. [deadline_ms] is converted to nanoseconds. *)

val cache_key : string -> string
(** The normalized token sequence the parse cache is keyed on: two utterances
    with the same key are guaranteed the same parse. *)
