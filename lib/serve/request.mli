(** A single serving request: one user utterance to translate into ThingTalk,
    optionally followed by execution on the mock runtime. *)

type t = {
  id : int;  (** caller-assigned; responses are matched back by id *)
  utterance : string;  (** raw text; the engine tokenizes *)
  execute : bool;  (** also run the parsed program on the worker's runtime *)
  ticks : int;  (** virtual days to simulate when [execute] *)
}

val make : ?execute:bool -> ?ticks:int -> id:int -> string -> t
(** [make ~id utterance] with [execute] defaulting to false and [ticks]
    to 3. *)

val cache_key : string -> string
(** The normalized token sequence the parse cache is keyed on: two utterances
    with the same key are guaranteed the same parse. *)
