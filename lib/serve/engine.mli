(** One worker's single-request processing path: tokenize -> parse-cache
    lookup -> model decode on a miss -> optional runtime execution, with
    per-stage timing, deadline enforcement and fault-injection hooks.

    An engine owns everything a request touches that is not thread-safe: a
    private LRU parse cache, a private {!Genie_runtime.Exec.env}, and a
    private {!Genie_parser_model.Model.fork} of the (otherwise shared,
    read-only) model whose predict-time scratch is per-fork. Each engine
    must only ever be driven from one domain at a time; metrics are shared
    and atomic. *)

open Genie_thingtalk

type t

val create :
  lib:Schema.Library.t ->
  model:Genie_parser_model.Model.t ->
  cache_capacity:int ->
  metrics:Metrics.t ->
  worker:int ->
  ?seed:int ->
  ?fault:Fault.t ->
  ?tracer:Genie_observe.Tracer.t ->
  ?compiled:bool ->
  ?compile_cache_capacity:int ->
  unit ->
  t
(** [seed] (default [worker]) seeds the engine's runtime environment.
    [fault] (default {!Fault.none}) is the engine's injection schedule.
    [tracer] (default {!Genie_observe.Tracer.disabled}) receives per-stage
    spans in slot [worker]; always-on {!Genie_observe.Probe} counters on
    [metrics] are bumped regardless. [compiled] (default [true]) executes
    programs through {!Genie_runtime.Compile} with a worker-private LRU of
    compiled programs keyed on the memoized canonical text
    ([compile_cache_capacity], default [cache_capacity]); responses are
    byte-identical to interpreted execution (docs/compilation.md). *)

val process :
  ?attempt:int ->
  ?preparsed:(string -> Genie_parser_model.Model.prediction option) ->
  t ->
  Request.t ->
  Response.t
(** Serves one request: parser and runtime exceptions are absorbed into the
    response ([status = Error]); a request past its {!Request.deadline_ns}
    answers [Timeout] with its stage timings still populated (cache hits are
    exempt — they cost nothing). The {e only} exception [process] raises is
    {!Fault.Injected_crash}, on schedule, for the retry layer to catch;
    [attempt] (default 0) is the retry ordinal the schedule consults, echoed
    back as [response.attempts = attempt + 1]. [preparsed] (used by
    {!process_batch}) is consulted by cache key on a cache miss before
    falling back to the model; it must only return predictions identical
    to what the model would produce. *)

val process_batch : ?attempt:int -> t -> Request.t list -> Response.t list
(** Serves a list of requests, parsing all distinct uncached utterances in
    one batched model pass. Responses, cache state, probes and metrics are
    identical to [List.map (process ~attempt t)] over the same list;
    batches with an active fault schedule, an enabled tracer, or any
    per-request deadline fall back to exactly that sequential path. *)

val swap_model : t -> Genie_parser_model.Model.t -> unit
(** Atomically (from this engine's point of view: it must not be processing
    a request, which {!Server.swap_model} guarantees by running between
    batches) replaces the model — taking the usual private fork — and
    clears the parse cache, whose entries belong to the old model. The
    compiled-program cache is kept: bytecode depends only on the canonical
    program text. *)

val cache_stats : t -> Parse_cache.stats

val compile_cache_stats : t -> Genie_runtime.Compile_cache.stats
(** All zeros when the engine was created with [compiled:false]. *)

val worker : t -> int
