(** One worker's single-request processing path: tokenize -> parse-cache
    lookup -> aligner decode on a miss -> optional runtime execution, with
    per-stage timing.

    An engine owns everything a request touches that is not thread-safe: a
    private LRU parse cache, a private {!Genie_runtime.Exec.env}, and a
    private handle on the (otherwise shared, read-only) aligner model whose
    predict-time scratch cache is copied per engine. Each engine must only
    ever be driven from one domain at a time; metrics are shared and
    atomic. *)

open Genie_thingtalk

type t

val create :
  lib:Schema.Library.t ->
  model:Genie_parser_model.Aligner.t ->
  cache_capacity:int ->
  metrics:Metrics.t ->
  worker:int ->
  ?seed:int ->
  unit ->
  t
(** [seed] (default [worker]) seeds the engine's runtime environment. *)

val process : t -> Request.t -> Response.t
(** Never raises: parser and runtime exceptions are absorbed into the
    response's [error] field and counted in the metrics. *)

val cache_stats : t -> Parse_cache.stats
val worker : t -> int
