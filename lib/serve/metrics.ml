(* Atomic serving metrics.

   Latencies go into a geometric histogram: bucket 0 holds everything below
   [base_ns]; bucket i >= 1 holds [base_ns * ratio^(i-1), base_ns * ratio^i).
   With base 1us and ratio 1.25, 128 buckets span 1us to ~2000s with <= 12%
   relative error per bucket -- plenty for p50/p95/p99 reporting.

   Counters partition the requests: every response recorded lands in exactly
   one of ok / no_parse / errors / timeouts / shed, so in any snapshot
   [requests = ok + no_parse + errors + timeouts + shed]. Shed requests did
   no work and are not filed in the latency histogram; retries and degraded
   are orthogonal counters (a degraded answer is an ok). *)

module A = Genie_util.Atomic_counter
module Probe = Genie_observe.Probe

let base_ns = 1_000.0
let ratio = 1.25
let n_buckets = 128
let log_ratio = log ratio

(* The histogram's ~12% relative error is fine at scale but real on tiny
   samples — a single 5ms request reports as 4.9-or-so, and everything under
   [base_ns] collapses into bucket 0. So the first [raw_capacity] samples
   are also kept verbatim, and percentiles are exact (nearest-rank) until
   the raw window overflows. *)
let raw_capacity = 64

type outcome = [ `Ok | `No_parse | `Error | `Timeout ]

type t = {
  requests : A.t;
  ok : A.t;
  errors : A.t;
  no_parse : A.t;
  timeouts : A.t;
  shed : A.t;
  retries : A.t;
  degraded : A.t;
  exec_runs : A.t;
  sum_latency_ns : A.t;
  buckets : A.t array;
  raw : A.t array;  (* first [raw_capacity] latency samples, verbatim ns *)
  raw_n : A.t;  (* total samples ever offered to [raw] *)
  probe : Probe.t;
}

type snapshot = {
  requests : int;
  ok : int;
  errors : int;
  no_parse : int;
  timeouts : int;
  shed : int;
  retries : int;
  degraded : int;
  exec_runs : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  stages : (string * int) list;
}

let create () =
  { requests = A.create ();
    ok = A.create ();
    errors = A.create ();
    no_parse = A.create ();
    timeouts = A.create ();
    shed = A.create ();
    retries = A.create ();
    degraded = A.create ();
    exec_runs = A.create ();
    sum_latency_ns = A.create ();
    buckets = Array.init n_buckets (fun _ -> A.create ());
    raw = Array.init raw_capacity (fun _ -> A.create ());
    raw_n = A.create ();
    probe = Probe.create () }

let probe (t : t) = t.probe

let bucket_of_ns ns =
  if ns < base_ns then 0
  else min (n_buckets - 1) (1 + int_of_float (log (ns /. base_ns) /. log_ratio))

(* geometric midpoint of a bucket's range *)
let bucket_value = function
  | 0 -> base_ns /. 2.0
  | i -> base_ns *. (ratio ** (float_of_int i -. 0.5))

let record (t : t) ?(outcome = `Ok) ~latency_ns () =
  A.incr t.requests;
  A.incr
    (match outcome with
    | `Ok -> t.ok
    | `No_parse -> t.no_parse
    | `Error -> t.errors
    | `Timeout -> t.timeouts);
  A.add t.sum_latency_ns (int_of_float latency_ns);
  let i = A.fetch_add t.raw_n 1 in
  if i < raw_capacity then A.set t.raw.(i) (int_of_float latency_ns);
  A.incr t.buckets.(bucket_of_ns latency_ns)

let incr_shed (t : t) =
  A.incr t.requests;
  A.incr t.shed

let incr_retries (t : t) = A.incr t.retries
let incr_degraded (t : t) = A.incr t.degraded
let incr_exec_runs (t : t) = A.incr t.exec_runs

(* nearest-rank percentile over the verbatim samples *)
let percentile_raw (t : t) ~n p =
  let vals = Array.init n (fun i -> A.get t.raw.(i)) in
  Array.sort compare vals;
  let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
  float_of_int vals.(min (n - 1) (rank - 1))

let percentile_ns (t : t) p =
  let total = Array.fold_left (fun acc c -> acc + A.get c) 0 t.buckets in
  if total = 0 then 0.0
  else if total <= raw_capacity && A.get t.raw_n = total then
    percentile_raw t ~n:total p
  else begin
    let target =
      max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int total)))
    in
    let seen = ref 0 and result = ref (bucket_value (n_buckets - 1)) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + A.get c;
           if !seen >= target then begin
             result := bucket_value i;
             raise Exit
           end)
         t.buckets
     with Exit -> ());
    !result
  end

let snapshot (t : t) =
  (* the histogram holds one sample per non-shed request *)
  let samples = Array.fold_left (fun acc c -> acc + A.get c) 0 t.buckets in
  let mean_ms =
    if samples = 0 then 0.0
    else float_of_int (A.get t.sum_latency_ns) /. float_of_int samples /. 1e6
  in
  { requests = A.get t.requests;
    ok = A.get t.ok;
    errors = A.get t.errors;
    no_parse = A.get t.no_parse;
    timeouts = A.get t.timeouts;
    shed = A.get t.shed;
    retries = A.get t.retries;
    degraded = A.get t.degraded;
    exec_runs = A.get t.exec_runs;
    mean_ms;
    p50_ms = percentile_ns t 50.0 /. 1e6;
    p95_ms = percentile_ns t 95.0 /. 1e6;
    p99_ms = percentile_ns t 99.0 /. 1e6;
    stages = Probe.counts t.probe }

let reset (t : t) =
  A.reset t.requests;
  A.reset t.ok;
  A.reset t.errors;
  A.reset t.no_parse;
  A.reset t.timeouts;
  A.reset t.shed;
  A.reset t.retries;
  A.reset t.degraded;
  A.reset t.exec_runs;
  A.reset t.sum_latency_ns;
  Array.iter A.reset t.buckets;
  Array.iter A.reset t.raw;
  A.reset t.raw_n;
  Probe.reset t.probe

let pp_snapshot fmt s =
  Format.fprintf fmt
    "requests %d  ok %d  errors %d  no-parse %d  timeouts %d  shed %d  \
     retries %d  degraded %d  exec %d  mean %.2fms  p50 %.2fms  p95 %.2fms  \
     p99 %.2fms"
    s.requests s.ok s.errors s.no_parse s.timeouts s.shed s.retries s.degraded
    s.exec_runs s.mean_ms s.p50_ms s.p95_ms s.p99_ms
