(** Synthetic assistant traffic: utterances sampled from a corpus under a
    Zipfian popularity distribution, so repeated commands give the parse
    cache the locality real assistant traffic has. *)

type t

val create :
  ?s:float -> rng:Genie_util.Rng.t -> utterances:string list -> unit -> t
(** Builds a sampler over the distinct utterances of [utterances]. Popularity
    rank is a random permutation drawn from [rng]; rank [r] (1-based) gets
    weight [1 / r^s] ([s] defaults to 1.1 — steeper [s] means heavier
    repetition). Raises [Invalid_argument] on an empty corpus. *)

val distinct : t -> int
(** Number of distinct utterances in the sampler. *)

val sample : t -> string
(** Draws one utterance (mutates the sampler's rng). *)

val generate :
  ?s:float ->
  ?execute:bool ->
  ?ticks:int ->
  ?deadline_ms:float ->
  rng:Genie_util.Rng.t ->
  utterances:string list ->
  int ->
  Request.t list
(** [generate ~rng ~utterances n] is [n] requests with ids [0 .. n-1] drawn
    from a fresh sampler, all carrying [deadline_ms] when given.
    Deterministic for a given rng seed. *)
