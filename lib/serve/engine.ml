(* The per-worker request engine.

   Thread-safety inventory of the shared aligner model (Aligner.t): after
   training, predict only *reads* the inventory / clause / counter tables --
   with one exception, the [explainer] memo table, which predict fills
   lazily per unseen word. Concurrent Hashtbl writes are unsafe under
   domains, so each engine takes a shallow copy of the model record with its
   own copy of that one table; everything else stays physically shared.

   Fault injection: an engine created with a fault raises
   [Fault.Injected_crash] out of [process] for scheduled (id, attempt)
   pairs -- the one exception to "process never raises" -- and adds the
   schedule's injected latency to scheduled requests' decode stage. Injected
   latency lives on a virtual clock by default ([sleep = false]): it is
   added to the reported timings and counted against the request's deadline
   without spending wall-clock time, so deadline outcomes are exact and the
   test suite stays fast. *)

open Genie_thingtalk
module Aligner = Genie_parser_model.Aligner

type t = {
  lib : Schema.Library.t;
  model : Aligner.t;  (* private handle: own [explainer] scratch table *)
  cache : Aligner.prediction Parse_cache.t;
  env : Genie_runtime.Exec.env;
  metrics : Metrics.t;
  fault : Fault.t;
  worker : int;
}

let create ~lib ~model ~cache_capacity ~metrics ~worker ?seed
    ?(fault = Fault.none) () =
  let seed = Option.value seed ~default:worker in
  let model =
    { model with
      Aligner.explainer = Hashtbl.copy model.Aligner.explainer }
  in
  { lib;
    model;
    cache = Parse_cache.create ~capacity:cache_capacity;
    env = Genie_runtime.Exec.create ~seed lib;
    metrics;
    fault;
    worker }

let now_ns () = Unix.gettimeofday () *. 1e9

let process ?(attempt = 0) t (req : Request.t) : Response.t =
  let id = req.Request.id in
  (* The crash decision comes before any real work — in particular before
     the cache lookup — so a schedule's outcomes are a pure function of
     (seed, id, attempt): independent of cache state, batch composition, and
     worker count. A crash mid-cache-hit is as realistic as one mid-decode,
     and determinism across serving paths is worth far more. *)
  if Fault.crashes t.fault ~id ~attempt then raise Fault.Injected_crash;
  let t0 = now_ns () in
  let key = Request.cache_key req.Request.utterance in
  let tokens = Genie_util.Tok.tokenize req.Request.utterance in
  let t1 = now_ns () in
  (* injected latency not actually slept accumulates on a virtual clock that
     shifts every later stage boundary *)
  let skew = ref 0.0 in
  let pred, from_cache, parse_error =
    match Parse_cache.find t.cache key with
    | Some p -> (p, true, None)
    | None -> (
        let inject = Fault.latency_ns t.fault ~id in
        if inject > 0.0 then
          if (Fault.spec t.fault).Fault.sleep then Unix.sleepf (inject /. 1e9)
          else skew := !skew +. inject;
        match Aligner.predict t.model tokens with
        | p ->
            Parse_cache.add t.cache key p;
            (p, false, None)
        | exception e -> (Aligner.no_prediction, false, Some (Printexc.to_string e)))
  in
  let t2 = now_ns () +. !skew in
  let past_deadline at =
    match req.Request.deadline_ns with
    | Some d -> at -. t0 > d
    | None -> false
  in
  (* Cache hits always answer: the deadline guards the expensive decode and
     execute paths, and a hit costs neither. *)
  if (not from_cache) && past_deadline t2 then begin
    Metrics.record t.metrics ~outcome:`Timeout ~latency_ns:(t2 -. t0) ();
    { Response.id;
      utterance = req.Request.utterance;
      status = Response.Timeout;
      program = None;
      program_text = None;
      nn_tokens = [];
      score = 0.0;
      from_cache = false;
      degraded = false;
      attempts = attempt + 1;
      worker = t.worker;
      notifications = 0;
      side_effects = 0;
      error = None;
      timing =
        { Response.tokenize_ns = t1 -. t0;
          parse_ns = t2 -. t1;
          exec_ns = 0.0;
          total_ns = t2 -. t0 } }
  end
  else begin
    let notifications, side_effects, exec_error =
      match (req.Request.execute, pred.Aligner.program) with
      | true, Some p -> (
          match Genie_runtime.Exec.run ~ticks:req.Request.ticks t.env p with
          | ns, effects ->
              Metrics.incr_exec_runs t.metrics;
              (List.length ns, List.length effects, None)
          | exception e -> (0, 0, Some (Printexc.to_string e)))
      | _ -> (0, 0, None)
    in
    let t3 = now_ns () +. !skew in
    let error =
      match parse_error with Some _ -> parse_error | None -> exec_error
    in
    let timed_out = (not from_cache) && past_deadline t3 in
    let status =
      if timed_out then Response.Timeout
      else if Option.is_some error then Response.Error
      else if Option.is_none pred.Aligner.program then Response.No_parse
      else Response.Ok
    in
    let outcome =
      match status with
      | Response.Timeout -> `Timeout
      | Response.Error -> `Error
      | Response.No_parse -> `No_parse
      | _ -> `Ok
    in
    Metrics.record t.metrics ~outcome ~latency_ns:(t3 -. t0) ();
    { Response.id;
      utterance = req.Request.utterance;
      status;
      program = (if timed_out then None else pred.Aligner.program);
      program_text =
        (if timed_out then None
         else Option.map Printer.program_to_string pred.Aligner.program);
      nn_tokens = (if timed_out then [] else pred.Aligner.nn_tokens);
      score = pred.Aligner.score;
      from_cache;
      degraded = false;
      attempts = attempt + 1;
      worker = t.worker;
      notifications;
      side_effects;
      error;
      timing =
        { Response.tokenize_ns = t1 -. t0;
          parse_ns = t2 -. t1;
          exec_ns = t3 -. t2;
          total_ns = t3 -. t0 } }
  end

let cache_stats t = Parse_cache.stats t.cache
let worker t = t.worker
