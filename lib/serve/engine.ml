(* The per-worker request engine.

   Thread-safety inventory of the shared aligner model (Aligner.t): after
   training, predict only *reads* the inventory / clause / counter tables --
   with one exception, the [explainer] memo table, which predict fills
   lazily per unseen word. Concurrent Hashtbl writes are unsafe under
   domains, so each engine takes a shallow copy of the model record with its
   own copy of that one table; everything else stays physically shared. *)

open Genie_thingtalk
module Aligner = Genie_parser_model.Aligner

type t = {
  lib : Schema.Library.t;
  model : Aligner.t;  (* private handle: own [explainer] scratch table *)
  cache : Aligner.prediction Parse_cache.t;
  env : Genie_runtime.Exec.env;
  metrics : Metrics.t;
  worker : int;
}

let create ~lib ~model ~cache_capacity ~metrics ~worker ?seed () =
  let seed = Option.value seed ~default:worker in
  let model =
    { model with
      Aligner.explainer = Hashtbl.copy model.Aligner.explainer }
  in
  { lib;
    model;
    cache = Parse_cache.create ~capacity:cache_capacity;
    env = Genie_runtime.Exec.create ~seed lib;
    metrics;
    worker }

let now_ns () = Unix.gettimeofday () *. 1e9

let process t (req : Request.t) : Response.t =
  let t0 = now_ns () in
  let key = Request.cache_key req.Request.utterance in
  let tokens = Genie_util.Tok.tokenize req.Request.utterance in
  let t1 = now_ns () in
  let pred, from_cache, parse_error =
    match Parse_cache.find t.cache key with
    | Some p -> (p, true, None)
    | None -> (
        match Aligner.predict t.model tokens with
        | p ->
            Parse_cache.add t.cache key p;
            (p, false, None)
        | exception e ->
            Metrics.incr_errors t.metrics;
            (Aligner.no_prediction, false, Some (Printexc.to_string e)))
  in
  let t2 = now_ns () in
  let notifications, side_effects, exec_error =
    match (req.Request.execute, pred.Aligner.program) with
    | true, Some p -> (
        match Genie_runtime.Exec.run ~ticks:req.Request.ticks t.env p with
        | ns, effects ->
            Metrics.incr_exec_runs t.metrics;
            (List.length ns, List.length effects, None)
        | exception e ->
            Metrics.incr_errors t.metrics;
            (0, 0, Some (Printexc.to_string e)))
    | _ -> (0, 0, None)
  in
  let t3 = now_ns () in
  if Option.is_none pred.Aligner.program && Option.is_none parse_error then
    Metrics.incr_no_parse t.metrics;
  Metrics.record t.metrics ~latency_ns:(t3 -. t0);
  { Response.id = req.Request.id;
    utterance = req.Request.utterance;
    program = pred.Aligner.program;
    program_text =
      Option.map (Printer.program_to_string) pred.Aligner.program;
    nn_tokens = pred.Aligner.nn_tokens;
    score = pred.Aligner.score;
    from_cache;
    worker = t.worker;
    notifications;
    side_effects;
    error = (match parse_error with Some _ -> parse_error | None -> exec_error);
    timing =
      { Response.tokenize_ns = t1 -. t0;
        parse_ns = t2 -. t1;
        exec_ns = t3 -. t2;
        total_ns = t3 -. t0 } }

let cache_stats t = Parse_cache.stats t.cache
let worker t = t.worker
