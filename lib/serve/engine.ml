(* The per-worker request engine.

   Thread-safety inventory of the shared model: a [Model.t] handle carries
   per-handle mutable scratch (the aligner's lazily-filled [explainer] memo,
   the seq2seq's tensor arena) that is unsafe to share across domains, so
   each engine [Model.fork]s its own handle; the heavy read-only state
   (statistical tables, weights) stays physically shared behind the forks.

   Fault injection: an engine created with a fault raises
   [Fault.Injected_crash] out of [process] for scheduled (id, attempt)
   pairs -- the one exception to "process never raises" -- and adds the
   schedule's injected latency to scheduled requests' decode stage. Injected
   latency lives on a virtual clock by default ([sleep = false]): it is
   added to the reported timings and counted against the request's deadline
   without spending wall-clock time, so deadline outcomes are exact and the
   test suite stays fast. *)

open Genie_thingtalk
module Model = Genie_parser_model.Model
module Tracer = Genie_observe.Tracer
module Span = Genie_observe.Span
module Probe = Genie_observe.Probe

(* A parse-cache entry memoizes the canonical printed form alongside the
   prediction: computed once per parse miss, it serves every later response
   (no re-stringification on the hot path) and keys the compiled-program
   cache. Aligner predictions are canonicalized by default, so the printed
   text is the canonical form. *)
type cached = { pred : Model.prediction; text : string option }

type t = {
  lib : Schema.Library.t;
  mutable model : Model.t;  (* private fork: own mutable scratch *)
  cache : cached Parse_cache.t;
  env : Genie_runtime.Exec.env;
  metrics : Metrics.t;
  fault : Fault.t;
  worker : int;
  tracer : Tracer.t;  (* records into slot [worker] *)
  compiled : bool;
  ccache : Genie_runtime.Compile_cache.t;  (* worker-private, like [cache] *)
}

let create ~lib ~model ~cache_capacity ~metrics ~worker ?seed
    ?(fault = Fault.none) ?(tracer = Tracer.disabled) ?(compiled = true)
    ?compile_cache_capacity () =
  let seed = Option.value seed ~default:worker in
  let model = model.Model.fork () in
  let ccache_capacity = Option.value compile_cache_capacity ~default:cache_capacity in
  { lib;
    model;
    cache = Parse_cache.create ~capacity:cache_capacity;
    env = Genie_runtime.Exec.create ~seed lib;
    metrics;
    fault;
    worker;
    tracer;
    compiled;
    ccache = Genie_runtime.Compile_cache.create ~capacity:ccache_capacity }

(* Execute through the compiler: cached compiled programs skip typecheck and
   lowering entirely, keyed on the memoized canonical text. Compilation
   errors propagate exactly like interpreter errors (byte-identical
   messages, nothing cached), so the caller's handler is unchanged. *)
let exec_program t ~probe ~compiled_now ~text ~ticks p =
  if not t.compiled then Genie_runtime.Exec.run ~ticks t.env p
  else begin
    let key =
      match text with Some s -> s | None -> Printer.program_to_string p
    in
    let c =
      match Genie_runtime.Compile_cache.find t.ccache key with
      | Some c ->
          Probe.incr probe Probe.Compile_hit;
          c
      | None ->
          Probe.incr probe Probe.Compile_miss;
          let c = Genie_runtime.Compile.compile t.lib p in
          Probe.incr probe Probe.Compile;
          Genie_runtime.Compile_cache.add t.ccache key c;
          compiled_now := true;
          c
    in
    Genie_runtime.Compile.run ~ticks t.env c
  end

let now_ns () = Unix.gettimeofday () *. 1e9

let process ?(attempt = 0) ?preparsed t (req : Request.t) : Response.t =
  let id = req.Request.id in
  let probe = Metrics.probe t.metrics in
  (* The crash decision comes before any real work — in particular before
     the cache lookup — so a schedule's outcomes are a pure function of
     (seed, id, attempt): independent of cache state, batch composition, and
     worker count. A crash mid-cache-hit is as realistic as one mid-decode,
     and determinism across serving paths is worth far more. *)
  if Fault.crashes t.fault ~id ~attempt then begin
    Probe.incr probe Probe.Crash;
    if Tracer.enabled t.tracer then
      Tracer.record t.tracer ~slot:t.worker
        (Span.v ~seed:(Tracer.seed t.tracer) ~request:id ~attempt ~seq:0
           ~start_ns:(now_ns ()) ~dur_ns:0.0 "crash");
    raise Fault.Injected_crash
  end;
  let t0 = now_ns () in
  let key = Request.cache_key req.Request.utterance in
  let tokens = Genie_util.Tok.tokenize req.Request.utterance in
  let t1 = now_ns () in
  Probe.incr probe Probe.Tokenize;
  (* injected latency not actually slept accumulates on a virtual clock that
     shifts every later stage boundary *)
  let skew = ref 0.0 in
  let injected = ref false in
  (* decode sub-spans hang off the parse span, whose id is a pure function
     of its coordinates — computable before the span itself is recorded *)
  let scope =
    if Tracer.enabled t.tracer then
      Tracer.scope t.tracer ~slot:t.worker ~request:id ~attempt
        ~parent:
          (Span.id_of ~seed:(Tracer.seed t.tracer) ~request:id ~attempt ~seq:3
             ~name:"parse")
    else None
  in
  let entry, from_cache, parse_error =
    match Parse_cache.find t.cache key with
    | Some e ->
        Probe.incr probe Probe.Cache_hit;
        (e, true, None)
    | None -> (
        Probe.incr probe Probe.Cache_miss;
        let inject = Fault.latency_ns t.fault ~id in
        if inject > 0.0 then begin
          injected := true;
          if (Fault.spec t.fault).Fault.sleep then Unix.sleepf (inject /. 1e9)
          else skew := !skew +. inject
        end;
        Probe.incr probe Probe.Parse;
        (* a batch pass may have parsed this key already (see
           [process_batch]); the cached-prediction value is identical to
           what [Model.predict] would return here *)
        let predict () =
          match preparsed with
          | Some f -> (
              match f key with
              | Some p -> p
              | None -> t.model.Model.predict ?scope tokens)
          | None -> t.model.Model.predict ?scope tokens
        in
        match predict () with
        | p ->
            (* print once per distinct parse; every response (and the
               compiled-program cache key) reuses this string *)
            let e = { pred = p; text = Option.map Printer.program_to_string p.Model.program } in
            Parse_cache.add t.cache key e;
            (e, false, None)
        | exception e ->
            ({ pred = Model.no_prediction; text = None }, false, Some (Printexc.to_string e)))
  in
  let pred = entry.pred in
  let t2 = now_ns () +. !skew in
  (* Spans are emitted after the fact from the stage boundaries already
     taken, so tracing adds no clock reads to the request path. *)
  let compiled_now = ref false in
  let trace ~t3 ~exec_ran ~status =
    if Tracer.enabled t.tracer then begin
      let seed = Tracer.seed t.tracer in
      let emit sp = Tracer.record t.tracer ~slot:t.worker sp in
      let root =
        Span.v ~seed ~request:id ~attempt ~seq:0
          ~attrs:[ ("status", Response.status_to_string status) ]
          ~start_ns:t0 ~dur_ns:(t3 -. t0) "request"
      in
      emit root;
      emit
        (Span.v ~seed ~request:id ~attempt ~seq:1 ~parent:root.Span.id
           ~start_ns:t0 ~dur_ns:(t1 -. t0) "tokenize");
      emit
        (Span.v ~seed ~request:id ~attempt ~seq:2 ~parent:root.Span.id
           ~attrs:[ ("cache", if from_cache then "hit" else "miss") ]
           ~start_ns:t1 ~dur_ns:0.0 "cache");
      if not from_cache then
        emit
          (Span.v ~seed ~request:id ~attempt ~seq:3 ~parent:root.Span.id
             ~attrs:(if !injected then [ ("injected", "true") ] else [])
             ~start_ns:t1 ~dur_ns:(t2 -. t1) "parse");
      if exec_ran then begin
        let exec_sp =
          Span.v ~seed ~request:id ~attempt ~seq:4 ~parent:root.Span.id
            ~start_ns:t2 ~dur_ns:(t3 -. t2) "exec"
        in
        emit exec_sp;
        (* a compile-cache miss lowered the program inside the exec stage *)
        if !compiled_now then
          emit
            (Span.v ~seed ~request:id ~attempt ~seq:5 ~parent:exec_sp.Span.id
               ~start_ns:t2 ~dur_ns:0.0 "compile")
      end
    end
  in
  let past_deadline at =
    match req.Request.deadline_ns with
    | Some d -> at -. t0 > d
    | None -> false
  in
  (* Cache hits always answer: the deadline guards the expensive decode and
     execute paths, and a hit costs neither. *)
  if (not from_cache) && past_deadline t2 then begin
    Metrics.record t.metrics ~outcome:`Timeout ~latency_ns:(t2 -. t0) ();
    trace ~t3:t2 ~exec_ran:false ~status:Response.Timeout;
    { Response.id;
      utterance = req.Request.utterance;
      status = Response.Timeout;
      program = None;
      program_text = None;
      nn_tokens = [];
      score = 0.0;
      from_cache = false;
      degraded = false;
      attempts = attempt + 1;
      worker = t.worker;
      notifications = 0;
      side_effects = 0;
      error = None;
      timing =
        { Response.tokenize_ns = t1 -. t0;
          parse_ns = t2 -. t1;
          exec_ns = 0.0;
          total_ns = t2 -. t0 } }
  end
  else begin
    let notifications, side_effects, exec_error, exec_ran =
      match (req.Request.execute, pred.Model.program) with
      | true, Some p -> (
          Probe.incr probe Probe.Exec;
          match
            exec_program t ~probe ~compiled_now ~text:entry.text
              ~ticks:req.Request.ticks p
          with
          | ns, effects ->
              Metrics.incr_exec_runs t.metrics;
              (List.length ns, List.length effects, None, true)
          | exception e -> (0, 0, Some (Printexc.to_string e), true))
      | _ -> (0, 0, None, false)
    in
    let t3 = now_ns () +. !skew in
    let error =
      match parse_error with Some _ -> parse_error | None -> exec_error
    in
    let timed_out = (not from_cache) && past_deadline t3 in
    let status =
      if timed_out then Response.Timeout
      else if Option.is_some error then Response.Error
      else if Option.is_none pred.Model.program then Response.No_parse
      else Response.Ok
    in
    let outcome =
      match status with
      | Response.Timeout -> `Timeout
      | Response.Error -> `Error
      | Response.No_parse -> `No_parse
      | _ -> `Ok
    in
    Metrics.record t.metrics ~outcome ~latency_ns:(t3 -. t0) ();
    trace ~t3 ~exec_ran ~status;
    { Response.id;
      utterance = req.Request.utterance;
      status;
      program = (if timed_out then None else pred.Model.program);
      program_text = (if timed_out then None else entry.text);
      nn_tokens = (if timed_out then [] else pred.Model.nn_tokens);
      score = pred.Model.score;
      from_cache;
      degraded = false;
      attempts = attempt + 1;
      worker = t.worker;
      notifications;
      side_effects;
      error;
      timing =
        { Response.tokenize_ns = t1 -. t0;
          parse_ns = t2 -. t1;
          exec_ns = t3 -. t2;
          total_ns = t3 -. t0 } }
  end

(* Batched serving: distinct uncached utterances are parsed in one
   [Model.predict_batch] pass (which shares decoding work across the
   batch), then every request is replayed through [process] in
   submission order with the batch predictions supplied. [Parse_cache.mem]
   peeks without touching recency or counters, and the replay performs the
   same find/add/exec/record sequence as the sequential path, so responses,
   cache state, probes and metrics are all identical to processing the
   requests one by one — intra-batch duplicate misses become hits on replay
   exactly as they would sequentially, and a key the peek missed (say,
   evicted mid-replay under capacity pressure) falls back to an inline
   [Model.predict] that returns the same value. Batches with an active
   fault schedule, an enabled tracer, or any per-request deadline take the
   sequential path unchanged: those features are specified against
   per-request timing and crash points, which batching would reorder. *)
let process_batch ?(attempt = 0) t (reqs : Request.t list) : Response.t list =
  let plain =
    Fault.spec t.fault = Fault.spec Fault.none
    && (not (Tracer.enabled t.tracer))
    && List.for_all (fun r -> r.Request.deadline_ns = None) reqs
  in
  if not plain then List.map (process ~attempt t) reqs
  else begin
    let seen = Hashtbl.create 64 in
    let missing =
      List.filter_map
        (fun r ->
          let key = Request.cache_key r.Request.utterance in
          if Parse_cache.mem t.cache key || Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (key, Genie_util.Tok.tokenize r.Request.utterance)
          end)
        reqs
    in
    let preds = t.model.Model.predict_batch (List.map snd missing) in
    let table = Hashtbl.create 64 in
    List.iter2 (fun (key, _) p -> Hashtbl.replace table key p) missing preds;
    List.map (process ~attempt ~preparsed:(Hashtbl.find_opt table) t) reqs
  end

(* Hot-swap: replace the model (with the usual private fork) and clear the
   parse cache, whose entries were computed by the old model. The caller —
   Server.swap_model, between run_batch calls — must guarantee no request
   is in flight on this engine; the pool's submit channel then publishes
   the write to the worker domain before its next job. The
   compiled-program cache survives: bytecode is a pure function of the
   canonical program text, not of the model that produced it. *)
let swap_model t model =
  t.model <- model.Model.fork ();
  Parse_cache.clear t.cache

let cache_stats t = Parse_cache.stats t.cache
let compile_cache_stats t = Genie_runtime.Compile_cache.stats t.ccache
let worker t = t.worker
