(** Serving metrics: atomic request counters and a lock-free latency
    histogram with percentile estimation.

    One [t] is shared by every worker of a server; all mutation goes through
    {!Genie_util.Atomic_counter}, so recording from several domains at once
    is safe. *)

type t

type snapshot = {
  requests : int;
  errors : int;  (** parser or runtime exceptions absorbed by the engine *)
  no_parse : int;  (** requests the parser returned no program for *)
  exec_runs : int;  (** requests that executed a program *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

val create : unit -> t

val record : t -> latency_ns:float -> unit
(** Counts one served request and files its end-to-end latency. *)

val incr_errors : t -> unit
val incr_no_parse : t -> unit
val incr_exec_runs : t -> unit

val percentile_ns : t -> float -> float
(** [percentile_ns t p] estimates the [p]-th latency percentile (0 < p <=
    100) in nanoseconds from the histogram buckets; 0 before any
    recording. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zeroes every counter and bucket. Not atomic as a whole; call it only
    while no worker is recording. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
