(** Serving metrics: atomic request counters and a lock-free latency
    histogram with percentile estimation.

    One [t] is shared by every worker of a server; all mutation goes through
    {!Genie_util.Atomic_counter}, so recording from several domains at once
    is safe.

    The outcome counters partition the requests: in every snapshot,
    [requests = ok + no_parse + errors + timeouts + shed]. [retries] and
    [degraded] are orthogonal (a retried or degraded request still resolves
    to exactly one outcome), as is [exec_runs]. *)

type t

type outcome = [ `Ok | `No_parse | `Error | `Timeout ]

type snapshot = {
  requests : int;  (** every response issued, shed included *)
  ok : int;
  errors : int;  (** absorbed exceptions and retry-exhausted requests *)
  no_parse : int;  (** requests the parser returned no program for *)
  timeouts : int;  (** requests whose deadline expired *)
  shed : int;  (** requests refused at admission ([Overloaded]) *)
  retries : int;  (** re-attempts after a transient failure *)
  degraded : int;  (** saturated-pool answers served from cache alone *)
  exec_runs : int;  (** requests that executed a program *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  stages : (string * int) list;
      (** Non-zero always-on stage counters from the attached
          {!Genie_observe.Probe}. *)
}

val create : unit -> t

val probe : t -> Genie_observe.Probe.t
(** The always-on stage counters folded into {!snapshot}[.stages]. Workers
    bump these whether or not a tracer is attached. *)

val record : t -> ?outcome:outcome -> latency_ns:float -> unit -> unit
(** Counts one served request under [outcome] (default [`Ok]) and files its
    end-to-end latency in the histogram. *)

val incr_shed : t -> unit
(** Counts one shed request (bumps [requests] and [shed]; no latency
    sample — shed responses do no work). *)

val incr_retries : t -> unit
val incr_degraded : t -> unit
val incr_exec_runs : t -> unit

val percentile_ns : t -> float -> float
(** [percentile_ns t p] is the [p]-th latency percentile (0 < p <= 100) in
    nanoseconds; 0 before any recording. Exact (nearest-rank over verbatim
    samples) while at most 64 latencies have been recorded — small samples
    would otherwise lose all sub-bucket resolution — and a geometric-
    histogram estimate (<= 12% relative error) beyond that. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zeroes every counter and bucket. Not atomic as a whole; call it only
    while no worker is recording. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
