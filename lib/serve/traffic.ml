(* Zipfian traffic sampling: cumulative weight array + binary search. *)

type t = {
  utterances : string array;  (* index = popularity rank - 1 *)
  cum : float array;  (* cum.(i) = total weight of ranks <= i+1 *)
  total : float;
  rng : Genie_util.Rng.t;
}

let create ?(s = 1.1) ~rng ~utterances () =
  let distinct = List.sort_uniq compare utterances in
  if distinct = [] then invalid_arg "Traffic.create: empty corpus";
  let ranked = Array.of_list (Genie_util.Rng.shuffle rng distinct) in
  let n = Array.length ranked in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cum.(i) <- !acc
  done;
  { utterances = ranked; cum; total = !acc; rng }

let distinct t = Array.length t.utterances

let sample t =
  let x = Genie_util.Rng.float t.rng t.total in
  (* first index with cum.(i) > x *)
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > x then hi := mid else lo := mid + 1
  done;
  t.utterances.(!lo)

let generate ?s ?(execute = false) ?(ticks = 3) ?deadline_ms ~rng ~utterances n =
  let sampler = create ?s ~rng ~utterances () in
  List.init n (fun id ->
      Request.make ~execute ~ticks ?deadline_ms ~id (sample sampler))
