(* Serving requests. *)

type t = {
  id : int;
  utterance : string;
  execute : bool;
  ticks : int;
  deadline_ns : float option;
}

let make ?(execute = false) ?(ticks = 3) ?deadline_ms ~id utterance =
  let deadline_ns = Option.map (fun ms -> ms *. 1e6) deadline_ms in
  { id; utterance; execute; ticks; deadline_ns }

(* The tokenizer lowercases and normalizes whitespace/punctuation, so the
   joined token sequence canonicalizes surface variation ("Tweet Hi!" and
   "tweet hi !" share a cache line). *)
let cache_key utterance = String.concat " " (Genie_util.Tok.tokenize utterance)
