(* Serving requests. *)

type t = { id : int; utterance : string; execute : bool; ticks : int }

let make ?(execute = false) ?(ticks = 3) ~id utterance =
  { id; utterance; execute; ticks }

(* The tokenizer lowercases and normalizes whitespace/punctuation, so the
   joined token sequence canonicalizes surface variation ("Tweet Hi!" and
   "tweet hi !" share a cache line). *)
let cache_key utterance = String.concat " " (Genie_util.Tok.tokenize utterance)
