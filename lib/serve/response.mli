(** A serving response: the parse (and optional execution result) for one
    request, with per-stage wall-clock timings. *)

open Genie_thingtalk

type timing = {
  tokenize_ns : float;
  parse_ns : float;  (** cache lookup + aligner decode on a miss *)
  exec_ns : float;  (** 0 when the request did not execute *)
  total_ns : float;
}

type t = {
  id : int;  (** copied from the request *)
  utterance : string;
  program : Ast.program option;  (** [None] when the parser found no parse *)
  program_text : string option;  (** surface syntax of [program] *)
  nn_tokens : string list;  (** the parser's NN-syntax token output *)
  score : float;  (** parser confidence score *)
  from_cache : bool;
  worker : int;  (** index of the engine that served the request *)
  notifications : int;  (** execution: notification count *)
  side_effects : int;  (** execution: side-effect count *)
  error : string option;  (** runtime error during execution, if any *)
  timing : timing;
}

val summary : t -> string
(** One-line rendering for CLI output. *)
