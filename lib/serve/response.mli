(** A serving response: the parse (and optional execution result) for one
    request, with per-stage wall-clock timings.

    Every submitted request gets exactly one response; the {!status} says
    how it was resolved. *)

open Genie_thingtalk

type status =
  | Ok  (** parsed (and executed, if asked) within its deadline *)
  | No_parse  (** the parser found no program *)
  | Timeout  (** the request's deadline expired before an answer was ready *)
  | Overloaded  (** shed at admission: the worker's queue was full *)
  | Error  (** parser/runtime exception, or retries exhausted; see [error] *)

val status_to_string : status -> string

type timing = {
  tokenize_ns : float;
  parse_ns : float;  (** cache lookup + aligner decode on a miss, including
                         any injected fault latency *)
  exec_ns : float;  (** 0 when the request did not execute *)
  total_ns : float;
}

val no_timing : timing
(** All-zero timings: the timing of a shed response, which did no work. *)

type t = {
  id : int;  (** copied from the request *)
  utterance : string;
  status : status;
  program : Ast.program option;  (** [None] unless [status] is [Ok] *)
  program_text : string option;  (** surface syntax of [program] *)
  nn_tokens : string list;  (** the parser's NN-syntax token output *)
  score : float;  (** parser confidence score *)
  from_cache : bool;
  degraded : bool;
      (** answered from the server's degraded-path cache because the pool
          was saturated; the parse is identical to a cold parse, but nothing
          executed *)
  attempts : int;  (** 1 + the number of retries this response took *)
  worker : int;  (** index of the engine that served (or would have served)
                     the request *)
  notifications : int;  (** execution: notification count *)
  side_effects : int;  (** execution: side-effect count *)
  error : string option;  (** parse/runtime error detail, if any *)
  timing : timing;
}

val summary : t -> string
(** One-line rendering for CLI output. *)
