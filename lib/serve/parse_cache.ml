(* The serve-layer parse cache is the generic LRU from Genie_util, kept
   under its historical name so engine code and tests read naturally. The
   same structure backs Genie_runtime.Compile_cache. *)

include Genie_util.Lru
