(** An LRU cache from normalized utterance keys to parse results.

    Assistant traffic repeats heavily (the same few commands are issued over
    and over), so a small cache in front of the aligner skips the whole
    decode on a hit. The cache is {e not} thread-safe: the server shards
    requests by key so each key lives in exactly one worker's private
    cache.

    The implementation is {!Genie_util.Lru} (shared with the runtime's
    compiled-program cache); the type equalities below let callers mix the
    two APIs freely. *)

type 'a t = 'a Genie_util.Lru.t

type stats = Genie_util.Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

val create : capacity:int -> 'a t
(** [capacity <= 0] disables caching (every lookup misses, nothing is
    stored). *)

val find : 'a t -> string -> 'a option
(** On a hit the entry becomes most-recently-used. Updates hit/miss
    counters. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts as most-recently-used, evicting the least-recently-used entry
    when over capacity. Re-adding an existing key replaces its value and
    refreshes its recency. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency or counters. *)

val length : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats
val clear : 'a t -> unit
(** Drops all entries; keeps the counters. *)

val keys_mru : 'a t -> string list
(** Keys from most- to least-recently-used (for tests and diagnostics). *)
