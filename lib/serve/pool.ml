(* Re-export: the domain worker pool moved to [Genie_conc] so non-serving
   batch work (sharded synthesis, augmentation) can fan out over it. Kept
   here so existing [Genie_serve.Pool] callers are unchanged. *)
include Genie_conc.Pool
