(** The serving front end: a parse cache, a pool of worker engines, and
    aggregated statistics, behind a batch request API.

    [workers <= 1] (the default) is the {e sequential} path: no domains are
    spawned and every request runs on the calling domain in submission
    order — fully deterministic, the configuration the test suite uses.
    [workers >= 2] spawns a {!Pool} and shards requests across workers by
    cache key, so each worker's private cache and runtime see a stable
    partition of the key space and a pooled run performs exactly the same
    set of aligner decodes as a sequential run. *)

open Genie_thingtalk

type t

type stats = {
  workers : int;
  requests : int;
  errors : int;
  no_parse : int;
  exec_runs : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  hit_rate : float;  (** hits / (hits + misses), 0 before any traffic *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  last_batch_requests : int;  (** size of the most recent [run_batch] *)
  last_batch_seconds : float;
  throughput_rps : float;  (** of the most recent [run_batch]; 0 before *)
}

val create :
  lib:Schema.Library.t ->
  model:Genie_parser_model.Aligner.t ->
  ?cache_capacity:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [cache_capacity] 4096 (per worker), [workers] 0 (sequential),
    [queue_capacity] 64 per worker, [seed] 0. *)

val of_artifacts :
  ?cache_capacity:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  Genie_core.Pipeline.artifacts ->
  t
(** A server over a trained pipeline's library and parser model. *)

val handle : t -> Request.t -> Response.t
(** Serves one request on the calling domain (on the engine its key shards
    to). Do not interleave with a concurrent {!run_batch}. *)

val run_batch : t -> Request.t list -> Response.t list
(** Serves a batch — through the pool when [workers >= 2], sequentially
    otherwise — and returns responses sorted by request id. Also records the
    batch's wall-clock time for {!stats}'s throughput. *)

val stats : t -> stats
val workers : t -> int

val shutdown : t -> unit
(** Joins pool domains, if any. Idempotent; the sequential path is a
    no-op. *)

val pp_stats : Format.formatter -> stats -> unit
