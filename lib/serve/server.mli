(** The serving front end: a parse cache, a pool of worker engines, and
    aggregated statistics, behind a batch request API — wrapped in the
    robustness policy: bounded-queue admission control, retry with
    exponential backoff + deterministic jitter, and cache-only graceful
    degradation under saturation.

    [workers <= 1] (the default) is the {e sequential} path: no domains are
    spawned and every request runs on the calling domain in submission
    order — fully deterministic, the configuration the test suite uses.
    [workers >= 2] spawns a {!Pool} and shards requests across workers by
    cache key, so each worker's private cache and runtime see a stable
    partition of the key space and a pooled run performs exactly the same
    set of model decodes as a sequential run. The server is polymorphic
    over {!Genie_parser_model.Model}: aligner and seq2seq backends serve
    through the same engines, caches and swap machinery.

    Failure semantics: every submitted request gets exactly one response —
    [Ok], [No_parse], [Timeout] (deadline expired), [Overloaded] (shed at
    admission) or [Error] (exception / retries exhausted) — and lands in
    exactly one of the metrics outcome counters. Under a {!Fault} schedule
    every decision is a deterministic function of the schedule's seed and
    the request ids. *)

open Genie_thingtalk

type t

type stats = {
  workers : int;
  requests : int;  (** every response issued, shed included *)
  ok : int;
  errors : int;
  no_parse : int;
  timeouts : int;
  shed : int;  (** answered [Overloaded] at admission *)
  retries : int;  (** re-attempts after transient failures *)
  degraded : int;  (** cache-only answers under saturation *)
  exec_runs : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  hit_rate : float;  (** hits / (hits + misses), 0 before any traffic *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  last_batch_requests : int;  (** size of the most recent [run_batch] *)
  last_batch_seconds : float;
  throughput_rps : float;  (** of the most recent [run_batch]; 0 before *)
  batches : int;  (** [run_batch] calls served so far *)
  total_seconds : float;  (** wall time across every [run_batch] call *)
  cumulative_rps : float;
      (** cumulative requests / cumulative elapsed across every [run_batch]
          call — the sustained figure; [throughput_rps] only reflects the
          most recent batch *)
  compile_hits : int;  (** compiled-program cache, summed across workers *)
  compile_misses : int;
  compile_evictions : int;
  compile_entries : int;
  model_digest : string;  (** {!Genie_parser_model.Model.digest} of the active model *)
  model_kind : string;  (** ["aligner"] / ["seq2seq"] — which backend is live *)
  swaps : int;  (** hot-swaps committed over the server's lifetime *)
}

val create :
  lib:Schema.Library.t ->
  model:Genie_parser_model.Model.t ->
  ?cache_capacity:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?fault:Fault.t ->
  ?admission_capacity:int ->
  ?degrade:bool ->
  ?max_retries:int ->
  ?retry_backoff_ms:float ->
  ?tracer:Genie_observe.Tracer.t ->
  ?compiled:bool ->
  ?compile_cache_capacity:int ->
  unit ->
  t
(** Defaults: [cache_capacity] 4096 (per worker), [workers] 0 (sequential),
    [queue_capacity] 64 per worker, [seed] 0, [fault] {!Fault.none},
    [admission_capacity] unlimited, [degrade] true, [max_retries] 2,
    [retry_backoff_ms] 1, [tracer] {!Genie_observe.Tracer.disabled},
    [compiled] true (execute requests run through {!Genie_runtime.Compile}
    with a per-worker compiled-program LRU — byte-identical responses to
    the tree-walking interpreter), [compile_cache_capacity] =
    [cache_capacity].

    [admission_capacity] bounds how many requests each worker accepts per
    {!run_batch} call; excess requests are answered from the degraded cache
    (when [degrade] and the utterance was parsed before) or shed with
    [Overloaded] — never blocked.

    [tracer] receives per-request stage spans from every worker engine plus
    coordinator events (retry, backoff, shed, degraded); create it with
    [slots = max 1 workers + 1] so each domain keeps its own ring. The
    always-on {!Genie_observe.Probe} stage counters on the server's metrics
    are maintained whether or not a tracer is attached. *)

val of_artifacts :
  ?cache_capacity:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?fault:Fault.t ->
  ?admission_capacity:int ->
  ?degrade:bool ->
  ?max_retries:int ->
  ?retry_backoff_ms:float ->
  ?tracer:Genie_observe.Tracer.t ->
  ?compiled:bool ->
  ?compile_cache_capacity:int ->
  Genie_core.Pipeline.artifacts ->
  t
(** A server over a trained pipeline's library and parser model (the
    aligner, wrapped with {!Genie_parser_model.Model.of_aligner}). *)

val handle : t -> Request.t -> Response.t
(** Serves one request on the calling domain (on the engine its key shards
    to), with the full retry policy but no admission check. Do not
    interleave with a concurrent {!run_batch}. *)

val run_batch : ?batched:bool -> t -> Request.t list -> Response.t list
(** Serves a batch — through the pool when [workers >= 2], sequentially
    otherwise — and returns exactly one response per request, sorted by
    request id. Also records the batch's wall-clock time for {!stats}'s
    throughput.

    With [~batched:true] (default false) each worker's admitted requests go
    through {!Engine.process_batch}, which parses all distinct uncached
    utterances in one batched model pass; responses and end-of-batch
    server state are identical to the per-request path. On a pooled server
    the whole group rides the persistent worker domains as one job per
    engine — a single pool crossing per worker per batch, which is what the
    network front end's micro-batched admission amortizes. The flag is
    ignored when the server carries a fault schedule (fault semantics are
    specified per sequential attempt), and traced or deadline-carrying
    batches fall back engine-side. *)

val swap_model :
  t ->
  Genie_parser_model.Model.t ->
  [ `Swapped of string | `Unchanged of string ]
(** Atomically swaps in a new model, returning the active model digest.
    Must be called between {!run_batch} calls (the network daemon does so
    from its event loop) — [run_batch] is synchronous, so at any such point
    no request is in flight and in-flight requests have by construction
    finished on the old weights. A genuinely new digest replaces every
    engine's model handle, clears every parse cache {e and} the
    coordinator's degraded cache (all memoize old-model output), bumps the
    [swap.commit] / [swap.cache_invalidate] probes and records a
    [swap.model] span; compiled-program caches survive (bytecode depends
    only on program text). Swapping across backends (aligner to seq2seq or
    back) is the same operation — the digest spaces are distinct, so a
    cross-kind swap always commits. A reload resolving to the
    already-active digest is [`Unchanged]: every cache stays warm and only
    [swap.noop] is bumped. *)

val model_digest : t -> string
(** The active model's digest, as reported in {!stats}. *)

val model_kind : t -> string
(** The active model's kind string, as reported in {!stats}. *)

val stats : t -> stats

val metrics_snapshot : t -> Metrics.snapshot
(** The raw outcome counters, for invariant checks
    ([requests = ok + no_parse + errors + timeouts + shed]). *)

val probe : t -> Genie_observe.Probe.t
(** The server's always-on stage counters. Exposed so front ends layered on
    top of the server (the network daemon) can count their own stages —
    accept, framing, queue, shed — into the same {!Metrics.snapshot}
    [.stages] list the engines feed. *)

val workers : t -> int

val shutdown : t -> unit
(** Joins pool domains, if any. Idempotent; the sequential path is a
    no-op. *)

val pp_stats : Format.formatter -> stats -> unit
