(* Generators for the realistic evaluation data of section 5.1.

   The paper gathers 1820 sentences from three sources: developers annotating
   sentences (developer data), crowdworkers writing commands from memory after
   seeing a cheatsheet (cheatsheet data), and IFTTT applet descriptions
   cleaned with the Table 2 rules (IFTTT data). Real users are unavailable in
   this reproduction, so each source is simulated by a generator that enforces
   its distinguishing distributional properties:

   - developer: clean wording close to (but not identical to) the template
     language, precise annotations, wide coverage;
   - cheatsheet: recall-from-memory phrasing -- aggressive lexical drift,
     dropped articles, and non-compositional idioms ("retweet", "autoforward")
     that no template produces;
   - IFTTT: terse trigger-action descriptions, processed by an implementation
     of the Table 2 cleanup rules. *)

open Genie_thingtalk
open Genie_templates

let synthesize_pool lib ~prims ~rules ~seed ~target =
  let rng = Genie_util.Rng.create seed in
  let g = Grammar.create lib ~prims ~rules ~rng () in
  Genie_synthesis.Engine.synthesize g
    { Genie_synthesis.Engine.default_config with
      seed;
      target_per_rule = target;
      max_depth = 5 }

let to_examples ~source start_id pairs =
  List.mapi
    (fun i (tokens, program) ->
      Genie_dataset.Example.make ~id:(start_id + i) ~tokens ~program
        ~source:(Genie_dataset.Example.Evaluation source) ())
    pairs

(* --- developer data ----------------------------------------------------------- *)

(* Developers write reasonably clean sentences; simulated as light, error-free
   paraphrases of held-out synthesized sentences. *)
let developer lib ~prims ~rules ~seed ~n : Genie_dataset.Example.t list =
  let rng = Genie_util.Rng.create (seed + 1) in
  let pool = synthesize_pool lib ~prims ~rules ~seed:(seed + 7000) ~target:200 in
  let chosen = Genie_util.Rng.sample rng n pool in
  let style =
    { Genie_crowd.Worker.default_style with error_p = 0.0; lazy_p = 0.3; synonym_rate = 0.35 }
  in
  let pairs =
    List.map
      (fun (tokens, program) ->
        (Genie_crowd.Worker.paraphrase ~style (Genie_util.Rng.split rng) tokens program, program))
      chosen
  in
  to_examples ~source:"developer" 1_000_000 pairs

(* --- cheatsheet data ----------------------------------------------------------- *)

(* The colloquial recall vocabulary: deliberately disjoint from both the
   template wording and the paraphrase-worker synonym table. *)
let recall_synonyms : (string list * string list list) list =
  let s a bs = (Genie_util.Tok.tokenize a, List.map Genie_util.Tok.tokenize bs) in
  [ s "get" [ "find"; "pull up"; "gimme" ];
    s "show me" [ "find"; "whats"; "check" ];
    s "tell me" [ "check" ];
    s "notify me" [ "ping me"; "buzz me"; "hit me up" ];
    s "let me know" [ "ping me" ];
    s "when" [ "each time"; "the moment" ];
    s "a cat picture" [ "cat pix"; "some kitty" ];
    s "emails" [ "my inbox"; "mail" ];
    s "send an email to" [ "shoot a mail to" ];
    s "picture" [ "pix"; "photo" ];
    s "pictures" [ "pix"; "photos" ];
    s "post" [ "put up"; "throw" ];
    s "the weather in" [ "weather" ];
    s "my dropbox files" [ "dropbox stuff" ];
    s "changes" [ "updates" ];
    s "play" [ "blast"; "put on" ];
    s "turn on" [ "flip on" ];
    s "turn off" [ "kill" ];
    s "tweets from" [ "tweets by" ] ]

let articles = [ "the"; "a"; "an"; "my"; "please" ]

(* Non-compositional idioms: whole-command phrasings for particular function
   combinations, the vocabulary the paper notes must be learned from real
   data ("retweet", "autoreply", "forward"). *)
let idioms (p : Ast.program) (rng : Genie_util.Rng.t) : string list option =
  let fns = List.sort_uniq compare (List.map Ast.Fn.to_string (Ast.program_functions p)) in
  let pick = Genie_util.Rng.pick rng in
  let render v = Genie_thingpedia.Prim.render_value ~quote:false v in
  let const name =
    List.assoc_opt name (Ast.program_constants p) |> Option.map render
  in
  match fns with
  | [ "@com.twitter.retweet"; "@com.twitter.timeline" ] ->
      let who = Option.value (const "author") ~default:"everyone" in
      Some (Genie_util.Tok.tokenize (pick
        [ "auto retweet " ^ who; "retweet whatever " ^ who ^ " posts";
          "retweet " ^ who ]))
  | [ "@com.gmail.forward"; "@com.gmail.inbox" ] ->
      let to_ = Option.value (const "to") ~default:"my other account" in
      Some (Genie_util.Tok.tokenize (pick
        [ "autoforward my mail to " ^ to_; "forward incoming email to " ^ to_ ]))
  | [ "@com.facebook.post_picture"; "@com.instagram.get_pictures" ] ->
      Some (Genie_util.Tok.tokenize (pick
        [ "cross post my instagram pix to facebook";
          "put my instagram photos on facebook" ]))
  | [ "@com.nytimes.get_front_page"; "@com.yandex.translate" ] ->
      Some (Genie_util.Tok.tokenize (pick
        [ "translate the nyt front page"; "nyt headlines translated" ]))
  | [ "@com.gmail.inbox"; "@com.gmail.reply" ] ->
      Some (Genie_util.Tok.tokenize "autoreply to my email")
  | _ -> None

let recall_rewrite rng (tokens : string list) (program : Ast.program) : string list =
  match idioms program rng with
  | Some t -> t
  | None ->
      let protected = Genie_crowd.Worker.protected_tokens program in
      let tokens =
        List.fold_left
          (fun toks (from_, tos) ->
            if List.exists (fun t -> List.mem t protected) from_ then toks
            else if Genie_util.Rng.flip rng 0.6 then
              match Genie_util.Tok.match_sub toks from_ with
              | Some (before, after) -> before @ Genie_util.Rng.pick rng tos @ after
              | None -> toks
            else toks)
          tokens recall_synonyms
      in
      (* drop articles and politeness words as people do when recalling *)
      List.filter
        (fun tok ->
          not (List.mem tok articles && Genie_util.Rng.flip rng 0.5))
        tokens

(* Cheatsheet users compose functions they remember, so a sizeable fraction of
   the resulting programs does not appear in the training set; [avoid]
   classifies a canonical program string as "seen in training". The generator
   keeps drawing until [fresh_fraction] of the set is unseen (or the pool is
   exhausted). *)
let cheatsheet lib ~prims ~rules ~seed ~n ?(avoid = fun _ -> false)
    ?(fresh_fraction = 0.3) () : Genie_dataset.Example.t list =
  let rng = Genie_util.Rng.create (seed + 2) in
  let pool = synthesize_pool lib ~prims ~rules ~seed:(seed + 8000) ~target:250 in
  let fresh, seen =
    List.partition (fun (_, p) -> not (avoid (Canonical.canonical_string lib p))) pool
  in
  let want_fresh = int_of_float (float_of_int n *. fresh_fraction) in
  let fresh_part = Genie_util.Rng.sample rng want_fresh fresh in
  let rest_pool =
    seen @ List.filter (fun x -> not (List.memq x fresh_part)) fresh
  in
  let chosen = fresh_part @ Genie_util.Rng.sample rng (n - List.length fresh_part) rest_pool in
  let pairs =
    List.map
      (fun (tokens, program) -> (recall_rewrite rng tokens program, program))
      chosen
  in
  to_examples ~source:"cheatsheet" 2_000_000 pairs

(* --- IFTTT data ------------------------------------------------------------------ *)

(* Raw applet descriptions exhibit the defects of Table 2; the cleanup rules
   are implemented below and applied before annotation, as the paper does. *)
type raw_description = { text : string list; program : Ast.program }

(* Drops articles and pronouns, but never inside a parameter value (the
   annotation must stay reachable from the description). *)
let terse rng ~protected tokens =
  List.filter
    (fun tok ->
      not
        (List.mem tok [ "the"; "a"; "an"; "my"; "me"; "i" ]
        && (not (List.mem tok protected))
        && Genie_util.Rng.flip rng 0.7))
    tokens

(* Generate a raw IFTTT-style description from a when-do compound, optionally
   injecting a Table 2 defect. *)
let raw_of_compound rng (wp_tokens : string list) (vp_tokens : string list)
    (program : Ast.program) : raw_description =
  let protected = Genie_crowd.Worker.protected_tokens program in
  let wp = terse rng ~protected wp_tokens in
  let vp = terse rng ~protected vp_tokens in
  let base =
    match Genie_util.Rng.int rng 3 with
    | 0 -> ("if" :: wp) @ ("then" :: vp)
    | 1 -> wp @ ("to" :: vp)
    | _ -> vp @ wp
  in
  let defected =
    match Genie_util.Rng.int rng 5 with
    | 0 -> List.map (fun t -> if t = "my" then "your" else t) base (* 2nd person *)
    | 1 ->
        (* placeholder parameter *)
        List.map
          (fun t -> if String.length t > 3 && Genie_util.Rng.flip rng 0.05 then "___" else t)
          base
    | 2 -> base @ [ "with"; "this"; "button" ] (* UI explanation *)
    | _ -> base
  in
  { text = defected; program }

(* Table 2 cleanup rules. *)
let cleanup_second_person tokens =
  List.map (fun t -> match t with "your" -> "my" | "you" -> "i" | t -> t) tokens

let cleanup_placeholders rng program tokens =
  (* replace ___ with a concrete value from the program when possible *)
  let consts = Ast.program_constants program in
  List.map
    (fun t ->
      if t = "___" then
        match consts with
        | [] -> "something"
        | cs ->
            Genie_thingpedia.Prim.render_value ~quote:false (snd (Genie_util.Rng.pick rng cs))
      else t)
    tokens

let cleanup_ui_explanation tokens =
  match Genie_util.Tok.match_sub tokens [ "with"; "this"; "button" ] with
  | Some (before, after) -> before @ after
  | None -> tokens

let cleanup_append_device lib program tokens =
  (* append the device name if the action skill is otherwise unmentioned *)
  ignore lib;
  match List.rev (Ast.program_functions program) with
  | last :: _ ->
      let cls_word =
        match List.rev (String.split_on_char '.' last.Ast.Fn.cls) with
        | w :: _ -> w
        | [] -> last.Ast.Fn.cls
      in
      if List.exists (fun t -> Genie_util.Tok.contains_substring ~sub:cls_word t) tokens
      then tokens
      else tokens @ [ "on"; cls_word ]
  | [] -> tokens

let cleanup lib rng (raw : raw_description) : string list =
  raw.text
  |> cleanup_second_person
  |> cleanup_placeholders rng raw.program
  |> cleanup_ui_explanation
  |> cleanup_append_device lib raw.program

(* Build the IFTTT set from wp x vp primitive pairs (IFTTT rules are a subset
   of ThingTalk: when-do compounds). *)
let ifttt lib ~prims ~seed ~n : Genie_dataset.Example.t list =
  let rng = Genie_util.Rng.create (seed + 3) in
  let g =
    Grammar.create lib ~prims ~rules:[] ~rng:(Genie_util.Rng.create (seed + 9000)) ()
  in
  let wps =
    List.filter (fun d -> Grammar.as_stream d <> None) (Grammar.terminals g "wp")
  in
  let vps =
    List.filter (fun d -> Grammar.as_action d <> None) (Grammar.terminals g "vp")
  in
  if wps = [] || vps = [] then []
  else begin
    let raws =
      List.init n (fun _ ->
          let w = Genie_util.Rng.pick rng wps in
          let v = Genie_util.Rng.pick rng vps in
          match (Grammar.as_stream w, Grammar.as_action v) with
          | Some s, Some a ->
              let program = { Ast.stream = s; query = None; action = a } in
              Some (raw_of_compound rng w.Derivation.tokens v.Derivation.tokens program)
          | _ -> None)
    in
    let pairs =
      List.filter_map
        (Option.map (fun raw -> (cleanup lib rng raw, raw.program)))
        raws
    in
    to_examples ~source:"ifttt" 3_000_000 pairs
  end
