(** Generators for the realistic evaluation data of paper section 5.1.

    The paper's 1820 evaluation sentences come from developers, from
    crowdworkers writing commands from memory after seeing a cheatsheet, and
    from IFTTT applet descriptions cleaned by the Table 2 rules. Real users
    are unavailable here, so each source is simulated by a generator that
    enforces its distinguishing distributional properties (see DESIGN.md). *)

open Genie_thingtalk

val developer :
  Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  seed:int ->
  n:int ->
  Genie_dataset.Example.t list
(** Clean but varied annotations: light error-free paraphrases of held-out
    synthesized commands. *)

val recall_rewrite :
  Genie_util.Rng.t -> string list -> Ast.program -> string list
(** Recall-from-memory phrasing: colloquial synonyms disjoint from both the
    template wording and the worker synonym table, dropped articles, and
    non-compositional idioms ("auto retweet X", "autoforward my mail") for
    specific function combinations. *)

val cheatsheet :
  Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:Genie_templates.Grammar.rule list ->
  seed:int ->
  n:int ->
  ?avoid:(string -> bool) ->
  ?fresh_fraction:float ->
  unit ->
  Genie_dataset.Example.t list
(** Cheatsheet-style commands. [avoid] marks canonical program strings seen
    in training; the generator fills [fresh_fraction] of the set with
    programs outside that set, mirroring the paper's statistic that a
    sizeable share of realistic data maps to untrained programs. *)

val ifttt :
  Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  seed:int ->
  n:int ->
  Genie_dataset.Example.t list
(** Terse trigger-action descriptions built from when/do primitives, with
    Table 2 defects injected and then removed by the cleanup rules below. *)

(** {2 The Table 2 cleanup rules} *)

val cleanup_second_person : string list -> string list
(** "Blink your light" -> "blink my light". *)

val cleanup_placeholders :
  Genie_util.Rng.t -> Ast.program -> string list -> string list
(** "set the temperature to ___" -> a concrete value from the annotation. *)

val cleanup_ui_explanation : string list -> string list
(** Removes "with this button"-style UI phrases. *)

val cleanup_append_device :
  Schema.Library.t -> Ast.program -> string list -> string list
(** Appends the device name when the description leaves it ambiguous ("let
    the team know when it rains" -> "... on slack"). *)
