(* Evaluation metrics (paper section 5).

   Program accuracy considers the result correct only if the output has the
   correct functions, parameters, joins and filters -- equivalent to the
   output matching the canonicalized annotated program exactly. Test sentences
   may carry several valid annotations. The error-analysis breakdown of
   section 5.5 (syntax / primitive-vs-compound / device / function accuracy)
   is also computed here. *)

open Genie_thingtalk

type metrics = {
  n : int;
  program_accuracy : float;
  function_accuracy : float; (* correct multiset of functions *)
  device_accuracy : float; (* correct set of skills *)
  prim_compound_accuracy : float; (* primitive vs compound identified *)
  syntax_ok : float; (* parses and type-checks *)
  wrong_param_value : float; (* right functions/filters, wrong copied value *)
  slot_f1 : float; (* micro-averaged (param, value) slot F1 *)
}

let zero_metrics =
  { n = 0; program_accuracy = 0.0; function_accuracy = 0.0; device_accuracy = 0.0;
    prim_compound_accuracy = 0.0; syntax_ok = 0.0; wrong_param_value = 0.0;
    slot_f1 = 0.0 }

let functions_multiset p =
  List.sort compare (List.map Ast.Fn.to_string (Ast.program_functions p))

let devices_set p =
  List.sort_uniq compare (List.map (fun f -> f.Ast.Fn.cls) (Ast.program_functions p))

(* The program with parameter values erased, for the wrong-value diagnostic. *)
let erase_values lib p =
  Canonical.normalize lib (Ast.map_constants (fun _ _ -> Value.Undefined) p)

(* The (param name, rendered value) multiset of a program, sorted. *)
let slots_of p =
  List.sort compare
    (List.map
       (fun (name, v) -> (name, Value.to_string v))
       (Ast.program_constants p))

(* Multiset intersection size of two sorted slot lists. *)
let rec slots_inter a b =
  match (a, b) with
  | [], _ | _, [] -> 0
  | x :: a', y :: b' ->
      let c = compare (x : string * string) y in
      if c = 0 then 1 + slots_inter a' b'
      else if c < 0 then slots_inter a' b
      else slots_inter a b'

(* Per-example slot counts (intersection, predicted, gold) against the
   best-matching annotation. All integers — the corpus-level micro F1 is
   computed once from the summed counts, so shard sums are exactly
   order-independent (no float accumulation anywhere). Per-example F1 is
   2i/(p+g) (1 when both sides are empty); annotations are compared by
   cross-multiplied rationals with a first-wins tie-break. *)
let slot_counts ~(gold : Ast.program list) (predicted : Ast.program option) =
  let pred_slots = match predicted with None -> [] | Some p -> slots_of p in
  let np = List.length pred_slots in
  let score g =
    let gs = slots_of g in
    let ng = List.length gs in
    let i = slots_inter pred_slots gs in
    (* f1 = 2i/(np+ng) as the rational (num, den); empty/empty is perfect *)
    let num, den = if np + ng = 0 then (1, 1) else (2 * i, np + ng) in
    ((num, den), (i, np, ng))
  in
  match gold with
  | [] -> (0, np, 0)
  | g0 :: rest ->
      let best =
        List.fold_left
          (fun (((bn, bd), _) as best) g ->
            let (((n, d), _) as cand) = score g in
            if n * bd > bn * d then cand else best)
          (score g0) rest
      in
      snd best

let evaluate_one lib ~(gold : Ast.program list) (predicted : Ast.program option) =
  let canon p = Canonical.canonical_string lib p in
  let gold_strs = List.map canon gold in
  match predicted with
  | None -> (false, false, false, false, false, false)
  | Some p ->
      let s = canon p in
      let correct = List.mem s gold_strs in
      let fn_ok = List.exists (fun g -> functions_multiset g = functions_multiset p) gold in
      let dev_ok = List.exists (fun g -> devices_set g = devices_set p) gold in
      let prim_ok = List.exists (fun g -> Ast.is_primitive g = Ast.is_primitive p) gold in
      let syntax = Typecheck.well_typed lib p in
      let wrong_value =
        (not correct)
        && List.exists (fun g -> canon (erase_values lib g) = canon (erase_values lib p)) gold
      in
      (correct, fn_ok, dev_ok, prim_ok, syntax, wrong_value)

(* --- integer count accumulation ---------------------------------------------

   Every metric is a ratio of integer counts; shards sum counts and the
   floats are computed once at the very end. Integer addition is
   associative, so the sharded driver is bitwise identical to the batched
   one at every worker count and shard size. *)

type counts = {
  c_n : int;
  c_acc : int;
  c_fn : int;
  c_dev : int;
  c_prim : int;
  c_syn : int;
  c_wrong : int;
  c_inter : int; (* slot multiset intersections *)
  c_pred : int; (* predicted slots *)
  c_gold : int; (* gold slots (best-matching annotation) *)
}

let zero_counts =
  { c_n = 0; c_acc = 0; c_fn = 0; c_dev = 0; c_prim = 0; c_syn = 0;
    c_wrong = 0; c_inter = 0; c_pred = 0; c_gold = 0 }

let add_counts a b =
  { c_n = a.c_n + b.c_n;
    c_acc = a.c_acc + b.c_acc;
    c_fn = a.c_fn + b.c_fn;
    c_dev = a.c_dev + b.c_dev;
    c_prim = a.c_prim + b.c_prim;
    c_syn = a.c_syn + b.c_syn;
    c_wrong = a.c_wrong + b.c_wrong;
    c_inter = a.c_inter + b.c_inter;
    c_pred = a.c_pred + b.c_pred;
    c_gold = a.c_gold + b.c_gold }

let count_chunk lib (examples : Genie_dataset.Example.t list)
    (predictions : Ast.program option list) : counts =
  List.fold_left2
    (fun c e predicted ->
      let gold = Genie_dataset.Example.all_programs e in
      let correct, fn_ok, dev_ok, prim_ok, syntax, wrong_value =
        evaluate_one lib ~gold predicted
      in
      let i, np, ng = slot_counts ~gold predicted in
      let b v = if v then 1 else 0 in
      { c_n = c.c_n + 1;
        c_acc = c.c_acc + b correct;
        c_fn = c.c_fn + b fn_ok;
        c_dev = c.c_dev + b dev_ok;
        c_prim = c.c_prim + b prim_ok;
        c_syn = c.c_syn + b syntax;
        c_wrong = c.c_wrong + b wrong_value;
        c_inter = c.c_inter + i;
        c_pred = c.c_pred + np;
        c_gold = c.c_gold + ng })
    zero_counts examples predictions

let metrics_of_counts (c : counts) : metrics =
  if c.c_n = 0 then zero_metrics
  else
    let f x = float_of_int x /. float_of_int c.c_n in
    { n = c.c_n;
      program_accuracy = f c.c_acc;
      function_accuracy = f c.c_fn;
      device_accuracy = f c.c_dev;
      prim_compound_accuracy = f c.c_prim;
      syntax_ok = f c.c_syn;
      wrong_param_value = f c.c_wrong;
      slot_f1 =
        (if c.c_pred + c.c_gold = 0 then 1.0
         else
           2.0 *. float_of_int c.c_inter
           /. float_of_int (c.c_pred + c.c_gold)) }

(* Scores a test set against predictions obtained in one batched pass --
   the whole-set prediction call lets the predictor amortize shared scoring
   work (see Aligner.predict_batch). Metrics are identical to the
   per-example driver as long as the batched predictor agrees with the
   per-example one. *)
let evaluate_batched lib
    (predict_batch : string list list -> Ast.program option list)
    (examples : Genie_dataset.Example.t list) : metrics =
  let n = List.length examples in
  if n = 0 then zero_metrics
  else begin
    let predictions =
      predict_batch (List.map (fun e -> e.Genie_dataset.Example.tokens) examples)
    in
    if List.length predictions <> n then
      invalid_arg "Eval.evaluate_batched: prediction count mismatch";
    metrics_of_counts (count_chunk lib examples predictions)
  end

let evaluate lib (predict : string list -> Ast.program option)
    (examples : Genie_dataset.Example.t list) : metrics =
  evaluate_batched lib (List.map predict) examples

(* Sharded evaluation: fixed-size shards of the test set fanned over a
   domain pool, each scored by one predict_batch call, merged in submission
   order (the synthesis-style ordered merge). Shard boundaries depend only
   on [shard_size], never on [workers], and the merge sums integers — so
   the accuracy table is bitwise identical at every worker count, including
   workers = 0 on the calling domain. *)
let evaluate_sharded ?(workers = 0) ?(shard_size = 32) lib
    (predict_batch : string list list -> Ast.program option list)
    (examples : Genie_dataset.Example.t list) : metrics =
  let shard_size = max 1 shard_size in
  let shards =
    let rec go acc = function
      | [] -> List.rev acc
      | rest ->
          let shard = List.filteri (fun i _ -> i < shard_size) rest in
          let rest' = List.filteri (fun i _ -> i >= shard_size) rest in
          go (shard :: acc) rest'
    in
    go [] examples
  in
  let chunk_counts =
    Genie_conc.Pool.map_list ~workers
      ~handler:(fun _slot shard ->
        let predictions =
          predict_batch
            (List.map (fun e -> e.Genie_dataset.Example.tokens) shard)
        in
        if List.length predictions <> List.length shard then
          invalid_arg "Eval.evaluate_sharded: prediction count mismatch";
        count_chunk lib shard predictions)
      shards
  in
  metrics_of_counts (List.fold_left add_counts zero_counts chunk_counts)

(* A Hash64 fold over the metric values' exact bit patterns: two metrics
   digest equal iff every float is bitwise identical. Pinned by
   test/golden/eval.digest (regold with EVAL_REGOLD=1). *)
let digest (m : metrics) : string =
  let module H = Genie_util.Hash64 in
  let h = H.int (H.string 0L "genie.eval") m.n in
  let h =
    List.fold_left
      (fun h x -> H.combine h (Int64.bits_of_float x))
      h
      [ m.program_accuracy; m.function_accuracy; m.device_accuracy;
        m.prim_compound_accuracy; m.syntax_ok; m.wrong_param_value;
        m.slot_f1 ]
  in
  H.to_hex h

(* mean +- half-range over several runs, as the paper reports *)
let mean_half_range (xs : float list) =
  match xs with
  | [] -> (0.0, 0.0)
  | xs ->
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      (mean, (mx -. mn) /. 2.0)

let pp_metrics fmt m =
  Format.fprintf fmt
    "n=%d acc=%.1f%% fn=%.1f%% dev=%.1f%% prim/comp=%.1f%% syntax=%.1f%% wrong-value=%.1f%% slot-f1=%.1f%%"
    m.n (100. *. m.program_accuracy) (100. *. m.function_accuracy)
    (100. *. m.device_accuracy)
    (100. *. m.prim_compound_accuracy)
    (100. *. m.syntax_ok) (100. *. m.wrong_param_value)
    (100. *. m.slot_f1)
