(* Evaluation metrics (paper section 5).

   Program accuracy considers the result correct only if the output has the
   correct functions, parameters, joins and filters -- equivalent to the
   output matching the canonicalized annotated program exactly. Test sentences
   may carry several valid annotations. The error-analysis breakdown of
   section 5.5 (syntax / primitive-vs-compound / device / function accuracy)
   is also computed here. *)

open Genie_thingtalk

type metrics = {
  n : int;
  program_accuracy : float;
  function_accuracy : float; (* correct multiset of functions *)
  device_accuracy : float; (* correct set of skills *)
  prim_compound_accuracy : float; (* primitive vs compound identified *)
  syntax_ok : float; (* parses and type-checks *)
  wrong_param_value : float; (* right functions/filters, wrong copied value *)
}

let zero_metrics =
  { n = 0; program_accuracy = 0.0; function_accuracy = 0.0; device_accuracy = 0.0;
    prim_compound_accuracy = 0.0; syntax_ok = 0.0; wrong_param_value = 0.0 }

let functions_multiset p =
  List.sort compare (List.map Ast.Fn.to_string (Ast.program_functions p))

let devices_set p =
  List.sort_uniq compare (List.map (fun f -> f.Ast.Fn.cls) (Ast.program_functions p))

(* The program with parameter values erased, for the wrong-value diagnostic. *)
let erase_values lib p =
  Canonical.normalize lib (Ast.map_constants (fun _ _ -> Value.Undefined) p)

let evaluate_one lib ~(gold : Ast.program list) (predicted : Ast.program option) =
  let canon p = Canonical.canonical_string lib p in
  let gold_strs = List.map canon gold in
  match predicted with
  | None -> (false, false, false, false, false, false)
  | Some p ->
      let s = canon p in
      let correct = List.mem s gold_strs in
      let fn_ok = List.exists (fun g -> functions_multiset g = functions_multiset p) gold in
      let dev_ok = List.exists (fun g -> devices_set g = devices_set p) gold in
      let prim_ok = List.exists (fun g -> Ast.is_primitive g = Ast.is_primitive p) gold in
      let syntax = Typecheck.well_typed lib p in
      let wrong_value =
        (not correct)
        && List.exists (fun g -> canon (erase_values lib g) = canon (erase_values lib p)) gold
      in
      (correct, fn_ok, dev_ok, prim_ok, syntax, wrong_value)

(* Scores a test set against predictions obtained in one batched pass --
   the whole-set prediction call lets the predictor amortize shared scoring
   work (see Aligner.predict_batch). Metrics are identical to the
   per-example driver as long as the batched predictor agrees with the
   per-example one. *)
let evaluate_batched lib
    (predict_batch : string list list -> Ast.program option list)
    (examples : Genie_dataset.Example.t list) : metrics =
  let n = List.length examples in
  if n = 0 then zero_metrics
  else begin
    let predictions =
      predict_batch (List.map (fun e -> e.Genie_dataset.Example.tokens) examples)
    in
    if List.length predictions <> n then
      invalid_arg "Eval.evaluate_batched: prediction count mismatch";
    let acc = ref 0 and fn = ref 0 and dev = ref 0 and prim = ref 0 in
    let syn = ref 0 and wrong = ref 0 in
    List.iter2
      (fun e predicted ->
        let correct, fn_ok, dev_ok, prim_ok, syntax, wrong_value =
          evaluate_one lib ~gold:(Genie_dataset.Example.all_programs e) predicted
        in
        if correct then incr acc;
        if fn_ok then incr fn;
        if dev_ok then incr dev;
        if prim_ok then incr prim;
        if syntax then incr syn;
        if wrong_value then incr wrong)
      examples predictions;
    let f x = float_of_int !x /. float_of_int n in
    { n;
      program_accuracy = f acc;
      function_accuracy = f fn;
      device_accuracy = f dev;
      prim_compound_accuracy = f prim;
      syntax_ok = f syn;
      wrong_param_value = f wrong }
  end

let evaluate lib (predict : string list -> Ast.program option)
    (examples : Genie_dataset.Example.t list) : metrics =
  evaluate_batched lib (List.map predict) examples

(* mean +- half-range over several runs, as the paper reports *)
let mean_half_range (xs : float list) =
  match xs with
  | [] -> (0.0, 0.0)
  | xs ->
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      (mean, (mx -. mn) /. 2.0)

let pp_metrics fmt m =
  Format.fprintf fmt
    "n=%d acc=%.1f%% fn=%.1f%% dev=%.1f%% prim/comp=%.1f%% syntax=%.1f%% wrong-value=%.1f%%"
    m.n (100. *. m.program_accuracy) (100. *. m.function_accuracy)
    (100. *. m.device_accuracy)
    (100. *. m.prim_compound_accuracy)
    (100. *. m.syntax_ok) (100. *. m.wrong_param_value)
