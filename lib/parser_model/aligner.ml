(* The Aligner semantic-parser backend.

   A fast statistical stand-in for the MQAN model (see DESIGN.md for the
   substitution argument) that preserves the causal structure of the paper's
   experiments:

   - the *skeleton inventory* (programs reachable by the decoder) comes from
     the training data, optionally extended by pretraining on a large
     synthesized program set -- the role of the pretrained decoder LM;
   - *lexical alignment* between sentence n-grams and program atoms is learned
     from (sentence, program) pairs -- synthesized data teaches
     compositionality across function combinations, paraphrases teach natural
     wording;
   - a *copy mechanism* fills string/entity slots with sentence spans, scored
     by per-parameter word statistics and gazette membership -- this is what
     parameter expansion trains.

   Decoding ranks candidate skeletons by alignment score plus prior, then
   fills slots. *)

open Genie_thingtalk

type config = {
  options : Nn_syntax.options; (* keyword-parameter / type-annotation ablations *)
  canonicalize : bool; (* ablation: canonical form of training targets *)
  use_decoder_lm : bool; (* ablation: pretrained program LM *)
  lm_programs : Ast.program list; (* the LM pretraining corpus *)
  gazette_size : int;
  seed : int;
  beam : int;
  max_candidates : int;
}

let default_config =
  { options = Nn_syntax.default_options;
    canonicalize = true;
    use_decoder_lm = true;
    lm_programs = [];
    gazette_size = 2000;
    seed = 123;
    beam = 6;
    max_candidates = 2500 }

type skeleton_entry = {
  skeleton : Skeleton.t;
  mutable count : float; (* training prior *)
  mutable lm_count : float; (* pretraining prior *)
}

(* A reusable program clause for the compositional decoder, with the atoms
   that ground it in the sentence. *)
type clause =
  | C_stream of Ast.stream
  | C_query of Ast.query
  | C_action of Ast.action

type clause_entry = {
  clause : clause;
  atoms : string list;
  mutable c_count : float;
  mutable c_lm : float;
}

type t = {
  cfg : config;
  lib : Schema.Library.t;
  inventory : (string, skeleton_entry) Hashtbl.t;
  by_function : (string, string list ref) Hashtbl.t; (* function atom -> skeleton keys *)
  (* alignment counts *)
  ngram_counts : Genie_util.Counter.t;
  atom_counts : Genie_util.Counter.t;
  pair_counts : Genie_util.Counter.t; (* "atom || ngram" *)
  (* copy-mechanism statistics: "param || word" *)
  slot_word_counts : Genie_util.Counter.t;
  slot_param_counts : Genie_util.Counter.t;
  (* full value strings seen per parameter *)
  slot_value_counts : Genie_util.Counter.t;
  (* exact-sentence memorization (neural models do this too) *)
  memo : (string, Genie_util.Counter.t) Hashtbl.t;
  gazettes : Genie_augment.Gazettes.t;
  gazette_sets : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* clause fragments for the compositional decoder: streams, queries and
     actions seen in training/pretraining, recombinable at decode time *)
  streams : (string, clause_entry) Hashtbl.t;
  queries : (string, clause_entry) Hashtbl.t;
  actions : (string, clause_entry) Hashtbl.t;
  (* per-model cache: word -> best explanation by any content atom *)
  explainer : (string, float) Hashtbl.t;
  mutable trained_examples : int;
}

let create ?(cfg = default_config) lib : t =
  let gazettes = Genie_augment.Gazettes.create ~size:cfg.gazette_size () in
  let gazette_sets = Hashtbl.create 32 in
  List.iter
    (fun (name, arr) ->
      let set = Hashtbl.create (Array.length arr) in
      Array.iter (fun v -> Hashtbl.replace set v ()) arr;
      Hashtbl.replace gazette_sets name set)
    gazettes.Genie_augment.Gazettes.pools;
  { cfg;
    lib;
    inventory = Hashtbl.create 4096;
    by_function = Hashtbl.create 512;
    ngram_counts = Genie_util.Counter.create ();
    atom_counts = Genie_util.Counter.create ();
    pair_counts = Genie_util.Counter.create ();
    slot_word_counts = Genie_util.Counter.create ();
    slot_param_counts = Genie_util.Counter.create ();
    slot_value_counts = Genie_util.Counter.create ();
    memo = Hashtbl.create 4096;
    gazettes;
    gazette_sets;
    streams = Hashtbl.create 512;
    queries = Hashtbl.create 1024;
    actions = Hashtbl.create 512;
    explainer = Hashtbl.create 1024;
    trained_examples = 0 }

(* --- training ---------------------------------------------------------------- *)

let pair_key atom gram = atom ^ " || " ^ gram

(* Random keyword-parameter order, used when the canonicalization ablation is
   off: the model then sees the same program in many serializations. *)
let shuffle_program rng (p : Ast.program) : Ast.program =
  let shuffle_inv (inv : Ast.invocation) =
    { inv with Ast.in_params = Genie_util.Rng.shuffle rng inv.Ast.in_params }
  in
  let rec q = function
    | Ast.Q_invoke inv -> Ast.Q_invoke (shuffle_inv inv)
    | Ast.Q_filter (inner, pred) -> Ast.Q_filter (q inner, pred)
    | Ast.Q_join (a, b, on) -> Ast.Q_join (q a, q b, on)
    | Ast.Q_aggregate { op; field; inner } -> Ast.Q_aggregate { op; field; inner = q inner }
  in
  let rec s = function
    | (Ast.S_now | Ast.S_attimer _ | Ast.S_timer _) as x -> x
    | Ast.S_monitor (inner, on_new) -> Ast.S_monitor (q inner, on_new)
    | Ast.S_edge (inner, pred) -> Ast.S_edge (s inner, pred)
  in
  { Ast.stream = s p.Ast.stream;
    query = Option.map q p.Ast.query;
    action =
      (match p.Ast.action with
      | Ast.A_notify -> Ast.A_notify
      | Ast.A_invoke inv -> Ast.A_invoke (shuffle_inv inv)) }

let prepare_program t rng (p : Ast.program) =
  if t.cfg.canonicalize then Canonical.normalize t.lib p else shuffle_program rng p

let register_skeleton t (sk : Skeleton.t) ~weight ~lm =
  let k = Skeleton.key sk in
  let entry =
    match Hashtbl.find_opt t.inventory k with
    | Some e -> e
    | None ->
        let e = { skeleton = sk; count = 0.0; lm_count = 0.0 } in
        Hashtbl.replace t.inventory k e;
        List.iter
          (fun fa ->
            let cell =
              match Hashtbl.find_opt t.by_function fa with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.replace t.by_function fa c;
                  c
            in
            cell := k :: !cell)
          (Skeleton.function_atoms sk);
        e
  in
  if lm then entry.lm_count <- entry.lm_count +. weight
  else entry.count <- entry.count +. weight

(* Register the clause fragments of a program for the compositional decoder.
   Clause atoms come from skeletonizing a minimal program around the clause. *)
let clause_atoms t (c : clause) =
  let wrap =
    match c with
    | C_stream st -> { Ast.stream = st; query = None; action = Ast.A_notify }
    | C_query q -> { Ast.stream = Ast.S_now; query = Some q; action = Ast.A_notify }
    | C_action a -> { Ast.stream = Ast.S_now; query = None; action = a }
  in
  let sk = Skeleton.of_program ~options:t.cfg.options t.lib wrap in
  List.filter (fun a -> a <> "now" && a <> "notify") (Skeleton.atoms sk)

let clause_key (c : clause) =
  match c with
  | C_stream st -> "s:" ^ Printer.stream_to_string st
  | C_query q -> "q:" ^ Printer.query_to_string q
  | C_action a -> "a:" ^ Printer.action_to_string a

let register_clause t tbl (c : clause) ~weight ~lm =
  let k = clause_key c in
  let entry =
    match Hashtbl.find_opt tbl k with
    | Some e -> e
    | None ->
        let e = { clause = c; atoms = clause_atoms t c; c_count = 0.0; c_lm = 0.0 } in
        Hashtbl.replace tbl k e;
        e
  in
  if lm then entry.c_lm <- entry.c_lm +. weight else entry.c_count <- entry.c_count +. weight

let register_clauses t (p : Ast.program) ~lm =
  (match p.Ast.stream with
  | Ast.S_now -> ()
  | st -> register_clause t t.streams (C_stream st) ~weight:1.0 ~lm);
  (match p.Ast.query with
  | None -> ()
  | Some q -> register_clause t t.queries (C_query q) ~weight:1.0 ~lm);
  match p.Ast.action with
  | Ast.A_notify -> ()
  | a -> register_clause t t.actions (C_action a) ~weight:1.0 ~lm

let sentence_ngrams tokens = Genie_util.Tok.all_ngrams 3 tokens

let value_words (v : Value.t) =
  Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v)

let train_example t rng (e : Genie_dataset.Example.t) =
  let norm =
    Genie_dataset.Argument_id.normalize
      (List.filter (fun tok -> tok <> "\"") e.Genie_dataset.Example.tokens)
  in
  let program = prepare_program t rng e.Genie_dataset.Example.program in
  let sk = Skeleton.of_program ~options:t.cfg.options t.lib program in
  register_skeleton t sk ~weight:1.0 ~lm:false;
  register_clauses t program ~lm:false;
  (* lexical alignment between sentence n-grams and skeleton atoms *)
  let grams = sentence_ngrams norm.Genie_dataset.Argument_id.tokens in
  let atoms = Skeleton.atoms sk in
  List.iter (fun g -> Genie_util.Counter.add t.ngram_counts g) grams;
  List.iter
    (fun a ->
      Genie_util.Counter.add t.atom_counts a;
      List.iter (fun g -> Genie_util.Counter.add t.pair_counts (pair_key a g)) grams)
    atoms;
  (* copy statistics: which words fill which parameter *)
  List.iter
    (fun s ->
      match s.Skeleton.exemplar with
      | Value.String _ | Value.Entity _ | Value.Location (Value.L_named _) ->
          let words = value_words s.Skeleton.exemplar in
          List.iter
            (fun w ->
              Genie_util.Counter.add t.slot_word_counts (pair_key s.Skeleton.param w);
              Genie_util.Counter.add t.slot_param_counts s.Skeleton.param)
            words;
          Genie_util.Counter.add t.slot_value_counts
            (pair_key s.Skeleton.param (String.concat " " words))
      | _ -> ())
    sk.Skeleton.slots;
  (* sentence memo *)
  let memo_key = String.concat " " norm.Genie_dataset.Argument_id.tokens in
  let cell =
    match Hashtbl.find_opt t.memo memo_key with
    | Some c -> c
    | None ->
        let c = Genie_util.Counter.create () in
        Hashtbl.replace t.memo memo_key c;
        c
  in
  Genie_util.Counter.add cell (Skeleton.key sk);
  t.trained_examples <- t.trained_examples + 1

let pretrain_lm t =
  if t.cfg.use_decoder_lm then
    List.iter
      (fun p ->
        let p = if t.cfg.canonicalize then Canonical.normalize t.lib p else p in
        let sk = Skeleton.of_program ~options:t.cfg.options t.lib p in
        register_skeleton t sk ~weight:1.0 ~lm:true;
        register_clauses t p ~lm:true)
      t.cfg.lm_programs

let train ?(cfg = default_config) lib (examples : Genie_dataset.Example.t list) : t =
  let t = create ~cfg lib in
  let rng = Genie_util.Rng.create cfg.seed in
  pretrain_lm t;
  List.iter (fun e -> train_example t rng e) examples;
  t

(* --- scoring ------------------------------------------------------------------ *)

(* Conditional association: how strongly does sentence n-gram [gram] predict
   program atom [atom]? Estimated as the shrunk fraction of training examples
   containing [gram] whose program contains [atom]. Bounded in (0, 1], so
   adding weakly-supported atoms to a skeleton always costs score -- large
   spurious programs cannot win by accumulating many small matches. *)
let cond_score t atom gram =
  let pair = Genie_util.Counter.count t.pair_counts (pair_key atom gram) in
  let g = Genie_util.Counter.count t.ngram_counts gram in
  if g <= 0.0 then 0.0
  else
    let n = float_of_int (max 1 t.trained_examples) in
    let p_atom = Genie_util.Counter.count t.atom_counts atom /. n in
    let kappa = 2.0 in
    (pair +. (kappa *. p_atom)) /. (g +. kappa)

(* Best support for [atom] from any n-gram of the sentence. *)
let best_match t grams atom =
  List.fold_left (fun acc g -> Float.max acc (cond_score t atom g)) 0.0 grams

(* Per-sentence cache: the atom vocabulary is shared by thousands of candidate
   skeletons, so each atom's best match is computed once per sentence. *)
let cached_best_match t cache grams atom =
  match Hashtbl.find_opt cache atom with
  | Some s -> s
  | None ->
      let s = best_match t grams atom in
      Hashtbl.replace cache atom s;
      s

let atom_weight atom =
  if Genie_util.Tok.starts_with ~prefix:"@" atom then 2.5
  else if Genie_util.Tok.starts_with ~prefix:"enum:" atom then 0.8
  else if Genie_util.Tok.starts_with ~prefix:"param:" atom then 0.4
  else if Genie_util.Tok.starts_with ~prefix:"unit:" atom then 0.2
  else if List.mem atom [ "monitor"; "now"; "timer"; "attimer"; "edge" ] then 1.2
  else 0.4

let skeleton_prior t entry =
  let train_total = float_of_int (max 1 t.trained_examples) in
  (* LM-pretraining counts stand in for training counts at a discount: the
     pretrained decoder LM is what makes unseen programs reachable
     (section 4.2) *)
  let lm_weight = 0.5 in
  let c = entry.count +. (lm_weight *. Float.min entry.lm_count 10.0) in
  log ((c +. 0.1) /. (train_total +. 1000.0))

(* The best explanation any known atom gives for a word, cached on the model
   (the atom vocabulary is fixed after training). *)
let best_explainer t w =
  let cache = t.explainer in
  match Hashtbl.find_opt cache w with
  | Some v -> v
  | None ->
      let best = ref 1e-4 in
      Genie_util.Counter.iter
        (fun a _ ->
          if
            Genie_util.Tok.starts_with ~prefix:"@" a
            || Genie_util.Tok.starts_with ~prefix:"param:" a
            || Genie_util.Tok.starts_with ~prefix:"enum:" a
          then begin
            let s = cond_score t a w in
            if s > !best then best := s
          end)
        t.atom_counts;
      Hashtbl.replace cache w !best;
      !best

let scoring_stopwords =
  [ "the"; "a"; "an"; "my"; "me"; "i"; "to"; "of"; "in"; "on"; "at"; "and"; "or";
    "is"; "are"; "it"; "that"; "this"; "for"; "with"; "please"; "s"; "me"; ","; "\"" ]

let content_tokens tokens =
  List.filter
    (fun w ->
      (not (List.mem w scoring_stopwords))
      && not (Genie_util.Tok.starts_with ~prefix:"NUMBER_" w
             || Genie_util.Tok.starts_with ~prefix:"DATE_" w
             || Genie_util.Tok.starts_with ~prefix:"TIME_" w))
    tokens

(* score = sum over atoms of log-support + coverage of the sentence's content
   words by the skeleton's atoms + a prior from training/LM counts *)
let when_words =
  [ "when"; "whenever"; "if"; "once"; "anytime"; "every"; "each"; "daily"; "moment";
    "soon" ]

let pronouns = [ "it"; "that"; "them"; "this" ]

(* does the skeleton pass an upstream output into an input parameter? *)
let has_param_passing_tokens tokens =
  let rec go = function
    | "=" :: p :: rest ->
        Genie_util.Tok.starts_with ~prefix:"param:" p || go (p :: rest)
    | _ :: rest -> go rest
    | [] -> false
  in
  go tokens

let stream_kind tokens =
  match tokens with
  | "now" :: _ -> `Now
  | ("monitor" | "edge" | "timer" | "attimer") :: _ -> `Stream
  | _ -> `Now

let score_skeleton t cache cov_cache ~grams ~content entry =
  let sk = entry.skeleton in
  let atoms = Skeleton.atoms sk in
  let support =
    List.fold_left
      (fun acc a ->
        let s = Float.max 1e-4 (cached_best_match t cache grams a) in
        acc +. (atom_weight a *. Float.max (-4.0) (log s)))
      0.0 atoms
  in
  let cond_cached a w =
    let key = a ^ " || " ^ w in
    match Hashtbl.find_opt cov_cache key with
    | Some s -> s
    | None ->
        let s = cond_score t a w in
        Hashtbl.replace cov_cache key s;
        s
  in
  (* only content-bearing atoms can explain a sentence word: structural atoms
     like 'monitor' or 'join' co-occur with everything and would cover any
     word spuriously *)
  let content_atoms =
    List.filter
      (fun a ->
        Genie_util.Tok.starts_with ~prefix:"@" a
        || Genie_util.Tok.starts_with ~prefix:"param:" a
        || Genie_util.Tok.starts_with ~prefix:"enum:" a)
      atoms
  in
  (* coverage with explaining-away: a word is well covered only if one of the
     skeleton's atoms explains it about as well as the best atom anywhere in
     the vocabulary does; and words common across the training data carry
     little signal (IDF weighting) *)
  let n = float_of_int (max 1 t.trained_examples) in
  let coverage =
    List.fold_left
      (fun acc w ->
        let idf =
          Float.max 0.0 (1.0 -. (3.0 *. Genie_util.Counter.count t.ngram_counts w /. n))
        in
        let cov =
          List.fold_left (fun m a -> Float.max m (cond_cached a w)) 1e-4 content_atoms
        in
        let best = Float.max cov (best_explainer t w) in
        acc +. (0.6 *. idf *. Float.max (-2.5) (log (cov /. best))))
      0.0 content
  in
  (* atoms are deduplicated, so token length must carry part of the size
     penalty: otherwise a degenerate self-join chain costs the same as a
     single join *)
  let size_penalty =
    (0.11 *. float_of_int (List.length atoms))
    +. (0.012 *. float_of_int (List.length sk.Skeleton.tokens))
  in
  (* a when-word in the sentence indicates a stream program and vice versa:
     a reliable surface cue the neural model also learns *)
  (* the stopword filter removes when-words from [content]; test the raw
     unigrams instead *)
  let has_when = List.exists (fun w -> List.mem w grams) when_words in
  let stream_bonus =
    match (stream_kind sk.Skeleton.tokens, has_when) with
    | `Now, false | `Stream, true -> 0.6
    | `Now, true | `Stream, false -> -1.2
  in
  (* a pronoun suggests parameter passing ("post it", "add it to my list") *)
  let has_pronoun = List.exists (fun w -> List.mem w grams) pronouns in
  let passing_bonus =
    match (has_pronoun, has_param_passing_tokens sk.Skeleton.tokens) with
    | true, true -> 1.0
    | false, true -> -0.4
    | _ -> 0.0
  in
  support +. coverage -. size_penalty +. stream_bonus +. passing_bonus
  +. (0.3 *. skeleton_prior t entry)

(* --- slot filling -------------------------------------------------------------- *)

let unit_words =
  (* lowercase word -> unit name *)
  List.concat_map
    (fun (u, _) -> [ (String.lowercase_ascii u, u) ])
    Ttype.Units.table
  @ [ ("minutes", "min"); ("minute", "min"); ("hours", "h"); ("hour", "h");
      ("days", "day"); ("seconds", "s"); ("degrees", "C"); ("fahrenheit", "F");
      ("celsius", "C"); ("kilometers", "km"); ("miles", "mi"); ("pounds", "lb");
      ("kilograms", "kg"); ("feet", "ft"); ("inches", "in"); ("megabytes", "MB");
      ("gigabytes", "GB"); ("kilobytes", "KB") ]

let gazette_member t pool v =
  match Hashtbl.find_opt t.gazette_sets pool with
  | Some set -> Hashtbl.mem set v
  | None -> false

let is_sentence_slot tok =
  Genie_util.Tok.starts_with ~prefix:"NUMBER_" tok
  || Genie_util.Tok.starts_with ~prefix:"DATE_" tok
  || Genie_util.Tok.starts_with ~prefix:"TIME_" tok

let stopwords =
  [ "the"; "a"; "an"; "my"; "me"; "i"; "to"; "of"; "in"; "on"; "at"; "and"; "or";
    "when"; "if"; "with"; "for"; "is"; "are"; "it"; "that"; "this"; "get"; "show";
    "tell"; "please"; "from"; "by"; "new"; "every" ]

(* Words that typically introduce a parameter value. *)
let anchor_words =
  [ "caption"; "saying"; "titled"; "named"; "called"; "subject"; "message";
    "status"; "about"; "to"; "for"; "play"; "text"; "tweet"; "post"; "say";
    "add"; "search"; "matching"; "containing" ]

(* Score a candidate span for a string-like slot. [cue] measures how much a
   word is already explained by the program's structure (function names,
   filters): such words are command vocabulary, not parameter values, and a
   copy mechanism should not copy them. [before] is the token preceding the
   span, used as a lexical anchor. *)
let span_score t ~param ~pool_opt ~cue ~before ~after (span : string list) =
  let joined = String.concat " " span in
  let len = float_of_int (List.length span) in
  (* discriminative copy evidence: how much more likely is this word inside a
     value of [param] than as an ordinary sentence word? *)
  let word_score =
    let total = Genie_util.Counter.count t.slot_param_counts param +. 100.0 in
    let bg_total = Genie_util.Counter.total t.ngram_counts +. 100.0 in
    List.fold_left
      (fun acc w ->
        let c = Genie_util.Counter.count t.slot_word_counts (pair_key param w) in
        let bg = Genie_util.Counter.count t.ngram_counts w in
        let lr =
          log ((c +. 0.05) /. total) -. log ((bg +. 0.5) /. bg_total)
        in
        acc +. Float.max (-2.0) (Float.min 3.0 lr))
      0.0 span
    /. len
  in
  let stripped =
    if String.length joined > 1 && (joined.[0] = '#' || joined.[0] = '@') then
      String.sub joined 1 (String.length joined - 1)
    else joined
  in
  (* the model only "knows" a value pool to the extent training exposed it to
     varied values of this parameter -- which is precisely what parameter
     expansion provides (section 3.3); without that exposure the gazette
     carries no weight *)
  let exposure =
    Float.min 1.0 (Genie_util.Counter.count t.slot_param_counts param /. 15.0)
  in
  let gazette_bonus =
    match pool_opt with
    | Some pool when gazette_member t pool joined || gazette_member t pool stripped ->
        3.0 *. exposure
    | _ -> 0.0
  in
  (* a span introduced by the parameter's own name ("caption funny cat") is
     almost certainly the value: boost it and let context override the cue
     penalty *)
  let param_anchored = before = Some param in
  let cue_penalty =
    if param_anchored then 0.0
    else -2.0 *. (List.fold_left (fun acc w -> acc +. cue w) 0.0 span /. len)
  in
  let anchor_bonus =
    if param_anchored then 3.0
    else
      match before with
      | Some w when List.mem w anchor_words -> 0.8
      | _ -> 0.0
  in
  let stop_penalty =
    if List.for_all (fun w -> List.mem w stopwords || List.mem w anchor_words) span then
      -5.0
    else if List.mem (List.hd span) stopwords then -1.0
    else 0.0
  in
  (* an exact value string seen in training is strong copy evidence *)
  let value_bonus =
    if Genie_util.Counter.count t.slot_value_counts (pair_key param joined) > 0.0 then 1.5
    else 0.0
  in
  (* cutting a value short: the next token still looks like part of it *)
  let continuation_penalty =
    match after with
    | Some w
      when Genie_util.Counter.count t.slot_word_counts (pair_key param w) > 0.0
           && not (List.mem w stopwords) -> -1.2
    | _ -> 0.0
  in
  let length_bonus = Float.min 0.45 (0.15 *. (len -. 1.0)) in
  word_score +. gazette_bonus +. cue_penalty +. anchor_bonus +. stop_penalty
  +. value_bonus +. continuation_penalty +. length_bonus

let candidate_spans tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let spans = ref [] in
  for i = 0 to n - 1 do
    for len = 1 to min 8 (n - i) do
      let span = Array.to_list (Array.sub arr i len) in
      if
        List.for_all
          (fun w -> (not (is_sentence_slot w)) && w <> "," && w <> "\"")
          span
      then spans := (i, span) :: !spans
    done
  done;
  !spans

let param_type t ~param ~(exemplar : Value.t) : Ttype.t =
  match Value.type_of exemplar with
  | Some ty -> ty
  | None -> (
      (* fall back to any declaration of that parameter name *)
      let found =
        List.find_map
          (fun f ->
            Option.map (fun p -> p.Schema.p_type) (Schema.find_param f param))
          (Schema.Library.functions t.lib)
      in
      Option.value found ~default:Ttype.String)

(* Fill the slots of a skeleton from the normalized sentence. Returns the
   value assignment and a fill score. *)
let fill_slots t (sk : Skeleton.t) (norm : Genie_dataset.Argument_id.result) :
    (string * Value.t) list * float =
  let tokens = norm.Genie_dataset.Argument_id.tokens in
  let tokens_arr = Array.of_list tokens in
  let content_atoms =
    List.filter
      (fun a ->
        Genie_util.Tok.starts_with ~prefix:"@" a
        || Genie_util.Tok.starts_with ~prefix:"param:" a
        || Genie_util.Tok.starts_with ~prefix:"enum:" a)
      (Skeleton.atoms sk)
  in
  let cue_cache = Hashtbl.create 32 in
  let cue w =
    match Hashtbl.find_opt cue_cache w with
    | Some c -> c
    | None ->
        let c =
          List.fold_left (fun m a -> Float.max m (cond_score t a w)) 0.0 content_atoms
        in
        Hashtbl.replace cue_cache w c;
        c
  in
  let sentence_numbers =
    List.filter (fun (s, _) -> Genie_util.Tok.starts_with ~prefix:"NUMBER_" s)
      norm.Genie_dataset.Argument_id.entities
  in
  let sentence_dates =
    List.filter (fun (s, _) -> Genie_util.Tok.starts_with ~prefix:"DATE_" s)
      norm.Genie_dataset.Argument_id.entities
  in
  let sentence_times =
    List.filter (fun (s, _) -> Genie_util.Tok.starts_with ~prefix:"TIME_" s)
      norm.Genie_dataset.Argument_id.entities
  in
  let num_idx = ref 0 and date_idx = ref 0 and time_idx = ref 0 in
  let take lst idx =
    let v = List.nth_opt lst !idx in
    incr idx;
    v
  in
  let unit_after_number slot_name =
    (* the token following NUMBER_k in the sentence, if it is a unit word *)
    let rec find = function
      | [] | [ _ ] -> None
      | a :: (b :: _ as rest) ->
          if a = slot_name then List.assoc_opt b unit_words else find rest
    in
    find tokens
  in
  let used_spans = ref [] in
  let overlaps (i, span) =
    List.exists
      (fun (j, sp) ->
        let len1 = List.length span and len2 = List.length sp in
        i < j + len2 && j < i + len1)
      !used_spans
  in
  let score = ref 0.0 in
  let fill_string_like slot pool_opt (mk : string -> Value.t) =
    let cands = List.filter (fun c -> not (overlaps c)) (candidate_spans tokens) in
    let scored =
      List.map
        (fun (i, span) ->
          let before = if i > 0 then Some tokens_arr.(i - 1) else None in
          let j = i + List.length span in
          let after = if j < Array.length tokens_arr then Some tokens_arr.(j) else None in
          ((i, span), span_score t ~param:slot.Skeleton.param ~pool_opt ~cue ~before ~after span))
        cands
    in
    match List.sort (fun (_, a) (_, b) -> compare b a) scored with
    | (((_, span) as chosen), s) :: _ when s > -3.0 ->
        used_spans := chosen :: !used_spans;
        (* a confident span should not be able to buy a spurious filter: cap
           the positive contribution *)
        score := !score +. Float.min s 1.5;
        mk (String.concat " " span)
    | _ ->
        (* no plausible span for this copied value: the sentence does not
           support the slot, which strongly suggests the skeleton is wrong *)
        score := !score -. 6.0;
        slot.Skeleton.exemplar
  in
  let values =
    List.map
      (fun (slot : Skeleton.slot) ->
        let v =
          match slot.Skeleton.exemplar with
          | Value.Number _ -> (
              match take sentence_numbers num_idx with
              | Some (_, v) -> v
              | None ->
                  (* no number in the sentence supports this slot *)
                  score := !score -. 6.0;
                  slot.Skeleton.exemplar)
          | Value.Measure ((_, default_unit) :: _) -> (
              match take sentence_numbers num_idx with
              | Some (slot_name, Value.Number n) ->
                  let unit =
                    match unit_after_number slot_name with
                    | Some u
                      when Ttype.Units.base_of u
                           = Ttype.Units.base_of default_unit -> u
                    | _ -> default_unit
                  in
                  Value.Measure [ (n, unit) ]
              | _ ->
                  score := !score -. 6.0;
                  slot.Skeleton.exemplar)
          | Value.Currency (_, code) -> (
              match take sentence_numbers num_idx with
              | Some (_, Value.Number n) -> Value.Currency (n, code)
              | _ -> slot.Skeleton.exemplar)
          | Value.Date _ -> (
              match take sentence_dates date_idx with
              | Some (_, v) -> v
              | None ->
                  score := !score -. 4.0;
                  slot.Skeleton.exemplar)
          | Value.Time _ -> (
              match take sentence_times time_idx with
              | Some (_, v) -> v
              | None ->
                  score := !score -. 4.0;
                  slot.Skeleton.exemplar)
          | Value.String _ ->
              let ty = param_type t ~param:slot.Skeleton.param ~exemplar:slot.Skeleton.exemplar in
              let pool =
                Genie_augment.Gazettes.gazette_for ~param_name:slot.Skeleton.param ~ty
              in
              fill_string_like slot pool (fun s -> Value.String s)
          | Value.Entity { ty = ety; display; _ } ->
              let pool =
                Genie_augment.Gazettes.gazette_for ~param_name:slot.Skeleton.param
                  ~ty:(Ttype.Entity ety)
              in
              let strip s =
                if String.length s > 1 && (s.[0] = '#' || s.[0] = '@') then
                  String.sub s 1 (String.length s - 1)
                else s
              in
              fill_string_like slot pool (fun s ->
                  Value.Entity { ty = ety; value = strip s; display })
          | Value.Location (Value.L_named _) ->
              if List.mem "here" tokens then Value.Location (Value.L_relative "current_location")
              else if List.mem "home" tokens then Value.Location (Value.L_relative "home")
              else if List.mem "work" tokens then Value.Location (Value.L_relative "work")
              else fill_string_like slot (Some "city") (fun s -> Value.Location (Value.L_named s))
          | v -> v
        in
        (slot.Skeleton.marker, v))
      sk.Skeleton.slots
  in
  (values, !score)

(* --- decoding ------------------------------------------------------------------ *)

type prediction = {
  program : Ast.program option;
  nn_tokens : string list; (* the decoded token sequence *)
  score : float;
}

let no_prediction = { program = None; nn_tokens = []; score = neg_infinity }

(* Candidate skeleton keys via the inverted function-atom index. Functions
   are ranked by sentence support and their skeletons by training count, then
   interleaved round-robin up to the cap -- a global cut-off would silently
   drop every skeleton of lower-ranked functions, including the right one. *)
let candidate_keys t cache grams =
  let scored_functions =
    Hashtbl.fold
      (fun fa keys acc ->
        let s = cached_best_match t cache grams fa in
        if s > 0.0 then (s, keys) :: acc else acc)
      t.by_function []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored_functions in
  let by_count ks =
    let count k =
      match Hashtbl.find_opt t.inventory k with Some e -> e.count | None -> 0.0
    in
    Array.of_list (List.sort (fun a b -> compare (count b) (count a)) ks)
  in
  let arrays = List.map (fun (_, ks) -> by_count !ks) sorted in
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let n = ref 0 in
  let level = ref 0 in
  let progress = ref true in
  while !progress && !n < t.cfg.max_candidates do
    progress := false;
    List.iter
      (fun arr ->
        if !level < Array.length arr && !n < t.cfg.max_candidates then begin
          progress := true;
          let k = arr.(!level) in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            out := k :: !out;
            incr n
          end
        end)
      arrays;
    incr level
  done;
  !out

(* Select an output parameter able to fill a hole of the given type. *)
let pick_out_for_hole ~outs ~hole_ip ~hole_ty =
  match List.assoc_opt hole_ip outs with
  | Some ty when Ttype.strictly_assignable ~src:ty ~dst:hole_ty -> Some hole_ip
  | _ -> (
      match
        List.filter (fun (_, ty) -> Ttype.strictly_assignable ~src:ty ~dst:hole_ty) outs
      with
      | [] -> None
      | (n, _) :: _ -> Some n)

let fill_hole_passed_inv (inv : Ast.invocation) ~hole_ip ~out_name =
  { inv with
    Ast.in_params =
      List.map
        (fun ip ->
          if ip.Ast.ip_name = hole_ip then { ip with Ast.ip_value = Ast.Passed out_name }
          else ip)
        inv.Ast.in_params }

(* --- compositional candidates ------------------------------------------------

   The inventory only contains whole programs seen in training or LM
   pretraining. The neural decoder, however, generates token-by-token and can
   produce *new combinations* of clauses it has seen; synthesized data is what
   teaches it that type-based compositionality (section 3.4). The equivalent
   here: rank the learned stream / query / action fragments against the
   sentence, recombine the best ones into full programs, and type-check the
   combinations. *)

let clause_score t cache grams (e : clause_entry) =
  let support =
    List.fold_left
      (fun acc a ->
        let s = Float.max 1e-4 (cached_best_match t cache grams a) in
        acc +. (atom_weight a *. Float.max (-4.0) (log s)))
      0.0 e.atoms
  in
  let n = float_of_int (max 1 (List.length e.atoms)) in
  support /. n

let top_clauses t cache grams tbl k =
  let scored =
    Hashtbl.fold (fun _ e acc -> (clause_score t cache grams e, e) :: acc) tbl []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
  List.filteri (fun i _ -> i < k) sorted |> List.map snd

let compose_candidates t cache grams : skeleton_entry list =
  let k = 5 in
  let streams = top_clauses t cache grams t.streams k in
  let queries = top_clauses t cache grams t.queries k in
  let actions = top_clauses t cache grams t.actions k in
  let stream_opts = None :: List.map (fun e -> Some e) streams in
  let query_opts = None :: List.map (fun e -> Some e) queries in
  let action_opts = None :: List.map (fun e -> Some e) actions in
  let out = ref [] in
  List.iter
    (fun s_opt ->
      List.iter
        (fun q_opt ->
          List.iter
            (fun a_opt ->
              if not (s_opt = None && q_opt = None && a_opt = None) then begin
                let stream =
                  match s_opt with
                  | Some { clause = C_stream st; _ } -> st
                  | _ -> Ast.S_now
                in
                let query =
                  match q_opt with
                  | Some { clause = C_query q; _ } -> Some q
                  | _ -> None
                in
                let action =
                  match a_opt with
                  | Some { clause = C_action a; _ } -> a
                  | _ -> Ast.A_notify
                in
                (* a bare 'now => notify' or stream-less action-less combo is
                   not a meaningful program *)
                (* skip compositions where the query repeats a function the
                   stream already monitors: they add no information *)
                let duplicated =
                  match (stream, query) with
                  | Ast.S_monitor (mq, _), Some q ->
                      let fns qq =
                        List.map Ast.Fn.to_string
                          (List.map (fun (i : Ast.invocation) -> i.Ast.fn) (Ast.query_invocations qq))
                      in
                      List.exists (fun f -> List.mem f (fns mq)) (fns q)
                  | _ -> false
                in
                if ((not (stream = Ast.S_now && query = None)) || action <> Ast.A_notify)
                   && not duplicated
                then begin
                  let counts =
                    List.filter_map
                      (fun o -> Option.map (fun e -> e.c_count +. (0.2 *. e.c_lm)) o)
                      [ s_opt; q_opt; a_opt ]
                  in
                  let min_count = List.fold_left Float.min infinity (1.0 :: counts) in
                  let emit program =
                    if Result.is_ok (Typecheck.check_program t.lib program) then begin
                      let program = Canonical.normalize t.lib program in
                      let sk = Skeleton.of_program ~options:t.cfg.options t.lib program in
                      let key = Skeleton.key sk in
                      if not (Hashtbl.mem t.inventory key) then
                        (* composed programs inherit a discounted prior *)
                        out := { skeleton = sk; count = 0.3 *. min_count; lm_count = 0.0 } :: !out
                    end
                  in
                  emit { Ast.stream; query; action };
                  (* parameter-passing variants: feed an upstream output into
                     a constant input parameter of the action (the 'use that
                     as' compositions of section 2.3) *)
                  let outs =
                    match query with
                    | Some q -> Typecheck.query_out_params t.lib q
                    | None -> Typecheck.stream_out_params t.lib stream
                  in
                  (match action with
                  | Ast.A_invoke inv when outs <> [] ->
                      List.iter
                        (fun (ip : Ast.in_param) ->
                          match ip.Ast.ip_value with
                          | Ast.Constant v -> (
                              match Value.type_of v with
                              | Some ty -> (
                                  match
                                    pick_out_for_hole ~outs ~hole_ip:ip.Ast.ip_name ~hole_ty:ty
                                  with
                                  | Some out_name ->
                                      let inv' =
                                        fill_hole_passed_inv inv ~hole_ip:ip.Ast.ip_name
                                          ~out_name
                                      in
                                      emit { Ast.stream; query; action = Ast.A_invoke inv' }
                                  | None -> ())
                              | None -> ())
                          | Ast.Passed _ -> ())
                        inv.Ast.in_params
                  | _ -> ())
                end
              end)
            action_opts)
        query_opts)
    stream_opts;
  (* deduplicate composed candidates, keeping the highest prior *)
  let best = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = Skeleton.key e.skeleton in
      match Hashtbl.find_opt best k with
      | Some e' when e'.count >= e.count -> ()
      | _ -> Hashtbl.replace best k e)
    !out;
  Hashtbl.fold (fun _ e acc -> e :: acc) best []

(* The decode loop reports three phases to an optional tracing scope:
   candidate ranking, beam truncation, and slot filling. With no scope the
   clock is never read and the only cost is a match on [None]. *)
(* [predict] with a caller-supplied conditional-coverage cache. Entries of
   [cov_cache] are [cond_score t a w] values -- pure functions of the model,
   never of the sentence -- so sharing one table across a batch of sentences
   is observationally transparent; only the per-sentence gram cache below
   stays private. *)
let predict_with ?scope ~cov_cache t (sentence_tokens : string list) : prediction =
  let module Tracer = Genie_observe.Tracer in
  let now () = match scope with Some _ -> Tracer.now_ns () | None -> 0.0 in
  let d0 = now () in
  let norm =
    Genie_dataset.Argument_id.normalize
      (List.filter (fun tok -> tok <> "\"") sentence_tokens)
  in
  let grams = sentence_ngrams norm.Genie_dataset.Argument_id.tokens in
  let memo_boost =
    match Hashtbl.find_opt t.memo (String.concat " " norm.Genie_dataset.Argument_id.tokens) with
    | Some c -> (
        match Genie_util.Counter.top 1 c with
        | [ (k, _) ] -> Some k
        | _ -> None)
    | None -> None
  in
  let cache : (string, float) Hashtbl.t = Hashtbl.create 512 in
  let content = content_tokens norm.Genie_dataset.Argument_id.tokens in
  let cands = candidate_keys t cache grams in
  let inventory_scored =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt t.inventory k with
        | None -> None
        | Some entry ->
            let s = score_skeleton t cache cov_cache ~grams ~content entry in
            let s = if memo_boost = Some k then s +. 10.0 else s in
            Some (s, entry))
      cands
  in
  let composed_scored =
    List.map
      (fun entry -> (score_skeleton t cache cov_cache ~grams ~content entry, entry))
      (compose_candidates t cache grams)
  in
  let scored = inventory_scored @ composed_scored in
  let d1 = now () in
  let top =
    List.filteri (fun i _ -> i < t.cfg.beam)
      (List.sort (fun (a, _) (b, _) -> compare b a) scored)
  in
  let d2 = now () in
  let completed =
    List.filter_map
      (fun (s, entry) ->
        let values, fill_score = fill_slots t entry.skeleton norm in
        match Skeleton.fill ~options:t.cfg.options t.lib entry.skeleton values with
        | Some program ->
            Some
              { program = Some program;
                nn_tokens =
                  Nn_syntax.to_tokens ~options:t.cfg.options t.lib program;
                score = s +. (0.5 *. fill_score) }
        | None -> None)
      top
  in
  let best =
    match List.sort (fun a b -> compare b.score a.score) completed with
    | best :: _ -> best
    | [] -> no_prediction
  in
  (match scope with
  | Some sc ->
      let d3 = Tracer.now_ns () in
      Tracer.sub sc ~seq:10
        ~attrs:[ ("scored", string_of_int (List.length scored)) ]
        ~start_ns:d0 ~dur_ns:(d1 -. d0) "decode.rank";
      Tracer.sub sc ~seq:11
        ~attrs:[ ("kept", string_of_int (List.length top)) ]
        ~start_ns:d1 ~dur_ns:(d2 -. d1) "decode.beam";
      Tracer.sub sc ~seq:12
        ~attrs:[ ("completed", string_of_int (List.length completed)) ]
        ~start_ns:d2 ~dur_ns:(d3 -. d2) "decode.slots"
  | None -> ());
  best

let predict ?scope t (sentence_tokens : string list) : prediction =
  predict_with ?scope ~cov_cache:(Hashtbl.create 4096) t sentence_tokens

(* Batched prediction: one shared conditional-coverage cache across the
   whole batch (its entries are sentence-independent, see [predict_with]),
   so repeated atom/word pairs are scored once per batch instead of once per
   sentence. Results are byte-identical to mapping [predict]. *)
let predict_batch t (batch : string list list) : prediction list =
  let cov_cache : (string, float) Hashtbl.t = Hashtbl.create 4096 in
  List.map (fun sentence -> predict_with ~cov_cache t sentence) batch

(* accessor used by the beam field *)
let cfg t = t.cfg

(* --- model identity ----------------------------------------------------------- *)

(* 16-hex digest over the statistical tables a prediction can depend on:
   inventory priors, clause fragments, alignment and copy counters, and the
   decoding-relevant config. Every table is folded in sorted key order, so
   the digest is independent of hash-table iteration order (OCAMLRUNPARAM=R
   safe) and of how the model was built, shared or copied. Scratch caches
   ([memo], [explainer]) and derived indexes ([by_function]) are excluded:
   they never change what predict returns. Equal digests mean the models
   answer every sentence identically -- the serve layer's hot-swap uses this
   as the parse-cache invalidation key and the active-model identity in
   stats. *)
let digest (t : t) =
  let h = ref (Genie_util.Hash64.string 0L "genie.aligner") in
  let add_s s = h := Genie_util.Hash64.string !h s in
  let add_f f = h := Genie_util.Hash64.combine !h (Int64.bits_of_float f) in
  let add_i i = h := Genie_util.Hash64.int !h i in
  let sorted_keys tbl =
    List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
  in
  add_i t.trained_examples;
  add_i t.cfg.seed;
  add_i t.cfg.beam;
  add_i t.cfg.max_candidates;
  add_i t.cfg.gazette_size;
  add_s "inventory";
  List.iter
    (fun k ->
      let e = Hashtbl.find t.inventory k in
      add_s k;
      add_f e.count;
      add_f e.lm_count)
    (sorted_keys t.inventory);
  let clause_table tag tbl =
    add_s tag;
    List.iter
      (fun k ->
        let e = Hashtbl.find tbl k in
        add_s k;
        List.iter add_s e.atoms;
        add_f e.c_count;
        add_f e.c_lm)
      (sorted_keys tbl)
  in
  clause_table "streams" t.streams;
  clause_table "queries" t.queries;
  clause_table "actions" t.actions;
  let counter tag c =
    add_s tag;
    List.iter
      (fun (k, v) ->
        add_s k;
        add_f v)
      (List.sort compare (Genie_util.Counter.to_list c))
  in
  counter "ngram" t.ngram_counts;
  counter "atom" t.atom_counts;
  counter "pair" t.pair_counts;
  counter "slot_word" t.slot_word_counts;
  counter "slot_param" t.slot_param_counts;
  counter "slot_value" t.slot_value_counts;
  Genie_util.Hash64.to_hex !h
