(** Program skeletons: the NN-token serialization of a program with its
    constant values replaced by typed slot markers ([SLOT_0], [SLOT_1], ...).

    The decoder predicts a skeleton and fills the slots with values copied
    from the input sentence, mirroring the pointer-generator decomposition of
    the MQAN model: program tokens are generated from the vocabulary,
    parameter values are copied from the context. *)

type slot = {
  marker : string;  (** SLOT_k *)
  param : string;  (** the parameter the value fills *)
  exemplar : Genie_thingtalk.Value.t;  (** original value: type and fallback *)
}

type t = { tokens : string list; slots : slot list }

val key : t -> string
(** The skeleton's identity: its token sequence joined with spaces. *)

val is_slotted : Genie_thingtalk.Value.t -> bool
(** Copyable values become slots; booleans, enums, relative locations and
    unfilled parameters stay literal program tokens (they carry function
    semantics such as on/off). *)

val of_program :
  ?options:Genie_thingtalk.Nn_syntax.options ->
  Genie_thingtalk.Schema.Library.t ->
  Genie_thingtalk.Ast.program ->
  t
(** Extracts the skeleton; equal values share one marker and are therefore
    filled consistently at decode time. *)

val fill :
  ?options:Genie_thingtalk.Nn_syntax.options ->
  Genie_thingtalk.Schema.Library.t ->
  t ->
  (string * Genie_thingtalk.Value.t) list ->
  Genie_thingtalk.Ast.program option
(** Rebuilds a program from marker assignments; unassigned slots fall back to
    their exemplars. [None] if the tokens fail to parse. *)

val atoms : t -> string list
(** The semantic content matched against sentence n-grams: function
    references, parameter heads, operators, structural keywords, enums. *)

val function_atoms : t -> string list
val is_atom : string -> bool
val size : t -> int
