(** The first-class model interface the serving stack is polymorphic over.

    A {!t} is a record of closures — the two prediction entry points plus
    the identity metadata the serve layer keys caches and stats on — so
    the engine, server and daemon never name a concrete backend. Two
    backends exist: the statistical {!Aligner} (wrapped as-is, responses
    byte-identical to calling it directly) and the neural
    {!Genie_nn.Seq2seq} (batched greedy decode over the row-parallel
    tensors, predictions worker-count- and batch-composition-invariant).

    Handles are {e not} domain-safe: both backends carry per-handle mutable
    scratch (the aligner's lazily-filled explainer memo, the seq2seq's
    tensor arena). Call {!fork} to mint a sibling handle for each worker —
    the heavy read-only state (statistical tables, weights) stays
    physically shared, only the scratch is private. *)

open Genie_thingtalk

type kind = Kind_aligner | Kind_seq2seq

val kind_to_string : kind -> string
(** ["aligner"] / ["seq2seq"] — what stats and [ckpt inspect] print. *)

type prediction = Aligner.prediction = {
  program : Ast.program option;
  nn_tokens : string list;
  score : float;
}

val no_prediction : prediction

type t = {
  kind : kind;
  digest : string;
      (** The backend's 16-hex identity: {!Aligner.digest} or
          {!Genie_nn.Seq2seq.weight_digest}. Equal digests answer every
          sentence identically; the serve layer keys cache invalidation
          and swap noop-detection on it. Stable across {!fork}. *)
  predict : ?scope:Genie_observe.Tracer.scope -> string list -> prediction;
      (** Parses one tokenized sentence. [scope] is forwarded to backends
          that trace (the aligner); others ignore it. *)
  predict_batch : string list list -> prediction list;
      (** Batched prediction, one result per sentence in submission order.
          Byte-identical to mapping {!predict} — batching is a throughput
          lever, never a semantic one. *)
  fork : unit -> t;
      (** A sibling handle with private mutable scratch and shared
          read-only state; same [kind] and [digest]. *)
}

val of_aligner : Aligner.t -> t
(** Wraps a trained aligner. [predict]/[predict_batch] are the aligner's
    own, so responses are byte-identical to calling it directly; [fork]
    takes the shallow-copy-with-private-explainer that the serve engine
    historically took. *)

val of_seq2seq :
  ?options:Nn_syntax.options ->
  ?max_len:int ->
  lib:Schema.Library.t ->
  Genie_nn.Seq2seq.t ->
  t
(** Wraps a trained (or checkpoint-restored) seq2seq. Predictions run
    {!Genie_nn.Seq2seq.decode_batch} on a per-handle scratch arena, then
    parse the decoded tokens with {!Nn_syntax.of_tokens} under [options]
    (default {!Nn_syntax.default_options}): a malformed decode yields
    [program = None] with the raw tokens still in [nn_tokens]. [score] is
    the decode's summed log-probability. The empty sentence short-circuits
    to {!no_prediction} (the encoder needs at least one position).
    [fork] shares the weights and allocates a fresh arena. Decoding draws
    from no RNG stream, so concurrent forks cannot perturb each other. *)

val load_checkpoint :
  ?options:Nn_syntax.options ->
  ?max_len:int ->
  lib:Schema.Library.t ->
  string ->
  (t, string) result
(** Boots a servable model from a checkpoint file:
    {!Genie_checkpoint.Checkpoint.load} +
    [restore_weights] (moments skipped — serving never reads them) +
    {!of_seq2seq}. Fail-closed: a truncated, corrupt, wrong-version or
    shape-mismatched file is [Error] and nothing is constructed. *)
