(** The Aligner semantic-parser backend.

    A fast statistical stand-in for the MQAN model (the substitution argument
    is in DESIGN.md) that preserves the causal structure of the paper's
    experiments:

    - the {e skeleton inventory} -- whole programs reachable by the decoder --
      comes from training data and, when the decoder-LM feature is on, from
      pretraining on a large synthesized program corpus (section 4.2);
    - a {e compositional decoder} recombines learned stream / query / action
      clause fragments into new programs (with automatically derived
      parameter-passing variants), type-checking each combination: the
      type-based compositionality that synthesized data teaches (section 3.4);
    - {e lexical alignment} between sentence n-grams and program atoms scores
      candidates, with explaining-away coverage of the sentence's content
      words;
    - a {e copy mechanism} fills string-like slots with sentence spans scored
      by per-parameter word statistics, gazette membership, lexical anchors
      and boundary features -- what parameter expansion trains (section 3.3). *)

open Genie_thingtalk

type config = {
  options : Nn_syntax.options;  (** keyword-param / type-annotation ablations *)
  canonicalize : bool;  (** Table 3: canonical form of training targets *)
  use_decoder_lm : bool;  (** Table 3: pretrained program LM *)
  lm_programs : Ast.program list;
  gazette_size : int;
  seed : int;
  beam : int;
  max_candidates : int;
}

val default_config : config

type skeleton_entry = {
  skeleton : Skeleton.t;
  mutable count : float;
  mutable lm_count : float;
}

type clause =
  | C_stream of Ast.stream
  | C_query of Ast.query
  | C_action of Ast.action

type clause_entry = {
  clause : clause;
  atoms : string list;
  mutable c_count : float;
  mutable c_lm : float;
}

type t = {
  cfg : config;
  lib : Schema.Library.t;
  inventory : (string, skeleton_entry) Hashtbl.t;
  by_function : (string, string list ref) Hashtbl.t;
  ngram_counts : Genie_util.Counter.t;
  atom_counts : Genie_util.Counter.t;
  pair_counts : Genie_util.Counter.t;
  slot_word_counts : Genie_util.Counter.t;
  slot_param_counts : Genie_util.Counter.t;
  slot_value_counts : Genie_util.Counter.t;
  memo : (string, Genie_util.Counter.t) Hashtbl.t;
  gazettes : Genie_augment.Gazettes.t;
  gazette_sets : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  streams : (string, clause_entry) Hashtbl.t;
  queries : (string, clause_entry) Hashtbl.t;
  actions : (string, clause_entry) Hashtbl.t;
  explainer : (string, float) Hashtbl.t;
  mutable trained_examples : int;
}

val train :
  ?cfg:config -> Schema.Library.t -> Genie_dataset.Example.t list -> t
(** Builds the model from a training set: argument-identifies each sentence,
    canonicalizes (or deliberately shuffles, for the ablation) each program,
    and accumulates inventory, clause, alignment and copy statistics. *)

type prediction = {
  program : Ast.program option;
  nn_tokens : string list;
  score : float;
}

val no_prediction : prediction

val predict :
  ?scope:Genie_observe.Tracer.scope -> t -> string list -> prediction
(** Parses a tokenized sentence: candidate skeletons from the inventory (via
    an inverted function index) and from clause composition are scored by
    atom support + coverage + priors + surface cues, the best few are
    slot-filled, and the best completed program wins. The output always
    type-checks. With [scope], the decode loop reports its three phases
    ([decode.rank], [decode.beam], [decode.slots]) as child spans; without
    it, no clocks are read. *)

val predict_with :
  ?scope:Genie_observe.Tracer.scope ->
  cov_cache:(string, float) Hashtbl.t ->
  t ->
  string list ->
  prediction
(** {!predict} with a caller-supplied conditional-coverage cache. Its
    entries are pure functions of the model (never the sentence), so one
    table can be shared across a batch transparently. *)

val predict_batch : t -> string list list -> prediction list
(** Batched prediction sharing one conditional-coverage cache across the
    batch: repeated atom/word pairs are scored once per batch instead of
    once per sentence. Byte-identical to mapping {!predict}. *)

(** {2 Exposed internals}

    The scoring and filling machinery is exposed for the test suite and the
    diagnostic tooling. *)

val sentence_ngrams : string list -> string list
val content_tokens : string list -> string list
val cond_score : t -> string -> string -> float
val best_match : t -> string list -> string -> float
val cached_best_match : t -> (string, float) Hashtbl.t -> string list -> string -> float
val atom_weight : string -> float
val best_explainer : t -> string -> float

val score_skeleton :
  t ->
  (string, float) Hashtbl.t ->
  (string, float) Hashtbl.t ->
  grams:string list ->
  content:string list ->
  skeleton_entry ->
  float

val candidate_keys : t -> (string, float) Hashtbl.t -> string list -> string list
val compose_candidates : t -> (string, float) Hashtbl.t -> string list -> skeleton_entry list
val clause_score : t -> (string, float) Hashtbl.t -> string list -> clause_entry -> float
val top_clauses :
  t -> (string, float) Hashtbl.t -> string list -> (string, clause_entry) Hashtbl.t ->
  int -> clause_entry list
val clause_key : clause -> string

val fill_slots :
  t -> Skeleton.t -> Genie_dataset.Argument_id.result ->
  (string * Value.t) list * float

val span_score :
  t ->
  param:string ->
  pool_opt:string option ->
  cue:(string -> float) ->
  before:string option ->
  after:string option ->
  string list ->
  float

val candidate_spans : string list -> (int * string list) list
val shuffle_program : Genie_util.Rng.t -> Ast.program -> Ast.program
val cfg : t -> config

val digest : t -> string
(** 16-hex digest over every statistical table a prediction can depend on
    (inventory, clause fragments, alignment and copy counters, decoding
    config), folded in sorted key order — stable under randomized hash
    seeds and across shallow copies. Equal digests mean the models answer
    every sentence identically; the serve layer uses this as the active
    model's identity for cache invalidation and stats. *)
