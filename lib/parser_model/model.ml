(* The record-of-closures model boundary between training backends and the
   serving stack. See model.mli for the contract; the notable invariants:

   - [digest] is computed once per underlying backend and threaded through
     [fork], so a fleet of worker handles agrees on the active model's
     identity without re-hashing the tables/weights per worker.
   - [fork] privatizes exactly the per-handle mutable scratch: the
     aligner's explainer memo (a lazily-filled Hashtbl that predict
     writes), the seq2seq's tensor arena. Everything heavy is shared. *)

open Genie_thingtalk

type kind = Kind_aligner | Kind_seq2seq

let kind_to_string = function
  | Kind_aligner -> "aligner"
  | Kind_seq2seq -> "seq2seq"

type prediction = Aligner.prediction = {
  program : Ast.program option;
  nn_tokens : string list;
  score : float;
}

let no_prediction = Aligner.no_prediction

type t = {
  kind : kind;
  digest : string;
  predict : ?scope:Genie_observe.Tracer.scope -> string list -> prediction;
  predict_batch : string list list -> prediction list;
  fork : unit -> t;
}

let of_aligner al =
  let digest = Aligner.digest al in
  let rec make al =
    { kind = Kind_aligner;
      digest;
      predict = (fun ?scope tokens -> Aligner.predict ?scope al tokens);
      predict_batch = (fun batch -> Aligner.predict_batch al batch);
      fork =
        (fun () ->
          make
            { al with
              Aligner.explainer = Hashtbl.copy al.Aligner.explainer }) }
  in
  make al

let of_seq2seq ?options ?max_len ~lib model =
  let digest = Genie_nn.Seq2seq.weight_digest model in
  let to_prediction (toks, logp) =
    let program =
      match Nn_syntax.of_tokens ?options lib toks with
      | p -> Some p
      | exception Nn_syntax.Parse_error _ -> None
      | exception _ -> None
    in
    { program; nn_tokens = toks; score = logp }
  in
  let rec make () =
    (* One arena per handle: decode_batch resets it on entry, so a handle
       must not be shared across domains — fork per worker instead. *)
    let scratch = Genie_nn.Tensor.Scratch.create () in
    let decode srcs =
      Genie_nn.Seq2seq.decode_batch ?max_len ~scratch model srcs
    in
    let predict_batch batch =
      (* Empty rows can't be encoded (attention needs >= 1 position); route
         them around the decoder and keep submission order. *)
      let indexed = List.mapi (fun i s -> (i, s)) batch in
      let nonempty = List.filter (fun (_, s) -> s <> []) indexed in
      let decoded = decode (List.map snd nonempty) in
      let table = Hashtbl.create 16 in
      List.iter2
        (fun (i, _) out -> Hashtbl.replace table i (to_prediction out))
        nonempty decoded;
      List.map
        (fun (i, _) ->
          match Hashtbl.find_opt table i with
          | Some p -> p
          | None -> no_prediction)
        indexed
    in
    { kind = Kind_seq2seq;
      digest;
      predict =
        (fun ?scope tokens ->
          ignore scope;
          match predict_batch [ tokens ] with
          | [ p ] -> p
          | _ -> assert false);
      predict_batch;
      fork = (fun () -> make ()) }
  in
  make ()

let load_checkpoint ?options ?max_len ~lib path =
  match Genie_checkpoint.Checkpoint.load path with
  | Error e -> Error e
  | Ok ck -> (
      match Genie_checkpoint.Checkpoint.restore_weights ck with
      | Error e -> Error e
      | Ok model -> Ok (of_seq2seq ?options ?max_len ~lib model))
