(** Evaluation metrics (paper section 5).

    Program accuracy counts a result correct only when the output has the
    correct functions, parameters, joins and filters -- equivalent to an
    exact match of canonicalized programs. Test sentences may carry several
    valid annotations. *)

open Genie_thingtalk

type metrics = {
  n : int;
  program_accuracy : float;
  function_accuracy : float;  (** correct multiset of functions *)
  device_accuracy : float;  (** correct set of skills *)
  prim_compound_accuracy : float;  (** primitive vs compound identified *)
  syntax_ok : float;  (** parses and type-checks (section 5.5) *)
  wrong_param_value : float;
      (** right program shape, wrong copied parameter value *)
  slot_f1 : float;
      (** micro-averaged F1 over (parameter, value) slot multisets, scored
          against each sentence's best-matching annotation; computed once
          from summed integer counts so sharded and batched evaluation
          agree bitwise *)
}

val zero_metrics : metrics

val evaluate :
  Schema.Library.t ->
  (string list -> Ast.program option) ->
  Genie_dataset.Example.t list ->
  metrics
(** Runs a predictor over a test set and scores it against all annotations. *)

val evaluate_batched :
  Schema.Library.t ->
  (string list list -> Ast.program option list) ->
  Genie_dataset.Example.t list ->
  metrics
(** {!evaluate} driven by one whole-set prediction call, letting the
    predictor amortize shared scoring work across the batch (see
    [Aligner.predict_batch]); metrics are identical to {!evaluate} whenever
    the batched predictor agrees with the per-example one. *)

val evaluate_sharded :
  ?workers:int ->
  ?shard_size:int ->
  Schema.Library.t ->
  (string list list -> Ast.program option list) ->
  Genie_dataset.Example.t list ->
  metrics
(** {!evaluate_batched} fanned over a [Genie_conc.Pool]: the test set is cut
    into fixed-size shards (default 32, independent of [workers]), each
    scored by one batched prediction call, and the integer counts are merged
    in submission order. Bitwise identical to {!evaluate_batched} at every
    worker count — the oracle behind [test/golden/eval.digest]. *)

val digest : metrics -> string
(** Hash64 over the metric bit patterns; equal iff every float is bitwise
    identical. Regold the golden with [EVAL_REGOLD=1]. *)

val mean_half_range : float list -> float * float
(** Mean and half of the max-min range over runs, as the paper reports. *)

val pp_metrics : Format.formatter -> metrics -> unit
