(** Evaluation metrics (paper section 5).

    Program accuracy counts a result correct only when the output has the
    correct functions, parameters, joins and filters -- equivalent to an
    exact match of canonicalized programs. Test sentences may carry several
    valid annotations. *)

open Genie_thingtalk

type metrics = {
  n : int;
  program_accuracy : float;
  function_accuracy : float;  (** correct multiset of functions *)
  device_accuracy : float;  (** correct set of skills *)
  prim_compound_accuracy : float;  (** primitive vs compound identified *)
  syntax_ok : float;  (** parses and type-checks (section 5.5) *)
  wrong_param_value : float;
      (** right program shape, wrong copied parameter value *)
}

val zero_metrics : metrics

val evaluate :
  Schema.Library.t ->
  (string list -> Ast.program option) ->
  Genie_dataset.Example.t list ->
  metrics
(** Runs a predictor over a test set and scores it against all annotations. *)

val evaluate_batched :
  Schema.Library.t ->
  (string list list -> Ast.program option list) ->
  Genie_dataset.Example.t list ->
  metrics
(** {!evaluate} driven by one whole-set prediction call, letting the
    predictor amortize shared scoring work across the batch (see
    [Aligner.predict_batch]); metrics are identical to {!evaluate} whenever
    the batched predictor agrees with the per-example one. *)

val mean_half_range : float list -> float * float
(** Mean and half of the max-min range over runs, as the paper reports. *)

val pp_metrics : Format.formatter -> metrics -> unit
