(* Program skeletons: the NN-token serialization of a program with its
   constant values replaced by typed slot markers (SLOT_0, SLOT_1, ...).

   The decoder predicts a skeleton and then fills the slots with values copied
   from the input sentence; this mirrors the pointer-generator decomposition
   of the MQAN model (generate program tokens from the vocabulary, copy
   parameter values from the context). *)

open Genie_thingtalk

(* What kind of value a slot holds, and its default (exemplar) value from the
   training data. *)
type slot = {
  marker : string; (* SLOT_k *)
  param : string; (* the parameter name the value fills *)
  exemplar : Value.t; (* the original value; supplies type and fallback *)
}

type t = {
  tokens : string list; (* serialized program with slot markers *)
  slots : slot list;
}

let key sk = String.concat " " sk.tokens

(* Values that are predicted as part of the skeleton rather than copied:
   booleans, enums (they carry function semantics such as on/off), undefined
   slots, and relative locations (home/work/here behave like keywords). *)
let is_slotted (v : Value.t) =
  match v with
  | Value.String _ | Value.Entity _ | Value.Number _ | Value.Measure _ | Value.Date _
  | Value.Time _ | Value.Currency _ -> true
  | Value.Location (Value.L_named _) -> true
  | Value.Location _ | Value.Boolean _ | Value.Enum _ | Value.Array _ | Value.Undefined ->
      false

(* Extracts the skeleton of [program]. Equal values share one marker (the
   serializer matches by value), which also means repeated values are filled
   consistently at decode time. *)
let of_program ?(options = Nn_syntax.default_options) lib (program : Ast.program) : t =
  let slots = ref [] in
  let next = ref 0 in
  let marker_for param v =
    match
      List.find_opt (fun s -> Value.equal s.exemplar v) !slots
    with
    | Some s -> s.marker
    | None ->
        let m = Printf.sprintf "SLOT_%d" !next in
        incr next;
        slots := !slots @ [ { marker = m; param; exemplar = v } ];
        m
  in
  (* first pass assigns markers in program order *)
  ignore
    (Ast.map_constants
       (fun param v ->
         if is_slotted v then ignore (marker_for param v);
         v)
       program);
  let entities = List.map (fun s -> (s.marker, s.exemplar)) !slots in
  let tokens = Nn_syntax.to_tokens ~options ~entities lib program in
  { tokens; slots = !slots }

(* Rebuilds a program from the skeleton and a filled value per slot. *)
let fill ?(options = Nn_syntax.default_options) lib (sk : t)
    (values : (string * Value.t) list) : Ast.program option =
  let entities =
    List.map
      (fun s ->
        match List.assoc_opt s.marker values with
        | Some v -> (s.marker, v)
        | None -> (s.marker, s.exemplar))
      sk.slots
  in
  match Nn_syntax.of_tokens ~options ~entities lib sk.tokens with
  | p -> Some p
  | exception Nn_syntax.Parse_error _ -> None
  | exception _ -> None

(* The "atoms" of a skeleton: the tokens that carry semantic content and are
   matched against sentence n-grams (function references, parameter heads,
   operators, structural keywords, enum values). *)
let structural_atoms =
  [ "now"; "monitor"; "edge"; "timer"; "attimer"; "notify"; "join"; "filter"; "agg";
    "max"; "min"; "sum"; "avg"; "count"; "new"; "not"; "or" ]

let is_atom tok =
  Genie_util.Tok.starts_with ~prefix:"@" tok
  || Genie_util.Tok.starts_with ~prefix:"param:" tok
  || Genie_util.Tok.starts_with ~prefix:"enum:" tok
  || Genie_util.Tok.starts_with ~prefix:"unit:" tok
  || Genie_util.Tok.starts_with ~prefix:"location:" tok
  || List.mem tok structural_atoms
  || List.mem tok (List.map Ast.comp_op_to_string Ast.all_comp_ops)

let atoms sk = List.sort_uniq compare (List.filter is_atom sk.tokens)

let function_atoms sk =
  List.filter (fun t -> Genie_util.Tok.starts_with ~prefix:"@" t) (atoms sk)

(* A coarse complexity measure used as a decoding prior tie-breaker. *)
let size sk = List.length sk.tokens
