(* The comprehensive Spotify skill of paper section 6.1: 15 queries and 17
   actions. The skill exercises quote-free parameters whose value identity
   matters ("play shake it off" is play_song, "play taylor swift" is
   play_artist). *)

open Genie_thingtalk
open Schema

let song = Ttype.Entity "tt:song"
let artist = Ttype.Entity "tt:artist"
let album = Ttype.Entity "tt:album"
let playlist = Ttype.Entity "tt:playlist"

let classes =
  [ cls "com.spotify" ~doc:"Spotify music streaming"
      [ (* 15 queries *)
        query "get_currently_playing" ~is_list:false ~doc:"the song playing now"
          [ out "song" song; out "artist" artist; out "album" album ];
        query "get_user_top_tracks" ~doc:"your most played songs"
          [ out "song" song; out "artist" artist ];
        query "get_user_top_artists" ~doc:"your most played artists" [ out "artist" artist ];
        query "get_song_from_library" ~doc:"songs saved in your library"
          [ out "song" song; out "artist" artist; out "album" album;
            out "popularity" Ttype.Number; out "energy" Ttype.Number;
            out "tempo" (Ttype.Measure "bpm") ];
        query "get_album_from_library" ~doc:"albums saved in your library"
          [ out "album" album; out "artist" artist ];
        query "get_artist_from_library" ~doc:"artists you saved" [ out "artist" artist ];
        query "get_playlists" ~doc:"your playlists"
          [ out "playlist" playlist; out "song_count" Ttype.Number ];
        query "get_new_releases" ~doc:"newly released albums"
          [ out "album" album; out "artist" artist ];
        query "search_songs" ~monitorable:false ~doc:"search for songs"
          [ in_req "query" Ttype.String; out "song" song; out "artist" artist;
            out "popularity" Ttype.Number; out "energy" Ttype.Number;
            out "tempo" (Ttype.Measure "bpm") ];
        query "search_artists" ~monitorable:false ~doc:"search for artists"
          [ in_req "query" Ttype.String; out "artist" artist ];
        query "search_albums" ~monitorable:false ~doc:"search for albums"
          [ in_req "query" Ttype.String; out "album" album; out "artist" artist ];
        query "search_playlists" ~monitorable:false ~doc:"search for playlists"
          [ in_req "query" Ttype.String; out "playlist" playlist ];
        query "get_song_audio_features" ~monitorable:false ~is_list:false
          ~doc:"audio features of a song"
          [ in_req "song" song; out "tempo" (Ttype.Measure "bpm");
            out "energy" Ttype.Number; out "danceability" Ttype.Number ];
        query "get_recommendations" ~monitorable:false ~doc:"recommended songs"
          [ out "song" song; out "artist" artist ];
        query "get_saved_shows" ~doc:"podcasts you saved" [ out "show" Ttype.String ];
        (* 17 actions *)
        action "play_song" ~doc:"play a song" [ in_req "song" song ];
        action "play_artist" ~doc:"play songs by an artist" [ in_req "artist" artist ];
        action "play_album" ~doc:"play an album" [ in_req "album" album ];
        action "play_playlist" ~doc:"play a playlist" [ in_req "playlist" playlist ];
        action "play_my_media" ~doc:"play from your library" [];
        action "pause" ~doc:"pause playback" [];
        action "resume" ~doc:"resume playback" [];
        action "skip_next" ~doc:"skip to the next song" [];
        action "skip_previous" ~doc:"go back to the previous song" [];
        action "set_volume" ~doc:"set the playback volume" [ in_req "volume" Ttype.Number ];
        action "set_shuffle" ~doc:"turn shuffle on or off"
          [ in_req "shuffle" (Ttype.Enum [ "on"; "off" ]) ];
        action "set_repeat" ~doc:"set the repeat mode"
          [ in_req "repeat" (Ttype.Enum [ "track"; "context"; "off" ]) ];
        action "add_song_to_library" ~doc:"save a song to your library" [ in_req "song" song ];
        action "remove_song_from_library" ~doc:"remove a song from your library"
          [ in_req "song" song ];
        action "add_song_to_playlist" ~doc:"add a song to a playlist"
          [ in_req "song" song; in_req "playlist" playlist ];
        action "create_playlist" ~doc:"create a playlist" [ in_req "name" Ttype.String ];
        action "add_to_queue" ~doc:"queue a song" [ in_req "song" song ] ] ]

let fn name = Ast.Fn.make "com.spotify" name

let templates : Prim.t list =
  let open Prim in
  [ query (fn "get_currently_playing") [] "the song that is playing";
    query (fn "get_currently_playing") [] "what i am listening to";
    monitor (fn "get_currently_playing") [] "when the song changes";
    query (fn "get_user_top_tracks") [] "my most played songs";
    query (fn "get_user_top_tracks") [] "my top tracks on spotify";
    query (fn "get_user_top_artists") [] "my favorite artists";
    query (fn "get_song_from_library") [] "songs in my spotify library";
    query (fn "get_song_from_library") [] "my saved songs";
    query (fn "get_song_from_library")
      [ ("artist", artist) ]
      ~filter:(atom "artist" Ast.Op_eq "artist")
      "songs by $artist in my library";
    query (fn "get_song_from_library")
      [ ("tempo", Ttype.Measure "bpm") ]
      ~filter:(atom "tempo" Ast.Op_gt "tempo")
      "songs faster than $tempo";
    monitor (fn "get_song_from_library") [] "when i save a song";
    query (fn "get_album_from_library") [] "albums in my library";
    query (fn "get_artist_from_library") [] "artists i saved";
    query (fn "get_playlists") [] "my playlists";
    monitor (fn "get_playlists") [] "when i create a playlist";
    query (fn "get_new_releases") [] "new album releases";
    monitor (fn "get_new_releases") [] "when a new album comes out";
    query (fn "search_songs") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "songs matching $query";
    query (fn "search_songs") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ] ~category:Vp
      "search spotify for $query";
    query (fn "search_artists") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "artists matching $query";
    query (fn "search_albums") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "albums matching $query";
    query (fn "search_playlists") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "playlists about $query";
    query (fn "get_song_audio_features") [ ("song", song) ]
      ~binds:[ ("song", "song") ]
      "the audio features of $song";
    query (fn "get_song_audio_features") [ ("song", song) ]
      ~binds:[ ("song", "song") ]
      "the tempo of $song";
    query (fn "get_recommendations") [] "song recommendations for me";
    query (fn "get_saved_shows") [] "podcasts i follow";
    action (fn "play_song") [ ("song", song) ] ~binds:[ ("song", "song") ] "play $song";
    action (fn "play_song") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "play the song $song";
    action (fn "play_song") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "listen to $song";
    action (fn "play_artist") [ ("artist", artist) ] ~binds:[ ("artist", "artist") ]
      "play $artist";
    action (fn "play_artist") [ ("artist", artist) ] ~binds:[ ("artist", "artist") ]
      "play music by $artist";
    action (fn "play_artist") [ ("artist", artist) ] ~binds:[ ("artist", "artist") ]
      "play songs by $artist";
    action (fn "play_album") [ ("album", album) ] ~binds:[ ("album", "album") ]
      "play the album $album";
    action (fn "play_playlist") [ ("playlist", playlist) ]
      ~binds:[ ("playlist", "playlist") ]
      "play my $playlist playlist";
    action (fn "play_my_media") [] "play my music";
    action (fn "pause") [] "pause the music";
    action (fn "pause") [] "stop playing";
    action (fn "resume") [] "resume the music";
    action (fn "skip_next") [] "skip this song";
    action (fn "skip_next") [] "play the next song";
    action (fn "skip_previous") [] "play the previous song";
    action (fn "set_volume") [ ("volume", Ttype.Number) ] ~binds:[ ("volume", "volume") ]
      "set the spotify volume to $volume";
    action (fn "set_shuffle") [ ("shuffle", Ttype.Enum [ "on"; "off" ]) ]
      ~binds:[ ("shuffle", "shuffle") ]
      "turn shuffle $shuffle";
    action (fn "set_repeat") [ ("repeat", Ttype.Enum [ "track"; "context"; "off" ]) ]
      ~binds:[ ("repeat", "repeat") ]
      "set repeat to $repeat";
    action (fn "add_song_to_library") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "add $song to my library";
    action (fn "add_song_to_library") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "save $song";
    action (fn "remove_song_from_library") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "remove $song from my library";
    action (fn "add_song_to_playlist")
      [ ("song", song); ("playlist", playlist) ]
      ~binds:[ ("song", "song"); ("playlist", "playlist") ]
      "add $song to the playlist $playlist";
    action (fn "create_playlist") [ ("name", Ttype.String) ] ~binds:[ ("name", "name") ]
      "create a playlist called $name";
    action (fn "add_to_queue") [ ("song", song) ] ~binds:[ ("song", "song") ]
      "queue $song" ]
