(** Primitive templates (paper section 3.1, Table 1).

    A primitive template pairs a natural-language utterance (with
    [$placeholders]) with the code fragment it denotes, tagged with its
    grammar category:

    {v cat := u -> lambda(pn : t, ...) -> (s | q | a) v}

    Queries may be noun phrases ("the download URL of $x") or verb phrases
    ("download $x"); monitors are when-phrases. *)

open Genie_thingtalk

type category = Np | Vp | Wp

val category_to_string : category -> string

type t = {
  category : category;
  utterance : string;
  params : (string * Ttype.t) list;  (** placeholder name -> type *)
  build : (string * Value.t) list -> Ast.fragment option;
      (** instantiates the template under a placeholder environment; [None]
          rejects the combination *)
  fn : Ast.Fn.t;  (** the primary function the template invokes *)
}

val placeholder_names : string -> string list

val render_value : ?quote:bool -> Value.t -> string
(** Crowd-worker-friendly rendering: quotes around free-form strings,
    @-signs on usernames, #-signs on hashtags (section 3.2). *)

val instantiate_utterance : ?quote:bool -> string -> (string * Value.t) list -> string

(** {2 Authoring helpers} *)

val query :
  ?category:category ->
  ?fixed:(string * Value.t) list ->
  ?binds:(string * string) list ->
  ?filter:((string * Value.t) list -> Ast.predicate option) ->
  Ast.Fn.t ->
  (string * Ttype.t) list ->
  string ->
  t
(** A query template. [fixed] pins input parameters; [binds] maps
    placeholders to input parameters; [filter] adds a predicate over the
    placeholders. *)

val action :
  ?fixed:(string * Value.t) list ->
  ?binds:(string * string) list ->
  Ast.Fn.t ->
  (string * Ttype.t) list ->
  string ->
  t

val monitor :
  ?fixed:(string * Value.t) list ->
  ?binds:(string * string) list ->
  ?on_new:string list ->
  ?filter:((string * Value.t) list -> Ast.predicate option) ->
  Ast.Fn.t ->
  (string * Ttype.t) list ->
  string ->
  t

val atom :
  string -> Ast.comp_op -> string -> (string * Value.t) list -> Ast.predicate option
(** [atom lhs op placeholder] filters on a placeholder's sampled value. *)

val const_atom :
  string -> Ast.comp_op -> Value.t -> (string * Value.t) list -> Ast.predicate option
