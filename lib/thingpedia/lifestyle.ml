(* Lifestyle and home skills: streaming, reading lists, news aggregators,
   shopping, rides, movies, space, dictionaries, doorbells, vacuums, locks,
   health devices, sports tracking and payments. *)

open Genie_thingtalk
open Schema

let classes =
  [ cls "com.twitch" ~doc:"Twitch live streams"
      [ query "get_streams" ~doc:"live channels you follow"
          [ out "channel" (Ttype.Entity "tt:channel"); out "title" Ttype.String;
            out "viewers" Ttype.Number ];
        action "follow_channel" ~doc:"follow a channel"
          [ in_req "channel" (Ttype.Entity "tt:channel") ] ];
    cls "com.pocket" ~doc:"Pocket reading list"
      [ query "list_articles" ~doc:"articles saved for later"
          [ out "title" Ttype.String; out "link" Ttype.Url; out "word_count" Ttype.Number ];
        action "save" ~doc:"save an article" [ in_req "url" Ttype.Url ] ];
    cls "com.hackernews" ~doc:"Hacker News"
      [ query "top_stories" ~doc:"stories on the front page"
          [ out "title" Ttype.String; out "link" Ttype.Url; out "score" Ttype.Number;
            out "comment_count" Ttype.Number ] ];
    cls "com.walmart" ~doc:"Product search"
      [ query "search_product" ~monitorable:false ~doc:"search the catalog"
          [ in_req "query" Ttype.String; out "name" Ttype.String;
            out "price" Ttype.Currency; out "link" Ttype.Url ] ];
    cls "com.lyft" ~doc:"Lyft ride sharing"
      [ query "price_estimate" ~monitorable:false ~is_list:false
          ~doc:"a ride price estimate"
          [ in_req "start" Ttype.Location; in_req "end" Ttype.Location;
            out "fare" Ttype.Currency ] ];
    cls "com.netflix" ~doc:"Movie catalog"
      [ query "search_movies" ~monitorable:false ~doc:"search movies and shows"
          [ in_req "query" Ttype.String; out "title" Ttype.String;
            out "rating" Ttype.Number; out "link" Ttype.Url ] ];
    cls "gov.nasa" ~doc:"NASA open data"
      [ query "apod" ~is_list:false ~doc:"the astronomy picture of the day"
          [ out "title" Ttype.String; out "picture_url" Ttype.Picture;
            out "description" Ttype.String ];
        query "asteroid" ~is_list:false ~doc:"the closest asteroid approach today"
          [ out "name" Ttype.String; out "distance" (Ttype.Measure "m");
            out "is_dangerous" Ttype.Boolean ] ];
    cls "org.thingpedia.dictionary" ~doc:"Dictionary"
      [ query "define" ~monitorable:false ~is_list:false ~doc:"define a word"
          [ in_req "word" Ttype.String; out "definition" Ttype.String ] ];
    cls "com.ring.doorbell" ~doc:"Video doorbell"
      [ query "current_event" ~is_list:false ~doc:"the latest doorbell event"
          [ out "has_motion" Ttype.Boolean; out "has_ring" Ttype.Boolean;
            out "picture_url" Ttype.Picture ] ];
    cls "com.irobot.vacuum" ~doc:"Robot vacuum"
      [ query "get_state" ~is_list:false ~doc:"what the vacuum is doing"
          [ out "state" (Ttype.Enum [ "cleaning"; "docked"; "stuck" ]);
            out "battery_level" Ttype.Number ];
        action "start_cleaning" ~doc:"start a cleaning run" [];
        action "dock" ~doc:"send the vacuum home" [] ];
    cls "com.august.lock" ~doc:"Smart lock"
      [ query "get_state" ~is_list:false ~doc:"the lock state"
          [ out "state" (Ttype.Enum [ "locked"; "unlocked" ]) ];
        action "lock" ~doc:"lock the door" [];
        action "unlock" ~doc:"unlock the door" [] ];
    cls "com.withings" ~doc:"Health devices"
      [ query "blood_pressure" ~is_list:false ~doc:"your latest blood pressure reading"
          [ out "systolic" Ttype.Number; out "diastolic" Ttype.Number ] ];
    cls "com.strava" ~doc:"Activity tracking"
      [ query "activities" ~doc:"your recent workouts"
          [ out "kind" (Ttype.Enum [ "run"; "ride"; "swim" ]);
            out "distance" (Ttype.Measure "m"); out "duration" (Ttype.Measure "ms") ] ];
    cls "com.venmo" ~doc:"Payments"
      [ query "transactions" ~doc:"your recent payments"
          [ out "payer" Ttype.String; out "amount" Ttype.Currency;
            out "note" Ttype.String ];
        action "send_money" ~doc:"pay someone"
          [ in_req "to" Ttype.String; in_req "amount" Ttype.Currency ] ] ]

let fn = Ast.Fn.make

let templates : Prim.t list =
  let open Prim in
  [ query (fn "com.twitch" "get_streams") [] "live twitch channels i follow";
    monitor (fn "com.twitch" "get_streams") [] "when a channel i follow goes live on twitch";
    action (fn "com.twitch" "follow_channel")
      [ ("channel", Ttype.Entity "tt:channel") ]
      ~binds:[ ("channel", "channel") ]
      "follow $channel on twitch";
    query (fn "com.pocket" "list_articles") [] "articles in my pocket list";
    query (fn "com.pocket" "list_articles") [] "my reading list";
    monitor (fn "com.pocket" "list_articles") [] "when i save an article to pocket";
    action (fn "com.pocket" "save") [ ("url", Ttype.Url) ] ~binds:[ ("url", "url") ]
      "save $url to pocket";
    action (fn "com.pocket" "save") [ ("url", Ttype.Url) ] ~binds:[ ("url", "url") ]
      "add $url to my reading list";
    query (fn "com.hackernews" "top_stories") [] "the hacker news front page";
    query (fn "com.hackernews" "top_stories") [] "top stories on hacker news";
    monitor (fn "com.hackernews" "top_stories") [] "when a story hits the hacker news front page";
    query (fn "com.walmart" "search_product") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "products matching $query";
    query (fn "com.walmart" "search_product") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ] ~category:Vp
      "shop for $query";
    query (fn "com.lyft" "price_estimate")
      [ ("start", Ttype.Location); ("end", Ttype.Location) ]
      ~binds:[ ("start", "start"); ("end", "end") ]
      "a lyft fare estimate from $start to $end";
    query (fn "com.netflix" "search_movies") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "movies about $query";
    query (fn "com.netflix" "search_movies") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "shows matching $query";
    query (fn "gov.nasa" "apod") [] "the astronomy picture of the day";
    query (fn "gov.nasa" "apod") [] "nasa 's picture of the day";
    monitor (fn "gov.nasa" "apod") [] "when nasa posts a new picture of the day";
    query (fn "gov.nasa" "asteroid") [] "the closest asteroid today";
    query (fn "org.thingpedia.dictionary" "define") [ ("word", Ttype.String) ]
      ~binds:[ ("word", "word") ]
      "the definition of $word";
    query (fn "org.thingpedia.dictionary" "define") [ ("word", Ttype.String) ]
      ~binds:[ ("word", "word") ] ~category:Vp
      "define $word";
    query (fn "com.ring.doorbell" "current_event") [] "the latest event at my doorbell";
    monitor (fn "com.ring.doorbell" "current_event") [] "when someone is at the door";
    monitor (fn "com.ring.doorbell" "current_event")
      []
      ~filter:(const_atom "has_ring" Ast.Op_eq (Value.Boolean true))
      "when the doorbell rings";
    query (fn "com.irobot.vacuum" "get_state") [] "what my vacuum is doing";
    monitor (fn "com.irobot.vacuum" "get_state")
      []
      ~filter:(const_atom "state" Ast.Op_eq (Value.Enum "stuck"))
      "when my vacuum gets stuck";
    action (fn "com.irobot.vacuum" "start_cleaning") [] "start the vacuum";
    action (fn "com.irobot.vacuum" "start_cleaning") [] "clean the floor";
    action (fn "com.irobot.vacuum" "dock") [] "send the vacuum home";
    query (fn "com.august.lock" "get_state") [] "whether my door is locked";
    monitor (fn "com.august.lock" "get_state")
      []
      ~filter:(const_atom "state" Ast.Op_eq (Value.Enum "unlocked"))
      "when my door gets unlocked";
    action (fn "com.august.lock" "lock") [] "lock the door";
    action (fn "com.august.lock" "lock") [] "lock up";
    action (fn "com.august.lock" "unlock") [] "unlock the door";
    query (fn "com.withings" "blood_pressure") [] "my blood pressure";
    monitor (fn "com.withings" "blood_pressure") [] "when i take a blood pressure reading";
    query (fn "com.strava" "activities") [] "my recent workouts";
    query (fn "com.strava" "activities") [] "my runs on strava";
    monitor (fn "com.strava" "activities") [] "when i finish a workout";
    query (fn "com.venmo" "transactions") [] "my venmo transactions";
    monitor (fn "com.venmo" "transactions") [] "when i get paid on venmo";
    action (fn "com.venmo" "send_money")
      [ ("to", Ttype.String); ("amount", Ttype.Currency) ]
      ~binds:[ ("to", "to"); ("amount", "amount") ]
      "send $amount to $to on venmo" ]
