(* Social-media skills: Twitter, Facebook, Instagram, LinkedIn, Reddit,
   Pinterest, Tumblr. *)

open Genie_thingtalk
open Schema

let username = Ttype.Entity "tt:username"
let hashtag = Ttype.Entity "tt:hashtag"

let classes =
  [ cls "com.twitter" ~doc:"Twitter social network"
      [ query "timeline" ~doc:"tweets from people you follow"
          [ out "text" Ttype.String; out "hashtags" (Ttype.Array hashtag);
            out "urls" (Ttype.Array Ttype.Url); out "author" username;
            out "in_reply_to" username; out "tweet_id" (Ttype.Entity "tt:tweet_id") ];
        query "search" ~doc:"search recent tweets"
          [ in_req "query" Ttype.String; out "text" Ttype.String;
            out "hashtags" (Ttype.Array hashtag); out "author" username;
            out "tweet_id" (Ttype.Entity "tt:tweet_id") ];
        query "my_tweets" ~doc:"your own recent tweets"
          [ out "text" Ttype.String; out "hashtags" (Ttype.Array hashtag);
            out "tweet_id" (Ttype.Entity "tt:tweet_id") ];
        query "direct_messages" ~doc:"direct messages you received"
          [ out "sender" username; out "message" Ttype.String ];
        action "post" ~doc:"post a tweet" [ in_req "status" Ttype.String ];
        action "post_picture" ~doc:"post a picture with a caption"
          [ in_req "picture_url" Ttype.Picture; in_req "caption" Ttype.String ];
        action "retweet" ~doc:"retweet a tweet"
          [ in_req "tweet_id" (Ttype.Entity "tt:tweet_id") ];
        action "follow" ~doc:"follow a user" [ in_req "followee" username ];
        action "send_direct_message" ~doc:"send a direct message"
          [ in_req "to" username; in_req "message" Ttype.String ] ];
    cls "com.facebook" ~doc:"Facebook social network"
      [ action "post" ~doc:"post a status update" [ in_req "status" Ttype.String ];
        action "post_picture" ~doc:"post a picture with a caption"
          [ in_req "picture_url" Ttype.Picture; in_req "caption" Ttype.String ] ];
    cls "com.instagram" ~doc:"Instagram photo sharing"
      [ query "get_pictures" ~doc:"your recent Instagram pictures"
          [ out "picture_url" Ttype.Picture; out "caption" Ttype.String;
            out "hashtags" (Ttype.Array hashtag); out "location" Ttype.Location;
            out "media_id" (Ttype.Entity "tt:media_id") ];
        query "get_profile" ~monitorable:false ~is_list:false ~doc:"your Instagram profile"
          [ out "bio" Ttype.String; out "follower_count" Ttype.Number ] ];
    cls "com.linkedin" ~doc:"LinkedIn professional network"
      [ query "get_profile" ~is_list:false ~doc:"your LinkedIn profile"
          [ out "formatted_name" Ttype.String; out "headline" Ttype.String;
            out "industry" Ttype.String; out "profile_picture" Ttype.Picture ];
        action "share" ~doc:"share a LinkedIn update" [ in_req "status" Ttype.String ] ];
    cls "com.reddit" ~doc:"Reddit front page"
      [ query "frontpage" ~doc:"posts on the Reddit front page"
          [ in_opt "subreddit" (Ttype.Entity "tt:subreddit"); out "title" Ttype.String;
            out "link" Ttype.Url; out "score" Ttype.Number;
            out "category" (Ttype.Entity "tt:subreddit") ] ];
    cls "com.pinterest" ~doc:"Pinterest boards"
      [ query "get_pins" ~doc:"pins on your Pinterest boards"
          [ out "description" Ttype.String; out "picture_url" Ttype.Picture;
            out "link" Ttype.Url ];
        action "save_pin" ~doc:"save a pin to a board"
          [ in_req "board" Ttype.String; in_req "picture_url" Ttype.Picture ] ];
    cls "com.tumblr" ~doc:"Tumblr blogging"
      [ query "dashboard" ~doc:"posts on your Tumblr dashboard"
          [ out "title" Ttype.String; out "body" Ttype.String; out "author" username ];
        action "post_text" ~doc:"publish a text post"
          [ in_req "title" Ttype.String; in_req "body" Ttype.String ] ] ]

let fn cls name = Ast.Fn.make cls name

let templates : Prim.t list =
  let open Prim in
  [ (* twitter *)
    query (fn "com.twitter" "timeline") [] "tweets from people i follow";
    query (fn "com.twitter" "timeline") [] "my twitter timeline";
    query (fn "com.twitter" "timeline") [] "recent tweets";
    query (fn "com.twitter" "timeline")
      [ ("author", username) ]
      ~filter:(atom "author" Ast.Op_eq "author")
      "tweets from $author";
    query (fn "com.twitter" "timeline")
      [ ("hashtag", hashtag) ]
      ~filter:(atom "hashtags" Ast.Op_contains "hashtag")
      "tweets with hashtag $hashtag";
    monitor (fn "com.twitter" "timeline") [] "when someone i follow tweets";
    monitor (fn "com.twitter" "timeline") [] "when there is a new tweet";
    monitor (fn "com.twitter" "timeline")
      [ ("author", username) ]
      ~filter:(atom "author" Ast.Op_eq "author")
      "when $author tweets";
    query (fn "com.twitter" "search") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "tweets about $query";
    query (fn "com.twitter" "search") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ] ~category:Vp
      "search twitter for $query";
    query (fn "com.twitter" "my_tweets") [] "my tweets";
    query (fn "com.twitter" "my_tweets") [] "tweets i posted";
    query (fn "com.twitter" "direct_messages") [] "my twitter direct messages";
    monitor (fn "com.twitter" "direct_messages") [] "when i receive a twitter dm";
    action (fn "com.twitter" "post") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "tweet $status";
    action (fn "com.twitter" "post") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "post $status on twitter";
    action (fn "com.twitter" "post")
      [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "post a tweet saying $status";
    action (fn "com.twitter" "post_picture")
      [ ("picture_url", Ttype.Picture); ("caption", Ttype.String) ]
      ~binds:[ ("picture_url", "picture_url"); ("caption", "caption") ]
      "tweet picture $picture_url with caption $caption";
    action (fn "com.twitter" "post_picture") [ ("picture_url", Ttype.Picture) ]
      ~binds:[ ("picture_url", "picture_url") ]
      ~fixed:[ ("caption", Value.String "check this out") ]
      "post picture $picture_url on twitter";
    action (fn "com.twitter" "retweet") [ ("tweet_id", Ttype.Entity "tt:tweet_id") ]
      ~binds:[ ("tweet_id", "tweet_id") ]
      "retweet $tweet_id";
    action (fn "com.twitter" "follow") [ ("followee", username) ]
      ~binds:[ ("followee", "followee") ]
      "follow $followee on twitter";
    action (fn "com.twitter" "send_direct_message")
      [ ("to", username); ("message", Ttype.String) ]
      ~binds:[ ("to", "to"); ("message", "message") ]
      "send a twitter dm to $to saying $message";
    (* facebook *)
    action (fn "com.facebook" "post") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "post $status on facebook";
    action (fn "com.facebook" "post") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "update my facebook status to $status";
    action (fn "com.facebook" "post_picture")
      [ ("picture_url", Ttype.Picture); ("caption", Ttype.String) ]
      ~binds:[ ("picture_url", "picture_url"); ("caption", "caption") ]
      "post picture $picture_url on facebook with caption $caption";
    action (fn "com.facebook" "post_picture") [ ("picture_url", Ttype.Picture) ]
      ~binds:[ ("picture_url", "picture_url") ]
      ~fixed:[ ("caption", Value.String "check this out") ]
      "upload $picture_url to facebook";
    (* instagram *)
    query (fn "com.instagram" "get_pictures") [] "my instagram pictures";
    query (fn "com.instagram" "get_pictures") [] "photos i posted on instagram";
    monitor (fn "com.instagram" "get_pictures") [] "when i post a picture on instagram";
    monitor (fn "com.instagram" "get_pictures") [] "when i upload a new photo to instagram";
    query (fn "com.instagram" "get_pictures")
      [ ("hashtag", hashtag) ]
      ~filter:(atom "hashtags" Ast.Op_contains "hashtag")
      "my instagram pictures with hashtag $hashtag";
    query (fn "com.instagram" "get_profile") [] "my instagram profile";
    (* linkedin *)
    query (fn "com.linkedin" "get_profile") [] "my linkedin profile";
    query (fn "com.linkedin" "get_profile") [] "my profile on linkedin";
    action (fn "com.linkedin" "share") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "share $status on linkedin";
    (* reddit *)
    query (fn "com.reddit" "frontpage") [] "posts on the reddit front page";
    query (fn "com.reddit" "frontpage") [] "reddit posts";
    monitor (fn "com.reddit" "frontpage") [] "when a new post reaches the reddit front page";
    query (fn "com.reddit" "frontpage")
      [ ("subreddit", Ttype.Entity "tt:subreddit") ]
      ~binds:[ ("subreddit", "subreddit") ]
      "posts in the $subreddit subreddit";
    (* pinterest *)
    query (fn "com.pinterest" "get_pins") [] "my pinterest pins";
    monitor (fn "com.pinterest" "get_pins") [] "when i pin something on pinterest";
    action (fn "com.pinterest" "save_pin")
      [ ("board", Ttype.String); ("picture_url", Ttype.Picture) ]
      ~binds:[ ("board", "board"); ("picture_url", "picture_url") ]
      "pin $picture_url to my $board board";
    (* tumblr *)
    query (fn "com.tumblr" "dashboard") [] "posts on my tumblr dashboard";
    monitor (fn "com.tumblr" "dashboard") [] "when there is a new post on my tumblr dashboard";
    action (fn "com.tumblr" "post_text")
      [ ("title", Ttype.String); ("body", Ttype.String) ]
      ~binds:[ ("title", "title"); ("body", "body") ]
      "post $title with text $body on tumblr" ]
