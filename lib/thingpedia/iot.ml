(* IoT skills: thermostat, lights, security camera, door sensor, TV, speaker,
   scale, car, plus weather and air quality services. *)

open Genie_thingtalk
open Schema

let classes =
  [ cls "com.nest.thermostat" ~doc:"Nest thermostat"
      [ query "get_temperature" ~is_list:false ~doc:"the current indoor temperature"
          [ out "value" (Ttype.Measure "C"); out "humidity" Ttype.Number ];
        action "set_target_temperature" ~doc:"set the target temperature"
          [ in_req "value" (Ttype.Measure "C") ];
        action "set_mode" ~doc:"set the thermostat mode"
          [ in_req "mode" (Ttype.Enum [ "heat"; "cool"; "off" ]) ] ];
    cls "io.home-assistant.light" ~doc:"Smart light bulb"
      [ query "state" ~is_list:false ~doc:"the light state"
          [ out "power" (Ttype.Enum [ "on"; "off" ]); out "brightness" Ttype.Number ];
        action "set_power" ~doc:"turn the light on or off"
          [ in_req "power" (Ttype.Enum [ "on"; "off" ]) ];
        action "set_color" ~doc:"change the light color" [ in_req "color" Ttype.String ];
        action "color_loop" ~doc:"start a color loop" [] ];
    cls "com.nest.security_camera" ~doc:"Security camera"
      [ query "current_event" ~is_list:false ~doc:"the latest camera event"
          [ out "start_time" Ttype.Date; out "has_person" Ttype.Boolean;
            out "has_motion" Ttype.Boolean; out "picture_url" Ttype.Picture ] ];
    cls "io.home-assistant.door" ~doc:"Door and window sensor"
      [ query "state" ~is_list:false ~doc:"the sensor state"
          [ out "state" (Ttype.Enum [ "open"; "closed" ]) ] ];
    cls "com.lg.tv" ~doc:"Smart TV"
      [ action "set_channel" ~doc:"change the TV channel" [ in_req "channel" Ttype.String ];
        action "set_power" ~doc:"turn the TV on or off"
          [ in_req "power" (Ttype.Enum [ "on"; "off" ]) ];
        action "set_volume" ~doc:"set the TV volume" [ in_req "volume" Ttype.Number ] ];
    cls "com.sonos" ~doc:"Sonos speaker"
      [ query "current_song" ~is_list:false ~doc:"the song playing now"
          [ out "song" (Ttype.Entity "tt:song"); out "artist" (Ttype.Entity "tt:artist") ];
        action "play_music" ~doc:"play a song" [ in_req "song" (Ttype.Entity "tt:song") ];
        action "set_volume" ~doc:"set the speaker volume" [ in_req "volume" Ttype.Number ];
        action "pause" ~doc:"pause playback" [] ];
    cls "com.bodytrace.scale" ~doc:"Connected scale"
      [ query "get_weight" ~is_list:false ~doc:"your latest weight measurement"
          [ out "weight" (Ttype.Measure "kg") ] ];
    cls "com.tesla.car" ~doc:"Connected car"
      [ query "get_vehicle_state" ~is_list:false ~doc:"the car state"
          [ out "battery_level" Ttype.Number; out "charging_state" (Ttype.Enum [ "charging"; "complete"; "disconnected" ]);
            out "location" Ttype.Location ];
        action "set_climate" ~doc:"precondition the cabin"
          [ in_req "value" (Ttype.Measure "C") ];
        action "honk" ~doc:"honk the horn" [] ];
    cls "org.thingpedia.weather" ~doc:"Weather service"
      [ query "current" ~is_list:false ~doc:"current weather conditions"
          [ in_req "location" Ttype.Location; out "temperature" (Ttype.Measure "C");
            out "humidity" Ttype.Number; out "wind_speed" (Ttype.Measure "mps");
            out "status" (Ttype.Enum [ "sunny"; "cloudy"; "raining"; "snowing" ]) ];
        query "sunrise" ~is_list:false ~doc:"sunrise and sunset times"
          [ in_req "location" Ttype.Location; out "sunrise_time" Ttype.Time;
            out "sunset_time" Ttype.Time ];
        query "moon" ~is_list:false ~doc:"the phase of the moon"
          [ in_req "location" Ttype.Location;
            out "phase" (Ttype.Enum [ "new_moon"; "first_quarter"; "full_moon"; "last_quarter" ]) ] ];
    cls "gov.epa.airnow" ~doc:"Air quality index"
      [ query "aqi" ~is_list:false ~doc:"the air quality index"
          [ in_req "location" Ttype.Location; out "value" Ttype.Number;
            out "pollutant" Ttype.String ] ] ]

let fn = Ast.Fn.make

let enum_onoff = Ttype.Enum [ "on"; "off" ]

let templates : Prim.t list =
  let open Prim in
  [ query (fn "com.nest.thermostat" "get_temperature") [] "the temperature in my home";
    query (fn "com.nest.thermostat" "get_temperature") [] "my thermostat reading";
    monitor (fn "com.nest.thermostat" "get_temperature") [] "when the temperature at home changes";
    action (fn "com.nest.thermostat" "set_target_temperature")
      [ ("value", Ttype.Measure "C") ]
      ~binds:[ ("value", "value") ]
      "set the temperature to $value";
    action (fn "com.nest.thermostat" "set_mode")
      [ ("mode", Ttype.Enum [ "heat"; "cool"; "off" ]) ]
      ~binds:[ ("mode", "mode") ]
      "set my thermostat to $mode";
    query (fn "io.home-assistant.light" "state") [] "the state of my light";
    action (fn "io.home-assistant.light" "set_power") [ ("power", enum_onoff) ]
      ~binds:[ ("power", "power") ]
      "turn $power my light";
    action (fn "io.home-assistant.light" "set_power") []
      ~fixed:[ ("power", Value.Enum "on") ]
      "turn on the lights";
    action (fn "io.home-assistant.light" "set_power") []
      ~fixed:[ ("power", Value.Enum "off") ]
      "turn off the lights";
    action (fn "io.home-assistant.light" "set_color") [ ("color", Ttype.String) ]
      ~binds:[ ("color", "color") ]
      "change my light color to $color";
    action (fn "io.home-assistant.light" "color_loop") [] "make my lights color loop";
    query (fn "com.nest.security_camera" "current_event") [] "the latest event on my security camera";
    monitor (fn "com.nest.security_camera" "current_event") [] "when my security camera detects something";
    monitor (fn "com.nest.security_camera" "current_event")
      []
      ~filter:(const_atom "has_person" Ast.Op_eq (Value.Boolean true))
      "when my security camera sees a person";
    query (fn "io.home-assistant.door" "state") [] "the state of my front door";
    monitor (fn "io.home-assistant.door" "state")
      []
      ~filter:(const_atom "state" Ast.Op_eq (Value.Enum "open"))
      "when the door opens";
    action (fn "com.lg.tv" "set_channel") [ ("channel", Ttype.String) ]
      ~binds:[ ("channel", "channel") ]
      "switch the tv to $channel";
    action (fn "com.lg.tv" "set_power") [ ("power", enum_onoff) ]
      ~binds:[ ("power", "power") ]
      "turn $power the tv";
    action (fn "com.lg.tv" "set_volume") [ ("volume", Ttype.Number) ]
      ~binds:[ ("volume", "volume") ]
      "set the tv volume to $volume";
    query (fn "com.sonos" "current_song") [] "the song playing on my speaker";
    monitor (fn "com.sonos" "current_song") [] "when the song on my speaker changes";
    action (fn "com.sonos" "play_music") [ ("song", Ttype.Entity "tt:song") ]
      ~binds:[ ("song", "song") ]
      "play $song on my speaker";
    action (fn "com.sonos" "set_volume") [ ("volume", Ttype.Number) ]
      ~binds:[ ("volume", "volume") ]
      "set my speaker volume to $volume";
    action (fn "com.sonos" "pause") [] "pause the music";
    query (fn "com.bodytrace.scale" "get_weight") [] "my weight";
    monitor (fn "com.bodytrace.scale" "get_weight") [] "when i weigh myself";
    query (fn "com.tesla.car" "get_vehicle_state") [] "the state of my car";
    monitor (fn "com.tesla.car" "get_vehicle_state") [] "when my car state changes";
    action (fn "com.tesla.car" "set_climate") [ ("value", Ttype.Measure "C") ]
      ~binds:[ ("value", "value") ]
      "warm up my car to $value";
    action (fn "com.tesla.car" "honk") [] "honk my car horn";
    query (fn "org.thingpedia.weather" "current") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "the weather in $location";
    query (fn "org.thingpedia.weather" "current") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "current weather conditions for $location";
    monitor (fn "org.thingpedia.weather" "current") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "when the weather in $location changes";
    monitor (fn "org.thingpedia.weather" "current") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      ~filter:(const_atom "status" Ast.Op_eq (Value.Enum "raining"))
      "when it rains in $location";
    query (fn "org.thingpedia.weather" "sunrise") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "sunrise and sunset times in $location";
    query (fn "org.thingpedia.weather" "moon") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "the phase of the moon over $location";
    query (fn "gov.epa.airnow" "aqi") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "the air quality in $location";
    monitor (fn "gov.epa.airnow" "aqi") [ ("location", Ttype.Location) ]
      ~binds:[ ("location", "location") ]
      "when the air quality in $location changes" ]
