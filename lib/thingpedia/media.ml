(* Media and entertainment skills: cat pictures, comics, GIFs, YouTube, news
   outlets, RSS, Yandex translate, Bing search, Wikipedia. *)

open Genie_thingtalk
open Schema

let classes =
  [ cls "com.thecatapi" ~doc:"Random cat pictures"
      [ query "get" ~monitorable:false ~is_list:false ~doc:"a random cat picture"
          [ out "image_id" (Ttype.Entity "tt:image_id"); out "picture_url" Ttype.Picture;
            out "link" Ttype.Url ] ];
    cls "com.dogapi" ~doc:"Random dog pictures"
      [ query "get" ~monitorable:false ~is_list:false ~doc:"a random dog picture"
          [ out "picture_url" Ttype.Picture; out "link" Ttype.Url ] ];
    cls "com.xkcd" ~doc:"xkcd webcomic"
      [ query "get_comic" ~is_list:false ~doc:"the latest xkcd comic"
          [ in_opt "number" Ttype.Number; out "title" Ttype.String;
            out "picture_url" Ttype.Picture; out "alt_text" Ttype.String;
            out "link" Ttype.Url ];
        query "random_comic" ~monitorable:false ~is_list:false ~doc:"a random xkcd comic"
          [ out "title" Ttype.String; out "picture_url" Ttype.Picture; out "link" Ttype.Url ] ];
    cls "com.phdcomics" ~doc:"PHD Comics"
      [ query "get_post" ~is_list:false ~doc:"the latest PHD comic"
          [ out "title" Ttype.String; out "picture_url" Ttype.Picture; out "link" Ttype.Url ] ];
    cls "com.giphy" ~doc:"Giphy GIFs"
      [ query "get" ~monitorable:false ~doc:"trending GIFs"
          [ in_opt "tag" (Ttype.Entity "tt:hashtag"); out "picture_url" Ttype.Picture ] ];
    cls "com.imgur" ~doc:"Imgur image gallery"
      [ query "hot" ~doc:"hot posts in the Imgur gallery"
          [ out "title" Ttype.String; out "picture_url" Ttype.Picture; out "link" Ttype.Url ] ];
    cls "com.youtube" ~doc:"YouTube videos"
      [ query "search_videos" ~monitorable:false ~doc:"search YouTube"
          [ in_req "query" Ttype.String; out "video_id" (Ttype.Entity "tt:video_id");
            out "title" Ttype.String; out "channel" (Ttype.Entity "tt:channel");
            out "link" Ttype.Url ];
        query "list_subscriptions" ~doc:"channels you are subscribed to"
          [ out "channel" (Ttype.Entity "tt:channel"); out "description" Ttype.String ];
        action "subscribe" ~doc:"subscribe to a channel"
          [ in_req "channel" (Ttype.Entity "tt:channel") ] ];
    cls "com.nytimes" ~doc:"The New York Times"
      [ query "get_front_page" ~doc:"front page articles"
          [ out "title" Ttype.String; out "abstract" Ttype.String; out "link" Ttype.Url;
            out "section" Ttype.String ] ];
    cls "com.washingtonpost" ~doc:"The Washington Post"
      [ query "get_article" ~doc:"latest articles"
          [ in_opt "section" (Ttype.Enum [ "national"; "world"; "opinions"; "sports" ]);
            out "title" Ttype.String; out "link" Ttype.Url ] ];
    cls "com.bbc" ~doc:"BBC News"
      [ query "get_news" ~doc:"latest BBC headlines"
          [ out "title" Ttype.String; out "summary" Ttype.String; out "link" Ttype.Url ] ];
    cls "org.thingpedia.rss" ~doc:"Generic RSS feeds"
      [ query "get_post" ~doc:"posts in an RSS feed"
          [ in_req "url" Ttype.Url; out "title" Ttype.String; out "link" Ttype.Url;
            out "description" Ttype.String ] ];
    cls "com.yandex.translate" ~doc:"Yandex machine translation"
      [ query "translate" ~monitorable:false ~is_list:false ~doc:"translate text"
          [ in_req "text" Ttype.String; in_opt "target_language" (Ttype.Entity "tt:iso_lang_code");
            out "translated_text" Ttype.String ];
        query "detect_language" ~monitorable:false ~is_list:false ~doc:"detect the language of text"
          [ in_req "text" Ttype.String; out "value" (Ttype.Entity "tt:iso_lang_code") ] ];
    cls "com.bing" ~doc:"Bing search"
      [ query "web_search" ~monitorable:false ~doc:"search the web"
          [ in_req "query" Ttype.String; out "title" Ttype.String;
            out "description" Ttype.String; out "link" Ttype.Url ];
        query "image_search" ~monitorable:false ~doc:"search images"
          [ in_req "query" Ttype.String; out "title" Ttype.String;
            out "picture_url" Ttype.Picture; out "link" Ttype.Url ] ];
    cls "org.wikipedia" ~doc:"Wikipedia"
      [ query "get_article" ~monitorable:false ~is_list:false ~doc:"a Wikipedia article"
          [ in_req "title" Ttype.String; out "summary" Ttype.String; out "link" Ttype.Url ] ] ]

let fn = Ast.Fn.make

let templates : Prim.t list =
  let open Prim in
  [ query (fn "com.thecatapi" "get") [] "a cat picture";
    query (fn "com.thecatapi" "get") [] "a random cat photo";
    query (fn "com.thecatapi" "get") [] "a picture of a cat";
    query (fn "com.dogapi" "get") [] "a dog picture";
    query (fn "com.dogapi" "get") [] "a photo of a dog";
    query (fn "com.xkcd" "get_comic") [] "the latest xkcd comic";
    query (fn "com.xkcd" "get_comic") [] "today 's xkcd";
    monitor (fn "com.xkcd" "get_comic") [] "when a new xkcd comic comes out";
    query (fn "com.xkcd" "random_comic") [] "a random xkcd comic";
    query (fn "com.phdcomics" "get_post") [] "the latest phd comic";
    monitor (fn "com.phdcomics" "get_post") [] "when a new phd comic is published";
    query (fn "com.giphy" "get") [] "a trending gif";
    query (fn "com.giphy" "get")
      [ ("tag", Ttype.Entity "tt:hashtag") ]
      ~binds:[ ("tag", "tag") ]
      "a gif about $tag";
    query (fn "com.imgur" "hot") [] "hot posts on imgur";
    monitor (fn "com.imgur" "hot") [] "when a post gets hot on imgur";
    query (fn "com.youtube" "search_videos") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "youtube videos about $query";
    query (fn "com.youtube" "search_videos") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ] ~category:Vp
      "search youtube for $query";
    query (fn "com.youtube" "list_subscriptions") [] "my youtube subscriptions";
    action (fn "com.youtube" "subscribe")
      [ ("channel", Ttype.Entity "tt:channel") ]
      ~binds:[ ("channel", "channel") ]
      "subscribe to $channel on youtube";
    query (fn "com.nytimes" "get_front_page") [] "new york times articles";
    query (fn "com.nytimes" "get_front_page") [] "the front page of the new york times";
    monitor (fn "com.nytimes" "get_front_page") [] "when the new york times publishes an article";
    query (fn "com.washingtonpost" "get_article") [] "washington post articles";
    monitor (fn "com.washingtonpost" "get_article") [] "when the washington post updates";
    query (fn "com.washingtonpost" "get_article")
      [ ("section", Ttype.Enum [ "national"; "world"; "opinions"; "sports" ]) ]
      ~binds:[ ("section", "section") ]
      "washington post $section articles";
    query (fn "com.bbc" "get_news") [] "bbc headlines";
    query (fn "com.bbc" "get_news") [] "the news from the bbc";
    monitor (fn "com.bbc" "get_news") [] "when there is breaking news on the bbc";
    query (fn "org.thingpedia.rss" "get_post") [ ("url", Ttype.Url) ]
      ~binds:[ ("url", "url") ]
      "posts in the feed at $url";
    monitor (fn "org.thingpedia.rss" "get_post") [ ("url", Ttype.Url) ]
      ~binds:[ ("url", "url") ]
      "when the feed at $url updates";
    query (fn "com.yandex.translate" "translate") [ ("text", Ttype.String) ]
      ~binds:[ ("text", "text") ]
      "the translation of $text";
    query (fn "com.yandex.translate" "translate") [ ("text", Ttype.String) ]
      ~binds:[ ("text", "text") ] ~category:Vp
      "translate $text";
    query (fn "com.yandex.translate" "translate")
      [ ("text", Ttype.String); ("target_language", Ttype.Entity "tt:iso_lang_code") ]
      ~binds:[ ("text", "text"); ("target_language", "target_language") ]
      "the translation of $text to $target_language";
    query (fn "com.yandex.translate" "detect_language") [ ("text", Ttype.String) ]
      ~binds:[ ("text", "text") ]
      "the language of $text";
    query (fn "com.bing" "web_search") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "websites matching $query";
    query (fn "com.bing" "web_search") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ] ~category:Vp
      "search the web for $query";
    query (fn "com.bing" "image_search") [ ("query", Ttype.String) ]
      ~binds:[ ("query", "query") ]
      "images of $query";
    query (fn "org.wikipedia" "get_article") [ ("title", Ttype.String) ]
      ~binds:[ ("title", "title") ]
      "the wikipedia article about $title" ]
