(** Programmatic surface variants of the authored primitive templates.

    The paper's developers wrote 8.5 templates per function on average, many
    differing only in wording; the hand-authored templates here are
    complemented by mechanical variants (alternative when-words, quantifiers,
    "for me" framings), as documented in DESIGN.md. *)

val expand : Prim.t -> Prim.t list
(** A template plus its derived variants. *)

val expand_all : Prim.t list -> Prim.t list
