(* Productivity, finance, fitness and lifestyle skills: Dropbox (the paper's
   running example), calendar, todo lists, stocks, crypto, fitness trackers,
   ride sharing, restaurants, sports, plus the builtin utilities. *)

open Genie_thingtalk
open Schema

let classes =
  [ (* the Dropbox class of paper Fig. 4 *)
    cls "com.dropbox" ~doc:"Dropbox file storage"
      [ query "get_space_usage" ~is_list:false ~doc:"your storage usage"
          [ out "used_space" (Ttype.Measure "byte"); out "total_space" (Ttype.Measure "byte") ];
        query "list_folder" ~doc:"files in a folder"
          [ in_opt "folder_name" Ttype.Path_name;
            in_opt "order_by"
              (Ttype.Enum [ "modified_time_decreasing"; "modified_time_increasing"; "name" ]);
            out "file_name" Ttype.Path_name; out "is_folder" Ttype.Boolean;
            out "modified_time" Ttype.Date; out "file_size" (Ttype.Measure "byte");
            out "full_path" Ttype.Path_name ];
        query "open" ~monitorable:false ~is_list:false
          ~doc:"a temporary download link for a file"
          [ in_req "file_name" Ttype.Path_name; out "download_url" Ttype.Url ];
        action "move" ~doc:"move or rename a file"
          [ in_req "old_name" Ttype.Path_name; in_req "new_name" Ttype.Path_name ] ];
    cls "com.google.drive" ~doc:"Google Drive"
      [ query "list_drive_files" ~doc:"files in your Google Drive"
          [ out "file_name" Ttype.Path_name; out "modified_time" Ttype.Date;
            out "file_size" (Ttype.Measure "byte"); out "link" Ttype.Url ];
        action "create_new_drive_file" ~doc:"create an empty document"
          [ in_req "file_name" Ttype.Path_name ] ];
    cls "org.thingpedia.icalendar" ~doc:"Calendar"
      [ query "list_events" ~doc:"events on your calendar"
          [ out "summary" Ttype.String; out "start_date" Ttype.Date;
            out "end_date" Ttype.Date; out "location" Ttype.Location;
            out "organizer" Ttype.String ] ];
    cls "com.todoist" ~doc:"Todoist task list"
      [ query "list_tasks" ~doc:"tasks on your todo list"
          [ out "content" Ttype.String; out "due_date" Ttype.Date;
            out "priority" Ttype.Number ];
        action "add_task" ~doc:"add a task"
          [ in_req "content" Ttype.String; in_opt "due_date" Ttype.Date ];
        action "complete_task" ~doc:"mark a task complete" [ in_req "content" Ttype.String ] ];
    cls "co.alphavantage" ~doc:"Stock quotes"
      [ query "get_stock_quote" ~is_list:false ~doc:"a stock quote"
          [ in_req "company" (Ttype.Entity "tt:stock_id"); out "value" Ttype.Currency;
            out "change" Ttype.Number ];
        query "get_stock_div" ~is_list:false ~doc:"dividend information"
          [ in_req "company" (Ttype.Entity "tt:stock_id"); out "dividend" Ttype.Currency;
            out "yield_rate" Ttype.Number ] ];
    cls "com.coinbase" ~doc:"Cryptocurrency prices"
      [ query "get_price" ~is_list:false ~doc:"the price of a cryptocurrency"
          [ in_req "currency_code" (Ttype.Enum [ "btc"; "eth"; "ltc" ]);
            out "price" Ttype.Currency ] ];
    cls "com.fitbit" ~doc:"Fitbit fitness tracker"
      [ query "steps" ~is_list:false ~doc:"your step count today"
          [ out "steps" Ttype.Number; out "distance" (Ttype.Measure "m");
            out "calories" Ttype.Number ];
        query "sleep" ~is_list:false ~doc:"last night's sleep record"
          [ out "duration" (Ttype.Measure "ms"); out "efficiency" Ttype.Number ];
        query "heartrate" ~is_list:false ~doc:"your resting heart rate"
          [ out "value" Ttype.Number ] ];
    cls "com.uber" ~doc:"Uber ride sharing"
      [ query "price_estimate" ~monitorable:false ~is_list:false ~doc:"a ride price estimate"
          [ in_req "start" Ttype.Location; in_req "end" Ttype.Location;
            out "estimate" Ttype.Currency; out "duration" (Ttype.Measure "ms") ] ];
    cls "com.yelp" ~doc:"Yelp restaurant search"
      [ query "restaurants" ~monitorable:false ~doc:"restaurants nearby"
          [ in_opt "cuisine" Ttype.String; in_opt "location" Ttype.Location;
            out "name" Ttype.String; out "rating" Ttype.Number; out "link" Ttype.Url;
            out "price_range" (Ttype.Enum [ "cheap"; "moderate"; "expensive" ]) ] ];
    cls "com.sportradar" ~doc:"Sports scores"
      [ query "game" ~is_list:false ~doc:"the latest game result for a team"
          [ in_req "team" (Ttype.Entity "tt:sports_team"); out "home_team" (Ttype.Entity "tt:sports_team");
            out "away_team" (Ttype.Entity "tt:sports_team"); out "home_score" Ttype.Number;
            out "away_score" Ttype.Number;
            out "status" (Ttype.Enum [ "scheduled"; "in_progress"; "closed" ]) ] ];
    cls "org.thingpedia.builtin.thingengine.builtin" ~doc:"Builtin assistant utilities"
      [ query "get_time" ~monitorable:false ~is_list:false ~doc:"the current time"
          [ out "time" Ttype.Time ];
        query "get_date" ~monitorable:false ~is_list:false ~doc:"today's date"
          [ out "date" Ttype.Date ];
        query "get_random_between" ~monitorable:false ~is_list:false ~doc:"a random number"
          [ in_req "low" Ttype.Number; in_req "high" Ttype.Number; out "random" Ttype.Number ];
        action "say" ~doc:"say something" [ in_req "message" Ttype.String ];
        action "open_url" ~doc:"open a link" [ in_req "url" Ttype.Url ] ] ]

let fn = Ast.Fn.make

let templates : Prim.t list =
  let open Prim in
  [ (* dropbox, following Table 1 of the paper *)
    query (fn "com.dropbox" "list_folder") [] "my dropbox files";
    query (fn "com.dropbox" "list_folder") [] "files in my dropbox";
    query (fn "com.dropbox" "list_folder")
      [] ~fixed:[ ("order_by", Value.Enum "modified_time_decreasing") ]
      "my dropbox files that changed most recently";
    query (fn "com.dropbox" "list_folder")
      [] ~fixed:[ ("order_by", Value.Enum "modified_time_decreasing") ]
      ~filter:(const_atom "modified_time" Ast.Op_gt (Value.Date (Value.D_start_of "week")))
      "my dropbox files that changed this week";
    query (fn "com.dropbox" "list_folder")
      [ ("folder_name", Ttype.Path_name) ]
      ~binds:[ ("folder_name", "folder_name") ]
      "files in my dropbox folder $folder_name";
    monitor (fn "com.dropbox" "list_folder") [] "when i modify a file in dropbox";
    monitor (fn "com.dropbox" "list_folder") ~on_new:[ "file_name" ] []
      "when i create a file in dropbox";
    query (fn "com.dropbox" "open") [ ("file_name", Ttype.Path_name) ]
      ~binds:[ ("file_name", "file_name") ]
      "the download url of $file_name";
    query (fn "com.dropbox" "open") [ ("file_name", Ttype.Path_name) ]
      ~binds:[ ("file_name", "file_name") ]
      "a temporary link to $file_name";
    query (fn "com.dropbox" "open") [ ("file_name", Ttype.Path_name) ]
      ~binds:[ ("file_name", "file_name") ] ~category:Vp
      "open $file_name";
    query (fn "com.dropbox" "open") [ ("file_name", Ttype.Path_name) ]
      ~binds:[ ("file_name", "file_name") ] ~category:Vp
      "download $file_name";
    query (fn "com.dropbox" "get_space_usage") [] "my dropbox space usage";
    query (fn "com.dropbox" "get_space_usage") [] "how much dropbox space i am using";
    action (fn "com.dropbox" "move")
      [ ("old_name", Ttype.Path_name); ("new_name", Ttype.Path_name) ]
      ~binds:[ ("old_name", "old_name"); ("new_name", "new_name") ]
      "move $old_name to $new_name in dropbox";
    (* google drive *)
    query (fn "com.google.drive" "list_drive_files") [] "files in my google drive";
    monitor (fn "com.google.drive" "list_drive_files") [] "when a file changes in google drive";
    action (fn "com.google.drive" "create_new_drive_file")
      [ ("file_name", Ttype.Path_name) ]
      ~binds:[ ("file_name", "file_name") ]
      "create a new google drive document named $file_name";
    (* calendar *)
    query (fn "org.thingpedia.icalendar" "list_events") [] "events on my calendar";
    query (fn "org.thingpedia.icalendar" "list_events") [] "my upcoming appointments";
    monitor (fn "org.thingpedia.icalendar" "list_events") [] "when an event is added to my calendar";
    (* todoist *)
    query (fn "com.todoist" "list_tasks") [] "tasks on my todo list";
    monitor (fn "com.todoist" "list_tasks") [] "when i add a task to my todo list";
    action (fn "com.todoist" "add_task") [ ("content", Ttype.String) ]
      ~binds:[ ("content", "content") ]
      "add $content to my todo list";
    action (fn "com.todoist" "add_task") [ ("content", Ttype.String) ]
      ~binds:[ ("content", "content") ]
      "remind me to $content";
    action (fn "com.todoist" "complete_task") [ ("content", Ttype.String) ]
      ~binds:[ ("content", "content") ]
      "mark $content as done";
    (* stocks and crypto *)
    query (fn "co.alphavantage" "get_stock_quote")
      [ ("company", Ttype.Entity "tt:stock_id") ]
      ~binds:[ ("company", "company") ]
      "the stock price of $company";
    monitor (fn "co.alphavantage" "get_stock_quote")
      [ ("company", Ttype.Entity "tt:stock_id") ]
      ~binds:[ ("company", "company") ]
      "when the stock price of $company changes";
    query (fn "co.alphavantage" "get_stock_div")
      [ ("company", Ttype.Entity "tt:stock_id") ]
      ~binds:[ ("company", "company") ]
      "the dividend of $company";
    query (fn "com.coinbase" "get_price")
      [] ~fixed:[ ("currency_code", Value.Enum "btc") ]
      "the price of bitcoin";
    query (fn "com.coinbase" "get_price")
      [] ~fixed:[ ("currency_code", Value.Enum "eth") ]
      "the price of ethereum";
    monitor (fn "com.coinbase" "get_price")
      [] ~fixed:[ ("currency_code", Value.Enum "btc") ]
      "when the bitcoin price changes";
    (* fitbit *)
    query (fn "com.fitbit" "steps") [] "my step count";
    query (fn "com.fitbit" "steps") [] "how many steps i walked today";
    monitor (fn "com.fitbit" "steps") [] "when my step count updates";
    query (fn "com.fitbit" "sleep") [] "my sleep record";
    query (fn "com.fitbit" "heartrate") [] "my heart rate";
    (* uber *)
    query (fn "com.uber" "price_estimate")
      [ ("start", Ttype.Location); ("end", Ttype.Location) ]
      ~binds:[ ("start", "start"); ("end", "end") ]
      "an uber price estimate from $start to $end";
    (* yelp *)
    query (fn "com.yelp" "restaurants") [] "restaurants nearby";
    query (fn "com.yelp" "restaurants")
      [ ("cuisine", Ttype.String) ]
      ~binds:[ ("cuisine", "cuisine") ]
      "$cuisine restaurants around me";
    (* sports *)
    query (fn "com.sportradar" "game")
      [ ("team", Ttype.Entity "tt:sports_team") ]
      ~binds:[ ("team", "team") ]
      "the latest game of $team";
    monitor (fn "com.sportradar" "game")
      [ ("team", Ttype.Entity "tt:sports_team") ]
      ~binds:[ ("team", "team") ]
      "when $team plays";
    (* builtins *)
    query (fn "org.thingpedia.builtin.thingengine.builtin" "get_time") [] "the current time";
    query (fn "org.thingpedia.builtin.thingengine.builtin" "get_date") [] "today 's date";
    query (fn "org.thingpedia.builtin.thingengine.builtin" "get_random_between")
      [ ("low", Ttype.Number); ("high", Ttype.Number) ]
      ~binds:[ ("low", "low"); ("high", "high") ]
      "a random number between $low and $high";
    action (fn "org.thingpedia.builtin.thingengine.builtin" "say")
      [ ("message", Ttype.String) ]
      ~binds:[ ("message", "message") ]
      "say $message";
    action (fn "org.thingpedia.builtin.thingengine.builtin" "open_url")
      [ ("url", Ttype.Url) ]
      ~binds:[ ("url", "url") ]
      "open $url" ]
