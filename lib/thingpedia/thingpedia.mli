(** The assembled Thingpedia skill library and primitive-template registry.

    The paper's experiments run on the Thingpedia snapshot available at the
    start of the study (44 skills, 131 functions, 178 distinct parameters);
    the core library here matches that scale. The Spotify skill of
    section 6.1 is kept separate and merged in for the case study. *)

open Genie_thingtalk

val core_classes : Schema.cls list
val core_library : unit -> Schema.Library.t
val full_library : unit -> Schema.Library.t
val spotify_library : unit -> Schema.Library.t

val authored_core_templates : unit -> Prim.t list
(** The hand-authored primitive templates. *)

val core_templates : unit -> Prim.t list
(** Authored templates plus mechanical surface variants ({!Variants}); what
    the synthesis pipeline consumes. *)

val spotify_templates : unit -> Prim.t list
val all_templates : unit -> Prim.t list

val easy_functions : Ast.Fn.t list
(** Developer-supplied list of easy-to-understand functions, used to pair
    compound paraphrase tasks (section 3.2). *)

val hard_functions : Ast.Fn.t list

val stats : Schema.Library.t -> string
(** A one-line summary (skills / functions / parameters). *)
