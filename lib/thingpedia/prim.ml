(* Primitive templates (paper section 3.1, Table 1).

   A primitive template pairs a natural-language utterance (with $placeholders)
   with the code fragment it denotes, tagged with its grammar category:

     cat := u -> lambda(pn : t, ...) -> [s | q | a]

   Queries may be expressed as noun phrases ("the download URL of $x") or verb
   phrases ("download $x"); monitors as when-phrases. *)

open Genie_thingtalk

type category = Np | Vp | Wp

let category_to_string = function Np -> "np" | Vp -> "vp" | Wp -> "wp"

type t = {
  category : category;
  utterance : string; (* placeholders written $name *)
  params : (string * Ttype.t) list; (* placeholder name -> type *)
  build : (string * Value.t) list -> Ast.fragment option;
  fn : Ast.Fn.t; (* the primary function this template invokes *)
}

let placeholder_names u =
  List.filter_map
    (fun tok ->
      if String.length tok > 1 && tok.[0] = '$' then
        Some (String.sub tok 1 (String.length tok - 1))
      else None)
    (String.split_on_char ' ' u)

(* Substitutes sampled placeholder values into the utterance, rendering each
   value in a crowd-worker-friendly way (quotes around free-form strings,
   @-signs on usernames, etc. -- section 3.2). *)
let rec render_value ?(quote = true) (v : Value.t) =
  match v with
  | Value.String s -> if quote then Printf.sprintf "\"%s\"" s else s
  | Value.Number n ->
      if Float.is_integer n then string_of_int (int_of_float n) else string_of_float n
  | Value.Measure [ (n, u) ] ->
      Printf.sprintf "%s %s" (render_value ~quote (Value.Number n)) u
  | Value.Measure terms ->
      String.concat " "
        (List.map (fun (n, u) -> Printf.sprintf "%s %s" (render_value ~quote (Value.Number n)) u) terms)
  | Value.Entity { ty = "tt:username"; value; _ } -> "@" ^ value
  | Value.Entity { ty = "tt:hashtag"; value; _ } -> "#" ^ value
  | Value.Entity { value; display = Some d; _ } -> ignore value; d
  | Value.Entity { value; _ } -> value
  | Value.Enum e -> String.map (fun c -> if c = '_' then ' ' else c) e
  | Value.Time (h, m) -> if m = 0 then Printf.sprintf "%d:00" h else Printf.sprintf "%d:%02d" h m
  | Value.Date (Value.D_start_of u) -> "the beginning of the " ^ u
  | Value.Date (Value.D_end_of u) -> "the end of the " ^ u
  | Value.Date Value.D_now -> "now"
  | Value.Date (Value.D_absolute { year; month; day }) ->
      Printf.sprintf "%d/%d/%d" month day year
  | Value.Date (Value.D_plus (d, n, u)) ->
      Printf.sprintf "%s %s after %s"
        (render_value ~quote (Value.Number n)) u
        (render_value ~quote (Value.Date d))
  | Value.Location (Value.L_named n) -> n
  | Value.Location (Value.L_relative r) ->
      (match r with "current_location" -> "here" | r -> r)
  | Value.Location (Value.L_absolute (lat, lon)) -> Printf.sprintf "%g %g" lat lon
  | Value.Currency (n, code) ->
      Printf.sprintf "%s %s" (render_value ~quote (Value.Number n)) (String.uppercase_ascii code)
  | Value.Boolean b -> string_of_bool b
  | Value.Array vs -> String.concat " and " (List.map (render_value ~quote) vs)
  | Value.Undefined -> "____"

let instantiate_utterance ?quote (u : string) (env : (string * Value.t) list) =
  String.concat " "
    (List.map
       (fun tok ->
         if String.length tok > 1 && tok.[0] = '$' then
           let name = String.sub tok 1 (String.length tok - 1) in
           match List.assoc_opt name env with
           | Some v -> render_value ?quote v
           | None -> tok
         else tok)
       (String.split_on_char ' ' u))

(* --- construction helpers ------------------------------------------------- *)

let invocation fn ~fixed ~binds env : Ast.invocation =
  let passed =
    List.map
      (fun (ph, ip_name) ->
        match List.assoc_opt ph env with
        | Some v -> { Ast.ip_name; ip_value = Ast.Constant v }
        | None -> { Ast.ip_name; ip_value = Ast.Constant Value.Undefined })
      binds
  in
  { Ast.fn;
    in_params =
      List.map (fun (n, v) -> { Ast.ip_name = n; ip_value = Ast.Constant v }) fixed @ passed }

(* A query noun/verb phrase. [binds] maps placeholders to input parameters;
   [filter] optionally adds a filter using the placeholders too. *)
let query ?(category = Np) ?(fixed = []) ?(binds = []) ?filter fn params utterance =
  { category;
    utterance;
    params;
    fn;
    build =
      (fun env ->
        let inv = invocation fn ~fixed ~binds env in
        let q = Ast.Q_invoke inv in
        match filter with
        | None -> Some (Ast.F_query q)
        | Some f -> (
            match f env with
            | Some pred -> Some (Ast.F_query (Ast.Q_filter (q, pred)))
            | None -> None)) }

(* An action verb phrase. *)
let action ?(fixed = []) ?(binds = []) fn params utterance =
  { category = Vp;
    utterance;
    params;
    fn;
    build = (fun env -> Some (Ast.F_action (Ast.A_invoke (invocation fn ~fixed ~binds env)))) }

(* A when-phrase monitoring a query. *)
let monitor ?(fixed = []) ?(binds = []) ?on_new ?filter fn params utterance =
  { category = Wp;
    utterance;
    params;
    fn;
    build =
      (fun env ->
        let inv = invocation fn ~fixed ~binds env in
        let q = Ast.Q_invoke inv in
        let q =
          match filter with
          | None -> Some q
          | Some f -> (
              match f env with
              | Some pred -> Some (Ast.Q_filter (q, pred))
              | None -> None)
        in
        Option.map (fun q -> Ast.F_stream (Ast.S_monitor (q, on_new))) q) }

(* A fixed filter on a placeholder, for filtered primitive templates such as
   "my Dropbox files that changed this week". *)
let atom lhs op rhs_placeholder env =
  Option.map (fun v -> Ast.P_atom { lhs; op; rhs = v }) (List.assoc_opt rhs_placeholder env)

let const_atom lhs op rhs _env = Some (Ast.P_atom { lhs; op; rhs })
