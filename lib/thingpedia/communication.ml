(* Communication skills: Gmail, Slack, SMS / phone, GitHub notifications. *)

open Genie_thingtalk
open Schema

let username = Ttype.Entity "tt:username"

let classes =
  [ cls "com.gmail" ~doc:"Google Mail"
      [ query "inbox" ~doc:"emails in your inbox"
          [ out "sender_name" Ttype.String; out "sender_address" Ttype.Email_address;
            out "subject" Ttype.String; out "snippet" Ttype.String;
            out "labels" (Ttype.Array Ttype.String); out "is_important" Ttype.Boolean;
            out "email_id" (Ttype.Entity "tt:email_id") ];
        action "send_email" ~doc:"send an email"
          [ in_req "to" Ttype.Email_address; in_req "subject" Ttype.String;
            in_req "message" Ttype.String ];
        action "reply" ~doc:"reply to an email"
          [ in_req "email_id" (Ttype.Entity "tt:email_id"); in_req "message" Ttype.String ];
        action "forward" ~doc:"forward an email"
          [ in_req "email_id" (Ttype.Entity "tt:email_id"); in_req "to" Ttype.Email_address ] ];
    cls "com.slack" ~doc:"Slack team messaging"
      [ query "channel_history" ~doc:"messages in a Slack channel"
          [ in_req "channel" (Ttype.Entity "tt:slack_channel"); out "sender" username;
            out "message" Ttype.String ];
        action "send" ~doc:"send a Slack message"
          [ in_req "channel" (Ttype.Entity "tt:slack_channel"); in_req "message" Ttype.String ];
        action "set_status" ~doc:"set your Slack status" [ in_req "status" Ttype.String ];
        action "set_presence" ~doc:"set your Slack presence"
          [ in_req "presence" (Ttype.Enum [ "away"; "active" ]) ] ];
    cls "org.thingpedia.builtin.thingengine.phone" ~doc:"Your phone"
      [ query "sms" ~doc:"SMS messages you received"
          [ out "sender" Ttype.Phone_number; out "body" Ttype.String ];
        query "gps" ~doc:"your current location"
          [ out "location" Ttype.Location; out "altitude" (Ttype.Measure "m") ];
        action "send_sms" ~doc:"send a text message"
          [ in_req "to" Ttype.Phone_number; in_req "body" Ttype.String ];
        action "call" ~doc:"place a phone call" [ in_req "number" Ttype.Phone_number ];
        action "set_ringer" ~doc:"set the phone ringer mode"
          [ in_req "mode" (Ttype.Enum [ "normal"; "vibrate"; "silent" ]) ] ];
    cls "com.github" ~doc:"GitHub code hosting"
      [ query "get_notifications" ~doc:"your GitHub notifications"
          [ out "repo_name" (Ttype.Entity "tt:repo"); out "title" Ttype.String;
            out "reason" Ttype.String ];
        query "get_issues" ~doc:"issues in a repository"
          [ in_req "repo_name" (Ttype.Entity "tt:repo"); out "title" Ttype.String;
            out "author" username; out "number" Ttype.Number; out "link" Ttype.Url ];
        action "create_issue" ~doc:"open a new issue"
          [ in_req "repo_name" (Ttype.Entity "tt:repo"); in_req "title" Ttype.String;
            in_opt "body" Ttype.String ];
        action "star" ~doc:"star a repository" [ in_req "repo_name" (Ttype.Entity "tt:repo") ] ] ]

let fn = Ast.Fn.make

let templates : Prim.t list =
  let open Prim in
  [ (* gmail *)
    query (fn "com.gmail" "inbox") [] "emails in my inbox";
    query (fn "com.gmail" "inbox") [] "my emails";
    query (fn "com.gmail" "inbox")
      [ ("sender", Ttype.String) ]
      ~filter:(atom "sender_name" Ast.Op_eq "sender")
      "emails from $sender";
    query (fn "com.gmail" "inbox")
      [ ("label", Ttype.String) ]
      ~filter:(atom "labels" Ast.Op_contains "label")
      "emails labeled $label";
    query (fn "com.gmail" "inbox")
      []
      ~filter:(const_atom "is_important" Ast.Op_eq (Value.Boolean true))
      "important emails";
    monitor (fn "com.gmail" "inbox") [] "when i receive an email";
    monitor (fn "com.gmail" "inbox") [] "when a new email arrives";
    monitor (fn "com.gmail" "inbox")
      [ ("sender", Ttype.String) ]
      ~filter:(atom "sender_name" Ast.Op_eq "sender")
      "when i get an email from $sender";
    action (fn "com.gmail" "send_email")
      [ ("to", Ttype.Email_address); ("subject", Ttype.String); ("message", Ttype.String) ]
      ~binds:[ ("to", "to"); ("subject", "subject"); ("message", "message") ]
      "send an email to $to with subject $subject saying $message";
    action (fn "com.gmail" "send_email")
      [ ("to", Ttype.Email_address); ("message", Ttype.String) ]
      ~binds:[ ("to", "to"); ("message", "message") ]
      ~fixed:[ ("subject", Value.String "hello") ]
      "email $to saying $message";
    action (fn "com.gmail" "reply")
      [ ("email_id", Ttype.Entity "tt:email_id"); ("message", Ttype.String) ]
      ~binds:[ ("email_id", "email_id"); ("message", "message") ]
      "reply to $email_id with $message";
    action (fn "com.gmail" "forward")
      [ ("email_id", Ttype.Entity "tt:email_id"); ("to", Ttype.Email_address) ]
      ~binds:[ ("email_id", "email_id"); ("to", "to") ]
      "forward $email_id to $to";
    (* slack *)
    query (fn "com.slack" "channel_history")
      [ ("channel", Ttype.Entity "tt:slack_channel") ]
      ~binds:[ ("channel", "channel") ]
      "messages in the $channel slack channel";
    monitor (fn "com.slack" "channel_history")
      [ ("channel", Ttype.Entity "tt:slack_channel") ]
      ~binds:[ ("channel", "channel") ]
      "when someone posts in the $channel slack channel";
    action (fn "com.slack" "send")
      [ ("channel", Ttype.Entity "tt:slack_channel"); ("message", Ttype.String) ]
      ~binds:[ ("channel", "channel"); ("message", "message") ]
      "send $message to the $channel slack channel";
    action (fn "com.slack" "send")
      [ ("channel", Ttype.Entity "tt:slack_channel"); ("message", Ttype.String) ]
      ~binds:[ ("channel", "channel"); ("message", "message") ]
      "let the $channel channel know $message on slack";
    action (fn "com.slack" "set_status") [ ("status", Ttype.String) ]
      ~binds:[ ("status", "status") ]
      "set my slack status to $status";
    action (fn "com.slack" "set_presence")
      [ ("presence", Ttype.Enum [ "away"; "active" ]) ]
      ~binds:[ ("presence", "presence") ]
      "mark me as $presence on slack";
    (* phone *)
    query (fn "org.thingpedia.builtin.thingengine.phone" "sms") [] "my text messages";
    monitor (fn "org.thingpedia.builtin.thingengine.phone" "sms") [] "when i receive a text";
    monitor (fn "org.thingpedia.builtin.thingengine.phone" "sms") [] "when i get an sms";
    query (fn "org.thingpedia.builtin.thingengine.phone" "gps") [] "my current location";
    monitor (fn "org.thingpedia.builtin.thingengine.phone" "gps") [] "when my location changes";
    action (fn "org.thingpedia.builtin.thingengine.phone" "send_sms")
      [ ("to", Ttype.Phone_number); ("body", Ttype.String) ]
      ~binds:[ ("to", "to"); ("body", "body") ]
      "text $to saying $body";
    action (fn "org.thingpedia.builtin.thingengine.phone" "send_sms")
      [ ("to", Ttype.Phone_number); ("body", Ttype.String) ]
      ~binds:[ ("to", "to"); ("body", "body") ]
      "send an sms to $to saying $body";
    action (fn "org.thingpedia.builtin.thingengine.phone" "call")
      [ ("number", Ttype.Phone_number) ]
      ~binds:[ ("number", "number") ]
      "call $number";
    action (fn "org.thingpedia.builtin.thingengine.phone" "set_ringer")
      [ ("mode", Ttype.Enum [ "normal"; "vibrate"; "silent" ]) ]
      ~binds:[ ("mode", "mode") ]
      "set my phone to $mode";
    (* github *)
    query (fn "com.github" "get_notifications") [] "my github notifications";
    monitor (fn "com.github" "get_notifications") [] "when i get a github notification";
    query (fn "com.github" "get_issues")
      [ ("repo_name", Ttype.Entity "tt:repo") ]
      ~binds:[ ("repo_name", "repo_name") ]
      "issues in the $repo_name repository";
    monitor (fn "com.github" "get_issues")
      [ ("repo_name", Ttype.Entity "tt:repo") ]
      ~binds:[ ("repo_name", "repo_name") ]
      "when an issue is opened in $repo_name";
    action (fn "com.github" "create_issue")
      [ ("repo_name", Ttype.Entity "tt:repo"); ("title", Ttype.String) ]
      ~binds:[ ("repo_name", "repo_name"); ("title", "title") ]
      "open an issue titled $title in $repo_name";
    action (fn "com.github" "star")
      [ ("repo_name", Ttype.Entity "tt:repo") ]
      ~binds:[ ("repo_name", "repo_name") ]
      "star the $repo_name repository" ]
