(* The assembled Thingpedia skill library and primitive-template registry.

   The paper's experiments run on the Thingpedia snapshot available at the
   start of the study: 44 skills, 131 functions, 178 distinct parameters
   (section 5). The core library below reproduces that scale; the Spotify
   skill (section 6.1) is kept separate and merged in for the case study. *)

open Genie_thingtalk

let core_classes =
  Social.classes @ Communication.classes @ Media.classes @ Iot.classes
  @ Productivity.classes @ Lifestyle.classes

let core_library () = Schema.Library.of_classes core_classes

let full_library () = Schema.Library.of_classes (core_classes @ Spotify.classes)

let spotify_library () =
  (* Spotify plus the builtins it composes with in the case study *)
  Schema.Library.of_classes (core_classes @ Spotify.classes)

(* The hand-authored templates plus their mechanical surface variants (see
   Variants); [core_templates] is what the synthesis pipeline consumes. *)
let authored_core_templates () : Prim.t list =
  Social.templates @ Communication.templates @ Media.templates @ Iot.templates
  @ Productivity.templates @ Lifestyle.templates

let core_templates () : Prim.t list = Variants.expand_all (authored_core_templates ())

let spotify_templates () : Prim.t list = Variants.expand_all Spotify.templates

let all_templates () = core_templates () @ spotify_templates ()

(* Developers list easy- and hard-to-understand functions so the paraphrase
   sampler can pair them (section 3.2). *)
let easy_functions =
  List.map
    (fun (c, f) -> Ast.Fn.make c f)
    [ ("com.twitter", "post"); ("com.facebook", "post"); ("com.gmail", "send_email");
      ("com.gmail", "inbox"); ("com.thecatapi", "get"); ("com.dogapi", "get");
      ("org.thingpedia.weather", "current"); ("com.nest.thermostat", "get_temperature");
      ("io.home-assistant.light", "set_power"); ("com.twitter", "timeline");
      ("org.thingpedia.builtin.thingengine.phone", "send_sms");
      ("org.thingpedia.builtin.thingengine.builtin", "say") ]

let hard_functions =
  List.map
    (fun (c, f) -> Ast.Fn.make c f)
    [ ("com.dropbox", "get_space_usage"); ("com.dropbox", "open");
      ("org.thingpedia.rss", "get_post"); ("co.alphavantage", "get_stock_div");
      ("com.yandex.translate", "detect_language"); ("gov.epa.airnow", "aqi");
      ("com.github", "get_notifications"); ("com.sportradar", "game") ]

(* Library statistics reported alongside the experiments. *)
let stats lib =
  let open Schema.Library in
  Printf.sprintf "%d skills, %d functions (%d queries, %d actions), %d distinct parameters"
    (num_classes lib) (num_functions lib)
    (List.length (queries lib))
    (List.length (actions lib))
    (distinct_params lib)
