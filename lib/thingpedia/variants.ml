(* Programmatic utterance variants for the authored primitive templates.

   The paper's developers wrote 8.5 templates per function on average; many of
   those differ only in surface wording. The hand-authored templates here are
   complemented by mechanical variants (alternative when-words, quantifiers,
   list framings), which is documented in DESIGN.md as part of the template
   inventory. *)

open Genie_util

let with_utterance (t : Prim.t) u = { t with Prim.utterance = u }

let strip_prefix ~prefix s =
  if Tok.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let np_variants (t : Prim.t) =
  let u = t.Prim.utterance in
  let base =
    match strip_prefix ~prefix:"my " u with
    | Some rest -> [ "all my " ^ rest ]
    | None -> (
        match strip_prefix ~prefix:"the " u with
        | Some rest -> [ "all the " ^ rest ]
        | None -> [])
  in
  List.map (with_utterance t) base

let wp_variants (t : Prim.t) =
  let u = t.Prim.utterance in
  match strip_prefix ~prefix:"when " u with
  | Some rest ->
      List.map (with_utterance t)
        [ "whenever " ^ rest; "every time " ^ rest; "as soon as " ^ rest ]
  | None -> []

let vp_variants (t : Prim.t) =
  (* verb phrases get a light "for me" framing; only when no placeholder ends
     the utterance awkwardly *)
  let u = t.Prim.utterance in
  if String.length u > 0 && u.[String.length u - 1] <> 'x' then
    [ with_utterance t (u ^ " for me") ]
  else []

(* Expands one authored template into itself plus its derived variants. *)
let expand (t : Prim.t) : Prim.t list =
  let derived =
    match t.Prim.category with
    | Prim.Np -> np_variants t
    | Prim.Wp -> wp_variants t
    | Prim.Vp -> if t.Prim.params = [] then vp_variants t else []
  in
  t :: derived

let expand_all (ts : Prim.t list) : Prim.t list = List.concat_map expand ts
