(* ThingTalk constant values.

   The language needs a rich constant language (paper section 2.1): measures
   composed additively from arbitrary legal units, structured dates relative
   to the utterance time, locations by name or coordinates, typed entities
   with an optional display name. *)

type date =
  | D_absolute of { year : int; month : int; day : int }
  | D_now
  | D_start_of of string (* "day" | "week" | "mon" | "year" *)
  | D_end_of of string
  | D_plus of date * float * string (* base date + offset measure *)

type location =
  | L_named of string
  | L_absolute of float * float (* latitude, longitude *)
  | L_relative of string (* "home" | "work" | "current_location" *)

type t =
  | String of string
  | Number of float
  | Boolean of bool
  (* Additive terms, e.g. [ (6., "ft"); (3., "in") ]. *)
  | Measure of (float * string) list
  | Date of date
  | Time of int * int (* hour, minute *)
  | Location of location
  | Currency of float * string (* amount, code e.g. "usd" *)
  | Enum of string
  | Entity of { ty : string; value : string; display : string option }
  | Array of t list
  (* An unfilled slot ($?); programs containing one are incomplete. *)
  | Undefined

let rec type_of : t -> Ttype.t option = function
  | String _ -> Some Ttype.String
  | Number _ -> Some Ttype.Number
  | Boolean _ -> Some Ttype.Boolean
  | Measure [] -> None
  | Measure ((_, u) :: _) -> (
      match Ttype.Units.base_of u with
      | Some base -> Some (Ttype.Measure base)
      | None -> None)
  | Date _ -> Some Ttype.Date
  | Time _ -> Some Ttype.Time
  | Location _ -> Some Ttype.Location
  | Currency _ -> Some Ttype.Currency
  | Enum v -> Some (Ttype.Enum [ v ])
  | Entity { ty; _ } -> Some (Ttype.Entity ty)
  | Array [] -> None
  | Array (v :: _) -> Option.map (fun t -> Ttype.Array t) (type_of v)
  | Undefined -> None

(* Does the value fit in a slot of declared type [ty]? *)
let rec conforms v (ty : Ttype.t) =
  match (v, ty) with
  | Undefined, _ -> true
  | String _, (Ttype.String | Ttype.Entity _ | Ttype.Url | Ttype.Path_name
              | Ttype.Picture | Ttype.Phone_number | Ttype.Email_address) -> true
  | Number _, Ttype.Number -> true
  | Boolean _, Ttype.Boolean -> true
  | Measure ((_, u) :: _ as terms), Ttype.Measure base ->
      List.for_all (fun (_, u') -> Ttype.Units.base_of u' = Ttype.Units.base_of u) terms
      && Ttype.Units.base_of u = Some base
  | Date _, Ttype.Date -> true
  | Time _, Ttype.Time -> true
  | Location _, Ttype.Location -> true
  | Currency _, Ttype.Currency -> true
  | Enum v, Ttype.Enum allowed -> List.mem v allowed
  | Entity { ty = ety; _ }, Ttype.Entity want -> ety = want
  | Entity _, Ttype.String -> true
  | Array vs, Ttype.Array elt -> List.for_all (fun v -> conforms v elt) vs
  | _ -> false

(* Numeric magnitude used by comparison operators at runtime. Measures are
   normalized to their base unit; dates to days since an epoch under a
   supplied reference time. *)
let rec to_float ~now v =
  match v with
  | Number n -> Some n
  | Currency (n, _) -> Some n
  | Measure terms ->
      Some (List.fold_left (fun acc (n, u) -> acc +. Ttype.Units.to_base n u) 0.0 terms)
  | Date d -> Some (date_to_days ~now d)
  | Time (h, m) -> Some (float_of_int ((h * 60) + m))
  | Boolean b -> Some (if b then 1.0 else 0.0)
  | _ -> None

and date_to_days ~now d =
  (* [now] is a day count from an arbitrary epoch; weeks start on day 0 mod 7.
     This is a simplified proleptic calendar sufficient for simulation. *)
  match d with
  | D_absolute { year; month; day } ->
      float_of_int (((year - 1970) * 365) + ((month - 1) * 30) + day)
  | D_now -> now
  | D_start_of "day" -> Float.of_int (int_of_float now)
  | D_start_of "week" -> Float.of_int (int_of_float now / 7 * 7)
  | D_start_of "mon" -> Float.of_int (int_of_float now / 30 * 30)
  | D_start_of "year" -> Float.of_int (int_of_float now / 365 * 365)
  | D_start_of _ -> now
  | D_end_of "day" -> Float.of_int (int_of_float now + 1)
  | D_end_of "week" -> Float.of_int ((int_of_float now / 7 * 7) + 7)
  | D_end_of "mon" -> Float.of_int ((int_of_float now / 30 * 30) + 30)
  | D_end_of "year" -> Float.of_int ((int_of_float now / 365 * 365) + 365)
  | D_end_of _ -> now
  | D_plus (base, n, unit) ->
      date_to_days ~now base +. (Ttype.Units.to_base n unit /. 86400e3)

let rec to_string v =
  match v with
  | String s -> Printf.sprintf "\"%s\"" s
  | Number n ->
      if Float.is_integer n && Float.abs n < 1e15 then string_of_int (int_of_float n)
      else string_of_float n
  | Boolean b -> string_of_bool b
  | Measure terms ->
      String.concat " + "
        (List.map (fun (n, u) -> Printf.sprintf "%s%s" (to_string (Number n)) u) terms)
  | Date d -> date_to_string d
  | Time (h, m) -> Printf.sprintf "time(%d,%d)" h m
  | Location (L_named n) -> Printf.sprintf "location(\"%s\")" n
  | Location (L_absolute (lat, lon)) -> Printf.sprintf "location(%g,%g)" lat lon
  | Location (L_relative r) -> Printf.sprintf "location:%s" r
  | Currency (n, code) -> Printf.sprintf "currency(%s,%s)" (to_string (Number n)) code
  | Enum e -> Printf.sprintf "enum:%s" e
  | Entity { ty; value; display = Some d } -> Printf.sprintf "\"%s\"^^%s(\"%s\")" value ty d
  | Entity { ty; value; display = None } -> Printf.sprintf "\"%s\"^^%s" value ty
  | Array vs -> Printf.sprintf "[%s]" (String.concat ", " (List.map to_string vs))
  | Undefined -> "$?"

and date_to_string = function
  | D_absolute { year; month; day } -> Printf.sprintf "date(%d,%d,%d)" year month day
  | D_now -> "$now"
  | D_start_of u -> Printf.sprintf "start_of(%s)" u
  | D_end_of u -> Printf.sprintf "end_of(%s)" u
  | D_plus (d, n, u) ->
      Printf.sprintf "%s + %s%s" (date_to_string d) (to_string (Number n)) u

let pp fmt v = Format.pp_print_string fmt (to_string v)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

(* Runtime equality: strings compare case-insensitively, entities compare by
   value ignoring display, numerics by magnitude. *)
let runtime_equal ~now a b =
  match (a, b) with
  | String a, String b -> String.lowercase_ascii a = String.lowercase_ascii b
  | Entity { value = a; _ }, Entity { value = b; _ } -> a = b
  | Entity { value = a; _ }, String b | String b, Entity { value = a; _ } ->
      String.lowercase_ascii a = String.lowercase_ascii b
  | Enum a, Enum b -> a = b
  | Boolean a, Boolean b -> a = b
  | Location a, Location b -> a = b
  | (Number _ | Currency _ | Measure _ | Date _ | Time _), _ -> (
      match (to_float ~now a, to_float ~now b) with
      | Some x, Some y -> Float.abs (x -. y) < 1e-9
      | _ -> false)
  | a, b -> a = b
