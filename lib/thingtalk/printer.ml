(* Pretty-printer for the ThingTalk surface syntax. [Parser.parse_program]
   accepts everything this module prints (round-trip property tested). *)

open Ast

let param_value_to_string = function
  | Constant v -> Value.to_string v
  | Passed op -> op

let in_params_to_string ips =
  String.concat ", "
    (List.map (fun ip -> Printf.sprintf "%s = %s" ip.ip_name (param_value_to_string ip.ip_value)) ips)

let invocation_to_string inv =
  Printf.sprintf "%s(%s)" (Fn.to_string inv.fn) (in_params_to_string inv.in_params)

let rec predicate_to_string p =
  match p with
  | P_true -> "true"
  | P_false -> "false"
  | P_not p -> Printf.sprintf "!(%s)" (predicate_to_string p)
  | P_and [] -> "true"
  | P_and ps -> String.concat " && " (List.map predicate_atom_string ps)
  | P_or [] -> "false"
  | P_or ps -> Printf.sprintf "(%s)" (String.concat " || " (List.map predicate_atom_string ps))
  | P_atom { lhs; op; rhs } ->
      Printf.sprintf "%s %s %s" lhs (comp_op_to_string op) (Value.to_string rhs)
  | P_external { inv; pred } ->
      Printf.sprintf "%s { %s }" (invocation_to_string inv) (predicate_to_string pred)

and predicate_atom_string p =
  match p with
  | P_and _ | P_or _ -> Printf.sprintf "(%s)" (predicate_to_string p)
  | _ -> predicate_to_string p

let rec query_to_string q =
  match q with
  | Q_invoke inv -> invocation_to_string inv
  | Q_filter (q, p) ->
      Printf.sprintf "(%s) filter %s" (query_to_string q) (predicate_to_string p)
  | Q_join (a, b, []) ->
      Printf.sprintf "%s join %s" (join_operand_string a) (join_operand_string b)
  | Q_join (a, b, on) ->
      let on_s =
        String.concat ", " (List.map (fun (ip, op) -> Printf.sprintf "%s = %s" ip op) on)
      in
      (* the right operand must be parenthesized unless it is a plain
         invocation, or the trailing 'on' clause would be ambiguous *)
      let rhs =
        match b with
        | Q_invoke _ -> query_to_string b
        | _ -> Printf.sprintf "(%s)" (query_to_string b)
      in
      Printf.sprintf "%s join %s on (%s)" (join_operand_string a) rhs on_s
  | Q_aggregate { op = Agg_count; field = None; inner } ->
      Printf.sprintf "agg count of (%s)" (query_to_string inner)
  | Q_aggregate { op; field = Some f; inner } ->
      Printf.sprintf "agg %s %s of (%s)" (agg_op_to_string op) f (query_to_string inner)
  | Q_aggregate { op; field = None; inner } ->
      Printf.sprintf "agg %s of (%s)" (agg_op_to_string op) (query_to_string inner)

and join_operand_string q =
  match q with
  | Q_join _ -> Printf.sprintf "(%s)" (query_to_string q)
  | _ -> query_to_string q

let rec stream_to_string s =
  match s with
  | S_now -> "now"
  | S_attimer t -> Printf.sprintf "attimer time = %s" (Value.to_string t)
  | S_timer { base; interval } ->
      Printf.sprintf "timer base = %s interval = %s" (Value.to_string base)
        (Value.to_string interval)
  | S_monitor (q, None) -> Printf.sprintf "monitor (%s)" (query_to_string q)
  | S_monitor (q, Some fields) ->
      Printf.sprintf "monitor (%s) on new [%s]" (query_to_string q) (String.concat ", " fields)
  | S_edge (s, p) ->
      Printf.sprintf "edge (%s) on %s" (stream_to_string s) (predicate_to_string p)

let action_to_string a =
  match a with
  | A_notify -> "notify"
  | A_invoke inv -> invocation_to_string inv

(* Whole-program prints are counted so hot-path tests can assert the serve
   and synthesis layers stringify each distinct program once, not once per
   request. Atomic because pooled serve workers print from their own
   domains. *)
let programs_printed = Genie_util.Atomic_counter.create ()
let program_print_count () = Genie_util.Atomic_counter.get programs_printed

let program_to_string (p : program) =
  Genie_util.Atomic_counter.incr programs_printed;
  let parts =
    stream_to_string p.stream
    :: (match p.query with None -> [] | Some q -> [ query_to_string q ])
    @ [ action_to_string p.action ]
  in
  String.concat " => " parts ^ ";"

let policy_to_string (p : policy) =
  let target =
    match p.target with
    | Policy_query (inv, P_true) ->
        Printf.sprintf "now => %s => notify" (invocation_to_string inv)
    | Policy_query (inv, pred) ->
        Printf.sprintf "now => (%s) filter %s => notify" (invocation_to_string inv)
          (predicate_to_string pred)
    | Policy_action (inv, P_true) -> Printf.sprintf "now => %s" (invocation_to_string inv)
    | Policy_action (inv, pred) ->
        Printf.sprintf "now => (%s) filter %s" (invocation_to_string inv)
          (predicate_to_string pred)
  in
  Printf.sprintf "source %s : %s;" (predicate_to_string p.source) target

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
let pp_policy fmt p = Format.pp_print_string fmt (policy_to_string p)
