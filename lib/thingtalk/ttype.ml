(* The ThingTalk type system (paper Fig. 3).

   Strong fine-grained static typing is VAPL design principle (1): standard
   scalar types, domain types common in IoT / web services, custom entity
   types, and arrays as the only compound type. *)

type t =
  | String
  | Number
  | Boolean
  | Date
  | Time
  | Location
  | Path_name
  | Url
  | Phone_number
  | Email_address
  | Picture
  | Currency
  | Measure of string (* base unit, e.g. "byte", "m", "C" *)
  | Enum of string list
  | Entity of string (* entity type, e.g. "tt:username" *)
  | Array of t

let rec to_string = function
  | String -> "String"
  | Number -> "Number"
  | Boolean -> "Boolean"
  | Date -> "Date"
  | Time -> "Time"
  | Location -> "Location"
  | Path_name -> "PathName"
  | Url -> "URL"
  | Phone_number -> "PhoneNumber"
  | Email_address -> "EmailAddress"
  | Picture -> "Picture"
  | Currency -> "Currency"
  | Measure u -> Printf.sprintf "Measure(%s)" u
  | Enum vs -> Printf.sprintf "Enum(%s)" (String.concat "," vs)
  | Entity e -> Printf.sprintf "Entity(%s)" e
  | Array t -> Printf.sprintf "Array(%s)" (to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

(* Assignability: the type of a constant or passed parameter [src] can flow
   into a slot of type [dst]. Entities may be given as free-form strings in
   natural language, so String flows into Entity, URL, path-name and picture
   slots; the runtime performs the knowledge-base lookup after parsing. *)
let rec assignable ~src ~dst =
  match (src, dst) with
  | a, b when equal a b -> true
  | String, (Entity _ | Url | Path_name | Picture | Phone_number | Email_address) -> true
  | Entity _, String -> true
  | Url, Picture | Picture, Url -> true
  | Array a, Array b -> assignable ~src:a ~dst:b
  | _ -> false

(* Strict assignability used when *synthesizing* parameter passing: only
   same-type (or picture/url) flows, so generated compounds stay sensible.
   The lenient [assignable] above is kept for checking user/model programs,
   where free-form strings may stand for entities. *)
let rec strictly_assignable ~src ~dst =
  match (src, dst) with
  | a, b when equal a b -> true
  | Url, Picture | Picture, Url -> true
  | Array a, Array b -> strictly_assignable ~src:a ~dst:b
  | _ -> false

let is_numeric = function
  | Number | Currency | Measure _ -> true
  | _ -> false

(* Units of measure. Each concrete unit maps to (base unit, multiplier); the
   language accepts any legal unit and composes measures additively
   ("6 feet 3 inches" = 6ft + 3in), because a neural parser cannot normalize
   units during translation (paper section 2.1). *)
module Units = struct
  let table : (string * (string * float)) list =
    [ (* data size; base: byte *)
      ("byte", ("byte", 1.0)); ("KB", ("byte", 1e3)); ("MB", ("byte", 1e6));
      ("GB", ("byte", 1e9)); ("TB", ("byte", 1e12));
      (* duration; base: ms *)
      ("ms", ("ms", 1.0)); ("s", ("ms", 1e3)); ("min", ("ms", 60e3));
      ("h", ("ms", 3600e3)); ("day", ("ms", 86400e3)); ("week", ("ms", 604800e3));
      ("mon", ("ms", 2592000e3)); ("year", ("ms", 31536000e3));
      (* length; base: m *)
      ("m", ("m", 1.0)); ("km", ("m", 1e3)); ("mm", ("m", 1e-3)); ("cm", ("m", 1e-2));
      ("mi", ("m", 1609.344)); ("in", ("m", 0.0254)); ("ft", ("m", 0.3048));
      (* speed; base: mps *)
      ("mps", ("mps", 1.0)); ("kmph", ("mps", 0.27777778)); ("mph", ("mps", 0.44704));
      (* weight; base: kg *)
      ("kg", ("kg", 1.0)); ("g", ("kg", 1e-3)); ("lb", ("kg", 0.45359237)); ("oz", ("kg", 0.028349523));
      (* temperature; base: C (relative conversion handled separately) *)
      ("C", ("C", 1.0)); ("F", ("C", 1.0)); ("K", ("C", 1.0));
      (* energy; base: kcal *)
      ("kcal", ("kcal", 1.0)); ("kJ", ("kcal", 0.239006));
      (* beats per minute, used by music skills; base: bpm *)
      ("bpm", ("bpm", 1.0)) ]

  let base_of unit =
    match List.assoc_opt unit table with
    | Some (base, _) -> Some base
    | None -> None

  let is_unit unit = List.mem_assoc unit table

  (* Converts [v] in [unit] to the base unit. Temperature needs an affine
     conversion, everything else is linear. *)
  let to_base v unit =
    match unit with
    | "F" -> (v -. 32.0) *. 5.0 /. 9.0
    | "K" -> v -. 273.15
    | _ -> (
        match List.assoc_opt unit table with
        | Some (_, mult) -> v *. mult
        | None -> invalid_arg (Printf.sprintf "Units.to_base: unknown unit %s" unit))

  let units_for_base base =
    List.filter_map (fun (u, (b, _)) -> if b = base then Some u else None) table
end
