(* Recursive-descent parser for the ThingTalk surface syntax (Fig. 5) plus
   the TT+A aggregation extension and TACL policies. *)

open Ast

exception Error of string

type state = { toks : Lexer.token array; mutable pos : int }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Lexer.EOF
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s at token %s (position %d)" msg
                  (Lexer.token_to_string (peek st)) st.pos))

let expect st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let expect_ident st word =
  match peek st with
  | Lexer.IDENT w when w = word -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" word)

let accept st tok = if peek st = tok then (advance st; true) else false

let accept_ident st word =
  match peek st with
  | Lexer.IDENT w when w = word -> advance st; true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT w -> advance st; w
  | _ -> fail st "expected identifier"

(* --- values ------------------------------------------------------------- *)

let rec parse_value st : Value.t =
  let v = parse_value_atom st in
  (* additive measure composition: 6ft + 3in *)
  match (v, peek st) with
  | Value.Measure terms, Lexer.OP "+" ->
      let rec more acc =
        if accept st (Lexer.OP "+") then
          match parse_value_atom st with
          | Value.Measure terms' -> more (acc @ terms')
          | _ -> fail st "expected measure after +"
        else acc
      in
      Value.Measure (more terms)
  | Value.Date d, Lexer.OP "+" ->
      advance st;
      (match parse_value_atom st with
      | Value.Measure [ (n, u) ] -> Value.Date (Value.D_plus (d, n, u))
      | _ -> fail st "expected single-term measure after date +")
  | _ -> v

and parse_value_atom st : Value.t =
  match peek st with
  | Lexer.NUMBER n -> advance st; Value.Number n
  | Lexer.MEASURE (n, u) -> advance st; Value.Measure [ (n, u) ]
  | Lexer.STRING s ->
      advance st;
      if accept st (Lexer.OP "^^") then begin
        match peek st with
        | Lexer.IDENT prefix ->
            advance st;
            (* entity types may be namespaced, e.g. tt:username *)
            let ty =
              if peek st = Lexer.COLON then begin
                advance st;
                prefix ^ ":" ^ ident st
              end
              else prefix
            in
            let display =
              if peek st = Lexer.LPAREN then begin
                advance st;
                match peek st with
                | Lexer.STRING d -> advance st; expect st Lexer.RPAREN; Some d
                | _ -> fail st "expected display string"
              end
              else None
            in
            Value.Entity { ty; value = s; display }
        | _ -> fail st "expected entity type after ^^"
      end
      else Value.String s
  | Lexer.ENUM v -> advance st; Value.Enum v
  | Lexer.RELATIVE_LOCATION r -> advance st; Value.Location (Value.L_relative r)
  | Lexer.DOLLAR "now" -> advance st; Value.Date Value.D_now
  | Lexer.DOLLAR "?" -> advance st; Value.Undefined
  | Lexer.LBRACKET ->
      advance st;
      let rec elems acc =
        if accept st Lexer.RBRACKET then List.rev acc
        else
          let v = parse_value st in
          if accept st Lexer.COMMA then elems (v :: acc)
          else (expect st Lexer.RBRACKET; List.rev (v :: acc))
      in
      Value.Array (elems [])
  | Lexer.IDENT "true" -> advance st; Value.Boolean true
  | Lexer.IDENT "false" -> advance st; Value.Boolean false
  | Lexer.IDENT "date" ->
      advance st;
      expect st Lexer.LPAREN;
      let y = parse_int st in
      expect st Lexer.COMMA;
      let m = parse_int st in
      expect st Lexer.COMMA;
      let d = parse_int st in
      expect st Lexer.RPAREN;
      Value.Date (Value.D_absolute { year = y; month = m; day = d })
  | Lexer.IDENT "time" ->
      advance st;
      expect st Lexer.LPAREN;
      let h = parse_int st in
      expect st Lexer.COMMA;
      let m = parse_int st in
      expect st Lexer.RPAREN;
      Value.Time (h, m)
  | Lexer.IDENT "start_of" ->
      advance st;
      expect st Lexer.LPAREN;
      let u = ident st in
      expect st Lexer.RPAREN;
      Value.Date (Value.D_start_of u)
  | Lexer.IDENT "end_of" ->
      advance st;
      expect st Lexer.LPAREN;
      let u = ident st in
      expect st Lexer.RPAREN;
      Value.Date (Value.D_end_of u)
  | Lexer.IDENT "location" ->
      advance st;
      expect st Lexer.LPAREN;
      (match peek st with
      | Lexer.STRING name ->
          advance st;
          expect st Lexer.RPAREN;
          Value.Location (Value.L_named name)
      | _ ->
          let lat = parse_float st in
          expect st Lexer.COMMA;
          let lon = parse_float st in
          expect st Lexer.RPAREN;
          Value.Location (Value.L_absolute (lat, lon)))
  | Lexer.IDENT "currency" ->
      advance st;
      expect st Lexer.LPAREN;
      let n = parse_float st in
      expect st Lexer.COMMA;
      let code = ident st in
      expect st Lexer.RPAREN;
      Value.Currency (n, code)
  | _ -> fail st "expected value"

and parse_int st =
  match peek st with
  | Lexer.NUMBER n when Float.is_integer n -> advance st; int_of_float n
  | _ -> fail st "expected integer"

and parse_float st =
  match peek st with
  | Lexer.NUMBER n -> advance st; n
  | _ -> fail st "expected number"

(* --- invocations --------------------------------------------------------- *)

let starts_value st =
  match peek st with
  | Lexer.NUMBER _ | Lexer.MEASURE _ | Lexer.STRING _ | Lexer.ENUM _
  | Lexer.RELATIVE_LOCATION _ | Lexer.DOLLAR _ | Lexer.LBRACKET -> true
  | Lexer.IDENT ("true" | "false" | "date" | "time" | "start_of" | "end_of"
                 | "location" | "currency") -> true
  | _ -> false

let parse_in_param st =
  let name = ident st in
  expect st Lexer.EQUALS;
  if starts_value st then { ip_name = name; ip_value = Constant (parse_value st) }
  else
    match peek st with
    | Lexer.IDENT out_name -> advance st; { ip_name = name; ip_value = Passed out_name }
    | _ -> fail st "expected value or output parameter name"

let parse_invocation st =
  match peek st with
  | Lexer.FNREF f ->
      advance st;
      let fn = Fn.of_string f in
      expect st Lexer.LPAREN;
      let rec params acc =
        if accept st Lexer.RPAREN then List.rev acc
        else
          let p = parse_in_param st in
          if accept st Lexer.COMMA then params (p :: acc)
          else (expect st Lexer.RPAREN; List.rev (p :: acc))
      in
      { fn; in_params = params [] }
  | _ -> fail st "expected function reference"

(* --- predicates ---------------------------------------------------------- *)

let rec parse_predicate st : predicate =
  let lhs = parse_pred_and st in
  if peek st = Lexer.OP "||" then begin
    let rec more acc =
      if accept st (Lexer.OP "||") then more (parse_pred_and st :: acc) else List.rev acc
    in
    P_or (more [ lhs ])
  end
  else lhs

and parse_pred_and st =
  let lhs = parse_pred_atom st in
  if peek st = Lexer.OP "&&" then begin
    let rec more acc =
      if accept st (Lexer.OP "&&") then more (parse_pred_atom st :: acc) else List.rev acc
    in
    P_and (more [ lhs ])
  end
  else lhs

and parse_pred_atom st =
  match peek st with
  | Lexer.IDENT "true" -> advance st; P_true
  | Lexer.IDENT "false" -> advance st; P_false
  | Lexer.OP "!" ->
      advance st;
      P_not (parse_pred_atom st)
  | Lexer.LPAREN ->
      advance st;
      let p = parse_predicate st in
      expect st Lexer.RPAREN;
      p
  | Lexer.FNREF _ ->
      let inv = parse_invocation st in
      expect st Lexer.LBRACE;
      let p = parse_predicate st in
      expect st Lexer.RBRACE;
      P_external { inv; pred = p }
  | Lexer.IDENT _ ->
      let lhs = ident st in
      let op =
        match peek st with
        | Lexer.OP (("==" | "!=" | ">" | "<" | ">=" | "<=") as o) ->
            advance st;
            comp_op_of_string o
        | Lexer.EQUALS -> advance st; Op_eq
        | Lexer.IDENT (("contains" | "substr" | "starts_with" | "ends_with" | "in_array") as o) ->
            advance st;
            comp_op_of_string o
        | _ -> fail st "expected comparison operator"
      in
      let rhs = parse_value st in
      P_atom { lhs; op; rhs }
  | _ -> fail st "expected predicate"

(* --- queries ------------------------------------------------------------- *)

let rec parse_query st : query =
  let lhs = parse_query_atom st in
  parse_query_postfix st lhs

and parse_query_postfix st lhs =
  if accept_ident st "filter" then
    let p = parse_predicate st in
    parse_query_postfix st (Q_filter (lhs, p))
  else if accept_ident st "join" then begin
    let rhs = parse_query_atom st in
    (* optional: on (ip = op, ...) -- but 'on' also introduces edge predicates
       and monitor field lists; inside a query postfix it is unambiguous. *)
    let on =
      if peek st = Lexer.IDENT "on" && peek2 st = Lexer.LPAREN then begin
        advance st;
        advance st;
        let rec pairs acc =
          let ip = ident st in
          expect st Lexer.EQUALS;
          let op = ident st in
          if accept st Lexer.COMMA then pairs ((ip, op) :: acc)
          else (expect st Lexer.RPAREN; List.rev ((ip, op) :: acc))
        in
        pairs []
      end
      else []
    in
    parse_query_postfix st (Q_join (lhs, rhs, on))
  end
  else lhs

and parse_query_atom st =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let q = parse_query st in
      expect st Lexer.RPAREN;
      q
  | Lexer.FNREF _ -> Q_invoke (parse_invocation st)
  | Lexer.IDENT "agg" ->
      advance st;
      let op_name = ident st in
      let op =
        match op_name with
        | "max" -> Agg_max
        | "min" -> Agg_min
        | "sum" -> Agg_sum
        | "avg" -> Agg_avg
        | "count" -> Agg_count
        | _ -> fail st "expected aggregation operator"
      in
      let field = if accept_ident st "of" then None else Some (ident st) in
      if field <> None then expect_ident st "of";
      expect st Lexer.LPAREN;
      let inner = parse_query st in
      expect st Lexer.RPAREN;
      Q_aggregate { op; field; inner }
  | _ -> fail st "expected query"

(* --- streams ------------------------------------------------------------- *)

let rec parse_stream st : stream =
  match peek st with
  | Lexer.IDENT "now" -> advance st; S_now
  | Lexer.IDENT "attimer" ->
      advance st;
      expect_ident st "time";
      expect st Lexer.EQUALS;
      S_attimer (parse_value st)
  | Lexer.IDENT "timer" ->
      advance st;
      expect_ident st "base";
      expect st Lexer.EQUALS;
      let base = parse_value st in
      expect_ident st "interval";
      expect st Lexer.EQUALS;
      let interval = parse_value st in
      S_timer { base; interval }
  | Lexer.IDENT "monitor" ->
      advance st;
      let q =
        if accept st Lexer.LPAREN then begin
          let q = parse_query st in
          expect st Lexer.RPAREN;
          q
        end
        else Q_invoke (parse_invocation st)
      in
      (* 'on new [fields]' -- distinguished from edge's 'on predicate' by the
         'new' keyword. *)
      if peek st = Lexer.IDENT "on" && peek2 st = Lexer.IDENT "new" then begin
        advance st;
        advance st;
        let fields =
          if accept st Lexer.LBRACKET then begin
            let rec go acc =
              let f = ident st in
              if accept st Lexer.COMMA then go (f :: acc)
              else (expect st Lexer.RBRACKET; List.rev (f :: acc))
            in
            go []
          end
          else [ ident st ]
        in
        S_monitor (q, Some fields)
      end
      else S_monitor (q, None)
  | Lexer.IDENT "edge" ->
      advance st;
      expect st Lexer.LPAREN;
      let s = parse_stream st in
      expect st Lexer.RPAREN;
      expect_ident st "on";
      let p = parse_predicate st in
      S_edge (s, p)
  | _ -> fail st "expected stream"

(* --- programs ------------------------------------------------------------ *)

let query_as_action st q =
  match q with
  | Q_invoke inv -> A_invoke inv
  | _ -> fail st "only a plain invocation can be used as an action"

let parse_program_tokens st : program =
  let stream = parse_stream st in
  expect st Lexer.ARROW;
  if accept_ident st "notify" then begin
    ignore (accept st Lexer.SEMICOLON);
    { stream; query = None; action = A_notify }
  end
  else begin
    let q = parse_query st in
    if accept st Lexer.ARROW then begin
      let action =
        if accept_ident st "notify" then A_notify else A_invoke (parse_invocation st)
      in
      ignore (accept st Lexer.SEMICOLON);
      { stream; query = Some q; action }
    end
    else begin
      ignore (accept st Lexer.SEMICOLON);
      { stream; query = None; action = query_as_action st q }
    end
  end

let parse_program src =
  let st = make_state src in
  let p = parse_program_tokens st in
  if peek st <> Lexer.EOF then fail st "trailing tokens after program";
  p

(* --- policies ------------------------------------------------------------ *)

let parse_policy src : policy =
  let st = make_state src in
  expect_ident st "source";
  let source = parse_predicate st in
  expect st Lexer.COLON;
  expect_ident st "now";
  expect st Lexer.ARROW;
  let strip_filters q =
    let rec go q acc =
      match q with
      | Q_invoke inv -> (inv, acc)
      | Q_filter (q, p) -> go q (match acc with P_true -> p | _ -> P_and [ p; acc ])
      | Q_join _ | Q_aggregate _ ->
          raise (Error "TACL policies are restricted to primitive commands")
    in
    go q P_true
  in
  let q = parse_query st in
  let inv, pred = strip_filters q in
  let target =
    if accept st Lexer.ARROW then begin
      expect_ident st "notify";
      Policy_query (inv, pred)
    end
    else Policy_action (inv, pred)
  in
  ignore (accept st Lexer.SEMICOLON);
  if peek st <> Lexer.EOF then fail st "trailing tokens after policy";
  { source; target }

let parse_program_opt src =
  match parse_program src with
  | p -> Some p
  | exception (Error _ | Lexer.Error _) -> None
