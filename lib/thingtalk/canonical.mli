(** Canonicalization of ThingTalk programs (paper section 2.4).

    Canonical form is what allows the neural network's output to be checked
    for correctness with an exact match: semantically equivalent programs
    print identically. The rules: boolean predicates are simplified, converted
    to conjunctive normal form and sorted; nested filters collapse into one
    && filter; joins without parameter passing have their operands ordered
    lexically; each filter clause moves to the left-most operand that covers
    its output parameters; input parameters are listed alphabetically. *)

val normalize : Schema.Library.t -> Ast.program -> Ast.program
(** The canonical form. Idempotent; preserves well-typedness, the function
    multiset and runtime semantics (property-tested). *)

val normalize_policy : Schema.Library.t -> Ast.policy -> Ast.policy

val normalize_predicate : Ast.predicate -> Ast.predicate
(** Simplify, convert to CNF, sort and deduplicate. *)

val conjuncts : Ast.predicate -> Ast.predicate list
(** The conjunct list of the normalized predicate ([[]] for [P_true]). *)

val conjoin : Ast.predicate list -> Ast.predicate

val canonical_string : Schema.Library.t -> Ast.program -> string
(** [canonical_string lib p] prints [normalize lib p]; two programs are
    equivalent under the paper's program-accuracy metric iff their canonical
    strings are equal. *)

val equivalent : Schema.Library.t -> Ast.program -> Ast.program -> bool
