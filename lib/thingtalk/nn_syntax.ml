(* The flat token syntax predicted by the semantic parser (section 2.1).

   Numbers, dates and times identified in the input sentence are replaced by
   named constants (NUMBER_0, DATE_1, ...); free-form strings and named
   entities are serialized as multi-token quoted spans so individual words can
   be copied from the input.

   Two of the Table 3 ablations are implemented here as serializer options:
   [type_annotations] controls whether parameter tokens carry their type
   ("param:caption:String" vs "param:caption"); [keyword_params] switches
   between keyword parameters and positional parameters. *)

open Ast

type options = { type_annotations : bool; keyword_params : bool }

let default_options = { type_annotations = true; keyword_params = true }

(* Sentence-side named constants: slot token -> value. *)
type entities = (string * Value.t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- serialization ------------------------------------------------------- *)

let type_token (ty : Ttype.t) =
  match ty with
  | Ttype.Enum _ -> "Enum"
  | Ttype.Array t ->
      let rec base = function Ttype.Array t -> base t | t -> t in
      "Array(" ^ Ttype.to_string (base t) ^ ")"
  | t -> Ttype.to_string t

let find_slot (entities : entities) (v : Value.t) =
  List.find_map (fun (slot, v') -> if Value.equal v v' then Some slot else None) entities

(* quoted spans split on spaces only, so punctuation inside a value
   ("notes.txt") survives the round trip *)
let quoted_span s =
  ("\""
  :: List.filter (fun t -> t <> "")
       (String.split_on_char ' ' (String.lowercase_ascii s)))
  @ [ "\"" ]

let rec value_tokens ~entities (v : Value.t) : string list =
  match find_slot entities v with
  | Some slot -> [ slot ]
  | None -> (
      match v with
      | Value.String s -> quoted_span s
      | Value.Number n ->
          if Float.is_integer n then [ string_of_int (int_of_float n) ]
          else [ string_of_float n ]
      | Value.Boolean b -> [ string_of_bool b ]
      | Value.Measure terms ->
          List.concat
            (List.mapi
               (fun i (n, u) ->
                 let num =
                   match find_slot entities (Value.Number n) with
                   | Some slot -> slot
                   | None -> List.hd (value_tokens ~entities:[] (Value.Number n))
                 in
                 (if i = 0 then [] else [ "+" ]) @ [ num; "unit:" ^ u ])
               terms)
      | Value.Date d -> date_tokens ~entities d
      | Value.Time (h, m) -> [ Printf.sprintf "time:%d:%d" h m ]
      | Value.Location (Value.L_relative r) -> [ "location:" ^ r ]
      | Value.Location (Value.L_named n) -> ("location:" :: quoted_span n)
      | Value.Location (Value.L_absolute (lat, lon)) ->
          [ Printf.sprintf "location:%g:%g" lat lon ]
      | Value.Currency (n, code) ->
          let num = List.hd (value_tokens ~entities (Value.Number n)) in
          [ "currency:" ^ code; num ]
      | Value.Enum e -> [ "enum:" ^ e ]
      | Value.Entity { ty; value; display = _ } -> quoted_span value @ [ "^^" ^ ty ]
      | Value.Array vs ->
          "[" :: (List.concat_map (fun v -> value_tokens ~entities v @ [ "," ]) vs |> fun l ->
                  match List.rev l with "," :: rest -> List.rev rest | _ -> l)
          @ [ "]" ]
      | Value.Undefined -> [ "undefined" ])

and date_tokens ~entities d =
  match d with
  | Value.D_now -> [ "date:now" ]
  | Value.D_start_of u -> [ "start_of:" ^ u ]
  | Value.D_end_of u -> [ "end_of:" ^ u ]
  | Value.D_absolute { year; month; day } ->
      [ Printf.sprintf "date:%d:%d:%d" year month day ]
  | Value.D_plus (base, n, u) ->
      let num =
        match find_slot entities (Value.Number n) with
        | Some slot -> slot
        | None -> List.hd (value_tokens ~entities:[] (Value.Number n))
      in
      date_tokens ~entities base @ [ "+"; num; "unit:" ^ u ]

let param_token ~options lib (fn : Fn.t) name =
  if options.type_annotations then
    let ty =
      match Schema.Library.find_fn lib fn with
      | None -> None
      | Some f -> Option.map (fun p -> p.Schema.p_type) (Schema.find_param f name)
    in
    match ty with
    | Some ty -> Printf.sprintf "param:%s:%s" name (type_token ty)
    | None -> "param:" ^ name
  else "param:" ^ name

(* A bare output-parameter reference (filter lhs, join 'on', param passing
   source). *)
let out_param_token ~options lib (fns : Fn.t list) name =
  ignore options;
  ignore lib;
  ignore fns;
  "param:" ^ name

let invocation_tokens ~options ~entities lib (inv : invocation) : string list =
  let fn_tok = Fn.to_string inv.fn in
  if options.keyword_params then
    fn_tok
    :: List.concat_map
         (fun ip ->
           let v_toks =
             match ip.ip_value with
             | Constant v -> value_tokens ~entities v
             | Passed op -> [ "param:" ^ op ]
           in
           (param_token ~options lib inv.fn ip.ip_name :: "=" :: v_toks))
         inv.in_params
  else
    (* positional: one slot per declared input parameter, in signature order;
       'none' marks an absent optional parameter *)
    let slots =
      match Schema.Library.find_fn lib inv.fn with
      | None -> List.map (fun ip -> Some ip) inv.in_params
      | Some f ->
          List.map
            (fun p -> List.find_opt (fun ip -> ip.ip_name = p.Schema.p_name) inv.in_params)
            (Schema.in_params f)
    in
    fn_tok :: "("
    :: (List.concat_map
          (fun slot ->
            (match slot with
            | None -> [ "none" ]
            | Some ip -> (
                match ip.ip_value with
                | Constant v -> value_tokens ~entities v
                | Passed op -> [ "param:" ^ op ]))
            @ [ "," ])
          slots
       |> fun l -> match List.rev l with "," :: rest -> List.rev rest | _ -> l)
    @ [ ")" ]

let rec predicate_tokens ~options ~entities lib (p : predicate) : string list =
  match p with
  | P_true -> [ "true" ]
  | P_false -> [ "false" ]
  | P_not p -> ("not" :: "(" :: predicate_tokens ~options ~entities lib p) @ [ ")" ]
  | P_and ps ->
      List.concat
        (List.mapi
           (fun i p ->
             (if i = 0 then [] else [ "and" ]) @ atom_tokens ~options ~entities lib p)
           ps)
  | P_or ps ->
      "(" :: List.concat
               (List.mapi
                  (fun i p ->
                    (if i = 0 then [] else [ "or" ]) @ atom_tokens ~options ~entities lib p)
                  ps)
      @ [ ")" ]
  | P_atom { lhs; op; rhs } ->
      (out_param_token ~options lib [] lhs :: comp_op_to_string op
       :: value_tokens ~entities rhs)
  | P_external { inv; pred } ->
      invocation_tokens ~options ~entities lib inv
      @ ("{" :: predicate_tokens ~options ~entities lib pred)
      @ [ "}" ]

and atom_tokens ~options ~entities lib p =
  match p with
  | P_and _ | P_or _ -> ("(" :: predicate_tokens ~options ~entities lib p) @ [ ")" ]
  | _ -> predicate_tokens ~options ~entities lib p

let rec query_tokens ~options ~entities lib (q : query) : string list =
  match q with
  | Q_invoke inv -> invocation_tokens ~options ~entities lib inv
  | Q_filter (inner, p) ->
      query_tokens ~options ~entities lib inner
      @ ("filter" :: predicate_tokens ~options ~entities lib p)
  | Q_join (a, b, on) ->
      let on_toks =
        match on with
        | [] -> []
        | on ->
            "on" :: "("
            :: (List.concat_map
                  (fun (ip, op) -> [ "param:" ^ ip; "="; "param:" ^ op; "," ])
                  on
               |> fun l -> match List.rev l with "," :: rest -> List.rev rest | _ -> l)
            @ [ ")" ]
      in
      ("(" :: query_tokens ~options ~entities lib a)
      @ (")" :: "join" :: "(" :: query_tokens ~options ~entities lib b)
      @ (")" :: on_toks)
  | Q_aggregate { op; field; inner } ->
      ("agg" :: agg_op_to_string op
       :: (match field with None -> [] | Some f -> [ "param:" ^ f ]))
      @ ("of" :: "(" :: query_tokens ~options ~entities lib inner)
      @ [ ")" ]

let rec stream_tokens ~options ~entities lib (s : stream) : string list =
  match s with
  | S_now -> [ "now" ]
  | S_attimer t -> ("attimer" :: "time" :: "=" :: value_tokens ~entities t)
  | S_timer { base; interval } ->
      ("timer" :: "base" :: "=" :: value_tokens ~entities base)
      @ ("interval" :: "=" :: value_tokens ~entities interval)
  | S_monitor (q, on_new) ->
      ("monitor" :: "(" :: query_tokens ~options ~entities lib q)
      @ [ ")" ]
      @ (match on_new with
        | None -> []
        | Some fields ->
            "on" :: "new" :: "["
            :: (List.concat_map (fun f -> [ "param:" ^ f; "," ]) fields |> fun l ->
                match List.rev l with "," :: rest -> List.rev rest | _ -> l)
            @ [ "]" ])
  | S_edge (inner, p) ->
      ("edge" :: "(" :: stream_tokens ~options ~entities lib inner)
      @ (")" :: "on" :: predicate_tokens ~options ~entities lib p)

let action_tokens ~options ~entities lib (a : action) : string list =
  match a with
  | A_notify -> [ "notify" ]
  | A_invoke inv -> invocation_tokens ~options ~entities lib inv

let to_tokens ?(options = default_options) ?(entities = []) lib (p : program) :
    string list =
  stream_tokens ~options ~entities lib p.stream
  @ (match p.query with
    | None -> []
    | Some q -> "=>" :: query_tokens ~options ~entities lib q)
  @ ("=>" :: action_tokens ~options ~entities lib p.action)

let to_string ?options ?entities lib p =
  String.concat " " (to_tokens ?options ?entities lib p)

let policy_to_tokens ?(options = default_options) ?(entities = []) lib
    (p : policy) : string list =
  let target =
    match p.target with
    | Policy_query (inv, pred) ->
        invocation_tokens ~options ~entities lib inv
        @ (match pred with
          | P_true -> []
          | _ -> "filter" :: predicate_tokens ~options ~entities lib pred)
        @ [ "=>"; "notify" ]
    | Policy_action (inv, pred) ->
        invocation_tokens ~options ~entities lib inv
        @ (match pred with
          | P_true -> []
          | _ -> "filter" :: predicate_tokens ~options ~entities lib pred)
  in
  ("policy" :: predicate_tokens ~options ~entities lib p.source) @ (":" :: target)

(* --- deserialization ------------------------------------------------------ *)

type pstate = { toks : string array; mutable pos : int }

let peek st = if st.pos < Array.length st.toks then st.toks.(st.pos) else "<eof>"
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else "<eof>"
let next st =
  let t = peek st in
  st.pos <- st.pos + 1;
  t

let expect st t =
  let got = next st in
  if got <> t then fail "expected %s, got %s" t got

let starts_with ~prefix s = Genie_util.Tok.starts_with ~prefix s

let strip_prefix ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

(* param:name or param:name:Type -> name *)
let param_name tok =
  if not (starts_with ~prefix:"param:" tok) then fail "expected param token, got %s" tok;
  let rest = strip_prefix ~prefix:"param:" tok in
  match String.index_opt rest ':' with
  | Some i -> String.sub rest 0 i
  | None -> rest

let parse_quoted_span st =
  expect st "\"";
  let buf = ref [] in
  let rec go () =
    match next st with
    | "\"" -> String.concat " " (List.rev !buf)
    | "<eof>" -> fail "unterminated quoted span"
    | t -> buf := t :: !buf; go ()
  in
  go ()


let is_number_token s =
  s <> ""
  && (match float_of_string_opt s with Some _ -> true | None -> false)

let resolve_entity ~entities slot =
  match List.assoc_opt slot entities with
  | Some v -> v
  | None -> fail "unresolved entity slot %s" slot

(* Named constants have the shape KIND_k, e.g. NUMBER_0 or DATE_1; a bare
   number like "100" is a literal, not a slot. *)
let is_slot_token s =
  String.length s > 2
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.contains s '_'
  && String.for_all (fun c -> (c >= 'A' && c <= 'Z') || c = '_' || (c >= '0' && c <= '9')) s

let rec parse_value ~entities st : Value.t =
  let t = peek st in
  let base =
    if t = "\"" then begin
      let s = parse_quoted_span st in
      if starts_with ~prefix:"^^" (peek st) then
        let ty = strip_prefix ~prefix:"^^" (next st) in
        Value.Entity { ty; value = s; display = None }
      else Value.String s
    end
    else if is_slot_token t then begin
      let v = resolve_entity ~entities (next st) in
      match v with
      | Value.Number n when starts_with ~prefix:"unit:" (peek st) ->
          Value.Measure [ (n, strip_prefix ~prefix:"unit:" (next st)) ]
      | v -> v
    end
    else if is_number_token t then begin
      let n = float_of_string (next st) in
      if starts_with ~prefix:"unit:" (peek st) then
        Value.Measure [ (n, strip_prefix ~prefix:"unit:" (next st)) ]
      else Value.Number n
    end
    else if t = "true" then (ignore (next st); Value.Boolean true)
    else if t = "false" then (ignore (next st); Value.Boolean false)
    else if t = "undefined" then (ignore (next st); Value.Undefined)
    else if t = "date:now" then (ignore (next st); Value.Date Value.D_now)
    else if starts_with ~prefix:"start_of:" t then
      (ignore (next st); Value.Date (Value.D_start_of (strip_prefix ~prefix:"start_of:" t)))
    else if starts_with ~prefix:"end_of:" t then
      (ignore (next st); Value.Date (Value.D_end_of (strip_prefix ~prefix:"end_of:" t)))
    else if starts_with ~prefix:"date:" t then begin
      ignore (next st);
      match Genie_util.Tok.split_on_string ~sep:":" (strip_prefix ~prefix:"date:" t) with
      | [ y; m; d ] ->
          Value.Date
            (Value.D_absolute
               { year = int_of_string y; month = int_of_string m; day = int_of_string d })
      | _ -> fail "bad date token %s" t
    end
    else if starts_with ~prefix:"time:" t then begin
      ignore (next st);
      match Genie_util.Tok.split_on_string ~sep:":" (strip_prefix ~prefix:"time:" t) with
      | [ h; m ] -> Value.Time (int_of_string h, int_of_string m)
      | _ -> fail "bad time token %s" t
    end
    else if t = "location:" then begin
      ignore (next st);
      Value.Location (Value.L_named (parse_quoted_span st))
    end
    else if starts_with ~prefix:"location:" t then begin
      ignore (next st);
      let rest = strip_prefix ~prefix:"location:" t in
      match Genie_util.Tok.split_on_string ~sep:":" rest with
      | [ lat; lon ] when is_number_token lat && is_number_token lon ->
          Value.Location (Value.L_absolute (float_of_string lat, float_of_string lon))
      | _ -> Value.Location (Value.L_relative rest)
    end
    else if starts_with ~prefix:"currency:" t then begin
      ignore (next st);
      let code = strip_prefix ~prefix:"currency:" t in
      let n = next st in
      let n =
        if is_slot_token n then
          match resolve_entity ~entities n with
          | Value.Number x -> x
          | _ -> fail "currency amount slot is not a number"
        else float_of_string n
      in
      Value.Currency (n, code)
    end
    else if starts_with ~prefix:"enum:" t then
      (ignore (next st); Value.Enum (strip_prefix ~prefix:"enum:" t))
    else if t = "[" then begin
      ignore (next st);
      let rec elems acc =
        if peek st = "]" then (ignore (next st); List.rev acc)
        else
          let v = parse_value ~entities st in
          if peek st = "," then (ignore (next st); elems (v :: acc))
          else (expect st "]"; List.rev (v :: acc))
      in
      Value.Array (elems [])
    end
    else fail "expected value, got %s" t
  in
  (* additive measures / date offsets *)
  if peek st = "+" then begin
    ignore (next st);
    let rhs = parse_value ~entities st in
    match (base, rhs) with
    | Value.Measure a, Value.Measure b -> Value.Measure (a @ b)
    | Value.Date d, Value.Measure [ (n, u) ] -> Value.Date (Value.D_plus (d, n, u))
    | _ -> fail "invalid + composition"
  end
  else base

let parse_invocation ~options ~entities lib st : invocation =
  let fn_tok = next st in
  if not (starts_with ~prefix:"@" fn_tok) then fail "expected function, got %s" fn_tok;
  let fn = Fn.of_string fn_tok in
  if options.keyword_params then begin
    let rec params acc =
      if starts_with ~prefix:"param:" (peek st) && peek2 st = "=" then begin
        let name = param_name (next st) in
        expect st "=";
        let value =
          if starts_with ~prefix:"param:" (peek st) then Passed (param_name (next st))
          else Constant (parse_value ~entities st)
        in
        params ({ ip_name = name; ip_value = value } :: acc)
      end
      else List.rev acc
    in
    { fn; in_params = params [] }
  end
  else begin
    (* positional mode *)
    expect st "(";
    let sig_params =
      match Schema.Library.find_fn lib fn with
      | Some f -> Schema.in_params f
      | None -> fail "positional parse of unknown function %s" fn_tok
    in
    let rec slots i acc =
      if peek st = ")" then (ignore (next st); List.rev acc)
      else begin
        let acc =
          if peek st = "none" then (ignore (next st); acc)
          else begin
            let value =
              if starts_with ~prefix:"param:" (peek st) then Passed (param_name (next st))
              else Constant (parse_value ~entities st)
            in
            match List.nth_opt sig_params i with
            | Some p -> { ip_name = p.Schema.p_name; ip_value = value } :: acc
            | None -> fail "too many positional parameters for %s" fn_tok
          end
        in
        if peek st = "," then (ignore (next st); slots (i + 1) acc)
        else (expect st ")"; List.rev acc)
      end
    in
    { fn; in_params = slots 0 [] }
  end

let rec parse_predicate ~options ~entities lib st : predicate =
  let lhs = parse_pred_or ~options ~entities lib st in
  if peek st = "and" then begin
    let rec more acc =
      if peek st = "and" then begin
        ignore (next st);
        more (parse_pred_or ~options ~entities lib st :: acc)
      end
      else List.rev acc
    in
    P_and (more [ lhs ])
  end
  else lhs

and parse_pred_or ~options ~entities lib st =
  parse_pred_atom ~options ~entities lib st

and parse_pred_atom ~options ~entities lib st =
  match peek st with
  | "true" -> ignore (next st); P_true
  | "false" -> ignore (next st); P_false
  | "not" ->
      ignore (next st);
      expect st "(";
      let p = parse_predicate ~options ~entities lib st in
      expect st ")";
      P_not p
  | "(" ->
      (* parenthesized group: a disjunction or a nested conjunction *)
      ignore (next st);
      let first = parse_pred_atom ~options ~entities lib st in
      let connective = peek st in
      let rec more acc =
        match peek st with
        | ("or" | "and") as c when c = connective ->
            ignore (next st);
            more (parse_pred_atom ~options ~entities lib st :: acc)
        | ")" -> ignore (next st); List.rev acc
        | t -> fail "expected %s or ) in predicate group, got %s" connective t
      in
      (match (connective, more [ first ]) with
      | _, [ p ] -> p
      | "and", ps -> P_and ps
      | _, ps -> P_or ps)
  | t when starts_with ~prefix:"@" t ->
      let inv = parse_invocation ~options ~entities lib st in
      expect st "{";
      let p = parse_predicate ~options ~entities lib st in
      expect st "}";
      P_external { inv; pred = p }
  | t when starts_with ~prefix:"param:" t ->
      let lhs = param_name (next st) in
      let op = comp_op_of_string (next st) in
      let rhs = parse_value ~entities st in
      P_atom { lhs; op; rhs }
  | t -> fail "expected predicate, got %s" t

let rec parse_query ~options ~entities lib st : query =
  let atom = parse_query_atom ~options ~entities lib st in
  parse_query_postfix ~options ~entities lib st atom

and parse_query_postfix ~options ~entities lib st lhs =
  match peek st with
  | "filter" ->
      ignore (next st);
      let p = parse_predicate ~options ~entities lib st in
      parse_query_postfix ~options ~entities lib st (Q_filter (lhs, p))
  | "join" ->
      ignore (next st);
      let rhs = parse_query_atom ~options ~entities lib st in
      let on =
        if peek st = "on" && peek2 st = "(" then begin
          ignore (next st);
          ignore (next st);
          let rec pairs acc =
            let ip = param_name (next st) in
            expect st "=";
            let op = param_name (next st) in
            if peek st = "," then (ignore (next st); pairs ((ip, op) :: acc))
            else (expect st ")"; List.rev ((ip, op) :: acc))
          in
          pairs []
        end
        else []
      in
      parse_query_postfix ~options ~entities lib st (Q_join (lhs, rhs, on))
  | _ -> lhs

and parse_query_atom ~options ~entities lib st =
  match peek st with
  | "(" ->
      ignore (next st);
      let q = parse_query ~options ~entities lib st in
      expect st ")";
      q
  | "agg" ->
      ignore (next st);
      let op =
        match next st with
        | "max" -> Agg_max
        | "min" -> Agg_min
        | "sum" -> Agg_sum
        | "avg" -> Agg_avg
        | "count" -> Agg_count
        | t -> fail "expected aggregation op, got %s" t
      in
      let field =
        if starts_with ~prefix:"param:" (peek st) then Some (param_name (next st)) else None
      in
      expect st "of";
      expect st "(";
      let inner = parse_query ~options ~entities lib st in
      expect st ")";
      Q_aggregate { op; field; inner }
  | t when starts_with ~prefix:"@" t -> Q_invoke (parse_invocation ~options ~entities lib st)
  | t -> fail "expected query, got %s" t

let rec parse_stream ~options ~entities lib st : stream =
  match peek st with
  | "now" -> ignore (next st); S_now
  | "attimer" ->
      ignore (next st);
      expect st "time";
      expect st "=";
      S_attimer (parse_value ~entities st)
  | "timer" ->
      ignore (next st);
      expect st "base";
      expect st "=";
      let base = parse_value ~entities st in
      expect st "interval";
      expect st "=";
      let interval = parse_value ~entities st in
      S_timer { base; interval }
  | "monitor" ->
      ignore (next st);
      expect st "(";
      let q = parse_query ~options ~entities lib st in
      expect st ")";
      if peek st = "on" && peek2 st = "new" then begin
        ignore (next st);
        ignore (next st);
        expect st "[";
        let rec fields acc =
          let f = param_name (next st) in
          if peek st = "," then (ignore (next st); fields (f :: acc))
          else (expect st "]"; List.rev (f :: acc))
        in
        S_monitor (q, Some (fields []))
      end
      else S_monitor (q, None)
  | "edge" ->
      ignore (next st);
      expect st "(";
      let s = parse_stream ~options ~entities lib st in
      expect st ")";
      expect st "on";
      let p = parse_predicate ~options ~entities lib st in
      S_edge (s, p)
  | t -> fail "expected stream, got %s" t

let of_tokens ?(options = default_options) ?(entities = []) lib (toks : string list) :
    program =
  let st = { toks = Array.of_list toks; pos = 0 } in
  let stream = parse_stream ~options ~entities lib st in
  expect st "=>";
  let query, action =
    if peek st = "notify" then (ignore (next st); (None, A_notify))
    else begin
      let q = parse_query ~options ~entities lib st in
      if peek st = "=>" then begin
        ignore (next st);
        if peek st = "notify" then (ignore (next st); (Some q, A_notify))
        else (Some q, A_invoke (parse_invocation ~options ~entities lib st))
      end
      else
        match q with
        | Q_invoke inv -> (None, A_invoke inv)
        | _ -> fail "expected => or end after query"
    end
  in
  if peek st <> "<eof>" then fail "trailing tokens: %s" (peek st);
  { stream; query; action }

let of_string ?options ?entities lib s =
  of_tokens ?options ?entities lib
    (List.filter (fun t -> t <> "") (String.split_on_char ' ' s))

(* Validity check used for the error-analysis experiment (section 5.5): does a
   token sequence parse and type-check? *)
let well_formed ?options ?entities lib toks =
  match of_tokens ?options ?entities lib toks with
  | p -> Result.is_ok (Typecheck.check_program lib p)
  | exception Parse_error _ -> false
  | exception _ -> false
