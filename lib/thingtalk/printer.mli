(** Pretty-printer for the ThingTalk surface syntax. {!Parser.parse_program}
    accepts everything this module prints. *)

val program_to_string : Ast.program -> string
(** Surface syntax of a whole program. *)

val program_print_count : unit -> int
(** Monotonic count of {!program_to_string} calls across all domains, for
    regression tests that pin how many times a layer re-stringifies a
    program (the serve and synthesis hot paths must print each distinct
    program once, then reuse the memoized text). *)

val policy_to_string : Ast.policy -> string
val query_to_string : Ast.query -> string
val stream_to_string : Ast.stream -> string
val action_to_string : Ast.action -> string
val predicate_to_string : Ast.predicate -> string
val invocation_to_string : Ast.invocation -> string
val pp_program : Format.formatter -> Ast.program -> unit
val pp_policy : Format.formatter -> Ast.policy -> unit
