(* Hand-written lexer for the ThingTalk surface syntax. *)

type token =
  | IDENT of string (* identifiers; keywords are resolved by the parser *)
  | FNREF of string (* @com.example.fn *)
  | NUMBER of float
  | MEASURE of float * string (* a number immediately followed by a unit, e.g. 60F *)
  | STRING of string
  | ENUM of string (* enum:value *)
  | RELATIVE_LOCATION of string (* location:home *)
  | DOLLAR of string (* $now, $?, $placeholder *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMICOLON
  | COLON
  | ARROW (* => *)
  | EQUALS (* = *)
  | OP of string (* == != > < >= <= && || ! + ^^ *)
  | EOF

exception Error of string

let token_to_string = function
  | IDENT s -> s
  | FNREF s -> s
  | NUMBER n -> string_of_float n
  | MEASURE (n, u) -> Printf.sprintf "%g%s" n u
  | STRING s -> Printf.sprintf "%S" s
  | ENUM s -> "enum:" ^ s
  | RELATIVE_LOCATION s -> "location:" ^ s
  | DOLLAR s -> "$" ^ s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMICOLON -> ";"
  | COLON -> ":"
  | ARROW -> "=>"
  | EQUALS -> "="
  | OP s -> s
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let peek2 () = if !pos + 1 < n then Some src.[!pos + 1] else None in
  let advance () = incr pos in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do advance () done;
    String.sub src start (!pos - start)
  in
  let read_string () =
    (* opening quote consumed *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Error "unterminated string literal")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c -> Buffer.add_char buf c; advance ()
          | None -> raise (Error "unterminated escape"));
          go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '(' -> advance (); emit LPAREN
    | ')' -> advance (); emit RPAREN
    | '{' -> advance (); emit LBRACE
    | '}' -> advance (); emit RBRACE
    | '[' -> advance (); emit LBRACKET
    | ']' -> advance (); emit RBRACKET
    | ',' -> advance (); emit COMMA
    | ';' -> advance (); emit SEMICOLON
    | '+' -> advance (); emit (OP "+")
    | '!' ->
        advance ();
        if peek () = Some '=' then (advance (); emit (OP "!="))
        else emit (OP "!")
    | '=' ->
        advance ();
        if peek () = Some '>' then (advance (); emit ARROW)
        else if peek () = Some '=' then (advance (); emit (OP "=="))
        else emit EQUALS
    | '>' ->
        advance ();
        if peek () = Some '=' then (advance (); emit (OP ">="))
        else emit (OP ">")
    | '<' ->
        advance ();
        if peek () = Some '=' then (advance (); emit (OP "<="))
        else emit (OP "<")
    | '&' ->
        advance ();
        if peek () = Some '&' then (advance (); emit (OP "&&"))
        else raise (Error "expected &&")
    | '|' ->
        advance ();
        if peek () = Some '|' then (advance (); emit (OP "||"))
        else raise (Error "expected ||")
    | '^' ->
        advance ();
        if peek () = Some '^' then (advance (); emit (OP "^^"))
        else raise (Error "expected ^^")
    | '"' -> advance (); emit (STRING (read_string ()))
    | '@' ->
        advance ();
        let name = read_while is_ident_char in
        if name = "" then raise (Error "expected function reference after @");
        emit (FNREF ("@" ^ name))
    | '$' ->
        advance ();
        if peek () = Some '?' then (advance (); emit (DOLLAR "?"))
        else
          let name = read_while is_ident_char in
          if name = "" then raise (Error "expected identifier after $");
          emit (DOLLAR name)
    | c when is_digit c || (c = '-' && (match peek2 () with Some d -> is_digit d | None -> false)) ->
        let neg = c = '-' in
        if neg then advance ();
        let intpart = read_while is_digit in
        let frac =
          if peek () = Some '.' && (match peek2 () with Some d -> is_digit d | _ -> false)
          then (advance (); "." ^ read_while is_digit)
          else ""
        in
        let num = float_of_string ((if neg then "-" else "") ^ intpart ^ frac) in
        (* a unit suffix directly attached, e.g. 60F or 5min *)
        let unit = read_while (fun c -> is_ident_start c) in
        if unit = "" then emit (NUMBER num)
        else if Ttype.Units.is_unit unit then emit (MEASURE (num, unit))
        else raise (Error (Printf.sprintf "unknown unit %S" unit))
    | c when is_ident_start c ->
        let word = read_while is_ident_char in
        if word = "enum" && peek () = Some ':' then begin
          advance ();
          let v = read_while is_ident_char in
          if v = "" then raise (Error "expected enum value after enum:");
          emit (ENUM v)
        end
        else if word = "location" && peek () = Some ':' then begin
          advance ();
          let v = read_while is_ident_char in
          if v = "" then raise (Error "expected place after location:");
          emit (RELATIVE_LOCATION v)
        end
        else emit (IDENT word)
    | ':' -> advance (); emit COLON
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev (EOF :: !toks)
