(** Skill-library class declarations (paper Fig. 3) and the library registry.

    A class declares query functions (no side effects; input and output
    parameters; optionally monitorable and list-returning) and action
    functions (side effects; input parameters only) -- the orthogonal
    function-kind design of section 2.2. *)

type dir = In_req | In_opt | Out

type param = { p_name : string; p_type : Ttype.t; p_dir : dir }

type kind = Query of { monitorable : bool; is_list : bool } | Action

type func = {
  f_class : string;
  f_name : string;
  f_kind : kind;
  f_params : param list;
  f_doc : string;
}

type cls = {
  c_name : string;
  c_extends : string list;
  c_doc : string;
  c_functions : func list;
}

val fn_ref : func -> Ast.Fn.t
val is_query : func -> bool
val is_action : func -> bool
val is_monitorable : func -> bool
val is_list : func -> bool
val in_params : func -> param list
val required_params : func -> param list
val out_params : func -> param list
val find_param : func -> string -> param option

(** {2 Declaration helpers} *)

val in_req : string -> Ttype.t -> param
val in_opt : string -> Ttype.t -> param
val out : string -> Ttype.t -> param

val query :
  ?monitorable:bool -> ?is_list:bool -> ?doc:string -> string -> param list -> func
(** A query function (defaults: monitorable, list-returning). *)

val action : ?doc:string -> string -> param list -> func
(** An action function. Raises [Invalid_argument] if given an output
    parameter (actions have none, Fig. 3). *)

val cls : ?extends:string list -> ?doc:string -> string -> func list -> cls

(** The library registry: class and function lookup over a set of classes. *)
module Library : sig
  type t = {
    classes : cls list;
    by_class : (string, cls) Hashtbl.t;
    by_fn : (string, func) Hashtbl.t;
  }

  val of_classes : cls list -> t
  (** Raises [Invalid_argument] on duplicate class or function names. *)

  val find_class : t -> string -> cls option
  val find_fn : t -> Ast.Fn.t -> func option
  val functions : t -> func list
  val queries : t -> func list
  val actions : t -> func list
  val num_classes : t -> int
  val num_functions : t -> int
  val distinct_params : t -> int
  val union : t -> t -> t
end
