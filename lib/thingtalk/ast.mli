(** Abstract syntax of ThingTalk programs (paper Fig. 5), including the TT+A
    aggregation extension (section 6.3) and TACL policies (Fig. 10).

    ThingTalk has a single construct, [s => q? => a]: a stream of events, an
    optional data retrieval, and an action, each predicable. Queries always
    return lists that are implicitly traversed; outputs flow into later
    clauses through keyword parameters (section 2.3). *)

(** References to skill functions, e.g. [@com.twitter.retweet]. *)
module Fn : sig
  type t = { cls : string; name : string }

  val make : string -> string -> t
  val to_string : t -> string

  val of_string : string -> t
  (** Parses ["@cls.fn"]. Raises [Invalid_argument] on malformed input. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
end

(** Comparison operators of the predicate language. *)
type comp_op =
  | Op_eq
  | Op_neq
  | Op_gt
  | Op_lt
  | Op_geq
  | Op_leq
  | Op_contains  (** array containment (or substring on string columns) *)
  | Op_substr
  | Op_starts_with
  | Op_ends_with
  | Op_in_array

val comp_op_to_string : comp_op -> string
val comp_op_of_string : string -> comp_op
val all_comp_ops : comp_op list

(** The value of an input parameter: a constant, or an output parameter of an
    earlier clause passed by name. *)
type param_value = Constant of Value.t | Passed of string

type in_param = { ip_name : string; ip_value : param_value }
type invocation = { fn : Fn.t; in_params : in_param list }

type predicate =
  | P_true
  | P_false
  | P_not of predicate
  | P_and of predicate list
  | P_or of predicate list
  | P_atom of { lhs : string; op : comp_op; rhs : Value.t }
  | P_external of { inv : invocation; pred : predicate }
      (** a predicated query function: [f(ip = v, ...) { p }] *)

type agg_op = Agg_max | Agg_min | Agg_sum | Agg_avg | Agg_count

val agg_op_to_string : agg_op -> string

type query =
  | Q_invoke of invocation
  | Q_filter of query * predicate
  | Q_join of query * query * (string * string) list
      (** [(input param of the right operand, output param of the left)] *)
  | Q_aggregate of { op : agg_op; field : string option; inner : query }

type stream =
  | S_now  (** trigger once, immediately *)
  | S_attimer of Value.t  (** daily at a given time *)
  | S_timer of { base : Value.t; interval : Value.t }
  | S_monitor of query * string list option
      (** fire when the query result changes, optionally only on the listed
          fields *)
  | S_edge of stream * predicate
      (** fire on false -> true transitions of the predicate (section 2.3) *)

type action = A_notify | A_invoke of invocation

type program = { stream : stream; query : query option; action : action }

(** TACL access control (Fig. 10). *)
type policy_target =
  | Policy_query of invocation * predicate
  | Policy_action of invocation * predicate

type policy = { source : predicate; target : policy_target }

(** Grammar-category-tagged values produced by NL templates. *)
type fragment =
  | F_stream of stream
  | F_query of query
  | F_action of action
  | F_predicate of predicate
  | F_program of program
  | F_policy of policy
  | F_value of Value.t

val equal_program : program -> program -> bool
val compare_program : program -> program -> int

(** {2 Traversals} *)

val query_invocations : query -> invocation list
val stream_invocations : stream -> invocation list
val action_invocations : action -> invocation list
val program_invocations : program -> invocation list

val program_functions : program -> Fn.t list
(** All skill functions a program mentions, in clause order. *)

val predicate_atoms : predicate -> (string * comp_op * Value.t) list
val query_predicates : query -> predicate list
val stream_predicates : stream -> predicate list
val program_predicates : program -> predicate list

val is_primitive : program -> bool
(** One function = primitive command; more = compound (Fig. 7). *)

val has_filter : program -> bool
val has_param_passing : program -> bool

val program_constants : program -> (string * Value.t) list
(** All constants with the parameter name they fill, in program order; the
    input to parameter replacement (section 3.3). *)

val map_constants : (string -> Value.t -> Value.t) -> program -> program
(** Rewrites every constant; parameter passing is untouched. *)
