(** Type checker for ThingTalk programs against a skill library.

    Strong static typing lets Genie reject ill-formed derivations during
    synthesis and check the parser's output for well-formedness (the paper
    reports 96% of model outputs are syntactically correct and type-correct,
    section 5.5). *)

type error = string

val check_program : Schema.Library.t -> Ast.program -> (unit, error) result
(** Checks function existence and kind (query vs action), parameter names,
    directions and types, required parameters, parameter-passing scopes (the
    rightmost-instance rule of section 2.3), filter compatibility with output
    parameters, monitorability of monitored queries, timer argument types and
    aggregation typing. *)

val well_typed : Schema.Library.t -> Ast.program -> bool

val check_policy : Schema.Library.t -> Ast.policy -> (unit, error) result
(** TACL policies: a predicate over the requesting principal plus a primitive
    command restricted per paper Fig. 10. *)

val check_predicate :
  Schema.Library.t -> outs:(string * Ttype.t) list -> Ast.predicate -> (unit, error) result
(** Checks a predicate against the output parameters in scope. *)

val query_out_params : Schema.Library.t -> Ast.query -> (string * Ttype.t) list
(** The output parameters a query provides; on duplicate names the rightmost
    instance wins. *)

val stream_out_params : Schema.Library.t -> Ast.stream -> (string * Ttype.t) list

val query_monitorable : Schema.Library.t -> Ast.query -> bool
(** Whether the query is built exclusively from monitorable functions
    (filters and joins of monitorable queries stay monitorable, section 2.2). *)

val query_is_list : Schema.Library.t -> Ast.query -> bool
