(* Type checker for ThingTalk programs against a skill library.

   Strong static typing is what lets Genie reject ill-formed derivations
   during synthesis and check the neural parser's output for well-formedness
   (section 5.5 reports 96% of model outputs are syntactically correct and
   type-correct). *)

open Ast

type error = string

let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec results_all = function
  | [] -> Ok ()
  | Ok () :: rest -> results_all rest
  | (Error _ as e) :: _ -> e

(* Output parameters of a query; on duplicate names, the rightmost instance
   wins (section 2.3). *)
let rec query_out_params lib (q : query) : (string * Ttype.t) list =
  match q with
  | Q_invoke inv -> (
      match Schema.Library.find_fn lib inv.fn with
      | None -> []
      | Some f -> List.map (fun p -> (p.Schema.p_name, p.Schema.p_type)) (Schema.out_params f))
  | Q_filter (q, _) -> query_out_params lib q
  | Q_join (a, b, _) ->
      let outs_b = query_out_params lib b in
      let outs_a =
        List.filter (fun (n, _) -> not (List.mem_assoc n outs_b)) (query_out_params lib a)
      in
      outs_a @ outs_b
  | Q_aggregate { op = Agg_count; _ } -> [ ("count", Ttype.Number) ]
  | Q_aggregate { op = _; field = Some f; inner } -> (
      match List.assoc_opt f (query_out_params lib inner) with
      | Some ty -> [ (f, ty) ]
      | None -> [])
  | Q_aggregate { field = None; _ } -> []

let rec stream_out_params lib (s : stream) : (string * Ttype.t) list =
  match s with
  | S_now | S_attimer _ | S_timer _ -> []
  | S_monitor (q, _) -> query_out_params lib q
  | S_edge (s, _) -> stream_out_params lib s

(* Is a whole query monitorable, i.e. built only from monitorable functions
   (section 2.2: any query that uses monitorable functions can be monitored,
   including joins and filters)? *)
let rec query_monitorable lib (q : query) =
  match q with
  | Q_invoke inv -> (
      match Schema.Library.find_fn lib inv.fn with
      | None -> false
      | Some f -> Schema.is_monitorable f)
  | Q_filter (q, _) -> query_monitorable lib q
  | Q_join (a, b, _) -> query_monitorable lib a && query_monitorable lib b
  | Q_aggregate { inner; _ } -> query_monitorable lib inner

let rec query_is_list lib (q : query) =
  match q with
  | Q_invoke inv -> (
      match Schema.Library.find_fn lib inv.fn with
      | None -> false
      | Some f -> Schema.is_list f)
  | Q_filter (q, _) -> query_is_list lib q
  | Q_join _ -> true
  | Q_aggregate _ -> false

(* --- invocation checking ------------------------------------------------ *)

let check_in_param fn (f : Schema.func) ~outs (ip : in_param) =
  match Schema.find_param f ip.ip_name with
  | None -> error "%s has no parameter %s" (Fn.to_string fn) ip.ip_name
  | Some p when p.Schema.p_dir = Schema.Out ->
      error "%s: %s is an output parameter" (Fn.to_string fn) ip.ip_name
  | Some p -> (
      match ip.ip_value with
      | Constant v ->
          if Value.conforms v p.Schema.p_type then Ok ()
          else
            error "%s: value %s does not conform to %s : %s" (Fn.to_string fn)
              (Value.to_string v) ip.ip_name
              (Ttype.to_string p.Schema.p_type)
      | Passed out_name -> (
          match List.assoc_opt out_name outs with
          | None ->
              error "%s: no output parameter %s in scope for %s" (Fn.to_string fn)
                out_name ip.ip_name
          | Some src_ty ->
              if Ttype.assignable ~src:src_ty ~dst:p.Schema.p_type then Ok ()
              else
                error "%s: cannot pass %s : %s into %s : %s" (Fn.to_string fn) out_name
                  (Ttype.to_string src_ty) ip.ip_name
                  (Ttype.to_string p.Schema.p_type)))

let check_invocation lib ~want_query ~outs ?(supplied = []) (inv : invocation) =
  match Schema.Library.find_fn lib inv.fn with
  | None -> error "unknown function %s" (Fn.to_string inv.fn)
  | Some f ->
      let* () =
        if want_query && not (Schema.is_query f) then
          error "%s is an action, used as a query" (Fn.to_string inv.fn)
        else if (not want_query) && not (Schema.is_action f) then
          error "%s is a query, used as an action" (Fn.to_string inv.fn)
        else Ok ()
      in
      let* () =
        match
          List.find_opt
            (fun ip -> List.length (List.filter (fun ip' -> ip'.ip_name = ip.ip_name) inv.in_params) > 1)
            inv.in_params
        with
        | Some ip -> error "%s: duplicate parameter %s" (Fn.to_string inv.fn) ip.ip_name
        | None -> Ok ()
      in
      let* () = results_all (List.map (check_in_param inv.fn f ~outs) inv.in_params) in
      (* all required inputs must be supplied *)
      results_all
        (List.map
           (fun p ->
             if
               List.exists (fun ip -> ip.ip_name = p.Schema.p_name) inv.in_params
               || List.mem p.Schema.p_name supplied
             then Ok ()
             else
               error "%s: missing required parameter %s" (Fn.to_string inv.fn)
                 p.Schema.p_name)
           (Schema.required_params f))

(* --- predicates ---------------------------------------------------------- *)

let string_like = function
  | Ttype.String | Ttype.Path_name | Ttype.Url | Ttype.Picture | Ttype.Entity _
  | Ttype.Phone_number | Ttype.Email_address -> true
  | _ -> false

let comparable = function
  | Ttype.Number | Ttype.Currency | Ttype.Measure _ | Ttype.Date | Ttype.Time -> true
  | _ -> false

let check_atom ~outs lhs op rhs =
  match List.assoc_opt lhs outs with
  | None -> error "predicate refers to unknown output parameter %s" lhs
  | Some lhs_ty -> (
      match op with
      | Op_eq | Op_neq ->
          if Value.conforms rhs lhs_ty then Ok ()
          else error "predicate %s == %s: type mismatch" lhs (Value.to_string rhs)
      | Op_gt | Op_lt | Op_geq | Op_leq ->
          if comparable lhs_ty && Value.conforms rhs lhs_ty then Ok ()
          else error "predicate %s %s: not comparable" lhs (comp_op_to_string op)
      | Op_substr | Op_starts_with | Op_ends_with -> (
          if not (string_like lhs_ty) then
            error "predicate %s %s: %s is not string-like" lhs (comp_op_to_string op) lhs
          else
            match rhs with
            | Value.String _ | Value.Entity _ -> Ok ()
            | _ -> error "predicate %s %s: operand must be a string" lhs (comp_op_to_string op))
      | Op_contains -> (
          match lhs_ty with
          | Ttype.Array elt ->
              if Value.conforms rhs elt then Ok ()
              else error "predicate %s contains: element type mismatch" lhs
          | _ when string_like lhs_ty -> (
              (* 'contains' on a string column means substring containment *)
              match rhs with
              | Value.String _ | Value.Entity _ -> Ok ()
              | _ -> error "predicate %s contains: operand must be a string" lhs)
          | _ -> error "predicate %s contains: %s is not an array" lhs lhs)
      | Op_in_array -> (
          match rhs with
          | Value.Array vs ->
              if List.for_all (fun v -> Value.conforms v lhs_ty) vs then Ok ()
              else error "predicate %s in_array: element type mismatch" lhs
          | _ -> error "predicate %s in_array: operand must be an array" lhs))

let rec check_predicate lib ~outs (p : predicate) =
  match p with
  | P_true | P_false -> Ok ()
  | P_not p -> check_predicate lib ~outs p
  | P_and ps | P_or ps -> results_all (List.map (check_predicate lib ~outs) ps)
  | P_atom { lhs; op; rhs } -> check_atom ~outs lhs op rhs
  | P_external { inv; pred } ->
      let* () = check_invocation lib ~want_query:true ~outs:[] inv in
      let ext_outs = query_out_params lib (Q_invoke inv) in
      check_predicate lib ~outs:ext_outs pred

(* --- queries, streams, actions ------------------------------------------ *)

let rec check_query lib ~outs ?(supplied = []) (q : query) =
  match q with
  | Q_invoke inv -> check_invocation lib ~want_query:true ~outs ~supplied inv
  | Q_filter (inner, p) ->
      let* () = check_query lib ~outs ~supplied inner in
      check_predicate lib ~outs:(query_out_params lib inner) p
  | Q_join (a, b, on) ->
      let* () = check_query lib ~outs a in
      let outs_a = query_out_params lib a in
      (* the right operand may consume the left's outputs, and its input
         parameters named in the 'on' clause are supplied by the join *)
      let* () = check_query lib ~outs:(outs @ outs_a) ~supplied:(List.map fst on) b in
      results_all
        (List.map
           (fun (ip, op) ->
             match b with
             | Q_invoke inv | Q_filter (Q_invoke inv, _) -> (
                 match Schema.Library.find_fn lib inv.fn with
                 | None -> error "unknown function in join"
                 | Some f -> (
                     match (Schema.find_param f ip, List.assoc_opt op outs_a) with
                     | None, _ -> error "join: %s has no parameter %s" (Fn.to_string inv.fn) ip
                     | _, None -> error "join: no output parameter %s on the left" op
                     | Some p, Some src_ty ->
                         if Ttype.assignable ~src:src_ty ~dst:p.Schema.p_type then Ok ()
                         else error "join: cannot pass %s into %s" op ip))
             | _ -> error "join parameter passing requires a plain right operand")
           on)
  | Q_aggregate { op; field; inner } -> (
      let* () = check_query lib ~outs inner in
      match (op, field) with
      | Agg_count, None ->
          if query_is_list lib inner then Ok ()
          else error "count requires a list query"
      | Agg_count, Some _ -> error "count does not take a field"
      | _, None -> error "%s requires a field" (agg_op_to_string op)
      | _, Some f -> (
          match List.assoc_opt f (query_out_params lib inner) with
          | None -> error "aggregate field %s is not an output parameter" f
          | Some ty ->
              if Ttype.is_numeric ty then Ok ()
              else error "aggregate field %s is not numeric" f))

let rec check_stream lib (s : stream) =
  match s with
  | S_now -> Ok ()
  | S_attimer t -> (
      match t with
      | Value.Time _ -> Ok ()
      | _ -> error "attimer time must be a Time value")
  | S_timer { base; interval } -> (
      match (base, interval) with
      | Value.Date _, Value.Measure ((_, u) :: _)
        when Ttype.Units.base_of u = Some "ms" -> Ok ()
      | Value.Date _, _ -> error "timer interval must be a duration"
      | _ -> error "timer base must be a Date")
  | S_monitor (q, on_new) ->
      let* () = check_query lib ~outs:[] q in
      let* () =
        if query_monitorable lib q then Ok ()
        else error "monitored query is not monitorable"
      in
      let outs = query_out_params lib q in
      (match on_new with
      | None -> Ok ()
      | Some fields ->
          results_all
            (List.map
               (fun f ->
                 if List.mem_assoc f outs then Ok ()
                 else error "on new: %s is not an output parameter" f)
               fields))
  | S_edge (inner, p) ->
      let* () = check_stream lib inner in
      check_predicate lib ~outs:(stream_out_params lib inner) p

let check_action lib ~outs (a : action) =
  match a with
  | A_notify -> Ok ()
  | A_invoke inv -> check_invocation lib ~want_query:false ~outs inv

let check_program lib (p : program) : (unit, error) result =
  let* () = check_stream lib p.stream in
  let stream_outs = stream_out_params lib p.stream in
  let* () =
    match p.query with
    | None -> Ok ()
    | Some q -> check_query lib ~outs:stream_outs q
  in
  let outs =
    match p.query with
    | None -> stream_outs
    | Some q ->
        let q_outs = query_out_params lib q in
        List.filter (fun (n, _) -> not (List.mem_assoc n q_outs)) stream_outs @ q_outs
  in
  check_action lib ~outs p.action

let well_typed lib p = Result.is_ok (check_program lib p)

(* TACL policy checking: primitive target plus a predicate over the source
   principal. *)
let check_policy lib (p : policy) : (unit, error) result =
  let source_outs = [ ("source", Ttype.Entity "tt:contact") ] in
  let* () = check_predicate lib ~outs:source_outs p.source in
  match p.target with
  | Policy_query (inv, pred) ->
      let* () = check_invocation lib ~want_query:true ~outs:[] inv in
      check_predicate lib ~outs:(query_out_params lib (Q_invoke inv)) pred
  | Policy_action (inv, pred) ->
      let* () = check_invocation lib ~want_query:false ~outs:[] inv in
      (* action filters predicate over the action's input parameters *)
      let ins =
        match Schema.Library.find_fn lib inv.fn with
        | None -> []
        | Some f -> List.map (fun p -> (p.Schema.p_name, p.Schema.p_type)) (Schema.in_params f)
      in
      check_predicate lib ~outs:ins pred
