(* The abstract syntax of ThingTalk programs (paper Fig. 5), including the
   TT+A aggregation extension (section 6.3) and TACL policies (Fig. 10). *)

(* A reference to a skill function, e.g. @com.twitter.retweet. *)
module Fn = struct
  type t = { cls : string; name : string }

  let make cls name = { cls; name }
  let to_string { cls; name } = Printf.sprintf "@%s.%s" cls name
  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = Stdlib.compare a b

  let of_string s =
    if String.length s < 2 || s.[0] <> '@' then
      invalid_arg (Printf.sprintf "Fn.of_string: %S" s);
    match String.rindex_opt s '.' with
    | None -> invalid_arg (Printf.sprintf "Fn.of_string: %S" s)
    | Some i ->
        { cls = String.sub s 1 (i - 1);
          name = String.sub s (i + 1) (String.length s - i - 1) }
end

type comp_op =
  | Op_eq
  | Op_neq
  | Op_gt
  | Op_lt
  | Op_geq
  | Op_leq
  | Op_contains (* array containment *)
  | Op_substr
  | Op_starts_with
  | Op_ends_with
  | Op_in_array (* scalar member of constant array *)

let comp_op_to_string = function
  | Op_eq -> "=="
  | Op_neq -> "!="
  | Op_gt -> ">"
  | Op_lt -> "<"
  | Op_geq -> ">="
  | Op_leq -> "<="
  | Op_contains -> "contains"
  | Op_substr -> "substr"
  | Op_starts_with -> "starts_with"
  | Op_ends_with -> "ends_with"
  | Op_in_array -> "in_array"

let all_comp_ops =
  [ Op_eq; Op_neq; Op_gt; Op_lt; Op_geq; Op_leq; Op_contains; Op_substr;
    Op_starts_with; Op_ends_with; Op_in_array ]

let comp_op_of_string s =
  match List.find_opt (fun op -> comp_op_to_string op = s) all_comp_ops with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "comp_op_of_string: %S" s)

(* The value of an input parameter: a constant, or an output parameter of an
   earlier clause passed by name (keyword parameter passing, section 2.3). *)
type param_value =
  | Constant of Value.t
  | Passed of string

type in_param = { ip_name : string; ip_value : param_value }

type invocation = { fn : Fn.t; in_params : in_param list }

type predicate =
  | P_true
  | P_false
  | P_not of predicate
  | P_and of predicate list
  | P_or of predicate list
  | P_atom of { lhs : string; op : comp_op; rhs : Value.t }
  (* Predicated query function: f [ip = v]* { p } *)
  | P_external of { inv : invocation; pred : predicate }

type agg_op = Agg_max | Agg_min | Agg_sum | Agg_avg | Agg_count

let agg_op_to_string = function
  | Agg_max -> "max"
  | Agg_min -> "min"
  | Agg_sum -> "sum"
  | Agg_avg -> "avg"
  | Agg_count -> "count"

type query =
  | Q_invoke of invocation
  | Q_filter of query * predicate
  (* Join; the association list passes (input param of right, output param of
     left) pairs, as in [q join q on (ip = op)]. *)
  | Q_join of query * query * (string * string) list
  (* TT+A: agg op pn of (q) / agg count of (q). *)
  | Q_aggregate of { op : agg_op; field : string option; inner : query }

type stream =
  | S_now
  | S_attimer of Value.t (* time *)
  | S_timer of { base : Value.t; interval : Value.t }
  (* Monitor a query, optionally only on changes of specific fields
     ("on new file_name"). *)
  | S_monitor of query * string list option
  | S_edge of stream * predicate

type action =
  | A_notify
  | A_invoke of invocation

type program = { stream : stream; query : query option; action : action }

(* TACL access-control policies (Fig. 10): a predicate over the requesting
   principal plus a restricted primitive command. *)
type policy_target =
  | Policy_query of invocation * predicate
  | Policy_action of invocation * predicate

type policy = { source : predicate; target : policy_target }

(* Grammar-category-tagged fragment produced by templates; commands are whole
   programs. *)
type fragment =
  | F_stream of stream
  | F_query of query
  | F_action of action
  | F_predicate of predicate
  | F_program of program
  | F_policy of policy
  | F_value of Value.t

let equal_program (a : program) (b : program) = a = b
let compare_program (a : program) (b : program) = Stdlib.compare a b

(* --- traversals -------------------------------------------------------- *)

let rec query_invocations = function
  | Q_invoke inv -> [ inv ]
  | Q_filter (q, _) -> query_invocations q
  | Q_join (a, b, _) -> query_invocations a @ query_invocations b
  | Q_aggregate { inner; _ } -> query_invocations inner

let rec stream_invocations = function
  | S_now | S_attimer _ | S_timer _ -> []
  | S_monitor (q, _) -> query_invocations q
  | S_edge (s, _) -> stream_invocations s

let action_invocations = function
  | A_notify -> []
  | A_invoke inv -> [ inv ]

let program_invocations { stream; query; action } =
  stream_invocations stream
  @ (match query with None -> [] | Some q -> query_invocations q)
  @ action_invocations action

let program_functions p = List.map (fun inv -> inv.fn) (program_invocations p)

let rec predicate_atoms = function
  | P_true | P_false -> []
  | P_not p -> predicate_atoms p
  | P_and ps | P_or ps -> List.concat_map predicate_atoms ps
  | P_atom { lhs; op; rhs } -> [ (lhs, op, rhs) ]
  | P_external { pred; _ } -> predicate_atoms pred

let rec query_predicates = function
  | Q_invoke _ -> []
  | Q_filter (q, p) -> p :: query_predicates q
  | Q_join (a, b, _) -> query_predicates a @ query_predicates b
  | Q_aggregate { inner; _ } -> query_predicates inner

let rec stream_predicates = function
  | S_now | S_attimer _ | S_timer _ -> []
  | S_monitor (q, _) -> query_predicates q
  | S_edge (s, p) -> p :: stream_predicates s

let program_predicates { stream; query; action = _ } =
  stream_predicates stream
  @ (match query with None -> [] | Some q -> query_predicates q)

(* Whether the program uses a single skill function (primitive command) or
   more (compound command); used for dataset characteristics (Fig. 7). *)
let is_primitive p = List.length (program_invocations p) <= 1

let has_filter p =
  program_predicates p <> []
  || List.exists (fun pr -> pr <> P_true) (program_predicates p)

let has_param_passing p =
  let invs = program_invocations p in
  List.exists
    (fun inv ->
      List.exists (fun ip -> match ip.ip_value with Passed _ -> true | _ -> false) inv.in_params)
    invs
  ||
  let rec join_passing = function
    | Q_invoke _ -> false
    | Q_filter (q, _) -> join_passing q
    | Q_join (a, b, on) -> on <> [] || join_passing a || join_passing b
    | Q_aggregate { inner; _ } -> join_passing inner
  in
  match p.query with Some q -> join_passing q | None -> false

(* All constants appearing in a program, with the parameter name they fill;
   used by parameter replacement. *)
let program_constants (p : program) : (string * Value.t) list =
  let acc = ref [] in
  let add name v = acc := (name, v) :: !acc in
  let in_params inv =
    List.iter
      (fun ip -> match ip.ip_value with Constant v -> add ip.ip_name v | Passed _ -> ())
      inv.in_params
  in
  let rec pred = function
    | P_true | P_false -> ()
    | P_not p -> pred p
    | P_and ps | P_or ps -> List.iter pred ps
    | P_atom { lhs; rhs; _ } -> add lhs rhs
    | P_external { inv; pred = p } -> in_params inv; pred p
  in
  let rec query = function
    | Q_invoke inv -> in_params inv
    | Q_filter (q, p) -> query q; pred p
    | Q_join (a, b, _) -> query a; query b
    | Q_aggregate { inner; _ } -> query inner
  in
  let rec stream = function
    | S_now | S_attimer _ | S_timer _ -> ()
    | S_monitor (q, _) -> query q
    | S_edge (s, p) -> stream s; pred p
  in
  stream p.stream;
  (match p.query with Some q -> query q | None -> ());
  (match p.action with A_notify -> () | A_invoke inv -> in_params inv);
  List.rev !acc

(* Rewrites every constant in the program with [f name value]. *)
let map_constants (f : string -> Value.t -> Value.t) (p : program) : program =
  let in_params inv =
    { inv with
      in_params =
        List.map
          (fun ip ->
            match ip.ip_value with
            | Constant v -> { ip with ip_value = Constant (f ip.ip_name v) }
            | Passed _ -> ip)
          inv.in_params }
  in
  let rec pred = function
    | (P_true | P_false) as p -> p
    | P_not p -> P_not (pred p)
    | P_and ps -> P_and (List.map pred ps)
    | P_or ps -> P_or (List.map pred ps)
    | P_atom { lhs; op; rhs } -> P_atom { lhs; op; rhs = f lhs rhs }
    | P_external { inv; pred = p } -> P_external { inv = in_params inv; pred = pred p }
  in
  let rec query = function
    | Q_invoke inv -> Q_invoke (in_params inv)
    | Q_filter (q, p) -> Q_filter (query q, pred p)
    | Q_join (a, b, on) -> Q_join (query a, query b, on)
    | Q_aggregate a -> Q_aggregate { a with inner = query a.inner }
  in
  let rec stream = function
    | (S_now | S_attimer _ | S_timer _) as s -> s
    | S_monitor (q, on_new) -> S_monitor (query q, on_new)
    | S_edge (s, p) -> S_edge (stream s, pred p)
  in
  { stream = stream p.stream;
    query = Option.map query p.query;
    action = (match p.action with A_notify -> A_notify | A_invoke inv -> A_invoke (in_params inv)) }
