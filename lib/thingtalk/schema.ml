(* Skill-library class declarations (paper Fig. 3) and the library registry.

   A class declares query functions (no side effects; in and out parameters;
   optionally monitorable and list-returning) and action functions (side
   effects; input parameters only). *)

type dir = In_req | In_opt | Out

type param = { p_name : string; p_type : Ttype.t; p_dir : dir }

type kind =
  | Query of { monitorable : bool; is_list : bool }
  | Action

type func = {
  f_class : string;
  f_name : string;
  f_kind : kind;
  f_params : param list;
  f_doc : string;
}

type cls = {
  c_name : string;
  c_extends : string list;
  c_doc : string;
  c_functions : func list;
}

let fn_ref (f : func) = Ast.Fn.make f.f_class f.f_name

let is_query f = match f.f_kind with Query _ -> true | Action -> false
let is_action f = match f.f_kind with Action -> true | Query _ -> false

let is_monitorable f =
  match f.f_kind with Query { monitorable; _ } -> monitorable | Action -> false

let is_list f =
  match f.f_kind with Query { is_list; _ } -> is_list | Action -> false

let in_params f =
  List.filter (fun p -> p.p_dir = In_req || p.p_dir = In_opt) f.f_params

let required_params f = List.filter (fun p -> p.p_dir = In_req) f.f_params
let out_params f = List.filter (fun p -> p.p_dir = Out) f.f_params

let find_param f name = List.find_opt (fun p -> p.p_name = name) f.f_params

(* --- declaration helpers (used by the Thingpedia definitions) ----------- *)

let in_req name ty = { p_name = name; p_type = ty; p_dir = In_req }
let in_opt name ty = { p_name = name; p_type = ty; p_dir = In_opt }
let out name ty = { p_name = name; p_type = ty; p_dir = Out }

let query ?(monitorable = true) ?(is_list = true) ?(doc = "") name params =
  { f_class = ""; f_name = name; f_kind = Query { monitorable; is_list };
    f_params = params; f_doc = doc }

let action ?(doc = "") name params =
  (match List.find_opt (fun p -> p.p_dir = Out) params with
  | Some p ->
      invalid_arg
        (Printf.sprintf "Schema.action: %s declares output parameter %s" name p.p_name)
  | None -> ());
  { f_class = ""; f_name = name; f_kind = Action; f_params = params; f_doc = doc }

let cls ?(extends = []) ?(doc = "") name functions =
  { c_name = name; c_extends = extends; c_doc = doc;
    c_functions = List.map (fun f -> { f with f_class = name }) functions }

(* --- library ------------------------------------------------------------ *)

module Library = struct
  type t = {
    classes : cls list;
    by_class : (string, cls) Hashtbl.t;
    by_fn : (string, func) Hashtbl.t;
  }

  let of_classes classes =
    let by_class = Hashtbl.create 64 in
    let by_fn = Hashtbl.create 256 in
    List.iter
      (fun c ->
        if Hashtbl.mem by_class c.c_name then
          invalid_arg (Printf.sprintf "Library: duplicate class %s" c.c_name);
        Hashtbl.replace by_class c.c_name c;
        List.iter
          (fun f ->
            let key = Ast.Fn.to_string (fn_ref f) in
            if Hashtbl.mem by_fn key then
              invalid_arg (Printf.sprintf "Library: duplicate function %s" key);
            Hashtbl.replace by_fn key f)
          c.c_functions)
      classes;
    { classes; by_class; by_fn }

  let find_class t name = Hashtbl.find_opt t.by_class name

  let find_fn t (fn : Ast.Fn.t) = Hashtbl.find_opt t.by_fn (Ast.Fn.to_string fn)

  let functions t = List.concat_map (fun c -> c.c_functions) t.classes
  let queries t = List.filter is_query (functions t)
  let actions t = List.filter is_action (functions t)

  let num_classes t = List.length t.classes
  let num_functions t = List.length (functions t)

  let distinct_params t =
    let seen = Hashtbl.create 256 in
    List.iter
      (fun f -> List.iter (fun p -> Hashtbl.replace seen p.p_name ()) f.f_params)
      (functions t);
    Hashtbl.length seen

  (* Merge two libraries (e.g. core Thingpedia + the Spotify skill). *)
  let union a b = of_classes (a.classes @ b.classes)
end
