(* Canonicalization of ThingTalk programs (paper section 2.4).

   Canonical form is what allows the output of the neural network to be
   checked for correctness with an exact match: semantically equivalent
   programs print identically. The transformation rules are:

   - boolean predicates are simplified, converted to conjunctive normal form,
     and conjuncts/disjuncts are sorted lexically;
   - nested filter applications collapse to a single filter with &&;
   - joins without parameter passing are commutative and their operands are
     ordered lexically;
   - each filter clause is moved to the left-most function that includes all
     the output parameters it mentions;
   - input parameters are listed in alphabetical order. *)

open Ast

(* --- predicate normalization -------------------------------------------- *)

(* A literal: a possibly-negated atom or external predicate. *)
type literal = { negated : bool; body : predicate }

let negate_atom lhs op rhs =
  (* Push negation into the operator when an exact dual exists. *)
  let dual = function
    | Op_eq -> Some Op_neq
    | Op_neq -> Some Op_eq
    | Op_gt -> Some Op_leq
    | Op_leq -> Some Op_gt
    | Op_lt -> Some Op_geq
    | Op_geq -> Some Op_lt
    | Op_contains | Op_substr | Op_starts_with | Op_ends_with | Op_in_array -> None
  in
  match dual op with
  | Some op' -> Some (P_atom { lhs; op = op'; rhs })
  | None -> None

let literal_to_pred { negated; body } = if negated then P_not body else body

let literal_key l = Printer.predicate_to_string (literal_to_pred l)

(* Conjunctive normal form: a conjunction of clauses, each clause a
   disjunction of literals. [None] encodes the constant false clause. *)
let rec to_cnf (p : predicate) : literal list list =
  (* negation normal form first *)
  let rec nnf negated p =
    match p with
    | P_true -> if negated then `False else `True
    | P_false -> if negated then `True else `False
    | P_not p -> nnf (not negated) p
    | P_and ps ->
        let parts = List.map (nnf negated) ps in
        if negated then `Or parts else `And parts
    | P_or ps ->
        let parts = List.map (nnf negated) ps in
        if negated then `And parts else `Or parts
    | P_atom { lhs; op; rhs } when negated -> (
        match negate_atom lhs op rhs with
        | Some p' -> `Lit { negated = false; body = p' }
        | None -> `Lit { negated = true; body = p })
    | P_atom _ -> `Lit { negated; body = p }
    | P_external e ->
        `Lit { negated; body = P_external { e with pred = normalize_pred e.pred } }
  (* CNF of an NNF term: list of clauses *)
  and cnf = function
    | `True -> []
    | `False -> [ [] ] (* one empty (unsatisfiable) clause *)
    | `Lit l -> [ [ l ] ]
    | `And parts -> List.concat_map cnf parts
    | `Or parts ->
        (* distribute: clauses(p1 or p2) = {c1 ∪ c2 | ci ∈ clauses(pi)} *)
        List.fold_left
          (fun acc part ->
            let cs = cnf part in
            List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) cs) acc)
          [ [] ] parts
  and normalize_pred p = of_cnf (to_cnf_inner p)
  and to_cnf_inner p = cnf (nnf false p)
  in
  cnf (nnf false p)

and of_cnf (clauses : literal list list) : predicate =
  (* sort and deduplicate literals within clauses and clauses within the
     conjunction; drop tautological duplicates *)
  let clause_pred lits =
    let lits = List.sort_uniq (fun a b -> compare (literal_key a) (literal_key b)) lits in
    match lits with
    | [] -> P_false
    | [ l ] -> literal_to_pred l
    | ls -> P_or (List.map literal_to_pred ls)
  in
  let clauses =
    List.map clause_pred clauses
    |> List.sort_uniq (fun a b -> compare (Printer.predicate_to_string a) (Printer.predicate_to_string b))
  in
  let clauses = List.filter (fun c -> c <> P_true) clauses in
  if List.mem P_false clauses then P_false
  else
    match clauses with
    | [] -> P_true
    | [ c ] -> c
    | cs -> P_and cs

let normalize_predicate p = of_cnf (to_cnf p)

(* Conjunct list of a normalized predicate. *)
let conjuncts p =
  match normalize_predicate p with
  | P_true -> []
  | P_and ps -> ps
  | p -> [ p ]

let conjoin = function
  | [] -> P_true
  | [ p ] -> p
  | ps -> normalize_predicate (P_and ps)

(* Output parameters mentioned by a predicate (for clause placement). *)
let rec predicate_params = function
  | P_true | P_false -> []
  | P_not p -> predicate_params p
  | P_and ps | P_or ps -> List.concat_map predicate_params ps
  | P_atom { lhs; _ } -> [ lhs ]
  | P_external _ -> []

(* --- program normalization ----------------------------------------------- *)

let sort_in_params ips =
  List.sort (fun a b -> compare a.ip_name b.ip_name) ips

let normalize_invocation inv = { inv with in_params = sort_in_params inv.in_params }

let rec query_has_param_passing = function
  | Q_invoke inv ->
      List.exists (fun ip -> match ip.ip_value with Passed _ -> true | _ -> false)
        inv.in_params
  | Q_filter (q, _) -> query_has_param_passing q
  | Q_join (a, b, on) -> on <> [] || query_has_param_passing a || query_has_param_passing b
  | Q_aggregate { inner; _ } -> query_has_param_passing inner

(* Collect (query, filter conjuncts) and rebuild with filters pushed to the
   left-most operand whose output parameters cover them. *)
let rec normalize_query lib (q : query) : query =
  match q with
  | Q_invoke inv -> Q_invoke (normalize_invocation inv)
  | Q_filter (inner, p) -> (
      let inner = normalize_query lib inner in
      let p = normalize_predicate p in
      match inner with
      | Q_filter (q0, p0) -> normalize_query lib (Q_filter (q0, P_and [ p0; p ]))
      | Q_join _ -> push_filters lib inner (conjuncts p)
      | _ -> (
          match p with
          | P_true -> inner
          | _ -> Q_filter (inner, p)))
  | Q_join (a, b, on) ->
      let a = normalize_query lib a and b = normalize_query lib b in
      let on = List.sort compare on in
      if on = [] && not (query_has_param_passing b) then
        (* commutative: order operands lexically *)
        let sa = Printer.query_to_string a and sb = Printer.query_to_string b in
        if compare sa sb <= 0 then Q_join (a, b, []) else Q_join (b, a, [])
      else Q_join (a, b, on)
  | Q_aggregate a -> Q_aggregate { a with inner = normalize_query lib a.inner }

(* Move each conjunct to the left-most subquery that provides all of its
   output parameters; conjuncts that span operands stay at the top. *)
and push_filters lib (q : query) (cs : predicate list) : query =
  match cs with
  | [] -> q
  | _ -> (
      match q with
      | Q_join (a, b, on) ->
          let outs_a = Typecheck.query_out_params lib a in
          let covered_a, rest =
            List.partition
              (fun c ->
                let ps = predicate_params c in
                ps <> [] && List.for_all (fun p -> List.mem_assoc p outs_a) ps)
              cs
          in
          let outs_b = Typecheck.query_out_params lib b in
          let covered_b, top =
            List.partition
              (fun c ->
                let ps = predicate_params c in
                ps <> [] && List.for_all (fun p -> List.mem_assoc p outs_b) ps)
              rest
          in
          let a = if covered_a = [] then a else normalize_query lib (Q_filter (a, conjoin covered_a)) in
          let b = if covered_b = [] then b else normalize_query lib (Q_filter (b, conjoin covered_b)) in
          let joined = normalize_query lib (Q_join (a, b, on)) in
          if top = [] then joined else Q_filter (joined, conjoin top)
      | _ -> (
          match conjoin cs with
          | P_true -> q
          | p -> Q_filter (q, p)))

let rec normalize_stream lib (s : stream) : stream =
  match s with
  | S_now | S_attimer _ | S_timer _ -> s
  | S_monitor (q, on_new) ->
      S_monitor (normalize_query lib q, Option.map (List.sort compare) on_new)
  | S_edge (inner, p) -> S_edge (normalize_stream lib inner, normalize_predicate p)

let normalize_action a =
  match a with
  | A_notify -> A_notify
  | A_invoke inv -> A_invoke (normalize_invocation inv)

let normalize lib (p : program) : program =
  { stream = normalize_stream lib p.stream;
    query = Option.map (normalize_query lib) p.query;
    action = normalize_action p.action }

let normalize_policy lib (p : policy) : policy =
  ignore lib;
  let target =
    match p.target with
    | Policy_query (inv, pred) ->
        Policy_query (normalize_invocation inv, normalize_predicate pred)
    | Policy_action (inv, pred) ->
        Policy_action (normalize_invocation inv, normalize_predicate pred)
  in
  { source = normalize_predicate p.source; target }

(* Canonical textual form; two programs are equivalent under the paper's
   program-accuracy metric iff their canonical strings are equal. *)
let canonical_string lib p = Printer.program_to_string (normalize lib p)

let equivalent lib a b = canonical_string lib a = canonical_string lib b
