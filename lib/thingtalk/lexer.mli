(** Hand-written lexer for the ThingTalk surface syntax. *)

type token =
  | IDENT of string  (** keywords are resolved by the parser *)
  | FNREF of string  (** [@com.example.fn] *)
  | NUMBER of float
  | MEASURE of float * string  (** a number with an attached unit, e.g. 60F *)
  | STRING of string
  | ENUM of string  (** [enum:value] *)
  | RELATIVE_LOCATION of string  (** [location:home] *)
  | DOLLAR of string  (** [$now], [$?] *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMICOLON
  | COLON
  | ARROW  (** [=>] *)
  | EQUALS
  | OP of string  (** [== != > < >= <= && || ! + ^^] *)
  | EOF

exception Error of string

val token_to_string : token -> string

val tokenize : string -> token list
(** Raises {!Error} on unterminated strings, unknown units or stray
    characters. The result always ends with {!EOF}. *)
