(** The ThingTalk type system (paper Fig. 3).

    Strong fine-grained static typing is VAPL design principle (1): standard
    scalar types, domain types common in IoT devices and web services, custom
    entity types recalled by name, and arrays as the only compound type. *)

type t =
  | String
  | Number
  | Boolean
  | Date
  | Time
  | Location
  | Path_name
  | Url
  | Phone_number
  | Email_address
  | Picture
  | Currency
  | Measure of string  (** parameterized by its base unit, e.g. ["byte"] *)
  | Enum of string list
  | Entity of string  (** a custom entity type, e.g. ["tt:username"] *)
  | Array of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val assignable : src:t -> dst:t -> bool
(** Can a value of type [src] flow into a slot of type [dst]? Lenient, for
    checking user and model programs: free-form strings may stand for
    entities, URLs, paths (the runtime resolves them after parsing). *)

val strictly_assignable : src:t -> dst:t -> bool
(** Same-type flows only (plus picture/URL interchange). Used when
    synthesizing parameter passing so generated compounds stay sensible. *)

val is_numeric : t -> bool
(** Numbers, currencies and measures: the types aggregation operates on. *)

(** Units of measure. The language accepts any legal unit and composes
    measures additively ("6 feet 3 inches" = 6ft + 3in), because a neural
    parser cannot normalize units during translation (section 2.1). *)
module Units : sig
  val table : (string * (string * float)) list
  (** unit name -> (base unit, multiplier). *)

  val base_of : string -> string option
  (** The base unit of a concrete unit, or [None] if unknown. *)

  val is_unit : string -> bool

  val to_base : float -> string -> float
  (** Converts a magnitude to the unit's base (affine for temperatures).
      Raises [Invalid_argument] on unknown units. *)

  val units_for_base : string -> string list
end
