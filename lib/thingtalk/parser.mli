(** Recursive-descent parser for the ThingTalk surface syntax (Fig. 5),
    the TT+A aggregation extension and TACL policies. Accepts everything
    {!Printer} emits (round-trip property-tested). *)

exception Error of string

val parse_program : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} on malformed input. *)

val parse_program_opt : string -> Ast.program option

val parse_policy : string -> Ast.policy
(** Concrete syntax: [source <predicate> : now => ... ;] where the command is
    restricted to the primitive forms of paper Fig. 10. *)
