(** The flat token syntax the semantic parser predicts (section 2.1).

    Numbers, dates and times identified in the input sentence become named
    constants ([NUMBER_0], [DATE_1], ...), resolved against the sentence's
    entity map; free-form strings and named entities are serialized as
    multi-token quoted spans so individual words can be copied from the
    input. *)

type options = {
  type_annotations : bool;
      (** emit [param:name:Type] (on) vs [param:name] (off) -- a Table 3
          ablation *)
  keyword_params : bool;
      (** keyword parameters (on) vs positional slots (off) -- a Table 3
          ablation *)
}

val default_options : options

type entities = (string * Value.t) list
(** Sentence-side named constants: slot token -> value. *)

exception Parse_error of string

val to_tokens :
  ?options:options -> ?entities:entities -> Schema.Library.t -> Ast.program -> string list
(** Serializes a program. Values present in [entities] are emitted as their
    slot token; strings become quoted spans. *)

val to_string :
  ?options:options -> ?entities:entities -> Schema.Library.t -> Ast.program -> string

val policy_to_tokens :
  ?options:options -> ?entities:entities -> Schema.Library.t -> Ast.policy -> string list

val of_tokens :
  ?options:options -> ?entities:entities -> Schema.Library.t -> string list -> Ast.program
(** Deserializes a token sequence; slot tokens resolve through [entities].
    Raises {!Parse_error} on malformed input. *)

val of_string :
  ?options:options -> ?entities:entities -> Schema.Library.t -> string -> Ast.program

val well_formed :
  ?options:options -> ?entities:entities -> Schema.Library.t -> string list -> bool
(** Does the sequence parse and type-check? The syntax-correctness metric of
    the error analysis (section 5.5). *)

val is_slot_token : string -> bool
(** Recognizes named constants of the shape [KIND_k]. *)

val value_tokens : entities:entities -> Value.t -> string list
val quoted_span : string -> string list
