(** ThingTalk constant values.

    The language needs a rich constant language (section 2.1): measures
    composed additively from arbitrary legal units, dates relative to the
    utterance time, locations by name or coordinates, typed entities with an
    optional display name. *)

type date =
  | D_absolute of { year : int; month : int; day : int }
  | D_now  (** the time the program starts *)
  | D_start_of of string  (** "day" | "week" | "mon" | "year" *)
  | D_end_of of string
  | D_plus of date * float * string  (** base date plus an offset measure *)

type location =
  | L_named of string
  | L_absolute of float * float  (** latitude, longitude *)
  | L_relative of string  (** "home" | "work" | "current_location" *)

type t =
  | String of string
  | Number of float
  | Boolean of bool
  | Measure of (float * string) list
      (** additive terms, e.g. [[(6., "ft"); (3., "in")]] *)
  | Date of date
  | Time of int * int  (** hour, minute *)
  | Location of location
  | Currency of float * string  (** amount, lowercase code *)
  | Enum of string
  | Entity of { ty : string; value : string; display : string option }
  | Array of t list
  | Undefined  (** an unfilled slot ($?) *)

val type_of : t -> Ttype.t option
(** The natural type of a value, when determinable. *)

val conforms : t -> Ttype.t -> bool
(** Does the value fit a slot of the declared type? [Undefined] conforms to
    everything; strings conform to entity-like slots (resolved at runtime). *)

val to_float : now:float -> t -> float option
(** Numeric magnitude for comparisons: measures normalize to their base unit,
    dates to day counts relative to [now]. *)

val date_to_days : now:float -> date -> float
(** Resolves a date to a day count under the virtual clock [now] (a simplified
    proleptic calendar sufficient for simulation). *)

val to_string : t -> string
(** The surface-syntax rendering, accepted back by the parser. *)

val date_to_string : date -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val runtime_equal : now:float -> t -> t -> bool
(** Equality as the runtime's == operator sees it: strings case-insensitive,
    entities by value, numeric kinds by magnitude. *)
