(* Simulated crowdsource paraphrase workers.

   The paper collects paraphrases on Amazon Mechanical Turk; that workforce is
   substituted by a stochastic worker model with per-worker styles. The model
   reproduces the statistical properties the training-strategy experiments
   rely on: paraphrases add lexical variety over the synthesized wording
   (new words and bigrams per paraphrase), workers sometimes make only the
   most obvious change, and a fraction of answers is wrong in characteristic
   ways (dropped parameters, altered parameter values, semantic drift). *)

open Genie_thingtalk

type style = {
  synonym_rate : float; (* probability of rewriting each rewritable phrase *)
  reorder_p : float; (* probability of moving a when-clause *)
  drop_politeness_p : float;
  error_p : float; (* probability of producing a wrong paraphrase *)
  lazy_p : float; (* probability of a minimal-edit paraphrase *)
}

let default_style =
  { synonym_rate = 0.5; reorder_p = 0.4; drop_politeness_p = 0.7; error_p = 0.12; lazy_p = 0.15 }

(* The human synonym table: deliberately different entries from the PPDB
   table used for augmentation, so paraphrases introduce genuinely new
   vocabulary. *)
let synonyms : (string list * string list list) list =
  let s a bs = (Genie_util.Tok.tokenize a, List.map Genie_util.Tok.tokenize bs) in
  [ s "get" [ "grab"; "pull up"; "find me" ];
    s "show me" [ "i would like to see"; "bring up"; "lemme see" ];
    s "tell me" [ "what is"; "i wanna know" ];
    s "notify me" [ "shoot me a message"; "give me a heads up"; "warn me" ];
    s "let me know" [ "keep me posted"; "tell me" ];
    s "alert me" [ "wake me up"; "buzz me" ];
    s "when" [ "if"; "once"; "anytime" ];
    s "when i receive" [ "when i get"; "whenever i get" ];
    s "changes" [ "gets updated"; "is different" ];
    s "a cat picture" [ "a pic of a kitty"; "some cat photo"; "a kitten pic" ];
    s "a dog picture" [ "a puppy photo"; "a pic of a dog" ];
    s "picture" [ "snapshot"; "shot" ];
    s "post" [ "put"; "share" ];
    s "on twitter" [ "to my twitter"; "on my twitter feed" ];
    s "on facebook" [ "to facebook"; "on my facebook wall" ];
    s "emails" [ "my mail"; "email messages" ];
    s "email" [ "e-mail"; "mail" ];
    s "send an email to" [ "write to"; "shoot an email to" ];
    s "the weather in" [ "how the weather is in"; "weather conditions in" ];
    s "temperature" [ "how hot it is"; "the temp" ];
    s "play" [ "put on"; "start" ];
    s "song" [ "tune"; "track" ];
    s "my dropbox files" [ "the files in my dropbox"; "my dropbox stuff" ];
    s "tweets from" [ "what is tweeted by"; "the tweets of" ];
    s "turn on the lights" [ "lights on"; "switch my lights on" ];
    s "turn off the lights" [ "lights out"; "kill the lights" ];
    s "set the temperature to" [ "make it"; "adjust the thermostat to" ];
    s "text" [ "sms" ];
    s "bigger than" [ "over"; "exceeding" ];
    s "faster than" [ "quicker than"; "with tempo above" ];
    s "every day at" [ "daily at"; "each day at" ];
    s "the front page of the new york times" [ "nyt headlines"; "the nytimes front page" ] ]

let politeness = List.map Genie_util.Tok.tokenize [ "please"; "can you"; "i want to"; "i would like to" ]

(* tokens that belong to parameter values and must not be touched *)
let protected_tokens (program : Ast.program) =
  List.concat_map
    (fun (_, v) ->
      Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v))
    (Ast.program_constants program)

let apply_synonyms rng ~rate ~protected tokens =
  List.fold_left
    (fun toks (from_, tos) ->
      if List.exists (fun t -> List.mem t protected) from_ then toks
      else if Genie_util.Rng.flip rng rate then
        match Genie_util.Tok.match_sub toks from_ with
        | Some (before, after) -> before @ Genie_util.Rng.pick rng tos @ after
        | None -> toks
      else toks)
    tokens synonyms

(* Move a leading when-clause to the end or vice versa. *)
let reorder_clauses rng tokens =
  let starts_when =
    match tokens with
    | ("when" | "whenever" | "if" | "once" | "anytime") :: _ -> true
    | _ -> false
  in
  match Genie_util.Tok.match_sub tokens [ "," ] with
  | Some (before, after) when starts_when && after <> [] -> after @ before
  | Some (before, after) when (not starts_when) && after <> [] -> (
      match after with
      | ("when" | "whenever" | "if" | "once") :: _ -> after @ [ "," ] @ before
      | _ -> tokens)
  | _ ->
      ignore rng;
      tokens

let drop_politeness tokens =
  List.fold_left
    (fun toks phrase ->
      match Genie_util.Tok.match_sub toks phrase with
      | Some (before, after) -> before @ after
      | None -> toks)
    tokens politeness

(* --- error modes ------------------------------------------------------------ *)

type error_mode = Drop_parameter | Mangle_parameter | Truncate | Off_topic

let error_modes = [| Drop_parameter; Mangle_parameter; Truncate; Off_topic |]

let make_error rng program tokens =
  match Genie_util.Rng.pick_array rng error_modes with
  | Drop_parameter -> (
      (* omit a parameter value from the sentence *)
      match Ast.program_constants program with
      | [] -> tokens
      | consts -> (
          let _, v = Genie_util.Rng.pick rng consts in
          let rendering =
            Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v)
          in
          match Genie_util.Tok.match_sub tokens rendering with
          | Some (before, after) -> before @ after
          | None -> tokens))
  | Mangle_parameter -> (
      (* replace a parameter value with different words, so the copy target no
         longer appears in the sentence *)
      match Ast.program_constants program with
      | [] -> tokens
      | consts -> (
          let _, v = Genie_util.Rng.pick rng consts in
          let rendering =
            Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v)
          in
          match Genie_util.Tok.match_sub tokens rendering with
          | Some (before, after) -> before @ [ "something"; "else" ] @ after
          | None -> tokens))
  | Truncate ->
      let n = List.length tokens in
      List.filteri (fun i _ -> i < max 2 (n / 2)) tokens
  | Off_topic -> Genie_util.Tok.tokenize "do the thing i asked before"

(* --- the worker ----------------------------------------------------------- *)

(* One paraphrase of (sentence, program) by a worker with the given style.
   Returns the tokens the worker wrote. *)
let paraphrase ?(style = default_style) rng (tokens : string list)
    (program : Ast.program) : string list =
  if Genie_util.Rng.flip rng style.error_p then make_error rng program tokens
  else if Genie_util.Rng.flip rng style.lazy_p then
    (* minimal edit: one synonym substitution at most *)
    apply_synonyms rng ~rate:0.3 ~protected:(protected_tokens program) tokens
  else begin
    let protected = protected_tokens program in
    let tokens = if Genie_util.Rng.flip rng style.drop_politeness_p then drop_politeness tokens else tokens in
    let tokens = apply_synonyms rng ~rate:style.synonym_rate ~protected tokens in
    let tokens = if Genie_util.Rng.flip rng style.reorder_p then reorder_clauses rng tokens else tokens in
    tokens
  end

(* Distinct per-worker styles: some careful, some lazy, some error-prone. *)
let worker_pool rng n : style list =
  List.init n (fun _ ->
      { synonym_rate = 0.3 +. Genie_util.Rng.float rng 0.5;
        reorder_p = Genie_util.Rng.float rng 0.6;
        drop_politeness_p = 0.4 +. Genie_util.Rng.float rng 0.6;
        error_p = 0.04 +. Genie_util.Rng.float rng 0.2;
        lazy_p = Genie_util.Rng.float rng 0.3 })
