(* The crowdsourcing pipeline (paper section 3.2): choosing which synthesized
   sentences to paraphrase, preparing batches, collecting answers from the
   (simulated) workers, and filtering out wrong answers with heuristics. *)

open Genie_thingtalk

(* --- choosing sentences to paraphrase -------------------------------------- *)

type selection_config = {
  primitive_per_function : int; (* paraphrases for every primitive *)
  compound_budget : int; (* how many compound sentences to sample *)
  seed : int;
  (* developer-provided lists: compound sentences combining easy functions
     with hard ones are preferred; unrelated hard-hard pairs confuse
     workers *)
  easy_functions : Ast.Fn.t list;
  hard_functions : Ast.Fn.t list;
}

let default_selection =
  { primitive_per_function = 2;
    compound_budget = 400;
    seed = 99;
    easy_functions = [];
    hard_functions = [] }

let functions_of (p : Ast.program) = List.sort_uniq Ast.Fn.compare (Ast.program_functions p)

(* Score a compound sentence for paraphrasability: easy+hard pairings score
   high, hard+hard low (workers cannot understand them). *)
let pair_score cfg (p : Ast.program) =
  let fns = functions_of p in
  let easy f = List.mem f cfg.easy_functions in
  let hard f = List.mem f cfg.hard_functions in
  match fns with
  | [ _ ] -> 1.0
  | fns ->
      let n_easy = List.length (List.filter easy fns) in
      let n_hard = List.length (List.filter hard fns) in
      if n_hard >= 2 then 0.1 else if n_hard = 1 && n_easy >= 1 then 2.0 else 1.0

(* Select a subset of the synthesized data for paraphrasing: good coverage of
   primitives, weighted sampling of compounds. *)
let select cfg (synthesized : (string list * Ast.program) list) :
    (string list * Ast.program) list =
  let rng = Genie_util.Rng.create cfg.seed in
  let primitives, compounds =
    List.partition (fun (_, p) -> Ast.is_primitive p) synthesized
  in
  (* per-function quota over primitives *)
  let per_fn : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let prim_selected =
    List.filter
      (fun (_, p) ->
        match functions_of p with
        | [ f ] ->
            let key = Ast.Fn.to_string f in
            let k = try Hashtbl.find per_fn key with Not_found -> 0 in
            if k < cfg.primitive_per_function then begin
              Hashtbl.replace per_fn key (k + 1);
              true
            end
            else false
        | _ -> false)
      (Genie_util.Rng.shuffle rng primitives)
  in
  let weighted =
    List.map (fun ((_, p) as sp) -> (sp, pair_score cfg p)) compounds
  in
  let rec draw n acc pool =
    if n = 0 || pool = [] then acc
    else
      let chosen = Genie_util.Rng.weighted rng pool in
      let pool = List.filter (fun (sp, _) -> sp != chosen) pool in
      draw (n - 1) (chosen :: acc) pool
  in
  prim_selected @ draw (min cfg.compound_budget (List.length weighted)) [] weighted

(* --- MTurk batch files ------------------------------------------------------- *)

(* Genie produces a CSV that creates a batch of crowdsource tasks; multiple
   workers see each synthesized sentence, and each worker provides two
   paraphrases. *)
let batch_csv ?(workers_per_sentence = 2) (selected : (string list * Ast.program) list) :
    string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "hit_id,worker_slot,sentence,program\n";
  List.iteri
    (fun i (tokens, program) ->
      for w = 0 to workers_per_sentence - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,\"%s\",\"%s\"\n" i w
             (String.concat " " tokens)
             (Printer.program_to_string program))
      done)
    selected;
  Buffer.contents buf

(* --- answer validation -------------------------------------------------------- *)

(* Heuristics that discard obvious mistakes (the paper additionally asks other
   workers to check the remaining answers; the net effect is a filter). *)
let valid_paraphrase ~(original : string list) ~(program : Ast.program)
    (answer : string list) : bool =
  let n_orig = List.length original and n_ans = List.length answer in
  (* too short or absurdly long answers are lazy/garbage work *)
  n_ans >= 2
  && n_ans * 10 >= n_orig * 3
  && n_ans <= n_orig * 3
  && (* every string/entity parameter must be copied into the answer *)
  List.for_all
    (fun (_, v) ->
      match v with
      | Value.String _ | Value.Entity _ ->
          let rendering =
            Genie_util.Tok.tokenize (Genie_thingpedia.Prim.render_value ~quote:false v)
          in
          Genie_util.Tok.match_sub answer rendering <> None
      | _ -> true)
    (Ast.program_constants program)

(* --- end-to-end paraphrase collection ----------------------------------------- *)

type result = {
  accepted : (string list * Ast.program) list; (* validated paraphrases *)
  rejected : int;
  collected : int;
}

(* Runs the simulated crowd over the selected sentences: several workers per
   sentence, two paraphrases per worker, then validation. *)
let collect ?(workers_per_sentence = 2) ?(paraphrases_per_worker = 2) ~seed
    ~(num_workers : int) (selected : (string list * Ast.program) list) : result =
  let rng = Genie_util.Rng.create seed in
  let styles = Array.of_list (Worker.worker_pool rng (max 1 num_workers)) in
  let accepted = ref [] in
  let rejected = ref 0 in
  let collected = ref 0 in
  List.iter
    (fun (tokens, program) ->
      for _ = 1 to workers_per_sentence do
        let style = Genie_util.Rng.pick_array rng styles in
        for _ = 1 to paraphrases_per_worker do
          incr collected;
          let answer = Worker.paraphrase ~style (Genie_util.Rng.split rng) tokens program in
          if valid_paraphrase ~original:tokens ~program answer then
            accepted := (answer, program) :: !accepted
          else incr rejected
        done
      done)
    selected;
  { accepted = List.rev !accepted; rejected = !rejected; collected = !collected }
