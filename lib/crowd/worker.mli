(** Simulated crowdsource paraphrase workers.

    The MTurk workforce is substituted by a stochastic worker model with
    per-worker styles (see DESIGN.md). It reproduces the statistical
    properties the training-strategy experiments rely on: paraphrases add
    lexical variety over the synthesized wording, some workers make only the
    most obvious change, and a fraction of answers is wrong in characteristic
    ways (dropped parameters, altered values, truncation, drift). *)

open Genie_thingtalk

type style = {
  synonym_rate : float;
  reorder_p : float;
  drop_politeness_p : float;
  error_p : float;
  lazy_p : float;  (** probability of a minimal-edit answer *)
}

val default_style : style

val protected_tokens : Ast.program -> string list
(** The tokens of the program's parameter values, which workers are
    instructed to copy verbatim. *)

val paraphrase :
  ?style:style -> Genie_util.Rng.t -> string list -> Ast.program -> string list
(** One worker's paraphrase of a (sentence, program) task: synonym
    substitution, optional clause reordering, politeness dropping -- or, with
    probability [error_p], a characteristic mistake. Deterministic in the
    generator. *)

val worker_pool : Genie_util.Rng.t -> int -> style list
(** [n] workers with distinct styles: some careful, some lazy, some
    error-prone. *)
