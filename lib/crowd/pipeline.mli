(** The crowdsourcing pipeline (paper section 3.2): choosing which synthesized
    sentences to paraphrase, preparing MTurk batches, collecting answers from
    the (simulated) workers, and filtering wrong answers with heuristics. *)

open Genie_thingtalk

type selection_config = {
  primitive_per_function : int;
      (** paraphrases are advisable for every primitive (section 3.2) *)
  compound_budget : int;
  seed : int;
  easy_functions : Ast.Fn.t list;
  hard_functions : Ast.Fn.t list;
      (** compound sentences pairing an easy function with a hard one are
          preferred; hard-hard pairs confuse workers *)
}

val default_selection : selection_config

val select :
  selection_config ->
  (string list * Ast.program) list ->
  (string list * Ast.program) list
(** Per-function quotas over primitives plus weighted sampling of compounds. *)

val batch_csv :
  ?workers_per_sentence:int -> (string list * Ast.program) list -> string
(** The MTurk batch file: several workers see each sentence, and each worker
    provides two paraphrases (people asked for one make only the most obvious
    change; asked for three, they struggle). *)

val valid_paraphrase :
  original:string list -> program:Ast.program -> string list -> bool
(** The validation heuristics: plausible length ratio and every string or
    entity parameter copied into the answer. *)

type result = {
  accepted : (string list * Ast.program) list;
  rejected : int;
  collected : int;
}

val collect :
  ?workers_per_sentence:int ->
  ?paraphrases_per_worker:int ->
  seed:int ->
  num_workers:int ->
  (string list * Ast.program) list ->
  result
(** Runs the simulated worker pool over the selected sentences and validates
    every answer. *)
