(* Length-prefixed framing: a pure encoder plus an incremental decoder over
   an append-only byte buffer with a consumption cursor. The decoder never
   looks at a header field before all of its bytes have arrived, so feeding
   one byte at a time and feeding the whole stream at once take exactly the
   same decisions. *)

type t = { kind : int; payload : string }

let magic0 = 'G'
let magic1 = 'N'
let version = 1
let header_bytes = 8
let default_max_payload = 8 * 1024 * 1024

type error =
  | Bad_magic of int * int
  | Bad_version of int
  | Oversized of int

let error_to_string = function
  | Bad_magic (a, b) -> Printf.sprintf "bad magic bytes 0x%02x 0x%02x" a b
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds limit" n

let encode { kind; payload } =
  if kind < 0 || kind > 255 then invalid_arg "Frame.encode: kind out of range";
  let len = String.length payload in
  if len > default_max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set b 2 (Char.chr version);
  Bytes.set b 3 (Char.chr kind);
  Bytes.set b 4 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* one past the last buffered byte *)
  max_payload : int;
  mutable poisoned : error option;
}

let decoder ?(max_payload = default_max_payload) () =
  { buf = Bytes.create 4096; start = 0; stop = 0; max_payload; poisoned = None }

let pending_bytes d = d.stop - d.start

let ensure_room d extra =
  let used = pending_bytes d in
  if d.start > 0 && (d.start = d.stop || d.start >= Bytes.length d.buf / 2)
  then begin
    (* compact: slide the unconsumed suffix down so the buffer stays small *)
    Bytes.blit d.buf d.start d.buf 0 used;
    d.start <- 0;
    d.stop <- used
  end;
  if d.stop + extra > Bytes.length d.buf then begin
    let cap = ref (max 4096 (Bytes.length d.buf)) in
    while used + extra > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit d.buf d.start b 0 used;
    d.buf <- b;
    d.start <- 0;
    d.stop <- used
  end

let feed d ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if len < 0 || off < 0 || off + len > String.length s then
    invalid_arg "Frame.feed";
  if len > 0 then begin
    ensure_room d len;
    Bytes.blit_string s off d.buf d.stop len;
    d.stop <- d.stop + len
  end

let byte d i = Char.code (Bytes.get d.buf (d.start + i))

let next d =
  match d.poisoned with
  | Some e -> Error e
  | None ->
      let available = pending_bytes d in
      let fail e =
        d.poisoned <- Some e;
        Error e
      in
      (* validate each header field as soon as its bytes are in, so garbage
         is rejected without waiting for a (bogus) length to be satisfied *)
      if available >= 1 && Bytes.get d.buf d.start <> magic0 then
        fail (Bad_magic (byte d 0, if available >= 2 then byte d 1 else 0))
      else if available >= 2 && Bytes.get d.buf (d.start + 1) <> magic1 then
        fail (Bad_magic (byte d 0, byte d 1))
      else if available >= 3 && byte d 2 <> version then
        fail (Bad_version (byte d 2))
      else if available < header_bytes then Ok None
      else begin
        let len =
          (byte d 4 lsl 24) lor (byte d 5 lsl 16) lor (byte d 6 lsl 8)
          lor byte d 7
        in
        if len > d.max_payload then fail (Oversized len)
        else if available < header_bytes + len then Ok None
        else begin
          let payload = Bytes.sub_string d.buf (d.start + header_bytes) len in
          let kind = byte d 3 in
          d.start <- d.start + header_bytes + len;
          Ok (Some { kind; payload })
        end
      end

let read_into d ~read =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match next d with
    | Error e -> Error e
    | Ok (Some f) -> Ok (Some f)
    | Ok None -> (
        match read chunk (Bytes.length chunk) with
        | 0 -> Ok None  (* end of stream; pending_bytes > 0 means truncated *)
        | n ->
            feed d ~len:n (Bytes.unsafe_to_string chunk);
            go ())
  in
  go ()
