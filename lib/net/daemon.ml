(* The TCP front end. One single-threaded select loop owns every socket and
   the admission queue; parsing happens inside the server's worker pool.
   Determinism note: client request ids are scoped per connection, so the
   daemon renumbers admitted requests with a private monotonic id (stable
   admission order) and restores the client's id on the response frame. *)

module Server = Genie_serve.Server
module Response = Genie_serve.Response
module Tracer = Genie_observe.Tracer
module Span = Genie_observe.Span
module Probe = Genie_observe.Probe
module Json = Genie_util.Json_lite

type config = {
  host : string;
  port : int;
  batch_window_ms : float;
  batch_max : int;
  queue_capacity : int;
  max_connections : int;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    batch_window_ms = 2.0;
    batch_max = 64;
    queue_capacity = 1024;
    max_connections = 128 }

type conn = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  mutable alive : bool;  (* fd open *)
  mutable reading : bool;  (* still in the select read set *)
  mutable outstanding : int;  (* admitted requests not yet answered *)
  mutable closing : bool;  (* EOF/Bye seen: close once outstanding = 0 *)
}

type item = { it_conn : conn; it_wr : Codec.wire_request; it_srv_id : int }

type t = {
  config : config;
  server : Server.t;
  tracer : Tracer.t;
  tracer_slot : int;
  probe : Probe.t;
  batcher : item Batcher.t;
  (* the reload source: given the 1-based reload ordinal, produce the model
     to swap in (None = nothing newer available). Runs on the event-loop
     domain, between batches. *)
  reload_source : (int -> Genie_parser_model.Model.t option) option;
  on_swap : (old_digest:string -> new_digest:string -> unit) option;
  mutable listen_fd : Unix.file_descr option;
  bound_port : int;
  mutable conns : conn list;
  drain_flag : bool Atomic.t;
  reload_flag : bool Atomic.t;
  mutable next_srv_id : int;
  mutable batch_ordinal : int;
  (* counters *)
  mutable connections : int;
  mutable refused_connections : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable requests : int;
  mutable responses : int;
  mutable protocol_errors : int;
  mutable dropped_responses : int;
  mutable reloads : int;  (* reload requests that committed a swap *)
  mutable reload_noops : int;  (* reloads resolving to the active digest *)
  mutable reload_failures : int;  (* no source, or the source had nothing *)
  mutable drained : bool;
  mutable finished : bool;
}

let create ?(tracer = Tracer.disabled) ?(tracer_slot = 0) ?reload ?on_swap
    ~server config =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try
     Unix.bind fd addr;
     Unix.listen fd 128
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  { config;
    server;
    tracer;
    tracer_slot;
    probe = Server.probe server;
    batcher =
      Batcher.create ~capacity:config.queue_capacity
        ~batch_max:config.batch_max ();
    reload_source = reload;
    on_swap;
    listen_fd = Some fd;
    bound_port;
    conns = [];
    drain_flag = Atomic.make false;
    reload_flag = Atomic.make false;
    next_srv_id = 0;
    batch_ordinal = 0;
    connections = 0;
    refused_connections = 0;
    frames_in = 0;
    frames_out = 0;
    requests = 0;
    responses = 0;
    protocol_errors = 0;
    dropped_responses = 0;
    reloads = 0;
    reload_noops = 0;
    reload_failures = 0;
    drained = false;
    finished = false }

let port t = t.bound_port
let request_drain t = Atomic.set t.drain_flag true
let request_reload t = Atomic.set t.reload_flag true

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> request_reload t))

(* Hot-swap, executed on the event-loop domain strictly between dispatches:
   run_batch is synchronous, so no admitted request is mid-flight — every
   in-flight request has already finished on the old weights, and every
   request dispatched after this point sees only the new ones. Queued
   requests are untouched (they were admitted, they will be answered; which
   model answers them is decided by when their batch dispatches, exactly as
   it would be with a request racing a swap over TCP). *)
let do_reload t =
  match t.reload_source with
  | None -> t.reload_failures <- t.reload_failures + 1
  | Some source -> (
      let ordinal = t.reloads + t.reload_noops + 1 in
      match source ordinal with
      | None -> t.reload_failures <- t.reload_failures + 1
      | Some model -> (
          let old_digest = Server.model_digest t.server in
          match Server.swap_model t.server model with
          | `Unchanged _ -> t.reload_noops <- t.reload_noops + 1
          | `Swapped d ->
              t.reloads <- t.reloads + 1;
              (match t.on_swap with
              | Some f -> f ~old_digest ~new_digest:d
              | None -> ())))

(* --- connection plumbing ----------------------------------------------------- *)

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    c.reading <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + w
  done

(* Returns [true] when the frame reached the wire. *)
let send t c msg =
  if not c.alive then false
  else
    match write_all c.fd (Codec.encode msg) with
    | () ->
        t.frames_out <- t.frames_out + 1;
        Probe.incr t.probe Probe.Net_frame_out;
        true
    | exception Unix.Unix_error _ ->
        close_conn t c;
        false

let answered t c =
  c.outstanding <- c.outstanding - 1;
  if c.closing && c.outstanding <= 0 then close_conn t c

let refusal ~reason (wr : Codec.wire_request) =
  { Codec.rs_id = wr.Codec.rq_id;
    rs_status = "overloaded";
    rs_program = None;
    rs_nn_tokens = [];
    rs_score = 0.0;
    rs_from_cache = false;
    rs_degraded = false;
    rs_attempts = 0;
    rs_worker = 0;
    rs_notifications = 0;
    rs_side_effects = 0;
    rs_error = Some reason;
    rs_total_ns = 0.0;
    rs_queue_ns = 0.0 }

let protocol_error t c =
  t.protocol_errors <- t.protocol_errors + 1;
  (* The stream can no longer be trusted, so no farewell frame: any
     responses still owed to this connection will count as dropped. *)
  close_conn t c

let mark_eof t c =
  c.reading <- false;
  c.closing <- true;
  if c.outstanding <= 0 then close_conn t c

(* --- dispatch ---------------------------------------------------------------- *)

let dispatch t ~now_ns =
  let batch = Batcher.take t.batcher ~now_ns in
  if batch <> [] then begin
    Probe.incr t.probe Probe.Net_batch;
    let reqs =
      List.map
        (fun (it, _) ->
          Codec.request_of_wire { it.it_wr with Codec.rq_id = it.it_srv_id })
        batch
    in
    let t0 = Tracer.now_ns () in
    let resps = Server.run_batch ~batched:true t.server reqs in
    let t1 = Tracer.now_ns () in
    if Tracer.enabled t.tracer then begin
      let seed = Tracer.seed t.tracer in
      let bspan =
        Span.v ~seed ~request:t.batch_ordinal ~seq:0
          ~attrs:[ ("size", string_of_int (List.length batch)) ]
          ~start_ns:t0 ~dur_ns:(t1 -. t0) "net.batch"
      in
      Tracer.record t.tracer ~slot:t.tracer_slot bspan;
      List.iter
        (fun (it, wait) ->
          Tracer.record t.tracer ~slot:t.tracer_slot
            (Span.v ~seed ~request:it.it_srv_id ~seq:1
               ~parent:bspan.Span.id
               ~start_ns:(t0 -. wait) ~dur_ns:wait "net.queue"))
        batch
    end;
    t.batch_ordinal <- t.batch_ordinal + 1;
    let by_srv_id = Hashtbl.create (List.length batch) in
    List.iter
      (fun (it, wait) -> Hashtbl.replace by_srv_id it.it_srv_id (it, wait))
      batch;
    List.iter
      (fun (r : Response.t) ->
        match Hashtbl.find_opt by_srv_id r.Response.id with
        | None -> ()  (* run_batch answers exactly the ids submitted *)
        | Some (it, wait) ->
            let wire =
              { (Codec.wire_of_response ~queue_ns:wait r) with
                Codec.rs_id = it.it_wr.Codec.rq_id }
            in
            if send t it.it_conn (Codec.Response wire) then
              t.responses <- t.responses + 1
            else t.dropped_responses <- t.dropped_responses + 1;
            answered t it.it_conn)
      resps
  end

(* --- stats ------------------------------------------------------------------- *)

type stats = {
  connections : int;
  refused_connections : int;
  frames_in : int;
  frames_out : int;
  requests : int;
  responses : int;
  shed : int;
  refused_draining : int;
  protocol_errors : int;
  dropped_responses : int;
  batches : int;
  max_batch : int;
  batch_histogram : (int * int) list;
  queue_wait_mean_ms : float;
  queue_wait_p50_ms : float;
  queue_wait_p95_ms : float;
  queue_wait_p99_ms : float;
  reloads : int;
  reload_noops : int;
  reload_failures : int;
  model_digest : string;
  model_kind : string;
  drained : bool;
}

let stats t =
  let b = Batcher.stats t.batcher in
  let waits = b.Batcher.queue_wait_ns in
  let ms x = x /. 1e6 in
  { connections = t.connections;
    refused_connections = t.refused_connections;
    frames_in = t.frames_in;
    frames_out = t.frames_out;
    requests = t.requests;
    responses = t.responses;
    shed = b.Batcher.shed;
    refused_draining = b.Batcher.refused_draining;
    protocol_errors = t.protocol_errors;
    dropped_responses = t.dropped_responses;
    batches = b.Batcher.batches;
    max_batch = b.Batcher.max_batch;
    batch_histogram = b.Batcher.batch_histogram;
    queue_wait_mean_ms = ms (Stat.mean waits);
    queue_wait_p50_ms = ms (Stat.percentile waits 50.0);
    queue_wait_p95_ms = ms (Stat.percentile waits 95.0);
    queue_wait_p99_ms = ms (Stat.percentile waits 99.0);
    reloads = t.reloads;
    reload_noops = t.reload_noops;
    reload_failures = t.reload_failures;
    model_digest = Server.model_digest t.server;
    model_kind = Server.model_kind t.server;
    drained = t.drained }

let stats_json t =
  let s = stats t in
  let ss = Server.stats t.server in
  Json.Obj
    [ ("connections", Json.Int s.connections);
      ("refused_connections", Json.Int s.refused_connections);
      ("frames_in", Json.Int s.frames_in);
      ("frames_out", Json.Int s.frames_out);
      ("requests", Json.Int s.requests);
      ("responses", Json.Int s.responses);
      ("shed", Json.Int s.shed);
      ("refused_draining", Json.Int s.refused_draining);
      ("protocol_errors", Json.Int s.protocol_errors);
      ("dropped_responses", Json.Int s.dropped_responses);
      ("batches", Json.Int s.batches);
      ("max_batch", Json.Int s.max_batch);
      ( "batch_histogram",
        Json.List
          (List.map
             (fun (size, count) -> Json.List [ Json.Int size; Json.Int count ])
             s.batch_histogram) );
      ("queue_wait_mean_ms", Json.Float s.queue_wait_mean_ms);
      ("queue_wait_p50_ms", Json.Float s.queue_wait_p50_ms);
      ("queue_wait_p95_ms", Json.Float s.queue_wait_p95_ms);
      ("queue_wait_p99_ms", Json.Float s.queue_wait_p99_ms);
      ("reloads", Json.Int s.reloads);
      ("reload_noops", Json.Int s.reload_noops);
      ("reload_failures", Json.Int s.reload_failures);
      ("model_digest", Json.String s.model_digest);
      ("model_kind", Json.String s.model_kind);
      ("drained", Json.Bool s.drained);
      ( "server",
        Json.Obj
          [ ("workers", Json.Int ss.Server.workers);
            ("requests", Json.Int ss.Server.requests);
            ("ok", Json.Int ss.Server.ok);
            ("errors", Json.Int ss.Server.errors);
            ("no_parse", Json.Int ss.Server.no_parse);
            ("timeouts", Json.Int ss.Server.timeouts);
            ("shed", Json.Int ss.Server.shed);
            ("retries", Json.Int ss.Server.retries);
            ("degraded", Json.Int ss.Server.degraded);
            ("model_digest", Json.String ss.Server.model_digest);
            ("model_kind", Json.String ss.Server.model_kind);
            ("swaps", Json.Int ss.Server.swaps);
            ("cache_hits", Json.Int ss.Server.cache_hits);
            ("cache_misses", Json.Int ss.Server.cache_misses);
            ("batches", Json.Int ss.Server.batches);
            ("throughput_rps", Json.Float ss.Server.throughput_rps);
            ("cumulative_rps", Json.Float ss.Server.cumulative_rps);
            ("total_seconds", Json.Float ss.Server.total_seconds);
            ("p95_ms", Json.Float ss.Server.p95_ms) ] );
      ( "stages",
        Json.Obj
          (List.map
             (fun (name, n) -> (name, Json.Int n))
             (Server.metrics_snapshot t.server).Genie_serve.Metrics.stages) )
    ]

(* --- event handling ---------------------------------------------------------- *)

let handle_msg (t : t) c msg =
  match msg with
  | Codec.Hello _ -> ()
  | Codec.Bye -> mark_eof t c
  | Codec.Drain -> request_drain t
  | Codec.Reload -> request_reload t
  | Codec.Stats_request ->
      ignore (send t c (Codec.Stats (Json.to_string_compact (stats_json t))))
  | Codec.Request wr -> (
      t.requests <- t.requests + 1;
      let now_ns = Tracer.now_ns () in
      let it = { it_conn = c; it_wr = wr; it_srv_id = t.next_srv_id } in
      match Batcher.admit t.batcher ~now_ns it with
      | `Admitted ->
          t.next_srv_id <- t.next_srv_id + 1;
          c.outstanding <- c.outstanding + 1;
          Probe.incr t.probe Probe.Net_queue
      | `Shed ->
          Probe.incr t.probe Probe.Net_shed;
          if send t c (Codec.Response (refusal ~reason:"admission queue full" wr))
          then t.responses <- t.responses + 1
          else t.dropped_responses <- t.dropped_responses + 1
      | `Draining ->
          if send t c (Codec.Response (refusal ~reason:"draining" wr)) then
            t.responses <- t.responses + 1
          else t.dropped_responses <- t.dropped_responses + 1)
  | Codec.Response _ | Codec.Stats _ ->
      (* server-to-client frames have no business arriving here *)
      protocol_error t c

let rec drain_frames (t : t) c =
  if c.alive then
    match Frame.next c.decoder with
    | Ok None -> ()
    | Error _ ->
        t.frames_in <- t.frames_in + 1;
        protocol_error t c
    | Ok (Some f) -> (
        t.frames_in <- t.frames_in + 1;
        Probe.incr t.probe Probe.Net_frame_in;
        match Codec.decode f with
        | Error _ -> protocol_error t c
        | Ok msg ->
            handle_msg t c msg;
            drain_frames t c)

let read_conn t buf c =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> mark_eof t c
  | n ->
      Frame.feed c.decoder ~len:n (Bytes.unsafe_to_string buf);
      drain_frames t c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let accept_conn t listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _addr ->
      if List.length t.conns >= t.config.max_connections then begin
        t.refused_connections <- t.refused_connections + 1;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        t.connections <- t.connections + 1;
        Probe.incr t.probe Probe.Net_accept;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        t.conns <-
          { fd;
            decoder = Frame.decoder ();
            alive = true;
            reading = true;
            outstanding = 0;
            closing = false }
          :: t.conns
      end

let close_listener t =
  match t.listen_fd with
  | None -> ()
  | Some fd ->
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- the loop ---------------------------------------------------------------- *)

let run t =
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () = ignore (Sys.signal Sys.sigpipe old_pipe) in
  let buf = Bytes.create 65536 in
  let window_ns = Float.max 0.0 t.config.batch_window_ms *. 1e6 in
  (try
     while not t.finished do
       if Atomic.get t.drain_flag && not (Batcher.draining t.batcher) then
         Batcher.start_drain t.batcher;
       if Batcher.draining t.batcher then begin
         (* Graceful drain: no new connections, no new admissions; finish
            the queue in batch_max-sized batches, flush every response,
            close everything. *)
         close_listener t;
         while Batcher.pending t.batcher > 0 do
           dispatch t ~now_ns:(Tracer.now_ns ())
         done;
         List.iter (fun c -> close_conn t c) t.conns;
         t.drained <- true;
         t.finished <- true
       end
       else begin
         (* reloads commit between dispatches; a daemon that is draining
            ignores them (the remaining requests finish on the weights they
            were admitted under) *)
         if Atomic.get t.reload_flag then begin
           Atomic.set t.reload_flag false;
           do_reload t
         end;
         let now_ns = Tracer.now_ns () in
         if Batcher.due t.batcher ~now_ns ~window_ns then dispatch t ~now_ns;
         let timeout =
           match Batcher.next_deadline_ns t.batcher ~window_ns with
           | None -> 0.05
           | Some d ->
               Float.max 0.0
                 (Float.min 0.05 ((d -. Tracer.now_ns ()) /. 1e9))
         in
         let read_fds =
           (match t.listen_fd with Some fd -> [ fd ] | None -> [])
           @ List.filter_map
               (fun c -> if c.alive && c.reading then Some c.fd else None)
               t.conns
         in
         match Unix.select read_fds [] [] timeout with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
             List.iter
               (fun fd ->
                 match t.listen_fd with
                 | Some l when fd = l -> accept_conn t l
                 | _ -> (
                     match List.find_opt (fun c -> c.fd = fd) t.conns with
                     | Some c when c.alive && c.reading -> read_conn t buf c
                     | _ -> ()))
               ready
       end
     done
   with e ->
     restore ();
     raise e);
  restore ()
