(** The network serving daemon: a long-lived TCP front end over
    {!Genie_serve.Server}.

    One single-threaded [Unix.select] event loop owns the listening socket,
    every client connection, and the {!Batcher} admission queue; all
    parsing work still happens inside the server's worker pool. The loop
    - accepts persistent connections and reads length-prefixed frames
      ({!Frame}) into per-connection incremental decoders,
    - admits decoded requests into the bounded queue (answering [Shed] /
      draining refusals inline with an [overloaded] response),
    - when a micro-batch comes due — queue at [batch_max], oldest request
      older than the batch window, or draining — takes it and routes it
      through {!Genie_serve.Server.run_batch}[ ~batched:true], one pool
      crossing per worker,
    - writes each response frame back on the connection that sent the
      request (client request ids are scoped per connection; the daemon
      renumbers internally and restores the client's id on the way out).

    Graceful drain: {!request_drain} (also installed as the SIGTERM/SIGINT
    handler by {!install_signal_handlers}, and triggered remotely by a
    [Drain] frame) makes the loop stop accepting connections and admitting
    requests, dispatch everything still queued — mid-window, partial
    batches included — flush the response frames, close every socket, and
    return from {!run}. Every admitted request is answered exactly once;
    requests arriving after drain begins are refused, never dropped
    silently.

    Hot-swap: {!request_reload} (also installed as the SIGHUP handler, and
    triggered remotely by a [Reload] frame) makes the loop ask its reload
    source for a fresh model and {!Genie_serve.Server.swap_model} it in,
    strictly between micro-batch dispatches — no request is ever answered
    by a half-loaded model, and every response comes from exactly the model
    that was active when its batch dispatched (docs/checkpointing.md).
    Reloads arriving while draining are ignored.

    Observability: the daemon bumps the [net.*] stages on the server's
    always-on {!Genie_observe.Probe} (so they appear in
    {!Genie_serve.Server.metrics_snapshot}[.stages]) and, when given a
    tracer, records [net.batch] spans with [net.queue] children carrying
    each request's queue wait. *)

type config = {
  host : string;  (** interface to bind, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  batch_window_ms : float;
      (** how long the oldest queued request may wait before a partial
          batch dispatches; 0 dispatches every select round *)
  batch_max : int;  (** max requests per micro-batch *)
  queue_capacity : int;  (** admission queue bound; beyond it, shed *)
  max_connections : int;  (** concurrent connections; beyond it, refuse *)
}

val default_config : config
(** [127.0.0.1:0], 2 ms window, batch_max 64, capacity 1024, 128
    connections. *)

type t

val create :
  ?tracer:Genie_observe.Tracer.t ->
  ?tracer_slot:int ->
  ?reload:(int -> Genie_parser_model.Model.t option) ->
  ?on_swap:(old_digest:string -> new_digest:string -> unit) ->
  server:Genie_serve.Server.t ->
  config ->
  t
(** Binds and listens immediately — {!port} is valid as soon as [create]
    returns, so a test can read the ephemeral port before spawning {!run}
    on another domain. [tracer_slot] (default 0) is the ring slot the
    daemon's spans are recorded into; pass the coordinator slot of the
    server's tracer.

    [reload] is the hot-swap model source, called on the event-loop domain
    with the 1-based reload ordinal; returning [None] (or omitting
    [reload]) counts the request as a failure and keeps the active model.
    The CLI's source re-reads the configured checkpoint path and fails
    closed — a corrupt, truncated or missing file returns [None], bumping
    [reload_failures] while the active model keeps serving. [on_swap] is
    notified after each committed swap — the CLI uses it to log the digest
    transition. *)

val port : t -> int
(** The bound port (resolves port 0 to the kernel's choice). *)

val request_drain : t -> unit
(** Ask the loop to drain and exit. Async-signal-safe and domain-safe (one
    atomic store); the loop notices on its next wakeup. Idempotent. *)

val request_reload : t -> unit
(** Ask the loop to hot-swap in a fresh model from its reload source at the
    next between-batches point. Async-signal-safe and domain-safe (one
    atomic store). Coalescing: requests arriving before the loop services
    the flag perform one reload. *)

val install_signal_handlers : t -> unit
(** Routes SIGTERM and SIGINT to {!request_drain}, SIGHUP to
    {!request_reload}. *)

val run : t -> unit
(** The blocking event loop. Returns after a drain completes: every
    admitted request answered, every connection closed, listening socket
    closed. Ignores SIGPIPE for the duration (dead clients surface as write
    errors and are counted, not fatal). *)

type stats = {
  connections : int;  (** accepted over the daemon's lifetime *)
  refused_connections : int;  (** closed immediately at [max_connections] *)
  frames_in : int;
  frames_out : int;
  requests : int;  (** request frames decoded *)
  responses : int;  (** response frames written successfully *)
  shed : int;  (** refused: admission queue full *)
  refused_draining : int;  (** refused: arrived after drain began *)
  protocol_errors : int;  (** connections killed by framing/codec errors *)
  dropped_responses : int;
      (** responses whose connection died before the write *)
  batches : int;
  max_batch : int;
  batch_histogram : (int * int) list;  (** (batch size, count) ascending *)
  queue_wait_mean_ms : float;
  queue_wait_p50_ms : float;
  queue_wait_p95_ms : float;
  queue_wait_p99_ms : float;
  reloads : int;  (** reload requests that committed a model swap *)
  reload_noops : int;  (** reloads whose model matched the active digest *)
  reload_failures : int;
      (** reloads with no source, or whose source returned [None] *)
  model_digest : string;  (** the active model's {!Genie_parser_model.Model.digest} *)
  model_kind : string;  (** ["aligner"] / ["seq2seq"] — which backend is live *)
  drained : bool;  (** true once {!run} has completed a graceful drain *)
}

val stats : t -> stats
(** Safe to call from another domain only after {!run} returns (the loop
    owns the counters); the [Stats_request] frame is the live remote way. *)

val stats_json : t -> Genie_util.Json_lite.t
(** {!stats} plus the underlying server's stats, as one JSON object — also
    the payload answered to a [Stats_request] frame. *)
