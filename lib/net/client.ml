type t = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  mutable open_ : bool;
}

let connect ?(host = "127.0.0.1") ?(retries = 50) ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec go attempt =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.02);
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let fd = go 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; decoder = Frame.decoder (); open_ = true }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise (Failure "Client: short write");
    off := !off + w
  done

let fd t = t.fd

let pump t =
  if not t.open_ then failwith "Client: closed";
  let buf = Bytes.create 65536 in
  let n =
    let rec go () =
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  if n = 0 then failwith "Client: connection closed by server"
  else begin
    Frame.feed t.decoder ~len:n (Bytes.unsafe_to_string buf);
    let rec drain acc =
      match Frame.next t.decoder with
      | Ok None -> List.rev acc
      | Error e -> failwith ("Client: bad frame: " ^ Frame.error_to_string e)
      | Ok (Some f) -> (
          match Codec.decode f with
          | Error e -> failwith ("Client: bad payload: " ^ e)
          | Ok msg -> drain (msg :: acc))
    in
    drain []
  end

let send t msg =
  if not t.open_ then failwith "Client: closed";
  write_all t.fd (Codec.encode msg)

let send_request t req = send t (Codec.Request (Codec.wire_of_request req))

let recv t =
  if not t.open_ then failwith "Client: closed";
  let read b len =
    let rec go () =
      match Unix.read t.fd b 0 len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  match Frame.read_into t.decoder ~read with
  | Error e -> failwith ("Client: bad frame: " ^ Frame.error_to_string e)
  | Ok None ->
      if Frame.pending_bytes t.decoder > 0 then
        failwith "Client: connection closed mid-frame"
      else None
  | Ok (Some f) -> (
      match Codec.decode f with
      | Error e -> failwith ("Client: bad payload: " ^ e)
      | Ok msg -> Some msg)

let recv_response t =
  match recv t with
  | Some (Codec.Response r) -> r
  | Some _ -> failwith "Client: expected a response frame"
  | None -> failwith "Client: connection closed while awaiting response"

let rpc t req =
  send_request t req;
  recv_response t

let server_stats t =
  send t Codec.Stats_request;
  match recv t with
  | Some (Codec.Stats json) -> json
  | Some _ -> failwith "Client: expected a stats frame"
  | None -> failwith "Client: connection closed while awaiting stats"

let drain t = send t Codec.Drain
let reload t = send t Codec.Reload

let close t =
  if t.open_ then begin
    (try send t Codec.Bye with Failure _ | Unix.Unix_error _ -> ());
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
