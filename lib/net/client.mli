(** A blocking client for the {!Daemon} protocol: one persistent TCP
    connection, framed with {!Frame} and {!Codec}.

    Requests and responses are decoupled — {!send} writes a frame, {!recv}
    blocks for the next inbound frame — so callers can pipeline many
    requests on one connection before collecting responses (the load
    generator's mode) or use the {!rpc} convenience for strict
    request/response turns. *)

type t

val connect : ?host:string -> ?retries:int -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"]. [retries] (default 50) is how many
    times to retry a refused connection at 20 ms intervals — absorbs the
    startup race against a daemon that is still binding on another domain
    or in a child process. *)

val fd : t -> Unix.file_descr
(** The raw socket, for callers multiplexing many clients under one
    [Unix.select] (the load generator). *)

val pump : t -> Codec.msg list
(** One [Unix.read] (blocking when no data is available — call it after
    [select] reports the socket readable) fed into the frame decoder;
    returns every message the read completed, oldest first. Raises
    [Failure] on EOF or a framing/codec error. *)

val send : t -> Codec.msg -> unit
val send_request : t -> Genie_serve.Request.t -> unit

val recv : t -> Codec.msg option
(** Blocks for the next frame; [None] on clean EOF. Raises [Failure] on a
    framing or codec error (including EOF inside a frame). *)

val recv_response : t -> Codec.wire_response
(** {!recv}, insisting on a [Response] frame. *)

val rpc : t -> Genie_serve.Request.t -> Codec.wire_response
(** [send_request] then [recv_response]. *)

val server_stats : t -> string
(** Sends [Stats_request] and returns the daemon's JSON stats string. *)

val drain : t -> unit
(** Sends a [Drain] frame — the remote equivalent of SIGTERM. *)

val reload : t -> unit
(** Sends a [Reload] frame — the remote equivalent of SIGHUP: the daemon
    hot-swaps in a fresh model from its reload source between batches. *)

val close : t -> unit
(** Sends [Bye] (best effort) and closes the socket. Idempotent. *)
