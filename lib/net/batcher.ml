(* Single-owner bounded FIFO + micro-batch take. No locks: the daemon's
   event loop is the only writer and reader; tests drive it with a virtual
   clock. *)

type 'a t = {
  capacity : int;
  batch_max : int;
  q : ('a * float) Queue.t;  (* item, admission timestamp ns *)
  mutable is_draining : bool;
  mutable admitted : int;
  mutable shed : int;
  mutable refused_draining : int;
  mutable batches : int;
  mutable max_batch : int;
  hist : (int, int ref) Hashtbl.t;  (* batch size -> count *)
  mutable wait_samples : float array;
  mutable wait_n : int;
}

let max_wait_samples = 65536

let create ?(capacity = 1024) ?(batch_max = 64) () =
  { capacity = max 1 capacity;
    batch_max = max 1 batch_max;
    q = Queue.create ();
    is_draining = false;
    admitted = 0;
    shed = 0;
    refused_draining = 0;
    batches = 0;
    max_batch = 0;
    hist = Hashtbl.create 16;
    wait_samples = Array.make 256 0.0;
    wait_n = 0 }

let pending t = Queue.length t.q

let admit t ~now_ns item =
  if t.is_draining then begin
    t.refused_draining <- t.refused_draining + 1;
    `Draining
  end
  else if Queue.length t.q >= t.capacity then begin
    t.shed <- t.shed + 1;
    `Shed
  end
  else begin
    Queue.push (item, now_ns) t.q;
    t.admitted <- t.admitted + 1;
    `Admitted
  end

let due t ~now_ns ~window_ns =
  match Queue.peek_opt t.q with
  | None -> false
  | Some (_, enq_ns) ->
      t.is_draining
      || Queue.length t.q >= t.batch_max
      || now_ns -. enq_ns >= window_ns

let next_deadline_ns t ~window_ns =
  match Queue.peek_opt t.q with
  | None -> None
  | Some (_, enq_ns) -> Some (enq_ns +. window_ns)

let record_wait t w =
  if t.wait_n < max_wait_samples then begin
    if t.wait_n >= Array.length t.wait_samples then begin
      let bigger =
        Array.make (min max_wait_samples (2 * Array.length t.wait_samples)) 0.0
      in
      Array.blit t.wait_samples 0 bigger 0 t.wait_n;
      t.wait_samples <- bigger
    end;
    t.wait_samples.(t.wait_n) <- w;
    t.wait_n <- t.wait_n + 1
  end

let take t ~now_ns =
  let rec go n acc =
    if n >= t.batch_max then List.rev acc
    else
      match Queue.take_opt t.q with
      | None -> List.rev acc
      | Some (item, enq_ns) ->
          let wait = Float.max 0.0 (now_ns -. enq_ns) in
          record_wait t wait;
          go (n + 1) ((item, wait) :: acc)
  in
  let batch = go 0 [] in
  let size = List.length batch in
  if size > 0 then begin
    t.batches <- t.batches + 1;
    t.max_batch <- max t.max_batch size;
    match Hashtbl.find_opt t.hist size with
    | Some r -> incr r
    | None -> Hashtbl.add t.hist size (ref 1)
  end;
  batch

let start_drain t = t.is_draining <- true
let draining t = t.is_draining

type stats = {
  admitted : int;
  shed : int;
  refused_draining : int;
  batches : int;
  max_batch : int;
  batch_histogram : (int * int) list;
  queue_wait_ns : float array;
}

let stats (t : 'a t) =
  { admitted = t.admitted;
    shed = t.shed;
    refused_draining = t.refused_draining;
    batches = t.batches;
    max_batch = t.max_batch;
    batch_histogram =
      Hashtbl.fold (fun size r acc -> (size, !r) :: acc) t.hist []
      |> List.sort compare;
    queue_wait_ns = Array.sub t.wait_samples 0 t.wait_n }
