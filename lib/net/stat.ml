let percentile samples p =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
    sorted.(min (n - 1) (rank - 1))
  end

let mean samples =
  let n = Array.length samples in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 samples /. float_of_int n
