(** Length-prefixed wire framing for the network serving protocol.

    Every message on a connection is one frame:

    {v
    offset 0  magic   2 bytes  'G' 'N'
    offset 2  version 1 byte   (currently 1)
    offset 3  kind    1 byte   (opaque here; {!Codec} assigns meaning)
    offset 4  length  4 bytes  big-endian payload byte count
    offset 8  payload [length] bytes
    v}

    The codec core is pure: {!encode} builds bytes, and a {!decoder} is fed
    arbitrary byte chunks (however the socket delivered them — including one
    byte at a time) and yields complete frames in order. Nothing here
    touches file descriptors, so the whole protocol layer is testable
    without sockets; {!read_into} is the one convenience bridge for callers
    that do own an fd-shaped [read] function. *)

type t = { kind : int; payload : string }

val magic0 : char
val magic1 : char
val version : int
val header_bytes : int

val default_max_payload : int
(** 8 MiB — far above any real request or response, low enough that a
    corrupt length prefix cannot make a decoder buffer the universe. *)

type error =
  | Bad_magic of int * int  (** the two bytes seen where magic belonged *)
  | Bad_version of int
  | Oversized of int  (** declared payload length above the decoder's max *)

val error_to_string : error -> string

val encode : t -> string
(** The frame's exact wire bytes. Raises [Invalid_argument] if [kind] is
    outside [0, 255] or the payload exceeds {!default_max_payload}. *)

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_payload:int -> unit -> decoder
(** A fresh decoder. [max_payload] (default {!default_max_payload}) bounds
    the declared payload length a frame may carry. *)

val feed : decoder -> ?off:int -> ?len:int -> string -> unit
(** Appends raw bytes (by default the whole string) to the decoder's buffer.
    Cheap; no parsing happens until {!next}. *)

val next : decoder -> (t option, error) result
(** [Ok (Some frame)] pops the next complete frame; [Ok None] means the
    buffered bytes are a (possibly empty) prefix of a frame — feed more.
    [Error _] means the stream is corrupt at the current position; the
    decoder is poisoned and every later call returns the same error
    (framing cannot resynchronize after garbage). *)

val pending_bytes : decoder -> int
(** Bytes buffered but not yet consumed by a complete frame — non-zero at
    end-of-stream means the peer sent a truncated frame. *)

val read_into :
  decoder -> read:(bytes -> int -> int) -> (t option, error) result
(** Pulls from [read buf len] (a [Unix.read]-shaped function returning 0 at
    end of stream) until a complete frame, end of stream ([Ok None] with
    {!pending_bytes}[ > 0] indicating truncation), or a framing error. *)
