(** The client-side load generator behind [genie loadgen].

    Drives a {!Daemon} with Zipfian traffic ({!Genie_serve.Traffic}) over
    [users] concurrent persistent connections, multiplexed under one
    [Unix.select] and fully pipelined: request [i] rides connection
    [i mod users], and responses are collected as they arrive.

    Arrivals are {e open-loop}: a seeded exponential schedule is fixed
    before the run ([rate_rps]; 0 means "as fast as possible"), each
    request is sent when its scheduled arrival passes regardless of how the
    server is doing, and its latency is measured from the {e scheduled}
    arrival to response completion — so server-side queueing delay is
    charged to the server, not silently absorbed by a slow client (no
    coordinated omission).

    Everything is deterministic for a given seed except wall-clock timing:
    the request stream is exactly
    [Traffic.generate ~s ~rng:(Rng.create seed) ~utterances n], which is
    what lets a verifier recompute the expected response digest without
    talking to the network. *)

type config = {
  host : string;
  port : int;
  users : int;  (** concurrent persistent connections (min 1) *)
  requests : int;
  rate_rps : float;  (** open-loop arrival rate; 0 = maximum pressure *)
  zipf_s : float;  (** Zipf skew of the utterance popularity *)
  seed : int;
  execute : bool;  (** ask the server to execute parsed programs *)
  ticks : int;  (** virtual clock ticks per executed program *)
}

val default_config : config
(** [127.0.0.1], port 0 (caller must set), 4 users, 200 requests, rate 0,
    zipf 1.1, seed 1, execute false, ticks 3. *)

type report = {
  sent : int;
  received : int;
  ok : int;
  overloaded : int;
  other : int;  (** responses that were neither [ok] nor [overloaded] *)
  elapsed_s : float;
  rps : float;  (** received / elapsed *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;  (** scheduled-arrival-to-completion *)
  queue_wait_p50_ms : float;
  queue_wait_p95_ms : float;
  queue_wait_p99_ms : float;
      (** server-reported admission-queue waits, from the response frames *)
  digest : string;  (** {!Codec.digest} over every received response *)
  server_stats : string;  (** the daemon's stats JSON, fetched at the end *)
}

val run : utterances:string list -> config -> report
(** Blocks until every request is answered (raises [Failure "loadgen \
    stalled"] after 30 s without progress). The caller owns daemon startup
    and shutdown. *)

val expected_requests : utterances:string list -> config -> Genie_serve.Request.t list
(** The exact request stream [run] sends — for a verifier to replay through
    an in-process {!Genie_serve.Server.run_batch} and compare digests. *)

val report_json : report -> Genie_util.Json_lite.t
(** Everything except [server_stats] (already JSON; embed it separately). *)
