(** Bounded admission queue with micro-batch draining — the heart of the
    network front end's "make the pool win" story.

    Requests are admitted into one FIFO as they arrive off the sockets. The
    dispatcher takes them out again in micro-batches: a batch becomes {!due}
    when the queue holds [batch_max] requests, when the oldest waiting
    request has aged past the batch window, or when the batcher is draining
    (shutdown wants the queue empty, window be damned). One batch then costs
    one {!Genie_serve.Server.run_batch} call — one pool crossing per worker
    — instead of a crossing per request.

    The batcher is a passive, single-owner state machine over an injected
    clock: the daemon drives it from its event loop with real timestamps,
    and the drain tests drive it with a scripted virtual clock, which is how
    "shutdown mid-batch answers every admitted request exactly once" can be
    asserted deterministically. *)

type 'a t
(** ['a] is whatever the owner needs back per request — the daemon uses
    (connection, wire request) pairs. *)

val create : ?capacity:int -> ?batch_max:int -> unit -> 'a t
(** [capacity] (default 1024) bounds the queue: admission beyond it sheds.
    [batch_max] (default 64) caps how many requests one {!take} returns. *)

val admit : 'a t -> now_ns:float -> 'a -> [ `Admitted | `Shed | `Draining ]
(** [`Shed] when the queue is full, [`Draining] once {!start_drain} has been
    called — in both cases the item was NOT queued and the caller must
    answer it (overload response / connection refusal) itself. *)

val pending : 'a t -> int

val due : 'a t -> now_ns:float -> window_ns:float -> bool
(** Whether {!take} should run now: queue at [batch_max], oldest item older
    than [window_ns], or draining with work left. False on an empty queue. *)

val next_deadline_ns : 'a t -> window_ns:float -> float option
(** When the oldest queued item's window expires (its admission time plus
    [window_ns]) — the select timeout that wakes the dispatcher exactly when
    a batch becomes due. [None] when the queue is empty. *)

val take : 'a t -> now_ns:float -> ('a * float) list
(** Dequeues up to [batch_max] items in admission order, each with its
    queue wait in nanoseconds. Records the batch in the size histogram. *)

val start_drain : 'a t -> unit
(** Refuse all later {!admit}s; {!due} stays true until {!pending} is 0.
    Idempotent. *)

val draining : 'a t -> bool

type stats = {
  admitted : int;
  shed : int;  (** refused because the queue was full *)
  refused_draining : int;  (** refused because drain had begun *)
  batches : int;
  max_batch : int;
  batch_histogram : (int * int) list;  (** (batch size, count), ascending *)
  queue_wait_ns : float array;  (** per-request waits, admission order *)
}

val stats : 'a t -> stats
(** [queue_wait_ns] keeps the first 65536 waits verbatim (one per taken
    request) — enough for exact percentiles at benchmark scale. *)
