(** Tiny shared statistics helpers for the network layer's latency arrays
    (client-side load-generator latencies, server-side queue waits). *)

val percentile : float array -> float -> float
(** Nearest-rank percentile (0 < p <= 100) over a copy of the array; 0 on
    the empty array. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)
