module Traffic = Genie_serve.Traffic
module Rng = Genie_util.Rng
module Tracer = Genie_observe.Tracer
module Json = Genie_util.Json_lite

type config = {
  host : string;
  port : int;
  users : int;
  requests : int;
  rate_rps : float;
  zipf_s : float;
  seed : int;
  execute : bool;
  ticks : int;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    users = 4;
    requests = 200;
    rate_rps = 0.0;
    zipf_s = 1.1;
    seed = 1;
    execute = false;
    ticks = 3 }

type report = {
  sent : int;
  received : int;
  ok : int;
  overloaded : int;
  other : int;
  elapsed_s : float;
  rps : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_p99_ms : float;
  queue_wait_p50_ms : float;
  queue_wait_p95_ms : float;
  queue_wait_p99_ms : float;
  digest : string;
  server_stats : string;
}

let expected_requests ~utterances cfg =
  Traffic.generate ~s:cfg.zipf_s ~execute:cfg.execute ~ticks:cfg.ticks
    ~rng:(Rng.create cfg.seed) ~utterances cfg.requests

(* Scheduled arrival offsets in ns from run start: exponential inter-arrivals
   at [rate_rps] from a generator split off the traffic seed, or all-zero for
   maximum pressure. Fixed before the run — the open-loop part. *)
let schedule cfg n =
  if cfg.rate_rps <= 0.0 then Array.make n 0.0
  else begin
    let rng = Rng.create (cfg.seed lxor 0x10adeb) in
    let a = Array.make n 0.0 in
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      let u = Rng.float rng 1.0 in
      let dt = -.log (1.0 -. u) /. cfg.rate_rps in
      t := !t +. dt;
      a.(i) <- !t *. 1e9
    done;
    a
  end

(* Bounds how far actual sends may run ahead of reads: without it, "rate 0"
   pushes every request before draining any responses, and the two kernel
   socket buffers can fill in opposite directions (daemon blocked writing
   responses we are not reading, us blocked writing requests it is not
   reading). Scheduled arrivals are unaffected — a send delayed by the cap
   still has its latency measured from the scheduled time. *)
let max_inflight = 256

let run ~utterances cfg =
  let n = cfg.requests in
  if n <= 0 then invalid_arg "Loadgen.run: requests must be positive";
  let users = max 1 cfg.users in
  let reqs = Array.of_list (expected_requests ~utterances cfg) in
  let sched = schedule cfg n in
  let conns =
    Array.init users (fun _ ->
        Client.connect ~host:cfg.host ~port:cfg.port ())
  in
  let start_ns = Tracer.now_ns () in
  let latency_ns = Array.make n Float.nan in
  let responses = ref [] in
  let sent = ref 0 in
  let received = ref 0 in
  let last_progress = ref start_ns in
  while !received < n do
    let now = Tracer.now_ns () -. start_ns in
    while
      !sent < n && sched.(!sent) <= now && !sent - !received < max_inflight
    do
      let i = !sent in
      Client.send_request conns.(i mod users) reqs.(i);
      incr sent;
      last_progress := Tracer.now_ns ()
    done;
    let timeout =
      if !sent < n && !sent - !received < max_inflight then
        Float.max 0.0
          (Float.min 0.05
             ((sched.(!sent) -. (Tracer.now_ns () -. start_ns)) /. 1e9))
      else 0.05
    in
    let fds = Array.to_list (Array.map Client.fd conns) in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            let c =
              Array.to_list conns |> List.find (fun c -> Client.fd c = fd)
            in
            List.iter
              (function
                | Codec.Response r ->
                    let id = r.Codec.rs_id in
                    if id >= 0 && id < n && Float.is_nan latency_ns.(id)
                    then begin
                      let done_ns = Tracer.now_ns () -. start_ns in
                      latency_ns.(id) <- Float.max 0.0 (done_ns -. sched.(id));
                      responses := r :: !responses;
                      incr received;
                      last_progress := Tracer.now_ns ()
                    end
                | _ -> ())
              (Client.pump c))
          ready);
    if Tracer.now_ns () -. !last_progress > 30e9 then
      failwith "loadgen stalled"
  done;
  let elapsed_s = (Tracer.now_ns () -. start_ns) /. 1e9 in
  let server_stats = Client.server_stats conns.(0) in
  Array.iter Client.close conns;
  let rs = !responses in
  let count p = List.length (List.filter p rs) in
  let ok = count (fun r -> r.Codec.rs_status = "ok") in
  let overloaded = count (fun r -> r.Codec.rs_status = "overloaded") in
  let lats = Array.of_list (Array.to_list latency_ns |> List.filter (fun x -> not (Float.is_nan x))) in
  let waits = Array.of_list (List.map (fun r -> r.Codec.rs_queue_ns) rs) in
  let ms x = x /. 1e6 in
  { sent = !sent;
    received = !received;
    ok;
    overloaded;
    other = !received - ok - overloaded;
    elapsed_s;
    rps = (if elapsed_s <= 0.0 then 0.0 else float_of_int !received /. elapsed_s);
    latency_mean_ms = ms (Stat.mean lats);
    latency_p50_ms = ms (Stat.percentile lats 50.0);
    latency_p95_ms = ms (Stat.percentile lats 95.0);
    latency_p99_ms = ms (Stat.percentile lats 99.0);
    queue_wait_p50_ms = ms (Stat.percentile waits 50.0);
    queue_wait_p95_ms = ms (Stat.percentile waits 95.0);
    queue_wait_p99_ms = ms (Stat.percentile waits 99.0);
    digest = Codec.digest rs;
    server_stats }

let report_json r =
  Json.Obj
    [ ("sent", Json.Int r.sent);
      ("received", Json.Int r.received);
      ("ok", Json.Int r.ok);
      ("overloaded", Json.Int r.overloaded);
      ("other", Json.Int r.other);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("rps", Json.Float r.rps);
      ("latency_mean_ms", Json.Float r.latency_mean_ms);
      ("latency_p50_ms", Json.Float r.latency_p50_ms);
      ("latency_p95_ms", Json.Float r.latency_p95_ms);
      ("latency_p99_ms", Json.Float r.latency_p99_ms);
      ("queue_wait_p50_ms", Json.Float r.queue_wait_p50_ms);
      ("queue_wait_p95_ms", Json.Float r.queue_wait_p95_ms);
      ("queue_wait_p99_ms", Json.Float r.queue_wait_p99_ms);
      ("digest", Json.String r.digest) ]
