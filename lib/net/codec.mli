(** The versioned message codec riding on {!Frame}: what each frame kind
    means and how request/response payloads are laid out.

    Payloads are a fixed binary layout (big-endian fixed-width integers,
    IEEE-754 bit patterns for floats, length-prefixed strings), so encoding
    is canonical: equal messages encode to equal bytes, which is what lets
    the loopback smoke test compare whole response streams by digest.

    Like {!Frame}, everything here is pure — encode to a string, decode from
    a {!Frame.t} — so the protocol round-trips under test without a socket
    in sight. *)

type wire_request = {
  rq_id : int;
  rq_utterance : string;
  rq_execute : bool;
  rq_ticks : int;
  rq_deadline_ms : float option;
}

type wire_response = {
  rs_id : int;
  rs_status : string;  (** {!Genie_serve.Response.status_to_string} form *)
  rs_program : string option;
  rs_nn_tokens : string list;
  rs_score : float;
  rs_from_cache : bool;
  rs_degraded : bool;
  rs_attempts : int;
  rs_worker : int;
  rs_notifications : int;
  rs_side_effects : int;
  rs_error : string option;
  rs_total_ns : float;  (** server-side engine time for this request *)
  rs_queue_ns : float;  (** time spent in the admission queue *)
}

type msg =
  | Hello of string  (** client identification, sent once per connection *)
  | Request of wire_request
  | Response of wire_response
  | Stats_request
  | Stats of string  (** daemon stats as a JSON document *)
  | Drain  (** ask the daemon to drain gracefully and exit *)
  | Bye  (** client is done; the daemon may close the connection *)
  | Reload  (** ask the daemon to hot-swap in a fresh model (remote SIGHUP) *)

val encode : msg -> string
(** The message's complete wire bytes (frame header included). *)

val decode : Frame.t -> (msg, string) result
(** Decodes one frame's payload; [Error] explains the corruption (unknown
    kind, truncated or trailing payload bytes). *)

(** {2 Conversions to and from the serving layer} *)

val wire_of_request : Genie_serve.Request.t -> wire_request
val request_of_wire : wire_request -> Genie_serve.Request.t

val wire_of_response :
  ?queue_ns:float -> Genie_serve.Response.t -> wire_response
(** [queue_ns] (default 0) is the admission-queue wait the daemon measured
    for this request; the in-process comparison path leaves it 0. *)

(** {2 Response-stream digests} *)

val response_line : wire_response -> string
(** The canonical one-line rendering of a response's deterministic fields —
    id, status, program, tokens, score, degraded flag, attempts, error,
    notification and side-effect counts. Excluded because they legitimately
    vary between serving paths while everything else must be byte-stable:
    timing, the worker index, and [from_cache] (which of two concurrent
    connections carrying the same utterance reaches the server first is a
    TCP race, so hit/miss can swap between ids even though the answers —
    and the total hit count — cannot change). *)

val digest : wire_response list -> string
(** MD5 hex over {!response_line}s sorted by request id — equal iff two
    serving paths answered the same request stream identically. *)

val digest_of_responses : Genie_serve.Response.t list -> string
(** {!digest} of the in-process responses, for comparing a socket-served
    stream against {!Genie_serve.Server.run_batch} on the same requests. *)
