(* Binary payload codec. Integers are big-endian fixed width; floats travel
   as their IEEE-754 bit pattern (lossless, canonical); strings and lists
   are length-prefixed. Decoding is a cursor walk that fails loudly on
   truncated or trailing bytes — a frame either decodes exactly or not at
   all. *)

module Request = Genie_serve.Request
module Response = Genie_serve.Response

type wire_request = {
  rq_id : int;
  rq_utterance : string;
  rq_execute : bool;
  rq_ticks : int;
  rq_deadline_ms : float option;
}

type wire_response = {
  rs_id : int;
  rs_status : string;
  rs_program : string option;
  rs_nn_tokens : string list;
  rs_score : float;
  rs_from_cache : bool;
  rs_degraded : bool;
  rs_attempts : int;
  rs_worker : int;
  rs_notifications : int;
  rs_side_effects : int;
  rs_error : string option;
  rs_total_ns : float;
  rs_queue_ns : float;
}

type msg =
  | Hello of string
  | Request of wire_request
  | Response of wire_response
  | Stats_request
  | Stats of string
  | Drain
  | Bye
  | Reload

let kind_of = function
  | Hello _ -> 1
  | Request _ -> 2
  | Response _ -> 3
  | Stats_request -> 4
  | Stats _ -> 5
  | Drain -> 6
  | Bye -> 7
  | Reload -> 8

(* --- writers ---------------------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Codec: u32 out of range";
  w_u8 b (v lsr 24);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 8);
  w_u8 b v

let w_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt_string b = function
  | None -> w_u8 b 0
  | Some s ->
      w_u8 b 1;
      w_string b s

let w_string_list b l =
  w_u32 b (List.length l);
  List.iter (w_string b) l

(* --- readers ---------------------------------------------------------------- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let r_u8 c =
  if c.pos >= String.length c.s then raise (Bad "truncated payload");
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let a = r_u8 c in
  let b = r_u8 c in
  let d = r_u8 c in
  let e = r_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let r_f64 c =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 c))
  done;
  Int64.float_of_bits !bits

let r_bool c = r_u8 c <> 0

let r_string c =
  let n = r_u32 c in
  if c.pos + n > String.length c.s then raise (Bad "truncated string");
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let r_opt_string c = if r_u8 c = 0 then None else Some (r_string c)

let r_string_list c =
  let n = r_u32 c in
  List.init n (fun _ -> r_string c)

(* --- message payloads ------------------------------------------------------- *)

let payload_of = function
  | Hello client ->
      let b = Buffer.create 32 in
      w_string b client;
      Buffer.contents b
  | Request r ->
      let b = Buffer.create 64 in
      w_u32 b r.rq_id;
      w_string b r.rq_utterance;
      w_bool b r.rq_execute;
      w_u32 b r.rq_ticks;
      (match r.rq_deadline_ms with
      | None -> w_u8 b 0
      | Some d ->
          w_u8 b 1;
          w_f64 b d);
      Buffer.contents b
  | Response r ->
      let b = Buffer.create 128 in
      w_u32 b r.rs_id;
      w_string b r.rs_status;
      w_opt_string b r.rs_program;
      w_string_list b r.rs_nn_tokens;
      w_f64 b r.rs_score;
      w_bool b r.rs_from_cache;
      w_bool b r.rs_degraded;
      w_u32 b r.rs_attempts;
      w_u32 b r.rs_worker;
      w_u32 b r.rs_notifications;
      w_u32 b r.rs_side_effects;
      w_opt_string b r.rs_error;
      w_f64 b r.rs_total_ns;
      w_f64 b r.rs_queue_ns;
      Buffer.contents b
  | Stats_request -> ""
  | Stats json ->
      let b = Buffer.create (String.length json + 8) in
      w_string b json;
      Buffer.contents b
  | Drain -> ""
  | Bye -> ""
  | Reload -> ""

let encode m = Frame.encode { Frame.kind = kind_of m; payload = payload_of m }

let decode (f : Frame.t) =
  let c = { s = f.Frame.payload; pos = 0 } in
  match
    (match f.Frame.kind with
    | 1 -> Hello (r_string c)
    | 2 ->
        let rq_id = r_u32 c in
        let rq_utterance = r_string c in
        let rq_execute = r_bool c in
        let rq_ticks = r_u32 c in
        let rq_deadline_ms = if r_u8 c = 0 then None else Some (r_f64 c) in
        Request
          { rq_id; rq_utterance; rq_execute; rq_ticks; rq_deadline_ms }
    | 3 ->
        let rs_id = r_u32 c in
        let rs_status = r_string c in
        let rs_program = r_opt_string c in
        let rs_nn_tokens = r_string_list c in
        let rs_score = r_f64 c in
        let rs_from_cache = r_bool c in
        let rs_degraded = r_bool c in
        let rs_attempts = r_u32 c in
        let rs_worker = r_u32 c in
        let rs_notifications = r_u32 c in
        let rs_side_effects = r_u32 c in
        let rs_error = r_opt_string c in
        let rs_total_ns = r_f64 c in
        let rs_queue_ns = r_f64 c in
        Response
          { rs_id; rs_status; rs_program; rs_nn_tokens; rs_score;
            rs_from_cache; rs_degraded; rs_attempts; rs_worker;
            rs_notifications; rs_side_effects; rs_error; rs_total_ns;
            rs_queue_ns }
    | 4 -> Stats_request
    | 5 -> Stats (r_string c)
    | 6 -> Drain
    | 7 -> Bye
    | 8 -> Reload
    | k -> raise (Bad (Printf.sprintf "unknown frame kind %d" k)))
  with
  | m ->
      if c.pos <> String.length c.s then
        Error
          (Printf.sprintf "trailing payload bytes (%d of %d consumed)" c.pos
             (String.length c.s))
      else Ok m
  | exception Bad e -> Error e

(* --- serving-layer conversions ---------------------------------------------- *)

let wire_of_request (r : Request.t) =
  { rq_id = r.Request.id;
    rq_utterance = r.Request.utterance;
    rq_execute = r.Request.execute;
    rq_ticks = r.Request.ticks;
    rq_deadline_ms = Option.map (fun ns -> ns /. 1e6) r.Request.deadline_ns }

let request_of_wire w =
  Request.make ~execute:w.rq_execute ~ticks:w.rq_ticks
    ?deadline_ms:w.rq_deadline_ms ~id:w.rq_id w.rq_utterance

let wire_of_response ?(queue_ns = 0.0) (r : Response.t) =
  { rs_id = r.Response.id;
    rs_status = Response.status_to_string r.Response.status;
    rs_program = r.Response.program_text;
    rs_nn_tokens = r.Response.nn_tokens;
    rs_score = r.Response.score;
    rs_from_cache = r.Response.from_cache;
    rs_degraded = r.Response.degraded;
    rs_attempts = r.Response.attempts;
    rs_worker = r.Response.worker;
    rs_notifications = r.Response.notifications;
    rs_side_effects = r.Response.side_effects;
    rs_error = r.Response.error;
    rs_total_ns = r.Response.timing.Response.total_ns;
    rs_queue_ns = queue_ns }

(* --- digests ----------------------------------------------------------------- *)

(* Timing, the worker index and from_cache are the fields that may
   legitimately vary between serving paths (cache hit/miss attribution
   among equal utterances follows arrival order, which over concurrent
   connections is a TCP race); everything else must be byte-stable, score's
   exact bit pattern included. *)
let response_line r =
  Printf.sprintf
    "#%d %s %s [%s] score=%Lx degraded=%b attempts=%d err=%s notif=%d fx=%d"
    r.rs_id r.rs_status
    (Option.value ~default:"-" r.rs_program)
    (String.concat " " r.rs_nn_tokens)
    (Int64.bits_of_float r.rs_score)
    r.rs_degraded r.rs_attempts
    (Option.value ~default:"-" r.rs_error)
    r.rs_notifications r.rs_side_effects

let digest rs =
  let sorted = List.sort (fun a b -> compare a.rs_id b.rs_id) rs in
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map response_line sorted)))

let digest_of_responses rs = digest (List.map (wire_of_response ?queue_ns:None) rs)
