(* ThingTalk compilation: lowers a typechecked AST to flat predicate
   bytecode plus closure-threaded query/stream/action plans, with Thingpedia
   schemas pre-resolved and parameter slots pre-bound at compile time.

   The contract — enforced by test/suite_compile.ml's differential suite —
   is byte-identity with the tree-walking interpreter in Exec: same results,
   same env mutations, same RNG draw order (mock services for
   non-monitorable functions draw once per generate call), same error
   messages raised at the same evaluation point. Every runtime branch below
   mirrors a specific line of exec.ml; when editing one, edit both.

   A compiled program is specialized to the library it was compiled
   against: running it in an env built from a different library is
   unspecified (the serve layer compiles and executes against the same
   library, as does exec_compiled). Custom services registered on the env
   are still honored — the pre-resolved schema only backs the default mock
   fallback. *)

open Genie_thingtalk

type record = Exec.record

let rt_error fmt = Printf.ksprintf (fun s -> raise (Exec.Runtime_error s)) fmt

(* --- pre-bound parameter slots -------------------------------------------- *)

type slot =
  | Slot_const of string * Value.t  (* input name, literal *)
  | Slot_passed of string * string  (* input name, upstream output name *)

(* --- compiled invocations -------------------------------------------------- *)

(* One invocation site with its schema resolved once: the function-key
   string (Exec recomputes [Fn.to_string] per call), the slot array, and a
   specialized default mock service whose per-parameter hash-key prefixes
   and value generators were built at compile time. *)
type cinv = {
  ci_id : int;
  ci_fn : Ast.Fn.t;
  ci_fn_str : string;
  ci_slots : slot array;
  ci_default : Exec.service;
}

(* Mirrors the value grammar of Exec.default_value_for, specialized per
   output-parameter type so the per-row hot path is hash + one closure. *)
let compile_gen (p : Schema.param) : int -> Value.t =
  let name = p.Schema.p_name in
  let rec gen (ty : Ttype.t) : int -> Value.t =
    match ty with
    | Ttype.String -> fun h -> Value.String (Printf.sprintf "%s item %d" name (h mod 97))
    | Ttype.Number -> fun h -> Value.Number (float_of_int (h mod 1000))
    | Ttype.Boolean -> fun h -> Value.Boolean (h mod 2 = 0)
    | Ttype.Date ->
        fun h ->
          Value.Date
            (Value.D_absolute { year = 2019; month = 1 + (h mod 12); day = 1 + (h mod 28) })
    | Ttype.Time -> fun h -> Value.Time (h mod 24, h mod 60)
    | Ttype.Location -> fun h -> Value.Location (Value.L_named (Printf.sprintf "place %d" (h mod 50)))
    | Ttype.Path_name -> fun h -> Value.String (Printf.sprintf "/folder/file_%d.txt" (h mod 100))
    | Ttype.Url -> fun h -> Value.String (Printf.sprintf "https://example.com/%d" (h mod 1000))
    | Ttype.Picture -> fun h -> Value.String (Printf.sprintf "https://img.example.com/%d.jpg" (h mod 1000))
    | Ttype.Phone_number -> fun h -> Value.String (Printf.sprintf "+1555%07d" (h mod 10000000))
    | Ttype.Email_address -> fun h -> Value.String (Printf.sprintf "user%d@example.com" (h mod 1000))
    | Ttype.Currency -> fun h -> Value.Currency (float_of_int (h mod 500), "usd")
    | Ttype.Measure u -> fun h -> Value.Measure [ (float_of_int (h mod 100), u) ]
    | Ttype.Enum [] -> fun _ -> Value.Enum "none"
    | Ttype.Enum vs ->
        let arr = Array.of_list vs in
        let len = Array.length arr in
        fun h -> Value.Enum arr.(h mod len)
    | Ttype.Entity ety ->
        fun h -> Value.Entity { ty = ety; value = Printf.sprintf "%s %d" ety (h mod 200); display = None }
    | Ttype.Array elt ->
        let ge = gen elt in
        fun h -> Value.Array [ ge h; ge h ]
  in
  gen p.Schema.p_type

(* The default mock with the schema lookup, out-params, monitorability,
   row count and hash-key prefixes all resolved at compile time. Produces
   bit-identical rows to Exec.default_service (same key strings, same
   Hashtbl.hash, same single RNG draw for non-monitorable buckets). *)
let compile_default_service lib fn fn_str : Exec.service =
  match Schema.Library.find_fn lib fn with
  | None ->
      { Exec.generate =
          (fun ~now:_ ~rng:_ ~args:_ -> rt_error "no such function %s" fn_str) }
  | Some f ->
      let monitorable = Schema.is_monitorable f in
      let rows = if Schema.is_list f then 3 else 1 in
      let cols =
        Array.of_list
          (List.map
             (fun p -> (p.Schema.p_name, fn_str ^ "/" ^ p.Schema.p_name ^ "/", compile_gen p))
             (Schema.out_params f))
      in
      { Exec.generate =
          (fun ~now ~rng ~args:_ ->
            let bucket =
              if monitorable then int_of_float now / 3
              else Genie_util.Rng.int rng 1000000
            in
            let suffix = "/" ^ string_of_int bucket in
            List.init rows (fun row ->
                let rowkey = string_of_int row ^ suffix in
                Array.to_list
                  (Array.map
                     (fun (name, prefix, g) -> (name, g (Hashtbl.hash (prefix ^ rowkey))))
                     cols)))
      }

(* Slot resolution, left to right so the first unbound passed parameter
   raises — exactly like Exec.resolve_in_params over in_params order. *)
let resolve_slots (bindings : record) (ci : cinv) : record =
  let slots = ci.ci_slots in
  let n = Array.length slots in
  let rec build i =
    if i = n then []
    else
      let hd =
        match slots.(i) with
        | Slot_const (name, v) -> (name, v)
        | Slot_passed (name, out) -> (
            match List.assoc_opt out bindings with
            | Some v -> (name, v)
            | None -> rt_error "unbound output parameter %s" out)
      in
      hd :: build (i + 1)
  in
  build 0

(* Mirrors Exec.eval_invocation: resolve args, look up a custom service by
   the precomputed key (falling back to the pre-resolved default), prepend
   the args to every row. *)
let run_cinv (env : Exec.env) (bindings : record) (ci : cinv) : record list =
  let args = resolve_slots bindings ci in
  let service =
    match Hashtbl.find_opt env.Exec.services ci.ci_fn_str with
    | Some s -> s
    | None -> ci.ci_default
  in
  let results = service.Exec.generate ~now:env.Exec.now ~rng:env.Exec.rng ~args in
  List.map (fun r -> args @ r) results

(* --- predicate bytecode ----------------------------------------------------- *)

(* Flat instruction stream over a bool operand stack. Conjunctions and
   disjunctions compile to forward conditional jumps that keep the deciding
   value on the stack, preserving the interpreter's List.for_all/List.exists
   short-circuit order exactly — load-bearing because external predicates
   consume RNG when they evaluate. *)
type pinstr =
  | PI_push of bool
  | PI_not
  | PI_pop
  | PI_atom of int  (* index into the program's atom table *)
  | PI_external of int  (* index into the program's external table *)
  | PI_jfalse of int  (* jump if top is false, keeping the value *)
  | PI_jtrue of int  (* jump if top is true, keeping the value *)

type pblock = { pb_id : int; pb_code : pinstr array; pb_stack : int }

(* One comparison atom with its operator dispatch and rhs pre-processing
   (raw string extraction + lowercasing) done at compile time. *)
type atom = {
  at_id : int;
  at_lhs : string;
  at_desc : string;
  at_test : now:float -> Value.t -> bool;
}

type ext = { ex_id : int; ex_inv : cinv; ex_pred : pblock }

(* Shared tables, finalized after compilation; runtime closures index into
   them so compile-time forward references are safe. *)
type tables = { mutable atoms : atom array; mutable exts : ext array }

(* These two mirror the private helpers in exec.ml. *)
let value_compare_num ~now a b =
  match (Value.to_float ~now a, Value.to_float ~now b) with
  | Some x, Some y -> Some (compare x y)
  | _ -> None

let string_of_value_raw = function
  | Value.String s -> Some s
  | Value.Entity { value; _ } -> Some value
  | Value.Enum e -> Some e
  | _ -> None

(* Specializes Exec.eval_atom on (op, rhs): each case body is the matching
   interpreter branch with the rhs captured. *)
let compile_test (op : Ast.comp_op) (rhs : Value.t) : now:float -> Value.t -> bool =
  let str_op f =
    match Option.map String.lowercase_ascii (string_of_value_raw rhs) with
    | None -> fun ~now:_ _ -> false
    | Some b -> (
        fun ~now:_ v ->
          match string_of_value_raw v with
          | Some a -> f (String.lowercase_ascii a) b
          | None -> false)
  in
  match op with
  | Ast.Op_eq -> fun ~now v -> Value.runtime_equal ~now v rhs
  | Ast.Op_neq -> fun ~now v -> not (Value.runtime_equal ~now v rhs)
  | Ast.Op_gt -> (
      fun ~now v -> match value_compare_num ~now v rhs with Some c -> c > 0 | None -> false)
  | Ast.Op_lt -> (
      fun ~now v -> match value_compare_num ~now v rhs with Some c -> c < 0 | None -> false)
  | Ast.Op_geq -> (
      fun ~now v -> match value_compare_num ~now v rhs with Some c -> c >= 0 | None -> false)
  | Ast.Op_leq -> (
      fun ~now v -> match value_compare_num ~now v rhs with Some c -> c <= 0 | None -> false)
  | Ast.Op_substr -> str_op (fun a b -> Genie_util.Tok.contains_substring ~sub:b a)
  | Ast.Op_starts_with -> str_op (fun a b -> Genie_util.Tok.starts_with ~prefix:b a)
  | Ast.Op_ends_with -> str_op (fun a b -> Genie_util.Tok.ends_with ~suffix:b a)
  | Ast.Op_contains ->
      let str = str_op (fun a b -> Genie_util.Tok.contains_substring ~sub:b a) in
      fun ~now v -> (
        match v with
        | Value.Array elems -> List.exists (fun e -> Value.runtime_equal ~now e rhs) elems
        | _ -> str ~now v)
  | Ast.Op_in_array -> (
      match rhs with
      | Value.Array elems -> fun ~now v -> List.exists (fun e -> Value.runtime_equal ~now v e) elems
      | _ -> fun ~now:_ _ -> false)

let op_name = function
  | Ast.Op_eq -> "=="
  | Ast.Op_neq -> "!="
  | Ast.Op_gt -> ">"
  | Ast.Op_lt -> "<"
  | Ast.Op_geq -> ">="
  | Ast.Op_leq -> "<="
  | Ast.Op_substr -> "=~"
  | Ast.Op_starts_with -> "starts_with"
  | Ast.Op_ends_with -> "ends_with"
  | Ast.Op_contains -> "contains"
  | Ast.Op_in_array -> "in_array"

(* --- bytecode execution ----------------------------------------------------- *)

let rec exec_pblock (tb : tables) (env : Exec.env) (record : record) (pb : pblock) : bool =
  let code = pb.pb_code in
  let n = Array.length code in
  let stack = Array.make (max 1 pb.pb_stack) false in
  let sp = ref 0 in
  let push b =
    stack.(!sp) <- b;
    incr sp
  in
  let pc = ref 0 in
  while !pc < n do
    match code.(!pc) with
    | PI_push b ->
        push b;
        incr pc
    | PI_not ->
        stack.(!sp - 1) <- not stack.(!sp - 1);
        incr pc
    | PI_pop ->
        decr sp;
        incr pc
    | PI_atom i ->
        let a = tb.atoms.(i) in
        let b =
          match List.assoc_opt a.at_lhs record with
          | None -> false
          | Some v -> a.at_test ~now:env.Exec.now v
        in
        push b;
        incr pc
    | PI_external i ->
        (* holds if some row of the external query satisfies the inner
           predicate; rows are produced (and RNG consumed) lazily up to the
           first hit, like the interpreter's List.exists *)
        let e = tb.exts.(i) in
        let results = run_cinv env record e.ex_inv in
        let b = List.exists (fun r -> exec_pblock tb env r e.ex_pred) results in
        push b;
        incr pc
    | PI_jfalse t -> if stack.(!sp - 1) then incr pc else pc := t
    | PI_jtrue t -> if stack.(!sp - 1) then pc := t else incr pc
  done;
  stack.(!sp - 1)

(* --- compilation context ---------------------------------------------------- *)

type ctx = {
  cx_lib : Schema.Library.t;
  cx_tables : tables;
  mutable cx_invs : cinv list;  (* reversed *)
  mutable cx_n_invs : int;
  mutable cx_atoms : atom list;  (* reversed *)
  mutable cx_n_atoms : int;
  mutable cx_exts : ext list;  (* reversed *)
  mutable cx_n_exts : int;
  mutable cx_pblocks : pblock list;  (* reversed *)
  mutable cx_n_pblocks : int;
  mutable cx_qlines : string list;  (* reversed query-plan listing lines *)
  mutable cx_n_q : int;
}

let slot_desc = function
  | Slot_const (n, v) -> Printf.sprintf "%s <- const %s" n (Value.to_string v)
  | Slot_passed (n, out) -> Printf.sprintf "%s <- slot %s" n out

let add_inv ctx (inv : Ast.invocation) : cinv =
  let fn_str = Ast.Fn.to_string inv.fn in
  let slots =
    Array.of_list
      (List.map
         (fun (ip : Ast.in_param) ->
           match ip.ip_value with
           | Ast.Constant v -> Slot_const (ip.ip_name, v)
           | Ast.Passed out -> Slot_passed (ip.ip_name, out))
         inv.in_params)
  in
  let ci =
    { ci_id = ctx.cx_n_invs;
      ci_fn = inv.fn;
      ci_fn_str = fn_str;
      ci_slots = slots;
      ci_default = compile_default_service ctx.cx_lib inv.fn fn_str }
  in
  ctx.cx_invs <- ci :: ctx.cx_invs;
  ctx.cx_n_invs <- ctx.cx_n_invs + 1;
  ci

let add_atom ctx lhs op rhs : int =
  let a =
    { at_id = ctx.cx_n_atoms;
      at_lhs = lhs;
      at_desc = Printf.sprintf "%s %s %s" lhs (op_name op) (Value.to_string rhs);
      at_test = compile_test op rhs }
  in
  ctx.cx_atoms <- a :: ctx.cx_atoms;
  ctx.cx_n_atoms <- ctx.cx_n_atoms + 1;
  a.at_id

(* --- predicate compilation -------------------------------------------------- *)

let max_stack code =
  (* exact along the straight-line scan: jumps are forward and a jump's
     target always sees the same depth as its fall-through path *)
  let depth = ref 0 and m = ref 0 in
  Array.iter
    (fun i ->
      match i with
      | PI_push _ | PI_atom _ | PI_external _ ->
          incr depth;
          if !depth > !m then m := !depth
      | PI_pop -> decr depth
      | PI_not | PI_jfalse _ | PI_jtrue _ -> ())
    code;
  !m

let rec compile_pred ctx (p : Ast.predicate) : pblock =
  let cap = ref 16 in
  let arr = ref (Array.make !cap (PI_push false)) in
  let n = ref 0 in
  let emit i =
    if !n = !cap then begin
      let a = Array.make (2 * !cap) (PI_push false) in
      Array.blit !arr 0 a 0 !n;
      arr := a;
      cap := 2 * !cap
    end;
    !arr.(!n) <- i;
    incr n
  in
  let rec go = function
    | Ast.P_true -> emit (PI_push true)
    | Ast.P_false -> emit (PI_push false)
    | Ast.P_not p ->
        go p;
        emit PI_not
    | Ast.P_and [] -> emit (PI_push true)  (* List.for_all [] *)
    | Ast.P_and ps -> chain ps (fun t -> PI_jfalse t)
    | Ast.P_or [] -> emit (PI_push false)  (* List.exists [] *)
    | Ast.P_or ps -> chain ps (fun t -> PI_jtrue t)
    | Ast.P_atom { lhs; op; rhs } -> emit (PI_atom (add_atom ctx lhs op rhs))
    | Ast.P_external { inv; pred } -> emit (PI_external (add_ext ctx inv pred))
  and chain ps mk =
    (* p1; Jcc L; POP; p2; Jcc L; POP; ...; pn; L: — the deciding operand
       stays on the stack at L, every decided-but-not-deciding operand is
       popped before its successor runs *)
    let jumps = ref [] in
    let rec loop = function
      | [] -> assert false
      | [ last ] -> go last
      | p :: rest ->
          go p;
          jumps := !n :: !jumps;
          emit (mk 0);
          emit PI_pop;
          loop rest
    in
    loop ps;
    let target = !n in
    List.iter (fun j -> !arr.(j) <- mk target) !jumps
  in
  go p;
  let code = Array.sub !arr 0 !n in
  let pb = { pb_id = ctx.cx_n_pblocks; pb_code = code; pb_stack = max_stack code } in
  ctx.cx_pblocks <- pb :: ctx.cx_pblocks;
  ctx.cx_n_pblocks <- ctx.cx_n_pblocks + 1;
  pb

and add_ext ctx inv pred : int =
  let ci = add_inv ctx inv in
  let pb = compile_pred ctx pred in
  let e = { ex_id = ctx.cx_n_exts; ex_inv = ci; ex_pred = pb } in
  ctx.cx_exts <- e :: ctx.cx_exts;
  ctx.cx_n_exts <- ctx.cx_n_exts + 1;
  e.ex_id

(* --- query plans ------------------------------------------------------------ *)

type qfun = Exec.env -> record -> record list

let qline ctx fmt =
  Printf.ksprintf
    (fun s ->
      let id = ctx.cx_n_q in
      ctx.cx_qlines <- Printf.sprintf "  q%d %s" id s :: ctx.cx_qlines;
      ctx.cx_n_q <- ctx.cx_n_q + 1;
      id)
    fmt

let rec compile_query ctx (q : Ast.query) : int * qfun =
  match q with
  | Ast.Q_invoke inv ->
      let ci = add_inv ctx inv in
      let id = qline ctx "INVOKE i%d" ci.ci_id in
      (id, fun env bindings -> run_cinv env bindings ci)
  | Ast.Q_filter (inner, p) ->
      let iid, fi = compile_query ctx inner in
      let pb = compile_pred ctx p in
      let id = qline ctx "FILTER q%d p%d" iid pb.pb_id in
      let tb = ctx.cx_tables in
      (id, fun env bindings -> List.filter (fun r -> exec_pblock tb env r pb) (fi env bindings))
  | Ast.Q_join (a, b, on) ->
      let aid, fa = compile_query ctx a in
      let bid, fb = compile_query ctx b in
      let id =
        qline ctx "JOIN q%d q%d on=[%s]" aid bid
          (String.concat "; " (List.map (fun (ip, op) -> ip ^ " <- " ^ op) on))
      in
      ( id,
        fun env bindings ->
          let results_a = fa env bindings in
          List.concat_map
            (fun ra ->
              let extra_bindings =
                List.filter_map
                  (fun (ip, op) ->
                    match List.assoc_opt op ra with Some v -> Some (ip, v) | None -> None)
                  on
              in
              let results_b = fb env (ra @ bindings) in
              let results_b =
                if on = [] then results_b else List.map (fun rb -> extra_bindings @ rb) results_b
              in
              List.map
                (fun rb -> List.filter (fun (n, _) -> not (List.mem_assoc n rb)) ra @ rb)
                results_b)
            results_a )
  | Ast.Q_aggregate { op; field; inner } -> (
      let iid, fi = compile_query ctx inner in
      match (op, field) with
      | Ast.Agg_count, _ ->
          let id = qline ctx "AGG count q%d" iid in
          ( id,
            fun env bindings ->
              let results = fi env bindings in
              [ [ ("count", Value.Number (float_of_int (List.length results))) ] ] )
      | _, None ->
          let id = qline ctx "AGG <missing field> q%d" iid in
          ( id,
            fun env bindings ->
              (* the interpreter evaluates the inner query (consuming RNG)
                 before discovering the malformed aggregate *)
              let _results = fi env bindings in
              rt_error "aggregate without a field" )
      | agg, Some f ->
          let agg_name =
            match agg with
            | Ast.Agg_max -> "max"
            | Ast.Agg_min -> "min"
            | Ast.Agg_sum -> "sum"
            | Ast.Agg_avg -> "avg"
            | Ast.Agg_count -> assert false
          in
          let id = qline ctx "AGG %s %s q%d" agg_name f iid in
          ( id,
            fun env bindings ->
              let results = fi env bindings in
              let nums =
                List.filter_map
                  (fun r -> Option.bind (List.assoc_opt f r) (Value.to_float ~now:env.Exec.now))
                  results
              in
              if nums = [] then []
              else
                let v =
                  match agg with
                  | Ast.Agg_max -> List.fold_left max neg_infinity nums
                  | Ast.Agg_min -> List.fold_left min infinity nums
                  | Ast.Agg_sum -> List.fold_left ( +. ) 0.0 nums
                  | Ast.Agg_avg ->
                      List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)
                  | Ast.Agg_count -> assert false
                in
                [ [ (f, Value.Number v) ] ] ))

(* --- streams ---------------------------------------------------------------- *)

(* Per-run mutable stream state over compile-time-resolved plans. *)
type cstream =
  | CS_now of { mutable fired : bool }
  | CS_attimer
  | CS_timer of { base : Value.t; interval_days : float; mutable start : float option }
  | CS_monitor of { q : qfun; on_new : string list option; mutable prev : record list option }
  | CS_edge of { inner : cstream; pred : pblock; mutable prev : bool }

let rec compile_stream ctx (s : Ast.stream) : (unit -> cstream) * string =
  match s with
  | Ast.S_now -> ((fun () -> CS_now { fired = false }), "NOW")
  | Ast.S_attimer t -> ((fun () -> CS_attimer), Printf.sprintf "ATTIMER %s" (Value.to_string t))
  | Ast.S_timer { base; interval } ->
      let interval_days =
        match interval with
        | Value.Measure terms ->
            List.fold_left (fun acc (n, u) -> acc +. Ttype.Units.to_base n u) 0.0 terms
            /. 86400e3
        | _ -> 1.0
      in
      let interval_days = max interval_days 1e-6 in
      ( (fun () -> CS_timer { base; interval_days; start = None }),
        Printf.sprintf "TIMER base=%s interval_days=%g" (Value.to_string base) interval_days )
  | Ast.S_monitor (q, on_new) ->
      let qid, fq = compile_query ctx q in
      let desc =
        Printf.sprintf "MONITOR q%d%s" qid
          (match on_new with
          | None -> ""
          | Some fields -> Printf.sprintf " on_new=[%s]" (String.concat "; " fields))
      in
      ((fun () -> CS_monitor { q = fq; on_new; prev = None }), desc)
  | Ast.S_edge (inner, p) ->
      let finner, inner_desc = compile_stream ctx inner in
      let pb = compile_pred ctx p in
      ( (fun () -> CS_edge { inner = finner (); pred = pb; prev = false }),
        Printf.sprintf "EDGE (%s) p%d" inner_desc pb.pb_id )

(* Copy of Exec.new_records: monitor freshness against the previous result
   set, projected to the monitored fields when 'on new' is given. *)
let new_records ~on_new ~prev ~cur =
  let project r =
    match on_new with
    | None -> r
    | Some fields -> List.filter (fun (n, _) -> List.mem n fields) r
  in
  match prev with
  | None -> cur
  | Some prev -> List.filter (fun r -> not (List.exists (fun p -> project p = project r) prev)) cur

let rec step_cstream (tb : tables) (env : Exec.env) (st : cstream) : record list =
  match st with
  | CS_now n ->
      if n.fired then []
      else begin
        n.fired <- true;
        [ [] ]
      end
  | CS_attimer -> if Float.is_integer env.Exec.now then [ [] ] else []
  | CS_timer t ->
      let start =
        match t.start with
        | Some s -> s
        | None ->
            let s =
              match t.base with
              | Value.Date d -> Value.date_to_days ~now:env.Exec.now d
              | _ -> env.Exec.now
            in
            t.start <- Some s;
            s
      in
      let elapsed = env.Exec.now -. start in
      if elapsed < -1e-9 then []
      else
        let k = elapsed /. t.interval_days in
        if Float.abs (k -. Float.round k) < 1e-9 then [ [] ] else []
  | CS_monitor m ->
      let cur = m.q env [] in
      let fresh = new_records ~on_new:m.on_new ~prev:m.prev ~cur in
      m.prev <- Some cur;
      fresh
  | CS_edge e ->
      let inner_events = step_cstream tb env e.inner in
      List.filter_map
        (fun r ->
          let now_true = exec_pblock tb env r e.pred in
          let fires = now_true && not e.prev in
          e.prev <- now_true;
          if fires then Some r else None)
        inner_events

(* --- actions ---------------------------------------------------------------- *)

type caction = CA_notify | CA_invoke of cinv

let exec_caction (env : Exec.env) ~(bindings : record) = function
  | CA_notify -> env.Exec.notifications <- env.Exec.notifications @ [ bindings ]
  | CA_invoke ci ->
      let args = resolve_slots bindings ci in
      env.Exec.side_effects <- env.Exec.side_effects @ [ (ci.ci_fn, args) ]

(* --- compiled programs ------------------------------------------------------ *)

type t = {
  source : Ast.program;
  tables : tables;
  new_stream : unit -> cstream;
  query : qfun option;
  action : caction;
  listing : string;
  digest : string;
}

let pinstr_desc = function
  | PI_push b -> if b then "PUSH true" else "PUSH false"
  | PI_not -> "NOT"
  | PI_pop -> "POP"
  | PI_atom i -> Printf.sprintf "ATOM a%d" i
  | PI_external i -> Printf.sprintf "EXT e%d" i
  | PI_jfalse t -> Printf.sprintf "JFALSE %d" t
  | PI_jtrue t -> Printf.sprintf "JTRUE %d" t

let render_listing ctx ~source_text ~stream_desc ~root_q ~action_desc =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "== thingtalk bytecode ==";
  line "source: %s" source_text;
  let invs = List.rev ctx.cx_invs in
  line "invocations: %d" (List.length invs);
  List.iter
    (fun ci ->
      line "  i%d %s in=[%s]" ci.ci_id ci.ci_fn_str
        (String.concat "; " (Array.to_list (Array.map slot_desc ci.ci_slots))))
    invs;
  let atoms = List.rev ctx.cx_atoms in
  line "atoms: %d" (List.length atoms);
  List.iter (fun a -> line "  a%d %s" a.at_id a.at_desc) atoms;
  let exts = List.rev ctx.cx_exts in
  line "externals: %d" (List.length exts);
  List.iter (fun e -> line "  e%d i%d p%d" e.ex_id e.ex_inv.ci_id e.ex_pred.pb_id) exts;
  let pbs = List.rev ctx.cx_pblocks in
  line "predicates: %d" (List.length pbs);
  List.iter
    (fun pb ->
      line "  p%d (stack %d):" pb.pb_id pb.pb_stack;
      Array.iteri (fun i ins -> line "    %02d %s" i (pinstr_desc ins)) pb.pb_code)
    pbs;
  line "query plan: %d node%s" ctx.cx_n_q (if ctx.cx_n_q = 1 then "" else "s");
  List.iter (fun l -> line "%s" l) (List.rev ctx.cx_qlines);
  (match root_q with
  | Some id -> line "  root q%d" id
  | None -> line "  root <none>");
  line "stream: %s" stream_desc;
  line "action: %s" action_desc;
  Buffer.contents b

let listing t = t.listing
let digest t = t.digest
let source t = t.source

let compile lib (program : Ast.program) : t =
  (match Typecheck.check_program lib program with
  | Ok () -> ()
  | Error e -> rt_error "ill-typed program: %s" e);
  let tables = { atoms = [||]; exts = [||] } in
  let ctx =
    { cx_lib = lib;
      cx_tables = tables;
      cx_invs = [];
      cx_n_invs = 0;
      cx_atoms = [];
      cx_n_atoms = 0;
      cx_exts = [];
      cx_n_exts = 0;
      cx_pblocks = [];
      cx_n_pblocks = 0;
      cx_qlines = [];
      cx_n_q = 0 }
  in
  let new_stream, stream_desc = compile_stream ctx program.stream in
  let root_q, query =
    match program.query with
    | None -> (None, None)
    | Some q ->
        let id, f = compile_query ctx q in
        (Some id, Some f)
  in
  let action, action_desc =
    match program.action with
    | Ast.A_notify -> (CA_notify, "NOTIFY")
    | Ast.A_invoke inv ->
        let ci = add_inv ctx inv in
        (CA_invoke ci, Printf.sprintf "INVOKE i%d" ci.ci_id)
  in
  tables.atoms <- Array.of_list (List.rev ctx.cx_atoms);
  tables.exts <- Array.of_list (List.rev ctx.cx_exts);
  let listing =
    render_listing ctx
      ~source_text:(Printer.program_to_string program)
      ~stream_desc ~root_q ~action_desc
  in
  let digest = Genie_util.Hash64.(to_hex (string 0x7447c0deL listing)) in
  { source = program; tables; new_stream; query; action; listing; digest }

(* Mirrors the Exec.run driver loop over the compiled plans. *)
let run ?(ticks = 1) ?(step = 1.0) (env : Exec.env) (t : t) =
  let st = t.new_stream () in
  for tick = 0 to ticks - 1 do
    env.Exec.now <- float_of_int tick *. step;
    let events = step_cstream t.tables env st in
    List.iter
      (fun event ->
        let rows =
          match t.query with
          | None -> [ event ]
          | Some fq ->
              List.map
                (fun r -> List.filter (fun (n, _) -> not (List.mem_assoc n r)) event @ r)
                (fq env event)
        in
        List.iter (fun row -> exec_caction env ~bindings:row t.action) rows)
      events
  done;
  (env.Exec.notifications, env.Exec.side_effects)

let exec_compiled ?ticks ?step env program = run ?ticks ?step env (compile env.Exec.lib program)
