(** The ThingTalk runtime: executes programs against mock services on a
    virtual clock.

    Semantics per section 2.3: queries always return lists (singletons for
    single-result functions) that are implicitly traversed; each row can feed
    input parameters of later invocations; monitors fire when a query's
    result changes; edge filters fire on false -> true transitions of their
    predicate; timers tick on the virtual clock. *)

open Genie_thingtalk

type record = (string * Value.t) list
(** One result row: output-parameter bindings. *)

type service = {
  generate :
    now:float -> rng:Genie_util.Rng.t -> args:(string * Value.t) list -> record list;
}
(** A mock backing service for one skill function. *)

type env = {
  lib : Schema.Library.t;
  services : (string, service) Hashtbl.t;
  mutable now : float;  (** virtual day count *)
  rng : Genie_util.Rng.t;
  mutable notifications : record list;
  mutable side_effects : (Ast.Fn.t * record) list;
}

exception Runtime_error of string

val create : ?seed:int -> Schema.Library.t -> env
(** An environment backed by deterministic synthetic data: monitorable
    functions change every few virtual days, non-monitorable ones on every
    call. *)

val register_service : env -> Ast.Fn.t -> service -> unit
(** Overrides the default mock for one function. *)

val eval_query : env -> bindings:record -> Ast.query -> record list
(** Evaluates a query under upstream [bindings] (for parameter passing). *)

val eval_predicate : env -> record -> Ast.predicate -> bool

val run : ?ticks:int -> ?step:float -> env -> Ast.program -> record list * (Ast.Fn.t * record) list
(** [run ~ticks env p] type-checks [p], then advances the virtual clock
    [ticks] steps, dispatching stream events through the query to the action.
    Returns the accumulated notifications and side effects. Raises
    {!Runtime_error} on ill-typed programs or unbound parameter passing. *)
