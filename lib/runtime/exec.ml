(* The ThingTalk runtime: executes programs against mock services driven by a
   virtual clock.

   The semantics implemented here follows section 2.3 of the paper: queries
   always return lists (single results become singleton lists) which are
   implicitly traversed; each result can feed input parameters of subsequent
   invocations; monitors fire when a query's result changes; edge filters fire
   when their predicate transitions from false to true. *)

open Genie_thingtalk

type record = (string * Value.t) list

(* A mock backing service for one skill function: produces that function's
   results for given arguments at a given virtual time. *)
type service = {
  generate :
    now:float -> rng:Genie_util.Rng.t -> args:(string * Value.t) list -> record list;
}

type env = {
  lib : Schema.Library.t;
  services : (string, service) Hashtbl.t;
  mutable now : float; (* virtual day count *)
  rng : Genie_util.Rng.t;
  mutable notifications : record list;
  mutable side_effects : (Ast.Fn.t * record) list;
}

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* --- default mock data ---------------------------------------------------- *)

(* Deterministic pseudo-data derived from (function, parameter, time bucket,
   row). Monitorable functions change with time so monitors have something to
   observe; non-monitorable ones (e.g. a random cat picture) change on every
   call. *)
let default_value_for ~fn ~row ~bucket (p : Schema.param) : Value.t =
  let key = Printf.sprintf "%s/%s/%d/%d" (Ast.Fn.to_string fn) p.Schema.p_name row bucket in
  let h = Hashtbl.hash key in
  let rec gen (ty : Ttype.t) : Value.t =
    match ty with
    | Ttype.String -> Value.String (Printf.sprintf "%s item %d" p.Schema.p_name (h mod 97))
    | Ttype.Number -> Value.Number (float_of_int (h mod 1000))
    | Ttype.Boolean -> Value.Boolean (h mod 2 = 0)
    | Ttype.Date -> Value.Date (Value.D_absolute { year = 2019; month = 1 + (h mod 12); day = 1 + (h mod 28) })
    | Ttype.Time -> Value.Time (h mod 24, h mod 60)
    | Ttype.Location -> Value.Location (Value.L_named (Printf.sprintf "place %d" (h mod 50)))
    | Ttype.Path_name -> Value.String (Printf.sprintf "/folder/file_%d.txt" (h mod 100))
    | Ttype.Url -> Value.String (Printf.sprintf "https://example.com/%d" (h mod 1000))
    | Ttype.Picture -> Value.String (Printf.sprintf "https://img.example.com/%d.jpg" (h mod 1000))
    | Ttype.Phone_number -> Value.String (Printf.sprintf "+1555%07d" (h mod 10000000))
    | Ttype.Email_address -> Value.String (Printf.sprintf "user%d@example.com" (h mod 1000))
    | Ttype.Currency -> Value.Currency (float_of_int (h mod 500), "usd")
    | Ttype.Measure u -> Value.Measure [ (float_of_int (h mod 100), u) ]
    | Ttype.Enum (v :: _ as vs) -> Value.Enum (List.nth vs (h mod List.length vs) |> fun x -> ignore v; x)
    | Ttype.Enum [] -> Value.Enum "none"
    | Ttype.Entity ety ->
        Value.Entity { ty = ety; value = Printf.sprintf "%s %d" ety (h mod 200); display = None }
    | Ttype.Array elt -> Value.Array [ gen elt; gen elt ]
  in
  gen p.Schema.p_type

let default_service lib fn : service =
  { generate =
      (fun ~now ~rng ~args ->
        ignore args;
        match Schema.Library.find_fn lib fn with
        | None -> error "no such function %s" (Ast.Fn.to_string fn)
        | Some f ->
            let outs = Schema.out_params f in
            let monitorable = Schema.is_monitorable f in
            (* time bucket: monitorable data changes every 3 virtual days;
               non-monitorable data changes on every call *)
            let bucket =
              if monitorable then int_of_float now / 3
              else Genie_util.Rng.int rng 1000000
            in
            let rows = if Schema.is_list f then 3 else 1 in
            List.init rows (fun row ->
                List.map (fun p -> (p.Schema.p_name, default_value_for ~fn ~row ~bucket p)) outs))
  }

let create ?(seed = 42) lib =
  { lib;
    services = Hashtbl.create 64;
    now = 0.0;
    rng = Genie_util.Rng.create seed;
    notifications = [];
    side_effects = [] }

let register_service env fn service =
  Hashtbl.replace env.services (Ast.Fn.to_string fn) service

let service_for env fn =
  match Hashtbl.find_opt env.services (Ast.Fn.to_string fn) with
  | Some s -> s
  | None -> default_service env.lib fn

(* --- predicate evaluation -------------------------------------------------- *)

let lookup record name = List.assoc_opt name record

let value_compare_num ~now a b =
  match (Value.to_float ~now a, Value.to_float ~now b) with
  | Some x, Some y -> Some (compare x y)
  | _ -> None

let string_of_value_raw = function
  | Value.String s -> Some s
  | Value.Entity { value; _ } -> Some value
  | Value.Enum e -> Some e
  | _ -> None

let rec eval_predicate env (record : record) (p : Ast.predicate) : bool =
  let now = env.now in
  match p with
  | Ast.P_true -> true
  | Ast.P_false -> false
  | Ast.P_not p -> not (eval_predicate env record p)
  | Ast.P_and ps -> List.for_all (eval_predicate env record) ps
  | Ast.P_or ps -> List.exists (eval_predicate env record) ps
  | Ast.P_atom { lhs; op; rhs } -> (
      match lookup record lhs with
      | None -> false
      | Some v -> eval_atom ~now v op rhs)
  | Ast.P_external { inv; pred } ->
      (* the predicate holds if some result of the external query satisfies
         the inner predicate *)
      let results = eval_invocation env ~bindings:record inv in
      List.exists (fun r -> eval_predicate env r pred) results

and eval_atom ~now (v : Value.t) (op : Ast.comp_op) (rhs : Value.t) : bool =
  let str_op f =
    match (string_of_value_raw v, string_of_value_raw rhs) with
    | Some a, Some b -> f (String.lowercase_ascii a) (String.lowercase_ascii b)
    | _ -> false
  in
  match op with
  | Ast.Op_eq -> Value.runtime_equal ~now v rhs
  | Ast.Op_neq -> not (Value.runtime_equal ~now v rhs)
  | Ast.Op_gt -> (match value_compare_num ~now v rhs with Some c -> c > 0 | None -> false)
  | Ast.Op_lt -> (match value_compare_num ~now v rhs with Some c -> c < 0 | None -> false)
  | Ast.Op_geq -> (match value_compare_num ~now v rhs with Some c -> c >= 0 | None -> false)
  | Ast.Op_leq -> (match value_compare_num ~now v rhs with Some c -> c <= 0 | None -> false)
  | Ast.Op_substr -> str_op (fun a b -> Genie_util.Tok.contains_substring ~sub:b a)
  | Ast.Op_starts_with -> str_op (fun a b -> Genie_util.Tok.starts_with ~prefix:b a)
  | Ast.Op_ends_with -> str_op (fun a b -> Genie_util.Tok.ends_with ~suffix:b a)
  | Ast.Op_contains -> (
      match v with
      | Value.Array elems -> List.exists (fun e -> Value.runtime_equal ~now e rhs) elems
      | _ -> str_op (fun a b -> Genie_util.Tok.contains_substring ~sub:b a))
  | Ast.Op_in_array -> (
      match rhs with
      | Value.Array elems -> List.exists (fun e -> Value.runtime_equal ~now v e) elems
      | _ -> false)

(* --- query evaluation ------------------------------------------------------ *)

and resolve_in_params _env ~bindings (inv : Ast.invocation) : (string * Value.t) list =
  List.map
    (fun (ip : Ast.in_param) ->
      match ip.ip_value with
      | Ast.Constant v -> (ip.ip_name, v)
      | Ast.Passed out_name -> (
          match lookup bindings out_name with
          | Some v -> (ip.ip_name, v)
          | None -> error "unbound output parameter %s" out_name))
    inv.in_params

and eval_invocation env ~bindings (inv : Ast.invocation) : record list =
  let args = resolve_in_params env ~bindings inv in
  let service = service_for env inv.fn in
  let results = service.generate ~now:env.now ~rng:env.rng ~args in
  (* input parameters are also visible downstream (e.g. folder_name) *)
  List.map (fun r -> args @ r) results

and eval_query env ~bindings (q : Ast.query) : record list =
  match q with
  | Ast.Q_invoke inv -> eval_invocation env ~bindings inv
  | Ast.Q_filter (inner, p) ->
      List.filter (fun r -> eval_predicate env r p) (eval_query env ~bindings inner)
  | Ast.Q_join (a, b, on) ->
      let results_a = eval_query env ~bindings a in
      List.concat_map
        (fun ra ->
          (* parameter passing from the left operand into the right *)
          let extra_bindings =
            List.filter_map
              (fun (ip, op) ->
                match lookup ra op with
                | Some v -> Some (ip, v)
                | None -> None)
              on
          in
          let results_b = eval_query env ~bindings:(ra @ bindings) b in
          let results_b =
            if on = [] then results_b
            else
              List.map (fun rb -> extra_bindings @ rb) results_b
          in
          (* cross product; on duplicate names the rightmost instance wins *)
          List.map
            (fun rb -> List.filter (fun (n, _) -> not (List.mem_assoc n rb)) ra @ rb)
            results_b)
        results_a
  | Ast.Q_aggregate { op; field; inner } -> (
      let results = eval_query env ~bindings inner in
      match (op, field) with
      | Ast.Agg_count, _ -> [ [ ("count", Value.Number (float_of_int (List.length results))) ] ]
      | _, None -> error "aggregate without a field"
      | agg, Some f ->
          let nums =
            List.filter_map
              (fun r -> Option.bind (lookup r f) (Value.to_float ~now:env.now))
              results
          in
          if nums = [] then []
          else
            let v =
              match agg with
              | Ast.Agg_max -> List.fold_left max neg_infinity nums
              | Ast.Agg_min -> List.fold_left min infinity nums
              | Ast.Agg_sum -> List.fold_left ( +. ) 0.0 nums
              | Ast.Agg_avg ->
                  List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)
              | Ast.Agg_count -> assert false
            in
            [ [ (f, Value.Number v) ] ])

(* --- streams ---------------------------------------------------------------- *)

(* Persistent state threaded across virtual-clock ticks. *)
type stream_state =
  | St_now of { mutable fired : bool }
  | St_attimer of Value.t
  | St_timer of { base : Value.t; interval_days : float; mutable start : float option }
  | St_monitor of { query : Ast.query; on_new : string list option; mutable prev : record list option }
  | St_edge of { inner : stream_state; pred : Ast.predicate; mutable prev : bool }

let rec init_stream_state (s : Ast.stream) : stream_state =
  match s with
  | Ast.S_now -> St_now { fired = false }
  | Ast.S_attimer t -> St_attimer t
  | Ast.S_timer { base; interval } ->
      let interval_days =
        match interval with
        | Value.Measure terms ->
            List.fold_left (fun acc (n, u) -> acc +. Ttype.Units.to_base n u) 0.0 terms
            /. 86400e3
        | _ -> 1.0
      in
      St_timer { base; interval_days = max interval_days 1e-6; start = None }
  | Ast.S_monitor (q, on_new) -> St_monitor { query = q; on_new; prev = None }
  | Ast.S_edge (inner, p) -> St_edge { inner = init_stream_state inner; pred = p; prev = false }

(* Records produced by monitor comparison: those not present in the previous
   result set (projected to the monitored fields if 'on new' is given). *)
let new_records ~on_new ~prev ~cur =
  let project r =
    match on_new with
    | None -> r
    | Some fields -> List.filter (fun (n, _) -> List.mem n fields) r
  in
  match prev with
  | None -> cur (* first evaluation of a monitor seeds the stream *)
  | Some prev -> List.filter (fun r -> not (List.exists (fun p -> project p = project r) prev)) cur

(* One tick: the events (each a record of bindings) the stream emits now. *)
let rec step_stream env (st : stream_state) : record list =
  match st with
  | St_now n -> if n.fired then [] else (n.fired <- true; [ [] ])
  | St_attimer _ ->
      (* fires once per virtual day *)
      if Float.is_integer env.now then [ [] ] else []
  | St_timer t ->
      (* the base date is resolved once, when the program starts *)
      let start =
        match t.start with
        | Some s -> s
        | None ->
            let s =
              match t.base with
              | Value.Date d -> Value.date_to_days ~now:env.now d
              | _ -> env.now
            in
            t.start <- Some s;
            s
      in
      let interval_days = t.interval_days in
      let elapsed = env.now -. start in
      if elapsed < -1e-9 then []
      else
        let k = elapsed /. interval_days in
        if Float.abs (k -. Float.round k) < 1e-9 then [ [] ] else []
  | St_monitor m ->
      let cur = eval_query env ~bindings:[] m.query in
      let fresh = new_records ~on_new:m.on_new ~prev:m.prev ~cur in
      m.prev <- Some cur;
      fresh
  | St_edge e ->
      let inner_events = step_stream env e.inner in
      List.filter_map
        (fun r ->
          let now_true = eval_predicate env r e.pred in
          let fires = now_true && not e.prev in
          e.prev <- now_true;
          if fires then Some r else None)
        inner_events

(* --- whole programs --------------------------------------------------------- *)

let execute_action env ~bindings (a : Ast.action) =
  match a with
  | Ast.A_notify -> env.notifications <- env.notifications @ [ bindings ]
  | Ast.A_invoke inv ->
      let args = resolve_in_params env ~bindings inv in
      env.side_effects <- env.side_effects @ [ (inv.fn, args) ]

(* Runs [program] for [ticks] steps of the virtual clock (one step = one
   virtual day by default). Returns the accumulated notifications and side
   effects. *)
let run ?(ticks = 1) ?(step = 1.0) env (program : Ast.program) =
  (match Typecheck.check_program env.lib program with
  | Ok () -> ()
  | Error e -> error "ill-typed program: %s" e);
  let st = init_stream_state program.stream in
  for tick = 0 to ticks - 1 do
    env.now <- float_of_int tick *. step;
    let events = step_stream env st in
    List.iter
      (fun event ->
        let rows =
          match program.query with
          | None -> [ event ]
          | Some q ->
              List.map
                (fun r -> List.filter (fun (n, _) -> not (List.mem_assoc n r)) event @ r)
                (eval_query env ~bindings:event q)
        in
        List.iter (fun row -> execute_action env ~bindings:row program.action) rows)
      events
  done;
  (env.notifications, env.side_effects)
