(* Compiled-program cache: the generic Genie_util.Lru keyed on the
   program's canonical printed form, so the serve layer pays compilation
   once per distinct program instead of once per request. Same single-domain
   discipline as the serve layer's parse cache: each worker owns a private
   instance. *)

type t = Compile.t Genie_util.Lru.t

type stats = Genie_util.Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

let create ~capacity : t = Genie_util.Lru.create ~capacity
let find = Genie_util.Lru.find
let add = Genie_util.Lru.add
let mem = Genie_util.Lru.mem
let length = Genie_util.Lru.length
let capacity = Genie_util.Lru.capacity
let stats = Genie_util.Lru.stats
let clear = Genie_util.Lru.clear
let keys_mru = Genie_util.Lru.keys_mru

let find_or_compile t lib ~key program =
  match find t key with
  | Some c -> `Hit c
  | None ->
      let c = Compile.compile lib program in
      add t key c;
      `Miss c
