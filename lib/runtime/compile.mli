(** ThingTalk compilation: lowers typechecked programs to flat predicate
    bytecode plus closure-threaded query/stream/action plans with
    pre-resolved Thingpedia schemas and pre-bound parameter slots.

    Compiled execution is byte-identical to the tree-walking interpreter
    {!Exec}: same results, same {!Exec.env} mutations (notifications and
    side effects accumulate across runs on a shared env), same RNG draw
    order for the default mock services, and the same {!Exec.Runtime_error}
    messages raised at the same evaluation points. The differential QCheck
    suite in test/suite_compile.ml and the snapshot goldens under
    test/snapshot/ enforce this contract.

    A compiled program is specialized to the library it was compiled
    against; executing it in an env created from a different library is
    unspecified. Custom services registered with {!Exec.register_service}
    are still honored at execution time — only the default mock fallback is
    pre-resolved. See docs/compilation.md for the bytecode format. *)

open Genie_thingtalk

type t
(** A compiled program: immutable plans plus a per-run stream-state
    factory. One value can be executed many times, including concurrently
    from different domains against their own envs. *)

val compile : Schema.Library.t -> Ast.program -> t
(** Typechecks and lowers. Raises {!Exec.Runtime_error} with the same
    ["ill-typed program: ..."] message {!Exec.run} would produce. *)

val run :
  ?ticks:int -> ?step:float -> Exec.env -> t -> Exec.record list * (Ast.Fn.t * Exec.record) list
(** [run ~ticks env t] advances the virtual clock exactly like
    {!Exec.run} (fresh stream state per call, typecheck already paid at
    compile time) and returns the env's accumulated notifications and side
    effects. *)

val exec_compiled :
  ?ticks:int ->
  ?step:float ->
  Exec.env ->
  Ast.program ->
  Exec.record list * (Ast.Fn.t * Exec.record) list
(** [compile] against [env]'s library, then {!run}: a drop-in replacement
    for {!Exec.run}. *)

val listing : t -> string
(** Human-readable flat bytecode listing: invocation table with pre-bound
    slots, atom table, external-predicate table, per-predicate instruction
    streams, query plan, stream and action. Stable across runs. *)

val digest : t -> string
(** 16-hex {!Genie_util.Hash64} digest of {!listing} — identifies the
    compiled form, not the execution. *)

val source : t -> Ast.program
(** The program this was compiled from. *)
