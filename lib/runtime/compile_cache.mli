(** An LRU cache of compiled ThingTalk programs.

    Keyed on the program's canonical printed form
    ({!Genie_thingtalk.Canonical.canonical_string}, or any other string
    that uniquely identifies the AST — the serve layer reuses the printed
    prediction it already memoized). Shares the {!Genie_util.Lru}
    discipline with the serve layer's parse cache: O(1) find/add/evict,
    hit/miss/eviction counters, and {e no} thread-safety — each worker owns
    a private instance. *)

type t = Compile.t Genie_util.Lru.t

type stats = Genie_util.Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

val create : capacity:int -> t
(** [capacity <= 0] disables caching (every lookup compiles). *)

val find : t -> string -> Compile.t option
val add : t -> string -> Compile.t -> unit
val mem : t -> string -> bool
val length : t -> int
val capacity : t -> int
val stats : t -> stats
val clear : t -> unit
val keys_mru : t -> string list

val find_or_compile :
  t -> Genie_thingtalk.Schema.Library.t -> key:string -> Genie_thingtalk.Ast.program ->
  [ `Hit of Compile.t | `Miss of Compile.t ]
(** One-shot lookup-or-compile-and-insert. Raises like {!Compile.compile}
    on ill-typed programs (nothing is cached in that case). *)
