(** Dataset statistics: the training-set characteristics of Fig. 7 and the
    vocabulary-growth numbers of section 5.2. *)

open Genie_thingtalk

type characteristics = {
  total : int;
  primitive : float;
  primitive_with_filters : float;
  compound : float;
  compound_with_param_passing : float;
  compound_with_filters : float;
}

val classify :
  Ast.program ->
  [ `Primitive | `Primitive_filters | `Compound | `Compound_passing | `Compound_filters ]
(** The five slices of Fig. 7. *)

val characteristics : Ast.program list -> characteristics
val pp_characteristics : Format.formatter -> characteristics -> unit

val distinct_words : string list list -> int
val distinct_bigrams : string list list -> int

val paraphrase_novelty : (string list * string list) list -> float * float
(** Average fraction of new words and new bigrams a paraphrase introduces
    over its source sentence (the paper reports 38% and 65%). *)

val distinct_programs : Schema.Library.t -> Ast.program list -> int
(** Distinct canonical programs. *)

val distinct_function_combos : Ast.program list -> int
