(** Dataset examples: a sentence paired with the ThingTalk program(s) it
    denotes. Test examples may carry several annotations, because the paper
    annotates each test sentence with all valid interpretations (section 5). *)

open Genie_thingtalk

type source =
  | Synthesized
  | Paraphrase
  | Evaluation of string  (** "developer" | "cheatsheet" | "ifttt" *)

type t = {
  id : int;
  tokens : string list;
  program : Ast.program;
  alternatives : Ast.program list;
  source : source;
}

val source_to_string : source -> string

val make :
  ?alternatives:Ast.program list ->
  id:int ->
  tokens:string list ->
  program:Ast.program ->
  source:source ->
  unit ->
  t

val sentence : t -> string
val all_programs : t -> Ast.program list

val strip_quotes : t -> t
(** Removes quote markers around free-form parameters: the paper removes
    quotes before sentences are used for training. *)

val is_primitive : t -> bool
val is_compound : t -> bool
