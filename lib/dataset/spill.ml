(* Spill runs and the external k-way merge.

   A shard worker buffers records and, whenever the buffer reaches the spill
   threshold, flushes one *sorted run* to disk: records ordered by seqno,
   written to a temp file and atomically renamed into place. Run file names
   are a pure function of (shard id, flush index), and run contents are a
   pure function of the shard's input — so a shard retried after an injected
   crash rewrites byte-identical files over the same names, never
   duplicates. The coordinator then merges all runs by seqno into a single
   corpus shard, checking strict ascending order as it goes (a duplicate or
   out-of-order seqno means a producer bug, and is reported rather than
   papered over). Merge memory is bounded: one small read-ahead buffer per
   run, one record compared at a time. *)

type run = {
  run_path : string;
  run_records : int;
  run_first : int;  (* lowest seqno in the run *)
  run_last : int;  (* highest seqno in the run *)
}

let run_name ~shard ~flush = Printf.sprintf "shard%04d-%03d.run" shard flush
let tmp_suffix = ".tmp"

module Writer = struct
  type t = {
    dir : string;
    shard : int;
    threshold : int;  (* <= 0: unbounded, single run flushed at close *)
    mutable buffered : Codec.record list;  (* newest first *)
    mutable n_buffered : int;
    mutable flushes : int;
    mutable runs : run list;  (* newest first *)
    mutable bytes : int;
  }

  let create ~dir ~shard ~threshold =
    { dir; shard; threshold; buffered = []; n_buffered = 0; flushes = 0;
      runs = []; bytes = 0 }

  let flush t =
    if t.n_buffered > 0 then begin
      let records =
        List.sort
          (fun a b -> compare a.Codec.seqno b.Codec.seqno)
          (List.rev t.buffered)
      in
      let path = Filename.concat t.dir (run_name ~shard:t.shard ~flush:t.flushes) in
      let tmp = path ^ tmp_suffix in
      let oc = open_out_bin tmp in
      Codec.write_header oc;
      let size = ref 0 in
      List.iter
        (fun r ->
          let bytes = Codec.encode r in
          output_string oc bytes;
          size := !size + String.length bytes)
        records;
      close_out oc;
      Sys.rename tmp path;
      let first = (List.hd records).Codec.seqno in
      let last = List.fold_left (fun _ r -> r.Codec.seqno) first records in
      t.runs <-
        { run_path = path; run_records = t.n_buffered; run_first = first;
          run_last = last }
        :: t.runs;
      t.bytes <- t.bytes + !size;
      t.flushes <- t.flushes + 1;
      t.buffered <- [];
      t.n_buffered <- 0
    end

  let add t r =
    t.buffered <- r :: t.buffered;
    t.n_buffered <- t.n_buffered + 1;
    if t.threshold > 0 && t.n_buffered >= t.threshold then flush t

  let close t =
    flush t;
    List.rev t.runs

  let bytes_written t = t.bytes
end

(* --- external k-way merge -------------------------------------------------- *)

(* One open run: a channel plus its current head record. *)
type head = {
  h_run : run;
  h_ic : in_channel;
  mutable h_record : Codec.record option;
  mutable h_count : int;
}

exception Merge_error of string

let advance h =
  match Codec.read_record h.h_ic with
  | Error e -> raise (Merge_error (Printf.sprintf "%s: %s" h.h_run.run_path e))
  | Ok None ->
      if h.h_count <> h.h_run.run_records then
        raise
          (Merge_error
             (Printf.sprintf "%s: %d records, expected %d" h.h_run.run_path
                h.h_count h.h_run.run_records));
      h.h_record <- None
  | Ok (Some r) ->
      (match h.h_record with
      | Some prev when r.Codec.seqno <= prev.Codec.seqno ->
          raise
            (Merge_error
               (Printf.sprintf "%s: run not sorted (%d after %d)"
                  h.h_run.run_path r.Codec.seqno prev.Codec.seqno))
      | _ -> ());
      h.h_record <- Some r;
      h.h_count <- h.h_count + 1

let open_head run =
  let ic = open_in_bin run.run_path in
  match Codec.read_header ic with
  | Error e ->
      close_in_noerr ic;
      raise (Merge_error (Printf.sprintf "%s: %s" run.run_path e))
  | Ok () ->
      let h = { h_run = run; h_ic = ic; h_record = None; h_count = 0 } in
      advance h;
      h

(* Merges [runs] into [out] (atomically, temp + rename), folding the corpus
   digest over the exact bytes written. Returns [(records, digest hex)].
   Emits records in strictly ascending global seqno order or fails: the
   merged corpus is *the* canonical order, not merely *a* sorted order. *)
let merge ~out (runs : run list) : (int * string, string) result =
  let heads = ref [] in
  let tmp = out ^ tmp_suffix in
  let cleanup () =
    List.iter (fun h -> close_in_noerr h.h_ic) !heads;
    if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ())
  in
  try
    heads := List.map open_head runs;
    let oc = open_out_bin tmp in
    Codec.write_header oc;
    let digest = ref Codec.digest_seed in
    let count = ref 0 in
    let last_seqno = ref (-1) in
    let rec loop () =
      (* Linear min-scan over the open heads: k (runs) is small relative to
         record count, and each head is a bounded channel, so merge memory
         stays flat no matter how large the corpus grows. *)
      let best =
        List.fold_left
          (fun best h ->
            match (h.h_record, best) with
            | None, _ -> best
            | Some _, None -> Some h
            | Some r, Some b -> (
                match b.h_record with
                | Some rb when r.Codec.seqno < rb.Codec.seqno -> Some h
                | _ -> best))
          None !heads
      in
      match best with
      | None -> ()
      | Some h ->
          let r = match h.h_record with Some r -> r | None -> assert false in
          if r.Codec.seqno <= !last_seqno then
            raise
              (Merge_error
                 (Printf.sprintf "duplicate or out-of-order seqno %d"
                    r.Codec.seqno));
          last_seqno := r.Codec.seqno;
          let bytes = Codec.encode r in
          output_string oc bytes;
          digest := Genie_util.Hash64.string !digest bytes;
          incr count;
          advance h;
          loop ()
    in
    loop ();
    close_out oc;
    List.iter (fun h -> close_in_noerr h.h_ic) !heads;
    Sys.rename tmp out;
    Ok (!count, Codec.digest_hex !digest)
  with
  | Merge_error e ->
      cleanup ();
      Error e
  | Sys_error e ->
      cleanup ();
      Error e

(* --- housekeeping ----------------------------------------------------------

   Run files are intermediate state: after a successful merge the corpus
   shard is the only survivor. [stray_files] backs the no-leak assertions in
   tests and CI — it lists anything in the spill directory that is not the
   given corpus shard (leftover runs, orphaned temp files from a crash). *)

let remove_runs (runs : run list) =
  List.iter
    (fun r -> try Sys.remove r.run_path with Sys_error _ -> ())
    runs

let sweep_tmp ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f tmp_suffix then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let stray_files ~dir ~keep =
  if Sys.file_exists dir && Sys.is_directory dir then
    List.sort String.compare
      (List.filter
         (fun f -> not (List.mem f keep))
         (Array.to_list (Sys.readdir dir)))
  else []
