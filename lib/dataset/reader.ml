(* Lazy shard-file iterator with bounded readahead.

   Training and evaluation consume corpus shards through this interface
   instead of materialized lists: at most [readahead] decoded records are
   resident at a time, so the consumer's memory footprint is independent of
   corpus size. Decoding happens in refill batches (amortizing the channel
   reads); a decode error anywhere poisons the reader — iteration stops
   with the error rather than silently truncating the corpus. *)

type t = {
  ic : in_channel;
  path : string;
  readahead : int;
  buf : Codec.record Queue.t;
  mutable eof : bool;
  mutable err : string option;
  mutable closed : bool;
  mutable delivered : int;
}

let default_readahead = 256

let open_file ?(readahead = default_readahead) path : (t, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      match Codec.read_header ic with
      | Error e ->
          close_in_noerr ic;
          Error (Printf.sprintf "%s: %s" path e)
      | Ok () ->
          Ok
            { ic; path; readahead = max 1 readahead; buf = Queue.create ();
              eof = false; err = None; closed = false; delivered = 0 })

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_in_noerr t.ic
  end

let refill t =
  let n = ref 0 in
  while (not t.eof) && t.err = None && !n < t.readahead do
    match Codec.read_record t.ic with
    | Ok (Some r) ->
        Queue.add r t.buf;
        incr n
    | Ok None ->
        t.eof <- true;
        close t
    | Error e ->
        t.err <- Some (Printf.sprintf "%s: %s" t.path e);
        close t
  done

let next t : (Codec.record option, string) result =
  if Queue.is_empty t.buf && (not t.eof) && t.err = None then refill t;
  match Queue.take_opt t.buf with
  | Some r ->
      t.delivered <- t.delivered + 1;
      Ok (Some r)
  | None -> ( match t.err with Some e -> Error e | None -> Ok None)

let delivered t = t.delivered

let fold t ~init ~f =
  let rec go acc =
    match next t with
    | Ok (Some r) -> go (f acc r)
    | Ok None -> Ok acc
    | Error e -> Error e
  in
  let r = go init in
  close t;
  r

(* Convenience whole-file drivers (still streamed internally). *)

let with_file ?readahead path k =
  match open_file ?readahead path with
  | Error e -> Error e
  | Ok t ->
      let r = k t in
      close t;
      r

let read_all ?readahead path : (Codec.record list, string) result =
  with_file ?readahead path (fun t ->
      match fold t ~init:[] ~f:(fun acc r -> r :: acc) with
      | Ok acc -> Ok (List.rev acc)
      | Error e -> Error e)

let digest_file ?readahead path : (int * string, string) result =
  with_file ?readahead path (fun t ->
      match
        fold t ~init:(0, Codec.digest_seed) ~f:(fun (n, h) r ->
            (n + 1, Codec.digest_add h r))
      with
      | Ok (n, h) -> Ok (n, Codec.digest_hex h)
      | Error e -> Error e)

let fold_examples ?readahead path ~init ~f =
  with_file ?readahead path (fun t ->
      fold t ~init ~f:(fun acc r -> f acc r.Codec.example))
