(** Lazy corpus-shard iterator with bounded readahead.

    Streams {!Codec} records off disk holding at most [readahead] decoded
    records in memory, so consumers (training, evaluation) have a footprint
    independent of corpus size. A decode error (truncation, checksum
    mismatch) poisons the iterator: it surfaces as [Error] instead of a
    silently shortened corpus. *)

type t

val default_readahead : int

val open_file : ?readahead:int -> string -> (t, string) result
(** Opens a shard file and validates its header. *)

val next : t -> (Codec.record option, string) result
(** The next record; [Ok None] at a clean end-of-file. *)

val fold :
  t -> init:'a -> f:('a -> Codec.record -> 'a) -> ('a, string) result
(** Streams the remaining records through [f] and closes the reader. *)

val delivered : t -> int
(** Records handed out so far. *)

val close : t -> unit

(** {2 Whole-file drivers (still streamed internally)} *)

val read_all : ?readahead:int -> string -> (Codec.record list, string) result

val digest_file : ?readahead:int -> string -> (int * string, string) result
(** [(records, corpus digest hex)] — the streamed equivalent of
    {!Codec.digest_records}. *)

val fold_examples :
  ?readahead:int ->
  string ->
  init:'a ->
  f:('a -> Example.t -> 'a) ->
  ('a, string) result
