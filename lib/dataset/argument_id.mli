(** Rule-based argument identification and normalization (section 2.1):
    numbers, dates and times in the input sentence are replaced with named
    constants ([NUMBER_0], [DATE_1], [TIME_0]) and the mapping is kept so the
    program can refer to the slots; free-form strings and named entities stay
    as words so they can be copied token by token. The paper performs this
    step with a rule-based algorithm over CoreNLP tokenization. *)

open Genie_thingtalk

type result = {
  tokens : string list;  (** the sentence with named constants substituted *)
  entities : (string * Value.t) list;  (** slot -> value *)
}

val normalize : string list -> result
(** Recognizes bare numbers, clock times ("8:30"), slash dates ("6/22/2019")
    and relative date phrases ("the beginning of the week", "this month").
    Equal values reuse one slot. *)

val normalize_sentence : string -> result
