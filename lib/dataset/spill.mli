(** Sorted spill runs and the external k-way merge.

    Shard workers spill sorted runs ({!Codec} shard files, records in
    ascending seqno order) whenever their buffer reaches the spill
    threshold; the coordinator merges all runs by seqno into one corpus
    shard with bounded memory (one buffered record per run). Run file names
    and contents are pure functions of (shard id, flush index, shard
    input) — a shard retried after an injected crash atomically rewrites
    byte-identical files over the same names, so fault schedules can never
    duplicate or reorder records. *)

type run = {
  run_path : string;
  run_records : int;
  run_first : int;  (** lowest seqno in the run *)
  run_last : int;  (** highest seqno in the run *)
}

module Writer : sig
  type t

  val create : dir:string -> shard:int -> threshold:int -> t
  (** [threshold <= 0] never spills early: one run, flushed at {!close}. *)

  val add : t -> Codec.record -> unit
  (** Buffers the record; flushes a sorted run (atomic temp + rename) when
      the buffer reaches the threshold. *)

  val close : t -> run list
  (** Flushes the tail and returns this shard's runs in flush order. *)

  val bytes_written : t -> int
end

val merge : out:string -> run list -> (int * string, string) result
(** K-way merge of all runs into [out] (atomic temp + rename), enforcing a
    strictly ascending global seqno order — a duplicate, an out-of-order or
    unsorted run, a record-count mismatch, or any codec corruption is an
    [Error]. Returns [(records, corpus digest hex)] computed over the exact
    bytes written, directly comparable to {!Codec.digest_records} on the
    in-memory path. *)

val remove_runs : run list -> unit
val sweep_tmp : dir:string -> unit
(** Removes orphaned [.tmp] files (e.g. after an injected crash). *)

val stray_files : dir:string -> keep:string list -> string list
(** Everything in [dir] except [keep], sorted — the no-leak assertion used
    by tests and the CI spill smoke. *)
