(** Binary on-disk example records for the streaming corpus pipeline.

    Shard files are a 12-byte header (magic ["GENIESHD"], big-endian u32
    version) followed by framed records: u32 payload length, u64
    {!Genie_util.Hash64} payload checksum, payload. The payload carries the
    corpus sequence number plus the full {!Example.t} (programs as canonical
    ThingTalk surface text), and decoding walks a cursor that must consume
    the payload exactly — truncation at any byte boundary, trailing bytes,
    and any flipped byte (via the checksum) are all rejected with [Error],
    mirroring the exact-consumption discipline of the network codec. *)

val magic : string
val version : int

type record = {
  seqno : int;
      (** position in the canonical corpus order — the external-merge key *)
  example : Example.t;
}

val encode : record -> string
(** The framed bytes (length + checksum + payload). Deterministic: equal
    records encode to equal bytes. *)

val decode : string -> (record, string) result
(** Exactly one framed record; trailing bytes are an error. *)

(** {2 File I/O} *)

val write_header : out_channel -> unit
val write_record : out_channel -> record -> unit

val read_header : in_channel -> (unit, string) result
val read_record : in_channel -> (record option, string) result
(** [Ok None] at a clean end-of-file; truncation mid-record, a checksum
    mismatch or a corrupt payload is [Error]. *)

(** {2 Corpus digest}

    A {!Genie_util.Hash64} fold over each record's framed encoding in seqno
    order: digest equality between the in-memory and disk paths is
    byte-for-byte equality of the corpus. *)

val digest_seed : int64
val digest_add : int64 -> record -> int64
val digest_hex : int64 -> string
val digest_records : record list -> int * string
(** [(count, hex)] over a record list in order. *)
