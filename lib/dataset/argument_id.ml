(* Rule-based argument identification and normalization (paper section 2.1):
   numbers, dates and times in the input sentence are identified and replaced
   with named constants of the form NUMBER_0, DATE_1, TIME_0; the mapping from
   named constant to value is kept so the program can refer to the slots.
   Free-form string and entity parameters stay as words so they can be copied
   token by token. *)

open Genie_thingtalk

type result = {
  tokens : string list; (* sentence with named constants substituted *)
  entities : (string * Value.t) list; (* slot -> value *)
}

let is_digit c = c >= '0' && c <= '9'

let parse_number tok =
  if tok <> "" && String.for_all (fun c -> is_digit c || c = '.') tok
     && String.exists is_digit tok
  then float_of_string_opt tok
  else None

(* "8:00" / "12:30" *)
let parse_time tok =
  match String.index_opt tok ':' with
  | Some i
    when i > 0
         && String.for_all is_digit (String.sub tok 0 i)
         && i + 1 < String.length tok
         && String.for_all is_digit (String.sub tok (i + 1) (String.length tok - i - 1)) ->
      let h = int_of_string (String.sub tok 0 i) in
      let m = int_of_string (String.sub tok (i + 1) (String.length tok - i - 1)) in
      if h < 24 && m < 60 then Some (h, m) else None
  | _ -> None

(* "6/22/2019" *)
let parse_date tok =
  match String.split_on_char '/' tok with
  | [ m; d; y ]
    when m <> "" && d <> "" && y <> ""
         && List.for_all (String.for_all is_digit) [ m; d; y ] ->
      Some
        (Value.D_absolute
           { year = int_of_string y; month = int_of_string m; day = int_of_string d })
  | _ -> None

(* Multi-token date phrases, e.g. "the beginning of the week". *)
let date_phrases : (string list * Value.date) list =
  let units = [ ("day", "day"); ("week", "week"); ("month", "mon"); ("year", "year") ] in
  List.concat_map
    (fun (word, unit) ->
      [ ([ "the"; "beginning"; "of"; "the"; word ], Value.D_start_of unit);
        ([ "the"; "start"; "of"; "the"; word ], Value.D_start_of unit);
        ([ "the"; "end"; "of"; "the"; word ], Value.D_end_of unit);
        ([ "this"; word ], Value.D_start_of unit) ])
    units
  @ [ ([ "today" ], Value.D_start_of "day"); ([ "tomorrow" ], Value.D_end_of "day") ]

let match_prefix phrase toks =
  let rec go p t =
    match (p, t) with
    | [], rest -> Some rest
    | x :: p', y :: t' when x = y -> go p' t'
    | _ -> None
  in
  go phrase toks

let normalize (tokens : string list) : result =
  let counters = Hashtbl.create 4 in
  let entities = ref [] in
  let slot kind v =
    (* reuse the slot if the same value was already seen *)
    match
      List.find_opt
        (fun (s, v') -> Value.equal v v' && Genie_util.Tok.starts_with ~prefix:kind s)
        !entities
    with
    | Some (s, _) -> s
    | None ->
        let k = try Hashtbl.find counters kind with Not_found -> 0 in
        Hashtbl.replace counters kind (k + 1);
        let s = Printf.sprintf "%s_%d" kind k in
        entities := !entities @ [ (s, v) ];
        s
  in
  let rec go toks acc =
    match toks with
    | [] -> List.rev acc
    | tok :: rest -> (
        (* multi-token date phrases first *)
        match
          List.find_map
            (fun (phrase, d) ->
              Option.map (fun rest' -> (d, rest')) (match_prefix phrase toks))
            date_phrases
        with
        | Some (d, rest') -> go rest' (slot "DATE" (Value.Date d) :: acc)
        | None -> (
            match parse_time tok with
            | Some (h, m) -> go rest (slot "TIME" (Value.Time (h, m)) :: acc)
            | None -> (
                match parse_date tok with
                | Some d -> go rest (slot "DATE" (Value.Date d) :: acc)
                | None -> (
                    match parse_number tok with
                    | Some n -> go rest (slot "NUMBER" (Value.Number n) :: acc)
                    | None -> go rest (tok :: acc)))))
  in
  let tokens = go tokens [] in
  { tokens; entities = !entities }

(* Applies normalization to an example sentence and returns the serializer
   entity map needed for its program. *)
let normalize_sentence (s : string) = normalize (Genie_util.Tok.tokenize s)
