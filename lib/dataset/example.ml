(* Dataset examples: a natural-language sentence paired with the ThingTalk
   program(s) it denotes. Test-set examples may carry several annotations,
   because the paper annotates each test sentence with all programs that
   provide a valid interpretation (section 5). *)

open Genie_thingtalk

type source =
  | Synthesized
  | Paraphrase
  | Evaluation of string (* "developer" | "cheatsheet" | "ifttt" *)

type t = {
  id : int;
  tokens : string list;
  program : Ast.program;
  (* alternative valid interpretations, for test sets *)
  alternatives : Ast.program list;
  source : source;
}

let source_to_string = function
  | Synthesized -> "synthesized"
  | Paraphrase -> "paraphrase"
  | Evaluation which -> "eval:" ^ which

let make ?(alternatives = []) ~id ~tokens ~program ~source () =
  { id; tokens; program; alternatives; source }

let sentence e = String.concat " " e.tokens

let all_programs e = e.program :: e.alternatives

(* Strips the quote markers around free-form string parameters; the paper
   removes quotes before sentences are used for training. *)
let strip_quotes e = { e with tokens = List.filter (fun t -> t <> "\"") e.tokens }

let is_primitive e = Ast.is_primitive e.program
let is_compound e = not (is_primitive e)
