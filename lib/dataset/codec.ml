(* On-disk example records: the binary codec behind the streaming corpus
   pipeline (spill runs, merged corpus shards, lazy readers).

   Same discipline as the network framing in Net.Codec: big-endian
   fixed-width integers, length-prefixed strings, and a cursor walk on
   decode that must consume the payload exactly — trailing bytes, a short
   read, or a length running past the end are all hard errors, never
   silently ignored. On top of that, every record carries a Hash64 checksum
   of its payload, so a single flipped byte anywhere in a shard file is
   rejected instead of decoding into a plausible-but-wrong example.

   Programs travel as canonical ThingTalk surface text (Printer is
   deterministic, Parser round-trips it), so a record's encoding is a pure
   function of its content — which is what makes whole-corpus byte-identity
   between the in-memory and spill-to-disk paths checkable with one digest. *)

open Genie_thingtalk
module Hash64 = Genie_util.Hash64

let magic = "GENIESHD"
let version = 1

(* Guards against absurd allocations when a corrupted length field survives
   long enough to be believed. Far above any real example. *)
let max_payload = 16 * 1024 * 1024

type record = { seqno : int; example : Example.t }

exception Bad of string

(* --- writers -------------------------------------------------------------- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u32 buf v =
  if v < 0 then raise (Bad "u32 underflow");
  w_u8 buf (v lsr 24);
  w_u8 buf (v lsr 16);
  w_u8 buf (v lsr 8);
  w_u8 buf v

let w_u64 buf (v : int64) =
  for i = 7 downto 0 do
    w_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_string_list buf ss =
  w_u32 buf (List.length ss);
  List.iter (w_string buf) ss

(* --- readers -------------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then raise (Bad "truncated payload")

let r_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let a = r_u8 c in
  let b = r_u8 c in
  let d = r_u8 c in
  let e = r_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let r_u64 c =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r_u8 c))
  done;
  !v

let r_string c =
  let n = r_u32 c in
  if n > max_payload then raise (Bad "string length too large");
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let r_string_list c =
  let n = r_u32 c in
  if n > max_payload then raise (Bad "list length too large");
  List.init n (fun _ -> r_string c)

(* --- record payload ------------------------------------------------------- *)

let source_tag = function
  | Example.Synthesized -> 0
  | Example.Paraphrase -> 1
  | Example.Evaluation _ -> 2

let encode_payload (r : record) : string =
  let buf = Buffer.create 256 in
  let e = r.example in
  w_u32 buf r.seqno;
  w_u32 buf e.Example.id;
  w_string_list buf e.Example.tokens;
  w_string buf (Printer.program_to_string e.Example.program);
  w_string_list buf (List.map Printer.program_to_string e.Example.alternatives);
  w_u8 buf (source_tag e.Example.source);
  (match e.Example.source with
  | Example.Evaluation s -> w_string buf s
  | _ -> ());
  Buffer.contents buf

let parse_text text =
  match Parser.parse_program_opt text with
  | Some p -> p
  | None -> raise (Bad ("unparseable program text: " ^ text))

let decode_payload (s : string) : record =
  let c = { s; pos = 0 } in
  let seqno = r_u32 c in
  let id = r_u32 c in
  let tokens = r_string_list c in
  let program = parse_text (r_string c) in
  let alternatives = List.map parse_text (r_string_list c) in
  let source =
    match r_u8 c with
    | 0 -> Example.Synthesized
    | 1 -> Example.Paraphrase
    | 2 -> Example.Evaluation (r_string c)
    | t -> raise (Bad (Printf.sprintf "unknown source tag %d" t))
  in
  if c.pos <> String.length c.s then raise (Bad "trailing payload bytes");
  { seqno; example = Example.make ~alternatives ~id ~tokens ~program ~source () }

(* --- record framing: u32 length, u64 payload hash, payload ----------------- *)

let frame_overhead = 4 + 8

let encode (r : record) : string =
  let payload = encode_payload r in
  let buf = Buffer.create (String.length payload + frame_overhead) in
  w_u32 buf (String.length payload);
  w_u64 buf (Hash64.string 0L payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_frame (c : cursor) : record =
  let len = r_u32 c in
  if len > max_payload then raise (Bad "record length too large");
  need c (8 + len);
  let hash = r_u64 c in
  let payload = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  if not (Int64.equal hash (Hash64.string 0L payload)) then
    raise (Bad "record checksum mismatch");
  decode_payload payload

let decode (s : string) : (record, string) result =
  try
    let c = { s; pos = 0 } in
    let r = decode_frame c in
    if c.pos <> String.length s then Error "trailing record bytes"
    else Ok r
  with Bad msg -> Error msg

(* --- file header ----------------------------------------------------------- *)

let header () =
  let buf = Buffer.create 12 in
  Buffer.add_string buf magic;
  w_u32 buf version;
  Buffer.contents buf

let header_length = String.length magic + 4

let check_header (s : string) : (unit, string) result =
  if String.length s < header_length then Error "truncated shard header"
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error "bad shard magic"
  else
    let c = { s; pos = String.length magic } in
    let v = r_u32 c in
    if v <> version then
      Error (Printf.sprintf "unsupported shard version %d (expected %d)" v version)
    else Ok ()

(* --- channel I/O ----------------------------------------------------------- *)

let write_header oc = output_string oc (header ())
let write_record oc r = output_string oc (encode r)

let really_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Full (Bytes.unsafe_to_string b)
    else
      match input ic b off (n - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | k -> go (off + k)
  in
  go 0

let read_header ic : (unit, string) result =
  match really_read ic header_length with
  | `Full s -> check_header s
  | `Eof | `Short -> Error "truncated shard header"

(* [Ok None] at a clean end-of-file; truncation anywhere inside a record is
   an error, never a silent stop. *)
let read_record ic : (record option, string) result =
  match really_read ic 4 with
  | `Eof -> Ok None
  | `Short -> Error "truncated record length"
  | `Full lens -> (
      let len = r_u32 { s = lens; pos = 0 } in
      if len > max_payload then Error "record length too large"
      else
        match really_read ic (8 + len) with
        | `Eof | `Short -> Error "truncated record body"
        | `Full body -> (
            let framed = lens ^ body in
            match decode framed with Ok r -> Ok (Some r) | Error e -> Error e))

(* --- corpus digest ---------------------------------------------------------

   A Hash64 fold over each record's framed encoding, in seqno order. Both
   the in-memory path (fold over the list) and the disk path (fold over
   merged file contents) produce exactly these bytes, so digest equality is
   byte-for-byte equality of the corpus. *)

let digest_seed = Hash64.string 0L "genie.corpus"
let digest_add h r = Hash64.string h (encode r)
let digest_hex = Hash64.to_hex

let digest_records (rs : record list) : int * string =
  let n, h =
    List.fold_left (fun (n, h) r -> (n + 1, digest_add h r)) (0, digest_seed) rs
  in
  (n, digest_hex h)
