(* Dataset statistics: the training-set characteristics of Fig. 7 and the
   vocabulary-growth numbers of section 5.2. *)

open Genie_thingtalk

type characteristics = {
  total : int;
  primitive : float; (* fractions *)
  primitive_with_filters : float;
  compound : float;
  compound_with_param_passing : float;
  compound_with_filters : float;
}

(* Classify a program into the five slices of Fig. 7. A compound command uses
   two functions; "+ parameter passing" and "+ filters" refine the compound
   slice; primitive commands split on filters only. *)
let classify (p : Ast.program) =
  let primitive = Ast.is_primitive p in
  let filters = Ast.program_predicates p <> [] in
  let passing = Ast.has_param_passing p in
  match (primitive, filters, passing) with
  | true, false, _ -> `Primitive
  | true, true, _ -> `Primitive_filters
  | false, false, false -> `Compound
  | false, false, true -> `Compound_passing
  | false, true, _ -> `Compound_filters

let characteristics (programs : Ast.program list) : characteristics =
  let total = List.length programs in
  let count tag = List.length (List.filter (fun p -> classify p = tag) programs) in
  let frac tag = float_of_int (count tag) /. float_of_int (max 1 total) in
  { total;
    primitive = frac `Primitive;
    primitive_with_filters = frac `Primitive_filters;
    compound = frac `Compound;
    compound_with_param_passing = frac `Compound_passing;
    compound_with_filters = frac `Compound_filters }

let pp_characteristics fmt (c : characteristics) =
  Format.fprintf fmt
    "@[<v>total sentences: %d@,primitive commands: %.0f%%@,  + filters: %.0f%%@,compound commands: %.0f%%@,  + parameter passing: %.0f%%@,  + filters: %.0f%%@]"
    c.total (100. *. c.primitive)
    (100. *. c.primitive_with_filters)
    (100. *. c.compound)
    (100. *. c.compound_with_param_passing)
    (100. *. c.compound_with_filters)

(* --- vocabulary growth ------------------------------------------------------ *)

let distinct_words (sentences : string list list) =
  let c = Genie_util.Counter.create () in
  List.iter (List.iter (fun w -> Genie_util.Counter.add c w)) sentences;
  Genie_util.Counter.distinct c

let distinct_bigrams (sentences : string list list) =
  let c = Genie_util.Counter.create () in
  List.iter
    (fun s -> List.iter (fun bg -> Genie_util.Counter.add c (String.concat " " bg)) (Genie_util.Tok.bigrams s))
    sentences;
  Genie_util.Counter.distinct c

(* Average fraction of new words / bigrams a paraphrase introduces over its
   source synthesized sentence (the paper reports 38% and 65%). *)
let paraphrase_novelty (pairs : (string list * string list) list) =
  let frac_new extract (orig, para) =
    let orig_set = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace orig_set x ()) (extract orig);
    let para_items = extract para in
    if para_items = [] then 0.0
    else
      float_of_int (List.length (List.filter (fun x -> not (Hashtbl.mem orig_set x)) para_items))
      /. float_of_int (List.length para_items)
  in
  let avg f =
    match pairs with
    | [] -> 0.0
    | _ -> List.fold_left (fun acc p -> acc +. f p) 0.0 pairs /. float_of_int (List.length pairs)
  in
  let words toks = toks in
  let bigrams toks = List.map (String.concat " ") (Genie_util.Tok.bigrams toks) in
  (avg (frac_new words), avg (frac_new bigrams))

let distinct_programs lib (programs : Ast.program list) =
  let tbl = Hashtbl.create 1024 in
  List.iter (fun p -> Hashtbl.replace tbl (Canonical.canonical_string lib p) ()) programs;
  Hashtbl.length tbl

let distinct_function_combos (programs : Ast.program list) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun p ->
      let fns =
        List.sort_uniq compare (List.map Ast.Fn.to_string (Ast.program_functions p))
      in
      Hashtbl.replace tbl (String.concat "+" fns) ())
    programs;
  Hashtbl.length tbl
