(** Filter and edge-filter phrase tables: the paper's construct templates for
    filters and parameters (68 of them in the reference configuration) --
    natural ways to express a boolean predicate on an output parameter,
    keyed by parameter name with typed generic fallbacks so every function
    gets filters. *)

open Genie_thingtalk

type constraint_ = C_any | C_string | C_numeric | C_date | C_array | C_bool | C_enum

type phrase = { pattern : string; op : Ast.comp_op; constr : constraint_ }

val by_param : (string * phrase list) list
val generic : string -> phrase list
val type_matches : constraint_ -> Ttype.t -> bool

val phrases_for : name:string -> ty:Ttype.t -> phrase list
(** Named phrases when available, generic fallbacks otherwise. *)

val edge_phrases : name:string -> (string * Ast.comp_op) list
(** "the X drops below $v" and friends, for numeric parameters (the edge
    filter example of section 2.3). *)
