(** Synthesis-time parameter-value pools.

    Small canonical pools used while expanding templates; the augmentation
    stage substitutes values from the large gazettes later, so variety here
    only needs to cover types, not vocabulary. *)

open Genie_thingtalk

val strings : string list
val entity_pools : (string * string list) list
val numbers : float list
val locations : Value.location list
val times : (int * int) list
val dates : Value.date list
val path_names : string list
val urls : string list
val measure_pool : string -> (float * string) list

val sample : Genie_util.Rng.t -> Ttype.t -> Value.t
(** A value of the requested type, drawn from the pools. *)
