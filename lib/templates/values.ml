(* Synthesis-time parameter-value pools.

   These are the small canonical pools used while expanding templates; the
   augmentation stage (lib/augment) later substitutes values from the large
   gazettes, so variety here only needs to cover types, not vocabulary. *)

open Genie_thingtalk

let strings =
  [ "hello world"; "funny cat"; "good morning"; "happy birthday"; "research update";
    "lunch time"; "on my way"; "call me back"; "meeting notes" ]

let entity_pools : (string * string list) list =
  [ ("tt:username", [ "alice"; "bob"; "pldi"; "justinbieber" ]);
    ("tt:hashtag", [ "cats"; "foodie"; "tbt"; "science" ]);
    ("tt:song", [ "shake it off"; "bohemian rhapsody"; "hey jude"; "wake me up inside" ]);
    ("tt:artist", [ "taylor swift"; "queen"; "the beatles"; "evanescence" ]);
    ("tt:album", [ "abbey road"; "1989"; "a night at the opera" ]);
    ("tt:playlist", [ "dance dance revolution"; "workout"; "study jams" ]);
    ("tt:channel", [ "veritasium"; "nasa"; "cooking with dog" ]);
    ("tt:subreddit", [ "aww"; "programming"; "worldnews" ]);
    ("tt:repo", [ "stanford-oval/genie-toolkit"; "ocaml/dune" ]);
    ("tt:slack_channel", [ "general"; "random"; "team-updates" ]);
    ("tt:stock_id", [ "goog"; "aapl"; "msft" ]);
    ("tt:sports_team", [ "warriors"; "sharks"; "giants" ]);
    ("tt:iso_lang_code", [ "italian"; "chinese"; "spanish" ]);
    ("tt:tweet_id", [ "tweet 12345" ]);
    ("tt:email_id", [ "email 99" ]);
    ("tt:media_id", [ "media 7" ]);
    ("tt:image_id", [ "image 3" ]);
    ("tt:video_id", [ "video 8" ]);
    ("tt:contact", [ "mom"; "john"; "my boss" ]) ]

let numbers = [ 3.0; 5.0; 10.0; 25.0; 42.0; 100.0 ]

let locations =
  [ Value.L_named "palo alto"; Value.L_named "new york"; Value.L_named "san francisco";
    Value.L_relative "home"; Value.L_relative "work"; Value.L_relative "current_location" ]

let times = [ (8, 0); (12, 30); (18, 0); (22, 15) ]

let dates =
  [ Value.D_start_of "week"; Value.D_start_of "day"; Value.D_end_of "mon";
    Value.D_absolute { year = 2019; month = 6; day = 22 } ]

let path_names = [ "/reports/q1.pdf"; "/photos/vacation"; "notes.txt"; "/music/mix.mp3" ]

let urls = [ "https://example.com/feed"; "https://news.site/rss" ]

let measure_pool (base : string) =
  match base with
  | "C" -> [ (60.0, "F"); (20.0, "C"); (75.0, "F") ]
  | "byte" -> [ (10.0, "MB"); (1.0, "GB"); (500.0, "KB") ]
  | "ms" -> [ (30.0, "min"); (1.0, "h"); (2.0, "day") ]
  | "m" -> [ (5.0, "km"); (100.0, "m"); (3.0, "mi") ]
  | "kg" -> [ (70.0, "kg"); (150.0, "lb") ]
  | "mps" -> [ (10.0, "mph"); (5.0, "mps") ]
  | "bpm" -> [ (120.0, "bpm"); (500.0, "bpm") ]
  | _ -> [ (1.0, base) ]

(* Sample a value of the requested type. *)
let rec sample rng (ty : Ttype.t) : Value.t =
  let open Genie_util in
  match ty with
  | Ttype.String -> Value.String (Rng.pick rng strings)
  | Ttype.Number -> Value.Number (Rng.pick rng numbers)
  | Ttype.Boolean -> Value.Boolean (Rng.bool rng)
  | Ttype.Date -> Value.Date (Rng.pick rng dates)
  | Ttype.Time ->
      let h, m = Rng.pick rng times in
      Value.Time (h, m)
  | Ttype.Location -> Value.Location (Rng.pick rng locations)
  | Ttype.Path_name -> Value.String (Rng.pick rng path_names)
  | Ttype.Url -> Value.String (Rng.pick rng urls)
  | Ttype.Picture -> Value.String "https://img.example.com/pic.jpg"
  | Ttype.Phone_number -> Value.String (Rng.pick rng [ "555-1234"; "650-723-2300" ])
  | Ttype.Email_address ->
      Value.String (Rng.pick rng [ "alice@example.com"; "bob@work.org" ])
  | Ttype.Currency -> Value.Currency (Rng.pick rng numbers, "usd")
  | Ttype.Measure base ->
      let n, u = Rng.pick rng (measure_pool base) in
      Value.Measure [ (n, u) ]
  | Ttype.Enum vs -> Value.Enum (Rng.pick rng vs)
  | Ttype.Entity ety -> (
      match List.assoc_opt ety entity_pools with
      | Some pool -> Value.Entity { ty = ety; value = Rng.pick rng pool; display = None }
      | None -> Value.Entity { ty = ety; value = ety ^ " thing"; display = None })
  | Ttype.Array elt -> Value.Array [ sample rng elt ]
