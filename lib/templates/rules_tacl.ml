(* Construct templates for TACL, the ThingTalk access control language of
   section 6.2 (grammar in paper Fig. 10). The paper uses 6 construct
   templates; a policy pairs a predicate on the requesting principal with a
   restricted primitive command.

   Policies are also given a bijective *program encoding* so the same semantic
   parser machinery (skeletons, alignment, slot filling) applies unchanged:
   the principal becomes a filter on a dedicated builtin query. *)

open Genie_thingtalk
open Grammar

(* The dedicated class backing the program encoding of policies. *)
let policy_class =
  Schema.cls "org.thingpedia.builtin.policy" ~doc:"access-control source principal"
    [ Schema.query "source" ~monitorable:false ~is_list:false
        ~doc:"the requesting principal"
        [ Schema.out "source" (Ttype.Entity "tt:contact") ] ]

let source_fn = Ast.Fn.make "org.thingpedia.builtin.policy" "source"

(* --- policy <-> program encoding -------------------------------------------- *)

let encode (p : Ast.policy) : Ast.program =
  let source_q = Ast.Q_filter (Ast.Q_invoke { Ast.fn = source_fn; in_params = [] }, p.Ast.source) in
  match p.Ast.target with
  | Ast.Policy_query (inv, pred) ->
      let target_q =
        match pred with Ast.P_true -> Ast.Q_invoke inv | _ -> Ast.Q_filter (Ast.Q_invoke inv, pred)
      in
      { Ast.stream = Ast.S_now;
        query = Some (Ast.Q_join (source_q, target_q, []));
        action = Ast.A_notify }
  | Ast.Policy_action (inv, pred) ->
      let q = match pred with Ast.P_true -> source_q | _ -> Ast.Q_filter (source_q, pred) in
      { Ast.stream = Ast.S_now; query = Some q; action = Ast.A_invoke inv }

let rec strip_source_filter q =
  match q with
  | Ast.Q_invoke inv when Ast.Fn.equal inv.Ast.fn source_fn -> Some Ast.P_true
  | Ast.Q_filter (inner, pred) -> (
      match strip_source_filter inner with
      | Some Ast.P_true -> Some pred
      | Some p -> Some (Ast.P_and [ p; pred ])
      | None -> None)
  | _ -> None

let decode (p : Ast.program) : Ast.policy option =
  match p with
  | { Ast.stream = Ast.S_now; query = Some (Ast.Q_join (src, target, [])); action = Ast.A_notify }
    -> (
      match strip_source_filter src with
      | None -> None
      | Some source -> (
          let rec unfilter q acc =
            match q with
            | Ast.Q_invoke inv -> Some (inv, acc)
            | Ast.Q_filter (inner, pred) ->
                unfilter inner (match acc with Ast.P_true -> pred | _ -> Ast.P_and [ pred; acc ])
            | _ -> None
          in
          match unfilter target Ast.P_true with
          | Some (inv, pred) -> Some { Ast.source; target = Ast.Policy_query (inv, pred) }
          | None -> None))
  | { Ast.stream = Ast.S_now; query = Some q; action = Ast.A_invoke inv } -> (
      match strip_source_filter q with
      | Some source -> Some { Ast.source; target = Ast.Policy_action (inv, Ast.P_true) }
      | None -> (
          match q with
          | Ast.Q_filter (inner, pred) -> (
              match strip_source_filter inner with
              | Some source ->
                  Some { Ast.source; target = Ast.Policy_action (inv, pred) }
              | None -> None)
          | _ -> None))
  | _ -> None

(* --- terminals ----------------------------------------------------------------- *)

(* Principal phrases: named contacts plus role nouns; "anyone" maps to true. *)
let person_terminals rng ~samples : Derivation.t list =
  let people = [ "my secretary"; "my mom"; "my boss"; "alice"; "bob"; "my roommate" ] in
  let mk_person name =
    { Derivation.tokens = Genie_util.Tok.tokenize name;
      value =
        Derivation.V_frag
          (Ast.F_predicate
             (Ast.P_atom
                { lhs = "source";
                  op = Ast.Op_eq;
                  rhs = Value.Entity { ty = "tt:contact"; value = name; display = None } }));
      depth = 0;
      fns = [] }
  in
  ignore rng;
  ignore samples;
  { Derivation.tokens = [ "anyone" ];
    value = Derivation.V_frag (Ast.F_predicate Ast.P_true);
    depth = 0;
    fns = [] }
  :: List.map mk_person people

(* --- the 6 construct templates --------------------------------------------------- *)

let to_primitive_query q =
  let rec go q acc =
    match q with
    | Ast.Q_invoke inv -> Some (inv, acc)
    | Ast.Q_filter (inner, pred) ->
        go inner (match acc with Ast.P_true -> pred | _ -> Ast.P_and [ pred; acc ])
    | Ast.Q_join _ | Ast.Q_aggregate _ -> None
  in
  go q Ast.P_true

let sem_policy_query = function
  | [ person; np ] -> (
      match (as_pred person, as_query np) with
      | Some source, Some q -> (
          match to_primitive_query q with
          | Some (inv, pred) ->
              ok (Derivation.V_frag (Ast.F_policy { Ast.source; target = Ast.Policy_query (inv, pred) }))
          | None -> None)
      | _ -> None)
  | _ -> None

let sem_policy_action = function
  | [ person; vp ] -> (
      match (as_pred person, as_action vp) with
      | Some source, Some (Ast.A_invoke inv) ->
          ok (Derivation.V_frag (Ast.F_policy { Ast.source; target = Ast.Policy_action (inv, Ast.P_true) }))
      | _ -> None)
  | _ -> None

let rule name lhs rhs sem = { name; lhs; rhs; sem; flag = Both }

let rules _lib : rule list =
  [ rule "pol_allowed_see" "policy" [ N "person"; L "is allowed to see"; N "np" ] sem_policy_query;
    rule "pol_can_read" "policy" [ N "person"; L "can read"; N "np" ] sem_policy_query;
    rule "pol_let_see" "policy" [ L "let"; N "person"; L "see"; N "np" ] sem_policy_query;
    rule "pol_allowed_do" "policy" [ N "person"; L "is allowed to"; N "vp" ] sem_policy_action;
    rule "pol_can_do" "policy" [ N "person"; L "can"; N "vp" ] sem_policy_action;
    rule "pol_allow_do" "policy" [ L "allow"; N "person"; L "to"; N "vp" ] sem_policy_action ]
