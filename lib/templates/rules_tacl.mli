(** Construct templates for TACL, the ThingTalk access-control language of
    paper section 6.2 (grammar in Fig. 10), plus the bijective program
    encoding that lets the ordinary parser machinery train on policies. *)

open Genie_thingtalk

val policy_class : Schema.cls
(** The builtin class backing the encoding: a query whose single output is
    the requesting principal. *)

val source_fn : Ast.Fn.t

val encode : Ast.policy -> Ast.program
(** The principal predicate becomes a filter on {!source_fn}; query policies
    join it with the target, action policies pair it with the action. The
    encoding type-checks against a library extended with {!policy_class}. *)

val decode : Ast.program -> Ast.policy option
(** Inverse of {!encode}; [None] on programs that are not policy encodings
    (round-trip property-tested). *)

val person_terminals : Genie_util.Rng.t -> samples:int -> Derivation.t list
(** Principal phrases ("my secretary", "alice", "anyone" = true). *)

val rules : Schema.Library.t -> Grammar.rule list
(** The paper's 6 construct templates ("X is allowed to see ...", "allow X to
    ...", ...). *)
