(* Construct templates for TT+A, the aggregation extension of section 6.3:

     Query q: agg [max | min | sum | avg] pn of (q) | agg count of (q)

   The paper uses 6 templates and tests aggregation over primitive queries. *)

open Genie_thingtalk
open Grammar

(* Field terminals: numeric output parameters by their spoken name. *)
let field_terminals lib : Derivation.t list =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  List.iter
    (fun (f : Schema.func) ->
      List.iter
        (fun (prm : Schema.param) ->
          if Ttype.is_numeric prm.Schema.p_type && not (Hashtbl.mem seen prm.Schema.p_name)
          then begin
            Hashtbl.replace seen prm.Schema.p_name ();
            out :=
              { Derivation.tokens =
                  Genie_util.Tok.tokenize
                    (String.map (fun c -> if c = '_' then ' ' else c) prm.Schema.p_name);
                value = Derivation.V_frag (Ast.F_value (Value.String prm.Schema.p_name));
                depth = 0;
                fns = [] }
              :: !out
          end)
        (Schema.out_params f))
    (Schema.Library.functions lib);
  !out

(* The field must be a numeric output parameter of the aggregated query. *)
let check_field lib q field =
  match List.assoc_opt field (Typecheck.query_out_params lib q) with
  | Some ty -> Ttype.is_numeric ty
  | None -> false

let sem_agg lib op = function
  | [ fld; np ] -> (
      match (as_value fld, as_query np) with
      | Some (Value.String field), Some q when check_field lib q field ->
          ok (Derivation.V_frag (Ast.F_query (Ast.Q_aggregate { op; field = Some field; inner = q })))
      | _ -> None)
  | _ -> None

let sem_count lib = function
  | [ np ] ->
      Option.bind (as_query np) (fun q ->
          if Typecheck.query_is_list lib q then
            ok
              (Derivation.V_frag
                 (Ast.F_query (Ast.Q_aggregate { op = Ast.Agg_count; field = None; inner = q })))
          else None)
  | _ -> None

let rule name lhs rhs sem = { name; lhs; rhs; sem; flag = Both }

(* The 6 aggregation construct templates. *)
let rules lib : rule list =
  [ rule "agg_total" "np" [ L "the total"; N "aggfield"; L "of"; N "np" ] (sem_agg lib Ast.Agg_sum);
    rule "agg_average" "np" [ L "the average"; N "aggfield"; L "of"; N "np" ] (sem_agg lib Ast.Agg_avg);
    rule "agg_max" "np" [ L "the highest"; N "aggfield"; L "of"; N "np" ] (sem_agg lib Ast.Agg_max);
    rule "agg_min" "np" [ L "the lowest"; N "aggfield"; L "of"; N "np" ] (sem_agg lib Ast.Agg_min);
    rule "agg_count" "np" [ L "the number of"; N "np" ] (sem_count lib);
    rule "agg_how_many" "command" [ L "how many"; N "np"; L "are there" ]
      (fun children ->
        match sem_count lib children with
        | Some { value = Derivation.V_frag (Ast.F_query q); _ } ->
            ok
              (Derivation.V_frag
                 (Ast.F_program { Ast.stream = Ast.S_now; query = Some q; action = Ast.A_notify }))
        | _ -> None) ]

let terminals lib = [ ("aggfield", field_terminals lib) ]
