(** Derivations: the intermediate values produced while expanding templates.

    A derivation pairs an utterance (token list) with a semantic value. Most
    values are ThingTalk fragments; {e functional} values are invocations
    with one unfilled input parameter (a hole), which later rules fill with a
    sub-phrase (building a join with parameter passing) or anaphorically
    ("post {e it} on twitter"). *)

open Genie_thingtalk

type dvalue =
  | V_frag of Ast.fragment
  | V_fun of {
      inv : Ast.invocation;
      hole_ip : string;
      hole_ty : Ttype.t;
      is_query : bool;
    }

type t = {
  tokens : string list;  (** {!hole_token} marks a V_fun's hole *)
  value : dvalue;
  depth : int;
  fns : Ast.Fn.t list;  (** skill functions used, for sampling statistics *)
}

val hole_token : string

val substitute_hole : string list -> string list -> string list
(** Replaces every {!hole_token} with the replacement tokens. *)

val sentence : t -> string
val fragment_program : Ast.fragment -> Ast.program option

val value_key : dvalue -> string
val key : t -> string
(** The deduplication key: sentence plus semantics. *)
