(** Derivations: the intermediate values produced while expanding templates.

    A derivation pairs an utterance (token list) with a semantic value. Most
    values are ThingTalk fragments; {e functional} values are invocations
    with one unfilled input parameter (a hole), which later rules fill with a
    sub-phrase (building a join with parameter passing) or anaphorically
    ("post {e it} on twitter"). *)

open Genie_thingtalk

type dvalue =
  | V_frag of Ast.fragment
  | V_fun of {
      inv : Ast.invocation;
      hole_ip : string;
      hole_ty : Ttype.t;
      is_query : bool;
    }

type t = {
  tokens : string list;  (** {!hole_token} marks a V_fun's hole *)
  value : dvalue;
  depth : int;
  fns : Ast.Fn.t list;  (** skill functions used, for sampling statistics *)
}

val hole_token : string

val substitute_hole : string list -> string list -> string list
(** Replaces every {!hole_token} with the replacement tokens. *)

val sentence : t -> string
val fragment_program : Ast.fragment -> Ast.program option

val value_key : dvalue -> string

val key : t -> string
(** The deduplication key: sentence plus semantics. Printing the semantics
    dominates the cost, so the result is memoized per physical derivation
    (weak table — entries are reclaimed with their derivations): repeat
    digests, sorts and golden dumps over the same corpus print each program
    once. *)

val sort_key : t -> string
(** Structural merge key: depth (zero-padded) plus {!key}. A pure function
    of the derivation's content, so sorting by it is stable across worker
    counts, schedulers and hash seeds. *)

val compare_structural : t -> t -> int
(** [String.compare] on {!sort_key} — a total order on derivations,
    antisymmetric up to [key]-equality (the granularity dedup uses). *)

val structural_hash : t -> int64
(** Deterministic 64-bit hash of (depth, {!key}) via {!Genie_util.Hash64};
    the memo-cache key ingredient for shared-subtree detection. *)

val decorate : t -> string * int64
(** [(sort_key d, structural_hash d)] with the underlying {!key} printed
    only once. *)

val decorate_keyed : t -> string -> string * int64
(** {!decorate} for callers that already hold [key d] (the synthesis
    engine's merge stage, which computed it for deduplication): no
    reprinting at all. *)
