(* The NL-template grammar: construct templates (rules) over grammar
   categories, plus the terminal derivations obtained by instantiating
   primitive templates with sampled parameter values.

   A construct template has the form of the paper's

     lhs := [literal | vn : rhs]+ -> sf

   where the semantic function [sf] may reject a combination (return None,
   the paper's bottom) to enforce typing constraints such as monitorability. *)

open Genie_thingtalk
open Genie_thingpedia

type symbol = L of string (* literal words, space separated *) | N of string

type sem_result = {
  value : Derivation.dvalue;
  (* tokens are normally the concatenation of the RHS; rules that substitute
     into a hole override them *)
  tokens_override : string list option;
}

type flag = Both | Training_only | Paraphrase_only

type rule = {
  name : string;
  lhs : string;
  rhs : symbol list;
  sem : Derivation.t list -> sem_result option;
  flag : flag;
}

type t = {
  lib : Schema.Library.t;
  rules : rule list;
  terminals : (string, Derivation.t list) Hashtbl.t;
  start : string;
}

let ok value = Some { value; tokens_override = None }
let ok_tokens value tokens = Some { value; tokens_override = Some tokens }

(* --- accessors used by semantic functions -------------------------------- *)

let as_query (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_query q) -> Some q | _ -> None

let as_stream (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_stream s) -> Some s | _ -> None

let as_action (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_action a) -> Some a | _ -> None

let as_pred (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_predicate p) -> Some p | _ -> None

let as_value (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_value v) -> Some v | _ -> None

let as_program (d : Derivation.t) =
  match d.value with Derivation.V_frag (Ast.F_program p) -> Some p | _ -> None

(* --- terminal generation --------------------------------------------------- *)

let prim_category (p : Prim.t) ~(is_action : bool) =
  match (p.Prim.category, is_action) with
  | Prim.Np, _ -> "np"
  | Prim.Vp, true -> "vp"
  | Prim.Vp, false -> "qvp"
  | Prim.Wp, _ -> "wp"

(* Instantiate a primitive template with sampled placeholder values. *)
let instantiate_prim_with_cat rng (p : Prim.t) : (Derivation.t * string) option =
  let env = List.map (fun (name, ty) -> (name, Values.sample rng ty)) p.Prim.params in
  match p.Prim.build env with
  | None -> None
  | Some frag ->
      let is_action = match frag with Ast.F_action _ -> true | _ -> false in
      let sentence = Prim.instantiate_utterance p.Prim.utterance env in
      Some
        ( { Derivation.tokens = Genie_util.Tok.tokenize sentence;
            value = Derivation.V_frag frag;
            depth = 0;
            fns = [ p.Prim.fn ] },
          prim_category p ~is_action )

(* A functional derivation: the single placeholder becomes a hole. *)
let fun_derivation (p : Prim.t) : (Derivation.t * string) option =
  match p.Prim.params with
  | [ (ph, hole_ty) ] -> (
      match p.Prim.build [] with
      | Some (Ast.F_query (Ast.Q_invoke inv)) | Some (Ast.F_action (Ast.A_invoke inv)) -> (
          let is_query =
            match p.Prim.build [] with Some (Ast.F_query _) -> true | _ -> false
          in
          (* the hole is the input parameter left Undefined by the empty env *)
          let hole =
            List.find_opt
              (fun ip -> ip.Ast.ip_value = Ast.Constant Value.Undefined)
              inv.Ast.in_params
          in
          match hole with
          | None -> None
          | Some hole_ip ->
              let tokens =
                List.map
                  (fun tok -> if tok = "$" ^ ph then Derivation.hole_token else tok)
                  (String.split_on_char ' ' p.Prim.utterance)
              in
              let category =
                match p.Prim.category with
                | Prim.Np -> "np_fun"
                | Prim.Vp -> if is_query then "qvp_fun" else "vp_fun"
                | Prim.Wp -> "wp_fun"
              in
              Some
                ( { Derivation.tokens;
                    value =
                      Derivation.V_fun
                        { inv; hole_ip = hole_ip.Ast.ip_name; hole_ty; is_query };
                    depth = 0;
                    fns = [ p.Prim.fn ] },
                  category ))
      | _ -> None)
  | _ -> None

(* The rhs value type a filter phrase needs. *)
let phrase_rhs_type (ph : Phrases.phrase) (param_ty : Ttype.t) : Ttype.t =
  match ph.Phrases.op with
  | Ast.Op_substr | Ast.Op_starts_with | Ast.Op_ends_with -> Ttype.String
  | Ast.Op_contains -> (
      match param_ty with Ttype.Array elt -> elt | ty -> ty)
  | _ -> param_ty

(* Predicate terminals from the phrase tables, over all output parameters of
   the library. *)
let pred_terminals lib rng ~samples : Derivation.t list =
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  List.iter
    (fun (f : Schema.func) ->
      List.iter
        (fun (prm : Schema.param) ->
          let name = prm.Schema.p_name and ty = prm.Schema.p_type in
          if not (Hashtbl.mem seen (name, ty)) then begin
            Hashtbl.replace seen (name, ty) ();
            List.iter
              (fun (ph : Phrases.phrase) ->
                for _ = 1 to samples do
                  let rhs =
                    match (ph.Phrases.constr, ty) with
                    | Phrases.C_bool, _ -> Value.Boolean true
                    | _, ty -> Values.sample rng (phrase_rhs_type ph ty)
                  in
                  let sentence =
                    Prim.instantiate_utterance ph.Phrases.pattern [ ("v", rhs) ]
                  in
                  let pred = Ast.P_atom { lhs = name; op = ph.Phrases.op; rhs } in
                  out :=
                    { Derivation.tokens = Genie_util.Tok.tokenize sentence;
                      value = Derivation.V_frag (Ast.F_predicate pred);
                      depth = 0;
                      fns = [] }
                    :: !out
                done)
              (Phrases.phrases_for ~name ~ty)
          end)
        (Schema.out_params f))
    (Schema.Library.functions lib);
  !out

(* Edge-predicate terminals for numeric output parameters. *)
let epred_terminals lib rng ~samples : Derivation.t list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (f : Schema.func) ->
      List.iter
        (fun (prm : Schema.param) ->
          let name = prm.Schema.p_name and ty = prm.Schema.p_type in
          if Ttype.is_numeric ty && not (Hashtbl.mem seen (name, ty)) then begin
            Hashtbl.replace seen (name, ty) ();
            List.iter
              (fun (pattern, op) ->
                for _ = 1 to samples do
                  let rhs = Values.sample rng ty in
                  let sentence = Prim.instantiate_utterance pattern [ ("v", rhs) ] in
                  out :=
                    { Derivation.tokens = Genie_util.Tok.tokenize sentence;
                      value = Derivation.V_frag (Ast.F_predicate (Ast.P_atom { lhs = name; op; rhs }));
                      depth = 0;
                      fns = [] }
                    :: !out
                done)
              (Phrases.edge_phrases ~name)
          end)
        (Schema.out_params f))
    (Schema.Library.functions lib);
  !out

let value_terminal v tokens =
  { Derivation.tokens; value = Derivation.V_frag (Ast.F_value v); depth = 0; fns = [] }

let time_terminals () =
  List.map
    (fun (h, m) ->
      let v = Value.Time (h, m) in
      value_terminal v (Genie_util.Tok.tokenize (Prim.render_value v)))
    Values.times

let interval_terminals () =
  List.map
    (fun (n, u) ->
      let v = Value.Measure [ (n, u) ] in
      value_terminal v (Genie_util.Tok.tokenize (Prim.render_value v)))
    (Values.measure_pool "ms")

(* Build the terminal table from a primitive-template set. *)
let build_terminals lib ~prims ~rng ~samples_per_template : (string, Derivation.t list) Hashtbl.t =
  let tbl : (string, Derivation.t list) Hashtbl.t = Hashtbl.create 16 in
  let add cat d =
    let cur = try Hashtbl.find tbl cat with Not_found -> [] in
    Hashtbl.replace tbl cat (d :: cur)
  in
  List.iter
    (fun p ->
      (* fully instantiated derivations *)
      for _ = 1 to max 1 samples_per_template do
        match instantiate_prim_with_cat rng p with
        | Some (d, cat) -> add cat d
        | None -> ()
      done;
      (* functional derivation with a hole *)
      match fun_derivation p with
      | Some (d, cat) -> add cat d
      | None -> ())
    prims;
  List.iter (add "pred") (pred_terminals lib rng ~samples:1);
  List.iter (add "epred") (epred_terminals lib rng ~samples:1);
  List.iter (add "time") (time_terminals ());
  List.iter (add "interval") (interval_terminals ());
  (* deduplicate *)
  Hashtbl.iter
    (fun cat ds ->
      let seen = Hashtbl.create 64 in
      let ds =
        List.filter
          (fun d ->
            let k = Derivation.key d in
            if Hashtbl.mem seen k then false else (Hashtbl.replace seen k (); true))
          ds
      in
      Hashtbl.replace tbl cat ds)
    (Hashtbl.copy tbl);
  tbl

let create lib ~prims ~rules ~rng ?(samples_per_template = 2) ?(start = "command")
    ?(extra_terminals = []) () =
  let terminals = build_terminals lib ~prims ~rng ~samples_per_template in
  List.iter
    (fun (cat, ds) ->
      let cur = try Hashtbl.find terminals cat with Not_found -> [] in
      Hashtbl.replace terminals cat (ds @ cur))
    extra_terminals;
  { lib; rules; terminals; start }

let terminals t cat = try Hashtbl.find t.terminals cat with Not_found -> []

(* --- shared semantic helpers ----------------------------------------------- *)

(* Select an output parameter of [outs] to fill a hole of type [hole_ty] named
   [hole_ip]: exact name match first, then a type-assignable parameter
   (unique preferred, first otherwise). *)
let pick_out_for_hole ~outs ~hole_ip ~hole_ty =
  match List.assoc_opt hole_ip outs with
  | Some ty when Ttype.strictly_assignable ~src:ty ~dst:hole_ty -> Some hole_ip
  | _ -> (
      let assignable =
        List.filter (fun (_, ty) -> Ttype.strictly_assignable ~src:ty ~dst:hole_ty) outs
      in
      match assignable with
      | [] -> None
      | (n, _) :: _ -> Some n)

(* Remove the unfilled hole parameter from an invocation. *)
let drop_hole inv ~hole_ip =
  { inv with
    Ast.in_params =
      List.filter (fun ip -> ip.Ast.ip_name <> hole_ip) inv.Ast.in_params }

let fill_hole_passed inv ~hole_ip ~out_name =
  { inv with
    Ast.in_params =
      List.map
        (fun ip ->
          if ip.Ast.ip_name = hole_ip then { ip with Ast.ip_value = Ast.Passed out_name }
          else ip)
        inv.Ast.in_params }
