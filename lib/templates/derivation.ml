(* Derivations: the intermediate values produced while expanding templates.

   A derivation pairs an utterance (token list) with a semantic value. Most
   values are ThingTalk fragments; "functional" values are invocations with a
   single unfilled input parameter (a hole), which later rules fill either
   with a sub-phrase (join / parameter passing) or with an anaphoric "it". *)

open Genie_thingtalk

type dvalue =
  | V_frag of Ast.fragment
  (* an invocation whose [hole_ip] input parameter is not yet filled *)
  | V_fun of { inv : Ast.invocation; hole_ip : string; hole_ty : Ttype.t; is_query : bool }

type t = {
  tokens : string list; (* "$x" marks the hole of a V_fun *)
  value : dvalue;
  depth : int;
  fns : Ast.Fn.t list; (* skill functions mentioned, for sampling statistics *)
}

let hole_token = "$x"

let substitute_hole tokens replacement =
  List.concat_map (fun t -> if t = hole_token then replacement else [ t ]) tokens

let sentence d = String.concat " " d.tokens

let fragment_program = function
  | Ast.F_program p -> Some p
  | _ -> None

let value_key (v : dvalue) =
  match v with
  | V_frag (Ast.F_program p) -> "prog:" ^ Printer.program_to_string p
  | V_frag (Ast.F_query q) -> "query:" ^ Printer.query_to_string q
  | V_frag (Ast.F_stream s) -> "stream:" ^ Printer.stream_to_string s
  | V_frag (Ast.F_action a) -> "action:" ^ Printer.action_to_string a
  | V_frag (Ast.F_predicate p) -> "pred:" ^ Printer.predicate_to_string p
  | V_frag (Ast.F_policy p) -> "policy:" ^ Printer.policy_to_string p
  | V_frag (Ast.F_value v) -> "value:" ^ Value.to_string v
  | V_fun { inv; hole_ip; _ } ->
      Printf.sprintf "fun:%s/%s" (Printer.invocation_to_string inv) hole_ip

(* [key] prints the derivation's semantics — the dominant cost of every
   dedup, sort and digest downstream. The per-depth corpus digest, golden
   dumps and structural sorts all revisit the same derivations, so the
   printed key is memoized per physical derivation in a process-wide
   ephemeron table (weak keys: entries die with their derivations, so a
   discarded corpus costs nothing). The record itself stays immutable —
   structural equality on derivations is unaffected. Mutex-guarded because
   sort keys are also consulted from spawned domains in tests. *)
module Key_memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let key_memo = Key_memo.create 1024
let key_mutex = Mutex.create ()

let key d =
  Mutex.protect key_mutex (fun () ->
      match Key_memo.find_opt key_memo d with
      | Some k -> k
      | None ->
          let k = sentence d ^ " || " ^ value_key d.value in
          Key_memo.add key_memo d k;
          k)

(* Structural sort key: every component is derived from the derivation's
   content (never from addresses, hash-table order, or discovery order), so
   sorting a bucket of derivations by it yields the same sequence no matter
   which worker produced them or in what interleaving. Depth leads so merged
   corpora group by expansion depth; [key] already pairs the sentence with a
   printed canonical form of the semantics, making the composite injective
   up to semantic equality — exactly the granularity dedup uses. *)
let sort_key d = Printf.sprintf "%04d|%s" d.depth (key d)

let compare_structural a b = String.compare (sort_key a) (sort_key b)

let structural_hash d =
  Genie_util.Hash64.string (Genie_util.Hash64.int 0L d.depth) (key d)

(* [sort_key] and [structural_hash] from a single [key] computation — [key]
   prints the semantics, which dominates the cost, so callers that need both
   (the synthesis engine's merge stage) use this. *)
let decorate_keyed d k =
  ( Printf.sprintf "%04d|%s" d.depth k,
    Genie_util.Hash64.string (Genie_util.Hash64.int 0L d.depth) k )

let decorate d = decorate_keyed d (key d)
