(* Derivations: the intermediate values produced while expanding templates.

   A derivation pairs an utterance (token list) with a semantic value. Most
   values are ThingTalk fragments; "functional" values are invocations with a
   single unfilled input parameter (a hole), which later rules fill either
   with a sub-phrase (join / parameter passing) or with an anaphoric "it". *)

open Genie_thingtalk

type dvalue =
  | V_frag of Ast.fragment
  (* an invocation whose [hole_ip] input parameter is not yet filled *)
  | V_fun of { inv : Ast.invocation; hole_ip : string; hole_ty : Ttype.t; is_query : bool }

type t = {
  tokens : string list; (* "$x" marks the hole of a V_fun *)
  value : dvalue;
  depth : int;
  fns : Ast.Fn.t list; (* skill functions mentioned, for sampling statistics *)
}

let hole_token = "$x"

let substitute_hole tokens replacement =
  List.concat_map (fun t -> if t = hole_token then replacement else [ t ]) tokens

let sentence d = String.concat " " d.tokens

let fragment_program = function
  | Ast.F_program p -> Some p
  | _ -> None

let value_key (v : dvalue) =
  match v with
  | V_frag (Ast.F_program p) -> "prog:" ^ Printer.program_to_string p
  | V_frag (Ast.F_query q) -> "query:" ^ Printer.query_to_string q
  | V_frag (Ast.F_stream s) -> "stream:" ^ Printer.stream_to_string s
  | V_frag (Ast.F_action a) -> "action:" ^ Printer.action_to_string a
  | V_frag (Ast.F_predicate p) -> "pred:" ^ Printer.predicate_to_string p
  | V_frag (Ast.F_policy p) -> "policy:" ^ Printer.policy_to_string p
  | V_frag (Ast.F_value v) -> "value:" ^ Value.to_string v
  | V_fun { inv; hole_ip; _ } ->
      Printf.sprintf "fun:%s/%s" (Printer.invocation_to_string inv) hole_ip

let key d = sentence d ^ " || " ^ value_key d.value
