(* A text format for construct templates, mirroring the paper's notation:

     command := 'get' np -> get_np
     wp := 'when' np 'changes' -> monitor_np
     np := np pred -> filter_np

   Literals are quoted; bare words are grammar categories; the name after the
   arrow selects a semantic function from a registry. Lines starting with '#'
   are comments. An optional trailing [training] / [paraphrase] flag restricts
   the template to one synthesis purpose (section 3.1). *)

type sem_registry = (string * (Derivation.t list -> Grammar.sem_result option)) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* splits a rule body into literal and non-terminal symbols *)
let parse_rhs (s : string) : Grammar.symbol list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' then incr i
    else if c = '\'' then begin
      (* quoted literal; may contain spaces *)
      let j = try String.index_from s (!i + 1) '\'' with Not_found -> fail "unterminated literal in %S" s in
      out := Grammar.L (String.sub s (!i + 1) (j - !i - 1)) :: !out;
      i := j + 1
    end
    else begin
      let j = try String.index_from s !i ' ' with Not_found -> n in
      out := Grammar.N (String.sub s !i (j - !i)) :: !out;
      i := j
    end
  done;
  List.rev !out

let parse_line ~(registry : sem_registry) ~index (line : string) :
    Grammar.rule option =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match Genie_util.Tok.split_on_string ~sep:":=" line with
    | [ lhs; rest ] -> (
        let lhs = String.trim lhs in
        match Genie_util.Tok.split_on_string ~sep:"->" rest with
        | [ rhs; sem_part ] ->
            let sem_part = String.trim sem_part in
            let sem_name, flag =
              match String.split_on_char ' ' sem_part with
              | [ name ] -> (name, Grammar.Both)
              | [ name; "[training]" ] -> (name, Grammar.Training_only)
              | [ name; "[paraphrase]" ] -> (name, Grammar.Paraphrase_only)
              | _ -> fail "malformed semantic-function reference %S" sem_part
            in
            let sem =
              match List.assoc_opt sem_name registry with
              | Some f -> f
              | None -> fail "unknown semantic function %S" sem_name
            in
            Some
              { Grammar.name = Printf.sprintf "dsl_%d_%s" index sem_name;
                lhs;
                rhs = parse_rhs (String.trim rhs);
                sem;
                flag }
        | _ -> fail "expected exactly one '->' in %S" line)
    | _ -> fail "expected exactly one ':=' in %S" line

(* Parses a whole template file into rules. *)
let parse ~(registry : sem_registry) (src : string) : Grammar.rule list =
  List.filteri (fun _ _ -> true) (String.split_on_char '\n' src)
  |> List.mapi (fun i line -> parse_line ~registry ~index:i line)
  |> List.filter_map Fun.id

(* The semantic functions of the standard ThingTalk rule set, by name, so the
   whole grammar can be written in the text format. *)
let standard_registry lib : sem_registry =
  [ ("get_np", Rules_thingtalk.sem_get_np);
    ("list_np", Rules_thingtalk.sem_list_np lib);
    ("do_vp", Rules_thingtalk.sem_do_vp);
    ("when_notify", Rules_thingtalk.sem_when_notify);
    ("when_do", Rules_thingtalk.sem_when_do);
    ("when_get", Rules_thingtalk.sem_when_get);
    ("get_when", Rules_thingtalk.sem_get_when);
    ("monitor_np", Rules_thingtalk.sem_monitor_np lib);
    ("monitor_new_np", Rules_thingtalk.sem_monitor_new_np lib);
    ("filter_np", Rules_thingtalk.sem_filter_np lib);
    ("filter_wp", Rules_thingtalk.sem_filter_wp lib);
    ("edge", Rules_thingtalk.sem_edge lib);
    ("attimer", Rules_thingtalk.sem_attimer);
    ("timer", Rules_thingtalk.sem_timer);
    ("apply_np_fun", Rules_thingtalk.sem_apply_np_fun lib);
    ("apply_qvp_fun", Rules_thingtalk.sem_apply_qvp_fun lib);
    ("apply_vp_fun", Rules_thingtalk.sem_apply_vp_fun lib);
    ("get_and_do_it", Rules_thingtalk.sem_get_and_do_it lib);
    ("when_do_it", Rules_thingtalk.sem_when_do_it lib);
    ("qvp_command", Rules_thingtalk.sem_qvp_command) ]

(* The standard ThingTalk construct templates, written in the DSL itself;
   parsing this with [standard_registry] yields a grammar equivalent to
   [Rules_thingtalk.rules]. *)
let thingtalk_source =
  {|# primitive query commands
command := 'get' np -> get_np
command := 'show me' np -> get_np
command := 'what is' np -> get_np
command := 'tell me' np -> get_np
command := 'i want to see' np -> get_np
command := np -> get_np [training]
command := 'list' np -> list_np
command := 'enumerate' np -> list_np
command := qvp -> qvp_command
# primitive action commands
command := vp -> do_vp
command := 'please' vp -> do_vp
command := 'can you' vp -> do_vp
command := 'i want to' vp -> do_vp
# monitor commands
command := 'notify me' wp -> when_notify
command := wp ', notify me' -> when_notify
command := 'let me know' wp -> when_notify
command := 'alert me' wp -> when_notify
# when-do compounds, both orders
command := wp ',' vp -> when_do
command := vp wp -> when_do
# when-get compounds
command := wp ', get' np -> when_get
command := wp ', show me' np -> when_get
command := 'get' np wp -> get_when
command := 'show me' np wp -> get_when
# streams from queries
wp := 'when' np 'changes' -> monitor_np
wp := 'when' np 'change' -> monitor_np
wp := 'when there is a new' np -> monitor_new_np
wp := 'whenever' np 'changes' -> monitor_np
# edge filters
wp := 'when' epred 'in' np -> edge
# timers
wp := 'every day at' time -> attimer
wp := 'once a day at' time -> attimer
wp := 'every' interval -> timer
# filters
np := np pred -> filter_np
np := 'only' np pred -> filter_np
wp := wp pred -> filter_wp
# joins / parameter passing
np := np_fun np -> apply_np_fun
command := qvp_fun np -> apply_qvp_fun
command := 'get' np vp_fun -> get_and_do_it
command := vp_fun np -> apply_vp_fun
command := wp vp_fun -> when_do_it
|}

let thingtalk_rules lib : Grammar.rule list =
  parse ~registry:(standard_registry lib) thingtalk_source
