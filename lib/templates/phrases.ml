(* Filter and edge-filter phrase tables.

   These correspond to the paper's 68 construct templates for filters and
   parameters: natural ways to express a boolean predicate on an output
   parameter. The table is keyed by parameter name; a generic fallback covers
   every other output parameter of the library, so filters are available for
   all functions. *)

open Genie_thingtalk

(* phrase pattern with $v for the value, the comparison op it denotes, and a
   coarse type constraint *)
type constraint_ = C_any | C_string | C_numeric | C_date | C_array | C_bool | C_enum

type phrase = { pattern : string; op : Ast.comp_op; constr : constraint_ }

let p pattern op constr = { pattern; op; constr }

let by_param : (string * phrase list) list =
  [ ("author", [ p "from $v" Ast.Op_eq C_any; p "by $v" Ast.Op_eq C_any ]);
    ("sender", [ p "from $v" Ast.Op_eq C_any ]);
    ("sender_name", [ p "from $v" Ast.Op_eq C_any; p "sent by $v" Ast.Op_eq C_any ]);
    ("sender_address", [ p "from the address $v" Ast.Op_eq C_any ]);
    ("organizer", [ p "organized by $v" Ast.Op_eq C_any ]);
    ("artist", [ p "by $v" Ast.Op_eq C_any; p "from $v" Ast.Op_eq C_any ]);
    ("title",
      [ p "titled $v" Ast.Op_eq C_string; p "with $v in the title" Ast.Op_substr C_string ]);
    ("subject",
      [ p "with subject $v" Ast.Op_eq C_string; p "about $v" Ast.Op_substr C_string ]);
    ("text", [ p "containing $v" Ast.Op_substr C_string; p "that mention $v" Ast.Op_substr C_string ]);
    ("body", [ p "containing $v" Ast.Op_substr C_string ]);
    ("message", [ p "saying $v" Ast.Op_substr C_string ]);
    ("caption", [ p "captioned $v" Ast.Op_substr C_string ]);
    ("content", [ p "about $v" Ast.Op_substr C_string ]);
    ("description", [ p "described as $v" Ast.Op_substr C_string ]);
    ("summary", [ p "mentioning $v" Ast.Op_substr C_string ]);
    ("snippet", [ p "that talk about $v" Ast.Op_substr C_string ]);
    ("hashtags", [ p "with hashtag $v" Ast.Op_contains C_array ]);
    ("labels", [ p "labeled $v" Ast.Op_contains C_array ]);
    ("file_name", [ p "named $v" Ast.Op_eq C_string ]);
    ("full_path", [ p "at path $v" Ast.Op_eq C_string ]);
    ("file_size",
      [ p "bigger than $v" Ast.Op_gt C_numeric; p "smaller than $v" Ast.Op_lt C_numeric ]);
    ("modified_time",
      [ p "modified after $v" Ast.Op_gt C_date; p "modified before $v" Ast.Op_lt C_date;
        p "that changed since $v" Ast.Op_gt C_date ]);
    ("start_date", [ p "starting after $v" Ast.Op_gt C_date ]);
    ("due_date", [ p "due before $v" Ast.Op_lt C_date ]);
    ("start_time", [ p "after $v" Ast.Op_gt C_date ]);
    ("temperature",
      [ p "above $v" Ast.Op_gt C_numeric; p "below $v" Ast.Op_lt C_numeric ]);
    ("is_important", [ p "that are important" Ast.Op_eq C_bool ]);
    ("is_folder", [ p "that are folders" Ast.Op_eq C_bool ]);
    ("has_person", [ p "with a person in them" Ast.Op_eq C_bool ]);
    ("score", [ p "with more than $v points" Ast.Op_gt C_numeric ]);
    ("rating", [ p "rated at least $v stars" Ast.Op_geq C_numeric ]);
    ("steps", [ p "above $v" Ast.Op_gt C_numeric ]);
    ("tempo",
      [ p "faster than $v" Ast.Op_gt C_numeric; p "slower than $v" Ast.Op_lt C_numeric ]);
    ("energy", [ p "more energetic than $v" Ast.Op_gt C_numeric ]);
    ("popularity", [ p "more popular than $v" Ast.Op_gt C_numeric ]);
    ("status", [ p "that are $v" Ast.Op_eq C_enum ]);
    ("state", [ p "that are $v" Ast.Op_eq C_enum ]);
    ("category", [ p "in $v" Ast.Op_eq C_any ]);
    ("section", [ p "in the $v section" Ast.Op_eq C_any ]);
    ("location", [ p "in $v" Ast.Op_eq C_any ]);
    ("price_range", [ p "that are $v" Ast.Op_eq C_enum ]) ]

(* Generic fallbacks available for any output parameter [name]. *)
let generic name : phrase list =
  let name_words = String.map (fun c -> if c = '_' then ' ' else c) name in
  [ { pattern = Printf.sprintf "with %s equal to $v" name_words; op = Ast.Op_eq; constr = C_any };
    { pattern = Printf.sprintf "whose %s is $v" name_words; op = Ast.Op_eq; constr = C_any };
    { pattern = Printf.sprintf "with %s greater than $v" name_words; op = Ast.Op_gt; constr = C_numeric };
    { pattern = Printf.sprintf "with %s less than $v" name_words; op = Ast.Op_lt; constr = C_numeric };
    { pattern = Printf.sprintf "with $v in the %s" name_words; op = Ast.Op_substr; constr = C_string } ]

let type_matches (c : constraint_) (ty : Ttype.t) =
  match (c, ty) with
  | C_any, _ -> true
  | C_string, (Ttype.String | Ttype.Path_name | Ttype.Url | Ttype.Entity _) -> true
  | C_numeric, (Ttype.Number | Ttype.Currency | Ttype.Measure _) -> true
  | C_date, Ttype.Date -> true
  | C_array, Ttype.Array _ -> true
  | C_bool, Ttype.Boolean -> true
  | C_enum, Ttype.Enum _ -> true
  | _ -> false

(* All phrases applicable to an output parameter of the given name and type;
   named phrases take priority, generic ones provide coverage. *)
let phrases_for ~name ~(ty : Ttype.t) : phrase list =
  let named =
    match List.assoc_opt name by_param with
    | Some ps -> List.filter (fun p -> type_matches p.constr ty) ps
    | None -> []
  in
  let fallback = List.filter (fun p -> type_matches p.constr ty) (generic name) in
  if named <> [] then named else fallback

(* Edge-filter phrases for numeric parameters (paper: "each time the
   temperature drops below 60F"). *)
let edge_phrases ~name : (string * Ast.comp_op) list =
  let name_words = String.map (fun c -> if c = '_' then ' ' else c) name in
  [ (Printf.sprintf "the %s drops below $v" name_words, Ast.Op_lt);
    (Printf.sprintf "the %s rises above $v" name_words, Ast.Op_gt);
    (Printf.sprintf "the %s reaches $v" name_words, Ast.Op_geq) ]
