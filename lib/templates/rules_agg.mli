(** Construct templates for TT+A, the aggregation extension of paper
    section 6.3:

    {v Query q: agg (max | min | sum | avg) pn of (q) | agg count of (q) v} *)

open Genie_thingtalk

val field_terminals : Schema.Library.t -> Derivation.t list
(** Numeric output parameters by their spoken names. *)

val rules : Schema.Library.t -> Grammar.rule list
(** The paper's 6 aggregation templates ("the total X of ...", "the number
    of ...", "how many ... are there"); semantic functions enforce numeric
    fields and list-ness. *)

val terminals : Schema.Library.t -> (string * Derivation.t list) list
(** The extra terminal table entry ("aggfield") for {!Grammar.create}. *)
