(** A text format for construct templates, mirroring the paper's notation
    ([lhs := (literal | rhs)+ -> sf], section 3.1):

    {v
command := 'get' np -> get_np
wp := 'when' np 'changes' -> monitor_np
np := np pred -> filter_np
command := np -> get_np [training]
    v}

    Quoted words are literals, bare words are grammar categories, and the
    name after the arrow selects a semantic function from a registry. An
    optional [[training]] / [[paraphrase]] flag restricts the template to one
    synthesis purpose; ['#'] starts a comment. *)

type sem_registry =
  (string * (Derivation.t list -> Grammar.sem_result option)) list

exception Parse_error of string

val parse_rhs : string -> Grammar.symbol list

val parse : registry:sem_registry -> string -> Grammar.rule list
(** Parses a template file. Raises {!Parse_error} on malformed lines or
    unknown semantic functions. *)

val standard_registry : Genie_thingtalk.Schema.Library.t -> sem_registry
(** The named semantic functions of the standard ThingTalk rule set. *)

val thingtalk_source : string
(** The standard ThingTalk construct templates, written in the DSL. *)

val thingtalk_rules : Genie_thingtalk.Schema.Library.t -> Grammar.rule list
(** [parse ~registry:(standard_registry lib) thingtalk_source]: equivalent to
    {!Rules_thingtalk.rules} (tested rule for rule). *)
