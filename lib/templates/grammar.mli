(** The NL-template grammar: construct templates over grammar categories,
    plus terminal derivations from instantiated primitive templates.

    A construct template has the paper's form
    [lhs := (literal | v : rhs)+ -> sf] where the semantic function may
    reject a combination (return [None], the paper's bottom) to enforce
    typing constraints such as monitorability (section 3.1). *)

open Genie_thingtalk

type symbol =
  | L of string  (** literal words, space-separated *)
  | N of string  (** a grammar category *)

type sem_result = {
  value : Derivation.dvalue;
  tokens_override : string list option;
      (** rules that substitute into a hole provide their own tokens;
          otherwise tokens are the concatenation of the RHS *)
}

(** Per-template subset flags (section 3.1): developers may reserve templates
    for training or for paraphrasing. *)
type flag = Both | Training_only | Paraphrase_only

type rule = {
  name : string;
  lhs : string;
  rhs : symbol list;
  sem : Derivation.t list -> sem_result option;
  flag : flag;
}

type t = {
  lib : Schema.Library.t;
  rules : rule list;
  terminals : (string, Derivation.t list) Hashtbl.t;
  start : string;
}

val create :
  Schema.Library.t ->
  prims:Genie_thingpedia.Prim.t list ->
  rules:rule list ->
  rng:Genie_util.Rng.t ->
  ?samples_per_template:int ->
  ?start:string ->
  ?extra_terminals:(string * Derivation.t list) list ->
  unit ->
  t
(** Builds the terminal table: each primitive template is instantiated with
    sampled parameter values (categories np / qvp / vp / wp), single-
    placeholder templates additionally yield functional derivations with a
    hole (np_fun / qvp_fun / vp_fun); predicate, edge-predicate, time and
    interval terminals are generated from the library's signatures and the
    phrase tables. *)

val terminals : t -> string -> Derivation.t list

(** {2 Helpers for semantic functions} *)

val ok : Derivation.dvalue -> sem_result option
val ok_tokens : Derivation.dvalue -> string list -> sem_result option
val as_query : Derivation.t -> Ast.query option
val as_stream : Derivation.t -> Ast.stream option
val as_action : Derivation.t -> Ast.action option
val as_pred : Derivation.t -> Ast.predicate option
val as_value : Derivation.t -> Value.t option
val as_program : Derivation.t -> Ast.program option

val pick_out_for_hole :
  outs:(string * Ttype.t) list -> hole_ip:string -> hole_ty:Ttype.t -> string option
(** Chooses an output parameter to fill a hole: exact name match first, then
    the first strictly-assignable output. *)

val drop_hole : Ast.invocation -> hole_ip:string -> Ast.invocation
val fill_hole_passed : Ast.invocation -> hole_ip:string -> out_name:string -> Ast.invocation
