(* Construct templates for ThingTalk commands (paper section 3.1).

   The paper's configuration uses 35 construct templates for primitive
   commands, 42 for compound commands and 68 for filters and parameters; the
   filter/parameter phrases live in [Phrases], the command-level constructs
   are below. Semantic functions reject ill-typed combinations (monitorability,
   list-ness, filter coverage, parameter-passing type compatibility), which is
   exactly the role of the paper's bottom-returning semantic functions. *)

open Genie_thingtalk
open Grammar

let rule ?(flag = Both) name lhs rhs sem = { name; lhs; rhs; sem; flag }

let prog ?query stream action = Ast.{ stream; query; action }

let now_query q = prog ~query:q Ast.S_now Ast.A_notify

(* --- semantic functions ----------------------------------------------------- *)

let sem_get_np = function
  | [ d ] -> Option.bind (as_query d) (fun q -> ok (Derivation.V_frag (Ast.F_program (now_query q))))
  | _ -> None

(* 'list'/'enumerate' require a list query (paper's example semantic fn). *)
let sem_list_np lib = function
  | [ d ] ->
      Option.bind (as_query d) (fun q ->
          if Typecheck.query_is_list lib q then
            ok (Derivation.V_frag (Ast.F_program (now_query q)))
          else None)
  | _ -> None

let sem_do_vp = function
  | [ d ] ->
      Option.bind (as_action d) (fun a ->
          ok (Derivation.V_frag (Ast.F_program (prog Ast.S_now a))))
  | _ -> None

let sem_when_notify = function
  | [ d ] ->
      Option.bind (as_stream d) (fun s ->
          ok (Derivation.V_frag (Ast.F_program (prog s Ast.A_notify))))
  | _ -> None

let sem_when_do = function
  | [ a; b ] -> (
      (* accepts the children in either order: 'when X, do Y' / 'do Y when X' *)
      match (as_stream a, as_action b, as_action a, as_stream b) with
      | Some s, Some act, _, _ -> ok (Derivation.V_frag (Ast.F_program (prog s act)))
      | _, _, Some act, Some s -> ok (Derivation.V_frag (Ast.F_program (prog s act)))
      | _ -> None)
  | _ -> None

let sem_when_get = function
  | [ w; n ] -> (
      match (as_stream w, as_query n) with
      | Some s, Some q -> ok (Derivation.V_frag (Ast.F_program (prog ~query:q s Ast.A_notify)))
      | _ -> None)
  | _ -> None

let sem_get_when = function
  | [ n; w ] -> (
      match (as_query n, as_stream w) with
      | Some q, Some s -> ok (Derivation.V_frag (Ast.F_program (prog ~query:q s Ast.A_notify)))
      | _ -> None)
  | _ -> None

(* 'when <np> changes' -> monitor q; only monitorable queries (the example
   semantic function in section 3.1). *)
let sem_monitor_np lib = function
  | [ d ] ->
      Option.bind (as_query d) (fun q ->
          if Typecheck.query_monitorable lib q then
            ok (Derivation.V_frag (Ast.F_stream (Ast.S_monitor (q, None))))
          else None)
  | _ -> None

let sem_monitor_new_np lib = function
  | [ d ] ->
      Option.bind (as_query d) (fun q ->
          if Typecheck.query_monitorable lib q && Typecheck.query_is_list lib q then
            ok (Derivation.V_frag (Ast.F_stream (Ast.S_monitor (q, None))))
          else None)
  | _ -> None

(* filters: 'np pred' -> q filter p, provided the predicate type-checks
   against the query's output parameters *)
let sem_filter_np lib = function
  | [ n; p ] -> (
      match (as_query n, as_pred p) with
      | Some q, Some pred -> (
          let outs = Typecheck.query_out_params lib q in
          match Typecheck.check_predicate lib ~outs pred with
          | Ok () -> ok (Derivation.V_frag (Ast.F_query (Ast.Q_filter (q, pred))))
          | Error _ -> None)
      | _ -> None)
  | _ -> None

(* filter inside a monitor: 'when i receive an email from alice' *)
let sem_filter_wp lib = function
  | [ w; p ] -> (
      match (as_stream w, as_pred p) with
      | Some (Ast.S_monitor (q, on_new)), Some pred -> (
          let outs = Typecheck.query_out_params lib q in
          match Typecheck.check_predicate lib ~outs pred with
          | Ok () ->
              ok (Derivation.V_frag (Ast.F_stream (Ast.S_monitor (Ast.Q_filter (q, pred), on_new))))
          | Error _ -> None)
      | _ -> None)
  | _ -> None

(* edge filters: 'when <epred> in <np>' -> edge (monitor q) on pred *)
let sem_edge lib = function
  | [ p; n ] -> (
      match (as_pred p, as_query n) with
      | Some pred, Some q -> (
          if not (Typecheck.query_monitorable lib q) then None
          else
            let outs = Typecheck.query_out_params lib q in
            match Typecheck.check_predicate lib ~outs pred with
            | Ok () ->
                ok (Derivation.V_frag (Ast.F_stream (Ast.S_edge (Ast.S_monitor (q, None), pred))))
            | Error _ -> None)
      | _ -> None)
  | _ -> None

(* timers *)
let sem_attimer = function
  | [ t ] -> (
      match as_value t with
      | Some (Value.Time _ as v) -> ok (Derivation.V_frag (Ast.F_stream (Ast.S_attimer v)))
      | _ -> None)
  | _ -> None

let sem_timer = function
  | [ i ] -> (
      match as_value i with
      | Some (Value.Measure _ as v) ->
          ok
            (Derivation.V_frag
               (Ast.F_stream (Ast.S_timer { base = Value.Date Value.D_now; interval = v })))
      | _ -> None)
  | _ -> None

(* join by substitution: '<np_fun with hole> <np>', e.g. "the download url of
   my dropbox files" *)
let sem_apply_np_fun lib = function
  | [ f; n ] -> (
      match (f.Derivation.value, as_query n) with
      | Derivation.V_fun { inv; hole_ip; hole_ty; is_query = true }, Some sub_q -> (
          (* reject degenerate self-joins ("the tempo of the tempo of ...") *)
          if
            List.exists
              (fun (i : Ast.invocation) -> Ast.Fn.equal i.Ast.fn inv.Ast.fn)
              (Ast.query_invocations sub_q)
          then None
          else
          let outs = Typecheck.query_out_params lib sub_q in
          match pick_out_for_hole ~outs ~hole_ip ~hole_ty with
          | None -> None
          | Some out_name ->
              let q =
                Ast.Q_join (sub_q, Ast.Q_invoke (drop_hole inv ~hole_ip), [ (hole_ip, out_name) ])
              in
              Some
                { value = Derivation.V_frag (Ast.F_query q);
                  tokens_override =
                    Some (Derivation.substitute_hole f.Derivation.tokens n.Derivation.tokens) })
      | _ -> None)
  | _ -> None

(* 'get <np> and <vp_fun> it', e.g. "get a cat picture and post it on
   facebook" -> now => q => a with parameter passing *)
let fill_action_from_query lib ~sub_q (f : Derivation.t) =
  match f.Derivation.value with
  | Derivation.V_fun { inv; hole_ip; hole_ty; is_query = false } -> (
      let outs = Typecheck.query_out_params lib sub_q in
      match pick_out_for_hole ~outs ~hole_ip ~hole_ty with
      | None -> None
      | Some out_name -> Some (fill_hole_passed inv ~hole_ip ~out_name))
  | _ -> None

let sem_get_and_do_it lib = function
  | [ n; f ] -> (
      match as_query n with
      | Some sub_q -> (
          match fill_action_from_query lib ~sub_q f with
          | None -> None
          | Some inv ->
              Some
                { value =
                    Derivation.V_frag
                      (Ast.F_program (prog ~query:sub_q Ast.S_now (Ast.A_invoke inv)));
                  tokens_override =
                    Some
                      (n.Derivation.tokens
                      @ "and"
                        :: Derivation.substitute_hole f.Derivation.tokens [ "it" ]) })
      | None -> None)
  | _ -> None

(* '<vp_fun applied to np>', e.g. "post <a cat picture> on facebook" *)
let sem_apply_vp_fun lib = function
  | [ f; n ] -> (
      match as_query n with
      | Some sub_q -> (
          match fill_action_from_query lib ~sub_q f with
          | None -> None
          | Some inv ->
              Some
                { value =
                    Derivation.V_frag
                      (Ast.F_program (prog ~query:sub_q Ast.S_now (Ast.A_invoke inv)));
                  tokens_override =
                    Some (Derivation.substitute_hole f.Derivation.tokens n.Derivation.tokens) })
      | None -> None)
  | _ -> None

(* 'when <wp> , <vp_fun> it': pass monitored outputs into the action *)
let sem_when_do_it lib = function
  | [ w; f ] -> (
      match as_stream w with
      | Some s -> (
          match f.Derivation.value with
          | Derivation.V_fun { inv; hole_ip; hole_ty; is_query = false } -> (
              let outs = Typecheck.stream_out_params lib s in
              match pick_out_for_hole ~outs ~hole_ip ~hole_ty with
              | None -> None
              | Some out_name ->
                  let inv = fill_hole_passed inv ~hole_ip ~out_name in
                  Some
                    { value =
                        Derivation.V_frag (Ast.F_program (prog s (Ast.A_invoke inv)));
                      tokens_override =
                        Some
                          (w.Derivation.tokens
                          @ ","
                            :: Derivation.substitute_hole f.Derivation.tokens [ "it" ]) })
          | _ -> None)
      | None -> None)
  | _ -> None

(* 'translate <np>' where translate is a query verb applied to a sub-query *)
let sem_apply_qvp_fun lib children =
  match sem_apply_np_fun lib children with
  | Some { value = Derivation.V_frag (Ast.F_query q); tokens_override } ->
      Some { value = Derivation.V_frag (Ast.F_program (now_query q)); tokens_override }
  | _ -> None

(* a query verb phrase used directly as a command: "translate 'hello'" *)
let sem_qvp_command = function
  | [ d ] ->
      Option.bind (as_query d) (fun q -> ok (Derivation.V_frag (Ast.F_program (now_query q))))
  | _ -> None

(* --- the rule set ------------------------------------------------------------ *)

let rules lib : rule list =
  [ (* primitive query commands *)
    rule "cmd_get_np" "command" [ L "get"; N "np" ] sem_get_np;
    rule "cmd_show_np" "command" [ L "show me"; N "np" ] sem_get_np;
    rule "cmd_what_np" "command" [ L "what is"; N "np" ] sem_get_np;
    rule "cmd_tell_np" "command" [ L "tell me"; N "np" ] sem_get_np;
    rule "cmd_search_np" "command" [ L "i want to see"; N "np" ] sem_get_np;
    rule ~flag:Training_only "cmd_bare_np" "command" [ N "np" ] sem_get_np;
    rule "cmd_list_np" "command" [ L "list"; N "np" ] (sem_list_np lib);
    rule "cmd_enumerate_np" "command" [ L "enumerate"; N "np" ] (sem_list_np lib);
    rule "cmd_qvp" "command" [ N "qvp" ] sem_qvp_command;
    (* primitive action commands *)
    rule "cmd_vp" "command" [ N "vp" ] sem_do_vp;
    rule "cmd_please_vp" "command" [ L "please"; N "vp" ] sem_do_vp;
    rule "cmd_can_you_vp" "command" [ L "can you"; N "vp" ] sem_do_vp;
    rule "cmd_i_want_vp" "command" [ L "i want to"; N "vp" ] sem_do_vp;
    (* monitor commands *)
    rule "cmd_notify_wp" "command" [ L "notify me"; N "wp" ] sem_when_notify;
    rule "cmd_wp_notify" "command" [ N "wp"; L ", notify me" ] sem_when_notify;
    rule "cmd_letknow_wp" "command" [ L "let me know"; N "wp" ] sem_when_notify;
    rule "cmd_alert_wp" "command" [ L "alert me"; N "wp" ] sem_when_notify;
    (* when-do compounds, both orders (section 3.1's two construct templates) *)
    rule "cmd_wp_vp" "command" [ N "wp"; L ","; N "vp" ] sem_when_do;
    rule "cmd_vp_wp" "command" [ N "vp"; N "wp" ] sem_when_do;
    (* when-get compounds *)
    rule "cmd_wp_get_np" "command" [ N "wp"; L ", get"; N "np" ] sem_when_get;
    rule "cmd_wp_show_np" "command" [ N "wp"; L ", show me"; N "np" ] sem_when_get;
    rule "cmd_get_np_wp" "command" [ L "get"; N "np"; N "wp" ] sem_get_when;
    rule "cmd_send_np_wp" "command" [ L "show me"; N "np"; N "wp" ] sem_get_when;
    (* streams from queries *)
    rule "wp_monitor_np" "wp" [ L "when"; N "np"; L "changes" ] (sem_monitor_np lib);
    rule "wp_monitor_np2" "wp" [ L "when"; N "np"; L "change" ] (sem_monitor_np lib);
    rule "wp_new_np" "wp" [ L "when there is a new"; N "np" ] (sem_monitor_new_np lib);
    rule "wp_anytime_np" "wp" [ L "whenever"; N "np"; L "changes" ] (sem_monitor_np lib);
    (* edge filters *)
    rule "wp_edge" "wp" [ L "when"; N "epred"; L "in"; N "np" ] (sem_edge lib);
    (* timers *)
    rule "wp_attimer" "wp" [ L "every day at"; N "time" ] sem_attimer;
    rule "wp_attimer2" "wp" [ L "once a day at"; N "time" ] sem_attimer;
    rule "wp_timer" "wp" [ L "every"; N "interval" ] sem_timer;
    (* filters *)
    rule "np_filter" "np" [ N "np"; N "pred" ] (sem_filter_np lib);
    rule "np_filter_only" "np" [ L "only"; N "np"; N "pred" ] (sem_filter_np lib);
    rule "wp_filter" "wp" [ N "wp"; N "pred" ] (sem_filter_wp lib);
    (* joins / parameter passing *)
    rule "np_apply_fun" "np" [ N "np_fun"; N "np" ] (sem_apply_np_fun lib);
    rule "cmd_qvp_apply" "command" [ N "qvp_fun"; N "np" ] (sem_apply_qvp_fun lib);
    rule "cmd_get_and_do_it" "command" [ L "get"; N "np"; N "vp_fun" ]
      (fun children ->
        match children with
        | [ n; f ] -> sem_get_and_do_it lib [ n; f ]
        | _ -> None);
    rule "cmd_vp_apply" "command" [ N "vp_fun"; N "np" ] (sem_apply_vp_fun lib);
    rule "cmd_wp_do_it" "command" [ N "wp"; N "vp_fun" ]
      (fun children ->
        match children with
        | [ w; f ] -> sem_when_do_it lib [ w; f ]
        | _ -> None) ]
