(* Deterministic fault schedules: every decision hashes (seed, class, id[,
   attempt]) through a splitmix64-style finalizer into a uniform float, so a
   schedule depends only on the spec and the request ids — not on timing,
   interleaving, or how many domains are running. *)

exception Injected_crash
exception Injected_drop

type spec = {
  seed : int;
  crash_rate : float;
  crash_attempts : int;
  latency_rate : float;
  latency_ns : float;
  sleep : bool;
  drop_rate : float;
  drop_attempts : int;
}

type t = spec

let default =
  { seed = 0;
    crash_rate = 0.0;
    crash_attempts = 1;
    latency_rate = 0.0;
    latency_ns = 0.0;
    sleep = false;
    drop_rate = 0.0;
    drop_attempts = 1 }

let none = default

let create (s : spec) =
  let rate name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Fault.create: %s must be in [0, 1]" name)
  in
  rate "crash_rate" s.crash_rate;
  rate "latency_rate" s.latency_rate;
  rate "drop_rate" s.drop_rate;
  if s.crash_attempts < 0 || s.drop_attempts < 0 then
    invalid_arg "Fault.create: attempt counts must be >= 0";
  if s.latency_ns < 0.0 then invalid_arg "Fault.create: latency_ns must be >= 0";
  s

let spec t = t

let active t =
  t.crash_rate > 0.0 || t.latency_rate > 0.0 || t.drop_rate > 0.0

(* uniform in [0, 1) from the 53 top bits of the mixed key; Hash64 uses
   fixed constants so schedules are stable across OCaml versions (unlike
   Hashtbl.hash, whose algorithm is unspecified). *)
let uniform ~seed ~tag ~id ~attempt =
  let open Int64 in
  let key =
    add
      (add (mul (of_int seed) 0x9e3779b97f4a7c15L) (mul (of_int tag) 0xd1b54a32d192ed03L))
      (add (mul (of_int id) 0x2545f4914f6cdd1dL) (of_int attempt))
  in
  let bits = shift_right_logical (Genie_util.Hash64.mix64 key) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let tag_crash = 1
let tag_drop = 2
let tag_latency = 3
let tag_backoff = 4

let crashes t ~id ~attempt =
  t.crash_rate > 0.0
  && attempt < t.crash_attempts
  && uniform ~seed:t.seed ~tag:tag_crash ~id ~attempt:0 < t.crash_rate

let drops t ~id ~attempt =
  t.drop_rate > 0.0
  && attempt < t.drop_attempts
  && uniform ~seed:t.seed ~tag:tag_drop ~id ~attempt:0 < t.drop_rate

let latency_ns t ~id =
  if
    t.latency_rate > 0.0
    && uniform ~seed:t.seed ~tag:tag_latency ~id ~attempt:0 < t.latency_rate
  then t.latency_ns
  else 0.0

let backoff_ns t ~base_ns ~id ~attempt =
  let u = uniform ~seed:t.seed ~tag:tag_backoff ~id ~attempt in
  base_ns *. Float.pow 2.0 (float_of_int attempt) *. (0.5 +. (0.5 *. u))

let of_string s =
  let parse_field spec field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault spec: missing '=' in %S" field)
    | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let float_v () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "fault spec: bad number %S for %s" v key)
        in
        let int_v () =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "fault spec: bad integer %S for %s" v key)
        in
        match key with
        | "seed" -> Result.map (fun n -> { spec with seed = n }) (int_v ())
        | "crash" -> Result.map (fun f -> { spec with crash_rate = f }) (float_v ())
        | "crash_attempts" ->
            Result.map (fun n -> { spec with crash_attempts = n }) (int_v ())
        | "latency" ->
            Result.map (fun f -> { spec with latency_rate = f }) (float_v ())
        | "latency_ms" ->
            Result.map (fun f -> { spec with latency_ns = f *. 1e6 }) (float_v ())
        | "drop" -> Result.map (fun f -> { spec with drop_rate = f }) (float_v ())
        | "drop_attempts" ->
            Result.map (fun n -> { spec with drop_attempts = n }) (int_v ())
        | "sleep" -> (
            match bool_of_string_opt v with
            | Some b -> Ok { spec with sleep = b }
            | None -> Error (Printf.sprintf "fault spec: bad bool %S for sleep" v))
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
  in
  let rec go spec = function
    | [] -> (
        match create spec with
        | t -> Ok t
        | exception Invalid_argument m -> Error m)
    | f :: rest -> (
        match parse_field spec (String.trim f) with
        | Ok spec -> go spec rest
        | Error _ as e -> e)
  in
  go default fields

let to_string t =
  String.concat ","
    [ Printf.sprintf "seed=%d" t.seed;
      Printf.sprintf "crash=%g" t.crash_rate;
      Printf.sprintf "crash_attempts=%d" t.crash_attempts;
      Printf.sprintf "latency=%g" t.latency_rate;
      Printf.sprintf "latency_ms=%g" (t.latency_ns /. 1e6);
      Printf.sprintf "drop=%g" t.drop_rate;
      Printf.sprintf "drop_attempts=%d" t.drop_attempts;
      Printf.sprintf "sleep=%b" t.sleep ]
