(** A worker pool on OCaml 5 [Domain]s with one bounded inbox per worker.

    The caller shards work explicitly ({!submit} names the target worker), so
    state that is not thread-safe — a worker's parse cache, its runtime
    environment, its private aligner scratch tables — can stay lock-free: all
    requests for a given cache key are routed to the same worker.

    Failure never loses work: a handler exception (or an injected message
    drop, see [fault_hook]) is captured per-item together with the request
    that caused it, and handed back by {!drain_results} so the coordinator
    can retry or answer with an error — the pool itself cannot deadlock on a
    failing worker.

    Protocol (single coordinating domain): [create], then any interleaving of
    [submit], then [drain]/[drain_results] for the outstanding count,
    repeated as desired, then [shutdown]. *)

type ('req, 'resp) t

val create :
  workers:int ->
  queue_capacity:int ->
  ?fault_hook:(int -> 'req -> exn option) ->
  handler:(int -> 'req -> 'resp) ->
  unit ->
  ('req, 'resp) t
(** Spawns [workers] (>= 1) domains. [handler w req] runs on worker [w]'s
    domain; an exception it raises is captured and surfaced by the next
    drain. [fault_hook w req] (fault injection; default: none) runs first —
    [Some e] records the item as failed with [e] without running the
    handler, simulating a message the channel dropped. *)

val workers : _ t -> int

val submit : ('req, 'resp) t -> worker:int -> 'req -> unit
(** Enqueues on worker [worker mod workers]'s inbox; blocks while that inbox
    is full (backpressure). *)

val try_submit : ('req, 'resp) t -> worker:int -> 'req -> bool
(** Non-blocking {!submit}: [false] when the inbox is full (the caller sheds
    or degrades instead of waiting). *)

val queue_length : _ t -> worker:int -> int
(** Current depth of a worker's inbox (racy; advisory). *)

val drain_results : ('req, 'resp) t -> int -> ('resp, 'req * exn) result list
(** [drain_results t n] blocks until [n] items have resolved since the last
    drain and returns them (completion order, not submission order), each
    either a response or the failed request paired with its exception. *)

val drain : ('req, 'resp) t -> int -> 'resp list
(** {!drain_results} that re-raises the first failure's exception — for
    callers that treat any worker failure as fatal. *)

val shutdown : _ t -> unit
(** Closes every inbox and joins every domain. Idempotent. *)

val map_list :
  workers:int ->
  ?queue_capacity:int ->
  ?max_attempts:int ->
  ?fault_hook:(index:int -> attempt:int -> exn option) ->
  ?on_retry:(index:int -> attempt:int -> exn -> unit) ->
  handler:(int -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map_list ~workers ~handler items] runs [handler index item] for every
    item and returns the results in submission order, fanning items over a
    fresh pool ([worker = index mod workers]) that is shut down before
    returning. With [workers <= 1] the same handler/retry/fault loop runs on
    the calling domain — no domains are spawned.

    A failed item (handler exception, or [fault_hook ~index ~attempt]
    returning [Some e] — e.g. an injected crash or drop) is reported to
    [on_retry] and resubmitted to the same worker with [attempt + 1], up to
    [max_attempts] (default 3) total tries; the final failure's exception is
    re-raised. Results are deterministic at any worker count iff [handler]
    is a pure function of [(index, item)] and [fault_hook] of
    [(index, attempt)]. *)

val tree_fold : combine:('a -> 'a -> 'a) -> 'a list -> 'a option
(** Balanced pairwise reduction: adjacent elements combine first, then
    adjacent partial results. The tree shape depends only on the list
    length, so floating-point reductions (e.g. gradient accumulation over
    shards) are bitwise reproducible at any worker count. [None] on the
    empty list. *)
