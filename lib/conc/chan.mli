(** A bounded, blocking, multi-domain FIFO channel (mutex + condition
    variables): the work queues of the serving pool. *)

type 'a t

exception Closed
(** Raised by {!push} on a closed channel. *)

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val push : 'a t -> 'a -> unit
(** Blocks while the channel is full. Raises {!Closed} if the channel is (or
    becomes, while waiting) closed. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking push: [false] (instead of waiting) when the channel is
    full — the admission-control primitive. Raises {!Closed} on a closed
    channel. *)

val pop : 'a t -> 'a option
(** Blocks while the channel is empty. [None] once the channel is closed and
    fully drained — the consumer's shutdown signal. *)

val pop_nowait : 'a t -> 'a option
(** Non-blocking {!pop}: [None] (instead of waiting) when the channel is
    currently empty, whether or not it is closed — the polling primitive for
    event loops that check a control channel between select rounds. *)

val close : 'a t -> unit
(** Wakes all waiters. Idempotent. Items already queued can still be
    popped. *)

val length : 'a t -> int
