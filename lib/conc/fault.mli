(** Seeded, deterministic fault injection for the serving layer.

    Every fault decision is a pure function of the spec's [seed] and the
    request's caller-assigned id (plus the attempt number where relevant) —
    never of wall-clock time, worker identity, or arrival order. A fault
    schedule is therefore exactly reproducible from its spec alone: the same
    spec makes the same requests crash, lag, or vanish whether the server
    runs sequentially or across any number of domains, which is what lets
    the test suite assert exact outcomes rather than probabilistic ones. *)

exception Injected_crash
(** Raised by {!Engine.process} in place of a worker exception. *)

exception Injected_drop
(** Recorded by {!Pool} (and the sequential path) in place of handling a
    request, simulating a channel message that was lost in flight. *)

type spec = {
  seed : int;  (** selects which requests each fault class hits *)
  crash_rate : float;  (** fraction of requests whose decode raises *)
  crash_attempts : int;  (** how many initial attempts of a hit request raise *)
  latency_rate : float;  (** fraction of requests that get extra decode latency *)
  latency_ns : float;  (** the injected latency *)
  sleep : bool;
      (** [true]: actually sleep the injected latency (benchmarks, so
          throughput degrades for real). [false] (default): add it to the
          engine's virtual clock only — timings and deadline checks see it,
          but no wall-clock time is spent (tests stay fast and the deadline
          comparison is exact). *)
  drop_rate : float;  (** fraction of requests whose message is dropped *)
  drop_attempts : int;  (** how many initial attempts of a hit request drop *)
}

type t

val default : spec
(** Seed 0, all rates 0, [crash_attempts] and [drop_attempts] 1,
    [latency_ns] 0, [sleep] false. *)

val none : t
(** Injects nothing; the zero-cost default of every serving entry point. *)

val create : spec -> t
(** Raises [Invalid_argument] if a rate is outside [0, 1] or an attempt
    count is negative. *)

val spec : t -> spec

val active : t -> bool
(** [false] iff the fault injects nothing (all rates zero). *)

val crashes : t -> id:int -> attempt:int -> bool
(** Whether attempt [attempt] (0-based) of request [id] must raise
    {!Injected_crash}: the request is selected with probability
    [crash_rate] and its first [crash_attempts] attempts fail. *)

val drops : t -> id:int -> attempt:int -> bool
(** Same shape as {!crashes} for dropped messages. *)

val latency_ns : t -> id:int -> float
(** Injected decode latency for request [id] (0 when not selected).
    Constant across attempts. *)

val backoff_ns : t -> base_ns:float -> id:int -> attempt:int -> float
(** Retry backoff with deterministic jitter:
    [base_ns * 2^attempt * u] where [u] is uniform in [0.5, 1.0) derived
    from the seed, id and attempt. Usable (and deterministic) on
    {!none} too. *)

val of_string : string -> (t, string) result
(** Parses a comma-separated [key=value] spec, e.g.
    ["seed=7,crash=0.1,crash_attempts=2,latency=0.2,latency_ms=5,drop=0.05,sleep=true"].
    Keys: [seed], [crash], [crash_attempts], [latency], [latency_ms],
    [drop], [drop_attempts], [sleep]. Unknown keys and malformed values are
    errors. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)
