(* Domain worker pool: per-worker bounded inboxes, a shared result bag.

   Results land in a mutex-protected list; the coordinator waits on a
   condition until the expected count has accumulated. Handler exceptions are
   captured per-item, paired with the request that caused them, and surfaced
   at drain so a failing worker can neither deadlock the coordinator nor
   lose a request silently. An optional [fault_hook] runs before the handler
   and can declare a popped message "dropped" (fault injection): the item is
   recorded as failed without running the handler, exactly as if the channel
   had lost it but the coordinator had noticed. *)

type ('req, 'resp) t = {
  inboxes : 'req Chan.t array;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  have_results : Condition.t;
  mutable results : ('resp, 'req * exn) result list;
  mutable n_results : int;
  mutable shut : bool;
}

let workers t = Array.length t.inboxes

let create ~workers:n ~queue_capacity ?fault_hook ~handler () =
  if n < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let inboxes = Array.init n (fun _ -> Chan.create ~capacity:queue_capacity) in
  let m = Mutex.create () in
  let have_results = Condition.create () in
  let t =
    { inboxes;
      domains = [||];
      m;
      have_results;
      results = [];
      n_results = 0;
      shut = false }
  in
  let worker_loop w () =
    let inbox = inboxes.(w) in
    let rec loop () =
      match Chan.pop inbox with
      | None -> ()
      | Some req ->
          let resp =
            match Option.bind fault_hook (fun hook -> hook w req) with
            | Some e -> Error (req, e)
            | None -> (
                match handler w req with
                | resp -> Ok resp
                | exception e -> Error (req, e))
          in
          Mutex.lock m;
          t.results <- resp :: t.results;
          t.n_results <- t.n_results + 1;
          Condition.signal have_results;
          Mutex.unlock m;
          loop ()
    in
    loop ()
  in
  t.domains <- Array.init n (fun w -> Domain.spawn (worker_loop w));
  t

let submit t ~worker req =
  Chan.push t.inboxes.(worker mod workers t) req

let try_submit t ~worker req =
  Chan.try_push t.inboxes.(worker mod workers t) req

let queue_length t ~worker = Chan.length t.inboxes.(worker mod workers t)

let drain_results t n =
  Mutex.lock t.m;
  while t.n_results < n do
    Condition.wait t.have_results t.m
  done;
  let taken = t.results in
  t.results <- [];
  t.n_results <- 0;
  Mutex.unlock t.m;
  List.rev taken

let drain t n =
  List.map
    (function Ok r -> r | Error (_, e) -> raise e)
    (drain_results t n)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Array.iter Chan.close t.inboxes;
    Array.iter Domain.join t.domains
  end

(* Generalized batch runner over arbitrary work items (not just serve
   requests): run [handler] on every item, retry per-item failures up to
   [max_attempts] on the same worker, and return results in submission
   order. Sequential when [workers <= 1] — same handler, same retry loop,
   same fault decisions, on the calling domain — so any-worker-count
   determinism reduces to: the handler must be a pure function of
   (item, index) and the fault_hook a pure function of (index, attempt). *)
let map_list ~workers:n ?(queue_capacity = 64) ?(max_attempts = 3) ?fault_hook
    ?on_retry ~handler items =
  let items = Array.of_list items in
  let total = Array.length items in
  if total = 0 then []
  else begin
    let fault ~index ~attempt =
      match fault_hook with
      | None -> None
      | Some hook -> hook ~index ~attempt
    in
    let retried ~index ~attempt e =
      (match on_retry with
      | None -> ()
      | Some f -> f ~index ~attempt e);
      if attempt + 1 >= max_attempts then raise e
    in
    if n <= 1 then
      (* Sequential fallback on the calling domain. *)
      let run index item =
        let rec go attempt =
          match
            match fault ~index ~attempt with
            | Some e -> raise e
            | None -> handler index item
          with
          | resp -> resp
          | exception e ->
              retried ~index ~attempt e;
              go (attempt + 1)
        in
        go 0
      in
      Array.to_list (Array.mapi run items)
    else begin
      (* Each in-flight message carries its item index and attempt number;
         a failure comes back through drain_results paired with that
         coordinate, so the coordinator resubmits it (same worker — the
         index names the worker) with attempt+1 until max_attempts. *)
      let pool =
        create ~workers:n ~queue_capacity
          ?fault_hook:
            (Option.map
               (fun hook _w (index, attempt) -> hook ~index ~attempt)
               fault_hook)
          ~handler:(fun _w (index, _attempt) ->
            (index, handler index items.(index)))
          ()
      in
      let out = Array.make total None in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () ->
          Array.iteri
            (fun index _ -> submit pool ~worker:index (index, 0))
            items;
          let pending = ref total in
          while !pending > 0 do
            let batch = drain_results pool !pending in
            pending := 0;
            List.iter
              (function
                | Ok (index, resp) -> out.(index) <- Some resp
                | Error ((index, attempt), e) ->
                    retried ~index ~attempt e;
                    incr pending;
                    submit pool ~worker:index (index, attempt + 1))
              batch
          done);
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           out)
    end
  end

(* Balanced pairwise reduction in a fixed tree: adjacent elements combine
   first, then adjacent partial results, until one remains. The tree shape --
   and therefore the combination order -- depends only on the list length,
   never on which worker produced which element, so floating-point reductions
   (gradient accumulation) are bitwise reproducible at any worker count. *)
let tree_fold ~combine xs =
  let rec pair_up = function
    | a :: b :: rest -> combine a b :: pair_up rest
    | tail -> tail
  in
  let rec go = function
    | [] -> None
    | [ x ] -> Some x
    | xs -> go (pair_up xs)
  in
  go xs
