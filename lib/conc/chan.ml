(* Bounded blocking channel. Mutex + two conditions (not-empty / not-full);
   Mutex and Condition are domain-safe in OCaml 5. *)

exception Closed

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  { q = Queue.create ();
    capacity = max 1 capacity;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  with_lock t (fun () ->
      while (not t.closed) && Queue.length t.q >= t.capacity do
        Condition.wait t.not_full t.m
      done;
      if t.closed then raise Closed;
      Queue.push x t.q;
      Condition.signal t.not_empty)

let try_push t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.not_empty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.not_empty t.m
      done;
      if Queue.is_empty t.q then None
      else begin
        let x = Queue.pop t.q in
        Condition.signal t.not_full;
        Some x
      end)

let pop_nowait t =
  with_lock t (fun () ->
      if Queue.is_empty t.q then None
      else begin
        let x = Queue.pop t.q in
        Condition.signal t.not_full;
        Some x
      end)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full
      end)

let length t = with_lock t (fun () -> Queue.length t.q)
