(** Versioned binary model checkpoints (docs/checkpointing.md).

    A checkpoint captures everything a resumed training run's future
    depends on: the model config, both vocabularies in id order, every
    parameter's weights plus Adam first/second moments (exact IEEE-754 bit
    patterns), the Adam step count and the root RNG cursor (inside the
    {!Genie_nn.Seq2seq.snapshot}), and a free-form provenance table
    recording the data/hyperparameter recipe.

    The codec follows the [Net.Codec] discipline: big-endian fixed-width
    integers, floats as bit patterns, length-prefixed strings, strict
    exact-consumption decoding. The file header carries a magic, a format
    version and a 16-hex digest of the body; truncated, corrupted or
    wrong-version files are rejected whole — a checkpoint either loads
    exactly or not at all. {!save} is atomic (write-temp-then-rename), so a
    kill mid-write leaves the previous file intact. *)

type param_blob = {
  pb_name : string;
  pb_rows : int;
  pb_cols : int;
  pb_w : float array;  (** weights *)
  pb_m : float array;  (** Adam first moments *)
  pb_v : float array;  (** Adam second moments *)
}

type t = {
  cfg : Genie_nn.Seq2seq.config;
  src_tokens : string list;  (** source vocabulary in id order *)
  tgt_tokens : string list;  (** target vocabulary in id order *)
  snapshot : Genie_nn.Seq2seq.snapshot;
  params : param_blob list;  (** in [Seq2seq.params] order *)
  provenance : (string * string) list;
}

val of_model :
  ?provenance:(string * string) list ->
  snapshot:Genie_nn.Seq2seq.snapshot ->
  Genie_nn.Seq2seq.t ->
  t
(** Captures the model's parameters and moments (copied, not aliased). *)

val restore : t -> (Genie_nn.Seq2seq.t, string) result
(** Rebuilds a model: vocabularies from the stored token lists, parameters,
    moments and the root RNG cursor all restored bitwise. Fails (restoring
    nothing observable) on any name/shape mismatch — never half-loads. The
    restored model's {!Genie_nn.Seq2seq.weight_digest} equals the captured
    model's. Pass [snapshot] to {!Genie_nn.Seq2seq.train}[ ~resume] to
    continue the interrupted run. *)

val restore_weights : t -> (Genie_nn.Seq2seq.t, string) result
(** {!restore} minus the Adam moments: rebuilds a {e servable} model
    (weights, vocabularies and RNG cursor restored bitwise, moments left at
    their freshly-initialized zeros). Decoding never reads moments, so the
    result predicts identically to the full restore; it just cannot resume
    training. Same validate-before-blit discipline as {!restore}. *)

val model_kind : t -> string
(** The provenance table's ["model_kind"] entry, defaulting to ["seq2seq"]
    for checkpoints written before the key existed (the format only stores
    seq2seq models). *)

val weight_digest : t -> string
(** The captured weights' 16-hex digest — same formula as
    {!Genie_nn.Optimizer.digest}, so it compares directly against a live
    model's {!Genie_nn.Seq2seq.weight_digest} without restoring. *)

val digest : t -> string
(** The 16-hex digest of the encoded body — what the file header carries;
    covers moments, snapshot and provenance as well as weights. *)

val version : int

val encode : t -> string
val decode : string -> (t, string) result

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames into place. *)

val load : string -> (t, string) result
(** Reads and {!decode}s a file; IO errors come back as [Error]. *)

val save_model :
  ?provenance:(string * string) list ->
  snapshot:Genie_nn.Seq2seq.snapshot ->
  path:string ->
  Genie_nn.Seq2seq.t ->
  unit
(** {!of_model} + {!save}: the checkpoint callback for
    {!Genie_nn.Seq2seq.train}. *)

val load_model : string -> (Genie_nn.Seq2seq.t * t, string) result
(** {!load} + {!restore}, returning the checkpoint alongside the model (for
    its snapshot and provenance). *)

(** {2 Rotation (keep-last-K GC)}

    [genie train --ckpt-keep K] writes each checkpoint twice: once under the
    stable [path] (always the newest — what reload sources point at) and
    once as [path.stepNNNNNNNN] (zero-padded Adam step), then prunes the
    step files down to the last [K]. Both writes are atomic, and pruning
    runs only after the new file is safely renamed into place, so a kill at
    any point leaves a loadable latest checkpoint. *)

val rotation_path : path:string -> step:int -> string
(** [path.step<8-digit zero-padded step>]. Raises [Invalid_argument] on a
    negative step. *)

val rotations : path:string -> (int * string) list
(** The rotated siblings of [path] that exist on disk, as
    [(step, file)] pairs sorted by ascending step. Ignores [path] itself,
    temp files and anything whose suffix is not exactly 8 digits. *)

val prune_rotations : path:string -> keep:int -> string list
(** Deletes the oldest rotated checkpoints until at most [keep] remain,
    returning the deleted paths (oldest first). Never touches [path]
    itself. *)

val save_rotating :
  ?provenance:(string * string) list ->
  snapshot:Genie_nn.Seq2seq.snapshot ->
  path:string ->
  keep:int ->
  Genie_nn.Seq2seq.t ->
  string
(** Encodes once, atomically writes the step file then the stable [path],
    prunes to the last [keep] step files ([keep] is clamped to [>= 1], so
    the file just written always survives), and returns the step file's
    path. *)

val describe : t -> string
(** A human-readable report: version, digests, model config, vocabulary
    sizes, parameter tensor counts, snapshot fields, and the provenance
    table — what [genie ckpt inspect] prints. *)

val inspect : string -> (string, string) result
(** {!load} followed by {!describe}; a truncated, corrupt or unreadable file
    is [Error] (the CLI maps it to exit 2). *)
