(* Versioned binary model checkpoints: every Seq2seq parameter, its Adam
   first/second moments, the Adam step count and the root RNG cursor --
   everything a resumed run's future depends on -- in one self-contained
   file.

   The wire discipline mirrors Net.Codec: integers are big-endian fixed
   width, floats travel as their IEEE-754 bit pattern (lossless, canonical),
   strings and lists are length-prefixed, and decoding is a cursor walk that
   fails loudly on truncation or trailing bytes. The header carries a magic,
   a format version and a 16-hex splitmix digest of the body; a file that is
   truncated, corrupted or from another version is rejected as a whole -- a
   checkpoint either loads exactly or not at all, never half-way.

   Saves are atomic: the bytes go to [path ^ ".tmp"] and are renamed into
   place, so a kill mid-write leaves the previous checkpoint intact. *)

module Rng = Genie_util.Rng
module Hash64 = Genie_util.Hash64
module Seq2seq = Genie_nn.Seq2seq
module Vocab = Genie_nn.Vocab
module Layers = Genie_nn.Layers
module Tensor = Genie_nn.Tensor

let magic = "GENIECKP"
let version = 1

type param_blob = {
  pb_name : string;
  pb_rows : int;
  pb_cols : int;
  pb_w : float array;  (* weights *)
  pb_m : float array;  (* Adam first moments *)
  pb_v : float array;  (* Adam second moments *)
}

type t = {
  cfg : Seq2seq.config;
  src_tokens : string list;  (* source vocabulary in id order *)
  tgt_tokens : string list;  (* target vocabulary in id order *)
  snapshot : Seq2seq.snapshot;
  params : param_blob list;  (* in Seq2seq.params order *)
  provenance : (string * string) list;  (* data/hyperparameter recipe *)
}

(* --- capture / reapply ------------------------------------------------------- *)

let flat (x : Tensor.t) =
  Array.sub x.Tensor.data x.Tensor.off (Tensor.size x)

let blob (p : Layers.param) =
  let t = p.Layers.tensor in
  { pb_name = p.Layers.name;
    pb_rows = t.Tensor.rows;
    pb_cols = t.Tensor.cols;
    pb_w = flat t;
    pb_m = flat p.Layers.m;
    pb_v = flat p.Layers.v }

let of_model ?(provenance = []) ~snapshot (model : Seq2seq.t) =
  { cfg = model.Seq2seq.cfg;
    src_tokens = Vocab.tokens model.Seq2seq.src_vocab;
    tgt_tokens = Vocab.tokens model.Seq2seq.tgt_vocab;
    snapshot;
    params = List.map blob (Seq2seq.params model);
    provenance }

(* Same formula as Optimizer.digest over the captured weights, so a
   checkpoint's weight digest can be compared against a live model's
   without restoring anything. *)
let weight_digest ck =
  let h =
    List.fold_left
      (fun h pb ->
        let h = Hash64.string h pb.pb_name in
        Array.fold_left
          (fun h x -> Hash64.combine h (Int64.bits_of_float x))
          h pb.pb_w)
      (Hash64.string 0L "genie.weights")
      ck.params
  in
  Hash64.to_hex h

(* [moments] restores the Adam state too (resuming training); without it
   only the weights land (a served model never consults its moments). Either
   way, every name and shape is validated before the first blit. *)
let restore_gen ~moments ck =
  let src_vocab = Vocab.of_tokens ck.src_tokens in
  let tgt_vocab = Vocab.of_tokens ck.tgt_tokens in
  if Vocab.tokens src_vocab <> ck.src_tokens then
    Error "checkpoint source vocabulary does not reconstruct in id order"
  else if Vocab.tokens tgt_vocab <> ck.tgt_tokens then
    Error "checkpoint target vocabulary does not reconstruct in id order"
  else begin
    let model = Seq2seq.create ~cfg:ck.cfg ~src_vocab ~tgt_vocab () in
    let ps = Seq2seq.params model in
    if List.length ps <> List.length ck.params then
      Error
        (Printf.sprintf "checkpoint carries %d parameters, model has %d"
           (List.length ck.params) (List.length ps))
    else begin
      let err = ref None in
      List.iter2
        (fun (p : Layers.param) pb ->
          if !err = None then begin
            let t = p.Layers.tensor in
            if p.Layers.name <> pb.pb_name then
              err :=
                Some
                  (Printf.sprintf "parameter name mismatch: %s vs %s"
                     p.Layers.name pb.pb_name)
            else if t.Tensor.rows <> pb.pb_rows || t.Tensor.cols <> pb.pb_cols
            then
              err :=
                Some
                  (Printf.sprintf "%s: shape %dx%d in checkpoint, %dx%d in model"
                     pb.pb_name pb.pb_rows pb.pb_cols t.Tensor.rows t.Tensor.cols)
            else begin
              let put (src : float array) (dst : Tensor.t) =
                Array.blit src 0 dst.Tensor.data dst.Tensor.off
                  (Array.length src)
              in
              put pb.pb_w t;
              if moments then begin
                put pb.pb_m p.Layers.m;
                put pb.pb_v p.Layers.v
              end
            end
          end)
        ps ck.params;
      match !err with
      | Some e -> Error e
      | None ->
          (* the cursor create() left behind is init noise; the snapshot's
             cursor is where the interrupted run's root stream stood *)
          Rng.set_cursor model.Seq2seq.rng ck.snapshot.Seq2seq.snap_rng;
          Ok model
    end
  end

let restore ck = restore_gen ~moments:true ck
let restore_weights ck = restore_gen ~moments:false ck

(* The serving backend this checkpoint reconstructs, as recorded in its
   provenance; every current producer writes a Seq2seq, so that is the
   default for files from before the key existed. *)
let model_kind ck =
  match List.assoc_opt "model_kind" ck.provenance with
  | Some k -> k
  | None -> "seq2seq"

(* --- writers ----------------------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Checkpoint: u32 out of range";
  w_u8 b (v lsr 24);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 8);
  w_u8 b v

let w_i64 b v =
  for i = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_string_list b l =
  w_u32 b (List.length l);
  List.iter (w_string b) l

(* --- readers ----------------------------------------------------------------- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let r_u8 c =
  if c.pos >= String.length c.s then raise (Bad "truncated checkpoint");
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let a = r_u8 c in
  let b = r_u8 c in
  let d = r_u8 c in
  let e = r_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let r_i64 c =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 c))
  done;
  !bits

let r_f64 c = Int64.float_of_bits (r_i64 c)

let r_string c =
  let n = r_u32 c in
  if c.pos + n > String.length c.s then raise (Bad "truncated string");
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let r_string_list c =
  let n = r_u32 c in
  let acc = ref [] in
  for _ = 1 to n do
    acc := r_string c :: !acc
  done;
  List.rev !acc

let r_floats c n =
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    a.(i) <- r_f64 c
  done;
  a

(* --- body codec -------------------------------------------------------------- *)

let encode_body ck =
  let b = Buffer.create 65536 in
  w_u32 b ck.cfg.Seq2seq.embed_dim;
  w_u32 b ck.cfg.Seq2seq.hidden_dim;
  w_f64 b ck.cfg.Seq2seq.dropout;
  w_i64 b (Int64.of_int ck.cfg.Seq2seq.seed);
  w_string_list b ck.src_tokens;
  w_string_list b ck.tgt_tokens;
  w_u32 b ck.snapshot.Seq2seq.snap_epoch;
  w_u32 b ck.snapshot.Seq2seq.snap_pos;
  w_i64 b ck.snapshot.Seq2seq.snap_rng;
  w_u32 b ck.snapshot.Seq2seq.snap_step;
  w_u32 b (List.length ck.params);
  List.iter
    (fun pb ->
      let n = pb.pb_rows * pb.pb_cols in
      if
        Array.length pb.pb_w <> n
        || Array.length pb.pb_m <> n
        || Array.length pb.pb_v <> n
      then invalid_arg "Checkpoint.encode: parameter blob shape mismatch";
      w_string b pb.pb_name;
      w_u32 b pb.pb_rows;
      w_u32 b pb.pb_cols;
      Array.iter (w_f64 b) pb.pb_w;
      Array.iter (w_f64 b) pb.pb_m;
      Array.iter (w_f64 b) pb.pb_v)
    ck.params;
  w_u32 b (List.length ck.provenance);
  List.iter
    (fun (k, v) ->
      w_string b k;
      w_string b v)
    ck.provenance;
  Buffer.contents b

let decode_body s =
  let c = { s; pos = 0 } in
  let embed_dim = r_u32 c in
  let hidden_dim = r_u32 c in
  let dropout = r_f64 c in
  let seed = Int64.to_int (r_i64 c) in
  let src_tokens = r_string_list c in
  let tgt_tokens = r_string_list c in
  let snap_epoch = r_u32 c in
  let snap_pos = r_u32 c in
  let snap_rng = r_i64 c in
  let snap_step = r_u32 c in
  let n_params = r_u32 c in
  let params = ref [] in
  for _ = 1 to n_params do
    let pb_name = r_string c in
    let pb_rows = r_u32 c in
    let pb_cols = r_u32 c in
    let n = pb_rows * pb_cols in
    let pb_w = r_floats c n in
    let pb_m = r_floats c n in
    let pb_v = r_floats c n in
    params := { pb_name; pb_rows; pb_cols; pb_w; pb_m; pb_v } :: !params
  done;
  let n_prov = r_u32 c in
  let provenance = ref [] in
  for _ = 1 to n_prov do
    let k = r_string c in
    let v = r_string c in
    provenance := (k, v) :: !provenance
  done;
  if c.pos <> String.length c.s then
    raise
      (Bad
         (Printf.sprintf "trailing checkpoint bytes (%d of %d consumed)" c.pos
            (String.length c.s)));
  { cfg = { Seq2seq.embed_dim; hidden_dim; dropout; seed };
    src_tokens;
    tgt_tokens;
    snapshot = { Seq2seq.snap_epoch; snap_pos; snap_rng; snap_step };
    params = List.rev !params;
    provenance = List.rev !provenance }

(* --- framed file format ------------------------------------------------------ *)

let body_digest body = Hash64.to_hex (Hash64.string 0L body)
let digest ck = body_digest (encode_body ck)

let header_len = String.length magic + 4 + 16

let encode ck =
  let body = encode_body ck in
  let b = Buffer.create (header_len + String.length body) in
  Buffer.add_string b magic;
  w_u32 b version;
  Buffer.add_string b (body_digest body);
  Buffer.add_string b body;
  Buffer.contents b

let decode s =
  if String.length s < header_len then Error "truncated checkpoint header"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad checkpoint magic (not a Genie checkpoint)"
  else begin
    let c = { s; pos = String.length magic } in
    match
      let v = r_u32 c in
      if v <> version then
        Error (Printf.sprintf "unsupported checkpoint version %d (want %d)" v version)
      else begin
        let claimed = String.sub s c.pos 16 in
        let body = String.sub s (c.pos + 16) (String.length s - c.pos - 16) in
        let actual = body_digest body in
        if actual <> claimed then
          Error
            (Printf.sprintf
               "checkpoint digest mismatch: header %s, body %s (corrupted file)"
               claimed actual)
        else Ok (decode_body body)
      end
    with
    | r -> r
    | exception Bad e -> Error e
  end

(* --- file IO ----------------------------------------------------------------- *)

let write_atomic ~path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc s
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let save ~path ck = write_atomic ~path (encode ck)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> decode s
  | exception Sys_error e -> Error e

let save_model ?provenance ~snapshot ~path model =
  save ~path (of_model ?provenance ~snapshot model)

(* --- rotation (keep-last-k GC) ------------------------------------------------ *)

(* Rotated checkpoints live next to the latest one as [PATH.step<8 digits>]
   (zero-padded, so lexicographic file listings agree with numeric step
   order). [PATH] itself always holds the newest checkpoint -- the stable
   name reload sources and resume recipes point at. *)

let rotation_suffix_len = 8

let rotation_path ~path ~step =
  if step < 0 then invalid_arg "Checkpoint.rotation_path: negative step";
  Printf.sprintf "%s.step%0*d" path rotation_suffix_len step

let rotations ~path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".step" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      List.sort compare
        (List.filter_map
           (fun n ->
             if
               String.length n = plen + rotation_suffix_len
               && String.sub n 0 plen = prefix
             then
               match int_of_string_opt (String.sub n plen rotation_suffix_len) with
               | Some step when step >= 0 -> Some (step, Filename.concat dir n)
               | _ -> None
             else None)
           (Array.to_list names))

let prune_rotations ~path ~keep =
  let keep = max 0 keep in
  let all = rotations ~path in
  let excess = max 0 (List.length all - keep) in
  let doomed = List.filteri (fun i _ -> i < excess) all in
  List.map
    (fun (_, p) ->
      (try Sys.remove p with Sys_error _ -> ());
      p)
    doomed

let save_rotating ?provenance ~snapshot ~path ~keep model =
  (* keep >= 1: the prune below must never delete the file this call just
     renamed into place *)
  let keep = max 1 keep in
  let bytes = encode (of_model ?provenance ~snapshot model) in
  let step_file = rotation_path ~path ~step:snapshot.Seq2seq.snap_step in
  write_atomic ~path:step_file bytes;
  write_atomic ~path bytes;
  ignore (prune_rotations ~path ~keep);
  step_file

let load_model path =
  match load path with
  | Error e -> Error e
  | Ok ck -> (
      match restore ck with
      | Error e -> Error e
      | Ok model -> Ok (model, ck))

(* --- human-readable report (genie ckpt inspect) ------------------------------ *)

let describe (ck : t) : string =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "version:        %d" version;
  line "digest:         %s" (digest ck);
  line "weight digest:  %s" (weight_digest ck);
  line "kind:           %s" (model_kind ck);
  line "model config:   embed=%d hidden=%d dropout=%g seed=%d"
    ck.cfg.Genie_nn.Seq2seq.embed_dim ck.cfg.Genie_nn.Seq2seq.hidden_dim
    ck.cfg.Genie_nn.Seq2seq.dropout ck.cfg.Genie_nn.Seq2seq.seed;
  line "vocabulary:     %d source / %d target tokens"
    (List.length ck.src_tokens) (List.length ck.tgt_tokens);
  let floats =
    List.fold_left
      (fun acc p -> acc + (3 * p.pb_rows * p.pb_cols))
      0 ck.params
  in
  line "parameters:     %d tensors, %d floats (weights + Adam moments)"
    (List.length ck.params) floats;
  let s = ck.snapshot in
  line "snapshot:       epoch=%d pos=%d step=%d rng=%Ld"
    s.Genie_nn.Seq2seq.snap_epoch s.Genie_nn.Seq2seq.snap_pos
    s.Genie_nn.Seq2seq.snap_step s.Genie_nn.Seq2seq.snap_rng;
  if ck.provenance = [] then line "provenance:     (none)"
  else begin
    line "provenance:";
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 ck.provenance
    in
    List.iter
      (fun (k, v) -> line "  %-*s  %s" width k v)
      ck.provenance
  end;
  Buffer.contents b

let inspect path : (string, string) result =
  match load path with Error e -> Error e | Ok ck -> Ok (describe ck)
