(** Cheap always-on stage counters.

    One atomic integer per pipeline stage, bumped unconditionally whether or
    not a tracer is attached. {!Serve.Metrics} folds {!counts} into its
    snapshots, so stage totals are visible even with tracing disabled. *)

type stage =
  | Tokenize
  | Cache_hit
  | Cache_miss
  | Parse
  | Exec
  | Retry
  | Backoff
  | Crash
  | Drop
  | Degraded
  | Shed
  | Net_accept  (** connections accepted by the network daemon *)
  | Net_frame_in  (** request frames decoded off sockets *)
  | Net_frame_out  (** response frames written back *)
  | Net_queue  (** requests that waited in the admission queue *)
  | Net_batch  (** micro-batches dispatched into the serving pool *)
  | Net_shed  (** requests refused because the admission queue was full *)
  | Compile_hit  (** executions answered by the compiled-program cache *)
  | Compile_miss  (** executions that had to compile first *)
  | Compile  (** ThingTalk programs lowered to bytecode *)
  | Swap  (** model hot-swaps committed by the serving layer *)
  | Swap_noop  (** reloads that resolved to the already-active digest *)
  | Swap_cache_clear  (** parse-cache invalidations forced by a swap *)
  | Spill_flush  (** sorted runs spilled to disk by corpus shards *)
  | Spill_merge  (** external k-way merges of spilled runs *)
  | Spill_read  (** corpus records streamed back off disk *)

type t

val all : stage list
val stage_name : stage -> string

val create : unit -> t
val incr : t -> stage -> unit
val get : t -> stage -> int

val counts : t -> (string * int) list
(** Non-zero counters as [(stage_name, count)], in fixed stage order. *)

val reset : t -> unit
