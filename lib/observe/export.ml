(* Trace consumers: JSONL export, a self-time flame summary, and the
   structural tree/digest forms the test suite uses as oracles. The
   structural forms deliberately omit all timestamps — only names, ids,
   parents and attrs — so they are byte-stable for a seeded run. *)

module J = Genie_util.Json_lite
module H = Genie_util.Hash64

let span_json (sp : Span.t) =
  J.Obj
    ([ ("id", J.String (H.to_hex sp.id)) ]
    @ (match sp.parent with
      | None -> []
      | Some p -> [ ("parent", J.String (H.to_hex p)) ])
    @ [ ("name", J.String sp.name);
        ("request", J.Int sp.request);
        ("attempt", J.Int sp.attempt);
        ("seq", J.Int sp.seq);
        ("start_ns", J.Float sp.start_ns);
        ("dur_ns", J.Float sp.dur_ns) ]
    @
    match sp.attrs with
    | [] -> []
    | attrs ->
        [ ("attrs", J.Obj (List.map (fun (k, v) -> (k, J.String v)) attrs)) ])

let to_jsonl spans =
  String.concat ""
    (List.map (fun sp -> J.to_string_compact (span_json sp) ^ "\n") spans)

let write_jsonl path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl spans))

(* Attributes that legitimately differ between serving paths: under a pooled
   retry, a request can re-enter its shard behind a same-key neighbour and
   flip a miss into a hit. Everything else must match exactly. *)
let volatile_attr k = String.equal k "cache"

let span_label ~strict (sp : Span.t) =
  let attrs =
    if strict then sp.attrs
    else List.filter (fun (k, _) -> not (volatile_attr k)) sp.attrs
  in
  Printf.sprintf "%s req=%d att=%d%s" sp.name sp.request sp.attempt
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) attrs))

let tree_lines ?(strict = true) spans =
  let spans = List.sort Span.order spans in
  let children = Hashtbl.create 64 in
  List.iter
    (fun (sp : Span.t) ->
      match sp.parent with
      | Some p -> Hashtbl.replace children p (sp :: (Option.value ~default:[] (Hashtbl.find_opt children p)))
      | None -> ())
    (List.rev spans);
  let lines = ref [] in
  let rec emit depth (sp : Span.t) =
    lines := (String.make (2 * depth) ' ' ^ span_label ~strict sp) :: !lines;
    List.iter (emit (depth + 1))
      (List.sort Span.order
         (Option.value ~default:[] (Hashtbl.find_opt children sp.id)))
  in
  List.iter
    (fun (sp : Span.t) -> if sp.parent = None then emit 0 sp)
    spans;
  List.rev !lines

let digest ?(strict = true) spans =
  H.to_hex
    (List.fold_left
       (fun h line -> H.string h line)
       (H.mix64 1L)
       (tree_lines ~strict spans))

type frame = { name : string; count : int; total_ns : float; self_ns : float }

let flame spans =
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun (sp : Span.t) ->
      match sp.parent with
      | Some p ->
          Hashtbl.replace child_time p
            (sp.dur_ns
            +. Option.value ~default:0.0 (Hashtbl.find_opt child_time p))
      | None -> ())
    spans;
  let frames = Hashtbl.create 16 in
  List.iter
    (fun (sp : Span.t) ->
      let self =
        Float.max 0.0
          (sp.dur_ns
          -. Option.value ~default:0.0 (Hashtbl.find_opt child_time sp.id))
      in
      let f =
        Option.value
          ~default:{ name = sp.name; count = 0; total_ns = 0.0; self_ns = 0.0 }
          (Hashtbl.find_opt frames sp.name)
      in
      Hashtbl.replace frames sp.name
        { f with
          count = f.count + 1;
          total_ns = f.total_ns +. sp.dur_ns;
          self_ns = f.self_ns +. self })
    spans;
  List.sort
    (fun a b ->
      let c = compare b.self_ns a.self_ns in
      if c <> 0 then c else compare a.name b.name)
    (Hashtbl.fold (fun _ f acc -> f :: acc) frames [])

let pp_flame ppf frames =
  let grand = List.fold_left (fun acc f -> acc +. f.self_ns) 0.0 frames in
  Format.fprintf ppf "%-18s %8s %12s %12s %6s@." "stage" "count" "total_ms"
    "self_ms" "self%";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-18s %8d %12.3f %12.3f %5.1f%%@." f.name f.count
        (f.total_ns /. 1e6) (f.self_ns /. 1e6)
        (if grand > 0.0 then 100.0 *. f.self_ns /. grand else 0.0))
    frames
