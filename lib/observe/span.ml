(* A single traced stage. Ids are pure functions of (seed, request, attempt,
   seq, name) — never of wall-clock time, worker index or allocation order —
   so a seeded run produces the same span ids no matter how many domains
   execute it. That determinism is what lets the test suite assert exact
   span trees and compare pooled against sequential traces. *)

module H = Genie_util.Hash64

type t = {
  id : int64;
  parent : int64 option;
  name : string;
  request : int;  (* request id for serving spans; depth for synthesis spans *)
  attempt : int;
  seq : int;  (* fixed per-stage ordinal; the stable sort key within an attempt *)
  start_ns : float;
  dur_ns : float;
  attrs : (string * string) list;
}

let id_of ~seed ~request ~attempt ~seq ~name =
  let h = H.mix64 (Int64.of_int seed) in
  let h = H.int h request in
  let h = H.int h attempt in
  let h = H.int h seq in
  H.string h name

let v ~seed ~request ?(attempt = 0) ~seq ?parent ?(attrs = []) ~start_ns
    ~dur_ns name =
  { id = id_of ~seed ~request ~attempt ~seq ~name;
    parent;
    name;
    request;
    attempt;
    seq;
    start_ns;
    dur_ns;
    attrs }

(* Deterministic global order: structural keys only, no timestamps. *)
let order a b =
  let c = compare a.request b.request in
  if c <> 0 then c
  else
    let c = compare a.attempt b.attempt in
    if c <> 0 then c
    else
      let c = compare a.seq b.seq in
      if c <> 0 then c
      else
        let c = compare a.name b.name in
        if c <> 0 then c else compare a.id b.id
