(* Always-on stage counters: one atomic int per pipeline stage, bumped
   unconditionally on the hot path (tracing on or off). Cheap enough to
   leave enabled in production; folded into Serve.Metrics snapshots. *)

module A = Genie_util.Atomic_counter

type stage =
  | Tokenize
  | Cache_hit
  | Cache_miss
  | Parse
  | Exec
  | Retry
  | Backoff
  | Crash
  | Drop
  | Degraded
  | Shed
  | Net_accept
  | Net_frame_in
  | Net_frame_out
  | Net_queue
  | Net_batch
  | Net_shed
  | Compile_hit
  | Compile_miss
  | Compile
  | Swap
  | Swap_noop
  | Swap_cache_clear
  | Spill_flush
  | Spill_merge
  | Spill_read

let all =
  [ Tokenize; Cache_hit; Cache_miss; Parse; Exec; Retry; Backoff; Crash;
    Drop; Degraded; Shed; Net_accept; Net_frame_in; Net_frame_out; Net_queue;
    Net_batch; Net_shed; Compile_hit; Compile_miss; Compile; Swap;
    Swap_noop; Swap_cache_clear; Spill_flush; Spill_merge; Spill_read ]

let index = function
  | Tokenize -> 0
  | Cache_hit -> 1
  | Cache_miss -> 2
  | Parse -> 3
  | Exec -> 4
  | Retry -> 5
  | Backoff -> 6
  | Crash -> 7
  | Drop -> 8
  | Degraded -> 9
  | Shed -> 10
  | Net_accept -> 11
  | Net_frame_in -> 12
  | Net_frame_out -> 13
  | Net_queue -> 14
  | Net_batch -> 15
  | Net_shed -> 16
  | Compile_hit -> 17
  | Compile_miss -> 18
  | Compile -> 19
  | Swap -> 20
  | Swap_noop -> 21
  | Swap_cache_clear -> 22
  | Spill_flush -> 23
  | Spill_merge -> 24
  | Spill_read -> 25

let stage_name = function
  | Tokenize -> "tokenize"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Parse -> "parse"
  | Exec -> "exec"
  | Retry -> "retry"
  | Backoff -> "backoff"
  | Crash -> "crash"
  | Drop -> "drop"
  | Degraded -> "degraded"
  | Shed -> "shed"
  | Net_accept -> "net.accept"
  | Net_frame_in -> "net.frame_in"
  | Net_frame_out -> "net.frame_out"
  | Net_queue -> "net.queue"
  | Net_batch -> "net.batch"
  | Net_shed -> "net.shed"
  | Compile_hit -> "compile.cache_hit"
  | Compile_miss -> "compile.cache_miss"
  | Compile -> "compile.build"
  | Swap -> "swap.commit"
  | Swap_noop -> "swap.noop"
  | Swap_cache_clear -> "swap.cache_invalidate"
  | Spill_flush -> "spill.flush"
  | Spill_merge -> "spill.merge"
  | Spill_read -> "spill.read"

type t = A.t array

let n_stages = List.length all
let create () = Array.init n_stages (fun _ -> A.create ())
let incr t s = A.incr t.(index s)
let get t s = A.get t.(index s)

let counts t =
  List.filter_map
    (fun s ->
      let n = get t s in
      if n = 0 then None else Some (stage_name s, n))
    all

let reset t = Array.iter A.reset t
