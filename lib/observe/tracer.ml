(* Per-domain ring buffers behind atomic cursors. Each worker domain (plus
   the coordinator) owns one slot, so recording a span is a fetch-add on the
   slot's cursor plus an array store — no locks, no allocation beyond the
   span itself, and no cross-domain contention. Merging sorts by the spans'
   structural keys, so the merged stream is independent of which domain
   recorded what and when. *)

module A = Genie_util.Atomic_counter

type slot = { buf : Span.t option array; cursor : A.t }
type t = { seed : int; capacity : int; slots : slot array; enabled : bool }

let disabled = { seed = 0; capacity = 0; slots = [||]; enabled = false }

let create ?(seed = 0) ?(capacity = 16384) ?(slots = 1) () =
  let capacity = max 1 capacity in
  let slots = max 1 slots in
  { seed;
    capacity;
    enabled = true;
    slots =
      Array.init slots (fun _ ->
          { buf = Array.make capacity None; cursor = A.create () }) }

let enabled t = t.enabled
let seed t = t.seed
let capacity t = t.capacity
let n_slots t = Array.length t.slots

let record t ~slot span =
  if t.enabled then begin
    let n = Array.length t.slots in
    let s = t.slots.(((slot mod n) + n) mod n) in
    let i = A.fetch_add s.cursor 1 in
    s.buf.(i mod t.capacity) <- Some span
  end

let recorded t =
  Array.fold_left (fun acc s -> acc + A.get s.cursor) 0 t.slots

let dropped t =
  Array.fold_left
    (fun acc s -> acc + max 0 (A.get s.cursor - t.capacity))
    0 t.slots

let spans t =
  let all = ref [] in
  Array.iter
    (fun s ->
      let n = min (A.get s.cursor) t.capacity in
      for i = 0 to n - 1 do
        match s.buf.(i) with Some sp -> all := sp :: !all | None -> ()
      done)
    t.slots;
  List.sort Span.order !all

let reset t =
  Array.iter
    (fun s ->
      Array.fill s.buf 0 (Array.length s.buf) None;
      A.reset s.cursor)
    t.slots

let now_ns () = Unix.gettimeofday () *. 1e9

(* A scope hands a callee (e.g. the parser model's decode loop) everything
   it needs to attach child spans under its caller's span without depending
   on the caller's library. *)
type scope = {
  tracer : t;
  slot : int;
  request : int;
  attempt : int;
  parent : int64;
}

let scope t ~slot ~request ~attempt ~parent =
  if t.enabled then Some { tracer = t; slot; request; attempt; parent }
  else None

let sub sc ~seq ?attrs ~start_ns ~dur_ns name =
  record sc.tracer ~slot:sc.slot
    (Span.v ~seed:sc.tracer.seed ~request:sc.request ~attempt:sc.attempt ~seq
       ~parent:sc.parent ?attrs ~start_ns ~dur_ns name)
