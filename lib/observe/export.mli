(** Trace consumers: JSONL files, flame summaries, and the structural
    tree/digest forms used as test oracles.

    The structural forms ({!tree_lines}, {!digest}) omit all timestamps —
    only names, parents, request/attempt coordinates and attrs — so they
    are byte-identical across seeded runs and worker counts. *)

val span_json : Span.t -> Genie_util.Json_lite.t
(** One span as a JSON object: [id]/[parent] as 16-digit hex, [name],
    [request], [attempt], [seq], [start_ns], [dur_ns], and [attrs] (an
    object, present only when non-empty). *)

val to_jsonl : Span.t list -> string
(** One compact JSON object per line, in the given span order. *)

val write_jsonl : string -> Span.t list -> unit

val tree_lines : ?strict:bool -> Span.t list -> string list
(** The trace as an indented forest, siblings in {!Span.order}. With
    [~strict:false], volatile attrs (currently [cache], which a pooled
    retry may legitimately flip) are omitted so fault-run traces compare
    across serving paths. Timestamps never appear. *)

val digest : ?strict:bool -> Span.t list -> string
(** 16-hex-digit hash of {!tree_lines} — the one-line trace fingerprint
    diffed by the CI trace-golden smoke. *)

type frame = { name : string; count : int; total_ns : float; self_ns : float }
(** Per-stage aggregate; [self_ns] is duration minus child durations. *)

val flame : Span.t list -> frame list
(** Self-time summary aggregated by span name, largest self-time first. *)

val pp_flame : Format.formatter -> frame list -> unit
