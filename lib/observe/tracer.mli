(** Lock-free span collection over per-domain ring buffers.

    Each worker domain (plus the coordinator) writes to its own slot: a
    fixed-capacity ring with an atomic write cursor, so recording never
    blocks and never contends across domains. {!spans} merges all slots
    and sorts by {!Span.order} — structural keys only — so the merged
    stream of a seeded run is identical for 1-, 2-, and 4-worker pools. *)

type t

val disabled : t
(** The no-op tracer: {!record} does nothing, {!enabled} is [false]. Use it
    as the default so hot paths pay one boolean test when tracing is off. *)

val create : ?seed:int -> ?capacity:int -> ?slots:int -> unit -> t
(** [create ~seed ~capacity ~slots ()] — [slots] should be the worker count
    plus one coordinator slot; [capacity] (default 16384) is per slot.
    Oldest spans are overwritten when a slot overflows (see {!dropped}). *)

val enabled : t -> bool
val seed : t -> int
val capacity : t -> int
val n_slots : t -> int

val record : t -> slot:int -> Span.t -> unit
(** Appends to [slot]'s ring (index taken mod the slot count). Lock-free:
    one fetch-add plus one array store. No-op on {!disabled}. *)

val recorded : t -> int
(** Total spans ever recorded (including any later overwritten). *)

val dropped : t -> int
(** Spans lost to ring wrap-around. *)

val spans : t -> Span.t list
(** All retained spans, merged across slots and sorted by {!Span.order}.
    Call after the traced run quiesces (e.g. once a batch returns). *)

val reset : t -> unit

val now_ns : unit -> float
(** Wall clock in nanoseconds, for span timestamps. *)

(** {2 Scopes}

    A scope lets a callee library (the parser model's decode loop, say)
    attach child spans under its caller's span without depending on the
    caller. *)

type scope

val scope :
  t -> slot:int -> request:int -> attempt:int -> parent:int64 -> scope option
(** [None] when the tracer is disabled, so callees skip all trace work with
    one pattern match. *)

val sub :
  scope ->
  seq:int ->
  ?attrs:(string * string) list ->
  start_ns:float ->
  dur_ns:float ->
  string ->
  unit
(** Records a child span under the scope's parent, inheriting its slot,
    request, attempt, and the tracer's seed. *)
