(** A single traced stage of a request, synthesis depth, or decode step.

    Span ids are deterministic: [id = hash (seed, request, attempt, seq,
    name)]. Nothing about wall-clock time, worker index, or allocation order
    leaks into the id or into {!order}, so a seeded run yields byte-stable
    span trees regardless of pool size — which is what makes traces usable
    as a test oracle. *)

type t = {
  id : int64;
  parent : int64 option;
  name : string;
  request : int;
      (** Request id for serving spans; synthesis depth for corpus spans. *)
  attempt : int;  (** Retry attempt the span belongs to (0 for the first). *)
  seq : int;
      (** Fixed per-stage ordinal (e.g. tokenize=1, cache=2, parse=3); the
          stable ordering key within one [(request, attempt)] group. *)
  start_ns : float;
  dur_ns : float;
  attrs : (string * string) list;
}

val id_of :
  seed:int -> request:int -> attempt:int -> seq:int -> name:string -> int64
(** The deterministic id for a span with these coordinates. *)

val v :
  seed:int ->
  request:int ->
  ?attempt:int ->
  seq:int ->
  ?parent:int64 ->
  ?attrs:(string * string) list ->
  start_ns:float ->
  dur_ns:float ->
  string ->
  t
(** [v ~seed ~request ~seq ~start_ns ~dur_ns name] builds a span whose id is
    {!id_of} of its coordinates. [attempt] defaults to 0. *)

val order : t -> t -> int
(** Total order on [(request, attempt, seq, name, id)] — structural keys
    only, never timestamps — used to merge per-domain buffers into one
    deterministic stream. *)
